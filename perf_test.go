package pbsim

import (
	"testing"

	"pbsim/internal/sim"
	"pbsim/internal/stats"
	"pbsim/internal/trace"
	"pbsim/internal/workload"
)

// The hot-path allocation guards below pin the two inner loops the
// performance pass optimized at zero heap allocations per operation:
// any future change that reintroduces a per-instruction allocation
// fails these tests immediately, long before a benchmark trajectory
// would reveal it. AllocsPerRun returns float64, so the comparisons
// state their (exact) tolerance via stats.ApproxEqual.

// TestTraceGeneratorZeroAllocs pins the steady-state instruction
// stream: after construction, Next must not touch the heap.
func TestTraceGeneratorZeroAllocs(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := w.NewGenerator()
	if err != nil {
		t.Fatal(err)
	}
	var sink trace.Instr
	allocs := testing.AllocsPerRun(1000, func() {
		sink = gen.Next()
	})
	_ = sink
	if !stats.ApproxEqual(allocs, 0, 0) {
		t.Errorf("trace generator Next allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSimulatorStepZeroAllocs pins the simulator's steady-state
// cycle loop (fetch/dispatch/issue/commit over a warmed machine).
func TestSimulatorStepZeroAllocs(t *testing.T) {
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := w.NewGenerator()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := sim.New(sim.Default(), gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.PrewarmMemory()
	committed := int64(2000)
	if _, err := cpu.Run(committed); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		committed += 100
		if _, err := cpu.Run(committed); err != nil {
			t.Fatal(err)
		}
	})
	if !stats.ApproxEqual(allocs, 0, 0) {
		t.Errorf("simulator steady-state step allocates %.1f objects/op, want 0", allocs)
	}
}
