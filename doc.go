// Package pbsim reproduces Yi, Lilja and Hawkins, "A Statistically
// Rigorous Approach for Improving Simulation Methodology" (HPCA 2003):
// Plackett-Burman experimental designs applied to computer-architecture
// simulation.
//
// The repository root holds the benchmark harness (bench_test.go, one
// benchmark per paper table); the library lives under internal/ and
// the runnable tools under cmd/ and examples/. Start with README.md
// for usage, DESIGN.md for the architecture and the substitutions made
// for the paper's unavailable artifacts, and EXPERIMENTS.md for
// measured-versus-published results.
package pbsim
