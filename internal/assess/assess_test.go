package assess

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"pbsim/internal/stats"
	"pbsim/internal/truth"
)

// campaign is the shared small-but-meaningful test configuration.
func campaign(workers int) Config {
	return Config{
		Surfaces: 40,
		Factors:  9,
		Critical: 3,
		SNR:      10,
		Seed:     1,
		Workers:  workers,
	}
}

func findFamily(t *testing.T, rep *Report, fam truth.Family) FamilyReport {
	t.Helper()
	for _, f := range rep.Families {
		if f.Family == fam {
			return f
		}
	}
	t.Fatalf("family %s missing from report", fam)
	return FamilyReport{}
}

func findMethod(t *testing.T, fam FamilyReport, m Method) MethodSummary {
	t.Helper()
	for _, s := range fam.Methods {
		if s.Method == m {
			return s
		}
	}
	t.Fatalf("method %s missing from family %s", m, fam.Family)
	return MethodSummary{}
}

// The acceptance bit-identity guarantee: the trust report is the same,
// bit for bit, whether surfaces are evaluated by 1 worker or 8.
func TestReportBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	rep1, err := Run(ctx, campaign(1))
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(ctx, campaign(8))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(rep8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("reports differ across worker counts:\n1 worker: %s\n8 workers: %s", j1, j8)
	}
	// And across repeated runs of the same configuration.
	rep1b, err := Run(ctx, campaign(1))
	if err != nil {
		t.Fatal(err)
	}
	j1b, _ := json.Marshal(rep1b)
	if !bytes.Equal(j1, j1b) {
		t.Fatal("reports differ across repeated runs of the same seed")
	}
}

// Adversarial regression: on the dominant-three-factor-interaction
// family the PB screen must fail loudly — trust far below the warning
// threshold and the Warn flag raised — while the full factorial keeps
// its trust. This pins that the harness can say "no", not just "yes":
// PB's main-effect contrast provably receives zero contribution from
// a 3FI's own participants (strength-2 orthogonality), so any future
// change that makes PB "pass" here is a scoring bug, not an
// improvement.
func TestThreeFactorFamilyBreaksPB(t *testing.T) {
	rep, err := Run(context.Background(), campaign(4))
	if err != nil {
		t.Fatal(err)
	}
	fam := findFamily(t, rep, truth.ThreeFactor)
	for _, m := range []Method{MethodPB, MethodPBFoldover} {
		s := findMethod(t, fam, m)
		if !s.Warn {
			t.Errorf("%s on %s: Warn not raised (trust %.3f, threshold %.2f)", m, fam.Family, s.Trust, rep.WarnThreshold)
		}
		if s.Trust > 0.2 {
			t.Errorf("%s on %s: trust %.3f, want near zero", m, fam.Family, s.Trust)
		}
		// The participants rank *last* under PB, so rank recovery is
		// actively anti-correlated — worse than guessing.
		if s.Spearman.Mean > 0 {
			t.Errorf("%s on %s: spearman %.3f, want negative", m, fam.Family, s.Spearman.Mean)
		}
	}
	full := findMethod(t, fam, MethodFullFactorial)
	if full.Warn || full.Trust < 0.99 {
		t.Errorf("full factorial on %s: trust %.3f warn=%v, want trusted", fam.Family, full.Trust, full.Warn)
	}
}

// The headline ordering on an interaction-heavy family: full
// factorial >= foldover PB >= base PB >= one-at-a-time, with the
// foldover's advantage over the base design strict (it cancels the
// two-factor aliasing), and base PB's recall dipping below the 0.8
// warning threshold.
func TestMethodOrderingOnTwoFactorFamily(t *testing.T) {
	rep, err := Run(context.Background(), campaign(4))
	if err != nil {
		t.Fatal(err)
	}
	fam := findFamily(t, rep, truth.TwoFactor)
	full := findMethod(t, fam, MethodFullFactorial)
	pbf := findMethod(t, fam, MethodPBFoldover)
	base := findMethod(t, fam, MethodPB)
	oat := findMethod(t, fam, MethodOneAtATime)
	if !(full.Trust >= pbf.Trust && pbf.Trust >= base.Trust && base.Trust >= oat.Trust) {
		t.Errorf("trust ordering violated: full %.3f, pbf %.3f, pb %.3f, oat %.3f",
			full.Trust, pbf.Trust, base.Trust, oat.Trust)
	}
	if pbf.Trust <= base.Trust {
		t.Errorf("foldover advantage not strict: pbf %.3f vs pb %.3f", pbf.Trust, base.Trust)
	}
	if base.Trust >= 0.8 || !base.Warn {
		t.Errorf("base PB should be flagged on %s: trust %.3f warn=%v", fam.Family, base.Trust, base.Warn)
	}
	if pbf.Warn {
		t.Errorf("foldover PB should be trusted on %s: trust %.3f", fam.Family, pbf.Trust)
	}
}

// Where the PB model holds (pure main effects), everything must agree:
// the screen is trustworthy and cheap.
func TestMainEffectsFamilyTrustsPB(t *testing.T) {
	rep, err := Run(context.Background(), campaign(4))
	if err != nil {
		t.Fatal(err)
	}
	fam := findFamily(t, rep, truth.MainEffects)
	for _, m := range []Method{MethodPB, MethodPBFoldover, MethodFullFactorial} {
		s := findMethod(t, fam, m)
		if s.Warn || s.Trust < 0.95 {
			t.Errorf("%s on %s: trust %.3f warn=%v", m, fam.Family, s.Trust, s.Warn)
		}
	}
}

// Budget semantics: a method whose design exceeds the per-surface run
// budget is skipped and recorded, never silently scored, and the
// report still marshals cleanly (no NaN estimates).
func TestBudgetSkipsExpensiveMethods(t *testing.T) {
	cfg := campaign(2)
	cfg.Surfaces = 5
	cfg.Budget = 30 // full factorial needs 2^9 = 512, foldover 24
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fam := rep.Families[0]
	full := findMethod(t, fam, MethodFullFactorial)
	if full.Surfaces != 0 || full.Skipped != cfg.Surfaces {
		t.Errorf("full factorial: surfaces %d skipped %d, want 0/%d", full.Surfaces, full.Skipped, cfg.Surfaces)
	}
	if full.Warn {
		t.Error("a skipped method must not carry a warning")
	}
	pbf := findMethod(t, fam, MethodPBFoldover)
	if pbf.Surfaces != cfg.Surfaces || pbf.Skipped != 0 {
		t.Errorf("foldover PB: surfaces %d skipped %d", pbf.Surfaces, pbf.Skipped)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report with skipped methods does not marshal: %v", err)
	}
}

// Per-surface scoring against a hand-built truth: a noiseless pure
// main-effects surface must be solved perfectly by every method.
func TestAssessSurfaceNoiselessMainEffects(t *testing.T) {
	s, err := truth.Generate(truth.Config{
		Family: truth.MainEffects, Factors: 8, Critical: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := AssessSurface(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(Methods()) {
		t.Fatalf("%d scores", len(scores))
	}
	for _, ms := range scores {
		if ms.Skipped {
			t.Fatalf("%s skipped without budget", ms.Method)
		}
		if !stats.ApproxEqual(ms.Recall, 1, 0) || !stats.ApproxEqual(ms.Precision, 1, 0) {
			t.Errorf("%s: precision %.3f recall %.3f on a noiseless additive surface", ms.Method, ms.Precision, ms.Recall)
		}
		// The critical spectrum is exactly recoverable; only the
		// nuisance tail's internal order is method-dependent. The top
		// of the ranking must match the truth exactly.
		if ms.Spearman < 0.5 {
			t.Errorf("%s: spearman %.3f", ms.Method, ms.Spearman)
		}
	}
	// Costs mirror the paper's Table 1.
	wantRuns := map[Method]int{
		MethodOneAtATime:    9,
		MethodPB:            12,
		MethodPBFoldover:    24,
		MethodFullFactorial: 256,
	}
	for _, ms := range scores {
		if ms.Runs != wantRuns[ms.Method] {
			t.Errorf("%s: %d runs, want %d", ms.Method, ms.Runs, wantRuns[ms.Method])
		}
	}
}

func TestEffectGap(t *testing.T) {
	cases := []struct {
		imp  []float64
		want int
	}{
		{[]float64{10, 9, 1, 0.5, 0.4, 0.3}, 2}, // big drop after the top two
		{[]float64{10, 0.5, 0.4, 0.3, 0.2}, 1},  // single dominant factor
		{[]float64{1, 1}, 2},                    // too short: everything critical
		{[]float64{0.3, 10, 9, 0.5, 0.2, 8}, 3}, // order-independent of input position
		{[]float64{1, 1, 1, 1}, 1},              // all ties: no information, cut at 1
	}
	for _, c := range cases {
		if got := EffectGap(c.imp); got != c.want {
			t.Errorf("EffectGap(%v) = %d, want %d", c.imp, got, c.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Factors: 9, Critical: 3}); err == nil {
		t.Error("zero surfaces accepted")
	}
	// Generator errors must propagate with family context.
	_, err := Run(context.Background(), Config{Surfaces: 1, Factors: 1, Critical: 1})
	if err == nil {
		t.Error("invalid generator config accepted")
	}
}

func TestWarningsList(t *testing.T) {
	rep, err := Run(context.Background(), campaign(4))
	if err != nil {
		t.Fatal(err)
	}
	warns := rep.Warnings()
	if len(warns) == 0 {
		t.Fatal("no warnings on a campaign containing the three-factor family")
	}
	found := false
	for _, w := range warns {
		if w == "three-factor/pb trust 0.00" {
			found = true
		}
	}
	if !found {
		t.Errorf("three-factor/pb warning missing from %q", warns)
	}
}

// Cancellation must interrupt the campaign through the runner's error
// path, not hang or return a partial report.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, campaign(2)); err == nil {
		t.Error("cancelled campaign returned no error")
	}
}

// Guard against accidental drift of the trust definition: trust is
// mean recall, and a method's estimate vector drives both rank and
// set scores deterministically.
func TestTrustIsMeanRecall(t *testing.T) {
	rep, err := Run(context.Background(), campaign(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range rep.Families {
		for _, m := range fam.Methods {
			if m.Surfaces == 0 {
				continue
			}
			if math.Abs(m.Trust-m.Recall.Mean) > 0 {
				t.Errorf("%s/%s: trust %.6f != mean recall %.6f", fam.Family, m.Method, m.Trust, m.Recall.Mean)
			}
		}
	}
}
