// Package assess is the methodology-assessment harness: it runs the
// paper's Plackett-Burman screen — and the designs the paper compares
// it against — over populations of synthetic ground-truth surfaces
// (internal/truth) where the right answer is known by construction,
// and scores how often each method actually finds it.
//
// The paper *asserts* that a PB screen identifies the significant
// parameters; this package measures that claim per surface family:
// rank recovery (Spearman correlation between the method's ranking
// and the true importance ranking), critical-set precision and recall
// at the paper's significance-gap cut, and simulation-budget cost.
// Scores are aggregated into per-family trust tables with 95%
// confidence intervals, so a user can read off *when* the method can
// be trusted — and, just as importantly, when it cannot (a dominant
// three-factor interaction is provably invisible to a PB main-effect
// contrast; see internal/truth's ThreeFactor family).
package assess

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/runner"
	"pbsim/internal/stats"
	"pbsim/internal/truth"
)

// Method names one screening design in the shoot-out.
type Method string

// The four contenders, in the cost order of the paper's Table 1.
const (
	MethodOneAtATime    Method = "one-at-a-time"
	MethodPB            Method = "pb"
	MethodPBFoldover    Method = "pb-foldover"
	MethodFullFactorial Method = "full-factorial"
)

// Methods returns every method in presentation order (cheapest
// first).
func Methods() []Method {
	return []Method{MethodOneAtATime, MethodPB, MethodPBFoldover, MethodFullFactorial}
}

// DefaultWarnThreshold is the trust level below which a family/method
// cell is flagged: a mean critical-set recall under 0.8 means the
// screen misses more than one in five truly-critical parameters.
const DefaultWarnThreshold = 0.8

// Config parameterizes one assessment campaign.
type Config struct {
	// Families to assess; nil selects every truth family.
	Families []truth.Family
	// Surfaces is N, the number of sampled surfaces per family.
	Surfaces int
	// Factors (K) and Critical are passed to the surface generator.
	Factors  int
	Critical int
	// SNR is the generator's signal-to-noise ratio (0 = noiseless).
	SNR float64
	// Seed reproduces the whole campaign.
	Seed int64
	// Budget caps the simulator runs a method may spend per surface;
	// a method whose design exceeds it is skipped (recorded, not
	// scored). 0 means unlimited.
	Budget int
	// Workers bounds the surfaces evaluated in parallel
	// (GOMAXPROCS when 0). Results are bit-identical for any worker
	// count: every surface's score depends only on its seed.
	Workers int
	// WarnThreshold overrides DefaultWarnThreshold when > 0.
	WarnThreshold float64
	// Recorder, when non-nil, observes the campaign through the
	// shared runner (per-surface latency, worker occupancy, ...).
	Recorder obs.Recorder
}

// MethodScore is one method's result on one surface.
type MethodScore struct {
	Method Method `json:"method"`
	// Skipped reports that the method's design exceeded the run
	// budget and was not executed.
	Skipped bool `json:"skipped,omitempty"`
	// Spearman is the rank correlation between the method's estimated
	// importance ranking and the true ranking (+1 = perfect).
	Spearman float64 `json:"spearman"`
	// Precision and Recall score the method's predicted critical set
	// (cut at the significance gap) against the true critical set.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// Runs is the simulation budget the method consumed.
	Runs int `json:"runs"`
}

// SurfaceScore collects every method's score on one sampled surface.
type SurfaceScore struct {
	Surface int           `json:"surface"`
	Seed    int64         `json:"seed"`
	Methods []MethodScore `json:"methods"`
}

// Estimate is a mean with its 95% confidence interval.
type Estimate struct {
	Mean float64 `json:"mean"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// MethodSummary aggregates one method over every scored surface of a
// family.
type MethodSummary struct {
	Method   Method `json:"method"`
	Surfaces int    `json:"surfaces"`
	// Skipped counts surfaces where the method exceeded the budget.
	Skipped   int      `json:"skipped,omitempty"`
	Spearman  Estimate `json:"spearman"`
	Precision Estimate `json:"precision"`
	Recall    Estimate `json:"recall"`
	MeanRuns  float64  `json:"mean_runs"`
	// Trust is the headline score: mean critical-set recall — the
	// fraction of truly-critical parameters the screen finds.
	Trust float64 `json:"trust"`
	// Warn flags Trust below the warning threshold: do not trust this
	// method on this family.
	Warn bool `json:"warn"`
}

// FamilyReport is the trust table for one surface family.
type FamilyReport struct {
	Family   truth.Family    `json:"family"`
	Surfaces int             `json:"surfaces"`
	Methods  []MethodSummary `json:"methods"`
}

// Report is the complete campaign outcome.
type Report struct {
	Factors       int            `json:"factors"`
	Critical      int            `json:"critical"`
	SNR           float64        `json:"snr"`
	Seed          int64          `json:"seed"`
	Budget        int            `json:"budget,omitempty"`
	WarnThreshold float64        `json:"warn_threshold"`
	Families      []FamilyReport `json:"families"`
}

// Surfaces returns N, the number of surfaces sampled per family
// (0 for an empty report). Every family of a campaign samples the
// same N.
func (r *Report) Surfaces() int {
	if len(r.Families) == 0 {
		return 0
	}
	return r.Families[0].Surfaces
}

// Warnings lists the (family, method) cells whose trust fell below
// the threshold, in report order.
func (r *Report) Warnings() []string {
	var out []string
	for _, fam := range r.Families {
		for _, m := range fam.Methods {
			if m.Warn {
				out = append(out, fmt.Sprintf("%s/%s trust %.2f", fam.Family, m.Method, m.Trust))
			}
		}
	}
	return out
}

// Run executes the campaign: for every family, N surfaces are sampled
// (seeds derived from cfg.Seed), each surface is screened by every
// method, and the scores are aggregated into per-family summaries.
// Surfaces are evaluated in parallel through the shared fault-
// tolerant runner; the output is bit-identical for any worker count.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	families := cfg.Families
	if len(families) == 0 {
		families = truth.Families()
	}
	if cfg.Surfaces < 1 {
		return nil, fmt.Errorf("assess: surfaces per family must be >= 1, got %d", cfg.Surfaces)
	}
	warn := cfg.WarnThreshold
	if warn <= 0 {
		warn = DefaultWarnThreshold
	}
	rep := &Report{
		Factors:       cfg.Factors,
		Critical:      cfg.Critical,
		SNR:           cfg.SNR,
		Seed:          cfg.Seed,
		Budget:        cfg.Budget,
		WarnThreshold: warn,
	}
	for _, fam := range families {
		scores, err := runFamily(ctx, cfg, fam)
		if err != nil {
			return nil, fmt.Errorf("assess: family %s: %w", fam, err)
		}
		rep.Families = append(rep.Families, summarize(fam, scores, warn))
	}
	return rep, nil
}

// runFamily scores every sampled surface of one family, fanning the
// surfaces out across the runner's worker pool.
func runFamily(ctx context.Context, cfg Config, fam truth.Family) ([]SurfaceScore, error) {
	scores := make([]SurfaceScore, cfg.Surfaces)
	task := func(ctx context.Context, i int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		seed := truth.SurfaceSeed(cfg.Seed, fam, i)
		surface, err := truth.Generate(truth.Config{
			Family:   fam,
			Factors:  cfg.Factors,
			Critical: cfg.Critical,
			SNR:      cfg.SNR,
			Seed:     seed,
		})
		if err != nil {
			return 0, err
		}
		ms, err := AssessSurface(surface, cfg.Budget)
		if err != nil {
			return 0, err
		}
		scores[i] = SurfaceScore{Surface: i, Seed: seed, Methods: ms}
		// The runner's response vector is not used for analysis; the
		// first method's Spearman is returned purely so progress
		// observability has a value to journal.
		return ms[0].Spearman, nil
	}
	//pbcheck:ignore determinism runner.Evaluate's time.Now feeds latency observability only; every score is written at its surface index as a pure function of the surface seed, and TestReportBitIdenticalAcrossWorkerCounts pins the bit-identity
	_, err := runner.Evaluate(ctx, cfg.Surfaces, task, runner.Config{
		Parallelism: cfg.Workers,
		Scope:       "assess/" + string(fam),
		Recorder:    cfg.Recorder,
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// AssessSurface runs every method against one surface and scores it
// against the surface's declared truth. A method whose design needs
// more than budget runs (budget > 0) is skipped.
func AssessSurface(s *truth.Surface, budget int) ([]MethodScore, error) {
	truthRanks := pb.Ranks(s.Importance)
	var out []MethodScore
	for _, m := range Methods() {
		imp, runs, err := estimate(m, s, budget)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		if imp == nil {
			out = append(out, MethodScore{Method: m, Skipped: true, Runs: runs})
			continue
		}
		score, err := scoreEstimate(m, imp, truthRanks, s.Critical, runs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, score)
	}
	return out, nil
}

// estimate produces a method's per-factor importance estimate and the
// runs it consumed. A nil slice with no error means the method was
// skipped for exceeding the budget.
func estimate(m Method, s *truth.Surface, budget int) ([]float64, int, error) {
	k := s.Factors
	switch m {
	case MethodOneAtATime:
		runs := k + 1
		if budget > 0 && runs > budget {
			return nil, runs, nil
		}
		base := make([]int8, k)
		for j := range base {
			base[j] = -1
		}
		res, err := stats.OneAtATime(base, s.Eval)
		if err != nil {
			return nil, 0, err
		}
		imp := make([]float64, k)
		for j, d := range res.Deltas {
			imp[j] = math.Abs(d) / 2
		}
		return imp, res.Runs(), nil
	case MethodPB, MethodPBFoldover:
		design, err := pb.New(k, m == MethodPBFoldover)
		if err != nil {
			return nil, 0, err
		}
		runs := design.Runs()
		if budget > 0 && runs > budget {
			return nil, runs, nil
		}
		responses := make([]float64, runs)
		levels := make([]int8, k)
		for i := 0; i < runs; i++ {
			row := design.Row(i)
			// Trailing design columns beyond k are dummy factors; the
			// surface sees only the real ones.
			for j := 0; j < k; j++ {
				levels[j] = int8(row[j])
			}
			responses[i] = s.Eval(levels)
		}
		effects, err := pb.NormalizedEffects(design, responses)
		if err != nil {
			return nil, 0, err
		}
		imp := make([]float64, k)
		for j := 0; j < k; j++ {
			imp[j] = math.Abs(effects[j]) / 2
		}
		return imp, runs, nil
	case MethodFullFactorial:
		runs := 1 << uint(k)
		if budget > 0 && runs > budget {
			return nil, runs, nil
		}
		rows, err := stats.FullFactorial(k)
		if err != nil {
			return nil, 0, err
		}
		responses := make([]float64, len(rows))
		for i, row := range rows {
			responses[i] = s.Eval(row)
		}
		anova, err := stats.ANOVA(k, responses)
		if err != nil {
			return nil, 0, err
		}
		// A factor's importance is the square root of the total sum
		// of squares over every term it participates in — main effect
		// and all interactions — normalized to effect scale. This is
		// the full design's structural advantage: it sees interaction
		// and cliff influence that main-effect contrasts cannot.
		ss := make([]float64, k)
		for _, t := range anova.Terms {
			for _, f := range t.Factors {
				ss[f] += t.SS
			}
		}
		imp := make([]float64, k)
		for j := range imp {
			imp[j] = math.Sqrt(ss[j] / float64(runs))
		}
		return imp, runs, nil
	}
	return nil, 0, fmt.Errorf("assess: unknown method %q", m)
}

// scoreEstimate converts an importance estimate into the surface's
// scorecard: Spearman rank recovery and critical-set precision/recall
// at the significance-gap cut.
func scoreEstimate(m Method, imp []float64, truthRanks []int, critical []int, runs int) (MethodScore, error) {
	ranks := pb.Ranks(imp)
	rho, err := stats.SpearmanRanks(ranks, truthRanks)
	if err != nil {
		return MethodScore{}, err
	}
	cut := EffectGap(imp)
	predicted := topByImportance(imp, cut)
	prec, rec := setScores(predicted, critical)
	return MethodScore{
		Method:    m,
		Spearman:  rho,
		Precision: prec,
		Recall:    rec,
		Runs:      runs,
	}, nil
}

// EffectGap applies the paper's significance-gap heuristic to a
// vector of importance magnitudes: order descending and cut before
// the largest drop, searched in the first half of the list only
// (trailing estimates are noise) — the float analogue of
// pb.SignificanceGap, which applies the same idea to sum-of-ranks.
// The returned count is the size of the predicted critical set.
func EffectGap(imp []float64) int {
	n := len(imp)
	if n < 3 {
		return n
	}
	order := orderDesc(imp)
	bestPos, bestDrop := 1, math.Inf(-1)
	limit := n / 2
	for i := 1; i <= limit; i++ {
		drop := imp[order[i-1]] - imp[order[i]]
		if drop > bestDrop {
			bestDrop = drop
			bestPos = i
		}
	}
	return bestPos
}

// topByImportance returns the indices of the cut largest importances
// (ties broken by index).
func topByImportance(imp []float64, cut int) []int {
	order := orderDesc(imp)
	if cut > len(order) {
		cut = len(order)
	}
	return order[:cut]
}

// orderDesc returns indices by descending value, ties by index.
func orderDesc(v []float64) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := v[order[a]], v[order[b]]
		if va > vb {
			return true
		}
		if va < vb {
			return false
		}
		return order[a] < order[b]
	})
	return order
}

// setScores computes precision and recall of a predicted index set
// against the true one.
func setScores(predicted, actual []int) (precision, recall float64) {
	inActual := map[int]bool{}
	for _, f := range actual {
		inActual[f] = true
	}
	hit := 0
	for _, f := range predicted {
		if inActual[f] {
			hit++
		}
	}
	if len(predicted) > 0 {
		precision = float64(hit) / float64(len(predicted))
	}
	if len(actual) > 0 {
		recall = float64(hit) / float64(len(actual))
	}
	return precision, recall
}

// summarize aggregates per-surface scores into the family's trust
// table. Aggregation walks surfaces in index order, so the summary is
// bit-identical regardless of evaluation order.
func summarize(fam truth.Family, scores []SurfaceScore, warnThreshold float64) FamilyReport {
	rep := FamilyReport{Family: fam, Surfaces: len(scores)}
	for mi, m := range Methods() {
		var rho, prec, rec, runs []float64
		skipped := 0
		for _, s := range scores {
			ms := s.Methods[mi]
			if ms.Skipped {
				skipped++
				continue
			}
			rho = append(rho, ms.Spearman)
			prec = append(prec, ms.Precision)
			rec = append(rec, ms.Recall)
			runs = append(runs, float64(ms.Runs))
		}
		sum := MethodSummary{Method: m, Surfaces: len(rho), Skipped: skipped}
		// A fully-skipped method keeps zero-valued estimates: NaNs
		// would poison the JSON encoding of the report.
		if len(rho) > 0 {
			sum.Spearman.Mean, sum.Spearman.Lo, sum.Spearman.Hi = stats.MeanCI95(rho)
			sum.Precision.Mean, sum.Precision.Lo, sum.Precision.Hi = stats.MeanCI95(prec)
			sum.Recall.Mean, sum.Recall.Lo, sum.Recall.Hi = stats.MeanCI95(rec)
			sum.MeanRuns = stats.Mean(runs)
			sum.Trust = sum.Recall.Mean
			sum.Warn = sum.Trust < warnThreshold
		}
		rep.Methods = append(rep.Methods, sum)
	}
	return rep
}
