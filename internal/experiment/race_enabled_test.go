//go:build race

package experiment

// raceEnabled reports whether this test binary was built with the race
// detector, whose slowdown puts the full-scale suite tests past the
// default per-package test timeout.
const raceEnabled = true
