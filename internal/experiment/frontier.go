package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"pbsim/internal/pb"
	"pbsim/internal/sampling"
	"pbsim/internal/stats"
	"pbsim/internal/workload"
)

// This file is the accuracy-vs-speed frontier harness: it runs the
// full (unsampled) PB suite once as ground truth, reruns it under each
// sampling estimator, and reports where every estimator lands on the
// two axes that matter — how much detailed simulation it avoided, and
// how faithfully the sampled Table 9 ranking tracks the full one.

// DefaultMinSpearman is the rank-correlation gate: a sampled ranking
// below it does not preserve the paper's conclusions and fails the
// frontier.
const DefaultMinSpearman = 0.95

// FrontierOptions configures one frontier sweep.
type FrontierOptions struct {
	// Instructions / Warmup are the per-run budgets of both the full
	// and the sampled suites (defaults as in Options).
	Instructions int64
	Warmup       int64
	// Foldover selects the 2X-run design, as in Options.
	Foldover bool
	// Parallelism bounds concurrently simulated configurations.
	Parallelism int
	// Workloads restricts the benchmark suite; nil selects all 13.
	Workloads []workload.Workload
	// Estimators restricts the swept estimators; nil sweeps all three.
	Estimators []string
	// Spec carries the sampling parameters shared by every point; its
	// Estimator field is overridden per swept estimator.
	Spec sampling.Spec
	// MinSpearman overrides the rank-correlation gate (0 selects
	// DefaultMinSpearman).
	MinSpearman float64
}

// FrontierPoint is one estimator's position on the frontier.
type FrontierPoint struct {
	Estimator string `json:"estimator"`
	// Spearman is the rank correlation between the sampled and the full
	// sum-of-ranks factor orderings (1 = identical Table 9).
	Spearman float64 `json:"spearman"`
	// MeanCPIRelErr / MaxCPIRelErr summarize |sampled/full - 1| over
	// every (benchmark, configuration) response pair.
	MeanCPIRelErr float64 `json:"mean_cpi_rel_err"`
	MaxCPIRelErr  float64 `json:"max_cpi_rel_err"`
	// DetailedInstructions is the campaign-wide detail-simulated
	// instruction count under this estimator; FunctionalInstructions
	// counts the cycle-free warming and schedule passes that replace
	// the rest.
	DetailedInstructions   int64 `json:"detailed_instructions"`
	FunctionalInstructions int64 `json:"functional_instructions"`
	// InstrSpeedup is full detailed instructions over sampled detailed
	// instructions — the gated speedup axis. WallSpeedup is the
	// end-to-end wall-clock ratio, reported for context (it includes
	// the functional warming the instruction axis deliberately prices
	// separately).
	InstrSpeedup float64       `json:"instr_speedup"`
	WallSpeedup  float64       `json:"wall_speedup"`
	Wall         time.Duration `json:"wall_ns"`
	// Pass marks Spearman >= the gate.
	Pass bool `json:"pass"`
}

// FrontierReport is the outcome of one frontier sweep.
type FrontierReport struct {
	Instructions int64    `json:"instructions"`
	Warmup       int64    `json:"warmup"`
	Foldover     bool     `json:"foldover"`
	Benchmarks   []string `json:"benchmarks"`
	Runs         int      `json:"runs"`
	SampleSpec   string   `json:"sample_spec"`
	MinSpearman  float64  `json:"min_spearman"`
	// FullDetailedInstructions is the unsampled campaign's detailed
	// instruction count (the numerator of every speedup).
	FullDetailedInstructions int64           `json:"full_detailed_instructions"`
	FullWall                 time.Duration   `json:"full_wall_ns"`
	Points                   []FrontierPoint `json:"points"`
	// Pass is the conjunction of every point's gate.
	Pass bool `json:"pass"`
}

// RunFrontier executes the sweep: one full suite, then one sampled
// suite per estimator, all over identical workloads, budgets and
// design. Wall-clock timings are observational; every gated number is
// deterministic.
func RunFrontier(ctx context.Context, fopts FrontierOptions) (*FrontierReport, error) {
	if fopts.MinSpearman == 0 { //pbcheck:ignore floateq zero-value sentinel for an unset config field, exact by construction
		fopts.MinSpearman = DefaultMinSpearman
	}
	ests := fopts.Estimators
	if ests == nil {
		ests = sampling.Names()
	}
	base := Options{
		Instructions: fopts.Instructions,
		Warmup:       fopts.Warmup,
		Foldover:     fopts.Foldover,
		Parallelism:  fopts.Parallelism,
		Workloads:    fopts.Workloads,
	}

	t0 := time.Now()
	full, err := RunSuiteCtx(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("frontier: full suite: %w", err)
	}
	fullWall := time.Since(t0)
	fullRanks := rankPermutation(full)
	rows := full.Design.Runs()
	// Budgets may have been defaulted inside RunSuiteCtx; recover the
	// effective values for cost accounting.
	n, warm := base.Instructions, base.Warmup
	if n <= 0 {
		n = DefaultInstructions
	}
	if warm < 0 {
		warm = DefaultWarmup
	}
	perRunFull := warm + n
	fullDetailed := int64(rows) * int64(len(full.Benchmarks)) * perRunFull

	report := &FrontierReport{
		Instructions:             n,
		Warmup:                   warm,
		Foldover:                 fopts.Foldover,
		Benchmarks:               full.Benchmarks,
		Runs:                     rows,
		MinSpearman:              fopts.MinSpearman,
		FullDetailedInstructions: fullDetailed,
		FullWall:                 fullWall,
		Pass:                     true,
	}

	for _, est := range ests {
		spec := fopts.Spec
		spec.Estimator = est
		spec = spec.Normalized()
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("frontier: %w", err)
		}
		if report.SampleSpec == "" {
			// The shared (estimator-independent) parameters, canonical.
			report.SampleSpec = spec.String()
		}
		opts := base
		opts.Sampling = &spec

		t1 := time.Now()
		sampled, err := RunSuiteCtx(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("frontier: %s suite: %w", est, err)
		}
		wall := time.Since(t1)

		point := FrontierPoint{Estimator: est, Wall: wall}
		point.Spearman, err = stats.SpearmanRanks(fullRanks, rankPermutation(sampled))
		if err != nil {
			return nil, fmt.Errorf("frontier: %s: %w", est, err)
		}
		point.MeanCPIRelErr, point.MaxCPIRelErr, err = responseErrors(full, sampled)
		if err != nil {
			return nil, fmt.Errorf("frontier: %s: %w", est, err)
		}
		for _, w := range resolveWorkloads(fopts.Workloads) {
			cost, err := sampling.CostOf(w.Params, warm, n, spec)
			if err != nil {
				return nil, fmt.Errorf("frontier: %s cost for %s: %w", est, w.Name, err)
			}
			point.DetailedInstructions += int64(rows) * cost.PerRunDetailed
			point.FunctionalInstructions += int64(rows)*cost.PerRunFunctional + cost.ScheduleFunctional
		}
		point.InstrSpeedup = float64(fullDetailed) / float64(point.DetailedInstructions)
		if wall > 0 {
			point.WallSpeedup = float64(fullWall) / float64(wall)
		}
		point.Pass = point.Spearman >= fopts.MinSpearman
		report.Pass = report.Pass && point.Pass
		report.Points = append(report.Points, point)
	}
	return report, nil
}

// rankPermutation converts a suite's sum-of-ranks ordering into a rank
// vector indexed by factor: ranks[f] = 1 for the most influential
// factor, and so on. Spearman over two such vectors compares the
// Table 9 conclusions of two experiments.
func rankPermutation(s *pb.Suite) []int {
	ranks := make([]int, len(s.Order))
	for pos, f := range s.Order {
		ranks[f] = pos + 1
	}
	return ranks
}

// responseErrors summarizes |sampled/full - 1| over all responses of
// two suites that ran the identical design and benchmarks. Responses
// are cycle counts over a fixed instruction budget, so relative cycle
// error and relative CPI error are the same number.
func responseErrors(full, sampled *pb.Suite) (mean, max float64, err error) {
	if len(full.Results) != len(sampled.Results) {
		return 0, 0, fmt.Errorf("suites differ in benchmark count (%d vs %d)", len(full.Results), len(sampled.Results))
	}
	var sum float64
	var count int
	for bi := range full.Results {
		fr, sr := full.Results[bi].Responses, sampled.Results[bi].Responses
		if len(fr) != len(sr) {
			return 0, 0, fmt.Errorf("benchmark %s: response counts differ (%d vs %d)", full.Benchmarks[bi], len(fr), len(sr))
		}
		for i := range fr {
			if fr[i] <= 0 {
				return 0, 0, fmt.Errorf("benchmark %s row %d: non-positive full response %v", full.Benchmarks[bi], i, fr[i])
			}
			rel := math.Abs(sr[i]/fr[i] - 1)
			sum += rel
			if rel > max {
				max = rel
			}
			count++
		}
	}
	return sum / float64(count), max, nil
}

func resolveWorkloads(ws []workload.Workload) []workload.Workload {
	if ws == nil {
		return workload.All()
	}
	return ws
}

// WriteText renders the report as an aligned text table.
func (r *FrontierReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Accuracy-vs-speed frontier: %d benchmarks x %d runs, n=%d warmup=%d\n",
		len(r.Benchmarks), r.Runs, r.Instructions, r.Warmup); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "sample spec: %s   gate: Spearman >= %.2f\n", r.SampleSpec, r.MinSpearman); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "full run: %d detailed instructions, %s wall\n\n", r.FullDetailedInstructions, r.FullWall.Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %9s %9s %12s %12s %10s %8s\n",
		"estimator", "speedup", "wall-spd", "mean-cpi-err", "max-cpi-err", "spearman", "gate"); err != nil {
		return err
	}
	for _, p := range r.Points {
		gate := "PASS"
		if !p.Pass {
			gate = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "%-12s %8.1fx %8.1fx %11.2f%% %11.2f%% %10.3f %8s\n",
			p.Estimator, p.InstrSpeedup, p.WallSpeedup, 100*p.MeanCPIRelErr, 100*p.MaxCPIRelErr, p.Spearman, gate); err != nil {
			return err
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "\nfrontier: %s\n", verdict)
	return err
}

// WriteMarkdown renders the report as a GitHub-flavored markdown table
// (the CI step summary).
func (r *FrontierReport) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### Accuracy-vs-speed frontier\n\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d benchmarks x %d runs, n=%d warmup=%d, spec `%s`, gate Spearman >= %.2f, full run %d detailed instructions in %s.\n\n",
		len(r.Benchmarks), r.Runs, r.Instructions, r.Warmup, r.SampleSpec, r.MinSpearman,
		r.FullDetailedInstructions, r.FullWall.Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| estimator | instr speedup | wall speedup | mean CPI err | max CPI err | Spearman | gate |\n|---|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, p := range r.Points {
		gate := "pass"
		if !p.Pass {
			gate = "**FAIL**"
		}
		if _, err := fmt.Fprintf(w, "| %s | %.1fx | %.1fx | %.2f%% | %.2f%% | %.3f | %s |\n",
			p.Estimator, p.InstrSpeedup, p.WallSpeedup, 100*p.MeanCPIRelErr, 100*p.MaxCPIRelErr, p.Spearman, gate); err != nil {
			return err
		}
	}
	verdict := "**PASS**"
	if !r.Pass {
		verdict = "**FAIL**"
	}
	_, err := fmt.Fprintf(w, "\nFrontier gate: %s\n", verdict)
	return err
}
