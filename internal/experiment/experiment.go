// Package experiment wires the Plackett-Burman methodology (package
// pb) to the processor simulator (package sim) and the synthetic
// benchmark suite (package workload): it is the harness behind
// Tables 9-12 of the paper.
package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/runner"
	"pbsim/internal/sampling"
	"pbsim/internal/sim"
	"pbsim/internal/trace"
	"pbsim/internal/workload"
)

// DefaultInstructions is the per-run measured instruction budget used
// by the command-line tools when none is given. The paper ran each
// benchmark to completion (0.6-4 G instructions); the synthetic
// streams reach steady state within tens of thousands.
const DefaultInstructions = 100000

// DefaultWarmup is the per-run warmup budget: instructions simulated
// before measurement begins, so that cold-cache compulsory misses do
// not distort the factor effects.
const DefaultWarmup = 30000

// ShortcutFactory builds a fresh enhancement instance for one
// simulation run (runs execute concurrently, so state cannot be
// shared). A nil factory simulates the unenhanced processor.
type ShortcutFactory func(w workload.Workload) (sim.ComputeShortcut, error)

// Options configures a suite experiment.
type Options struct {
	// Instructions measured per simulation run.
	Instructions int64
	// Warmup instructions simulated before measurement; negative
	// selects DefaultWarmup, zero disables warmup.
	Warmup int64
	// Foldover selects the 2X-run design (the paper's X=44 foldover
	// design with 88 configurations).
	Foldover bool
	// Parallelism bounds concurrently simulated configurations
	// (GOMAXPROCS when 0).
	Parallelism int
	// Shortcut optionally enables an enhancement (Table 12).
	Shortcut ShortcutFactory
	// Sampling, when non-nil, replaces every row's full simulation with
	// a region-sampled one (see internal/sampling): the response becomes
	// the extrapolated cycle count. Mutually exclusive with Shortcut
	// (the enhancement's observation stream assumes a full run).
	Sampling *sampling.Spec
	// Workloads restricts the benchmark suite; nil selects all 13.
	Workloads []workload.Workload

	// Timeout bounds each configuration's simulation attempt; zero
	// disables the per-row deadline.
	Timeout time.Duration
	// Retries is the number of extra attempts a failed configuration
	// gets before the benchmark is failed with an aggregate error.
	Retries int
	// Backoff overrides the base retry delay (runner.DefaultBackoff
	// when zero).
	Backoff time.Duration
	// Checkpoint, when non-empty, is the path of a JSONL journal of
	// completed configurations: an interrupted suite rerun with the
	// same options resumes exactly where it stopped and reproduces
	// identical effects and ranks.
	Checkpoint string
	// Label distinguishes experiment variants (e.g. the base and
	// enhanced suites of Table 12) that share one checkpoint file.
	// Empty means "base".
	Label string
	// OnRow, when non-nil, observes every completed configuration
	// (scope is "label/benchmark"); fromCheckpoint marks rows that
	// were restored rather than simulated.
	OnRow func(scope string, row int, value float64, fromCheckpoint bool)
	// OnRetry, when non-nil, observes every retry decision.
	OnRetry func(scope string, row, attempt int, delay time.Duration, err error)
	// Recorder, when non-nil, receives the full observability event
	// stream (suite/run lifecycle, per-attempt latency, retries,
	// checkpoint restores, worker occupancy). The suite announcement
	// carries the same fingerprint the checkpoint uses, so a metrics
	// JSONL and a checkpoint JSONL from one campaign join on it.
	// Recording never changes scheduling or results.
	Recorder obs.Recorder
}

// Response builds the pb.FallibleResponse for one workload: each
// design row is translated to a processor configuration, a fresh CPU
// simulates the workload's deterministic stream, and the simulated
// execution time in cycles is the response value. Failures are
// returned as errors carrying the benchmark name (the runner adds the
// row), never raised as panics.
func Response(w workload.Workload, warmup, instructions int64, shortcut ShortcutFactory) pb.FallibleResponse {
	// All rows of one benchmark replay the identical instruction
	// stream, so a Reset generator is indistinguishable from a fresh
	// one; pooling lets concurrent workers recycle the visit table and
	// RNG scratch across the design's 44-88 rows instead of
	// reallocating them per row.
	var gens sync.Pool
	return func(ctx context.Context, levels []pb.Level) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cfg := sim.ConfigForLevels(levels)
		gen, _ := gens.Get().(*trace.Generator)
		if gen == nil {
			var err error
			if gen, err = w.NewGenerator(); err != nil {
				return 0, fmt.Errorf("workload %s: %w", w.Name, err)
			}
		} else {
			gen.Reset()
		}
		defer gens.Put(gen)
		var err error
		var sc sim.ComputeShortcut
		if shortcut != nil {
			if sc, err = shortcut(w); err != nil {
				return 0, fmt.Errorf("shortcut for %s: %w", w.Name, err)
			}
		}
		cpu, err := sim.New(cfg, gen, sc)
		if err != nil {
			return 0, fmt.Errorf("config for %s: %w", w.Name, err)
		}
		cpu.PrewarmMemory()
		stats, err := cpu.RunWithWarmup(warmup, instructions)
		if err != nil {
			return 0, fmt.Errorf("run %s: %w", w.Name, err)
		}
		return float64(stats.Cycles), nil
	}
}

// SampledResponse is Response with region sampling: each design row
// runs the sampled simulation instead of the full one and reports the
// extrapolated cycle count. The spec must be normalized and valid; all
// rows of one workload share a memoized schedule, so the functional
// pre-passes are paid once, not per row.
func SampledResponse(w workload.Workload, warmup, instructions int64, spec sampling.Spec) pb.FallibleResponse {
	var gens sync.Pool
	return func(ctx context.Context, levels []pb.Level) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cfg := sim.ConfigForLevels(levels)
		gen, _ := gens.Get().(*trace.Generator)
		if gen == nil {
			var err error
			if gen, err = w.NewGenerator(); err != nil {
				return 0, fmt.Errorf("workload %s: %w", w.Name, err)
			}
		}
		defer gens.Put(gen)
		res, err := sampling.Run(cfg, gen, warmup, instructions, spec)
		if err != nil {
			return 0, fmt.Errorf("sampled run %s: %w", w.Name, err)
		}
		return res.Cycles, nil
	}
}

// RunSuite executes the full PB experiment over the benchmark suite
// and returns per-benchmark ranks plus the sum-of-ranks ordering. It
// is the non-cancellable adapter over RunSuiteCtx.
func RunSuite(opts Options) (*pb.Suite, error) {
	return RunSuiteCtx(context.Background(), opts)
}

// RunSuiteCtx is the fault-tolerant suite entry point: the context
// cancels the whole experiment (all in-flight simulations drain
// before it returns), and the Options' Timeout/Retries/Checkpoint
// fields configure the resilient runner.
func RunSuiteCtx(ctx context.Context, opts Options) (suite *pb.Suite, err error) {
	if opts.Instructions <= 0 {
		opts.Instructions = DefaultInstructions
	}
	if opts.Warmup < 0 {
		opts.Warmup = DefaultWarmup
	}
	if opts.Sampling != nil {
		if opts.Shortcut != nil {
			return nil, fmt.Errorf("experiment: sampling cannot be combined with an enhancement shortcut")
		}
		spec := opts.Sampling.Normalized()
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		opts.Sampling = &spec
	}
	ws := opts.Workloads
	if ws == nil {
		ws = workload.All()
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("experiment: empty workload list")
	}
	factors := sim.Factors()
	design, err := pb.New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	pbOpts := pb.Options{
		Foldover:    opts.Foldover,
		Parallelism: opts.Parallelism,
		Runner: runner.Config{
			Timeout:  opts.Timeout,
			Retries:  opts.Retries,
			Backoff:  opts.Backoff,
			Scope:    label(opts),
			OnRow:    opts.OnRow,
			OnRetry:  opts.OnRetry,
			Recorder: opts.Recorder,
		},
	}
	if opts.Recorder != nil {
		opts.Recorder.SuiteStarted(Fingerprint(design, opts), len(ws), design.Runs())
	}
	if opts.Checkpoint != "" {
		cp, cpErr := runner.OpenCheckpoint(opts.Checkpoint, Fingerprint(design, opts))
		if cpErr != nil {
			return nil, fmt.Errorf("experiment: %w", cpErr)
		}
		// A failed checkpoint close means recorded rows may not be
		// durable; surface it rather than let a later resume silently
		// re-simulate (or worse, trust a truncated file).
		defer func() {
			if cerr := cp.Close(); cerr != nil && err == nil {
				suite, err = nil, fmt.Errorf("experiment: close checkpoint: %w", cerr)
			}
		}()
		pbOpts.Runner.Checkpoint = cp
	}
	names := make([]string, len(ws))
	responses := make([]pb.FallibleResponse, len(ws))
	for i, w := range ws {
		names[i] = w.Name
		if opts.Sampling != nil {
			responses[i] = SampledResponse(w, opts.Warmup, opts.Instructions, *opts.Sampling)
		} else {
			responses[i] = Response(w, opts.Warmup, opts.Instructions, opts.Shortcut)
		}
	}
	return pb.RunSuiteWithDesignCtx(ctx, design, factors, names, responses, pbOpts)
}

// Fingerprint identifies one experiment variant inside a checkpoint
// file: the design geometry plus every option that changes the
// simulated cycle counts. Rows checkpointed under a different
// fingerprint are ignored on resume, so restarting with different
// budgets (or with an enhancement toggled) can never splice stale
// responses into the effects.
func Fingerprint(design *pb.Design, opts Options) string {
	fp := fmt.Sprintf("%s|n=%d|warmup=%d|label=%s",
		design.Fingerprint(), opts.Instructions, opts.Warmup, label(opts))
	if opts.Sampling != nil {
		// The canonical spec string, so equivalent specs collide and any
		// change in sampling parameters invalidates checkpointed rows.
		fp += "|sample=" + opts.Sampling.String()
	}
	return fp
}

func label(opts Options) string {
	if opts.Label == "" {
		return "base"
	}
	return opts.Label
}
