// Package experiment wires the Plackett-Burman methodology (package
// pb) to the processor simulator (package sim) and the synthetic
// benchmark suite (package workload): it is the harness behind
// Tables 9-12 of the paper.
package experiment

import (
	"fmt"

	"pbsim/internal/pb"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

// DefaultInstructions is the per-run measured instruction budget used
// by the command-line tools when none is given. The paper ran each
// benchmark to completion (0.6-4 G instructions); the synthetic
// streams reach steady state within tens of thousands.
const DefaultInstructions = 100000

// DefaultWarmup is the per-run warmup budget: instructions simulated
// before measurement begins, so that cold-cache compulsory misses do
// not distort the factor effects.
const DefaultWarmup = 30000

// ShortcutFactory builds a fresh enhancement instance for one
// simulation run (runs execute concurrently, so state cannot be
// shared). A nil factory simulates the unenhanced processor.
type ShortcutFactory func(w workload.Workload) (sim.ComputeShortcut, error)

// Options configures a suite experiment.
type Options struct {
	// Instructions measured per simulation run.
	Instructions int64
	// Warmup instructions simulated before measurement; negative
	// selects DefaultWarmup, zero disables warmup.
	Warmup int64
	// Foldover selects the 2X-run design (the paper's X=44 foldover
	// design with 88 configurations).
	Foldover bool
	// Parallelism bounds concurrently simulated configurations
	// (GOMAXPROCS when 0).
	Parallelism int
	// Shortcut optionally enables an enhancement (Table 12).
	Shortcut ShortcutFactory
	// Workloads restricts the benchmark suite; nil selects all 13.
	Workloads []workload.Workload
}

// Response builds the pb.Response for one workload: each design row is
// translated to a processor configuration, a fresh CPU simulates the
// workload's deterministic stream, and the simulated execution time in
// cycles is the response value.
func Response(w workload.Workload, warmup, instructions int64, shortcut ShortcutFactory) pb.Response {
	return func(levels []pb.Level) float64 {
		cfg := sim.ConfigForLevels(levels)
		gen, err := w.NewGenerator()
		if err != nil {
			panic(fmt.Sprintf("experiment: workload %s: %v", w.Name, err))
		}
		var sc sim.ComputeShortcut
		if shortcut != nil {
			if sc, err = shortcut(w); err != nil {
				panic(fmt.Sprintf("experiment: shortcut for %s: %v", w.Name, err))
			}
		}
		cpu, err := sim.New(cfg, gen, sc)
		if err != nil {
			panic(fmt.Sprintf("experiment: config for %s: %v", w.Name, err))
		}
		cpu.PrewarmMemory()
		stats, err := cpu.RunWithWarmup(warmup, instructions)
		if err != nil {
			panic(fmt.Sprintf("experiment: run %s: %v", w.Name, err))
		}
		return float64(stats.Cycles)
	}
}

// RunSuite executes the full PB experiment over the benchmark suite
// and returns per-benchmark ranks plus the sum-of-ranks ordering.
func RunSuite(opts Options) (*pb.Suite, error) {
	if opts.Instructions <= 0 {
		opts.Instructions = DefaultInstructions
	}
	if opts.Warmup < 0 {
		opts.Warmup = DefaultWarmup
	}
	ws := opts.Workloads
	if ws == nil {
		ws = workload.All()
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("experiment: empty workload list")
	}
	names := make([]string, len(ws))
	responses := make([]pb.Response, len(ws))
	for i, w := range ws {
		names[i] = w.Name
		responses[i] = Response(w, opts.Warmup, opts.Instructions, opts.Shortcut)
	}
	return pb.RunSuite(sim.Factors(), names, responses, pb.Options{
		Foldover:    opts.Foldover,
		Parallelism: opts.Parallelism,
	})
}
