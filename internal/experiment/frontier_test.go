package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"pbsim/internal/pb"
	"pbsim/internal/sampling"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func frontierWorkloads(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	ws := make([]workload.Workload, len(names))
	for i, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return ws
}

// TestFrontierGate is the acceptance pin for sampled Table 9: at a
// half-scale budget over four benchmarks spanning the suite's behavior
// (compute-bound gzip, memory-bound mcf and art, cache-friendly
// twolf), every estimator must cut detailed instructions by at least
// 10x while keeping Spearman rank correlation with the full ranking at
// or above 0.95. The whole pipeline is deterministic, so these bounds
// pin real margins, not luck. CI runs the same gate at full scale via
// `make frontier`.
func TestFrontierGate(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier gate simulates several suites")
	}
	rep, err := RunFrontier(context.Background(), FrontierOptions{
		Instructions: 50000,
		Warmup:       15000,
		Foldover:     true,
		Workloads:    frontierWorkloads(t, "gzip", "mcf", "twolf", "art"),
		Spec: sampling.Spec{
			RegionSize:   1000,
			Fraction:     0.08,
			RegionWarmup: -1,
			FuncWarmup:   12000,
			Seed:         1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("swept %d estimators, want 3", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.InstrSpeedup < 10 {
			t.Errorf("%s: instruction speedup %.1fx below the 10x gate", p.Estimator, p.InstrSpeedup)
		}
		if p.Spearman < 0.95 {
			t.Errorf("%s: Spearman %.3f below the 0.95 gate", p.Estimator, p.Spearman)
		}
		if !p.Pass {
			t.Errorf("%s: point marked failed", p.Estimator)
		}
		if p.MeanCPIRelErr <= 0 || p.MeanCPIRelErr > 0.15 {
			t.Errorf("%s: mean CPI relative error %.2f%% outside (0, 15%%]", p.Estimator, 100*p.MeanCPIRelErr)
		}
		if p.DetailedInstructions <= 0 || p.FunctionalInstructions <= 0 {
			t.Errorf("%s: degenerate cost accounting %+v", p.Estimator, p)
		}
	}
	if !rep.Pass {
		t.Error("frontier gate failed")
	}
	var text, md strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "PASS") || !strings.Contains(md.String(), "PASS") {
		t.Error("renderers must state the verdict")
	}
}

// TestSampledSuiteFractionOneBitIdentical is the suite-level census
// property: Sampling with Fraction 1.0 must produce response vectors
// bit-identical to the unsampled suite.
func TestSampledSuiteFractionOneBitIdentical(t *testing.T) {
	ws := frontierWorkloads(t, "gzip", "twolf")
	base := Options{Instructions: 8000, Warmup: 2000, Workloads: ws}
	full, err := RunSuite(base)
	if err != nil {
		t.Fatal(err)
	}
	sampled := base
	sampled.Sampling = &sampling.Spec{Fraction: 1.0, RegionWarmup: -1, FuncWarmup: -1}
	got, err := RunSuite(sampled)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range full.Results {
		fr, sr := full.Results[bi].Responses, got.Results[bi].Responses
		if len(fr) != len(sr) {
			t.Fatalf("benchmark %s: %d vs %d responses", full.Benchmarks[bi], len(fr), len(sr))
		}
		for i := range fr {
			if math.Float64bits(fr[i]) != math.Float64bits(sr[i]) {
				t.Fatalf("benchmark %s row %d: sampled %v != full %v", full.Benchmarks[bi], i, sr[i], fr[i])
			}
		}
	}
}

// TestSamplingRefusesShortcut pins the mutual exclusion: an enhanced
// (shortcut) suite cannot be sampled.
func TestSamplingRefusesShortcut(t *testing.T) {
	opts := Options{
		Instructions: 8000,
		Workloads:    frontierWorkloads(t, "gzip"),
		Sampling:     &sampling.Spec{},
		Shortcut:     func(w workload.Workload) (sim.ComputeShortcut, error) { return nil, nil },
	}
	if _, err := RunSuite(opts); err == nil {
		t.Fatal("sampling + shortcut must be rejected")
	}
}

// TestFingerprintDistinguishesSampling: a sampled experiment must never
// share a checkpoint fingerprint with the full one, or with a sampled
// one under different parameters — while equivalent specs (explicit
// defaults vs defaulted zeros) must collide.
func TestFingerprintDistinguishesSampling(t *testing.T) {
	design, err := pb.New(len(sim.Factors()), true)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Instructions: 1000, Warmup: 100}
	spec := sampling.Spec{Fraction: 0.25}
	a := base
	a.Sampling = &spec
	full := Fingerprint(design, base)
	sampledFP := Fingerprint(design, a)
	if full == sampledFP {
		t.Fatal("sampled and full fingerprints collide")
	}
	other := base
	other.Sampling = &sampling.Spec{Fraction: 0.5}
	if Fingerprint(design, other) == sampledFP {
		t.Fatal("different fractions share a fingerprint")
	}
	explicit := spec.Normalized()
	b := base
	b.Sampling = &explicit
	if Fingerprint(design, b) != sampledFP {
		t.Fatal("equivalent specs (defaulted vs explicit) must share a fingerprint")
	}
}

// TestCampaignRoundTripSampling: a sampled campaign manifest must let a
// bare worker reconstruct Options whose fingerprint matches, and
// CampaignTask must accept them.
func TestCampaignRoundTripSampling(t *testing.T) {
	opts := Options{
		Instructions: 4000,
		Warmup:       1000,
		Foldover:     true,
		Workloads:    frontierWorkloads(t, "gzip", "twolf"),
		Sampling:     &sampling.Spec{Fraction: 0.25, RegionWarmup: -1, FuncWarmup: 2000, Seed: 9},
	}
	man, err := CampaignManifest(opts)
	if err != nil {
		t.Fatal(err)
	}
	if man.Spec[specSample] == "" {
		t.Fatal("manifest lacks the sample spec")
	}
	rec, err := OptionsFromSpec(man.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sampling == nil {
		t.Fatal("reconstructed options lack sampling")
	}
	task, err := CampaignTask(rec, man)
	if err != nil {
		t.Fatal(err)
	}
	// One row through the reconstructed task must equal the same row
	// through the original options' task, bit for bit.
	orig, err := CampaignTask(opts, man)
	if err != nil {
		t.Fatal(err)
	}
	a, err := task(context.Background(), "gzip", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := orig(context.Background(), "gzip", 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("reconstructed row %v != original %v", a, b)
	}
}
