package experiment

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"pbsim/internal/pb"
	"pbsim/internal/runner/dist"
	"pbsim/internal/sampling"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

// This file is the glue between the experiment harness and the
// distributed execution layer (internal/runner/dist): it translates
// an Options into a campaign manifest whose Spec lets a bare
// cmd/pbworker process reconstruct the identical task from the
// campaign directory alone, and folds a completed merge back into the
// pb.Suite the sequential path produces.

// Spec keys stored in the campaign manifest.
const (
	specTool       = "tool"
	specN          = "n"
	specWarmup     = "warmup"
	specFoldover   = "foldover"
	specLabel      = "label"
	specBenchmarks = "benchmarks"
	specSample     = "sample"
)

// campaignPlan is everything derivable from Options that the
// distributed path needs: the design, the resolved workload list, and
// the fingerprint.
type campaignPlan struct {
	opts    Options
	design  *pb.Design
	factors []pb.Factor
	ws      []workload.Workload
}

func planCampaign(opts Options) (*campaignPlan, error) {
	if opts.Shortcut != nil {
		return nil, fmt.Errorf("experiment: distributed campaigns run the base simulator only (enhancement shortcuts cannot be reconstructed from a manifest)")
	}
	if opts.Instructions <= 0 {
		opts.Instructions = DefaultInstructions
	}
	if opts.Warmup < 0 {
		opts.Warmup = DefaultWarmup
	}
	if opts.Sampling != nil {
		// Normalize here so the manifest, the fingerprint, and every
		// reconstructing worker agree on one canonical spec.
		spec := opts.Sampling.Normalized()
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		opts.Sampling = &spec
	}
	ws := opts.Workloads
	if ws == nil {
		ws = workload.All()
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("experiment: empty workload list")
	}
	factors := sim.Factors()
	design, err := pb.New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	return &campaignPlan{opts: opts, design: design, factors: factors, ws: ws}, nil
}

// CampaignManifest builds the dist manifest for opts: one scope per
// benchmark with Design.Runs() rows each, fingerprinted exactly as
// the sequential checkpoint path fingerprints the experiment, and a
// Spec from which OptionsFromSpec reconstructs the task.
func CampaignManifest(opts Options) (dist.Manifest, error) {
	p, err := planCampaign(opts)
	if err != nil {
		return dist.Manifest{}, err
	}
	man := dist.Manifest{
		Fingerprint: Fingerprint(p.design, p.opts),
		Spec: map[string]string{
			specTool:       "pbrank",
			specN:          strconv.FormatInt(p.opts.Instructions, 10),
			specWarmup:     strconv.FormatInt(p.opts.Warmup, 10),
			specFoldover:   strconv.FormatBool(p.opts.Foldover),
			specLabel:      label(p.opts),
			specBenchmarks: benchNames(p.ws),
		},
	}
	if p.opts.Sampling != nil {
		man.Spec[specSample] = p.opts.Sampling.String()
	}
	for _, w := range p.ws {
		man.Scopes = append(man.Scopes, dist.ScopeSpec{Name: w.Name, Rows: p.design.Runs()})
	}
	return man, nil
}

// OptionsFromSpec reconstructs the experiment Options a joining
// worker needs from a campaign manifest written by CampaignManifest.
// The caller must still verify the reconstruction by comparing the
// recomputed fingerprint against the manifest's (CampaignTask does).
func OptionsFromSpec(spec map[string]string) (Options, error) {
	var opts Options
	if tool := spec[specTool]; tool != "pbrank" {
		return opts, fmt.Errorf("experiment: campaign spec is for tool %q, not a pbrank experiment", tool)
	}
	var err error
	if opts.Instructions, err = strconv.ParseInt(spec[specN], 10, 64); err != nil {
		return opts, fmt.Errorf("experiment: campaign spec %s: %w", specN, err)
	}
	if opts.Warmup, err = strconv.ParseInt(spec[specWarmup], 10, 64); err != nil {
		return opts, fmt.Errorf("experiment: campaign spec %s: %w", specWarmup, err)
	}
	if opts.Foldover, err = strconv.ParseBool(spec[specFoldover]); err != nil {
		return opts, fmt.Errorf("experiment: campaign spec %s: %w", specFoldover, err)
	}
	if l := spec[specLabel]; l != "base" {
		opts.Label = l
	}
	if text, ok := spec[specSample]; ok {
		s, err := sampling.ParseSpec(text)
		if err != nil {
			return opts, fmt.Errorf("experiment: campaign spec %s: %w", specSample, err)
		}
		opts.Sampling = &s
	}
	for _, name := range strings.Split(spec[specBenchmarks], ",") {
		w, err := workload.ByName(name)
		if err != nil {
			return opts, fmt.Errorf("experiment: campaign spec %s: %w", specBenchmarks, err)
		}
		opts.Workloads = append(opts.Workloads, w)
	}
	return opts, nil
}

// CampaignTask builds the dist.Task for opts and validates it against
// the manifest the task will execute under: the fingerprint recomputed
// from opts must equal man.Fingerprint, so a worker reconstructed from
// a Spec (or handed divergent flags) can never commit rows computed
// under different budgets into someone else's campaign.
func CampaignTask(opts Options, man dist.Manifest) (dist.Task, error) {
	p, err := planCampaign(opts)
	if err != nil {
		return nil, err
	}
	if fp := Fingerprint(p.design, p.opts); fp != man.Fingerprint {
		return nil, fmt.Errorf("experiment: options fingerprint %q does not match campaign %q", fp, man.Fingerprint)
	}
	byName := make(map[string]pb.FallibleResponse, len(p.ws))
	for _, w := range p.ws {
		if p.opts.Sampling != nil {
			byName[w.Name] = SampledResponse(w, p.opts.Warmup, p.opts.Instructions, *p.opts.Sampling)
		} else {
			byName[w.Name] = Response(w, p.opts.Warmup, p.opts.Instructions, nil)
		}
	}
	for _, s := range man.Scopes {
		if byName[s.Name] == nil {
			return nil, fmt.Errorf("experiment: campaign scope %q is not among this worker's benchmarks", s.Name)
		}
		if s.Rows != p.design.Runs() {
			return nil, fmt.Errorf("experiment: campaign scope %q has %d rows, design needs %d", s.Name, s.Rows, p.design.Runs())
		}
	}
	design := p.design
	return func(ctx context.Context, scope string, row int) (float64, error) {
		resp, ok := byName[scope]
		if !ok {
			return 0, fmt.Errorf("experiment: unknown scope %q", scope)
		}
		if row < 0 || row >= design.Runs() {
			return 0, fmt.Errorf("experiment: row %d outside design with %d runs", row, design.Runs())
		}
		return resp(ctx, design.Row(row))
	}, nil
}

// SuiteFromMerge folds a complete merge back into the pb.Suite the
// sequential path produces from the same options: identical effects,
// ranks, and sum-of-ranks ordering, because the response vectors are
// bit-identical. An incomplete merge is an error — a partial campaign
// must never rank parameters.
func SuiteFromMerge(opts Options, m *dist.MergeResult) (*pb.Suite, error) {
	p, err := planCampaign(opts)
	if err != nil {
		return nil, err
	}
	if fp := Fingerprint(p.design, p.opts); fp != m.Fingerprint {
		return nil, fmt.Errorf("experiment: options fingerprint %q does not match merged campaign %q", fp, m.Fingerprint)
	}
	names := make([]string, len(p.ws))
	vecs := make([][]float64, len(p.ws))
	for i, w := range p.ws {
		names[i] = w.Name
		vec, err := m.Responses(w.Name)
		if err != nil {
			return nil, err
		}
		vecs[i] = vec
	}
	return pb.SuiteFromResponses(p.design, p.factors, names, vecs)
}

func benchNames(ws []workload.Workload) string {
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return strings.Join(names, ",")
}
