package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"pbsim/internal/pb"
)

// WriteRanksCSV emits a suite's rank matrix in machine-readable form:
// one row per factor in sum-of-ranks order with per-benchmark ranks
// and the sum, mirroring the layout of the paper's Tables 9 and 12.
func WriteRanksCSV(w io.Writer, suite *pb.Suite) error {
	cw := csv.NewWriter(w)
	header := append([]string{"parameter"}, suite.Benchmarks...)
	header = append(header, "sum")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, fi := range suite.Order {
		row := make([]string, 0, len(header))
		row = append(row, suite.Factors[fi].Name)
		for b := range suite.Benchmarks {
			row = append(row, strconv.Itoa(suite.RankRows[b][fi]))
		}
		row = append(row, strconv.Itoa(suite.Sums[fi]))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteResponsesCSV emits the raw experiment responses: one row per
// design configuration with its factor levels and the measured cycle
// count of every benchmark — the complete data underlying a Table 9
// run, suitable for re-analysis in external statistics tools.
func WriteResponsesCSV(w io.Writer, suite *pb.Suite) error {
	for _, res := range suite.Results {
		if res == nil {
			return fmt.Errorf("experiment: suite has no per-benchmark results")
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"config"}
	for _, f := range suite.Factors {
		header = append(header, f.Name)
	}
	header = append(header, suite.Benchmarks...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < suite.Design.Runs(); i++ {
		row := make([]string, 0, len(header))
		row = append(row, strconv.Itoa(i))
		for _, lv := range suite.Design.Row(i) {
			row = append(row, strconv.Itoa(int(lv)))
		}
		for b := range suite.Benchmarks {
			row = append(row, strconv.FormatFloat(suite.Results[b].Responses[i], 'f', 0, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
