package experiment

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"pbsim/internal/enhance"
	"pbsim/internal/pb"
	"pbsim/internal/runner"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func TestResponseDeterministic(t *testing.T) {
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	resp, respErr := Response(w, 2000, 4000, nil).Infallible()
	design, err := pb.New(41, false)
	if err != nil {
		t.Fatal(err)
	}
	row := design.Row(0)
	if a, b := resp(row), resp(row); a != b {
		t.Errorf("response not deterministic: %g vs %g", a, b)
	}
	// The 4-wide machine cannot beat IPC 4.
	if y := resp(row); y < 1000 {
		t.Errorf("cycles = %g, below the 4-wide bound", y)
	}
	if err := respErr(); err != nil {
		t.Fatal(err)
	}
}

func TestResponseDependsOnLevels(t *testing.T) {
	w, _ := workload.ByName("mcf")
	resp, respErr := Response(w, 2000, 4000, nil).Infallible()
	low := make([]pb.Level, 43)
	high := make([]pb.Level, 43)
	for i := range low {
		low[i] = pb.Low
		high[i] = pb.High
	}
	yl, yh := resp(low), resp(high)
	if err := respErr(); err != nil {
		t.Fatal(err)
	}
	if yh >= yl {
		t.Errorf("all-high (%g cycles) should beat all-low (%g)", yh, yl)
	}
}

func TestRunSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full 88-configuration suite in -short mode")
	}
	ws := []workload.Workload{}
	for _, n := range []string{"gzip", "mcf"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	suite, err := RunSuite(Options{
		Instructions: 3000,
		Warmup:       2000,
		Foldover:     true,
		Workloads:    ws,
	})
	if err != nil {
		t.Fatal(err)
	}
	if suite.Design.X != 44 || suite.Design.Runs() != 88 {
		t.Errorf("design %dx%d, want the paper's X=44 foldover", suite.Design.X, suite.Design.Runs())
	}
	if len(suite.RankRows) != 2 {
		t.Fatalf("rank rows = %d", len(suite.RankRows))
	}
	if len(suite.Sums) != 43 {
		t.Fatalf("sums = %d", len(suite.Sums))
	}
	// mcf is the most memory-bound workload: its top factors must
	// include the L2/memory parameters, and the dummy factors must
	// rank in the bottom half.
	names := map[string]int{}
	for i, f := range suite.Factors {
		names[f.Name] = i
	}
	mcfRanks := suite.RankRows[1]
	memTop := false
	for _, n := range []string{"L2 Cache Size", "Memory Latency First", "L2 Cache Latency"} {
		if mcfRanks[names[n]] <= 5 {
			memTop = true
		}
	}
	if !memTop {
		t.Errorf("mcf top factors miss the memory system: L2size=%d memlat=%d L2lat=%d",
			mcfRanks[names["L2 Cache Size"]], mcfRanks[names["Memory Latency First"]], mcfRanks[names["L2 Cache Latency"]])
	}
	for _, bench := range suite.RankRows {
		for _, dummy := range []string{"Dummy Factor #1", "Dummy Factor #2"} {
			if r := bench[names[dummy]]; r <= 5 {
				t.Errorf("%s ranks %d: dummy factors must not be top-5", dummy, r)
			}
		}
	}
}

func TestResponsePropagatesErrors(t *testing.T) {
	// A workload whose generator cannot be built (zero-value Params
	// fail validation) must surface an error naming the benchmark —
	// the historical behavior was a panic that killed the whole suite.
	bad := workload.Workload{Name: "broken"}
	resp := Response(bad, 0, 1000, nil)
	_, err := resp(context.Background(), make([]pb.Level, 43))
	if err == nil {
		t.Fatal("invalid workload accepted")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the workload", err)
	}

	// A failing shortcut factory is also an error, not a panic.
	w, _ := workload.ByName("gzip")
	factoryErr := errors.New("table allocation failed")
	resp = Response(w, 0, 1000, func(workload.Workload) (sim.ComputeShortcut, error) {
		return nil, factoryErr
	})
	if _, err := resp(context.Background(), make([]pb.Level, 43)); !errors.Is(err, factoryErr) {
		t.Errorf("shortcut error not propagated: %v", err)
	}

	// A whole suite over the broken workload fails with an aggregate
	// error instead of dying.
	_, err = RunSuite(Options{
		Instructions: 1000,
		Workloads:    []workload.Workload{bad},
	})
	var runErr *runner.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("suite over broken workload: want *runner.RunError, got %v", err)
	}
}

func TestRunSuiteCancellation(t *testing.T) {
	ws := []workload.Workload{}
	for _, n := range []string{"gzip", "mcf"} {
		w, _ := workload.ByName(n)
		ws = append(ws, w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first row
	_, err := RunSuiteCtx(ctx, Options{
		Instructions: 1000,
		Warmup:       0,
		Foldover:     true,
		Workloads:    ws,
	})
	if !runner.Cancelled(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

func TestRunSuiteCheckpointResume(t *testing.T) {
	w, _ := workload.ByName("gzip")
	opts := Options{
		Instructions: 2000,
		Warmup:       1000,
		Workloads:    []workload.Workload{w},
		Checkpoint:   filepath.Join(t.TempDir(), "suite.jsonl"),
	}
	first, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Rerun with the same options: every row restores, nothing is
	// re-simulated, and the responses are bit-identical.
	var restored, simulated int
	opts.OnRow = func(_ string, _ int, _ float64, fromCheckpoint bool) {
		if fromCheckpoint {
			restored++
		} else {
			simulated++
		}
	}
	opts.Parallelism = 1 // serialize so the OnRow counters need no lock
	second, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 || restored != first.Design.Runs() {
		t.Errorf("resume simulated %d rows and restored %d, want 0 and %d", simulated, restored, first.Design.Runs())
	}
	for i := range first.Results[0].Responses {
		a, b := first.Results[0].Responses[i], second.Results[0].Responses[i]
		if a != b {
			t.Errorf("row %d: %g != %g after resume", i, b, a)
		}
	}
	// A different instruction budget changes the fingerprint: the
	// stale rows must NOT be reused.
	opts.OnRow = nil
	opts.Instructions = 3000
	third, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Results[0].Responses[0] == first.Results[0].Responses[0] {
		t.Error("checkpoint rows leaked across a changed instruction budget")
	}
}

func TestRunSuiteDefaults(t *testing.T) {
	// Option defaulting: explicit zero instructions selects the
	// default, negative warmup selects the default warmup.
	if _, err := RunSuite(Options{Workloads: []workload.Workload{}}); err == nil {
		t.Error("empty workload list accepted")
	}
}

func TestResponseWithShortcut(t *testing.T) {
	w, _ := workload.ByName("gzip")
	factory := func(w workload.Workload) (sim.ComputeShortcut, error) {
		freq, err := enhance.Profile(w.Params, 20000)
		if err != nil {
			return nil, err
		}
		return enhance.NewPrecomputation(freq, 128)
	}
	base, baseErr := Response(w, 2000, 5000, nil).Infallible()
	enhanced, enhancedErr := Response(w, 2000, 5000, factory).Infallible()
	levels := make([]pb.Level, 43)
	for i := range levels {
		levels[i] = pb.Low
	}
	yb, ye := base(levels), enhanced(levels)
	if err := baseErr(); err != nil {
		t.Fatal(err)
	}
	if err := enhancedErr(); err != nil {
		t.Fatal(err)
	}
	if ye >= yb {
		t.Errorf("precomputation did not speed up the run: %g vs %g", ye, yb)
	}
}

func TestTable9ShapeFullSuite(t *testing.T) {
	// Full 13-benchmark, 88-configuration experiment at reduced scale:
	// the qualitative Table 9 shape must hold.
	if testing.Short() {
		t.Skip("full-suite shape test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("13x88 full-scale suite exceeds the race detector's time budget; " +
			"the suite's concurrency is covered by the runner, pb, and checkpoint race tests")
	}
	suite, err := RunSuite(Options{
		Instructions: 20000,
		Warmup:       10000,
		Foldover:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, f := range suite.Order {
		pos[suite.Factors[f].Name] = i + 1
	}
	// The paper's strongest conclusions, which must survive the
	// synthetic substitution:
	// 1. ROB and L2 latency are top-5 overall.
	for _, name := range []string{"Reorder Buffer Entries", "L2 Cache Latency"} {
		if pos[name] > 5 {
			t.Errorf("%s at position %d, want top-5", name, pos[name])
		}
	}
	// 2. The memory-system core (L2 size, memory latency) is top-8.
	for _, name := range []string{"L2 Cache Size", "Memory Latency First"} {
		if pos[name] > 8 {
			t.Errorf("%s at position %d, want top-8", name, pos[name])
		}
	}
	// 3. Dummy factors carry no real effect: never top-15.
	for _, name := range []string{"Dummy Factor #1", "Dummy Factor #2"} {
		if pos[name] <= 15 {
			t.Errorf("%s at position %d, dummies must not look significant", name, pos[name])
		}
	}
	// 4. Rare-operation latencies and the RAS sit in the bottom half.
	for _, name := range []string{"FP Square Root Latency", "Return Address Stack Entries", "Memory Ports"} {
		if pos[name] <= 21 {
			t.Errorf("%s at position %d, want bottom half", name, pos[name])
		}
	}
	// 5. Per-benchmark fingerprints: the memory-bound benchmarks rank
	// L2 size first or second; twolf does not.
	names := map[string]int{}
	for i, f := range suite.Factors {
		names[f.Name] = i
	}
	bench := map[string]int{}
	for i, b := range suite.Benchmarks {
		bench[b] = i
	}
	for _, b := range []string{"art", "mcf"} {
		if r := suite.RankRows[bench[b]][names["L2 Cache Size"]]; r > 2 {
			t.Errorf("%s: L2 size rank %d, want <= 2", b, r)
		}
	}
	if r := suite.RankRows[bench["twolf"]][names["L2 Cache Size"]]; r <= 5 {
		t.Errorf("twolf: L2 size rank %d, its working set fits any L2", r)
	}
	// 6. gzip is compute-bound: memory latency is not in its top 15.
	if r := suite.RankRows[bench["gzip"]][names["Memory Latency First"]]; r <= 15 {
		t.Errorf("gzip: memory latency rank %d, want > 15", r)
	}
}

func TestCSVExports(t *testing.T) {
	factors := []pb.Factor{{Name: "A"}, {Name: "B"}}
	resp := func(l []pb.Level) float64 { return 100 + 10*float64(l[0]) }
	suite, err := pb.RunSuite(factors, []string{"w1"}, []pb.Response{resp}, pb.Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	var ranks strings.Builder
	if err := WriteRanksCSV(&ranks, suite); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(ranks.String()), "\n")
	if len(lines) != 1+suite.Design.Columns {
		t.Fatalf("ranks CSV lines = %d", len(lines))
	}
	if lines[0] != "parameter,w1,sum" {
		t.Errorf("ranks header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A,1,") {
		t.Errorf("top factor row = %q", lines[1])
	}
	var resps strings.Builder
	if err := WriteResponsesCSV(&resps, suite); err != nil {
		t.Fatal(err)
	}
	rlines := strings.Split(strings.TrimSpace(resps.String()), "\n")
	if len(rlines) != 1+suite.Design.Runs() {
		t.Fatalf("responses CSV lines = %d", len(rlines))
	}
	if !strings.Contains(rlines[0], "config,A,B") || !strings.HasSuffix(rlines[0], "w1") {
		t.Errorf("responses header = %q", rlines[0])
	}
	// Row 1 has the config index, one level per column, and cycles.
	fields := strings.Split(rlines[1], ",")
	if len(fields) != 1+suite.Design.Columns+1 {
		t.Errorf("responses row width = %d", len(fields))
	}
	// A suite without results cannot emit raw responses.
	bare := *suite
	bare.Results = make([]*pb.Result, 1)
	if err := WriteResponsesCSV(&strings.Builder{}, &bare); err == nil {
		t.Error("suite without results accepted")
	}
}
