package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"pbsim/internal/runner/dist"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func distOptions(t *testing.T) Options {
	t.Helper()
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Instructions: 1000,
		Warmup:       500,
		Foldover:     false,
		Workloads:    []workload.Workload{w},
	}
}

func TestCampaignManifestSpecRoundTrip(t *testing.T) {
	opts := distOptions(t)
	man, err := CampaignManifest(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Scopes) != 1 || man.Scopes[0].Name != "gzip" || man.Scopes[0].Rows != 44 {
		t.Fatalf("scopes = %+v, want gzip with the 44-run design", man.Scopes)
	}
	back, err := OptionsFromSpec(man.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// The reconstruction is only trusted if its fingerprint matches;
	// CampaignTask is the gate, so it must accept the round trip.
	if _, err := CampaignTask(back, man); err != nil {
		t.Fatalf("round-tripped options rejected: %v", err)
	}
	// A worker with skewed flags is refused.
	skew := back
	skew.Instructions++
	if _, err := CampaignTask(skew, man); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("skewed options accepted: %v", err)
	}
}

func TestCampaignManifestRejectsShortcuts(t *testing.T) {
	opts := distOptions(t)
	opts.Shortcut = func(workload.Workload) (sim.ComputeShortcut, error) { return nil, nil }
	if _, err := CampaignManifest(opts); err == nil || !strings.Contains(err.Error(), "base simulator") {
		t.Fatalf("shortcut campaign accepted: %v", err)
	}
}

func TestOptionsFromSpecErrors(t *testing.T) {
	man, err := CampaignManifest(distOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := func(mut func(map[string]string)) map[string]string {
		spec := make(map[string]string, len(man.Spec))
		for k, v := range man.Spec {
			spec[k] = v
		}
		mut(spec)
		return spec
	}
	cases := map[string]map[string]string{
		"wrong tool":    bad(func(s map[string]string) { s["tool"] = "nmap" }),
		"bad n":         bad(func(s map[string]string) { s["n"] = "many" }),
		"bad foldover":  bad(func(s map[string]string) { s["foldover"] = "?" }),
		"bad benchmark": bad(func(s map[string]string) { s["benchmarks"] = "gzip,doom" }),
	}
	for name, spec := range cases {
		if _, err := OptionsFromSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDistributedMatchesSequential is the end-to-end bit-identity
// pin at the experiment layer: one worker executes the campaign, and
// the merged suite must carry the exact response vector and ranks the
// sequential path computes.
func TestDistributedMatchesSequential(t *testing.T) {
	opts := distOptions(t)
	seq, err := RunSuiteCtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	man, err := CampaignManifest(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	task, err := CampaignTask(opts, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.RunWorker(context.Background(), dir, task, dist.Config{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Merge(nil)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := SuiteFromMerge(opts, res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Results[0].Responses {
		s, d := seq.Results[0].Responses[i], suite.Results[0].Responses[i]
		if math.Float64bits(s) != math.Float64bits(d) {
			t.Fatalf("row %d: sequential %x, distributed %x", i, math.Float64bits(s), math.Float64bits(d))
		}
	}
	for fi := range seq.Sums {
		if seq.Sums[fi] != suite.Sums[fi] {
			t.Fatalf("sum %d diverged: %d vs %d", fi, seq.Sums[fi], suite.Sums[fi])
		}
	}

	// An incomplete merge must never rank parameters.
	res.Values["gzip"][0] = math.NaN()
	if _, err := SuiteFromMerge(opts, res); err == nil {
		t.Fatal("incomplete merge produced a suite")
	}
}
