package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pbsim/internal/analysis"
)

// TestFrameworkImportsStdlibOnly pins the ISSUE's central constraint:
// the analysis framework, its rules, and the pbcheck driver are built
// from the Go standard library alone — go/parser, go/ast, go/types,
// go/token and friends — with no golang.org/x/tools (or any other
// module) dependency. Intra-framework imports are the only non-stdlib
// paths allowed.
func TestFrameworkImportsStdlibOnly(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		"internal/analysis",
		"internal/analysis/rules",
		"cmd/pbcheck",
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(root, dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatal(err)
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatal(err)
				}
				if strings.HasPrefix(p, "pbsim/") {
					if !strings.HasPrefix(p, "pbsim/internal/analysis") {
						t.Errorf("%s/%s imports %s: the framework may not depend on the rest of the repository", dir, e.Name(), p)
					}
					continue
				}
				if first := strings.SplitN(p, "/", 2)[0]; strings.Contains(first, ".") {
					t.Errorf("%s/%s imports %s: the framework must be stdlib-only", dir, e.Name(), p)
				}
			}
		}
	}
}

// TestExpandPatterns exercises the ./... walker: testdata, vendor,
// and hidden directories are pruned from recursive patterns, while an
// explicit testdata path still resolves (the golden tests depend on
// that).
func TestExpandPatterns(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, "pbsim", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("./... expanded to no directories")
	}
	sawAnalysis := false
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range strings.Split(filepath.ToSlash(rel), "/") {
			if seg == "testdata" {
				t.Errorf("./... included testdata directory %s", rel)
			}
		}
		if filepath.ToSlash(rel) == "internal/analysis" {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Error("./... did not include internal/analysis")
	}

	explicit, err := analysis.ExpandPatterns(root, "pbsim",
		[]string{"./internal/analysis/rules/testdata/ignore"})
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit) != 1 {
		t.Fatalf("explicit testdata path expanded to %v, want exactly itself", explicit)
	}
}

// TestRelPosition covers the three filename cases the formatters rely
// on: inside root (relativized), outside root (left absolute), and
// already relative (untouched).
func TestRelPosition(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("repo", "mod")
	cases := []struct{ file, want string }{
		{filepath.Join(root, "pkg", "f.go"), "pkg/f.go"},
		{string(filepath.Separator) + filepath.Join("elsewhere", "f.go"),
			string(filepath.Separator) + filepath.Join("elsewhere", "f.go")},
		{"already/relative.go", "already/relative.go"},
	}
	for _, tc := range cases {
		if got := analysis.RelPosition(root, tc.file); got != tc.want {
			t.Errorf("RelPosition(%q, %q) = %q, want %q", root, tc.file, got, tc.want)
		}
	}
}
