package analysis

// writes.go seeds the FactWritesState fact: the per-function "does
// this mutate anything outside its own frame" analysis behind the
// purity analyzer. The question splits into two parts:
//
//  1. WHERE does a write land? writeTarget walks an lvalue from the
//     outside in, tracking whether the path crosses an indirection
//     (pointer deref, pointer-field selector, slice/map element). A
//     write that never crosses one lands in a local or a parameter
//     copy and is invisible to the caller; a write to a package-level
//     variable is always an effect; a write that crosses an
//     indirection is an effect unless the base is a provably
//     locally-allocated variable.
//
//  2. WHICH variables are provably local allocations? ownedLocals is
//     a conservative greatest-fixpoint over the function's
//     assignments: a variable is "owned" when every value it is ever
//     assigned comes from a fresh allocation the function performed
//     itself (make, new, composite literals, append/slice chains over
//     owned values, nil, scalar literals). Anything else — parameters,
//     globals, call results, range elements — is assumed aliased.
//
// Channel operations (send, close) are effects in their own right
// when the channel is not owned: they are observable by any other
// goroutine holding the channel.

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbsim/internal/analysis/pointsto"
)

// writeScan is the per-function context for write-effect seeding.
type writeScan struct {
	info   *types.Info
	owned  map[*types.Var]bool
	params map[*types.Var]bool // parameters + receiver + named results
	recv   *types.Var          // the receiver, when the function is a method
	// pts upgrades the syntactic ownership proof: a variable whose
	// every points-to target is a non-escaping fresh allocation is
	// owned even when the syntactic whitelist cannot see it (fresh
	// memory returned by a callee, aliases of owned allocations).
	pts   *pointsto.Result
	fnObj *types.Func
}

// newWriteScan precomputes the owned-locals and parameter sets for one
// function declaration.
func newWriteScan(fi *FuncInfo, pts *pointsto.Result) *writeScan {
	ws := &writeScan{
		info:   fi.Pkg.Info,
		params: make(map[*types.Var]bool),
		pts:    pts,
		fnObj:  fi.Obj,
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := ws.info.Defs[name].(*types.Var); ok {
					ws.params[v] = true
				}
			}
		}
	}
	if fi.Decl.Recv != nil {
		addFields(fi.Decl.Recv)
		for _, f := range fi.Decl.Recv.List {
			for _, name := range f.Names {
				if v, ok := ws.info.Defs[name].(*types.Var); ok {
					ws.recv = v
				}
			}
		}
	}
	addFields(fi.Decl.Type.Params)
	addFields(fi.Decl.Type.Results)
	ws.owned = ws.ownedLocals(fi.Decl.Body)
	return ws
}

// ownedLocals computes the set of variables that only ever hold memory
// this function allocated itself. Greatest fixpoint: start from every
// variable with at least one recorded initialization, then demote any
// whose assignments include a non-owning value until stable.
func (ws *writeScan) ownedLocals(body *ast.BlockStmt) map[*types.Var]bool {
	// sources[v] lists every expression ever assigned to v; a nil
	// entry records a zero-value declaration (var x []T), which owns
	// its (nil) value.
	sources := make(map[*types.Var][]ast.Expr)
	demoted := make(map[*types.Var]bool) // assigned in a tuple/range/other non-owning context
	record := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := ws.info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = ws.info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		sources[v] = append(sources[v], rhs)
	}
	demote := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v := ws.varOf(id); v != nil {
				demoted[v] = true
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				// Tuple assignment: call results are never owned.
				for _, lhs := range n.Lhs {
					demote(lhs)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					for _, name := range vs.Names {
						record(name, nil) // zero value: owned
					}
				case len(vs.Values) == len(vs.Names):
					for i, name := range vs.Names {
						record(name, vs.Values[i])
					}
				default:
					for _, name := range vs.Names {
						if v, ok := ws.info.Defs[name].(*types.Var); ok {
							demoted[v] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			// Key/value alias (or copy) the ranged container's
			// elements; treat as non-owning.
			if n.Key != nil {
				demote(n.Key)
			}
			if n.Value != nil {
				demote(n.Value)
			}
		case *ast.TypeSwitchStmt:
			// v := x.(type) aliases the switched value.
			if as, ok := n.Assign.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					demote(lhs)
				}
			}
		}
		return true
	})

	owned := make(map[*types.Var]bool, len(sources))
	for v := range sources {
		if !demoted[v] && !ws.params[v] {
			owned[v] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for v := range owned {
			for _, src := range sources[v] {
				if !ws.owningExpr(src, owned) {
					delete(owned, v)
					changed = true
					break
				}
			}
		}
	}
	return owned
}

// owningExpr reports whether e evaluates to memory the function
// allocated itself (under the current owned assumption), or to a value
// that cannot alias anything (literals, nil).
func (ws *writeScan) owningExpr(e ast.Expr, owned map[*types.Var]bool) bool {
	if e == nil {
		return true // zero-value declaration
	}
	switch t := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fun := ast.Unparen(t.Fun)
		if id, ok := fun.(*ast.Ident); ok {
			if b, ok := ws.info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make", "new":
					return true
				case "append":
					return len(t.Args) > 0 && ws.owningExpr(t.Args[0], owned)
				}
			}
		}
		return false
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			_, lit := ast.Unparen(t.X).(*ast.CompositeLit)
			return lit
		}
		return false
	case *ast.SliceExpr:
		return ws.owningExpr(t.X, owned)
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if t.Name == "nil" {
			return true
		}
		if v := ws.varOf(t); v != nil {
			return owned[v]
		}
		return false
	default:
		return false
	}
}

func (ws *writeScan) varOf(id *ast.Ident) *types.Var {
	if v, ok := ws.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := ws.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// writeTarget classifies one lvalue (or mutated operand). indirect
// seeds the walk: true for operations that always write through a
// reference (map delete, channel close, copy's destination). It
// returns a human-readable description of the escaping write, or
// ok=false when the write provably stays inside the frame.
func (ws *writeScan) writeTarget(expr ast.Expr, indirect bool) (what string, ok bool) {
	e := ast.Unparen(expr)
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return ws.classifyBase(t, indirect)
		case *ast.SelectorExpr:
			// Package-qualified variable: pkg.V.
			if id, isID := ast.Unparen(t.X).(*ast.Ident); isID {
				if _, isPkg := ws.info.Uses[id].(*types.PkgName); isPkg {
					if v, isVar := ws.info.Uses[t.Sel].(*types.Var); isVar {
						return "assigns package-level " + id.Name + "." + v.Name(), true
					}
					return "", false
				}
			}
			if typ := ws.info.TypeOf(t.X); typ != nil {
				if _, isPtr := typ.Underlying().(*types.Pointer); isPtr {
					indirect = true
				}
			}
			e = t.X
		case *ast.StarExpr:
			indirect = true
			e = ast.Unparen(t.X)
		case *ast.IndexExpr:
			if typ := ws.info.TypeOf(t.X); typ != nil {
				switch typ.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					indirect = true
				}
			}
			e = ast.Unparen(t.X)
		case *ast.ParenExpr:
			e = t.X
		default:
			// Writes through a computed expression (call result, type
			// assertion, ...): the engine cannot see where they land.
			return "writes through a computed expression", true
		}
	}
}

// classifyBase decides the effect of a write whose lvalue path bottoms
// out at id, given whether the path crossed an indirection.
func (ws *writeScan) classifyBase(id *ast.Ident, indirect bool) (string, bool) {
	v := ws.varOf(id)
	if v == nil {
		return "", false // blank identifier or non-variable
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "assigns package-level " + v.Pkg().Name() + "." + v.Name(), true
	}
	if !indirect {
		return "", false // writes a local (or a parameter's copy)
	}
	if ws.owned[v] {
		return "", false // memory this function allocated itself
	}
	if ws.pts != nil && ws.pts.Owned(v, ws.fnObj, ws.params) {
		return "", false // points-to proof: every target is frame-private
	}
	if v == ws.recv {
		return "writes through receiver " + v.Name(), true
	}
	if ws.params[v] {
		return "writes through parameter " + v.Name(), true
	}
	return "writes memory aliased by " + v.Name(), true
}

// scanWrites walks one node for write effects, reporting each through
// report. It handles every mutation form the engine models:
// assignments, inc/dec, range-over with assignment, channel sends, and
// the mutating builtins (delete, close, copy).
func (ws *writeScan) scanWrites(n ast.Node, report func(pos token.Pos, what string)) {
	emit := func(pos token.Pos, expr ast.Expr, indirect bool) {
		if what, ok := ws.writeTarget(expr, indirect); ok {
			report(pos, what)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			emit(lhs.Pos(), lhs, false)
		}
	case *ast.IncDecStmt:
		emit(n.X.Pos(), n.X, false)
	case *ast.SendStmt:
		if what, ok := ws.writeTarget(n.Chan, true); ok {
			report(n.Arrow, "sends on "+describeChan(n.Chan, what))
		}
	case *ast.RangeStmt:
		if n.Tok == token.ASSIGN {
			if n.Key != nil {
				emit(n.Key.Pos(), n.Key, false)
			}
			if n.Value != nil {
				emit(n.Value.Pos(), n.Value, false)
			}
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(n.Fun).(*ast.Ident)
		if !ok {
			return
		}
		b, ok := ws.info.Uses[id].(*types.Builtin)
		if !ok || len(n.Args) == 0 {
			return
		}
		switch b.Name() {
		case "delete":
			if what, ok := ws.writeTarget(n.Args[0], true); ok {
				report(n.Pos(), "deletes from a map that "+what)
			}
		case "close":
			if what, ok := ws.writeTarget(n.Args[0], true); ok {
				report(n.Pos(), "closes "+describeChan(n.Args[0], what))
			}
		case "copy":
			if what, ok := ws.writeTarget(n.Args[0], true); ok {
				report(n.Pos(), "copies into a slice that "+what)
			}
		}
	}
}

// describeChan renders a channel effect description from the target
// classification ("writes through parameter ch" -> "channel ch
// (caller-visible)").
func describeChan(expr ast.Expr, what string) string {
	return "channel " + types.ExprString(expr) + " (" + what + ")"
}

// A WriteTarget is the resolved destination of one lvalue write, the
// exported form of writeTarget's walk for flow-sensitive rules
// (racecheck) that need the base variable rather than a description.
type WriteTarget struct {
	// Base is the variable the lvalue path bottoms out at; nil when
	// the write lands through a computed expression.
	Base *types.Var
	// Indirect reports that the path crossed a pointer, slice, map, or
	// interface boundary, so the write touches whatever Base points
	// to, not Base's own storage.
	Indirect bool
	// Global is set when Base is a package-level variable.
	Global bool
}

// ClassifyWrite resolves where the lvalue expr lands. ok is false for
// writes the caller should not track (blank identifier,
// non-variables).
func ClassifyWrite(info *types.Info, expr ast.Expr, indirect bool) (WriteTarget, bool) {
	e := ast.Unparen(expr)
	for {
		switch t := e.(type) {
		case *ast.Ident:
			var v *types.Var
			if dv, ok := info.Defs[t].(*types.Var); ok {
				v = dv
			} else if uv, ok := info.Uses[t].(*types.Var); ok {
				v = uv
			}
			if v == nil {
				return WriteTarget{}, false
			}
			global := v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
			return WriteTarget{Base: v, Indirect: indirect, Global: global}, true
		case *ast.SelectorExpr:
			if id, isID := ast.Unparen(t.X).(*ast.Ident); isID {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, isVar := info.Uses[t.Sel].(*types.Var); isVar {
						return WriteTarget{Base: v, Indirect: indirect, Global: true}, true
					}
					return WriteTarget{}, false
				}
			}
			if typ := info.TypeOf(t.X); typ != nil {
				if _, isPtr := typ.Underlying().(*types.Pointer); isPtr {
					indirect = true
				}
			}
			e = t.X
		case *ast.StarExpr:
			indirect = true
			e = ast.Unparen(t.X)
		case *ast.IndexExpr:
			if typ := info.TypeOf(t.X); typ != nil {
				switch typ.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					indirect = true
				}
			}
			e = ast.Unparen(t.X)
		case *ast.ParenExpr:
			e = t.X
		default:
			return WriteTarget{}, false // computed expression
		}
	}
}
