package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// RelPosition rewrites an absolute diagnostic filename relative to
// root, leaving foreign paths untouched.
func RelPosition(root, filename string) string {
	if root == "" || !filepath.IsAbs(filename) {
		return filename
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// WritePlain prints diagnostics in the classic compiler format
//
//	file:line:col: rule: message
//
// Suppressed and baselined findings are hidden unless showSuppressed
// is set, in which case they are annotated with the waiver's reason
// (or "baselined"). It returns the number of lines written.
func WritePlain(w io.Writer, root string, diags []Diagnostic, showSuppressed bool) int {
	n := 0
	for _, d := range diags {
		if (d.Suppressed || d.Baselined) && !showSuppressed {
			continue
		}
		suffix := ""
		if d.Suppressed {
			suffix = fmt.Sprintf(" (suppressed: %s)", d.Reason)
		} else if d.Baselined {
			suffix = " (baselined)"
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s%s\n",
			RelPosition(root, d.Position.Filename), d.Position.Line, d.Position.Column,
			d.Rule, d.Message, suffix)
		n++
	}
	return n
}

// jsonDiagnostic is the stable wire form of one finding.
type jsonDiagnostic struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Package    string `json:"package,omitempty"`
	Func       string `json:"func,omitempty"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
	Baselined  bool   `json:"baselined,omitempty"`
}

// millis converts a duration to fractional milliseconds, the unit
// both stats renderings use.
func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// WriteStats renders the -stats table in plain text: fact-build time
// (with the points-to solve broken out) first, then each rule's
// summed per-package wall time and finding count in suite order
// (timing is nondeterministic; everything else on the row is not),
// then the phase-2 parallelism summary: real elapsed time under N
// workers next to the sequential cost the per-rule rows add up to.
func WriteStats(w io.Writer, stats *RunStats) {
	if stats == nil {
		return
	}
	fmt.Fprintf(w, "fact build: %.1fms (points-to %.1fms)\n", millis(stats.FactBuild), millis(stats.PointsTo))
	for _, rs := range stats.Rules {
		fmt.Fprintf(w, "%-12s %8.1fms  %d finding(s)\n", rs.Rule, millis(rs.Time), rs.Findings)
	}
	fmt.Fprintf(w, "rule phase: %.1fms wall on %d worker(s), %.1fms sequential\n",
		millis(stats.RuleWall), stats.Workers, millis(stats.RuleSeq))
}

// WriteStatsMarkdown renders the -stats table for a CI step summary.
func WriteStatsMarkdown(w io.Writer, stats *RunStats) {
	if stats == nil {
		return
	}
	fmt.Fprintf(w, "\n### pbcheck timing\n\n")
	fmt.Fprintf(w, "fact build: %.1fms (points-to %.1fms)\n\n", millis(stats.FactBuild), millis(stats.PointsTo))
	fmt.Fprintf(w, "| Rule | Time | Findings |\n|---|---:|---:|\n")
	for _, rs := range stats.Rules {
		fmt.Fprintf(w, "| %s | %.1fms | %d |\n", rs.Rule, millis(rs.Time), rs.Findings)
	}
	fmt.Fprintf(w, "\nrule phase: %.1fms wall on %d worker(s), %.1fms sequential\n",
		millis(stats.RuleWall), stats.Workers, millis(stats.RuleSeq))
}

// jsonRuleStat is the wire form of one analyzer's timing row.
type jsonRuleStat struct {
	Rule     string  `json:"rule"`
	Millis   float64 `json:"ms"`
	Findings int     `json:"findings"`
}

// jsonStats is the optional "stats" member of the -json document.
type jsonStats struct {
	FactBuildMillis float64        `json:"fact_build_ms"`
	PointsToMillis  float64        `json:"points_to_ms"`
	Rules           []jsonRuleStat `json:"rules"`
	RuleWallMillis  float64        `json:"rule_wall_ms"`
	RuleSeqMillis   float64        `json:"rule_sequential_ms"`
	Workers         int            `json:"workers"`
}

// jsonReport is the top-level -json document: the findings plus the
// counts CI dashboards need without re-deriving them. Stats appears
// only under -stats.
type jsonReport struct {
	Findings   int              `json:"findings"`
	Suppressed int              `json:"suppressed"`
	Baselined  int              `json:"baselined"`
	Diags      []jsonDiagnostic `json:"diagnostics"`
	Stats      *jsonStats       `json:"stats,omitempty"`
}

// WriteJSON emits every diagnostic — suppressed and baselined ones
// included and marked, so the CI artifact records the full waiver
// ledger — as one indented JSON document. A non-nil stats adds the
// per-rule timing block.
func WriteJSON(w io.Writer, root string, diags []Diagnostic, stats *RunStats) error {
	report := jsonReport{Diags: []jsonDiagnostic{}}
	if stats != nil {
		js := &jsonStats{
			FactBuildMillis: millis(stats.FactBuild),
			PointsToMillis:  millis(stats.PointsTo),
			RuleWallMillis:  millis(stats.RuleWall),
			RuleSeqMillis:   millis(stats.RuleSeq),
			Workers:         stats.Workers,
		}
		for _, rs := range stats.Rules {
			js.Rules = append(js.Rules, jsonRuleStat{
				Rule:     rs.Rule,
				Millis:   millis(rs.Time),
				Findings: rs.Findings,
			})
		}
		report.Stats = js
	}
	for _, d := range diags {
		switch {
		case d.Suppressed:
			report.Suppressed++
		case d.Baselined:
			report.Baselined++
		default:
			report.Findings++
		}
		report.Diags = append(report.Diags, jsonDiagnostic{
			Rule:       d.Rule,
			File:       RelPosition(root, d.Position.Filename),
			Line:       d.Position.Line,
			Col:        d.Position.Column,
			Package:    d.Package,
			Func:       d.Func,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
			Baselined:  d.Baselined,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// WriteMarkdown renders the CI step-summary view: a per-rule count
// table (active / baselined / waived), the list of active findings,
// and the waiver ledger with reasons. Deterministic: rows follow the
// already-sorted diagnostic order, rules sort lexically.
func WriteMarkdown(w io.Writer, root string, diags []Diagnostic) {
	type counts struct{ active, baselined, waived int }
	byRule := make(map[string]*counts)
	var rules []string
	for _, d := range diags {
		c, ok := byRule[d.Rule]
		if !ok {
			c = &counts{}
			byRule[d.Rule] = c
			rules = append(rules, d.Rule)
		}
		switch {
		case d.Suppressed:
			c.waived++
		case d.Baselined:
			c.baselined++
		default:
			c.active++
		}
	}
	sort.Strings(rules)

	fmt.Fprintf(w, "### pbcheck findings\n\n")
	fmt.Fprintf(w, "| Rule | Active | Baselined | Waived |\n|---|---:|---:|---:|\n")
	var total counts
	for _, rule := range rules {
		c := byRule[rule]
		fmt.Fprintf(w, "| %s | %d | %d | %d |\n", rule, c.active, c.baselined, c.waived)
		total.active += c.active
		total.baselined += c.baselined
		total.waived += c.waived
	}
	fmt.Fprintf(w, "| **total** | **%d** | **%d** | **%d** |\n", total.active, total.baselined, total.waived)

	if total.active > 0 {
		fmt.Fprintf(w, "\n#### New findings (not in baseline)\n\n")
		for _, d := range diags {
			if d.Suppressed || d.Baselined {
				continue
			}
			fmt.Fprintf(w, "- `%s:%d` **%s**: %s\n",
				RelPosition(root, d.Position.Filename), d.Position.Line, d.Rule, d.Message)
		}
	}
	if total.waived > 0 {
		fmt.Fprintf(w, "\n#### Waivers\n\n| Location | Rule | Reason |\n|---|---|---|\n")
		for _, d := range diags {
			if !d.Suppressed {
				continue
			}
			fmt.Fprintf(w, "| `%s:%d` | %s | %s |\n",
				RelPosition(root, d.Position.Filename), d.Position.Line, d.Rule, d.Reason)
		}
	}
}
