package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// RelPosition rewrites an absolute diagnostic filename relative to
// root, leaving foreign paths untouched.
func RelPosition(root, filename string) string {
	if root == "" || !filepath.IsAbs(filename) {
		return filename
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// WritePlain prints diagnostics in the classic compiler format
//
//	file:line:col: rule: message
//
// Suppressed findings are hidden unless showSuppressed is set, in
// which case they are annotated with the waiver's reason. It returns
// the number of lines written.
func WritePlain(w io.Writer, root string, diags []Diagnostic, showSuppressed bool) int {
	n := 0
	for _, d := range diags {
		if d.Suppressed && !showSuppressed {
			continue
		}
		suffix := ""
		if d.Suppressed {
			suffix = fmt.Sprintf(" (suppressed: %s)", d.Reason)
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s%s\n",
			RelPosition(root, d.Position.Filename), d.Position.Line, d.Position.Column,
			d.Rule, d.Message, suffix)
		n++
	}
	return n
}

// jsonDiagnostic is the stable wire form of one finding.
type jsonDiagnostic struct {
	Rule       string `json:"rule"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the top-level -json document: the findings plus the
// counts CI dashboards need without re-deriving them.
type jsonReport struct {
	Findings   int              `json:"findings"`
	Suppressed int              `json:"suppressed"`
	Diags      []jsonDiagnostic `json:"diagnostics"`
}

// WriteJSON emits every diagnostic — suppressed ones included and
// marked, so the CI artifact records the full waiver ledger — as one
// indented JSON document.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	report := jsonReport{Diags: []jsonDiagnostic{}}
	for _, d := range diags {
		if d.Suppressed {
			report.Suppressed++
		} else {
			report.Findings++
		}
		report.Diags = append(report.Diags, jsonDiagnostic{
			Rule:       d.Rule,
			File:       RelPosition(root, d.Position.Filename),
			Line:       d.Position.Line,
			Col:        d.Position.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
