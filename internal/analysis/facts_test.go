package analysis_test

import (
	"go/token"
	"go/types"
	"path/filepath"
	"testing"

	"pbsim/internal/analysis"
)

// factRules is the engine's waiver vocabulary for direct BuildFacts
// calls in these tests.
var factRules = map[string]bool{"determinism": true, "nopanic": true, "hotalloc": true}

// loadFactsUniverse loads the synthetic 3-package module
// (rules/testdata/facts/{sim,flow,clock}) the way the driver would:
// request one package, let imports pull in the rest.
func loadFactsUniverse(t *testing.T) (*analysis.Loader, []*analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("rules", "testdata", "facts", "sim"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	return loader, pkgs
}

// lookupFunc finds a function's FuncInfo by package-path suffix and
// name.
func lookupFunc(t *testing.T, x *analysis.FactIndex, pkgSuffix, name string) *analysis.FuncInfo {
	t.Helper()
	for _, fi := range x.Funcs("") {
		if fi.Obj.Name() == name && filepath.Base(fi.Pkg.Path) == pkgSuffix {
			return fi
		}
	}
	t.Fatalf("function %s.%s not in fact index", pkgSuffix, name)
	return nil
}

// TestFactPropagationAcrossPackages is the acceptance-criteria pin: a
// nondeterministic sink two call hops and one package boundary away
// must reach the caller, with the why-chain naming every hop. The
// same fixpoint must propagate mayPanic and allocates, leave pure
// chains fact-free, and honor //pbcheck:hotpath markers.
func TestFactPropagationAcrossPackages(t *testing.T) {
	loader, _ := loadFactsUniverse(t)
	x := analysis.BuildFacts(loader.Universe(), factRules)

	cases := []struct {
		pkg, fn string
		fact    analysis.Fact
		why     string
	}{
		{"clock", "Clock", analysis.FactNondet, "time.Now"},
		{"flow", "Helper", analysis.FactNondet, "clock.Clock → time.Now"},
		{"sim", "Caller", analysis.FactNondet, "flow.Helper → clock.Clock → time.Now"},
		{"clock", "Boom", analysis.FactMayPanic, "panic"},
		{"sim", "CallBoom", analysis.FactMayPanic, "flow.MayBoom → clock.Boom → panic"},
		{"clock", "Alloc", analysis.FactAllocates, "make"},
		{"sim", "Hot", analysis.FactAllocates, "flow.Allocates → clock.Alloc → make"},
	}
	for _, tc := range cases {
		fi := lookupFunc(t, x, tc.pkg, tc.fn)
		if !fi.Facts().Has(tc.fact) {
			t.Errorf("%s.%s: fact %v missing", tc.pkg, tc.fn, tc.fact)
			continue
		}
		if got := fi.Why(tc.fact); got != tc.why {
			t.Errorf("%s.%s why = %q, want %q", tc.pkg, tc.fn, got, tc.why)
		}
	}

	// Pure chains stay fact-free end to end.
	for _, name := range []string{"Pure"} {
		for _, pkg := range []string{"clock", "flow"} {
			fi := lookupFunc(t, x, pkg, name)
			for f := analysis.FactNondet; f <= analysis.FactUnknownCallee; f++ {
				if fi.Facts().Has(f) {
					t.Errorf("%s.%s unexpectedly has fact %v (%s)", pkg, name, f, fi.Why(f))
				}
			}
		}
	}
	clean := lookupFunc(t, x, "sim", "Clean")
	if clean.Facts().Has(analysis.FactAllocates) || clean.Facts().Has(analysis.FactNondet) {
		t.Errorf("sim.Clean should be fact-free, has why alloc=%q nondet=%q",
			clean.Why(analysis.FactAllocates), clean.Why(analysis.FactNondet))
	}

	// Hotpath markers attach to the right declarations.
	if !lookupFunc(t, x, "sim", "Hot").Hot {
		t.Error("sim.Hot is not marked hot")
	}
	if lookupFunc(t, x, "sim", "Caller").Hot {
		t.Error("sim.Caller should not be marked hot")
	}
}

// TestFactIndexLookup pins the Lookup contract: types.Func objects
// resolve to their FuncInfo, non-function objects resolve to nil.
func TestFactIndexLookup(t *testing.T) {
	loader, pkgs := loadFactsUniverse(t)
	x := analysis.BuildFacts(loader.Universe(), factRules)

	scope := pkgs[0].Types.Scope()
	fn, ok := scope.Lookup("Caller").(*types.Func)
	if !ok {
		t.Fatal("sim.Caller not in package scope")
	}
	fi := x.Lookup(fn)
	if fi == nil {
		t.Fatal("Lookup(sim.Caller) = nil")
	}
	if got := fi.DisplayName(); got != "sim.Caller" {
		t.Errorf("DisplayName = %q, want %q", got, "sim.Caller")
	}
	if x.Lookup(nil) != nil {
		t.Error("Lookup(nil) should be nil")
	}
	if x.Lookup(types.Universe.Lookup("len")) != nil {
		t.Error("Lookup(builtin len) should be nil")
	}
}

// TestFactsHonorWaivers pins the waiver-aware generation contract: a
// sink line covered by a reasoned //pbcheck:ignore for the owning
// rule seeds no fact, so transitive callers are not tainted — the
// reviewed claim cuts the whole chain, not just the one report.
func TestFactsHonorWaivers(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// The repository's own pipeline package: ROB.Push carries a
	// reasoned nopanic waiver on its guard panic.
	dir := filepath.Join(loader.Root, "internal", "sim", "pipeline")
	if _, err := loader.Load([]string{dir}); err != nil {
		t.Fatal(err)
	}
	x := analysis.BuildFacts(loader.Universe(), factRules)
	fi := lookupFunc(t, x, "pipeline", "Push")
	if fi.Facts().Has(analysis.FactMayPanic) {
		t.Errorf("ROB.Push carries mayPanic (%s) despite the reasoned waiver on its guard", fi.Why(analysis.FactMayPanic))
	}
	if !fi.Hot {
		t.Error("ROB.Push lost its //pbcheck:hotpath marker")
	}
}

// TestEnclosingFunc pins the fingerprint identity resolution that the
// baseline ratchet depends on.
func TestEnclosingFunc(t *testing.T) {
	_, pkgs := loadFactsUniverse(t)
	pkg := pkgs[0]
	var callerPos token.Pos
	for _, fi := range analysis.BuildFacts([]*analysis.Package{pkg}, factRules).Funcs(pkg.Path) {
		if fi.Obj.Name() == "Caller" {
			callerPos = fi.Decl.Body.Pos()
		}
	}
	if !callerPos.IsValid() {
		t.Fatal("no position for sim.Caller body")
	}
	if got := pkg.EnclosingFunc(callerPos); got != "Caller" {
		t.Errorf("EnclosingFunc(inside Caller) = %q, want %q", got, "Caller")
	}
	if got := pkg.EnclosingFunc(token.NoPos); got != "" {
		t.Errorf("EnclosingFunc(NoPos) = %q, want \"\"", got)
	}
}
