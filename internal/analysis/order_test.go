package analysis_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/rules"
)

// TestDeterministicOrdering pins the byte-stability contract the
// findings diff and the baseline ratchet depend on: the same
// packages analyzed in any load order produce identical plain and
// JSON output. The two seeded packages each produce findings, so a
// sort regression would actually reorder something.
func TestDeterministicOrdering(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, d := range []string{"locksafe", "leakygo"} {
		abs, err := filepath.Abs(filepath.Join("rules", "testdata", d))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, abs)
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	reversed := []*analysis.Package{pkgs[1], pkgs[0]}

	render := func(order []*analysis.Package) (string, string) {
		diags, err := analysis.RunUniverse(order, loader.Universe(), rules.All())
		if err != nil {
			t.Fatal(err)
		}
		var plain, js bytes.Buffer
		analysis.WritePlain(&plain, loader.Root, diags, true)
		if err := analysis.WriteJSON(&js, loader.Root, diags, nil); err != nil {
			t.Fatal(err)
		}
		return plain.String(), js.String()
	}

	plainFwd, jsonFwd := render(pkgs)
	plainRev, jsonRev := render(reversed)
	if plainFwd == "" {
		t.Fatal("seeded packages produced no plain output; the ordering test needs findings to order")
	}
	if plainFwd != plainRev {
		t.Errorf("plain output depends on package order:\n--- forward ---\n%s--- reversed ---\n%s", plainFwd, plainRev)
	}
	if jsonFwd != jsonRev {
		t.Errorf("JSON output depends on package order:\n--- forward ---\n%s--- reversed ---\n%s", jsonFwd, jsonRev)
	}
}

// TestWorkerCountInvariance pins the parallel driver's contract: any
// phase-2 worker count yields byte-identical diagnostics — only the
// timing fields may move.
func TestWorkerCountInvariance(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, d := range []string{"locksafe", "leakygo", "racecheck", "chansafe", "errflow"} {
		abs, err := filepath.Abs(filepath.Join("rules", "testdata", d))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, abs)
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		diags, stats, err := analysis.RunUniverseTimedWorkers(pkgs, loader.Universe(), rules.All(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if workers >= 1 && stats.Workers > workers {
			t.Errorf("stats.Workers = %d, want at most the requested %d", stats.Workers, workers)
		}
		var plain bytes.Buffer
		analysis.WritePlain(&plain, loader.Root, diags, true)
		return plain.String()
	}
	sequential := render(1)
	if sequential == "" {
		t.Fatal("seeded packages produced no output; the invariance test needs findings to compare")
	}
	for _, workers := range []int{2, 8, 0} {
		if got := render(workers); got != sequential {
			t.Errorf("output at %d workers differs from sequential:\n--- parallel ---\n%s--- sequential ---\n%s", workers, got, sequential)
		}
	}
}
