package analysis_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pbsim/internal/analysis"
)

var updateGolden = flag.Bool("update-md", false, "rewrite the markdown golden from current WriteMarkdown output")

// TestWriteMarkdownGolden pins the -md rendering byte-for-byte: the
// per-rule count table with its totals row, the new-findings list, and
// the waiver ledger. The fixture covers all three finding states so a
// formatting regression in any table shows up as a golden diff.
func TestWriteMarkdownGolden(t *testing.T) {
	diags := []analysis.Diagnostic{
		mkDiag("errflow", "pbsim/internal/a", "First", "error from step assigned to err is overwritten before any check on at least one path; handle or explicitly discard the first error", 14),
		mkDiag("nopanic", "pbsim/internal/a", "Frob", "panic reachable in library code", 30),
		mkDiag("nopanic", "pbsim/internal/b", "Grind", "panic reachable in library code via helper", 8),
		mkDiag("purity", "pbsim/internal/b", "Seed", "pure-marked function b.Seed mutates state outside its frame", 3),
		mkDiag("errdiscard", "pbsim/internal/b", "Close", "call discards its error result", 51),
	}
	diags[1].Baselined = true
	diags[4].Suppressed = true
	diags[4].Reason = "close error is unreachable by contract"

	var buf bytes.Buffer
	analysis.WriteMarkdown(&buf, "", diags)

	golden := filepath.Join("testdata", "markdown.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-md to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("markdown output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteStats covers the -stats renderings: the plain table, the
// markdown table, and the JSON block — all three must name every rule
// in suite order and survive a nil stats (no-stats run) silently.
func TestWriteStats(t *testing.T) {
	stats := &analysis.RunStats{
		FactBuild: 12 * time.Millisecond,
		PointsTo:  3 * time.Millisecond,
		Rules: []analysis.RuleStat{
			{Rule: "determinism", Time: 1500 * time.Microsecond, Findings: 2},
			{Rule: "errflow", Time: 25 * time.Millisecond, Findings: 0},
		},
		RuleWall: 9 * time.Millisecond,
		RuleSeq:  26500 * time.Microsecond,
		Workers:  4,
	}

	var plain bytes.Buffer
	analysis.WriteStats(&plain, stats)
	for _, want := range []string{
		"fact build: 12.0ms (points-to 3.0ms)", "determinism", "2 finding(s)", "errflow",
		"rule phase: 9.0ms wall on 4 worker(s), 26.5ms sequential",
	} {
		if !strings.Contains(plain.String(), want) {
			t.Errorf("plain stats missing %q:\n%s", want, plain.String())
		}
	}

	var md bytes.Buffer
	analysis.WriteStatsMarkdown(&md, stats)
	for _, want := range []string{
		"### pbcheck timing", "| determinism | 1.5ms | 2 |", "| errflow | 25.0ms | 0 |",
		"points-to 3.0ms", "rule phase: 9.0ms wall on 4 worker(s)",
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown stats missing %q:\n%s", want, md.String())
		}
	}

	var js bytes.Buffer
	if err := analysis.WriteJSON(&js, "", nil, stats); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"fact_build_ms": 12`, `"points_to_ms": 3`, `"rule": "determinism"`, `"findings": 2`,
		`"rule_wall_ms": 9`, `"rule_sequential_ms": 26.5`, `"workers": 4`,
	} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON stats missing %q:\n%s", want, js.String())
		}
	}

	var empty bytes.Buffer
	analysis.WriteStats(&empty, nil)
	analysis.WriteStatsMarkdown(&empty, nil)
	if empty.Len() != 0 {
		t.Errorf("nil stats wrote %q; a no-stats run must add nothing", empty.String())
	}
	var noStats bytes.Buffer
	if err := analysis.WriteJSON(&noStats, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noStats.String(), "stats") {
		t.Errorf("nil stats leaked into JSON:\n%s", noStats.String())
	}
}

// TestEnclosingFuncShapes pins the identity names fingerprints use for
// every receiver shape: plain functions, value and pointer receivers,
// generic receivers (type parameters dropped), and positions inside
// nested function literals, which must resolve to the DECLARED
// function whose body lexically contains them.
func TestEnclosingFuncShapes(t *testing.T) {
	const src = `package shapes

type Box struct{}
type Gen[T any] struct{}

func Plain() { plainMark() }

func (b Box) Value() { valueMark() }

func (b *Box) Pointer() { pointerMark() }

func (g *Gen[T]) Get() { genericMark() }

func Outer() {
	f := func() {
		g := func() { nestedMark() }
		g()
	}
	f()
}

var sink = 0
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "shapes.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &analysis.Package{Fset: fset, Files: []*ast.File{file}}

	pos := func(marker string) token.Pos {
		idx := strings.Index(src, marker)
		if idx < 0 {
			t.Fatalf("marker %q not in source", marker)
		}
		return fset.File(file.Package).Pos(idx)
	}
	cases := []struct {
		marker, want string
	}{
		{"plainMark", "Plain"},
		{"valueMark", "Box.Value"},
		{"pointerMark", "Box.Pointer"},
		{"genericMark", "Gen.Get"},
		{"nestedMark", "Outer"},
		{"var sink", ""},
	}
	for _, c := range cases {
		if got := pkg.EnclosingFunc(pos(c.marker)); got != c.want {
			t.Errorf("EnclosingFunc(at %q) = %q, want %q", c.marker, got, c.want)
		}
	}
}
