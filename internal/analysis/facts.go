package analysis

// facts.go is the interprocedural half of the framework: a call graph
// over every loaded package of the module plus a fixpoint fact
// propagation across its edges. Phase 1 (BuildFacts) runs before any
// analyzer: it indexes every function declaration in the universe
// (the analyzed packages AND every module package they transitively
// import — the loader keeps their syntax trees), resolves each call
// site, computes per-function seed facts, and propagates them to
// fixpoint. Phase 2 hands the resulting FactIndex to every Pass, so a
// rule can ask "does this callee, wherever it lives, transitively
// reach a wall-clock read / a panic / a heap allocation?" instead of
// pattern-matching the sink in the package under analysis.
//
// Call resolution is deliberately layered by confidence:
//
//   - static calls (pkg.F, recv.M with a concrete receiver) resolve to
//     exactly one module function and become call-graph edges;
//   - interface method calls on interfaces *defined in this module*
//     resolve by class-hierarchy analysis: every named type in the
//     universe that implements the interface contributes its method as
//     a callee (the closed-world assumption is sound for an internal/
//     module, which nothing outside the repository can implement);
//   - everything else — calls through function values, methods of
//     foreign interfaces, and calls into foreign (non-module) packages
//     other than the pure math/math/bits whitelist and the explicit
//     sink lists — is the sound bottom: the callee's behaviour is
//     unknown, recorded as FactUnknownCallee and propagated like any
//     other fact. Rules that must *prove* a property (hotalloc's
//     transitive 0-alloc) treat unknown as a finding; rules that
//     report *established* misbehaviour (determinism, nopanic) do not
//     report unknowns, mirroring the rest of the suite's
//     zero-false-positive bias.
//
// Suppressions participate in fact generation: a sink carrying a
// reasoned //pbcheck:ignore for the owning rule does not seed its
// fact. A waiver is a reviewed claim that the invariant holds at that
// site (an unreachable guard panic, a sanctioned exact comparison), so
// propagating the fact anyway would force every transitive caller to
// re-argue the same waiver.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"pbsim/internal/analysis/pointsto"
)

// A Fact is one propagated per-function property.
type Fact uint8

const (
	// FactNondet marks functions that transitively reach a
	// nondeterminism sink: wall-clock reads, the global math/rand
	// source, or process-environment reads.
	FactNondet Fact = iota
	// FactMayPanic marks functions that transitively contain an
	// unwaived panic call.
	FactMayPanic
	// FactAllocates marks functions that transitively perform a
	// steady-state heap allocation (see the gen set in scanFunc).
	FactAllocates
	// FactUnknownCallee marks functions that transitively call code
	// whose behaviour the engine cannot see: function values, foreign
	// interface methods, or non-whitelisted foreign packages.
	FactUnknownCallee
	// FactWritesState marks functions that transitively mutate state
	// visible outside their own frame: package-level variables (of any
	// package), memory reached through a pointer receiver or
	// parameter, heap aliased by a non-locally-allocated variable, or
	// channel operations (send/close). Writes to locals — including
	// element writes into slices and maps the function provably
	// allocated itself (see ownedLocals) — carry no fact: they die
	// with the frame.
	FactWritesState
	// FactSpawned marks functions that can run on a spawned goroutine:
	// the direct target of a go statement, a function called from a
	// go'd function literal, or any transitive callee of either. It
	// propagates caller→callee — the reverse of every other fact —
	// because running on a goroutine is a property of the execution
	// context, not of the body.
	FactSpawned

	numFacts
)

// A FactSet is a bit set of Facts.
type FactSet uint8

// Has reports whether f is in the set.
func (s FactSet) Has(f Fact) bool { return s&(1<<f) != 0 }

func (s *FactSet) add(f Fact) bool {
	if s.Has(f) {
		return false
	}
	*s |= 1 << f
	return true
}

// HotpathMarker is the comment marking a function as a hot path that
// the hotalloc rule must prove transitively allocation-free. It goes
// in the function's doc comment:
//
//	//pbcheck:hotpath
//	func (c *Cache) Access(addr uint64) bool { ... }
const HotpathMarker = "pbcheck:hotpath"

// PureMarker is the comment marking a function the purity analyzer
// must prove side-effect-free AND deterministic: no writes escaping
// its frame, no ambient-state reads, and no calls the engine cannot
// see through. It is the static form of the ground-truth contract
// "same corner, same value, any evaluation order":
//
//	//pbcheck:pure
//	func (s *Surface) Eval(levels []int8) float64 { ... }
const PureMarker = "pbcheck:pure"

// Rule names whose waivers cut fact generation. They live here rather
// than in the rules package because the engine must honor them while
// seeding facts, before any analyzer runs; the rules package asserts
// at registration time that its analyzers use the same names.
const (
	RuleDeterminism = "determinism"
	RuleNoPanic     = "nopanic"
	RuleHotAlloc    = "hotalloc"
	RulePurity      = "purity"
)

// A calleeEdge is one resolved call-graph edge, positioned at its
// (first) call site.
type calleeEdge struct {
	callee *types.Func
	pos    token.Pos
}

// FuncInfo is the engine's record for one declared function.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Hot marks a //pbcheck:hotpath function; HotPos is the marker
	// comment's position.
	Hot    bool
	HotPos token.Pos

	// Pure marks a //pbcheck:pure function; PurePos is the marker
	// comment's position.
	Pure    bool
	PurePos token.Pos

	facts FactSet
	// why holds, per fact, the human-readable chain that established
	// it: either the local sink ("time.Now") or a call chain
	// ("trace.Generator.Next → make").
	why [numFacts]string

	// spawn identifies the go statement behind FactSpawned (the
	// deterministically first one to reach this function).
	spawn *pointsto.Spawn

	edges []calleeEdge
}

// Facts returns the function's propagated fact set.
func (fi *FuncInfo) Facts() FactSet { return fi.facts }

// Why returns the chain explaining how the function acquired f
// ("" when the fact is absent).
func (fi *FuncInfo) Why(f Fact) string { return fi.why[f] }

// SpawnedBy returns the go statement that makes this function run on
// a spawned goroutine, or nil when FactSpawned is absent.
func (fi *FuncInfo) SpawnedBy() *pointsto.Spawn { return fi.spawn }

// DisplayName returns the short package-qualified name used in
// diagnostics: "trace.Generator.Next", "stats.Mean".
func (fi *FuncInfo) DisplayName() string {
	name := fi.Obj.Name()
	if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return fi.Pkg.Name + "." + name
}

func (fi *FuncInfo) setFact(f Fact, why string) bool {
	if !fi.facts.add(f) {
		return false
	}
	fi.why[f] = why
	return true
}

// A FactIndex is the computed interprocedural state: every function of
// the universe with its propagated facts, in deterministic order.
type FactIndex struct {
	funcs   map[*types.Func]*FuncInfo
	ordered []*FuncInfo

	// orphans are //pbcheck:hotpath or //pbcheck:pure markers not
	// attached to any function declaration, keyed by package path.
	orphans map[string][]orphanMarker

	// analyzed is the set of package paths selected for reporting (as
	// opposed to being loaded only as dependencies); rules use it to
	// decide whether a misbehaving callee already reports at its own
	// definition.
	analyzed map[string]bool

	// pts is the module-wide points-to/escape analysis (see the
	// pointsto package), computed once per BuildFacts over the same
	// universe as the call graph; ptsTime is its wall time, surfaced
	// by -stats.
	pts     *pointsto.Result
	ptsTime time.Duration

	// sups tracks which waiver lines actually cut a fact during
	// seeding; the stale-waiver check in the driver consults it before
	// declaring a suppression dead.
	sups *suppressionIndex
}

// PointsTo returns the module-wide points-to/escape result. Never nil
// after BuildFacts.
func (x *FactIndex) PointsTo() *pointsto.Result { return x.pts }

// PointsToTime returns the wall time the points-to fixpoint took.
func (x *FactIndex) PointsToTime() time.Duration { return x.ptsTime }

// WaiverUsedAt reports whether the waiver for rule on the given line
// cut at least one fact during seeding.
func (x *FactIndex) WaiverUsedAt(file string, line int, rule string) bool {
	if x.sups == nil {
		return false
	}
	return x.sups.used[suppressionKey(file, line, rule)]
}

// Lookup resolves a types object (normally from Info.Uses at a call
// site) to the engine's record, or nil for anything that is not a
// declared module function.
func (x *FactIndex) Lookup(obj types.Object) *FuncInfo {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return x.funcs[fn]
}

// Funcs returns every indexed function of the package, in file/position
// order ("" selects the whole universe).
func (x *FactIndex) Funcs(pkgPath string) []*FuncInfo {
	if pkgPath == "" {
		return x.ordered
	}
	var out []*FuncInfo
	for _, fi := range x.ordered {
		if fi.Pkg.Path == pkgPath {
			out = append(out, fi)
		}
	}
	return out
}

// An orphanMarker is a function marker comment with no function.
type orphanMarker struct {
	pos    token.Pos
	marker string
}

// Orphans returns the positions of the named marker ("pbcheck:hotpath"
// or "pbcheck:pure") in the package that are not attached to a
// function declaration.
func (x *FactIndex) Orphans(pkgPath, marker string) []token.Pos {
	var out []token.Pos
	for _, o := range x.orphans[pkgPath] {
		if o.marker == marker {
			out = append(out, o.pos)
		}
	}
	return out
}

// IsAnalyzed reports whether the package is in the set selected for
// reporting (not merely loaded as a dependency of one).
func (x *FactIndex) IsAnalyzed(pkgPath string) bool { return x.analyzed[pkgPath] }

// pureForeign lists foreign packages whose functions are known to be
// deterministic, panic-free on valid input, and allocation-free:
// calling into them does not taint the caller with FactUnknownCallee.
var pureForeign = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// nondetSink reports whether obj is one of the ambient-state reads the
// determinism invariant forbids, returning its display name.
func nondetSink(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			return "time." + obj.Name(), true
		}
	case "os":
		switch obj.Name() {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv":
			return "os." + obj.Name(), true
		}
	case "math/rand", "math/rand/v2":
		fn, ok := obj.(*types.Func)
		if ok && fn.Type().(*types.Signature).Recv() == nil && !globalRandConstructors[obj.Name()] {
			return "rand." + obj.Name(), true
		}
	}
	return "", false
}

// globalRandConstructors mirrors the determinism rule's allowance for
// explicitly seeded generators.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// suppressionIndex answers "is rule waived at this line" across the
// whole universe, with the same two-line coverage contract as
// applySuppressions. It additionally records which waiver lines
// actually fired, feeding the stale-waiver check.
type suppressionIndex struct {
	keys map[string]bool
	used map[string]bool
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{keys: make(map[string]bool), used: make(map[string]bool)}
}

func suppressionKey(file string, line int, rule string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", file, line, rule)
}

func (s *suppressionIndex) covered(pos token.Position, rule string) bool {
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		k := suppressionKey(pos.Filename, line, rule)
		if s.keys[k] {
			s.used[k] = true
			hit = true
		}
	}
	return hit
}

// BuildFacts runs phase 1 over the universe: indexing, call-graph
// construction, seed-fact scanning, and fixpoint propagation. known
// names the valid rules so waivers can cut fact generation.
func BuildFacts(universe []*Package, known map[string]bool) *FactIndex {
	x := &FactIndex{
		funcs:    make(map[*types.Func]*FuncInfo),
		orphans:  make(map[string][]orphanMarker),
		analyzed: make(map[string]bool),
	}
	b := &factBuilder{index: x, sups: newSuppressionIndex()}
	x.sups = b.sups

	pkgs := append([]*Package(nil), universe...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	for _, pkg := range pkgs {
		if pkg == nil || len(pkg.TypeErrors) > 0 {
			continue
		}
		b.pkgs = append(b.pkgs, pkg)
		sups, _ := scanSuppressions(pkg, known)
		for _, s := range sups {
			for rule := range s.rules {
				b.sups.keys[suppressionKey(s.file, s.line, rule)] = true
			}
		}
		b.collectTypes(pkg)
		b.collectFuncs(pkg)
	}

	// The alias layer: one Andersen fixpoint over the same universe,
	// before seed scanning so the write-effect fact can consult
	// points-to ownership.
	ptsStart := time.Now()
	units := make([]*pointsto.Unit, 0, len(b.pkgs))
	for _, pkg := range b.pkgs {
		units = append(units, &pointsto.Unit{
			Path:  pkg.Path,
			Name:  pkg.Name,
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Info:  pkg.Info,
			Types: pkg.Types,
		})
	}
	x.pts = pointsto.Analyze(units)
	x.ptsTime = time.Since(ptsStart)

	for _, fi := range x.ordered {
		b.scanFunc(fi)
	}
	b.propagate()
	return x
}

type factBuilder struct {
	index *FactIndex
	sups  *suppressionIndex
	pkgs  []*Package
	// named lists every named (non-interface) type of the universe in
	// deterministic order, for class-hierarchy resolution of module
	// interface calls.
	named []*types.TypeName
}

// collectTypes gathers the universe's named types for CHA.
func (b *factBuilder) collectTypes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() {
					continue // skip aliases
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
					continue
				}
				b.named = append(b.named, tn)
			}
		}
	}
}

// markerKind classifies a comment as one of the function markers the
// engine understands, or "".
func markerKind(c *ast.Comment) string {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	for _, marker := range []string{HotpathMarker, PureMarker} {
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return marker
		}
	}
	return ""
}

// collectFuncs indexes the package's function declarations and their
// hotpath/pure markers, and records orphaned markers.
func (b *factBuilder) collectFuncs(pkg *Package) {
	for _, file := range pkg.Files {
		// Marker comments claimed by a declaration's doc group.
		claimed := make(map[*ast.Comment]bool)
		markers := make(map[*ast.Comment]string)
		var order []*ast.Comment
		for _, group := range file.Comments {
			for _, c := range group.List {
				if kind := markerKind(c); kind != "" {
					markers[c] = kind
					order = append(order, c)
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					switch markers[c] {
					case HotpathMarker:
						fi.Hot, fi.HotPos = true, c.Pos()
						claimed[c] = true
					case PureMarker:
						fi.Pure, fi.PurePos = true, c.Pos()
						claimed[c] = true
					}
				}
			}
			b.index.funcs[obj] = fi
			b.index.ordered = append(b.index.ordered, fi)
		}
		for _, m := range order {
			if !claimed[m] {
				b.index.orphans[pkg.Path] = append(b.index.orphans[pkg.Path],
					orphanMarker{pos: m.Pos(), marker: markers[m]})
			}
		}
	}
}

// addEdge records a deduplicated call edge.
func (fi *FuncInfo) addEdge(callee *types.Func, pos token.Pos) {
	for _, e := range fi.edges {
		if e.callee == callee {
			return
		}
	}
	fi.edges = append(fi.edges, calleeEdge{callee: callee, pos: pos})
}

// markUnknown seeds the unknown-callee bottom.
func (b *factBuilder) markUnknown(fi *FuncInfo, what string) {
	fi.setFact(FactUnknownCallee, what)
}

// scanFunc computes one function's seed facts and call edges. The walk
// includes nested function literals: their sinks and calls are
// attributed to the enclosing declaration (a closure's behaviour is
// observable wherever the closure escapes to, and the enclosing
// function is the sound place to anchor it).
func (b *factBuilder) scanFunc(fi *FuncInfo) {
	info := fi.Pkg.Info
	fset := fi.Pkg.Fset

	// Self-appends (x = append(x, ...)) are the steady-state slice
	// reuse idiom: growth amortizes to zero once capacity stabilizes,
	// which is exactly what the AllocsPerRun pins measure. Collect the
	// sanctioned append calls first; every other append is a growth
	// site.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				selfAppends[call] = true
			}
		}
		return true
	})

	alloc := func(pos token.Pos, what string) {
		if b.sups.covered(fset.Position(pos), RuleHotAlloc) {
			return
		}
		fi.setFact(FactAllocates, what)
	}

	// Write effects. Mutations inside nested function literals are
	// attributed to the enclosing declaration, same as every other
	// fact; the owned-locals analysis never claims a literal's own
	// parameters, so those writes classify conservatively as escaping.
	ws := newWriteScan(fi, b.index.pts)
	write := func(pos token.Pos, what string) {
		if b.sups.covered(fset.Position(pos), RulePurity) {
			return
		}
		fi.setFact(FactWritesState, what)
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		ws.scanWrites(n, write)
		switch n := n.(type) {
		case *ast.Ident:
			if sink, ok := nondetSink(info.Uses[n]); ok {
				if !b.sups.covered(fset.Position(n.Pos()), RuleDeterminism) {
					fi.setFact(FactNondet, sink)
				}
			}
		case *ast.FuncLit:
			alloc(n.Pos(), "function literal (closure capture)")
		case *ast.GoStmt:
			alloc(n.Pos(), "go statement (new goroutine)")
			b.seedSpawn(fi, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				alloc(n.Pos(), "slice literal")
			case *types.Map:
				alloc(n.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					alloc(n.Pos(), "escaping composite literal (&T{...})")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n.X)) {
				alloc(n.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			b.scanCall(fi, n, selfAppends, alloc)
		}
		return true
	})
}

// scanCall classifies one call expression: builtin, conversion, static
// call, module-interface call (CHA), or unknown.
func (b *factBuilder) scanCall(fi *FuncInfo, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, alloc func(token.Pos, string)) {
	info := fi.Pkg.Info
	fset := fi.Pkg.Fset
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x). Interface boxing and string<->slice copies
	// allocate; every other conversion is free.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if types.IsInterface(target) && src != nil && !types.IsInterface(src) {
				alloc(call.Pos(), "interface boxing ("+types.ExprString(fun)+")")
			} else if isStringSliceConv(target, src) {
				alloc(call.Pos(), "string conversion")
			}
		}
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "append":
				if !selfAppends[call] {
					alloc(call.Pos(), "append (growing a fresh slice)")
				}
			case "make":
				alloc(call.Pos(), "make")
			case "new":
				alloc(call.Pos(), "new")
			case "panic":
				if !b.sups.covered(fset.Position(call.Pos()), RuleNoPanic) {
					fi.setFact(FactMayPanic, "panic")
				}
			}
		case *types.Func:
			b.resolveStatic(fi, obj, call.Pos(), alloc)
		default:
			if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
				b.markUnknown(fi, "call through function value "+f.Name)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if types.IsInterface(recv) {
				b.resolveInterface(fi, recv, f.Sel.Name, call.Pos())
				return
			}
		}
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			b.resolveStatic(fi, obj, call.Pos(), alloc)
			return
		}
		b.markUnknown(fi, "call through function value "+types.ExprString(f))
	case *ast.FuncLit:
		// Immediately invoked literal: its body is walked as part of
		// this function, and the literal itself was counted as an
		// allocation by the FuncLit case.
	default:
		b.markUnknown(fi, "indirect call")
	}
}

// seedSpawn marks the functions a go statement puts on a new
// goroutine: the go'd function itself, or — for a go'd function
// literal — every module function the literal's body calls
// statically. (Interface calls from a spawned literal stay unmarked:
// the zero-false-positive bias prefers a missed spawn context over a
// speculative one.) Transitive callees acquire the fact through the
// reverse propagation in propagate.
func (b *factBuilder) seedSpawn(fi *FuncInfo, g *ast.GoStmt) {
	info := fi.Pkg.Info
	ls, le, inLoop := pointsto.SpawnLoop(fi.Decl.Body, g.Go)
	sp := &pointsto.Spawn{
		Pos:       g.Go,
		Fn:        fi.DisplayName(),
		PkgPath:   fi.Pkg.Path,
		InLoop:    inLoop,
		LoopStart: ls,
		LoopEnd:   le,
	}
	mark := func(obj types.Object) {
		fj := b.index.Lookup(obj)
		if fj == nil {
			return
		}
		if fj.setFact(FactSpawned, "launched by a go statement in "+fi.DisplayName()) {
			fj.spawn = sp
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.Ident:
		mark(info.Uses[fun])
	case *ast.SelectorExpr:
		mark(info.Uses[fun.Sel])
	case *ast.FuncLit:
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch f := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				mark(info.Uses[f])
			case *ast.SelectorExpr:
				mark(info.Uses[f.Sel])
			}
			return true
		})
	}
}

// resolveStatic handles a call to a known function object: a module
// function becomes an edge, fmt seeds the allocation fact, the pure
// whitelist is free, and everything else is the unknown bottom.
func (b *factBuilder) resolveStatic(fi *FuncInfo, fn *types.Func, pos token.Pos, alloc func(token.Pos, string)) {
	if _, ok := b.index.funcs[fn]; ok {
		fi.addEdge(fn, pos)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	if pkg.Path() == "fmt" {
		alloc(pos, "fmt."+fn.Name())
		return
	}
	if sink, ok := nondetSink(fn); ok {
		// Already seeded by the Ident walk; recorded here only so the
		// sink name survives if the identifier path missed it.
		_ = sink
		return
	}
	if pureForeign[pkg.Path()] {
		return
	}
	b.markUnknown(fi, "calls "+pkg.Name()+"."+fn.Name()+" (outside the module)")
}

// resolveInterface performs class-hierarchy resolution for a method
// call on an interface value. Interfaces defined in this module admit
// a closed-world answer: every named type of the universe that
// implements them contributes its method as a callee. Foreign
// interfaces cannot be enumerated and resolve to the unknown bottom.
func (b *factBuilder) resolveInterface(fi *FuncInfo, recv types.Type, method string, pos token.Pos) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		b.markUnknown(fi, "interface call "+method)
		return
	}
	named, ok := types.Unalias(recv).(*types.Named)
	moduleIface := false
	if ok && named.Obj().Pkg() != nil {
		for _, pkg := range b.pkgs {
			if pkg.Types == named.Obj().Pkg() {
				moduleIface = true
				break
			}
		}
	}
	if !moduleIface {
		b.markUnknown(fi, "method "+method+" of a foreign interface")
		return
	}
	resolved := false
	for _, tn := range b.named {
		t := tn.Type()
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, tn.Pkg(), method)
		if m, ok := obj.(*types.Func); ok {
			if _, indexed := b.index.funcs[m]; indexed {
				fi.addEdge(m, pos)
				resolved = true
			}
		}
	}
	if !resolved {
		b.markUnknown(fi, "interface method "+method+" with no module implementation")
	}
}

// propagate runs the fixpoint: every fact a callee holds flows to its
// callers, with the why-chain extended one hop at a time. Iteration
// follows the deterministic function and edge order, so the chains —
// which appear verbatim in diagnostics — are byte-stable regardless of
// package-load order.
func (b *factBuilder) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fi := range b.index.ordered {
			for _, e := range fi.edges {
				callee := b.index.funcs[e.callee]
				for f := Fact(0); f < numFacts; f++ {
					if f == FactSpawned {
						continue // flows caller→callee, handled below
					}
					if callee.facts.Has(f) && !fi.facts.Has(f) {
						fi.setFact(f, callee.DisplayName()+" → "+callee.why[f])
						changed = true
					}
				}
			}
		}
	}
	// Spawn reachability flows the other way: everything a spawned
	// function calls also runs on that goroutine.
	for changed := true; changed; {
		changed = false
		for _, fi := range b.index.ordered {
			if !fi.facts.Has(FactSpawned) {
				continue
			}
			for _, e := range fi.edges {
				callee := b.index.funcs[e.callee]
				if callee.setFact(FactSpawned, fi.DisplayName()+" → "+fi.why[FactSpawned]) {
					callee.spawn = fi.spawn
					changed = true
				}
			}
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isStringSliceConv reports a string <-> []byte/[]rune conversion,
// which copies the backing store.
func isStringSliceConv(target, src types.Type) bool {
	if target == nil || src == nil {
		return false
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
			e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	if isStringType(target) && isByteOrRuneSlice(src) {
		return true
	}
	return isStringType(src) && isByteOrRuneSlice(target)
}
