package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ExpandPatterns resolves go-tool-style package patterns against the
// module root into a deduplicated, sorted list of directories that
// contain Go files. Supported forms:
//
//	./...            every package in the module
//	./dir/...        every package under dir
//	./dir, dir       a single directory
//	module/path/dir  an import path inside the module
//
// Like the go tool, the recursive forms skip directories named
// "testdata" or "vendor" and hidden directories; naming such a
// directory explicitly still works, which is how the analyzer's own
// golden tests load their seeded-violation packages.
func ExpandPatterns(root, module string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if module != "" {
			if pat == module {
				pat = "."
			} else if rest, ok := strings.CutPrefix(pat, module+"/"); ok {
				pat = "./" + rest
			}
		}
		recursive := false
		if pat == "..." || pat == "./..." {
			pat, recursive = ".", true
		} else if base, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = base, true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q does not match a directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
