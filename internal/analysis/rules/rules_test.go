package rules_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/rules"
)

var update = flag.Bool("update", false, "rewrite the expect.txt goldens from current analyzer output")

// The loader is shared across subtests: type-checking the seeded
// packages pulls in stdlib dependencies through the source importer,
// and one loader amortizes that cost over the whole suite.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = analysis.NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// runDir loads one testdata package and runs the named rules (all
// when ruleList is empty) over it.
func runDir(t *testing.T, dir, ruleList string) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	pkgs, err := sharedLoader(t).Load([]string{abs})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	analyzers, unknown := rules.Select(ruleList)
	if len(unknown) > 0 {
		t.Fatalf("unknown rules in %q: %v", ruleList, unknown)
	}
	// The loader's universe carries every dependency package parsed so
	// far (including other testdata packages from earlier subtests —
	// harmless: facts for the analyzed package derive only from its
	// own call graph), exactly as the pbcheck driver wires it.
	diags, err := analysis.RunUniverse(pkgs, sharedLoader(t).Universe(), analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", dir, err)
	}
	return diags
}

// TestGolden locks every analyzer's exact diagnostic positions and
// messages against seeded-violation packages. Each testdata directory
// holds one package plus an expect.txt golden in the plain output
// format (suppressed findings shown and annotated). Regenerate with
//
//	go test ./internal/analysis/rules -run TestGolden -update
//
// and review the diff: a golden change is an analyzer behavior change.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir   string // under testdata/
		rules string // comma-separated; "" = whole suite
	}{
		{"determinism/pb", "determinism"},
		{"nopanic/lib", "nopanic"},
		{"nopanic/main", "nopanic"},
		{"floateq/other", "floateq"},
		{"floateq/stats", "floateq"},
		{"errdiscard", "errdiscard"},
		{"ctxflow", "ctxflow"},
		{"ignore", ""},
		{"hotalloc", "hotalloc"},
		{"locksafe", "locksafe"},
		{"leakygo", "leakygo"},
		{"purity", "purity"},
		{"lockflow", "lockflow"},
		{"errflow", "errflow"},
		{"racecheck", "racecheck"},
		{"chansafe", "chansafe"},
		// The interprocedural golden: only facts/sim is analyzed; flow
		// and clock enter the universe as dependencies, so every
		// finding crosses at least one package boundary.
		{"facts/sim", "determinism,nopanic,hotalloc,purity"},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.dir, "/", "_"), func(t *testing.T) {
			diags := runDir(t, tc.dir, tc.rules)
			abs, err := filepath.Abs(filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			analysis.WritePlain(&buf, abs, diags, true)
			golden := filepath.Join("testdata", tc.dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestSuppression pins the //pbcheck:ignore contract beyond the
// golden: a reasonless or ruleless marker is itself a diagnostic
// under the unsuppressible "ignore" rule, valid waivers suppress and
// carry their reason, and coverage stops at the line below the
// comment.
func TestSuppression(t *testing.T) {
	diags := runDir(t, "ignore", "")

	byRule := make(map[string][]analysis.Diagnostic)
	for _, d := range diags {
		byRule[d.Rule] = append(byRule[d.Rule], d)
	}

	ignores := byRule[analysis.IgnoreRule]
	if len(ignores) != 4 {
		t.Fatalf("got %d ignore diagnostics, want 4 (missing reason, missing rule, unknown rule, stale waiver): %+v", len(ignores), ignores)
	}
	wantFragments := []string{"needs a reason", "needs a rule", "unknown rule", "stale //pbcheck:ignore"}
	for _, frag := range wantFragments {
		found := false
		for _, d := range ignores {
			if strings.Contains(d.Message, frag) {
				found = true
				if d.Suppressed {
					t.Errorf("ignore diagnostic %q is suppressed; the ignore rule must be unsuppressible", d.Message)
				}
			}
		}
		if !found {
			t.Errorf("no ignore diagnostic mentions %q; got %+v", frag, ignores)
		}
	}

	var suppressed, active []analysis.Diagnostic
	for _, d := range byRule["errdiscard"] {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		} else {
			active = append(active, d)
		}
	}
	// SameLine and LineAbove are waived; MissingReason, MissingRule,
	// UnknownRule, and TooFar keep their findings active. TooFar's
	// waiver additionally goes stale: two lines above the call, it
	// suppresses nothing, and the stale-waiver check says so.
	if len(suppressed) != 2 {
		t.Errorf("got %d suppressed errdiscard findings, want 2: %+v", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if d.Reason == "" {
			t.Errorf("suppressed finding at %v has no reason recorded", d.Position)
		}
	}
	if len(active) != 4 {
		t.Errorf("got %d active errdiscard findings, want 4: %+v", len(active), active)
	}
	if got := analysis.Active(diags); got != 8 {
		t.Errorf("Active = %d, want 8 (4 ignore + 4 errdiscard)", got)
	}
}
