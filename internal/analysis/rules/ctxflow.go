package rules

import (
	"go/ast"
	"go/types"

	"pbsim/internal/analysis"
)

// CtxFlow requires that a function accepting a context.Context
// actually uses it — propagating it to callees or checking
// cancellation — and that it does not sprout a fresh
// context.Background()/TODO() that severs the cancellation chain.
//
// The runner's draining guarantee (SIGINT cancels the suite and every
// in-flight row observes it) only holds if the context threads
// unbroken from the CLI through pb into the row evaluators. A dropped
// or replaced ctx is a row that keeps simulating after the user asked
// it to stop.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "functions accepting a context.Context must propagate or check it, and must not replace it with context.Background/TODO",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			params := ctxParams(info, ft)
			if len(params) == 0 {
				return true
			}
			for _, p := range params {
				if p.Name == "_" {
					pass.Reportf(p.Pos(), "context.Context parameter is discarded (_); name and propagate it, or drop it from the signature")
					continue
				}
				if obj := info.Defs[p]; obj != nil && !identUsed(info, body, obj) {
					pass.Reportf(p.Pos(), "context.Context parameter %s is never propagated or checked; thread it to callees or watch ctx.Done/ctx.Err", p.Name)
				}
			}
			checkFreshContext(pass, info, body)
			return true
		})
	}
}

// ctxParams returns the name identifiers of every context.Context
// parameter in the signature (anonymous parameters yield nothing —
// the type checker has no object for them — so they are reported via
// the "_" convention only when explicitly blanked).
func ctxParams(info *types.Info, ft *ast.FuncType) []*ast.Ident {
	if ft.Params == nil {
		return nil
	}
	var out []*ast.Ident
	for _, field := range ft.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		out = append(out, field.Names...)
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// identUsed reports whether any identifier in body resolves to obj.
func identUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// checkFreshContext flags context.Background()/context.TODO() calls
// in a body whose function already receives a ctx. Nested function
// literals that accept their own ctx are skipped — they are checked
// as functions in their own right.
func checkFreshContext(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if len(ctxParams(info, n.Type)) > 0 {
				return false
			}
		case *ast.CallExpr:
			obj := calleeObject(info, n)
			if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
				pass.Reportf(n.Pos(), "context.%s creates a fresh context inside a function that already receives one; propagate the ctx parameter so cancellation reaches this call", obj.Name())
			}
		}
		return true
	})
}
