package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbsim/internal/analysis"
)

// LeakyGo flags go statements that start a goroutine with no visible
// way to stop: no context, no channel, no WaitGroup anywhere in the
// launch. The runner's worker pool and the obs progress/debug
// goroutines are the motivating cases — a campaign that spawns one
// leaked goroutine per run bleeds memory across a 10k-row sweep, and
// a goroutine still touching a checkpoint writer after Close is a
// race the detector only catches if a test happens to overlap them.
//
// A goroutine counts as terminable when the analyzer can see any of:
//
//   - an argument (or the goroutine expression itself) carrying a
//     context.Context, a channel, or a *sync.WaitGroup — the caller
//     handed it a stop signal;
//   - for a function literal or a module function (resolved through
//     the fact engine's index), a body containing a select statement,
//     a channel receive, a range over a channel, a context method
//     call (Done/Err/Deadline), or a sync.WaitGroup Done — it
//     terminates or signals on its own.
//
// Goroutines running foreign code with none of those (the obs debug
// server's go srv.Serve(ln) is the canonical case) need a reasoned
// waiver naming the out-of-band termination path.
var LeakyGo = &analysis.Analyzer{
	Name: "leakygo",
	Doc:  "go statements must have a visible termination path: a context, channel, or WaitGroup in the launch, or a select/receive/Done in the goroutine body",
	Run:  runLeakyGo,
}

func runLeakyGo(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			call := gs.Call
			for _, arg := range call.Args {
				if isTerminationCarrier(info.TypeOf(arg)) {
					return true
				}
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.FuncLit:
				if bodyHasTermination(info, fun.Body) {
					return true
				}
			default:
				if fi := pass.Facts.Lookup(calleeObject(info, call)); fi != nil {
					if bodyHasTermination(fi.Pkg.Info, fi.Decl.Body) {
						return true
					}
				}
			}
			pass.Reportf(gs.Pos(), "goroutine has no visible termination path (no context, channel, or WaitGroup in the launch or body); it can outlive its owner and leak")
			return true
		})
	}
}

// isTerminationCarrier reports whether a value of type t can carry a
// stop signal into the goroutine.
func isTerminationCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if isContextType(t) {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := types.Unalias(ptr.Elem()).(*types.Named); ok {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
				return true
			}
		}
	}
	return false
}

// bodyHasTermination scans a goroutine body (with info from the body's
// own package — module callees resolve against their defining package)
// for a termination construct.
func bodyHasTermination(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sync":
				if fn.Name() == "Done" || fn.Name() == "Wait" {
					found = true
				}
			case "context":
				switch fn.Name() {
				case "Done", "Err", "Deadline":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
