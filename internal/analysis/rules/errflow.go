package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/flow"
)

// ErrFlow is the path-sensitive companion to ErrDiscard. ErrDiscard
// catches errors dropped at the call site (`_ = f()`, bare `f()`);
// ErrFlow follows the assigned variable through the CFG and catches
// the two shapes the compiler's unused-variable check cannot see:
//
//   - OVERWRITE: an error is assigned and, on at least one path, a
//     second assignment lands on the same variable before anything
//     reads the first — the first failure is silently replaced;
//   - ABANDONED: an error is assigned, read on some path (so the
//     compiler is satisfied), but on at least one other path the
//     function returns without ever looking at it.
//
// Both reports anchor at the ORIGINAL assignment and name the callee,
// never a line number, so their baseline fingerprints survive
// position shuffles. Only function-local variables and named results
// are tracked; any variable that appears inside a nested function
// literal or has its address taken is excluded outright (a closure or
// alias may read it at any time), keeping the rule on the
// zero-false-positive side of every aliasing question.
var ErrFlow = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "path-sensitive error tracking: an assigned error must not be overwritten or abandoned on any path before something checks it",
	Run:  runErrFlow,
}

// errPending records one unchecked error-producing assignment.
type errPending struct {
	pos token.Pos // the assigned identifier, for reporting
	src string    // callee text ("json.Unmarshal")
}

// errState is the dataflow state: reachability plus the set of
// variables holding an unchecked error, each with its origin.
type errState struct {
	reached bool
	pending map[*types.Var]errPending
}

func (s *errState) Join(other flow.State) flow.State {
	o := other.(*errState)
	if !s.reached {
		return o
	}
	if !o.reached {
		return s
	}
	out := &errState{reached: true, pending: make(map[*types.Var]errPending, len(s.pending)+len(o.pending))}
	for v, p := range s.pending {
		out.pending[v] = p
	}
	for v, p := range o.pending {
		if cur, ok := out.pending[v]; !ok || p.pos < cur.pos {
			out.pending[v] = p
		}
	}
	return out
}

func (s *errState) Equal(other flow.State) bool {
	o := other.(*errState)
	if s.reached != o.reached || len(s.pending) != len(o.pending) {
		return false
	}
	for v, p := range s.pending {
		if op, ok := o.pending[v]; !ok || op != p {
			return false
		}
	}
	return true
}

// errScope is the per-function context.
type errScope struct {
	info    *types.Info
	tracked map[*types.Var]bool // locals + named results, minus exclusions
	results map[*types.Var]bool // named results (read by naked returns)
}

// errProblem solves forward over the scope's CFG.
type errProblem struct {
	scope *errScope
}

func (p *errProblem) Boundary() flow.State { return &errState{reached: true} }
func (p *errProblem) Bottom() flow.State   { return &errState{} }
func (p *errProblem) Backward() bool       { return false }

func (p *errProblem) Transfer(b *flow.Block, in flow.State) flow.State {
	return p.scope.applyBlock(b, in.(*errState), nil)
}

// applyBlock runs one block's nodes over a copy of st. When report is
// non-nil (the post-fixpoint pass), overwrite defects fire.
func (sc *errScope) applyBlock(b *flow.Block, st *errState, report func(p errPending, v *types.Var)) *errState {
	if !st.reached || len(b.Nodes) == 0 {
		return st
	}
	out := &errState{reached: true, pending: make(map[*types.Var]errPending, len(st.pending))}
	for v, p := range st.pending {
		out.pending[v] = p
	}
	for _, node := range b.Nodes {
		sc.applyNode(node, out, report)
	}
	return out
}

// applyNode interprets one atomic node: reads clear pending, writes to
// tracked variables report overwrites and may start a new pending.
func (sc *errScope) applyNode(node ast.Node, st *errState, report func(p errPending, v *types.Var)) {
	// Range head markers carry the whole loop body under them; by the
	// flow package contract only X/Key/Value belong to this block, and
	// X is its own node. Key/Value writes just clear pending (an error
	// ranged into existence has no single producing call to anchor).
	if rs, ok := node.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if e == nil {
				continue
			}
			if v := sc.trackedIdent(e); v != nil {
				delete(st.pending, v)
			}
		}
		return
	}

	// Writes this node performs, excluded from the read walk.
	writes := make(map[*ast.Ident]bool)
	var assign *ast.AssignStmt
	if as, ok := node.(*ast.AssignStmt); ok {
		assign = as
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				writes[id] = true
			}
		}
	}

	// Reads: every use of a tracked variable outside the write set
	// clears its pending — the error reached a check, a wrap, a log,
	// or a callee.
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if v, ok := sc.info.Uses[id].(*types.Var); ok && sc.tracked[v] {
			delete(st.pending, v)
		}
		return true
	})

	// Naked return reads every named result.
	if ret, ok := node.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		for v := range sc.results {
			delete(st.pending, v)
		}
	}

	if assign == nil {
		return
	}

	// Writes: each tracked LHS with a pending error is an overwrite;
	// error-producing RHS calls start a new pending.
	producers := sc.errorProducers(assign)
	for i, lhs := range assign.Lhs {
		v := sc.trackedIdent(lhs)
		if v == nil {
			continue
		}
		if p, ok := st.pending[v]; ok {
			if report != nil {
				report(p, v)
			}
			delete(st.pending, v)
		}
		if src, ok := producers[i]; ok {
			st.pending[v] = errPending{pos: lhs.Pos(), src: src}
		}
	}
}

// trackedIdent resolves e to a tracked variable, or nil.
func (sc *errScope) trackedIdent(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := sc.info.Defs[id].(*types.Var)
	if !ok {
		if v, ok = sc.info.Uses[id].(*types.Var); !ok {
			return nil
		}
	}
	if !sc.tracked[v] {
		return nil
	}
	return v
}

// errorProducers maps LHS indices of the assignment to the callee text
// of the call producing an error there.
func (sc *errScope) errorProducers(as *ast.AssignStmt) map[int]string {
	out := make(map[int]string)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return out
		}
		src := types.ExprString(call.Fun)
		for _, idx := range errorResults(sc.info, call) {
			if idx < len(as.Lhs) {
				out[idx] = src
			}
		}
		return out
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if isErrorType(sc.info.TypeOf(call)) {
				out[i] = types.ExprString(call.Fun)
			}
		}
	}
	return out
}

func runErrFlow(pass *analysis.Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkErrFlowScope(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkErrFlowScope(pass, n.Type, n.Body)
			}
			return true
		})
	}
}

// checkErrFlowScope analyzes one function (or literal) body.
func checkErrFlowScope(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	sc := &errScope{
		info:    info,
		tracked: make(map[*types.Var]bool),
		results: make(map[*types.Var]bool),
	}

	// Candidates: error-typed named results plus error-typed locals
	// declared in this scope but outside nested literals.
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isErrorType(v.Type()) {
					sc.tracked[v] = true
					sc.results[v] = true
				}
			}
		}
	}
	var collect func(n ast.Node)
	collect = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // its locals belong to its own scope
			}
			// The blank identifier gets a Defs object in := statements
			// but is an explicit discard, never a trackable variable.
			if id, ok := n.(*ast.Ident); ok && id.Name != "_" {
				if v, ok := info.Defs[id].(*types.Var); ok && isErrorType(v.Type()) && !v.IsField() {
					sc.tracked[v] = true
				}
			}
			return true
		})
	}
	collect(body)
	if len(sc.tracked) == 0 {
		return
	}

	// Exclusions: a variable captured by any nested literal or with
	// its address taken can be read through the alias at any point —
	// including after every position this analysis sees — so it is
	// not trackable without alias analysis.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						delete(sc.tracked, v)
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						delete(sc.tracked, v)
					}
				}
			}
		}
		return true
	})
	if len(sc.tracked) == 0 {
		return
	}

	g := flow.Build(body)
	res := flow.Solve(g, &errProblem{scope: sc})

	type key struct {
		v   *types.Var
		pos token.Pos
	}
	reported := make(map[key]bool)

	// Overwrites, on converged in-states.
	for _, b := range g.Blocks {
		in := res.In[b].(*errState)
		sc.applyBlock(b, in, func(p errPending, v *types.Var) {
			k := key{v, p.pos}
			if reported[k] {
				return
			}
			reported[k] = true
			pass.Reportf(p.pos,
				"error from %s assigned to %s is overwritten before any check on at least one path; handle or explicitly discard the first error",
				p.src, v.Name())
		})
	}

	// Abandonments: pending at a non-panic exit predecessor.
	for _, pred := range g.Exit.Preds {
		if pred.Panics {
			continue
		}
		out := res.Out[pred].(*errState)
		if !out.reached {
			continue
		}
		pendings := make([]errPending, 0, len(out.pending))
		vars := make(map[errPending]*types.Var, len(out.pending))
		for v, p := range out.pending {
			pendings = append(pendings, p)
			vars[p] = v
		}
		sort.Slice(pendings, func(i, j int) bool { return pendings[i].pos < pendings[j].pos })
		for _, p := range pendings {
			v := vars[p]
			k := key{v, p.pos}
			if reported[k] {
				continue
			}
			reported[k] = true
			pass.Reportf(p.pos,
				"error from %s assigned to %s is never checked on at least one path to return; check it on every path or assign to _",
				p.src, v.Name())
		}
	}
}
