package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pbsim/internal/analysis"
)

// deterministicSegments names the packages whose outputs must be pure
// functions of their configuration: every package whose import path
// contains one of these segments is held to the determinism
// invariant. These are the packages whose results flow into effects,
// ranks, and sum-of-ranks — the quantities the paper's Tables 9-12
// (and PR 1/PR 2's bit-identity guarantees) are built on.
var deterministicSegments = map[string]bool{
	"pb":       true,
	"stats":    true,
	"sim":      true,
	"trace":    true,
	"cluster":  true,
	"tables":   true,
	"truth":    true,
	"assess":   true,
	"sampling": true,
}

// randConstructors are the math/rand functions that build an
// explicitly seeded generator rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand, so it is bound to a seeded source
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Determinism forbids the ambient-state reads that would make a
// simulation row depend on anything but its configuration: wall-clock
// reads, the globally seeded math/rand source, environment variables,
// and map iteration feeding order-dependent output.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, env reads, and map-order-dependent output in the deterministic packages (pb, stats, sim, trace, cluster, tables)",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) {
	if !pathHasSegment(pass.Path(), deterministicSegments) {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkForbiddenObject(pass, n)
			case *ast.CallExpr:
				checkNondetCallee(pass, n)
			case *ast.BlockStmt:
				checkStmtList(pass, info, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, info, n.Body)
			case *ast.CommClause:
				checkStmtList(pass, info, n.Body)
			}
			return true
		})
	}
}

// checkNondetCallee is the interprocedural half: a call to a module
// function that transitively reaches a nondeterminism sink (per the
// fact engine's fixpoint) taints this package just as a direct sink
// would. The call site is only reported when the callee will not
// report at its own definition — i.e. the callee lives outside the
// deterministic packages, or its package was loaded only as a
// dependency — so each laundered sink surfaces exactly once.
func checkNondetCallee(pass *analysis.Pass, call *ast.CallExpr) {
	fi := pass.Facts.Lookup(calleeObject(pass.TypesInfo(), call))
	if fi == nil || !fi.Facts().Has(analysis.FactNondet) {
		return
	}
	if pathHasSegment(fi.Pkg.Path, deterministicSegments) && pass.Facts.IsAnalyzed(fi.Pkg.Path) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s reaches a nondeterminism source (%s → %s); deterministic packages must compute from configuration and simulated time only",
		fi.DisplayName(), fi.DisplayName(), fi.Why(analysis.FactNondet))
}

// checkStmtList examines each range statement in a statement list
// along with the statements that follow it (so a post-loop sort can
// absolve a key-collecting append).
func checkStmtList(pass *analysis.Pass, info *types.Info, list []ast.Stmt) {
	for i, stmt := range list {
		if ls, ok := stmt.(*ast.LabeledStmt); ok {
			stmt = ls.Stmt
		}
		if rs, ok := stmt.(*ast.RangeStmt); ok {
			checkMapRange(pass, info, rs, list[i+1:])
		}
	}
}

// checkForbiddenObject flags uses of the nondeterminism sources. It
// inspects identifiers (a selector's Sel is itself an identifier), so
// aliased and dot imports are resolved through the type checker
// rather than by matching source text.
func checkForbiddenObject(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo().Uses[id]
	if obj == nil {
		return
	}
	switch objPkgPath(obj) {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(id.Pos(), "time.%s reads the wall clock; deterministic packages must compute from configuration and simulated time only", obj.Name())
		}
	case "os":
		switch obj.Name() {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv":
			pass.Reportf(id.Pos(), "os.%s reads the process environment; thread configuration in explicitly so a row is a pure function of its config", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions touch the global source; methods
		// on *rand.Rand (or a Source) are bound to whatever seed built
		// them, which is exactly the approved pattern.
		fn, isFunc := obj.(*types.Func)
		if isFunc && fn.Type().(*types.Signature).Recv() == nil && !randConstructors[obj.Name()] {
			pass.Reportf(id.Pos(), "rand.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand so replays are bit-identical", obj.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body
// feeds order-dependent output: appending to a slice declared outside
// the loop, accumulating into an outer float (float addition is not
// associative, so summation order changes the bits), or printing.
// Go randomizes map iteration order per run, so any of these makes
// the result nondeterministic.
//
// The collect-then-sort idiom is recognized: an append target that a
// later statement in the same block passes to a sort.* or
// slices.Sort* call is deterministic by construction and not flagged.
func checkMapRange(pass *analysis.Pass, info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, info, rs, n, rest)
		case *ast.CallExpr:
			if obj := calleeObject(info, n); objPkgPath(obj) == "fmt" &&
				(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
				pass.Reportf(n.Pos(), "printing inside a map-range loop emits in randomized map order; iterate sorted keys instead")
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, info *types.Info, rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	outer := func(e ast.Expr) (*ast.Ident, types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, nil, false
		}
		obj := info.ObjectOf(id)
		return id, obj, obj != nil && obj.Pos().IsValid() && obj.Pos() < rs.Pos()
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if id, _, isOuter := outer(as.Lhs[0]); isOuter && isFloat(info.TypeOf(as.Lhs[0])) {
			pass.Reportf(as.Pos(), "accumulating float %s across a map range depends on randomized iteration order (float math is not associative); iterate sorted keys", id.Name)
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
				continue
			} else if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			if id, obj, isOuter := outer(as.Lhs[i]); isOuter && !sortedAfter(info, obj, rest) {
				pass.Reportf(as.Pos(), "appending to %s inside a map range produces randomized element order; sort it after the loop or iterate sorted keys", id.Name)
			}
		}
	}
}

// sortedAfter reports whether any statement after the loop passes obj
// into a sort.* or slices.Sort* call, which restores a deterministic
// order.
func sortedAfter(info *types.Info, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			callee := calleeObject(info, call)
			pkg := objPkgPath(callee)
			if pkg != "sort" && !(pkg == "slices" && strings.HasPrefix(callee.Name(), "Sort")) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
