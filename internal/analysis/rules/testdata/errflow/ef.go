// Package errflow seeds the two path-sensitive error defects — an
// error overwritten before any check, an error abandoned on one path
// — plus the checked, captured, and aliased shapes that must stay
// silent.
package errflow

import "errors"

func step(i int) error {
	if i < 0 {
		return errors.New("negative")
	}
	return nil
}

func fetch() (int, error) { return 0, nil }

func record(*error) {}

// Overwrite assigns a second error before anything reads the first:
// the first failure is silently replaced. Reported at the first
// assignment.
func Overwrite(a, b int) error {
	err := step(a)
	err = step(b)
	return err
}

// AbandonedBranch reads the error when flush is true and forgets it on
// the other path. Reported at the assignment.
func AbandonedBranch(flush bool) error {
	err := step(1)
	if flush {
		return err
	}
	return nil
}

// Checked is the canonical clean shape: every error meets a check
// before the next assignment.
func Checked() error {
	if err := step(1); err != nil {
		return err
	}
	v, err := fetch()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// LoopLastWins keeps only the final iteration's error: every earlier
// failure is overwritten unchecked across the back edge.
func LoopLastWins(xs []int) error {
	var err error
	for _, x := range xs {
		err = step(x)
	}
	return err
}

// RetryChecked checks inside the loop before the next assignment:
// clean.
func RetryChecked() error {
	var err error
	for i := 0; i < 3; i++ {
		err = step(i)
		if err == nil {
			break
		}
	}
	return err
}

// CapturedEscapes hands the variable to a deferred closure; an alias
// may read it at any time, so tracking is disabled: clean.
func CapturedEscapes() error {
	err := step(1)
	defer func() { _ = err }()
	err = step(2)
	return err
}

// AddressTaken likewise escapes through a pointer: clean.
func AddressTaken() error {
	err := step(1)
	record(&err)
	err = step(2)
	return err
}

// NamedOverwrite overwrites a named result on one branch before any
// check. Reported at the first assignment.
func NamedOverwrite(deep bool) (err error) {
	err = step(1)
	if deep {
		err = step(2)
	}
	return
}

// BlankDiscard is an explicit discard: the blank identifier is never
// tracked, even though go/types gives it a Defs object.
func BlankDiscard() int {
	v, _ := fetch()
	return v
}
