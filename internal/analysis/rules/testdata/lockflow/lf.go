// Package lockflow seeds the three path-sensitive lock defects — a
// branch that leaks the lock, a definite double-lock, a definite
// unlock-of-free — plus the maybe-states and deferred shapes that
// must stay silent.
package lockflow

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func work() {}

// BranchLeak unlocks on the early-return path only: the fall-through
// return leaves the mutex held. Reported at the Lock.
func (s *store) BranchLeak(key string) int {
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		return v
	}
	return -1
}

// DoubleLock re-locks a mutex that is definitely held on the branch:
// self-deadlock.
func (s *store) DoubleLock(again bool) {
	s.mu.Lock()
	if again {
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// UnlockFree releases a mutex no path has locked: runtime fatal.
func (s *store) UnlockFree() {
	s.mu.Unlock()
}

// Correlated guards the lock and the unlock with the same condition.
// The solver sees maybe-held at the join; maybe must stay silent.
func (s *store) Correlated(cond bool) {
	if cond {
		s.mu.Lock()
	}
	work()
	if cond {
		s.mu.Unlock()
	}
}

// DeferCovered is the canonical clean shape.
func (s *store) DeferCovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ClosureCovered defers the unlock inside a closure; it still covers
// every exit path.
func (s *store) ClosureCovered() int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return len(s.m)
}

// ReadersAllowed takes the read lock twice: legal for RWMutex readers,
// no double-lock report.
func (s *store) ReadersAllowed() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.rw.RLock()
	n := len(s.m)
	s.rw.RUnlock()
	return n
}

// WriteSideLeak pairs nothing on the early-return path: the write lock
// is held when flush is true. Reported at the Lock.
func (s *store) WriteSideLeak(flush bool) {
	s.rw.Lock()
	if flush {
		return
	}
	s.rw.Unlock()
}

// LoopBalanced locks and unlocks every iteration: clean across the
// back edge.
func (s *store) LoopBalanced(keys []string) {
	for range keys {
		s.mu.Lock()
		work()
		s.mu.Unlock()
	}
}
