// Package purity seeds one violation of each purity proof obligation
// plus the clean shapes that must stay silent: owned-allocation
// helpers, value receivers, and a reviewed waiver.
package purity

import (
	"sort"
	"time"
)

var counter int

// Add computes from its arguments alone: provably pure.
//
//pbcheck:pure
func Add(a, b int) int { return a + b }

// Sum reads a caller slice and folds into a local: reads are free,
// still pure.
//
//pbcheck:pure
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Doubled fills and returns a slice it allocated itself: owned writes
// carry no effect.
//
//pbcheck:pure
func Doubled(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = 2 * x
	}
	return out
}

// Pt carries the receiver cases.
type Pt struct{ X, Y int }

// Norm2 reads through a value receiver: pure.
//
//pbcheck:pure
func (p Pt) Norm2() int { return p.X*p.X + p.Y*p.Y }

// Scale writes through its pointer receiver: the claim is false.
//
//pbcheck:pure
func (p *Pt) Scale(k int) {
	p.X *= k
	p.Y *= k
}

// Bump mutates package state directly.
//
//pbcheck:pure
func Bump() int {
	counter++
	return counter
}

// hidden is unmarked; CallsHidden reaches its write one hop away, so
// the finding must carry the chain.
func hidden() { counter = 0 }

// CallsHidden claims purity over an impure callee.
//
//pbcheck:pure
func CallsHidden() { hidden() }

// Stamp reads the wall clock: pure functions compute from arguments
// alone.
//
//pbcheck:pure
func Stamp() int64 { return time.Now().UnixNano() }

// Sorts calls foreign code the engine cannot see through: the claim
// cannot be proved.
//
//pbcheck:pure
func Sorts(xs []int) {
	sort.Ints(xs)
}

// Seeded carries a reviewed waiver on its write: the waiver cuts the
// fact, so the marker holds.
//
//pbcheck:pure
func Seeded() int {
	//pbcheck:ignore purity test fixture: reviewed benign write
	counter = 1
	return counter
}

// The marker below is attached to a variable, not a function: orphan.
//
//pbcheck:pure
var sink int
