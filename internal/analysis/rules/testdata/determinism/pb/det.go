// Package det seeds one violation per determinism sub-rule, plus the
// idiomatic patterns (seeded sources, collect-then-sort) the analyzer
// must NOT flag. The directory path carries the "pb" segment so the
// determinism rule applies.
package det

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed measures real time.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds()
}

// Draw uses the shared global generator.
func Draw() float64 {
	return rand.Float64()
}

// Seeded builds an explicit source: allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// FromEnv reads process environment.
func FromEnv() string {
	return os.Getenv("PB_MODE")
}

// Keys appends map keys in iteration order without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the approved collect-then-sort idiom: not flagged.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum accumulates floats in map iteration order.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Dump prints during map iteration.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
