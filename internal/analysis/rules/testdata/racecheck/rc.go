// Package rc seeds the racecheck shapes: spawner-side writes inside
// an open spawn window, loop-spawned goroutines sharing their
// captures, spawned functions writing package state — and the
// synchronized or ownership-transferring variants of each that must
// stay silent.
package rc

import "sync"

// CapturedCounter writes a captured variable while the goroutine that
// captures it is still running. Only the write between the go
// statement and the channel receive reports: before the spawn there
// is no goroutine, after the receive the window is closed.
func CapturedCounter() int {
	n := 0
	done := make(chan struct{})
	n++ // before the spawn: silent
	go func() {
		n++ // single straight-line spawn: the spawner's window owns it
		close(done)
	}()
	n++ // want racecheck: in-window write to a captured variable
	<-done
	n++ // after the synchronization edge: silent
	return n
}

// SharedSlice writes through a slice the spawned goroutine also
// holds. The in-window element write reports; the one after wg.Wait
// does not.
func SharedSlice() int {
	buf := make([]int, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf[0] = 1
	}()
	buf[1] = 2 // want racecheck: in-window write to shared memory
	wg.Wait()
	buf[2] = 3 // after wg.Wait: silent
	return buf[0] + buf[1] + buf[2]
}

// Guarded takes the same shape as CapturedCounter but holds a mutex
// on both sides: definitely-unlocked-only means no report.
func Guarded() int {
	var mu sync.Mutex
	n := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		n++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	n++ // lock possibly held: silent
	mu.Unlock()
	<-done
	return n
}

// LoopSpawn accumulates into a captured variable from goroutines
// spawned in a loop: the goroutines race each other, so the
// goroutine-side write reports even though the spawner synchronizes.
func LoopSpawn(rows [][]float64) float64 {
	sum := 0.0
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r []float64) {
			defer wg.Done()
			for _, v := range r {
				sum += v // want racecheck: loop-spawned goroutines share sum
			}
		}(r)
	}
	wg.Wait()
	return sum
}

// LoopSpawnGuarded is the corrected LoopSpawn: the mutex covers the
// accumulation, so every write is possibly-locked and silent.
func LoopSpawnGuarded(rows [][]float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r []float64) {
			defer wg.Done()
			mu.Lock()
			for _, v := range r {
				sum += v
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return sum
}

var hits int

// Spawner launches a goroutine whose call chain reaches bump: the
// spawn fact travels go statement → record → bump, and the unguarded
// package-level write reports two hops from the spawn site.
func Spawner() {
	go func() { record() }()
}

func record() { bump() }

func bump() {
	hits++ // want racecheck: unguarded global write on a spawned goroutine
}

var (
	totalMu sync.Mutex
	total   int
)

// SpawnGuardedGlobal spawns addTotal directly; its global write holds
// the mutex and stays silent.
func SpawnGuardedGlobal() {
	go addTotal(5)
}

func addTotal(n int) {
	totalMu.Lock()
	total += n
	totalMu.Unlock()
}

// ChannelHandoff sends freshly built memory to the goroutine on a
// channel: ownership transfers, so neither side's writes report.
func ChannelHandoff() {
	ch := make(chan []int, 1)
	done := make(chan struct{})
	go func() {
		v := <-ch
		v[0]++ // receiver owns the payload: silent
		close(done)
	}()
	s := make([]int, 4)
	s[0] = 1 // handed off on a channel, not shared: silent
	ch <- s
	<-done
}
