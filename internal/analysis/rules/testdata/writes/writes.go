// Package writes is the unit-test battery for the write-effect fact:
// each function isolates one classification the engine must get
// right. The facts test asserts presence/absence of FactWritesState
// and the exact why-string per function.
package writes

var global int

var registry = map[string]int{}

// WritesGlobal assigns a package-level variable: always an effect.
func WritesGlobal() { global = 1 }

// IncrGlobal mutates a package-level variable through ++.
func IncrGlobal() { global++ }

// DeletesGlobalMap mutates package-level map state via a builtin.
func DeletesGlobalMap() { delete(registry, "k") }

// S carries the receiver-write cases.
type S struct {
	n int
	m map[string]int
}

// SetN writes through a pointer receiver: caller-visible.
func (s *S) SetN(v int) { s.n = v }

// ValueRecv writes a field of a VALUE receiver: the copy dies with
// the frame, no effect.
func (s S) ValueRecv() int { s.n = 1; return s.n }

// MutatesRecvMap writes an element of a map reached through the
// receiver: indirect, caller-visible.
func (s *S) MutatesRecvMap() { s.m["k"] = 1 }

// WritesParam writes through a pointer parameter.
func WritesParam(p *int) { *p = 1 }

// WritesSliceParam writes an element of a caller-owned slice.
func WritesSliceParam(in []int) { in[0] = 1 }

// AliasesParam copies a parameter slice into a local first; the local
// still aliases caller memory, so the element write is an effect.
func AliasesParam(in []int) { xs := in; xs[0] = 1 }

// ShadowsParam rebinds the PARAMETER VARIABLE to an owned slice —
// but a variable ever assigned caller memory is never owned, so the
// engine conservatively keeps the effect.
func ShadowsParam(in []int) { in = make([]int, 1); in[0] = 1; _ = in }

// OwnedSlice builds, fills, and returns its own slice: no effect.
func OwnedSlice() []int {
	xs := make([]int, 4)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// OwnedMap exercises composite-literal ownership plus delete on owned
// memory: no effect.
func OwnedMap() map[string]int {
	m := map[string]int{}
	m["a"] = 1
	delete(m, "a")
	return m
}

// AppendOwned exercises the zero-value + append(owned) ownership
// chain: no effect.
func AppendOwned() []int {
	var xs []int
	xs = append(xs, 1, 2)
	xs[0] = 9
	return xs
}

// SliceOfOwned exercises ownership through a reslice: no effect.
func SliceOfOwned() []int {
	xs := make([]int, 8)
	ys := xs[2:4]
	ys[0] = 1
	return ys
}

// SendsOnParam sends on a caller-supplied channel: observable by any
// goroutine holding it.
func SendsOnParam(ch chan int) { ch <- 1 }

// ClosesParam closes a caller-supplied channel.
func ClosesParam(ch chan int) { close(ch) }

// OwnedChan sends on and closes a channel it made itself: no effect.
func OwnedChan() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// CallsWriter has no local writes but reaches one through a call: the
// fact must propagate with a named chain.
func CallsWriter() { WritesGlobal() }

// PureLocal does arithmetic on locals only.
func PureLocal(x int) int {
	y := x + 1
	y++
	return y
}

// WaivedWrite carries a reviewed purity waiver on its global write,
// which must cut fact generation entirely.
func WaivedWrite() {
	//pbcheck:ignore purity test fixture: reviewed global write
	global = 2
}
