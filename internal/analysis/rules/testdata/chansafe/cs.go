// Package cs seeds the chansafe shapes: definite double-close,
// send-after-close, nil close, and nil blocking operations — plus the
// maybe-states, reassignments, and select idioms that must stay
// silent.
package cs

// DoubleClose closes the same channel twice in a straight line.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want chansafe: close of closed channel
}

// SendAfterClose sends on a channel every path has closed.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chansafe: send on closed channel
}

// CloseNil closes a channel that is nil on every path.
func CloseNil() {
	var ch chan int
	close(ch) // want chansafe: close of nil channel
}

// NilSendBlocks sends on a definitely-nil channel outside a select:
// the goroutine blocks forever.
func NilSendBlocks() {
	var ch chan int
	ch <- 1 // want chansafe: nil-channel send
}

// NilRecvBlocks receives from a definitely-nil channel outside a
// select.
func NilRecvBlocks() int {
	var ch chan int
	return <-ch // want chansafe: nil-channel receive
}

// MaybeClosed closes on one branch only: at the second close the
// state is {open, closed} — a maybe — and stays silent.
func MaybeClosed(early bool) {
	ch := make(chan int)
	if early {
		close(ch)
	}
	if !early {
		close(ch) // maybe-closed: silent
	}
}

// BranchDoubleClose closes on both branches, so the rejoined close is
// a definite double close.
func BranchDoubleClose(a bool) {
	ch := make(chan int)
	if a {
		close(ch)
	} else {
		close(ch)
	}
	close(ch) // want chansafe: closed on every path in
}

// Reopen rebinds the variable to a fresh channel between closes: the
// second close targets an open channel and stays silent.
func Reopen() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch) // fresh channel: silent
}

// SelectNilArm reads from a deliberately nil channel inside a select:
// the standard disable-a-case idiom, silent — the same receive
// outside a select (NilRecvBlocks) reports.
func SelectNilArm() int {
	var updates chan int
	select {
	case v := <-updates:
		return v
	default:
		return 0
	}
}

// SelectClosedSend shows select does not excuse a definite
// send-after-close: the arm panics when chosen.
func SelectClosedSend() {
	ch := make(chan int, 1)
	close(ch)
	select {
	case ch <- 1: // want chansafe: send on closed channel even in select
	default:
	}
}

// DeferredClose releases the channel at exit: deferred statements
// carry no in-path state, so the send below stays silent.
func DeferredClose() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1 // before the deferred close runs: silent
}
