// Package locksafe seeds violations for the locksafe analyzer: every
// pairing failure it must catch, plus the sanctioned patterns (defer
// unlock, deferred-closure unlock, lock/unlock straight line) that
// must stay silent.
package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// missingUnlock never releases.
func missingUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
}

// returnBetween leaves the mutex held on the early-exit path.
func returnBetween(g *guarded, skip bool) {
	g.mu.Lock()
	if skip {
		return
	}
	g.n++
	g.mu.Unlock()
}

// deferTypo acquires on exit instead of releasing.
func deferTypo(g *guarded) {
	defer g.mu.Lock()
	g.n++
}

// readMismatch pairs RLock with Unlock instead of RUnlock.
func readMismatch(g *guarded) int {
	g.rw.RLock()
	n := g.n
	g.rw.Unlock()
	return n
}

// addAfterWait races the Wait it may already have released.
func addAfterWait(wg *sync.WaitGroup) {
	wg.Wait()
	wg.Add(1)
}

// byValue copies both primitives at every call.
func byValue(mu sync.Mutex, wg sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait()
}

// deferOK is the canonical clean pattern.
func deferOK(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// deferClosureOK releases inside a deferred closure: still covers all
// paths of this scope.
func deferClosureOK(g *guarded) {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

// straightLineOK locks and unlocks with no exit in between; the
// return after the unlock is fine.
func straightLineOK(g *guarded) int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}
