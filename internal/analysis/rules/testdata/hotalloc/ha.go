// Package hotalloc seeds violations for the hotalloc analyzer: every
// construct the fact engine's steady-state allocation model counts,
// the transitive and class-hierarchy propagation paths, plus the
// allowed idioms (self-append, pure-math calls) that must NOT fire.
package hotalloc

import "strings"

type point struct{ x, y int }

// clean is provably allocation-free: arithmetic, indexing, and the
// sanctioned self-append reuse idiom.
//
//pbcheck:hotpath
func clean(buf []int, v int) []int {
	v += v * 2
	buf = append(buf, v)
	return buf
}

// makes allocates directly.
//
//pbcheck:hotpath
func makes(n int) []int {
	return make([]int, n)
}

// helper allocates; it carries the fact so hot callers inherit it.
func helper() *point {
	return &point{x: 1}
}

// viaHelper allocates one call hop away.
//
//pbcheck:hotpath
func viaHelper() *point {
	return helper()
}

// growing appends into a different slice than it extends — not the
// self-append reuse idiom (x = append(x, ...)), so it allocates.
//
//pbcheck:hotpath
func growing(src, extra []int) []int {
	merged := append(src, extra...)
	return merged
}

// selfAppendOK reuses capacity via the sanctioned idiom and must stay
// silent even inside a loop.
//
//pbcheck:hotpath
func selfAppendOK(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// foreign calls outside the module and the pure-math whitelist, so
// the 0-alloc claim is unprovable.
//
//pbcheck:hotpath
func foreign(s string) string {
	return strings.ToUpper(s)
}

// stepper is a module interface: calls through it resolve by class
// hierarchy to every implementation below.
type stepper interface{ step() int }

type flat struct{ n int }

func (f *flat) step() int { return f.n + 1 }

type boxy struct{ n int }

func (b *boxy) step() int {
	s := make([]int, 1) // the CHA edge drags this into every caller
	s[0] = b.n
	return s[0]
}

// dispatch is hot and calls through the interface: the boxy
// implementation's allocation reaches it via the class hierarchy.
//
//pbcheck:hotpath
func dispatch(s stepper) int {
	return s.step()
}

//pbcheck:hotpath
var orphan = 3 // marker on a non-function: flagged, never silently dropped
