// Package leakygo seeds violations for the leakygo analyzer: go
// statements with no visible termination path, plus each of the
// sanctioned launch shapes (context/channel/WaitGroup argument,
// select or receive in the body, Done in a deferred closure) that
// must stay silent.
package leakygo

import (
	"context"
	"fmt"
	"sync"
)

func work() {
	for i := 0; i < 3; i++ {
		_ = i * i
	}
}

// leakyLit spins a closure with no stop signal.
func leakyLit() {
	go func() {
		for {
			work()
		}
	}()
}

// leakyModuleCallee launches a module function whose body has no
// termination construct either.
func leakyModuleCallee() {
	go work()
}

// leakyForeign launches foreign code with no signal in the arguments;
// the analyzer cannot see fmt's body, so this needs a waiver or a fix.
func leakyForeign() {
	go fmt.Println("fire and forget")
}

// selectOK terminates through a select on a stop channel.
func selectOK(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// ctxArgOK hands the goroutine a context: the launch carries the stop
// signal even though the callee is opaque here.
func ctxArgOK(ctx context.Context) {
	go tick(ctx)
}

func tick(ctx context.Context) {
	<-ctx.Done()
}

// wgOK signals completion through a WaitGroup.
func wgOK(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

// moduleBodyOK launches a module function that terminates by
// receiving on a struct-field channel — visible through the fact
// engine's index even with no signal in the launch itself.
type pump struct {
	stop chan struct{}
}

func (p *pump) run() {
	for {
		select {
		case <-p.stop:
			return
		default:
			work()
		}
	}
}

func moduleBodyOK(p *pump) {
	go p.run()
}
