// Package sim is the top of the synthetic 3-package module. Its
// directory name puts it under the determinism invariant
// (pathHasSegment sees the "sim" segment), and it is the only package
// of the triple the golden test loads for analysis — flow and clock
// enter the universe as dependencies, so every finding here proves
// interprocedural propagation across an analysis boundary.
package sim

import "pbsim/internal/analysis/rules/testdata/facts/flow"

// Caller reaches time.Now two hops and one package boundary away:
// sim.Caller -> flow.Helper -> clock.Clock -> time.Now.
func Caller() int64 {
	return flow.Helper()
}

// CallBoom reaches a panic the same way.
func CallBoom() {
	flow.MayBoom()
}

// Hot is a hot path whose allocation lives two packages down.
//
//pbcheck:hotpath
func Hot() []int {
	return flow.Allocates()
}

// Clean calls only fact-free code and must stay silent.
//
//pbcheck:hotpath
func Clean(a int) int {
	return flow.Pure(a)
}

// PureCaller claims purity but reaches the wall clock two hops and
// one package boundary away: the finding must name every hop.
//
//pbcheck:pure
func PureCaller() int64 {
	return flow.Helper()
}

// PureMut claims purity but reaches a package-state write the same
// way.
//
//pbcheck:pure
func PureMut() {
	flow.Touch()
}
