// Package clock is the bottom of the synthetic 3-package module used
// by the fact-propagation tests: it holds the actual sinks.
package clock

import "time"

// Clock reads the wall clock: the nondeterminism sink, two call hops
// and one package boundary away from the deterministic caller in
// testdata/facts/sim.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Boom panics: the mayPanic sink for the same propagation chain.
func Boom() {
	panic("clock: boom")
}

// Alloc allocates: the allocates sink.
func Alloc(n int) []int {
	return make([]int, n)
}

// Pure is fact-free and must stay that way through the fixpoint.
func Pure(a, b int) int {
	return a + b
}

// State is the package-level variable Mutate writes: the write-effect
// sink of the propagation chain.
var State int

// Mutate writes package state.
func Mutate() {
	State = 7
}
