// Package flow is the middle of the synthetic 3-package module: it
// launders the clock package's sinks through one call boundary
// without containing any sink itself.
package flow

import "pbsim/internal/analysis/rules/testdata/facts/clock"

// Helper reaches the wall clock through clock.Clock.
func Helper() int64 {
	return clock.Clock()
}

// MayBoom reaches a panic through clock.Boom.
func MayBoom() {
	clock.Boom()
}

// Allocates reaches an allocation through clock.Alloc.
func Allocates() []int {
	return clock.Alloc(8)
}

// Pure stays fact-free.
func Pure(a int) int {
	return clock.Pure(a, a)
}

// Touch launders clock's package-state write through one boundary.
func Touch() {
	clock.Mutate()
}
