// Package stats lives under a "stats" path segment, so functions on
// the floateq allowlist (ApproxEqual) may compare floats exactly;
// anything else in the package is still flagged.
package stats

import "math"

// ApproxEqual is the approved tolerance helper: its exact compares
// are the one sanctioned place for ==.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// IsZero is not on the allowlist: flagged even inside stats.
func IsZero(x float64) bool { return x == 0 }
