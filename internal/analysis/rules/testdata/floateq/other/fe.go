// Package fe seeds float equality comparisons outside the approved
// stats helpers: every == and != on float operands is flagged, as is
// a switch on a float tag. Ordering comparisons and integer equality
// stay legal.
package fe

// ExactEq compares float64 with ==: flagged.
func ExactEq(a, b float64) bool { return a == b }

// NotEq compares float32 with !=: flagged.
func NotEq(a, b float32) bool { return a != b }

// Classify switches on a float tag: flagged.
func Classify(x float64) int {
	switch x {
	case 0:
		return 0
	}
	return 1
}

// IntEq is integer equality: not flagged.
func IntEq(a, b int) bool { return a == b }

// Less is an ordering comparison: not flagged.
func Less(a, b float64) bool { return a < b }

// Celsius is a named float type; equality on it is still flagged.
type Celsius float64

// SameTemp compares a named float type: flagged.
func SameTemp(a, b Celsius) bool { return a == b }
