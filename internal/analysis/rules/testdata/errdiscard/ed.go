// Package ed seeds every discarded-error shape the errdiscard rule
// recognizes (bare call, blank assignment, blank tuple element,
// deferred call, go call) next to the exempted callees (fmt,
// strings.Builder) and properly handled errors.
package ed

import (
	"fmt"
	"os"
	"strings"
)

// Bare drops the error of an expression-statement call: flagged.
func Bare(path string) {
	os.Remove(path)
}

// Blank discards via the blank identifier: flagged.
func Blank(path string) {
	_ = os.Remove(path)
}

// Tuple discards the error element of a multi-value call: flagged.
func Tuple(path string) string {
	f, _ := os.Open(path)
	return f.Name()
}

// Deferred discards a deferred Close error: flagged.
func Deferred(f *os.File) {
	defer f.Close()
}

// Spawned discards the error inside a go statement: flagged.
func Spawned(f *os.File) {
	go f.Sync()
}

// Handled returns the error: not flagged.
func Handled(path string) error {
	return os.Remove(path)
}

// Exempt exercises the documented exemptions: fmt printing and
// strings.Builder writes cannot meaningfully fail.
func Exempt(sb *strings.Builder) {
	fmt.Println("ok")
	sb.WriteString("ok")
	fmt.Fprintf(sb, "%d", 1)
}
