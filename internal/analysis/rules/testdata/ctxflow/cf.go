// Package cf seeds context-flow violations: parameters that take a
// context and drop it, and fresh contexts minted inside functions
// that already received one.
package cf

import "context"

// Unused accepts a context and never consults it: flagged.
func Unused(ctx context.Context, x int) int {
	return x + 1
}

// Discarded throws the caller's context away at the signature: flagged.
func Discarded(_ context.Context) {}

// Propagates hands its context on: not flagged.
func Propagates(ctx context.Context) error {
	return work(ctx)
}

// Checks consults ctx.Err: not flagged.
func Checks(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// Fresh uses its context but then severs the chain with a new root
// context: the context.Background call is flagged.
func Fresh(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return work(context.Background())
}

// Spawn closes over its context in a literal: not flagged.
func Spawn(ctx context.Context) func() error {
	return func() error { return work(ctx) }
}

func work(ctx context.Context) error { return ctx.Err() }
