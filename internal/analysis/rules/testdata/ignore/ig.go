// Package ig exercises the //pbcheck:ignore machinery: valid
// suppressions on the same line and the line above, plus the
// malformed forms (missing reason, missing rule, unknown rule) that
// are themselves diagnostics, and a comment too far away to apply.
package ig

import "os"

// SameLine is suppressed by a trailing comment with a reason.
func SameLine(path string) {
	os.Remove(path) //pbcheck:ignore errdiscard cleanup is best-effort in this fixture
}

// LineAbove is suppressed by a standalone comment on the previous line.
func LineAbove(path string) {
	//pbcheck:ignore errdiscard standalone comment covers the next line
	os.Remove(path)
}

// MissingReason omits the mandatory justification: the marker is a
// diagnostic and the finding stays active.
func MissingReason(path string) {
	os.Remove(path) //pbcheck:ignore errdiscard
}

// MissingRule names no rule at all.
func MissingRule(path string) {
	os.Remove(path) //pbcheck:ignore
}

// UnknownRule names a rule that does not exist.
func UnknownRule(path string) {
	os.Remove(path) //pbcheck:ignore nosuchrule the rule name is wrong
}

// TooFar has a blank line between the comment and the call, so the
// suppression does not reach it.
func TooFar(path string) {
	//pbcheck:ignore errdiscard two lines above the call is out of range

	os.Remove(path)
}
