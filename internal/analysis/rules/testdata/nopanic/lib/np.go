// Package np seeds panic calls in a library package plus the patterns
// nopanic must leave alone (error returns, shadowed identifiers).
package np

import "fmt"

// MustPositive panics on bad input: flagged.
func MustPositive(x int) int {
	if x < 0 {
		panic("negative input")
	}
	return x
}

// Checked returns an error instead: not flagged.
func Checked(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %d", x)
	}
	return x, nil
}

// Index panics with a formatted message: flagged.
func Index(i, n int) int {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
	return i
}

// Shadowed calls a local function named panic: not flagged.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
