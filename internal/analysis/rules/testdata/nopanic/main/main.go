// Command main proves nopanic skips package main: a CLI is entitled
// to panic-on-impossible after flag parsing.
package main

func main() {
	if len([]string{}) > 0 {
		panic("unreachable")
	}
}
