package rules

import (
	"pbsim/internal/analysis"
)

// Purity is the static form of the ground-truth contract: a function
// whose doc comment carries //pbcheck:pure must be provably
// side-effect-free and deterministic — the property that lets
// internal/truth promise "same corner, same value, any evaluation
// order, any worker count". The assessment harness leans on that
// promise for every cross-process comparison; a mutation hiding in a
// surface evaluator would corrupt exactly the experiments the harness
// exists to referee, and dynamically only when two evaluation orders
// actually collide.
//
// Three facts break the proof, each reported with the engine's
// name-qualified why-chain:
//
//   - FactWritesState: the function (or anything it transitively
//     calls) mutates state outside its frame — a package-level
//     variable, memory behind a pointer receiver/parameter, aliased
//     heap, or a channel operation. Writes into memory the function
//     provably allocated itself are allowed (facts.go's owned-locals
//     analysis).
//   - FactNondet: it reads ambient state (wall clock, environment,
//     the global rand source), so two calls may disagree.
//   - FactUnknownCallee: it calls code the engine cannot see through,
//     so the claim cannot be proved. A purity claim that cannot be
//     proved is not a claim — same bias as hotalloc.
var Purity = &analysis.Analyzer{
	Name: "purity",
	Doc:  "functions marked //pbcheck:pure must be provably side-effect-free and deterministic, transitively through every call (static twin of the ground-truth evaluation contract)",
	Run:  runPurity,
}

func runPurity(pass *analysis.Pass) {
	for _, fi := range pass.Facts.Funcs(pass.Path()) {
		if !fi.Pure {
			continue
		}
		facts := fi.Facts()
		if facts.Has(analysis.FactWritesState) {
			pass.Reportf(fi.Decl.Name.Pos(),
				"pure-marked function %s mutates state outside its frame: %s; drop the write or the //pbcheck:pure marker",
				fi.DisplayName(), fi.Why(analysis.FactWritesState))
		}
		if facts.Has(analysis.FactNondet) {
			pass.Reportf(fi.Decl.Name.Pos(),
				"pure-marked function %s reads ambient state: %s; a pure function must compute from its arguments alone",
				fi.DisplayName(), fi.Why(analysis.FactNondet))
		}
		if facts.Has(analysis.FactUnknownCallee) {
			pass.Reportf(fi.Decl.Name.Pos(),
				"pure-marked function %s cannot be proved pure: %s; keep pure functions on static module calls so the proof stays checkable",
				fi.DisplayName(), fi.Why(analysis.FactUnknownCallee))
		}
	}
	for _, pos := range pass.Facts.Orphans(pass.Path(), analysis.PureMarker) {
		pass.Reportf(pos, "//pbcheck:pure is not attached to a function declaration; put it in the function's doc comment")
	}
}
