package rules

import (
	"go/ast"
	"go/token"

	"pbsim/internal/analysis"
)

// floatEqAllowed names the approved tolerance helpers: functions in a
// stats package whose entire job is comparing floats, and which
// therefore may use the raw operators (e.g. to compare infinities
// exactly after the NaN/tolerance cases are handled).
var floatEqAllowed = map[string]bool{
	"ApproxEqual": true,
}

// statsSegment matches the packages allowed to host tolerance
// helpers.
var statsSegment = map[string]bool{"stats": true}

// FloatEq forbids == and != on floating-point operands outside the
// approved tolerance helpers in stats.
//
// Exact float equality is how bit-reproducibility regressions hide:
// two mathematically equal expressions compare unequal after a
// reassociation, or — worse — a comparison that happens to hold on
// one machine silently gates logic that diverges on another. Every
// float comparison must state its tolerance explicitly via
// stats.ApproxEqual (tolerance 0 is exact equality, stated rather
// than implied).
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on float operands outside approved tolerance helpers in stats (use stats.ApproxEqual)",
	Run:  runFloatEq,
}

func runFloatEq(pass *analysis.Pass) {
	info := pass.TypesInfo()
	inStats := pathHasSegment(pass.Path(), statsSegment)
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && inStats && floatEqAllowed[fd.Name.Name] {
				continue // approved helper: raw comparisons are its job
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if isFloat(info.TypeOf(n.X)) || isFloat(info.TypeOf(n.Y)) {
						pass.Reportf(n.OpPos, "%s on float operands: exact float equality is not reproducible across reassociation; use stats.ApproxEqual (tolerance 0 for intentional exact compare)", n.Op)
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && isFloat(info.TypeOf(n.Tag)) {
						pass.Reportf(n.Tag.Pos(), "switch on a float value performs exact float equality per case; compare with stats.ApproxEqual instead")
					}
				}
				return true
			})
		}
	}
}
