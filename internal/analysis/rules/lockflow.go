package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/flow"
)

// LockFlow is the path-sensitive companion to LockSafe. LockSafe's
// linear scan answers "is there an unlock somewhere after this lock";
// LockFlow runs a forward dataflow over the CFG and answers the
// questions that need actual paths:
//
//   - a lock released on some branches but not on the one that falls
//     off the end (the hole LockSafe's first-unlock window misses);
//   - a second Lock() on a path where the mutex is *definitely* still
//     held (self-deadlock along that branch);
//   - an Unlock() on a path where the mutex is *definitely* not held
//     (runtime fatal error).
//
// The lattice tracks, per lock expression, the SET of possible hold
// depths {0, 1, 2+}; joins union the sets. Reports fire only on
// definite states — a depth set that excludes 0 for double-lock, the
// set {0} alone for unlock-before-lock — never on "maybe", so merged
// branches with correlated conditions cannot produce false positives.
// Deferred unlocks (directly or inside deferred closures) cover their
// lock expression on every exit path, exactly as in LockSafe.
var LockFlow = &analysis.Analyzer{
	Name: "lockflow",
	Doc:  "path-sensitive lock pairing: no exit path may leave a lock held, no path may re-lock a definitely-held mutex or unlock a definitely-free one",
	Run:  runLockFlow,
}

const (
	depthFree uint8 = 1 << 0 // depth 0 possible
	depthOne  uint8 = 1 << 1 // depth 1 possible
	depthMany uint8 = 1 << 2 // depth >= 2 possible
)

// lockAcquire moves every possible depth up one level.
func lockAcquire(d uint8) uint8 {
	var out uint8
	if d&depthFree != 0 {
		out |= depthOne
	}
	if d&(depthOne|depthMany) != 0 {
		out |= depthMany
	}
	return out
}

// lockRelease moves every possible depth down one level. "2 or more"
// minus one is "1 or more", so depthMany smears into both upper bits.
func lockRelease(d uint8) uint8 {
	var out uint8
	if d&(depthFree|depthOne) != 0 {
		out |= depthFree
	}
	if d&depthMany != 0 {
		out |= depthOne | depthMany
	}
	return out
}

// A lockVal is one lock expression's abstract state.
type lockVal struct {
	depths uint8
	// pos is the earliest Lock call that can still be holding the
	// lock; exit-path reports anchor here so their fingerprints name
	// the acquisition, not the leak site.
	pos    token.Pos
	recv   string // receiver expression text ("m.mu")
	method string // "Lock" or "RLock"
}

func definitelyHeld(d uint8) bool { return d != 0 && d&depthFree == 0 }
func definitelyFree(d uint8) bool { return d == depthFree }

// lockState is the dataflow state: reachability plus per-key depth
// sets. Keys are receiver text, with a mode suffix separating the
// read-side of an RWMutex from its write side.
type lockState struct {
	reached bool
	locks   map[string]lockVal
}

func (s *lockState) Join(other flow.State) flow.State {
	o := other.(*lockState)
	if !s.reached {
		return o
	}
	if !o.reached {
		return s
	}
	out := &lockState{reached: true, locks: make(map[string]lockVal, len(s.locks)+len(o.locks))}
	for k, v := range s.locks {
		out.locks[k] = v
	}
	for k, v := range o.locks {
		cur, ok := out.locks[k]
		if !ok {
			// Absent in s: that path never touched the lock, depth 0.
			v.depths |= depthFree
			out.locks[k] = v
			continue
		}
		cur.depths |= v.depths
		if v.pos.IsValid() && (!cur.pos.IsValid() || v.pos < cur.pos) {
			cur.pos = v.pos
		}
		out.locks[k] = cur
	}
	for k := range s.locks {
		if _, ok := o.locks[k]; !ok {
			cur := out.locks[k]
			cur.depths |= depthFree
			out.locks[k] = cur
		}
	}
	return out
}

func (s *lockState) Equal(other flow.State) bool {
	o := other.(*lockState)
	if s.reached != o.reached || len(s.locks) != len(o.locks) {
		return false
	}
	for k, v := range s.locks {
		ov, ok := o.locks[k]
		if !ok || ov.depths != v.depths || ov.pos != v.pos {
			return false
		}
	}
	return true
}

// A lockOp is one Lock/Unlock/RLock/RUnlock call inside a block, in
// evaluation order.
type lockOp struct {
	pos     token.Pos
	key     string
	recv    string
	method  string // Lock, Unlock, RLock, RUnlock
	acquire bool
}

// lockProblem solves over precomputed per-block ops.
type lockProblem struct {
	ops map[*flow.Block][]lockOp
}

func (p *lockProblem) Boundary() flow.State { return &lockState{reached: true} }
func (p *lockProblem) Bottom() flow.State   { return &lockState{} }
func (p *lockProblem) Backward() bool       { return false }

func (p *lockProblem) Transfer(b *flow.Block, in flow.State) flow.State {
	return applyLockOps(in.(*lockState), p.ops[b], nil)
}

// applyLockOps runs one block's ops over a copy of st. When report is
// non-nil this is the post-fixpoint diagnostics pass: definite
// double-locks and unlocks-of-free fire here, on the converged
// in-states.
func applyLockOps(st *lockState, ops []lockOp, report func(op lockOp, held bool)) *lockState {
	if !st.reached || len(ops) == 0 {
		return st
	}
	out := &lockState{reached: true, locks: make(map[string]lockVal, len(st.locks))}
	for k, v := range st.locks {
		out.locks[k] = v
	}
	for _, op := range ops {
		v, ok := out.locks[op.key]
		if !ok {
			v = lockVal{depths: depthFree, recv: op.recv, method: lockNameFor(op.method)}
		}
		if op.acquire {
			if report != nil && op.method == "Lock" && definitelyHeld(v.depths) {
				report(op, true)
			}
			v.depths = lockAcquire(v.depths)
			if !v.pos.IsValid() {
				v.pos = op.pos
			}
		} else {
			if report != nil && definitelyFree(v.depths) {
				report(op, false)
			}
			v.depths = lockRelease(v.depths)
			if v.depths == depthFree {
				v.pos = token.NoPos
			}
		}
		out.locks[op.key] = v
	}
	return out
}

// lockNameFor returns the acquire method for either side of a key.
func lockNameFor(method string) string {
	if method == "RLock" || method == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

func runLockFlow(pass *analysis.Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockFlowScope(pass, n.Body)
				}
				return true // descend for nested literals
			case *ast.FuncLit:
				if !isDeferredClosure(file, n) {
					checkLockFlowScope(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
}

// isDeferredClosure reports whether lit is the immediate operand of a
// defer statement: its body runs on the enclosing scope's exit and is
// summarized as deferred unlock coverage there, not analyzed as an
// independent scope.
func isDeferredClosure(file *ast.File, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if inner, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && inner == lit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// syncMutexMethod resolves a call to a sync lock-family method,
// returning receiver text and method name.
func syncMutexMethod(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// lockKeyFor separates the read side of an RWMutex from its write
// side: RLock/RUnlock pair with each other, Lock/Unlock likewise.
func lockKeyFor(recv, method string) string {
	if method == "RLock" || method == "RUnlock" {
		return recv + "\x00R"
	}
	return recv
}

// checkLockFlowScope runs the dataflow over one function (or
// independent literal) body and reports the three definite defects.
func checkLockFlowScope(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	g := flow.Build(body)

	// Per-block op extraction. Nested function literals have their own
	// control flow (analyzed separately); deferred statements run at
	// exit and are summarized below; a RangeStmt node is the head
	// marker whose body lives in successor blocks.
	ops := make(map[*flow.Block][]lockOp, len(g.Blocks))
	anyOps := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if _, isRange := node.(*ast.RangeStmt); isRange {
				continue
			}
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if recv, method, ok := syncMutexMethod(info, n); ok {
						ops[b] = append(ops[b], lockOp{
							pos:     n.Pos(),
							key:     lockKeyFor(recv, method),
							recv:    recv,
							method:  method,
							acquire: method == "Lock" || method == "RLock",
						})
						anyOps = true
					}
				}
				return true
			})
		}
	}
	if !anyOps {
		return
	}

	// Deferred unlock coverage: a deferred mu.Unlock() (directly or
	// inside a deferred closure) releases on every exit path, so keys
	// it covers are exempt from the held-at-exit check.
	deferred := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		collect := func(call *ast.CallExpr) {
			if recv, method, ok := syncMutexMethod(info, call); ok {
				if method == "Unlock" || method == "RUnlock" {
					deferred[lockKeyFor(recv, method)] = true
				}
			}
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					collect(call)
				}
				return true
			})
		} else {
			collect(d.Call)
		}
		return false
	})

	p := &lockProblem{ops: ops}
	res := flow.Solve(g, p)

	// In-path reports on converged states: double-lock of a definitely
	// held mutex, unlock of a definitely free one.
	for _, b := range g.Blocks {
		in := res.In[b].(*lockState)
		applyLockOps(in, ops[b], func(op lockOp, held bool) {
			if held {
				pass.Reportf(op.pos,
					"%s.Lock() on a path where %s is already held; this self-deadlocks — unlock first or restructure the branch",
					op.recv, op.recv)
			} else {
				pass.Reportf(op.pos,
					"%s.%s() on a path where %s is not held; this is a runtime fatal error — acquire the lock on every path that reaches this unlock",
					op.recv, op.method, op.recv)
			}
		})
	}

	// Held-at-exit: every non-panic path into Exit must have released
	// everything not covered by a deferred unlock. Reports anchor at
	// the acquisition site and deduplicate across exit predecessors.
	seen := make(map[string]bool)
	for _, pred := range g.Exit.Preds {
		if pred.Panics {
			continue
		}
		out := res.Out[pred].(*lockState)
		if !out.reached {
			continue
		}
		keys := make([]string, 0, len(out.locks))
		for k := range out.locks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := out.locks[k]
			if !definitelyHeld(v.depths) || deferred[k] || !v.pos.IsValid() {
				continue
			}
			dedupe := k + "\x00" + v.recv
			if seen[dedupe] {
				continue
			}
			seen[dedupe] = true
			pass.Reportf(v.pos,
				"%s.%s() is released on some paths but still held on at least one path out of the function; unlock on every path or defer the unlock",
				v.recv, v.method)
		}
	}
}
