package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/flow"
	"pbsim/internal/analysis/pointsto"
)

// RaceCheck is the static data-race analyzer for the concurrent
// substrate. It combines three earlier layers:
//
//   - the points-to/escape engine says WHICH memory a spawned
//     goroutine can reach (closure captures, go'd call arguments,
//     anything stored where those can see it);
//   - the spawn fact says WHICH functions run on a goroutine,
//     including transitively (go f → f calls g → g is spawned);
//   - the lockflow dataflow says WHERE a mutex is definitely held.
//
// A finding is a write to goroutine-shared memory at a point where no
// lock is even possibly held — the definitely-unlocked-only policy.
// If any sync.Mutex/RWMutex may be held at the write, the analyzer
// assumes it is the intended guard and stays silent; a wrong guard is
// a job for a dynamic race detector, not a zero-false-positive gate.
//
// Sharing is judged by where the write happens:
//
//   - In ordinary code, writes are reported only inside a spawn
//     window: after a go statement, before the next synchronization
//     edge the analyzer trusts (sync.WaitGroup.Wait or a channel
//     receive), and only on paths where the window is DEFINITELY
//     open. There the spawned goroutine is provably live, so an
//     unlocked write to memory it captured or aliases races with it.
//   - In spawned code (a go'd function literal, or a function the
//     spawn fact reaches), writes to package-level state are always
//     candidates, and writes to captured/shared memory are candidates
//     only when the spawn sits in a loop — then the goroutines share
//     the memory with each other and no spawner-side sync can help.
//     A single straight-line spawn writing its captures is the
//     ubiquitous "go func() { err = f() }(); ...; wg.Wait()" shape,
//     where the spawner's window analysis already owns the pairing —
//     reporting the goroutine side would flag every structured use.
//
// Channel-transferred ownership never reports: the points-to engine's
// goroutine-escape traversal does not descend through channel
// payloads, so a value sent on a channel belongs to the receiver.
// Writes via sync/atomic are calls, not assignments, and are
// naturally exempt.
var RaceCheck = &analysis.Analyzer{
	Name: "racecheck",
	Doc:  "no unsynchronized writes to goroutine-shared state: writes to memory a spawned goroutine can reach must hold a lock or happen outside the spawn window",
	Run:  runRaceCheck,
}

// raceEvent is one ordered occurrence inside a basic block: a lock
// operation, a window edge, or a write.
type raceEvent struct {
	pos token.Pos

	// Exactly one of the following is meaningful.
	lock   *lockOp         // Lock/Unlock/RLock/RUnlock call
	spawn  *pointsto.Spawn // go statement: opens the window
	closes bool            // wg.Wait or channel receive: closes it
	write  ast.Expr        // lvalue (or mutated operand) of a write
	// indirect seeds the lvalue walk (true for delete/copy-style
	// mutations that always go through a reference).
	indirect bool
}

// raceScope is one analyzed body with its goroutine context.
type raceScope struct {
	pass *analysis.Pass
	pts  *pointsto.Result

	// ctxAll marks a body that runs entirely on a spawned goroutine (a
	// go'd literal or a spawn-fact function); spawn/spawnWhy identify
	// the responsible go statement for the message.
	ctxAll   bool
	spawn    *pointsto.Spawn
	spawnWhy string
	// lit marks the body of a function literal that is the direct
	// operand of the go statement in spawn: its free variables are
	// shared storage, and spawn's loop extent is in the same function,
	// so declaration positions are directly comparable.
	lit bool

	seen map[token.Pos]bool
}

func runRaceCheck(pass *analysis.Pass) {
	pts := pass.Facts.PointsTo()
	if pts == nil {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		goLits := collectGoLits(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				sc := &raceScope{pass: pass, pts: pts, seen: make(map[token.Pos]bool)}
				if fi := pass.Facts.Lookup(info.Defs[n.Name]); fi != nil && fi.Facts().Has(analysis.FactSpawned) {
					sc.ctxAll = true
					sc.spawn = fi.SpawnedBy()
					sc.spawnWhy = fi.Why(analysis.FactSpawned)
				}
				sc.check(n.Body)
			case *ast.FuncLit:
				sc := &raceScope{pass: pass, pts: pts, seen: make(map[token.Pos]bool)}
				if sp, ok := goLits[n]; ok {
					sc.ctxAll = true
					sc.lit = true
					sc.spawn = sp
					sc.spawnWhy = "go'd in " + sp.Fn
				} else if isDeferredClosure(file, n) {
					// Runs at the enclosing function's exit, on the same
					// goroutine; the window state there is unknowable.
					return true
				}
				sc.check(n.Body)
			}
			return true
		})
	}
}

// collectGoLits maps every function literal that is the direct operand
// of a go statement to the spawn describing that statement.
func collectGoLits(file *ast.File) map[*ast.FuncLit]*pointsto.Spawn {
	out := make(map[*ast.FuncLit]*pointsto.Spawn)
	ast.Inspect(file, func(n ast.Node) bool {
		decl, ok := n.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			return true
		}
		fn := decl.Name.Name
		if decl.Recv != nil {
			if len(decl.Recv.List) > 0 {
				t := decl.Recv.List[0].Type
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				if ix, ok := t.(*ast.IndexExpr); ok {
					t = ix.X
				}
				if id, ok := t.(*ast.Ident); ok {
					fn = id.Name + "." + fn
				}
			}
		}
		fn = file.Name.Name + "." + fn
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				ls, le, inLoop := pointsto.SpawnLoop(decl.Body, g.Go)
				out[lit] = &pointsto.Spawn{
					Pos:       g.Go,
					Fn:        fn,
					InLoop:    inLoop,
					LoopStart: ls,
					LoopEnd:   le,
				}
			}
			return true
		})
		return true
	})
	return out
}

// check runs the two dataflows over one body and reports unguarded
// shared writes.
func (sc *raceScope) check(body *ast.BlockStmt) {
	info := sc.pass.TypesInfo()
	g := flow.Build(body)

	events := make(map[*flow.Block][]raceEvent, len(g.Blocks))
	lockOps := make(map[*flow.Block][]lockOp, len(g.Blocks))
	anyWrite := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			sc.collectEvents(info, body, node, &events, b)
		}
		for _, ev := range events[b] {
			if ev.lock != nil {
				lockOps[b] = append(lockOps[b], *ev.lock)
			}
			if ev.write != nil {
				anyWrite = true
			}
		}
	}
	if !anyWrite {
		return
	}

	lockRes := flow.Solve(g, &lockProblem{ops: lockOps})
	winRes := flow.Solve(g, &winProblem{events: events})

	for _, b := range g.Blocks {
		lst := lockRes.In[b].(*lockState)
		win := winRes.In[b].(*winState)
		if !win.reached {
			continue
		}
		for _, ev := range events[b] {
			switch {
			case ev.lock != nil:
				lst = applyLockOps(lst, []lockOp{*ev.lock}, nil)
			case ev.spawn != nil:
				win = &winState{reached: true, open: true, spawn: ev.spawn}
			case ev.closes:
				win = &winState{reached: true}
			case ev.write != nil:
				if anyLockMaybeHeld(lst) {
					continue
				}
				sc.reportWrite(ev, win.open)
			}
		}
	}
}

// anyLockMaybeHeld reports whether some lock key may be held (depth
// possibly >= 1) in the state: the definitely-unlocked-only gate.
func anyLockMaybeHeld(st *lockState) bool {
	for _, v := range st.locks {
		if v.depths&(depthOne|depthMany) != 0 {
			return true
		}
	}
	return false
}

// collectEvents appends node's lock ops, window edges, and writes to
// the block's event list, in source order. Function literals are
// separate scopes and deferred statements run at exit; neither
// contributes events here. A RangeStmt node is the loop's head marker:
// only its ranged operand belongs to this block.
func (sc *raceScope) collectEvents(info *types.Info, body *ast.BlockStmt, node ast.Node, events *map[*flow.Block][]raceEvent, b *flow.Block) {
	emit := func(ev raceEvent) { (*events)[b] = append((*events)[b], ev) }
	if r, ok := node.(*ast.RangeStmt); ok {
		if t := info.TypeOf(r.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				// Each iteration begins with a receive: a trusted
				// synchronization edge.
				emit(raceEvent{pos: r.For, closes: true})
			}
		}
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.GoStmt:
				// The call's operands are evaluated on this goroutine
				// first; then the window opens.
				for _, arg := range n.Call.Args {
					walk(arg)
				}
				emit(raceEvent{pos: n.Go, spawn: &pointsto.Spawn{Pos: n.Go}})
				return false
			case *ast.AssignStmt:
				// Right-hand sides evaluate first (a receive there
				// closes the window before the store lands).
				for _, rhs := range n.Rhs {
					walk(rhs)
				}
				for _, lhs := range n.Lhs {
					emit(raceEvent{pos: lhs.Pos(), write: lhs})
				}
				return false
			case *ast.IncDecStmt:
				walk(n.X)
				emit(raceEvent{pos: n.X.Pos(), write: n.X})
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					emit(raceEvent{pos: n.Pos(), closes: true})
				}
			case *ast.CallExpr:
				if recv, method, ok := syncMutexMethod(info, n); ok {
					emit(raceEvent{pos: n.Pos(), lock: &lockOp{
						pos:     n.Pos(),
						key:     lockKeyFor(recv, method),
						recv:    recv,
						method:  method,
						acquire: method == "Lock" || method == "RLock",
					}})
					return true
				}
				if isWaitGroupWait(info, n) {
					emit(raceEvent{pos: n.Pos(), closes: true})
					return true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
					if bi, ok := info.Uses[id].(*types.Builtin); ok {
						switch bi.Name() {
						case "delete", "copy":
							for _, a := range n.Args {
								walk(a)
							}
							emit(raceEvent{pos: n.Pos(), write: n.Args[0], indirect: true})
							return false
						}
					}
				}
			}
			return true
		})
	}
	walk(node)
}

// isWaitGroupWait matches a call to (*sync.WaitGroup).Wait.
func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait"
}

// reportWrite classifies one unlocked write against the points-to
// result and the scope's goroutine context, and reports if shared.
// winOpen says a spawn window of THIS body is definitely open at the
// write (the spawned goroutine is provably live).
func (sc *raceScope) reportWrite(ev raceEvent, winOpen bool) {
	wt, ok := analysis.ClassifyWrite(sc.pass.TypesInfo(), ev.write, ev.indirect)
	if !ok || wt.Base == nil || sc.seen[ev.pos] {
		return
	}
	name := wt.Base.Name()
	spawnedIn := func(s *pointsto.Spawn) string {
		if s != nil && s.Fn != "" {
			return " spawned in " + s.Fn
		}
		return ""
	}
	report := func(format string, args ...any) {
		sc.seen[ev.pos] = true
		sc.pass.Reportf(ev.pos, format, args...)
	}

	if wt.Global {
		if !sc.ctxAll {
			return
		}
		where := sc.spawnWhy
		if where == "" {
			where = "a goroutine" + spawnedIn(sc.spawn)
		}
		report("unsynchronized write to package-level %s from a spawned goroutine (%s); guard it with a mutex or confine it to one goroutine",
			name, where)
		return
	}

	// Spawner side: inside an open window of this body, the just-
	// spawned goroutine is live and every write to memory it can see
	// races it.
	if winOpen {
		if !wt.Indirect {
			if cap := sc.pts.CapturedBy(wt.Base); cap != nil {
				report("unsynchronized write to %s while the goroutine%s that captures it is running; guard both sides with one mutex or move the write before the go statement",
					name, spawnedIn(cap))
				return
			}
			if shr := sc.pts.AddrSharedWithGoroutine(wt.Base); shr != nil {
				report("unsynchronized write to %s, whose address is shared with the goroutine%s; guard both sides with one mutex",
					name, spawnedIn(shr))
				return
			}
		} else if shr := sc.pts.SharedWithGoroutine(wt.Base); shr != nil {
			report("unsynchronized write through %s to memory shared with the goroutine%s; guard both sides with one mutex or hand the memory off on a channel",
				name, spawnedIn(shr))
			return
		}
	}

	if !sc.ctxAll {
		return
	}

	// Goroutine side. Only loop spawns share memory goroutine-to-
	// goroutine (a single spawn's captures are the spawner's window
	// problem), and only storage living OUTSIDE the spawn loop is one
	// location across iterations — anything declared or allocated
	// inside the loop is fresh per goroutine.
	if sc.lit {
		// The body IS the go'd literal: a write to any variable
		// declared outside the spawn's loop (hence outside the
		// literal) hits storage every iteration's goroutine shares.
		if sc.spawn.SharedAcrossIterations(wt.Base.Pos()) {
			if wt.Indirect {
				report("unsynchronized write through %s to memory shared between the goroutines spawned in a loop in %s; guard the write or shard the memory per goroutine",
					name, sc.spawn.Fn)
			} else {
				report("unsynchronized write to %s, shared between the goroutines spawned in a loop in %s; each iteration's goroutine races the others — guard the write or give each goroutine its own variable",
					name, sc.spawn.Fn)
			}
			return
		}
	}
	if !wt.Indirect {
		// A spawned function's own locals and parameters are fresh per
		// call; without the literal's capture evidence a direct write
		// is not provably shared.
		return
	}
	for _, o := range sc.pts.PointsTo(wt.Base) {
		if !o.Escapes().Has(pointsto.EscGoroutine) {
			continue
		}
		// The evidence object must be allocated in the SPAWNING
		// function itself, outside its loop: loop extents are only
		// comparable to positions in the same function, and an object
		// allocated in a callee is fresh per call.
		sp := o.SpawnSite()
		if sp != nil && o.Fn == sp.Fn && o.PkgPath == sp.PkgPath && sp.SharedAcrossIterations(o.Pos) {
			report("unsynchronized write through %s to memory shared between the goroutines spawned in a loop in %s; guard the write or shard the memory per goroutine",
				name, sp.Fn)
			return
		}
	}
}

// winState is the spawn-window dataflow state: open means a go
// statement definitely executed on EVERY path here with no trusted
// synchronization edge since.
type winState struct {
	reached bool
	open    bool
	spawn   *pointsto.Spawn
}

func (s *winState) Join(other flow.State) flow.State {
	o := other.(*winState)
	if !s.reached {
		return o
	}
	if !o.reached {
		return s
	}
	out := &winState{reached: true, open: s.open && o.open}
	if out.open {
		out.spawn = s.spawn
		if o.spawn != nil && (out.spawn == nil || o.spawn.Pos < out.spawn.Pos) {
			out.spawn = o.spawn
		}
	}
	return out
}

func (s *winState) Equal(other flow.State) bool {
	o := other.(*winState)
	return s.reached == o.reached && s.open == o.open && s.spawn == o.spawn
}

// winProblem drives the window state through each block's events.
type winProblem struct {
	events map[*flow.Block][]raceEvent
}

func (p *winProblem) Boundary() flow.State { return &winState{reached: true} }
func (p *winProblem) Bottom() flow.State   { return &winState{} }
func (p *winProblem) Backward() bool       { return false }

func (p *winProblem) Transfer(b *flow.Block, in flow.State) flow.State {
	st := in.(*winState)
	if !st.reached {
		return st
	}
	for _, ev := range p.events[b] {
		switch {
		case ev.spawn != nil:
			st = &winState{reached: true, open: true, spawn: ev.spawn}
		case ev.closes:
			st = &winState{reached: true}
		}
	}
	return st
}
