package rules

import (
	"pbsim/internal/analysis"
)

// HotAlloc is the static twin of perf_test.go's AllocsPerRun pins: a
// function whose doc comment carries //pbcheck:hotpath must be
// provably free of steady-state heap allocations, transitively
// through every call it can reach. The benchmark pins catch a
// regression after it lands and only on the paths the benchmark
// drives; this rule catches it at lint time on every path, including
// the ones a workload happens not to exercise.
//
// "Allocates" is the fact engine's steady-state model (facts.go):
// make/new, escaping composite literals, growing appends (the
// self-append reuse idiom x = append(x, ...) is amortized-zero and
// allowed), closure capture, go statements, interface boxing
// conversions, string concatenation/conversion, and fmt calls. A hot
// function calling code the engine cannot see (function values,
// foreign interfaces, non-whitelisted foreign packages) is also a
// finding: a 0-alloc claim that cannot be proved is not a claim.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //pbcheck:hotpath must be transitively free of steady-state heap allocations (static twin of the AllocsPerRun benchmark pins)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) {
	for _, fi := range pass.Facts.Funcs(pass.Path()) {
		if !fi.Hot {
			continue
		}
		facts := fi.Facts()
		if facts.Has(analysis.FactAllocates) {
			pass.Reportf(fi.Decl.Name.Pos(),
				"hot-path function %s allocates on the steady-state path: %s; hoist the allocation out of the loop or restructure (see perf_test.go's 0-alloc pins)",
				fi.DisplayName(), fi.Why(analysis.FactAllocates))
		}
		if facts.Has(analysis.FactUnknownCallee) {
			pass.Reportf(fi.Decl.Name.Pos(),
				"hot-path function %s cannot be proved allocation-free: %s; keep hot paths on static module calls so the 0-alloc invariant stays checkable",
				fi.DisplayName(), fi.Why(analysis.FactUnknownCallee))
		}
	}
	for _, pos := range pass.Facts.Orphans(pass.Path(), analysis.HotpathMarker) {
		pass.Reportf(pos, "//pbcheck:hotpath is not attached to a function declaration; put it in the function's doc comment")
	}
}
