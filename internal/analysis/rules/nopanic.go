package rules

import (
	"go/ast"
	"go/types"

	"pbsim/internal/analysis"
)

// NoPanic forbids panic calls in library (non-main) packages.
//
// The fault-tolerant runner treats a panicking row as a retryable
// failure: it recovers the panic, converts it to an error, and applies
// the retry/backoff policy. A library that panics on data errors
// bypasses that machinery — it either kills the process or gets
// recovered far from the fault with the row's state lost. Failures
// must flow through error returns (FallibleResponse) so the runner's
// recovery path stays the sole recovery path. Invariant guards for
// programmer errors (impossible states) may be waived with
// //pbcheck:ignore nopanic <reason>.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic(...) in library packages; failures must use error returns so runner recovery/retry semantics stay in control",
	Run:  runNoPanic,
}

func runNoPanic(pass *analysis.Pass) {
	if pass.Pkg.Name == "main" {
		return // binaries own their process; panicking there is their call
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the builtin
			}
			pass.Reportf(call.Pos(), "panic in library code: return an error (FallibleResponse path) so the runner's panic-recovery and retry semantics stay the sole recovery path")
			return true
		})
	}
}
