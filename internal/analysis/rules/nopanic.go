package rules

import (
	"go/ast"
	"go/types"

	"pbsim/internal/analysis"
)

// NoPanic forbids panic calls in library (non-main) packages.
//
// The fault-tolerant runner treats a panicking row as a retryable
// failure: it recovers the panic, converts it to an error, and applies
// the retry/backoff policy. A library that panics on data errors
// bypasses that machinery — it either kills the process or gets
// recovered far from the fault with the row's state lost. Failures
// must flow through error returns (FallibleResponse) so the runner's
// recovery path stays the sole recovery path. Invariant guards for
// programmer errors (impossible states) may be waived with
// //pbcheck:ignore nopanic <reason>.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic(...) in library packages; failures must use error returns so runner recovery/retry semantics stay in control",
	Run:  runNoPanic,
}

func runNoPanic(pass *analysis.Pass) {
	if pass.Pkg.Name == "main" {
		return // binaries own their process; panicking there is their call
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					pass.Reportf(call.Pos(), "panic in library code: return an error (FallibleResponse path) so the runner's panic-recovery and retry semantics stay the sole recovery path")
					return true
				}
			}
			checkPanickyCallee(pass, call)
			return true
		})
	}
}

// checkPanickyCallee is the interprocedural half: calling a module
// function that transitively contains an unwaived panic (per the fact
// engine) imports that panic into this package. The call site is only
// reported when the callee's own package is not being analyzed — an
// analyzed callee already reports the panic at its definition — so a
// panic laundered through a dependency-only package still surfaces,
// once, at the boundary where analyzed code invokes it.
func checkPanickyCallee(pass *analysis.Pass, call *ast.CallExpr) {
	fi := pass.Facts.Lookup(calleeObject(pass.TypesInfo(), call))
	if fi == nil || !fi.Facts().Has(analysis.FactMayPanic) {
		return
	}
	if pass.Facts.IsAnalyzed(fi.Pkg.Path) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s may panic (%s → %s); route the failure through an error return so runner recovery stays in control",
		fi.DisplayName(), fi.DisplayName(), fi.Why(analysis.FactMayPanic))
}
