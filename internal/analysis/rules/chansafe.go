package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/flow"
)

// ChanSafe is the flow-sensitive channel-state analyzer. Per function
// body it tracks, for each channel expression, the set of states the
// channel may be in — {nil, non-nil} × {open, closed} — through the
// CFG, and reports the operations that are DEFINITE runtime failures
// or deadlocks on some path:
//
//   - close of a definitely-closed channel (panic: close of closed
//     channel), including across branches that rejoin;
//   - send on a definitely-closed channel (panic: send on closed
//     channel);
//   - close of a definitely-nil channel (panic: close of nil channel);
//   - send or receive on a definitely-nil channel outside a select
//     (permanent goroutine block — in a select, a nil channel arm is
//     the standard idiom for disabling a case, so it stays silent).
//
// Like the rest of the suite, "maybe" never fires: a channel closed on
// one branch and not the other is {open, closed} at the join, and a
// later close reports nothing. Deferred closes run at exit, after
// every other statement, and are excluded from in-path state.
// (A close of a receive-only channel is already a compile error, so
// it cannot reach this analyzer.)
var ChanSafe = &analysis.Analyzer{
	Name: "chansafe",
	Doc:  "no definite channel misuse: close/send on a closed channel, close of nil, or a blocking operation on a channel that is nil on every path",
	Run:  runChanSafe,
}

const (
	chNil    uint8 = 1 << 0 // nil possible
	chNonNil uint8 = 1 << 1 // non-nil possible
	chOpen   uint8 = 1 << 2 // open possible (only meaningful with chNonNil)
	chClosed uint8 = 1 << 3 // closed possible

	chAny = chNil | chNonNil | chOpen | chClosed
)

// chanState is the dataflow state: per channel key (expression text),
// the possible-state bits.
type chanState struct {
	reached bool
	chans   map[string]uint8
}

func (s *chanState) Join(other flow.State) flow.State {
	o := other.(*chanState)
	if !s.reached {
		return o
	}
	if !o.reached {
		return s
	}
	out := &chanState{reached: true, chans: make(map[string]uint8, len(s.chans)+len(o.chans))}
	for k, v := range s.chans {
		out.chans[k] = v
	}
	for k, v := range o.chans {
		if cur, ok := out.chans[k]; ok {
			out.chans[k] = cur | v
		} else {
			// Untracked on the other path: unknown there.
			out.chans[k] = v | chAny
		}
	}
	for k := range s.chans {
		if _, ok := o.chans[k]; !ok {
			out.chans[k] = out.chans[k] | chAny
		}
	}
	return out
}

func (s *chanState) Equal(other flow.State) bool {
	o := other.(*chanState)
	if s.reached != o.reached || len(s.chans) != len(o.chans) {
		return false
	}
	for k, v := range s.chans {
		if ov, ok := o.chans[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// A chanOp is one channel operation (or state assignment) in a block,
// in evaluation order.
type chanOp struct {
	pos token.Pos
	key string

	kind chanOpKind
	// set is the state bits an assignment installs (kindAssign only).
	set uint8
	// inSelect marks send/recv ops that are a select communication
	// clause, where nil channels are deliberate.
	inSelect bool
}

type chanOpKind uint8

const (
	kindAssign chanOpKind = iota
	kindClose
	kindSend
	kindRecv
)

// chanProblem drives chanState through each block's ops.
type chanProblem struct {
	ops map[*flow.Block][]chanOp
}

func (p *chanProblem) Boundary() flow.State { return &chanState{reached: true} }
func (p *chanProblem) Bottom() flow.State   { return &chanState{} }
func (p *chanProblem) Backward() bool       { return false }

func (p *chanProblem) Transfer(b *flow.Block, in flow.State) flow.State {
	return applyChanOps(in.(*chanState), p.ops[b], nil)
}

// applyChanOps runs one block's ops over a copy of st; with report
// non-nil this is the post-fixpoint diagnostics pass over converged
// in-states.
func applyChanOps(st *chanState, ops []chanOp, report func(op chanOp, bits uint8)) *chanState {
	if !st.reached || len(ops) == 0 {
		return st
	}
	out := &chanState{reached: true, chans: make(map[string]uint8, len(st.chans))}
	for k, v := range st.chans {
		out.chans[k] = v
	}
	for _, op := range ops {
		bits, tracked := out.chans[op.key]
		if !tracked {
			bits = chAny
		}
		switch op.kind {
		case kindAssign:
			out.chans[op.key] = op.set
		case kindClose:
			if report != nil {
				report(op, bits)
			}
			// After a close, the channel is definitely non-nil closed
			// (a nil close never returns).
			out.chans[op.key] = chNonNil | chClosed
		case kindSend, kindRecv:
			if report != nil {
				report(op, bits)
			}
			// A completed op proves non-nil.
			out.chans[op.key] = (bits &^ chNil) | chNonNil
		}
	}
	return out
}

func definitelyNil(bits uint8) bool { return bits&(chNil|chNonNil) == chNil }
func definitelyClosed(bits uint8) bool {
	return bits&chNonNil != 0 && bits&(chOpen|chClosed) == chClosed
}

func runChanSafe(pass *analysis.Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkChanScope(pass, n.Body)
				}
			case *ast.FuncLit:
				if !isDeferredClosure(file, n) {
					checkChanScope(pass, n.Body)
				}
			}
			return true
		})
	}
}

// chanKey returns the tracking key for a channel operand: the
// expression text of an identifier or stable selector path. Operands
// with calls or index expressions inside are untracked ("" key) — a
// fresh evaluation could denote a different channel each time.
func chanKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if !stableChanPath(info, e) {
		return ""
	}
	if t := info.TypeOf(e); t != nil {
		if _, ok := t.Underlying().(*types.Chan); !ok {
			return ""
		}
	}
	return types.ExprString(e)
}

// stableChanPath reports whether e is an identifier or a chain of
// plain field selectors over one — the forms whose text re-evaluates
// to the same channel on every mention within a body.
func stableChanPath(info *types.Info, e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return stableChanPath(info, t.X)
	}
	return false
}

// checkChanScope runs the dataflow over one body.
func checkChanScope(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	g := flow.Build(body)

	// selectComms is the set of send/recv expressions that are a select
	// communication clause: nil there is the disable-a-case idiom.
	selectComms := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if comm, ok := c.(*ast.CommClause); ok && comm.Comm != nil {
				markSelectComm(comm.Comm, selectComms)
			}
		}
		return true
	})

	ops := make(map[*flow.Block][]chanOp, len(g.Blocks))
	anyOps := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			collectChanOps(info, node, selectComms, &ops, b, &anyOps)
		}
	}
	if !anyOps {
		return
	}

	res := flow.Solve(g, &chanProblem{ops: ops})
	for _, b := range g.Blocks {
		in := res.In[b].(*chanState)
		applyChanOps(in, ops[b], func(op chanOp, bits uint8) {
			switch op.kind {
			case kindClose:
				if definitelyClosed(bits) {
					pass.Reportf(op.pos,
						"close of %s, which is already closed on every path reaching this statement; closing a closed channel panics at runtime",
						op.key)
				} else if definitelyNil(bits) {
					pass.Reportf(op.pos,
						"close of %s, which is nil on every path reaching this statement; closing a nil channel panics at runtime",
						op.key)
				}
			case kindSend:
				if definitelyClosed(bits) {
					pass.Reportf(op.pos,
						"send on %s after it is closed on every path reaching this statement; sending on a closed channel panics at runtime",
						op.key)
				} else if definitelyNil(bits) && !op.inSelect {
					pass.Reportf(op.pos,
						"send on %s, which is nil on every path reaching this statement; a nil-channel send blocks forever — make the channel first",
						op.key)
				}
			case kindRecv:
				if definitelyNil(bits) && !op.inSelect {
					pass.Reportf(op.pos,
						"receive from %s, which is nil on every path reaching this statement; a nil-channel receive blocks forever — make the channel first",
						op.key)
				}
			}
		})
	}
}

// markSelectComm records the operation nodes of one select clause.
func markSelectComm(comm ast.Stmt, set map[ast.Node]bool) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		set[c] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			set[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				set[u] = true
			}
		}
	}
}

// collectChanOps appends node's channel ops and channel-typed
// assignments to the block's list, in source order. Nested literals
// are separate scopes; deferred statements run at exit; a RangeStmt
// head contributes only its ranged operand (a receive, for channels).
func collectChanOps(info *types.Info, node ast.Node, selectComms map[ast.Node]bool, ops *map[*flow.Block][]chanOp, b *flow.Block, anyOps *bool) {
	emit := func(op chanOp) {
		(*ops)[b] = append((*ops)[b], op)
		if op.kind != kindAssign {
			*anyOps = true
		}
	}
	if r, ok := node.(*ast.RangeStmt); ok {
		if key := chanKey(info, r.X); key != "" {
			emit(chanOp{pos: r.X.Pos(), key: key, kind: kindRecv})
		}
		return
	}
	// assignBits classifies one RHS: a make is definitely open, nil is
	// definitely nil, anything else is unknown.
	assignBits := func(rhs ast.Expr) uint8 {
		if rhs == nil {
			return chNil // var ch chan T — zero value
		}
		switch t := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok {
				if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "make" {
					return chNonNil | chOpen
				}
			}
		case *ast.Ident:
			if _, isNil := info.Uses[t].(*types.Nil); isNil {
				return chNil
			}
		}
		return chAny
	}
	isChanType := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if !isChanType(lhs) {
						continue
					}
					if key := chanKey(info, lhs); key != "" {
						emit(chanOp{pos: lhs.Pos(), key: key, kind: kindAssign, set: assignBits(n.Rhs[i])})
					}
				}
			} else {
				// Tuple assignment: channel lvalues become unknown.
				for _, lhs := range n.Lhs {
					if isChanType(lhs) {
						if key := chanKey(info, lhs); key != "" {
							emit(chanOp{pos: lhs.Pos(), key: key, kind: kindAssign, set: chAny})
						}
					}
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !isChanType(name) {
						continue
					}
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					emit(chanOp{pos: name.Pos(), key: name.Name, kind: kindAssign, set: assignBits(rhs)})
				}
			}
		case *ast.SendStmt:
			if key := chanKey(info, n.Chan); key != "" {
				emit(chanOp{pos: n.Arrow, key: key, kind: kindSend, inSelect: selectComms[n]})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key := chanKey(info, n.X); key != "" {
					emit(chanOp{pos: n.Pos(), key: key, kind: kindRecv, inSelect: selectComms[n]})
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "close" {
					if key := chanKey(info, n.Args[0]); key != "" {
						emit(chanOp{pos: n.Pos(), key: key, kind: kindClose})
					}
					return false
				}
			}
		}
		return true
	})
}
