// Package rules holds the project-specific analyzers that encode this
// repository's reproducibility invariants: determinism of the core
// simulation packages, panic-free library code, tolerance-based float
// comparison, error discipline, and context propagation. Each rule
// documents the invariant it protects; see the package-level README
// section "Static analysis" for the rationale.
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"pbsim/internal/analysis"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		NoPanic,
		FloatEq,
		ErrDiscard,
		CtxFlow,
		HotAlloc,
		LockSafe,
		LeakyGo,
		Purity,
		LockFlow,
		ErrFlow,
		RaceCheck,
		ChanSafe,
	}
}

// The fact engine honors waivers for these rules while seeding facts
// (a waived sink generates no fact), so the names it hardcodes must
// stay in lockstep with the analyzers'.
func init() {
	for name, a := range map[string]*analysis.Analyzer{
		analysis.RuleDeterminism: Determinism,
		analysis.RuleNoPanic:     NoPanic,
		analysis.RuleHotAlloc:    HotAlloc,
		analysis.RulePurity:      Purity,
	} {
		if a.Name != name {
			//pbcheck:ignore nopanic init-time invariant on our own constants; unreachable unless a rule is renamed without updating the engine
			panic("rules: analyzer " + a.Name + " out of sync with engine rule name " + name)
		}
	}
}

// Select returns the analyzers whose names appear in the
// comma-separated list, preserving suite order; an empty list selects
// all. Unknown names are returned separately for the CLI to report.
func Select(list string) (selected []*analysis.Analyzer, unknown []string) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	for _, a := range All() {
		if want[a.Name] {
			selected = append(selected, a)
			delete(want, a.Name)
		}
	}
	for name := range want {
		unknown = append(unknown, name)
	}
	return selected, unknown
}

// pathHasSegment reports whether any slash-separated segment of an
// import path equals one of the names.
func pathHasSegment(path string, names map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		if names[seg] {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call expression invokes: a
// package-level function, a method, or a builtin. Returns nil for
// indirect calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// objPkgPath returns the import path of the package obj belongs to,
// or "" for builtins and universe objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorResults returns, for a call expression, the indices of its
// results whose type is error (nil when the callee returns none).
func errorResults(info *types.Info, call *ast.CallExpr) []int {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		var idx []int
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	if isErrorType(t) {
		return []int{0}
	}
	return nil
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
