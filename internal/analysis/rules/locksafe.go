package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"pbsim/internal/analysis"
)

// LockSafe guards the concurrency primitives PR 4 leaned into
// (sync.Mutex around the runner's failure list, the obs metrics
// scopes, the trace program cache): a lock that can exit its function
// still held, a WaitGroup raced against its own Wait, or a sync type
// copied by value deadlocks or corrupts exactly the campaign-scale
// runs the fault-tolerant runner exists for — and those bugs are
// timing-dependent, so tests rarely catch them.
//
// Checks, per function body (nested function literals are analyzed as
// their own scopes):
//
//   - every mu.Lock()/mu.RLock() needs a matching mu.Unlock()/
//     mu.RUnlock() on the same receiver in the same scope; a deferred
//     unlock (directly or inside a deferred closure) covers all paths;
//   - with only non-deferred unlocks, a return between the lock and
//     the first subsequent unlock leaves the mutex held on that path;
//   - defer mu.Lock() is flagged (the classic typo for defer
//     mu.Unlock());
//   - wg.Add positioned after wg.Wait on the same WaitGroup in the
//     same scope races the Wait;
//   - parameters and receivers that pass a sync primitive by value
//     copy its internal state, so the copy guards nothing.
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "Lock/Unlock and RLock/RUnlock must pair on all paths (defer recognized); WaitGroup Add must precede Wait; sync types must not be copied by value",
	Run:  runLockSafe,
}

// syncValueTypes are the sync primitives that become useless (or
// undefined behavior) when copied after first use.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Map": true, "Pool": true, "Cond": true,
}

func runLockSafe(pass *analysis.Pass) {
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSyncCopies(pass, fd)
			if fd.Body != nil {
				checkLockScope(pass, fd.Body)
			}
		}
	}
}

// checkSyncCopies flags parameters and receivers whose declared type
// is a bare sync primitive (copied at every call).
func checkSyncCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		t := pass.TypesInfo().TypeOf(field.Type)
		if t == nil {
			return
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
			return
		}
		if syncValueTypes[named.Obj().Name()] {
			pass.Reportf(field.Type.Pos(),
				"sync.%s %s by value copies its internal state; pass a pointer so every user shares one primitive",
				named.Obj().Name(), what)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			check(field, "parameter")
		}
	}
}

// lockEvent is one lock-relevant call in a scope, in source order.
type lockEvent struct {
	pos      token.Pos
	recv     string // receiver expression text, e.g. "m.mu"
	method   string // Lock, Unlock, RLock, RUnlock, Add, Wait, Done
	deferred bool
	ret      bool // a return statement, not a call
}

// checkLockScope analyzes one function body. Nested function literals
// are excluded from the linear scan (their returns and unlocks belong
// to their own control flow) and recursed into as independent scopes —
// except deferred closures, whose unlocks run on every exit of THIS
// scope and therefore count as deferred unlocks here.
func checkLockScope(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()
	var events []lockEvent

	// syncMethod resolves a call to a method of a sync type (directly
	// or through embedding/interface), returning receiver text and
	// method name.
	syncMethod := func(call *ast.CallExpr) (string, string, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", "", false
		}
		return types.ExprString(sel.X), fn.Name(), true
	}

	var nested []*ast.BlockStmt
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				nested = append(nested, n.Body)
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					// A deferred closure's body executes on scope
					// exit: its sync calls are deferred events here,
					// and it is NOT analyzed as an independent scope.
					walk(lit.Body, true)
					return false
				}
				if recv, method, ok := syncMethod(n.Call); ok {
					events = append(events, lockEvent{pos: n.Pos(), recv: recv, method: method, deferred: true})
				}
				return false
			case *ast.ReturnStmt:
				events = append(events, lockEvent{pos: n.Pos(), ret: true})
			case *ast.CallExpr:
				if recv, method, ok := syncMethod(n); ok {
					events = append(events, lockEvent{pos: n.Pos(), recv: recv, method: method, deferred: deferred})
				}
			}
			return true
		})
	}
	walk(body, false)

	checkLockEvents(pass, events)
	for _, b := range nested {
		checkLockScope(pass, b)
	}
}

// unlockFor maps a lock method to its required unlock.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkLockEvents applies the pairing rules to one scope's events
// (already in source order — ast.Inspect is a pre-order walk).
func checkLockEvents(pass *analysis.Pass, events []lockEvent) {
	for i, e := range events {
		if e.ret {
			continue
		}
		switch e.method {
		case "Lock", "RLock":
			if e.deferred {
				pass.Reportf(e.pos, "defer %s.%s() acquires the lock on function exit; this is almost always a typo for defer %s.%s()",
					e.recv, e.method, e.recv, unlockFor(e.method))
				continue
			}
			checkLockPairing(pass, events, i)
		case "Add":
			for _, prev := range events[:i] {
				if !prev.ret && prev.method == "Wait" && prev.recv == e.recv && !prev.deferred {
					pass.Reportf(e.pos, "%s.Add after %s.Wait races the Wait: a waiter may have already been released; call Add before starting the Wait",
						e.recv, e.recv)
					break
				}
			}
		}
	}
}

// checkLockPairing verifies one non-deferred lock at events[i] has a
// matching unlock and that no return sneaks between them.
func checkLockPairing(pass *analysis.Pass, events []lockEvent, i int) {
	lock := events[i]
	want := unlockFor(lock.method)
	hasDeferredUnlock := false
	firstUnlockAfter := -1
	for j, e := range events {
		if e.ret || e.recv != lock.recv || e.method != want {
			continue
		}
		if e.deferred {
			hasDeferredUnlock = true
		} else if j > i && firstUnlockAfter < 0 {
			firstUnlockAfter = j
		}
	}
	if hasDeferredUnlock {
		return
	}
	if firstUnlockAfter < 0 {
		pass.Reportf(lock.pos, "%s.%s() has no matching %s.%s() in this function; every exit path leaves the lock held",
			lock.recv, lock.method, lock.recv, want)
		return
	}
	for _, e := range events[i+1 : firstUnlockAfter] {
		if e.ret {
			pass.Reportf(e.pos, "return between %s.%s() and %s.%s() exits with the lock held; unlock before returning or use defer",
				lock.recv, lock.method, lock.recv, want)
		}
	}
}
