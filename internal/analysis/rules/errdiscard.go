package rules

import (
	"go/ast"
	"go/types"

	"pbsim/internal/analysis"
)

// ErrDiscard forbids discarding error returns — by blank assignment
// (`_ = f()`, `v, _ := f()`), by bare call statements, or inside
// defer/go statements.
//
// The runner's whole fault-tolerance contract is that errors
// propagate: a row failure must reach the retry loop, a checkpoint
// write failure must fail the run rather than silently lose rows. A
// discarded error is a hole in that contract.
//
// Exemptions (documented, deliberately small):
//   - the fmt print family: terminal output is best-effort, and
//     buffered sinks surface real failures at Flush/Close, which this
//     rule does check;
//   - methods on strings.Builder and bytes.Buffer, which are
//     documented never to fail.
var ErrDiscard = &analysis.Analyzer{
	Name: "errdiscard",
	Doc:  "forbid discarded error returns via _ =, bare calls, or defer/go; errors must reach the runner's retry/propagation paths",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkBareCall(pass, info, call, "bare call")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, info, n.Call, "defer")
			case *ast.GoStmt:
				checkBareCall(pass, info, n.Call, "go statement")
			case *ast.AssignStmt:
				checkBlankAssign(pass, info, n)
			}
			return true
		})
	}
}

// checkBareCall flags a call whose error result(s) vanish because the
// call appears as a statement (or inside defer/go).
func checkBareCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, how string) {
	if len(errorResults(info, call)) == 0 || exemptCallee(info, call) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s is discarded (%s); handle it or suppress with a reason", types.ExprString(call.Fun), how)
}

// checkBlankAssign flags `_` positions that swallow an error result.
func checkBlankAssign(pass *analysis.Pass, info *types.Info, as *ast.AssignStmt) {
	isBlank := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "_"
	}
	// Tuple form: v, _ := f()
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || exemptCallee(info, call) {
			return
		}
		for _, i := range errorResults(info, call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result of %s is discarded by blank assignment; handle it or suppress with a reason", types.ExprString(call.Fun))
			}
		}
		return
	}
	// Parallel form: _ = f(), a, _ = f(), g()
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || exemptCallee(info, call) {
			continue
		}
		if len(errorResults(info, call)) > 0 {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s is discarded by blank assignment; handle it or suppress with a reason", types.ExprString(call.Fun))
		}
	}
}

// exemptCallee reports whether the call's error is one the rule
// deliberately does not police.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil {
		return false
	}
	if objPkgPath(obj) == "fmt" {
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true // documented to never return an error
	}
	return false
}
