// Package analysis is a from-scratch, stdlib-only static-analysis
// framework for enforcing this repository's reproducibility
// invariants. It is deliberately built on nothing but go/parser,
// go/ast, go/types, and go/token — no golang.org/x/tools — so the
// checks that gate the PB methodology's bit-reproducibility can run
// anywhere the Go toolchain runs, with zero external dependencies.
//
// The framework mirrors the shape (not the code) of the x/tools
// analysis API: an Analyzer bundles a named rule with a Run function;
// a Pass gives that rule one type-checked package at a time; findings
// are Diagnostics carrying exact file:line:col positions. On top of
// that it adds a project policy the generic framework lacks:
// suppressions are only honored when they carry a human-written
// reason (see ignore.go), so every waived finding documents *why* the
// invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one rule: a short name (used in diagnostics
// and in //pbcheck:ignore comments), a one-line statement of the
// invariant it protects, and the function that checks one package.
type Analyzer struct {
	// Name is the rule identifier, e.g. "determinism". It must be a
	// single lower-case word; it is what suppression comments refer
	// to.
	Name string

	// Doc is a one-line description of the invariant the rule
	// enforces, shown by `pbcheck -list`.
	Doc string

	// Run inspects the package held by the Pass and reports findings
	// through Pass.Reportf. It must not retain the Pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one loaded, type-checked package.
// It provides the syntax trees, the type information, the
// interprocedural fact index (phase 1's output, see facts.go), and
// the sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Facts is the module-wide interprocedural index: per-function
	// nondeterminism/panic/allocation facts propagated to fixpoint
	// over the call graph of every loaded package. Never nil.
	Facts *FactIndex

	sink *[]Diagnostic
}

// Fset returns the file set all of the package's positions resolve
// against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed source files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's resolved type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Path returns the package's import path (module-qualified for
// packages inside the module under analysis).
func (p *Pass) Path() string { return p.Pkg.Path }

// Reportf records a diagnostic at pos under the pass's rule name.
// Package and enclosing function are resolved here so every finding
// carries the position-independent identity the baseline ratchet
// fingerprints on.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Rule:     p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Pkg.Path,
		Func:     p.Pkg.EnclosingFunc(pos),
	})
}

// A Diagnostic is one finding: a rule name, an exact source position,
// and a message. Suppressed findings are retained (they appear in the
// JSON report and under -suppressed) but do not affect the exit code;
// the same holds for baselined findings (known debt recorded in the
// committed baseline — see baseline.go).
type Diagnostic struct {
	Rule     string
	Position token.Position
	Message  string

	// Package and Func identify where the finding lives independently
	// of line numbers: the import path and the enclosing function
	// declaration ("Type.Method" for methods, "" at file scope). They
	// form the ratchet fingerprint together with Rule and Message.
	Package string
	Func    string

	// Suppressed marks a finding waived by a //pbcheck:ignore
	// comment; Reason carries the comment's mandatory justification.
	Suppressed bool
	Reason     string

	// Baselined marks a finding whose fingerprint appears in the
	// baseline file: pre-existing debt that does not fail the ratchet.
	Baselined bool
}

// sortKey orders diagnostics by file, then line, then column, then
// rule, so output is stable across runs and map-free.
func (d Diagnostic) sortKey() string {
	return fmt.Sprintf("%s\x00%08d\x00%08d\x00%s\x00%s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
}
