package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression syntax:
//
//	//pbcheck:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: a suppression is a claim that the invariant
// does not apply here, and the claim must be argued in the source. A
// suppression covers findings of the named rule(s) on its own line
// (trailing-comment form) and on the line directly below it
// (standalone-comment form). A malformed suppression — missing rule,
// missing reason, or naming a rule that does not exist — is itself a
// finding under the reserved rule name "ignore", which cannot be
// suppressed.

// IgnoreRule is the reserved rule name for malformed suppression
// comments.
const IgnoreRule = "ignore"

const ignoreMarker = "pbcheck:ignore"

// suppression is one parsed //pbcheck:ignore comment.
type suppression struct {
	file   string
	line   int // line the comment sits on; covers line and line+1
	rules  map[string]bool
	reason string
	// position is the comment's own location, where the stale-waiver
	// check reports.
	position token.Position
}

// scanSuppressions parses every //pbcheck:ignore comment in the
// package. known maps valid rule names; unknown names produce
// diagnostics so stale suppressions cannot rot silently.
func scanSuppressions(pkg *Package, known map[string]bool) ([]suppression, []Diagnostic) {
	var sups []suppression
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Rule:     IgnoreRule,
			Position: pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*") // block form tolerated
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//pbcheck:ignore needs a rule and a reason: //pbcheck:ignore <rule> <reason>")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//pbcheck:ignore "+fields[0]+" needs a reason explaining why the invariant does not apply here")
					continue
				}
				rules := make(map[string]bool)
				bad := false
				for _, r := range strings.Split(fields[0], ",") {
					if r == "" || !known[r] {
						report(c.Pos(), "//pbcheck:ignore names unknown rule "+strings.TrimSpace(r)+" (run pbcheck -list for valid rules)")
						bad = true
						continue
					}
					rules[r] = true
				}
				if bad && len(rules) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sups = append(sups, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					rules:    rules,
					reason:   strings.TrimSpace(strings.Join(fields[1:], " ")),
					position: pos,
				})
			}
		}
	}
	return sups, diags
}

// applySuppressions marks diagnostics covered by a suppression. The
// reserved "ignore" rule is never suppressible. The returned slice
// flags, per suppression, whether it suppressed at least one
// diagnostic — input to the stale-waiver check.
func applySuppressions(diags []Diagnostic, sups []suppression) []bool {
	fired := make([]bool, len(sups))
	for i := range diags {
		d := &diags[i]
		if d.Rule == IgnoreRule {
			continue
		}
		// A waiver trailing the finding's own line beats one sitting on
		// the line above: the closer claim wins, and the line-above
		// waiver stays attributable to its own line's finding.
		match := -1
		for j, s := range sups {
			if s.file != d.Position.Filename || !s.rules[d.Rule] {
				continue
			}
			if d.Position.Line == s.line {
				match = j
				break
			}
			if d.Position.Line == s.line+1 && match < 0 {
				match = j
			}
		}
		if match >= 0 {
			d.Suppressed = true
			d.Reason = sups[match].reason
			fired[match] = true
		}
	}
	return fired
}

// staleWaivers flags every suppression that did nothing: it suppressed
// no diagnostic this run AND cut no fact during seeding, while every
// rule it names was selected (so the absence of findings is evidence,
// not a consequence of a -rules subset). A waiver that has gone stale
// is a claim nobody is checking anymore — left in place it would
// silently swallow the next real finding on its line.
func staleWaivers(facts *FactIndex, sups []suppression, fired []bool, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i, s := range sups {
		if fired[i] {
			continue
		}
		stale := true
		names := make([]string, 0, len(s.rules))
		for rule := range s.rules {
			if !known[rule] || facts.WaiverUsedAt(s.file, s.line, rule) {
				stale = false
				break
			}
			names = append(names, rule)
		}
		if !stale {
			continue
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Rule:     IgnoreRule,
			Position: s.position,
			Message: "stale //pbcheck:ignore: " + strings.Join(names, ",") +
				" reports nothing on this or the next line; delete the waiver so it cannot mask a future regression",
		})
	}
	return out
}
