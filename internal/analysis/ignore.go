package analysis

import (
	"go/token"
	"strings"
)

// Suppression syntax:
//
//	//pbcheck:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: a suppression is a claim that the invariant
// does not apply here, and the claim must be argued in the source. A
// suppression covers findings of the named rule(s) on its own line
// (trailing-comment form) and on the line directly below it
// (standalone-comment form). A malformed suppression — missing rule,
// missing reason, or naming a rule that does not exist — is itself a
// finding under the reserved rule name "ignore", which cannot be
// suppressed.

// IgnoreRule is the reserved rule name for malformed suppression
// comments.
const IgnoreRule = "ignore"

const ignoreMarker = "pbcheck:ignore"

// suppression is one parsed //pbcheck:ignore comment.
type suppression struct {
	file   string
	line   int // line the comment sits on; covers line and line+1
	rules  map[string]bool
	reason string
}

// scanSuppressions parses every //pbcheck:ignore comment in the
// package. known maps valid rule names; unknown names produce
// diagnostics so stale suppressions cannot rot silently.
func scanSuppressions(pkg *Package, known map[string]bool) ([]suppression, []Diagnostic) {
	var sups []suppression
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Rule:     IgnoreRule,
			Position: pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*") // block form tolerated
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//pbcheck:ignore needs a rule and a reason: //pbcheck:ignore <rule> <reason>")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//pbcheck:ignore "+fields[0]+" needs a reason explaining why the invariant does not apply here")
					continue
				}
				rules := make(map[string]bool)
				bad := false
				for _, r := range strings.Split(fields[0], ",") {
					if r == "" || !known[r] {
						report(c.Pos(), "//pbcheck:ignore names unknown rule "+strings.TrimSpace(r)+" (run pbcheck -list for valid rules)")
						bad = true
						continue
					}
					rules[r] = true
				}
				if bad && len(rules) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sups = append(sups, suppression{
					file:   pos.Filename,
					line:   pos.Line,
					rules:  rules,
					reason: strings.TrimSpace(strings.Join(fields[1:], " ")),
				})
			}
		}
	}
	return sups, diags
}

// applySuppressions marks diagnostics covered by a suppression. The
// reserved "ignore" rule is never suppressible.
func applySuppressions(diags []Diagnostic, sups []suppression) {
	for i := range diags {
		d := &diags[i]
		if d.Rule == IgnoreRule {
			continue
		}
		for _, s := range sups {
			if s.file != d.Position.Filename || !s.rules[d.Rule] {
				continue
			}
			if d.Position.Line == s.line || d.Position.Line == s.line+1 {
				d.Suppressed = true
				d.Reason = s.reason
				break
			}
		}
	}
}
