package analysis_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"pbsim/internal/analysis"
)

func mkDiag(rule, pkg, fn, msg string, line int) analysis.Diagnostic {
	return analysis.Diagnostic{
		Rule:     rule,
		Package:  pkg,
		Func:     fn,
		Message:  msg,
		Position: token.Position{Filename: "x/f.go", Line: line, Column: 1},
	}
}

// TestBaselineRoundTrip pins the ratchet's core contract: a written
// baseline re-loads to the same fingerprint set, fingerprints are
// position-independent (line drift does not churn), and ApplyBaseline
// marks exactly the recorded findings.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	recorded := []analysis.Diagnostic{
		mkDiag("nopanic", "pbsim/internal/x", "Frob", "panic in library code", 10),
		mkDiag("hotalloc", "pbsim/internal/y", "Hot", "allocates: make", 20),
	}
	if err := analysis.WriteBaseline(path, recorded); err != nil {
		t.Fatal(err)
	}
	set, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("loaded %d fingerprints, want 2", len(set))
	}

	// Same identities at different positions, plus one new finding.
	diags := []analysis.Diagnostic{
		mkDiag("nopanic", "pbsim/internal/x", "Frob", "panic in library code", 99),
		mkDiag("hotalloc", "pbsim/internal/y", "Hot", "allocates: make", 1),
		mkDiag("leakygo", "pbsim/internal/z", "Spawn", "goroutine leaks", 5),
	}
	analysis.ApplyBaseline(diags, set)
	if !diags[0].Baselined || !diags[1].Baselined {
		t.Errorf("recorded findings not baselined despite line drift: %+v", diags[:2])
	}
	if diags[2].Baselined {
		t.Error("new finding was baselined")
	}
	if got := analysis.Active(diags); got != 1 {
		t.Errorf("Active = %d, want 1 (only the new finding)", got)
	}
}

// TestBaselineEdgeCases: a missing file is the empty baseline, the
// reserved ignore rule and suppressed findings are never written or
// baselined, and a corrupt file is an error rather than a universal
// approval.
func TestBaselineEdgeCases(t *testing.T) {
	set, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline should be empty, got error %v", err)
	}
	if len(set) != 0 {
		t.Fatalf("missing baseline loaded %d fingerprints", len(set))
	}

	path := filepath.Join(t.TempDir(), "b.json")
	supp := mkDiag("errdiscard", "p", "F", "dropped", 1)
	supp.Suppressed = true
	ign := mkDiag(analysis.IgnoreRule, "p", "F", "needs a reason", 2)
	keep := mkDiag("nopanic", "p", "G", "panics", 3)
	if err := analysis.WriteBaseline(path, []analysis.Diagnostic{supp, ign, keep, keep}); err != nil {
		t.Fatal(err)
	}
	set, err = analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("baseline holds %d fingerprints, want 1 (suppressed + ignore excluded, duplicate folded)", len(set))
	}

	ignored := []analysis.Diagnostic{mkDiag(analysis.IgnoreRule, "p", "F", "needs a reason", 2)}
	analysis.ApplyBaseline(ignored, map[string]bool{analysis.Fingerprint(ignored[0]): true})
	if ignored[0].Baselined {
		t.Error("the reserved ignore rule must not be baselineable")
	}

	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(bad); err == nil {
		t.Error("corrupt baseline should be an error")
	}
	wrongVer := filepath.Join(t.TempDir(), "ver.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version":"other/v9","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(wrongVer); err == nil {
		t.Error("wrong-version baseline should be an error")
	}
}
