package analysis_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/rules"
)

func mkDiag(rule, pkg, fn, msg string, line int) analysis.Diagnostic {
	return analysis.Diagnostic{
		Rule:     rule,
		Package:  pkg,
		Func:     fn,
		Message:  msg,
		Position: token.Position{Filename: "x/f.go", Line: line, Column: 1},
	}
}

// TestBaselineRoundTrip pins the ratchet's core contract: a written
// baseline re-loads to the same fingerprint set, fingerprints are
// position-independent (line drift does not churn), and ApplyBaseline
// marks exactly the recorded findings.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	recorded := []analysis.Diagnostic{
		mkDiag("nopanic", "pbsim/internal/x", "Frob", "panic in library code", 10),
		mkDiag("hotalloc", "pbsim/internal/y", "Hot", "allocates: make", 20),
	}
	if err := analysis.WriteBaseline(path, recorded); err != nil {
		t.Fatal(err)
	}
	set, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("loaded %d fingerprints, want 2", len(set))
	}

	// Same identities at different positions, plus one new finding.
	diags := []analysis.Diagnostic{
		mkDiag("nopanic", "pbsim/internal/x", "Frob", "panic in library code", 99),
		mkDiag("hotalloc", "pbsim/internal/y", "Hot", "allocates: make", 1),
		mkDiag("leakygo", "pbsim/internal/z", "Spawn", "goroutine leaks", 5),
	}
	analysis.ApplyBaseline(diags, set)
	if !diags[0].Baselined || !diags[1].Baselined {
		t.Errorf("recorded findings not baselined despite line drift: %+v", diags[:2])
	}
	if diags[2].Baselined {
		t.Error("new finding was baselined")
	}
	if got := analysis.Active(diags); got != 1 {
		t.Errorf("Active = %d, want 1 (only the new finding)", got)
	}
}

// writeModule lays out a one-package throwaway module and returns the
// package directory.
func writeModule(t *testing.T, src string) (root, pkgDir string) {
	t.Helper()
	root = t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module driftmod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir = filepath.Join(root, "drift")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "drift.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root, pkgDir
}

// analyzeModule runs the full suite over the module and returns the
// diagnostics.
func analyzeModule(t *testing.T, root, pkgDir string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{pkgDir})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunUniverse(pkgs, loader.Universe(), rules.All())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestBaselineFingerprintStability is the end-to-end drift contract,
// exercised against real analyzer output instead of hand-built
// diagnostics: a baseline written from one layout of the source still
// covers the same findings after the file is reshuffled (leading
// comments, reordered declarations — every position changes), while a
// change to what the finding SAYS (here: renaming the callee, which
// every errflow message quotes) escapes the baseline loudly.
func TestBaselineFingerprintStability(t *testing.T) {
	const v1 = `package drift

import "errors"

func step(i int) error {
	if i < 0 {
		return errors.New("negative")
	}
	return nil
}

// Overwrite drops the first error: one errflow finding.
func Overwrite(a, b int) error {
	err := step(a)
	err = step(b)
	return err
}
`
	// Same identities, every position different: a comment banner,
	// reordered declarations, extra vertical space.
	const shuffled = `package drift

// A wall of leading commentary
// that shifts every declaration
// far away from its v1 line.

import "errors"

// Overwrite drops the first error: one errflow finding.
func Overwrite(a, b int) error {

	err := step(a)

	err = step(b)

	return err
}

func step(i int) error {
	if i < 0 {
		return errors.New("negative")
	}
	return nil
}
`
	root, pkgDir := writeModule(t, v1)
	before := analyzeModule(t, root, pkgDir)
	if analysis.Active(before) == 0 {
		t.Fatal("seed source produced no findings; the stability test needs one to track")
	}
	path := filepath.Join(root, "baseline.json")
	if err := analysis.WriteBaseline(path, before); err != nil {
		t.Fatal(err)
	}
	set, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(filepath.Join(pkgDir, "drift.go"), []byte(shuffled), 0o644); err != nil {
		t.Fatal(err)
	}
	after := analyzeModule(t, root, pkgDir)
	analysis.ApplyBaseline(after, set)
	if n := analysis.Active(after); n != 0 {
		t.Errorf("position shuffle escaped the baseline: %d active finding(s)", n)
		for _, d := range after {
			if !d.Suppressed && !d.Baselined {
				t.Logf("  %s: %s", d.Rule, d.Message)
			}
		}
	}

	// Message drift: the callee rename changes what the finding says,
	// so the old baseline must NOT cover it.
	renamed := strings.ReplaceAll(v1, "step", "stage")
	if err := os.WriteFile(filepath.Join(pkgDir, "drift.go"), []byte(renamed), 0o644); err != nil {
		t.Fatal(err)
	}
	drifted := analyzeModule(t, root, pkgDir)
	analysis.ApplyBaseline(drifted, set)
	if analysis.Active(drifted) == 0 {
		t.Error("message change was silently absorbed by the baseline; drift must be loud")
	}
}

// TestBaselineEdgeCases: a missing file is the empty baseline, the
// reserved ignore rule and suppressed findings are never written or
// baselined, and a corrupt file is an error rather than a universal
// approval.
func TestBaselineEdgeCases(t *testing.T) {
	set, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline should be empty, got error %v", err)
	}
	if len(set) != 0 {
		t.Fatalf("missing baseline loaded %d fingerprints", len(set))
	}

	path := filepath.Join(t.TempDir(), "b.json")
	supp := mkDiag("errdiscard", "p", "F", "dropped", 1)
	supp.Suppressed = true
	ign := mkDiag(analysis.IgnoreRule, "p", "F", "needs a reason", 2)
	keep := mkDiag("nopanic", "p", "G", "panics", 3)
	if err := analysis.WriteBaseline(path, []analysis.Diagnostic{supp, ign, keep, keep}); err != nil {
		t.Fatal(err)
	}
	set, err = analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("baseline holds %d fingerprints, want 1 (suppressed + ignore excluded, duplicate folded)", len(set))
	}

	ignored := []analysis.Diagnostic{mkDiag(analysis.IgnoreRule, "p", "F", "needs a reason", 2)}
	analysis.ApplyBaseline(ignored, map[string]bool{analysis.Fingerprint(ignored[0]): true})
	if ignored[0].Baselined {
		t.Error("the reserved ignore rule must not be baselineable")
	}

	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(bad); err == nil {
		t.Error("corrupt baseline should be an error")
	}
	wrongVer := filepath.Join(t.TempDir(), "ver.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version":"other/v9","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadBaseline(wrongVer); err == nil {
		t.Error("wrong-version baseline should be an error")
	}
}
