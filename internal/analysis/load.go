package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of the module, parsed and type-checked.
type Package struct {
	// Path is the import path: Module + "/" + the directory's
	// module-relative path (or just Module at the root).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Name is the package clause name (e.g. "stats", "main").
	Name string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects everything the type checker rejected. The
	// driver treats a non-empty list as a load failure: analyzing
	// code that does not compile yields unreliable findings.
	TypeErrors []error
}

// EnclosingFunc returns the name of the function declaration enclosing
// pos — "Name" for functions, "Type.Method" for methods — or "" at
// file scope. Baseline fingerprints use it so findings keep their
// identity as lines drift.
func (p *Package) EnclosingFunc(pos token.Pos) string {
	for _, file := range p.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				recv := types.ExprString(fd.Recv.List[0].Type)
				recv = strings.TrimPrefix(recv, "*")
				if i := strings.IndexByte(recv, '['); i >= 0 {
					recv = recv[:i] // drop type parameters
				}
				name = recv + "." + name
			}
			return name
		}
	}
	return ""
}

// A Loader parses and type-checks packages of a single module. It
// resolves intra-module imports by recursing into the module tree and
// standard-library imports through go/importer's source importer, so
// the whole pipeline stays inside the standard library.
type Loader struct {
	// Root is the absolute path of the module root (the directory
	// holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// IncludeTests parses _test.go files of the package under test
	// into the package (external _test packages are not loaded).
	IncludeTests bool

	fset   *token.FileSet
	stdlib types.ImporterFrom
	cache  map[string]*Package // keyed by absolute dir
	state  map[string]int      // import-cycle detection
}

const (
	loadInProgress = 1
	loadDone       = 2
)

// NewLoader builds a Loader rooted at the module containing dir,
// reading the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		stdlib: src,
		cache:  make(map[string]*Package),
		state:  make(map[string]int),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Load parses and type-checks every directory in dirs (absolute or
// root-relative paths), returning packages in deterministic order.
// Directories without non-test Go files are skipped silently so
// pattern expansion can be generous.
func (l *Loader) Load(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, dir)
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Universe returns every module package the loader has parsed and
// type-checked so far: the packages requested through Load plus every
// module dependency pulled in to resolve their imports (loadDir keeps
// full syntax trees for those too). This is the input the fact engine
// wants — facts must see a helper's body even when its package was
// not selected for reporting. Deterministic path order.
func (l *Loader) Universe() []*Package {
	var out []*Package
	for _, pkg := range l.cache {
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// importPath maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks one directory, returning nil (no
// error) when it contains no analyzable Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := l.cache[dir]; ok {
		return pkg, nil
	}
	if l.state[dir] == loadInProgress {
		return nil, fmt.Errorf("analysis: import cycle through %s", l.importPath(dir))
	}
	l.state[dir] = loadInProgress
	defer func() { l.state[dir] = loadDone }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		l.cache[dir] = nil
		return nil, nil
	}

	pkg := &Package{
		Path: l.importPath(dir),
		Dir:  dir,
		Fset: l.fset,
	}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		}
		// External test packages (package foo_test) share the
		// directory; keep only the primary package's files.
		if file.Name.Name != pkg.Name {
			continue
		}
		pkg.Files = append(pkg.Files, file)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		// Check reports the first error even when the Error callback
		// (which sees them all) is set; keep at least one.
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.cache[dir] = pkg
	return pkg, nil
}

// Import implements types.Importer. Intra-module paths recurse into
// the loader; everything else is delegated to the source importer,
// which resolves the standard library from GOROOT/src.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: dependency %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.stdlib.ImportFrom(path, srcDir, mode)
}
