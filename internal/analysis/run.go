package analysis

import (
	"fmt"
	"sort"
	"time"
)

// A RuleStat is one analyzer's cost/yield summary for a run: total
// wall time across all analyzed packages and how many diagnostics it
// produced (suppressed and baselined ones included — the cost of a
// rule is the cost of everything it finds, waived or not).
type RuleStat struct {
	Rule     string
	Time     time.Duration
	Findings int
}

// RunStats is the -stats payload: where a pbcheck run spent its time.
// FactBuild covers phase 1 (call graph + fixpoint over the universe);
// Rules lists every analyzer in suite order.
type RunStats struct {
	FactBuild time.Duration
	Rules     []RuleStat
}

// Run executes every analyzer over every package with a fact universe
// limited to the packages themselves. Callers holding a Loader should
// prefer RunUniverse(pkgs, loader.Universe(), analyzers) so the fact
// engine sees dependency bodies too.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunUniverse(pkgs, nil, analyzers)
}

// RunUniverse is the two-phase driver. Phase 1 builds the
// interprocedural fact index over the union of pkgs and universe
// (universe normally comes from Loader.Universe() and includes every
// module dependency the loader pulled in — its bodies feed fact
// propagation but it is not analyzed for reporting). Phase 2 runs
// every analyzer over every package in pkgs with fact access, applies
// the packages' //pbcheck:ignore suppressions, and returns all
// diagnostics (suppressed ones included, marked) in deterministic
// file/line/column order regardless of package-load order.
//
// Packages with type errors are rejected: findings over code that
// does not compile are unreliable, and the repo's tier-1 gate
// guarantees compilable input anyway.
func RunUniverse(pkgs, universe []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunUniverseTimed(pkgs, universe, analyzers)
	return diags, err
}

// RunUniverseTimed is RunUniverse plus per-phase timing: the returned
// RunStats carries the fact-build duration and each analyzer's wall
// time and diagnostic count, in suite order. The diagnostics are
// byte-identical to RunUniverse's — timing observes the run, it never
// alters it.
func RunUniverseTimed(pkgs, universe []*Package, analyzers []*Analyzer) ([]Diagnostic, *RunStats, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == IgnoreRule {
			return nil, nil, fmt.Errorf("analysis: rule name %q is reserved", IgnoreRule)
		}
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("analysis: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}

	// Phase 1: call graph + fact fixpoint over the whole universe.
	// Waiver rules are always in the fact engine's vocabulary even
	// when the corresponding analyzer was deselected, so a reasoned
	// waiver keeps cutting fact generation under -rules subsets.
	factKnown := map[string]bool{
		RuleDeterminism: true, RuleNoPanic: true, RuleHotAlloc: true, RulePurity: true,
	}
	for name := range known {
		factKnown[name] = true
	}
	seen := make(map[string]bool, len(pkgs)+len(universe))
	var all []*Package
	for _, pkg := range append(append([]*Package(nil), pkgs...), universe...) {
		if pkg == nil || seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		all = append(all, pkg)
	}
	factStart := time.Now()
	facts := BuildFacts(all, factKnown)
	stats := &RunStats{FactBuild: time.Since(factStart)}
	for _, pkg := range pkgs {
		facts.analyzed[pkg.Path] = true
	}

	// Phase 2: analyzers with fact access, timed per rule across all
	// packages.
	ruleTime := make(map[string]time.Duration, len(analyzers))
	ruleCount := make(map[string]int, len(analyzers))
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sups, supDiags := scanSuppressions(pkg, known)
		start := len(diags)
		diags = append(diags, supDiags...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, sink: &diags}
			before := len(diags)
			t0 := time.Now()
			a.Run(pass)
			ruleTime[a.Name] += time.Since(t0)
			ruleCount[a.Name] += len(diags) - before
		}
		applySuppressions(diags[start:], sups)
	}
	for _, a := range analyzers {
		stats.Rules = append(stats.Rules, RuleStat{
			Rule:     a.Name,
			Time:     ruleTime[a.Name],
			Findings: ruleCount[a.Name],
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].sortKey() < diags[j].sortKey() })
	return diags, stats, nil
}

// Active counts the diagnostics that are neither suppressed nor
// baselined — the number that should drive a non-zero exit code.
func Active(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed && !d.Baselined {
			n++
		}
	}
	return n
}
