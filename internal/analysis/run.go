package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// A RuleStat is one analyzer's cost/yield summary for a run: total
// wall time across all analyzed packages and how many diagnostics it
// produced (suppressed and baselined ones included — the cost of a
// rule is the cost of everything it finds, waived or not).
type RuleStat struct {
	Rule     string
	Time     time.Duration
	Findings int
}

// RunStats is the -stats payload: where a pbcheck run spent its time.
// FactBuild covers phase 1 (call graph + fixpoint over the universe),
// of which PointsTo is the Andersen solve; Rules lists every analyzer
// in suite order. RuleWall is the real elapsed time of phase 2 under
// Workers concurrent package workers, RuleSeq the sum of every
// per-package analyzer slice — what the same run would have cost
// sequentially. RuleSeq/RuleWall is the measured speedup.
type RunStats struct {
	FactBuild time.Duration
	PointsTo  time.Duration
	Rules     []RuleStat
	RuleWall  time.Duration
	RuleSeq   time.Duration
	Workers   int
}

// DefaultWorkers is the phase-2 parallelism the drivers use when the
// caller does not choose: one worker per CPU, capped so a large
// machine does not oversubscribe the allocator on tiny runs.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// Run executes every analyzer over every package with a fact universe
// limited to the packages themselves. Callers holding a Loader should
// prefer RunUniverse(pkgs, loader.Universe(), analyzers) so the fact
// engine sees dependency bodies too.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunUniverse(pkgs, nil, analyzers)
}

// RunUniverse is the two-phase driver. Phase 1 builds the
// interprocedural fact index over the union of pkgs and universe
// (universe normally comes from Loader.Universe() and includes every
// module dependency the loader pulled in — its bodies feed fact
// propagation but it is not analyzed for reporting). Phase 2 runs
// every analyzer over every package in pkgs with fact access, applies
// the packages' //pbcheck:ignore suppressions, and returns all
// diagnostics (suppressed ones included, marked) in deterministic
// file/line/column order regardless of package-load order.
//
// Packages with type errors are rejected: findings over code that
// does not compile are unreliable, and the repo's tier-1 gate
// guarantees compilable input anyway.
func RunUniverse(pkgs, universe []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunUniverseTimed(pkgs, universe, analyzers)
	return diags, err
}

// RunUniverseTimed is RunUniverse plus per-phase timing, at the
// default phase-2 parallelism. The diagnostics are byte-identical to
// RunUniverse's — timing observes the run, it never alters it.
func RunUniverseTimed(pkgs, universe []*Package, analyzers []*Analyzer) ([]Diagnostic, *RunStats, error) {
	return RunUniverseTimedWorkers(pkgs, universe, analyzers, DefaultWorkers())
}

// pkgResult is one package's phase-2 output: its diagnostics (in
// emission order, suppressions applied, stale waivers flagged) and the
// per-analyzer wall time and finding count, indexed in suite order.
type pkgResult struct {
	diags     []Diagnostic
	ruleTime  []time.Duration
	ruleCount []int
}

// analyzePackage runs the full analyzer suite over one package. It
// touches only its own pkgResult plus read-only shared state (the
// fact index and points-to result are frozen after phase 1), so any
// number of packages can run concurrently.
func analyzePackage(pkg *Package, facts *FactIndex, analyzers []*Analyzer, known map[string]bool) pkgResult {
	res := pkgResult{
		ruleTime:  make([]time.Duration, len(analyzers)),
		ruleCount: make([]int, len(analyzers)),
	}
	sups, supDiags := scanSuppressions(pkg, known)
	res.diags = append(res.diags, supDiags...)
	for i, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, sink: &res.diags}
		before := len(res.diags)
		t0 := time.Now()
		a.Run(pass)
		res.ruleTime[i] = time.Since(t0)
		res.ruleCount[i] = len(res.diags) - before
	}
	fired := applySuppressions(res.diags, sups)
	res.diags = append(res.diags, staleWaivers(facts, sups, fired, known)...)
	return res
}

// RunUniverseTimedWorkers is the fully parameterized driver: phase 2
// fans packages out over a bounded pool of `workers` goroutines.
// Each package's analysis writes only its own result slot, results
// are merged in input-package order, and the final sort is position
// based — the diagnostics are byte-identical at every worker count,
// only the wall time moves.
func RunUniverseTimedWorkers(pkgs, universe []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, *RunStats, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == IgnoreRule {
			return nil, nil, fmt.Errorf("analysis: rule name %q is reserved", IgnoreRule)
		}
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, nil, fmt.Errorf("analysis: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}

	// Phase 1: call graph + fact fixpoint over the whole universe.
	// Waiver rules are always in the fact engine's vocabulary even
	// when the corresponding analyzer was deselected, so a reasoned
	// waiver keeps cutting fact generation under -rules subsets.
	factKnown := map[string]bool{
		RuleDeterminism: true, RuleNoPanic: true, RuleHotAlloc: true, RulePurity: true,
	}
	for name := range known {
		factKnown[name] = true
	}
	seen := make(map[string]bool, len(pkgs)+len(universe))
	var all []*Package
	for _, pkg := range append(append([]*Package(nil), pkgs...), universe...) {
		if pkg == nil || seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		all = append(all, pkg)
	}
	factStart := time.Now()
	facts := BuildFacts(all, factKnown)
	stats := &RunStats{
		FactBuild: time.Since(factStart),
		PointsTo:  facts.PointsToTime(),
	}
	for _, pkg := range pkgs {
		facts.analyzed[pkg.Path] = true
	}

	// Phase 2: analyzers with fact access, one bounded worker pool
	// over the packages. The index channel deals each package to
	// exactly one worker; slot i of results belongs to that worker
	// alone until the wg.Wait join publishes everything.
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) && len(pkgs) > 0 {
		workers = len(pkgs)
	}
	stats.Workers = workers
	ruleStart := time.Now()
	results := make([]pkgResult, len(pkgs))
	if workers <= 1 {
		for i, pkg := range pkgs {
			results[i] = analyzePackage(pkg, facts, analyzers, known)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					//pbcheck:ignore racecheck the index channel deals each slot i to exactly one worker, and wg.Wait orders every write before the merge reads
					results[i] = analyzePackage(pkgs[i], facts, analyzers, known)
				}
			}()
		}
		for i := range pkgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	stats.RuleWall = time.Since(ruleStart)

	// Merge in input-package order; per-rule times sum across packages
	// into the sequential-cost estimate.
	ruleTime := make([]time.Duration, len(analyzers))
	ruleCount := make([]int, len(analyzers))
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r.diags...)
		for i := range analyzers {
			ruleTime[i] += r.ruleTime[i]
			ruleCount[i] += r.ruleCount[i]
			stats.RuleSeq += r.ruleTime[i]
		}
	}
	for i, a := range analyzers {
		stats.Rules = append(stats.Rules, RuleStat{
			Rule:     a.Name,
			Time:     ruleTime[i],
			Findings: ruleCount[i],
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].sortKey() < diags[j].sortKey() })
	return diags, stats, nil
}

// Active counts the diagnostics that are neither suppressed nor
// baselined — the number that should drive a non-zero exit code.
func Active(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed && !d.Baselined {
			n++
		}
	}
	return n
}
