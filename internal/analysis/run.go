package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies the
// packages' //pbcheck:ignore suppressions, and returns all
// diagnostics (suppressed ones included, marked) in deterministic
// file/line/column order.
//
// Packages with type errors are rejected: findings over code that
// does not compile are unreliable, and the repo's tier-1 gate
// guarantees compilable input anyway.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == IgnoreRule {
			return nil, fmt.Errorf("analysis: rule name %q is reserved", IgnoreRule)
		}
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
		sups, supDiags := scanSuppressions(pkg, known)
		start := len(diags)
		diags = append(diags, supDiags...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, sink: &diags}
			a.Run(pass)
		}
		applySuppressions(diags[start:], sups)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].sortKey() < diags[j].sortKey() })
	return diags, nil
}

// Active counts the diagnostics that are not suppressed — the number
// that should drive a non-zero exit code.
func Active(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}
