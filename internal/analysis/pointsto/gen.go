package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"
)

// funcCtx is one function body being generated: a declared function,
// a function literal, or a package's initializer scope.
type funcCtx struct {
	u    *Unit
	fn   *types.Func // nil at package scope and inside literals
	name string      // display name, e.g. "runner.Evaluate"
	sig  *types.Signature
	body *ast.BlockStmt
	// results holds the node per result slot; returns copy into them
	// and call sites copy out of them.
	results []int
}

// spawnRec is one go statement awaiting escape classification.
type spawnRec struct {
	spawn *Spawn
	// argNodes are the evaluated argument (and receiver) nodes; their
	// points-to sets escape to the goroutine.
	argNodes []int
	// funNode is the callee expression's node; function-literal
	// objects found in it have their captures escape.
	funNode int
	// callee is the statically resolved module function, if any.
	callee *types.Func
}

// rootRec seeds one heap-escape route.
type rootRec struct {
	node int
	fn   string
	// viaChannel distinguishes channel sends (ownership transfer)
	// from returns and parameter stores.
	viaChannel bool
}

// bitset is a dense object-ID set: bit i set means object i is a
// member. Points-to sets live on the solver's hottest path, and a
// word-wise union there beats hashing every element by well over an
// order of magnitude.
type bitset []uint64

// add sets bit i, growing as needed, and reports whether it was new.
func (b *bitset) add(i int32) bool {
	w, m := int(i>>6), uint64(1)<<(uint32(i)&63)
	if w >= len(*b) {
		nb := make(bitset, w+1)
		copy(nb, *b)
		*b = nb
	}
	if (*b)[w]&m != 0 {
		return false
	}
	(*b)[w] |= m
	return true
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach visits the member IDs in ascending order.
func (b bitset) forEach(f func(id int32)) {
	for w, word := range b {
		for word != 0 {
			f(int32(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

type gen struct {
	units []*Unit

	// nodes
	numNodes int
	varNode  map[*types.Var]int
	pts      []bitset
	delta    []bitset

	// graph
	copyEdges [][]int32
	edgeSeen  map[int64]bool
	loads     map[int][]int32 // ptr node -> dst nodes
	stores    map[int][]int32 // ptr node -> src nodes
	numCons   int

	// objects
	objects []*Object
	cellOf  []int // object ID -> cell node
	shadow  map[*types.Var]*Object
	extObj  *Object
	extCell int

	// functions
	funcs      []*funcCtx
	funcBodies map[*types.Func]*funcCtx
	litCtx     map[*ast.FuncLit]*funcCtx
	named      []*types.Named

	// escape roots, in deterministic generation order
	globalVars []*types.Var
	spawns     []*spawnRec
	heapRoots  []rootRec

	// escape-phase state
	sorted       [][]int32
	captured     map[*types.Var]*Spawn
	spawnRootMap map[*types.Func]*Spawn

	// per-function expression memo, reset for each funcCtx walk
	memo map[ast.Expr]int
	// exprList memo for calls (multi-result)
	callMemo map[*ast.CallExpr][]int

	worklist []int
	inWL     []bool

	// rep is the union-find forest of the cycle-collapse optimization:
	// every node in a copy-edge cycle shares one representative whose
	// pts set stands for the whole strongly connected component (the
	// members' sets are provably equal at fixpoint, so collapsing
	// loses nothing). nil until solve starts; find is identity before.
	rep []int32
	// popsSinceCollapse triggers periodic re-collapse: load/store
	// materialization keeps adding edges, so new cycles form while
	// solving.
	popsSinceCollapse int
}

func newGen() *gen {
	g := &gen{
		varNode:    make(map[*types.Var]int),
		edgeSeen:   make(map[int64]bool),
		loads:      make(map[int][]int32),
		stores:     make(map[int][]int32),
		shadow:     make(map[*types.Var]*Object),
		funcBodies: make(map[*types.Func]*funcCtx),
		litCtx:     make(map[*ast.FuncLit]*funcCtx),
	}
	// The external object: the sound bottom for everything outside
	// the module. Its cell contains itself, so loads from unknown
	// memory yield unknown memory.
	g.extObj = g.newObject(KindExternal, token.NoPos, "memory outside the module", nil)
	g.extCell = g.cellOf[g.extObj.ID]
	g.addAddr(g.extCell, g.extObj)
	return g
}

func (g *gen) newNode() int {
	n := g.numNodes
	g.numNodes++
	g.pts = append(g.pts, nil)
	g.delta = append(g.delta, nil)
	g.copyEdges = append(g.copyEdges, nil)
	g.inWL = append(g.inWL, false)
	return n
}

func (g *gen) nodeOf(v *types.Var) int {
	if n, ok := g.varNode[v]; ok {
		return n
	}
	n := g.newNode()
	g.varNode[v] = n
	return n
}

// newObject creates an abstract object and, for non-shadow kinds, a
// fresh cell node for its payload.
func (g *gen) newObject(kind ObjKind, pos token.Pos, label string, fc *funcCtx) *Object {
	o := &Object{ID: len(g.objects), Kind: kind, Pos: pos, Label: label}
	if fc != nil {
		o.Fn = fc.name
		o.fnObj = fc.fn
		if fc.u != nil {
			o.PkgPath = fc.u.Path
		}
	}
	g.objects = append(g.objects, o)
	if kind == KindShadow {
		g.cellOf = append(g.cellOf, -1) // patched by shadowOf
	} else {
		g.cellOf = append(g.cellOf, g.newNode())
	}
	return o
}

// shadowOf returns the shadow object backing address-taken variable
// v, creating it on first use. Its cell is v's own node: *(&v) is v.
func (g *gen) shadowOf(v *types.Var, fc *funcCtx) *Object {
	if o, ok := g.shadow[v]; ok {
		return o
	}
	o := g.newObject(KindShadow, v.Pos(), "&"+v.Name(), fc)
	g.cellOf[o.ID] = g.nodeOf(v)
	g.shadow[v] = o
	return o
}

// --- constraint primitives -------------------------------------------------

// find resolves n to its union-find representative (identity before
// solve starts), with path halving.
func (g *gen) find(n int) int {
	if g.rep == nil {
		return n
	}
	for g.rep[n] != int32(n) {
		g.rep[n] = g.rep[g.rep[n]]
		n = int(g.rep[n])
	}
	return n
}

func (g *gen) push(n int) {
	if !g.inWL[n] {
		g.inWL[n] = true
		g.worklist = append(g.worklist, n)
	}
}

// addAddr seeds o into pts(n).
func (g *gen) addAddr(n int, o *Object) {
	n = g.find(n)
	id := int32(o.ID)
	if !g.pts[n].add(id) {
		return
	}
	g.delta[n].add(id)
	g.push(n)
	g.numCons++
}

// addCopy adds the subset edge pts(dst) ⊇ pts(src).
func (g *gen) addCopy(src, dst int) {
	if src < 0 || dst < 0 {
		return
	}
	src, dst = g.find(src), g.find(dst)
	if src == dst {
		return
	}
	key := int64(src)<<32 | int64(uint32(dst))
	if g.edgeSeen[key] {
		return
	}
	g.edgeSeen[key] = true
	g.copyEdges[src] = append(g.copyEdges[src], int32(dst))
	g.numCons++
	// Propagate what src already has.
	if !g.pts[src].empty() {
		g.merge(dst, g.pts[src])
	}
}

// addLoad: pts(dst) ⊇ cell(o) for every o ∈ pts(ptr).
func (g *gen) addLoad(ptr, dst int) {
	if ptr < 0 || dst < 0 {
		return
	}
	ptr = g.find(ptr)
	g.loads[ptr] = append(g.loads[ptr], int32(dst))
	g.numCons++
	g.pts[ptr].forEach(func(id int32) {
		g.addCopy(g.cellOf[id], dst)
	})
	g.push(ptr)
}

// addStore: cell(o) ⊇ pts(src) for every o ∈ pts(ptr).
func (g *gen) addStore(ptr, src int) {
	if ptr < 0 || src < 0 {
		return
	}
	ptr = g.find(ptr)
	g.stores[ptr] = append(g.stores[ptr], int32(src))
	g.numCons++
	g.pts[ptr].forEach(func(id int32) {
		g.addCopy(src, g.cellOf[id])
	})
	g.push(ptr)
}

// merge adds the objects in set to pts(dst), queueing dst on change.
// The word-wise union is the solver's inner loop.
func (g *gen) merge(dst int, set bitset) {
	if len(set) == 0 {
		return
	}
	dst = g.find(dst)
	pd := g.pts[dst]
	if len(pd) < len(set) {
		np := make(bitset, len(set))
		copy(np, pd)
		pd = np
		g.pts[dst] = pd
	}
	dd := g.delta[dst]
	changed := false
	for w, word := range set {
		if fresh := word &^ pd[w]; fresh != 0 {
			pd[w] |= fresh
			if len(dd) < len(set) {
				nd := make(bitset, len(set))
				copy(nd, dd)
				dd = nd
				g.delta[dst] = dd
			}
			dd[w] |= fresh
			changed = true
		}
	}
	if changed {
		g.push(dst)
	}
}

// solve runs the worklist to the least fixpoint, materializing
// load/store edges as pointer sets grow. Copy-edge cycles are
// collapsed into single union-find representatives — once before
// propagation starts and again periodically, because load/store
// materialization keeps closing new cycles. A cycle's members all
// end with the identical pts set at fixpoint, so one shared set is
// both sound and exact; without the collapse the same bits bounce
// around each cycle once per delta, which is what used to make this
// solve take tens of seconds on the module universe.
func (g *gen) solve() {
	g.rep = make([]int32, g.numNodes)
	for i := range g.rep {
		g.rep[i] = int32(i)
	}
	g.collapseCycles()
	for len(g.worklist) > 0 {
		n := g.worklist[len(g.worklist)-1]
		g.worklist = g.worklist[:len(g.worklist)-1]
		g.inWL[n] = false
		if r := g.find(n); r != n {
			// Collapsed mid-flight; its delta moved to the rep.
			continue
		}
		g.popsSinceCollapse++
		if g.popsSinceCollapse > g.numNodes {
			g.popsSinceCollapse = 0
			g.collapseCycles()
			if r := g.find(n); r != n {
				continue
			}
		}
		d := g.delta[n]
		g.delta[n] = nil
		if d.empty() {
			continue
		}
		if len(g.loads[n]) > 0 || len(g.stores[n]) > 0 {
			d.forEach(func(id int32) {
				cell := g.cellOf[id]
				for _, dst := range g.loads[n] {
					g.addCopy(cell, int(dst))
				}
				for _, src := range g.stores[n] {
					g.addCopy(int(src), cell)
				}
			})
		}
		for _, dst := range g.copyEdges[n] {
			if d2 := g.find(int(dst)); d2 != n {
				g.merge(d2, d)
			}
		}
	}
}

// collapseCycles runs Tarjan's SCC algorithm over the representative
// copy graph and unions every multi-node component into its smallest
// member. The representative inherits the members' pts sets, edge
// lists, and pending deltas, then re-queues with its full set as
// delta so everything propagates along the inherited edges once.
func (g *gen) collapseCycles() {
	n := g.numNodes
	index := make([]int32, n) // 0 = unvisited, else discovery index+1
	low := make([]int32, n)
	onstack := make([]bool, n)
	stack := make([]int32, 0, 64)
	var next int32
	var comps [][]int32

	var dfs func(v int)
	dfs = func(v int) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, int32(v))
		onstack[v] = true
		for _, wRaw := range g.copyEdges[v] {
			w := g.find(int(wRaw))
			if w == v {
				continue
			}
			if index[w] == 0 {
				dfs(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onstack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[w] = false
				comp = append(comp, w)
				if int(w) == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for v := 0; v < n; v++ {
		if g.find(v) == v && index[v] == 0 {
			dfs(v)
		}
	}

	for _, comp := range comps {
		r := comp[0]
		for _, w := range comp {
			if w < r {
				r = w
			}
		}
		rep := int(r)
		for _, wID := range comp {
			w := int(wID)
			if w == rep {
				continue
			}
			g.rep[w] = r
			g.merge(rep, g.pts[w]) // no-ops once equal; seeds delta for new bits
			g.pts[w], g.delta[w] = nil, nil
			g.copyEdges[rep] = append(g.copyEdges[rep], g.copyEdges[w]...)
			g.copyEdges[w] = nil
			if l := g.loads[w]; len(l) > 0 {
				g.loads[rep] = append(g.loads[rep], l...)
				delete(g.loads, w)
			}
			if s := g.stores[w]; len(s) > 0 {
				g.stores[rep] = append(g.stores[rep], s...)
				delete(g.stores, w)
			}
		}
		// Re-propagate the whole set along the inherited edges: a
		// member may have held bits it never pushed down an edge that
		// now belongs to the representative.
		if !g.pts[rep].empty() {
			d := make(bitset, len(g.pts[rep]))
			copy(d, g.pts[rep])
			g.delta[rep] = d
			g.push(rep)
		}
	}
}

// --- collection ------------------------------------------------------------

// collectPackage registers a unit's named types, package-level
// variables, and function bodies, and generates constraints for
// package-level initializers.
func (g *gen) collectPackage(u *Unit) {
	g.units = append(g.units, u)
	if u.Types != nil {
		scope := u.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
					g.named = append(g.named, n)
				}
			}
		}
	}
	pkgCtx := &funcCtx{u: u, name: u.Name + ".<init>"}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, nm := range vs.Names {
						v, ok := u.Info.Defs[nm].(*types.Var)
						if !ok {
							continue
						}
						g.globalVars = append(g.globalVars, v)
						if i < len(vs.Values) {
							g.memo = make(map[ast.Expr]int)
							g.callMemo = make(map[*ast.CallExpr][]int)
							g.genAssignNode(pkgCtx, g.nodeOf(v), vs.Values[i])
						}
					}
				}
			case *ast.FuncDecl:
				fn, ok := u.Info.Defs[d.Name].(*types.Func)
				if !ok || d.Body == nil {
					continue
				}
				fc := &funcCtx{
					u:    u,
					fn:   fn,
					name: displayName(fn),
					sig:  fn.Type().(*types.Signature),
					body: d.Body,
				}
				g.initResults(fc)
				g.funcBodies[fn] = fc
				g.funcs = append(g.funcs, fc)
			}
		}
	}
}

// initResults allocates the result-slot nodes and seeds them as heap
// roots (everything returned outlives the frame).
func (g *gen) initResults(fc *funcCtx) {
	if fc.sig == nil {
		return
	}
	res := fc.sig.Results()
	for i := 0; i < res.Len(); i++ {
		n := g.nodeOf(res.At(i))
		fc.results = append(fc.results, n)
		g.heapRoots = append(g.heapRoots, rootRec{node: n, fn: fc.name})
	}
}

func displayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// --- per-function generation -----------------------------------------------

// genFunc walks one function body, generating constraints for every
// statement. Function literals are processed on first encounter and
// not descended into again.
func (g *gen) genFunc(fc *funcCtx) {
	g.memo = make(map[ast.Expr]int)
	g.callMemo = make(map[*ast.CallExpr][]int)
	g.walkBody(fc, fc.body)
}

func (g *gen) walkBody(fc *funcCtx, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			g.exprNode(fc, s) // processes body recursively; memoized
			return false
		case *ast.AssignStmt:
			g.genAssignStmt(fc, s)
		case *ast.GenDecl:
			if s.Tok == token.VAR {
				for _, spec := range s.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						g.genValueSpec(fc, vs)
					}
				}
			}
		case *ast.SendStmt:
			cn := g.exprNode(fc, s.Chan)
			vn := g.exprNode(fc, s.Value)
			g.addStore(cn, vn)
			if vn >= 0 {
				g.heapRoots = append(g.heapRoots, rootRec{node: vn, fn: fc.name, viaChannel: true})
			}
		case *ast.GoStmt:
			g.genGo(fc, s)
		case *ast.DeferStmt:
			g.exprCall(fc, s.Call)
		case *ast.ReturnStmt:
			for i, res := range s.Results {
				rn := g.exprNode(fc, res)
				if i < len(fc.results) {
					g.addCopy(rn, fc.results[i])
				}
			}
		case *ast.RangeStmt:
			g.genRange(fc, s)
		case *ast.CallExpr:
			g.exprCall(fc, s)
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.StarExpr:
			g.exprNode(fc, n.(ast.Expr))
		}
		return true
	})
}

func (g *gen) genValueSpec(fc *funcCtx, vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		// v1, v2 := f() — multi-result.
		if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
			rs := g.exprCall(fc, call)
			for i, nm := range vs.Names {
				if v, ok := fc.u.Info.Defs[nm].(*types.Var); ok && i < len(rs) {
					g.addCopy(rs[i], g.nodeOf(v))
				}
			}
			return
		}
	}
	for i, nm := range vs.Names {
		v, ok := fc.u.Info.Defs[nm].(*types.Var)
		if !ok {
			continue
		}
		if i < len(vs.Values) {
			g.genAssignNode(fc, g.nodeOf(v), vs.Values[i])
		}
	}
}

func (g *gen) genAssignStmt(fc *funcCtx, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		rhs := unparen(s.Rhs[0])
		switch r := rhs.(type) {
		case *ast.CallExpr:
			rs := g.exprCall(fc, r)
			for i, lhs := range s.Lhs {
				if i < len(rs) {
					g.assignTo(fc, lhs, rs[i])
				}
			}
			return
		case *ast.TypeAssertExpr:
			// v, ok := x.(T)
			g.assignTo(fc, s.Lhs[0], g.exprNode(fc, r.X))
			return
		case *ast.UnaryExpr:
			if r.Op == token.ARROW {
				// v, ok := <-ch
				g.assignTo(fc, s.Lhs[0], g.exprNode(fc, rhs))
				return
			}
		case *ast.IndexExpr:
			// v, ok := m[k]
			g.assignTo(fc, s.Lhs[0], g.exprNode(fc, rhs))
			return
		}
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			rn := g.exprNode(fc, s.Rhs[i])
			g.assignTo(fc, lhs, rn)
		}
	}
}

// genAssignNode evaluates rhs and copies it into node dst.
func (g *gen) genAssignNode(fc *funcCtx, dst int, rhs ast.Expr) {
	g.addCopy(g.exprNode(fc, rhs), dst)
}

// assignTo routes a value node into an lvalue, mirroring the write
// classification of the write-effect fact: a plain variable is a
// copy, anything crossing a pointer/slice/map boundary is a store,
// and value-struct fields collapse into their base.
func (g *gen) assignTo(fc *funcCtx, lhs ast.Expr, rn int) {
	lhs = unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v := g.identVar(fc, l); v != nil {
			g.addCopy(rn, g.nodeOf(v))
		}
	case *ast.SelectorExpr:
		if v, ok := fc.u.Info.Uses[l.Sel].(*types.Var); ok && !v.IsField() {
			// Qualified package-level variable.
			g.addCopy(rn, g.nodeOf(v))
			return
		}
		if isPointerish(fc.u.Info.TypeOf(l.X)) {
			g.addStore(g.exprNode(fc, l.X), rn)
		} else {
			g.assignTo(fc, l.X, rn) // value struct: collapse into base
		}
	case *ast.StarExpr:
		g.addStore(g.exprNode(fc, l.X), rn)
	case *ast.IndexExpr:
		t := fc.u.Info.TypeOf(l.X)
		if isValueArray(t) {
			g.assignTo(fc, l.X, rn)
		} else {
			g.addStore(g.exprNode(fc, l.X), rn)
			// Map keys are reachable from the map too.
			if _, ok := coreType(t).(*types.Map); ok {
				g.addStore(g.exprNode(fc, l.X), g.exprNode(fc, l.Index))
			}
		}
	}
}

func (g *gen) identVar(fc *funcCtx, id *ast.Ident) *types.Var {
	if v, ok := fc.u.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fc.u.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// --- expressions -----------------------------------------------------------

// exprNode returns the node holding the abstract value of e,
// generating constraints on first visit (memoized thereafter). -1
// means "holds no pointers we track".
func (g *gen) exprNode(fc *funcCtx, e ast.Expr) int {
	if n, ok := g.memo[e]; ok {
		return n
	}
	g.memo[e] = -1 // cut cycles defensively
	n := g.exprNodeUncached(fc, e)
	g.memo[e] = n
	return n
}

func (g *gen) exprNodeUncached(fc *funcCtx, e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Ident:
		if v := g.identVar(fc, x); v != nil {
			return g.nodeOf(v)
		}
		return -1
	case *ast.ParenExpr:
		return g.exprNode(fc, x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return g.addrOf(fc, x.X, x)
		case token.ARROW:
			t := g.newNode()
			g.addLoad(g.exprNode(fc, x.X), t)
			return t
		}
		g.exprNode(fc, x.X)
		return -1
	case *ast.StarExpr:
		t := g.newNode()
		g.addLoad(g.exprNode(fc, x.X), t)
		return t
	case *ast.SelectorExpr:
		if v, ok := fc.u.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return g.nodeOf(v) // qualified package-level var
		}
		if _, ok := fc.u.Info.Uses[x.Sel].(*types.Var); !ok {
			return -1 // method value / qualified func
		}
		if isPointerish(fc.u.Info.TypeOf(x.X)) {
			t := g.newNode()
			g.addLoad(g.exprNode(fc, x.X), t)
			return t
		}
		return g.exprNode(fc, x.X) // value struct field: collapse
	case *ast.IndexExpr:
		t := fc.u.Info.TypeOf(x.X)
		if t == nil || isFuncInstantiation(fc, x) {
			return -1
		}
		if isValueArray(t) {
			return g.exprNode(fc, x.X)
		}
		tn := g.newNode()
		g.addLoad(g.exprNode(fc, x.X), tn)
		return tn
	case *ast.IndexListExpr:
		return -1
	case *ast.SliceExpr:
		return g.exprNode(fc, x.X) // same backing store
	case *ast.TypeAssertExpr:
		return g.exprNode(fc, x.X)
	case *ast.CompositeLit:
		return g.compositeLit(fc, x, false)
	case *ast.FuncLit:
		return g.funcLit(fc, x)
	case *ast.CallExpr:
		rs := g.exprCall(fc, x)
		if len(rs) > 0 {
			return rs[0]
		}
		return -1
	case *ast.BinaryExpr:
		g.exprNode(fc, x.X)
		g.exprNode(fc, x.Y)
		return -1
	}
	return -1
}

// addrOf handles &operand.
func (g *gen) addrOf(fc *funcCtx, operand, at ast.Expr) int {
	operand = unparen(operand)
	switch x := operand.(type) {
	case *ast.CompositeLit:
		return g.compositeLit(fc, x, true)
	case *ast.Ident:
		if v := g.identVar(fc, x); v != nil {
			t := g.newNode()
			g.addAddr(t, g.shadowOf(v, fc))
			return t
		}
		return -1
	case *ast.SelectorExpr:
		// &x.f: a pointer into x's storage (or into what x points to).
		if isPointerish(fc.u.Info.TypeOf(x.X)) {
			return g.exprNode(fc, x.X)
		}
		return g.addrOf(fc, x.X, at)
	case *ast.IndexExpr:
		// &s[i]: a pointer into the backing store.
		if isValueArray(fc.u.Info.TypeOf(x.X)) {
			return g.addrOf(fc, x.X, at)
		}
		return g.exprNode(fc, x.X)
	case *ast.StarExpr:
		return g.exprNode(fc, x.X) // &*p is p
	}
	return -1
}

// compositeLit allocates an object for reference literals (slice,
// map, and &-taken or pointer literals) and stores the element values
// into its cell. Value struct/array literals collapse: their node
// carries the elements' points-to sets directly.
func (g *gen) compositeLit(fc *funcCtx, x *ast.CompositeLit, addressed bool) int {
	var elems []int
	for _, el := range x.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if en := g.exprNode(fc, kv.Value); en >= 0 {
				elems = append(elems, en)
			}
			continue
		}
		if en := g.exprNode(fc, el); en >= 0 {
			elems = append(elems, en)
		}
	}
	t := fc.u.Info.TypeOf(x)
	reference := addressed
	switch coreType(t).(type) {
	case *types.Slice, *types.Map:
		reference = true
	}
	if !reference {
		// Value literal: merge element pointers into one node.
		tn := g.newNode()
		for _, en := range elems {
			g.addCopy(en, tn)
		}
		return tn
	}
	label := types.ExprString(x.Type)
	if addressed {
		label = "&" + label + "{…}"
	} else {
		label += "{…}"
	}
	o := g.newObject(KindAlloc, x.Lbrace, trunc(label), fc)
	cell := g.cellOf[o.ID]
	for _, en := range elems {
		g.addCopy(en, cell)
	}
	tn := g.newNode()
	g.addAddr(tn, o)
	return tn
}

// funcLit allocates the closure object, records its free variables,
// and generates constraints for its body under a fresh context.
func (g *gen) funcLit(fc *funcCtx, lit *ast.FuncLit) int {
	sig, _ := fc.u.Info.TypeOf(lit).(*types.Signature)
	sub := &funcCtx{
		u:    fc.u,
		fn:   fc.fn, // allocations inside attribute to the enclosing function
		name: fc.name,
		sig:  sig,
		body: lit.Body,
	}
	g.initResults(sub)
	g.litCtx[lit] = sub

	o := g.newObject(KindAlloc, lit.Pos(), "func literal", fc)
	o.captures = g.freeVars(fc, lit)
	// The captured variables' storage is part of the closure: anything
	// they point to is reachable from the closure object.
	cell := g.cellOf[o.ID]
	for _, v := range o.captures {
		g.addCopy(g.nodeOf(v), cell)
	}
	g.walkBody(sub, lit.Body)

	tn := g.newNode()
	g.addAddr(tn, o)
	return tn
}

// freeVars returns the function-scoped variables used inside lit but
// declared outside it, in first-use order.
func (g *gen) freeVars(fc *funcCtx, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fc.u.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Pkg() == nil {
			return true
		}
		// Package-level variables are shared anyway; captures are
		// function-locals declared outside the literal.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// genGo records the spawn and generates the call's constraints.
func (g *gen) genGo(fc *funcCtx, s *ast.GoStmt) {
	call := s.Call
	ls, le, inLoop := SpawnLoop(fc.body, s.Go)
	rec := &spawnRec{
		spawn: &Spawn{
			Pos:       s.Go,
			Fn:        fc.name,
			PkgPath:   fc.u.Path,
			InLoop:    inLoop,
			LoopStart: ls,
			LoopEnd:   le,
		},
		funNode: g.exprNode(fc, call.Fun),
	}
	for _, arg := range call.Args {
		if an := g.exprNode(fc, arg); an >= 0 {
			rec.argNodes = append(rec.argNodes, an)
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method call: the receiver crosses into the goroutine too.
		if rn := g.exprNode(fc, sel.X); rn >= 0 {
			rec.argNodes = append(rec.argNodes, rn)
		}
	}
	if fn := g.staticCallee(fc, call); fn != nil {
		rec.callee = fn
	}
	g.exprCall(fc, call)
	g.spawns = append(g.spawns, rec)
}

func (g *gen) genRange(fc *funcCtx, s *ast.RangeStmt) {
	xn := g.exprNode(fc, s.X)
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		// Elements live in the range operand's cell; for collapsed
		// value arrays they live in the operand node itself.
		t := g.newNode()
		g.addLoad(xn, t)
		g.addCopy(xn, t)
		g.assignTo(fc, e, t)
	}
	bind(s.Key)
	bind(s.Value)
}

// --- calls -----------------------------------------------------------------

// staticCallee resolves a call to a module function with a body.
func (g *gen) staticCallee(fc *funcCtx, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = fc.u.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = fc.u.Info.Uses[f.Sel]
	case *ast.IndexExpr: // generic instantiation
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			obj = fc.u.Info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			obj = fc.u.Info.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, ok := g.funcBodies[fn]; !ok {
		return nil
	}
	return fn
}

// exprCall generates argument/result flow for one call and returns
// the per-result value nodes.
func (g *gen) exprCall(fc *funcCtx, call *ast.CallExpr) []int {
	if rs, ok := g.callMemo[call]; ok {
		return rs
	}
	g.callMemo[call] = nil // cut cycles
	rs := g.exprCallUncached(fc, call)
	g.callMemo[call] = rs
	return rs
}

func (g *gen) exprCallUncached(fc *funcCtx, call *ast.CallExpr) []int {
	info := fc.u.Info
	fun := unparen(call.Fun)

	// Conversion: T(x) passes the pointer through.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []int{g.exprNode(fc, call.Args[0])}
		}
		return nil
	}

	// Builtin.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return g.builtinCall(fc, call, b.Name())
		}
	}

	// Static module function.
	if fn := g.staticCallee(fc, call); fn != nil {
		callee := g.funcBodies[fn]
		g.bindCall(fc, call, callee.sig, fn)
		return callee.results
	}

	// Function-literal called in place: func(){...}(args).
	if lit, ok := fun.(*ast.FuncLit); ok {
		g.exprNode(fc, lit)
		sub := g.litCtx[lit]
		if sub != nil {
			g.bindArgs(fc, call, sub.sig)
			return sub.results
		}
		return nil
	}

	// Interface method call: class-hierarchy resolution over the
	// module's named types, mirroring the fact engine.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if recvT := info.TypeOf(sel.X); recvT != nil && types.IsInterface(recvT) {
			if rs := g.chaCall(fc, call, sel); rs != nil {
				return rs
			}
		}
	}

	// Unknown callee: everything flows through the external object.
	return g.unknownCall(fc, call)
}

// bindCall copies the receiver and arguments into the callee's
// parameters.
func (g *gen) bindCall(fc *funcCtx, call *ast.CallExpr, sig *types.Signature, fn *types.Func) {
	if sig.Recv() != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			g.addCopy(g.exprNode(fc, sel.X), g.nodeOf(sig.Recv()))
		}
	}
	g.bindArgs(fc, call, sig)
}

func (g *gen) bindArgs(fc *funcCtx, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	np := params.Len()
	variadic := sig.Variadic()
	for i, arg := range call.Args {
		an := g.exprNode(fc, arg)
		if an < 0 {
			continue
		}
		switch {
		case variadic && i >= np-1:
			pn := g.nodeOf(params.At(np - 1))
			if call.Ellipsis.IsValid() {
				g.addCopy(an, pn) // xs... passes the slice itself
			} else {
				g.addStore(pn, an) // element of the implicit slice
				g.variadicBacking(pn, call)
			}
		case i < np:
			g.addCopy(an, g.nodeOf(params.At(i)))
		}
	}
}

// variadicBacking ensures the variadic parameter has a backing object
// to store elements into.
func (g *gen) variadicBacking(pn int, call *ast.CallExpr) {
	if g.pts[pn].empty() {
		o := g.newObject(KindAlloc, call.Lparen, "variadic args", nil)
		g.addAddr(pn, o)
	}
}

// chaCall binds an interface method call to every module
// implementation. Returns nil when no module type implements the
// interface (fall through to unknown).
func (g *gen) chaCall(fc *funcCtx, call *ast.CallExpr, sel *ast.SelectorExpr) []int {
	recvT := fc.u.Info.TypeOf(sel.X)
	iface, ok := recvT.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []int
	bound := false
	for _, n := range g.named {
		impl := types.Implements(n, iface) || types.Implements(types.NewPointer(n), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), sel.Sel.Name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		callee, ok := g.funcBodies[m]
		if !ok {
			continue
		}
		bound = true
		if callee.sig.Recv() != nil {
			g.addCopy(g.exprNode(fc, sel.X), g.nodeOf(callee.sig.Recv()))
		}
		g.bindArgs(fc, call, callee.sig)
		out = append(out, callee.results...)
	}
	if !bound {
		return nil
	}
	// Merge the per-implementation results into per-slot nodes.
	sig, _ := fc.u.Info.TypeOf(sel.Sel).(*types.Signature)
	if sig == nil {
		return nil
	}
	nres := sig.Results().Len()
	merged := make([]int, nres)
	for i := range merged {
		merged[i] = g.newNode()
	}
	k := 0
	for _, rn := range out {
		g.addCopy(rn, merged[k%max(nres, 1)])
		k++
	}
	return merged
}

// unknownCall routes arguments into the external object and results
// out of it: the sound treatment of callees outside the module.
func (g *gen) unknownCall(fc *funcCtx, call *ast.CallExpr) []int {
	for _, arg := range call.Args {
		if an := g.exprNode(fc, arg); an >= 0 {
			g.addCopy(an, g.extCell)
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		// A foreign method may retain its receiver.
		if _, isPkg := fc.u.Info.Uses[sel.Sel].(*types.Func); isPkg {
			if rn := g.exprNode(fc, sel.X); rn >= 0 {
				g.addCopy(rn, g.extCell)
			}
		}
	} else if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		_ = id
	} else {
		// Indirect call through a function value: args may be retained
		// by any closure; fold into ext.
		if fn := g.exprNode(fc, call.Fun); fn >= 0 {
			g.addCopy(fn, g.extCell)
		}
	}
	nres := 1
	if tv, ok := fc.u.Info.Types[call]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			nres = tup.Len()
		}
	}
	out := make([]int, nres)
	for i := range out {
		t := g.newNode()
		g.addCopy(g.extCell, t)
		out[i] = t
	}
	return out
}

func (g *gen) builtinCall(fc *funcCtx, call *ast.CallExpr, name string) []int {
	switch name {
	case "make":
		t := fc.u.Info.TypeOf(call)
		o := g.newObject(KindAlloc, call.Lparen, trunc("make("+types.ExprString(call.Args[0])+")"), fc)
		if _, ok := coreType(t).(*types.Chan); ok {
			o.isChan = true
		}
		tn := g.newNode()
		g.addAddr(tn, o)
		return []int{tn}
	case "new":
		o := g.newObject(KindAlloc, call.Lparen, trunc("new("+types.ExprString(call.Args[0])+")"), fc)
		tn := g.newNode()
		g.addAddr(tn, o)
		return []int{tn}
	case "append":
		base := g.exprNode(fc, call.Args[0])
		tn := g.newNode()
		g.addCopy(base, tn)
		o := g.newObject(KindAlloc, call.Lparen, "append", fc)
		g.addAddr(tn, o)
		for _, arg := range call.Args[1:] {
			an := g.exprNode(fc, arg)
			if an < 0 {
				continue
			}
			if call.Ellipsis.IsValid() {
				// append(s, xs...): element flow between backings.
				el := g.newNode()
				g.addLoad(an, el)
				g.addStore(tn, el)
			} else {
				g.addStore(tn, an)
			}
		}
		return []int{tn}
	case "copy":
		if len(call.Args) == 2 {
			dst := g.exprNode(fc, call.Args[0])
			src := g.exprNode(fc, call.Args[1])
			el := g.newNode()
			g.addLoad(src, el)
			g.addStore(dst, el)
		}
		return nil
	default:
		for _, arg := range call.Args {
			g.exprNode(fc, arg)
		}
		return nil
	}
}

// --- type helpers ----------------------------------------------------------

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func coreType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// isPointerish reports whether indexing/selecting through a value of
// type t crosses a heap boundary (so writes are stores, reads loads).
func isPointerish(t types.Type) bool {
	switch coreType(t).(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// isValueArray reports whether t is a plain array or other value type
// whose elements collapse into the base node.
func isValueArray(t types.Type) bool {
	switch coreType(t).(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return false
	}
	return true
}

func isFuncInstantiation(fc *funcCtx, x *ast.IndexExpr) bool {
	tv, ok := fc.u.Info.Types[x]
	if !ok {
		return false
	}
	_, isSig := tv.Type.(*types.Signature)
	return isSig
}

func trunc(s string) string {
	if len(s) > 48 {
		return s[:45] + "…"
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
