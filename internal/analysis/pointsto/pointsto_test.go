package pointsto

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// check type-checks one synthetic package and runs the analysis.
func check(t *testing.T, src string) (*Unit, *Result) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	u := &Unit{Path: "x", Name: "x", Fset: fset, Files: []*ast.File{f}, Info: info, Types: pkg}
	return u, Analyze([]*Unit{u})
}

// varByName finds a variable anywhere in the unit by name.
func varByName(t *testing.T, u *Unit, name string) *types.Var {
	t.Helper()
	for _, obj := range u.Info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == name {
			return v
		}
	}
	t.Fatalf("no variable %q", name)
	return nil
}

func funcByName(t *testing.T, u *Unit, name string) *types.Func {
	t.Helper()
	for _, obj := range u.Info.Defs {
		if fn, ok := obj.(*types.Func); ok && fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestBasicAliasing(t *testing.T) {
	u, r := check(t, `package x
func f() {
	var x int
	p := &x
	q := p
	_ = q
}`)
	q := varByName(t, u, "q")
	objs := r.PointsTo(q)
	if len(objs) != 1 || objs[0].Kind != KindShadow {
		t.Fatalf("pts(q) = %v, want one shadow object", objs)
	}
	if objs[0].Label != "&x" {
		t.Fatalf("label = %q, want &x", objs[0].Label)
	}
}

func TestLoadStore(t *testing.T) {
	u, r := check(t, `package x
func f() {
	var x, y int
	pp := new(*int)
	*pp = &x
	q := *pp
	_, _ = q, y
}`)
	q := varByName(t, u, "q")
	objs := r.PointsTo(q)
	if len(objs) != 1 || objs[0].Label != "&x" {
		t.Fatalf("pts(q) = %v, want shadow of x", labels(objs))
	}
}

func TestReturnEscapesHeap(t *testing.T) {
	u, r := check(t, `package x
func mk() []int { s := make([]int, 4); return s }`)
	s := varByName(t, u, "s")
	objs := r.PointsTo(s)
	if len(objs) != 1 {
		t.Fatalf("pts(s) = %v", labels(objs))
	}
	o := objs[0]
	if !o.Escapes().Has(EscHeap) {
		t.Fatalf("make object should heap-escape; esc=%b", o.Escapes())
	}
	if want := "returned from x.mk"; o.EscapeWhy(EscHeap) != want {
		t.Fatalf("why = %q, want %q", o.EscapeWhy(EscHeap), want)
	}
	if o.Escapes().Has(EscGlobal) || o.Escapes().Has(EscGoroutine) {
		t.Fatalf("unexpected extra escape routes: %b", o.Escapes())
	}
}

func TestGlobalEscape(t *testing.T) {
	u, r := check(t, `package x
var G []int
func f() {
	s := make([]int, 1)
	G = s
}`)
	s := varByName(t, u, "s")
	o := r.PointsTo(s)[0]
	if !o.Escapes().Has(EscGlobal) {
		t.Fatalf("object assigned to G should global-escape")
	}
	if want := "package-level var x.G"; o.EscapeWhy(EscGlobal) != want {
		t.Fatalf("why = %q, want %q", o.EscapeWhy(EscGlobal), want)
	}
}

func TestGoroutineCapture(t *testing.T) {
	u, r := check(t, `package x
func f() {
	s := make([]int, 8)
	go func() {
		s[0] = 1
	}()
	s[1] = 2
}`)
	s := varByName(t, u, "s")
	if sp := r.CapturedBy(s); sp == nil {
		t.Fatalf("s should be captured by the spawned goroutine")
	} else if sp.Fn != "x.f" {
		t.Fatalf("spawn fn = %q, want x.f", sp.Fn)
	}
	sp := r.SharedWithGoroutine(s)
	if sp == nil {
		t.Fatalf("writes through s should be goroutine-shared")
	}
	o := r.PointsTo(s)[0]
	if got := o.EscapeWhy(EscGoroutine); !strings.Contains(got, "spawned in x.f") {
		t.Fatalf("why = %q", got)
	}
}

func TestGoroutineStaticCallArgs(t *testing.T) {
	u, r := check(t, `package x
func worker(buf []int) { buf[0] = 1 }
func f() {
	buf := make([]int, 8)
	go worker(buf)
	buf[1] = 2
}`)
	buf := varByName(t, u, "buf")
	if r.SharedWithGoroutine(buf) == nil {
		t.Fatalf("arg passed to go'd call should be goroutine-shared")
	}
	w := funcByName(t, u, "worker")
	if sp := r.SpawnRoot(w); sp == nil || sp.Fn != "x.f" {
		t.Fatalf("worker should be a spawn root of x.f, got %v", sp)
	}
	// Inside worker, the parameter aliases the same shared object.
	for _, obj := range u.Info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == "buf" && v != buf {
			if r.SharedWithGoroutine(v) == nil {
				t.Fatalf("worker's parameter should alias the shared buffer")
			}
		}
	}
}

func TestChannelOwnershipTransfer(t *testing.T) {
	u, r := check(t, `package x
func f() {
	ch := make(chan []int, 1)
	go func() {
		v := <-ch
		v[0] = 1
	}()
	s := make([]int, 4)
	ch <- s
}`)
	s := varByName(t, u, "s")
	o := r.PointsTo(s)[0]
	if !o.Escapes().Has(EscHeap) {
		t.Fatalf("sent value should heap-escape")
	}
	if !o.heapViaChannelOnly {
		t.Fatalf("heap escape should be via channel only")
	}
	// Ownership transfer: the payload is NOT goroutine-shared even
	// though the channel itself is.
	if o.Escapes().Has(EscGoroutine) {
		t.Fatalf("channel payload must not be marked goroutine-shared (ownership transfer)")
	}
	ch := varByName(t, u, "ch")
	if r.SharedWithGoroutine(ch) == nil {
		t.Fatalf("the channel object itself is goroutine-shared")
	}
	// And the receiving side aliases the sent object.
	v := varByName(t, u, "v")
	if len(r.PointsTo(v)) == 0 {
		t.Fatalf("receive should alias the sent object")
	}
}

func TestUnknownCalleeEscape(t *testing.T) {
	u, r := check(t, `package x
import "fmt"
func f() {
	s := make([]int, 1)
	fmt.Println(s)
}`)
	s := varByName(t, u, "s")
	o := r.PointsTo(s)[0]
	if !o.Escapes().Has(EscUnknown) {
		t.Fatalf("arg to foreign callee should unknown-escape")
	}
	// But NOT goroutine-escape: the ext object's payload is opaque to
	// the goroutine route by policy.
	if o.Escapes().Has(EscGoroutine) {
		t.Fatalf("unknown escape must not imply goroutine sharing")
	}
}

func TestOwned(t *testing.T) {
	u, r := check(t, `package x
var G []int
func fresh() []int { return make([]int, 2) }
func f(in []int) {
	a := make([]int, 2) // owned: never leaves f
	b := fresh()        // owned: fresh via return
	c := in             // not owned: caller's memory
	d := make([]int, 2)
	G = d // not owned: global
	a[0], b[0], c[0], d[0] = 1, 1, 1, 1
}`)
	fn := funcByName(t, u, "f")
	params := map[*types.Var]bool{varByName(t, u, "in"): true}
	cases := []struct {
		name string
		want bool
	}{{"a", true}, {"b", true}, {"c", false}, {"d", false}}
	for _, tc := range cases {
		v := varByName(t, u, tc.name)
		if got := r.Owned(v, fn, params); got != tc.want {
			t.Errorf("Owned(%s) = %v, want %v (pts=%v)", tc.name, got, tc.want, labels(r.PointsTo(v)))
		}
	}
}

func TestInterfaceCHACall(t *testing.T) {
	u, r := check(t, `package x
type Sink interface{ Put([]int) }
type Impl struct{ got []int }
func (m *Impl) Put(s []int) { m.got = s }
var Global Sink
func f() {
	s := make([]int, 1)
	Global.Put(s)
}`)
	s := varByName(t, u, "s")
	// s flows into Impl.Put's parameter and is stored into the
	// receiver; at minimum the CHA edge must exist (param aliases s).
	var param *types.Var
	for _, obj := range u.Info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == "s" && v != s {
			param = v
		}
	}
	if param == nil {
		t.Fatalf("no Put parameter found")
	}
	if len(r.PointsTo(param)) == 0 {
		t.Fatalf("CHA should bind the interface call to Impl.Put")
	}
}

func TestDeterministicIDs(t *testing.T) {
	src := `package x
var G []int
func f() {
	a := make([]int, 1)
	b := &a
	go func() { (*b)[0] = 1 }()
	G = a
}`
	_, r1 := check(t, src)
	_, r2 := check(t, src)
	if len(r1.Objects()) != len(r2.Objects()) {
		t.Fatalf("object counts differ: %d vs %d", len(r1.Objects()), len(r2.Objects()))
	}
	for i := range r1.Objects() {
		o1, o2 := r1.Objects()[i], r2.Objects()[i]
		if o1.Label != o2.Label || o1.Escapes() != o2.Escapes() {
			t.Fatalf("object %d differs: %q/%b vs %q/%b", i, o1.Label, o1.Escapes(), o2.Label, o2.Escapes())
		}
		for _, e := range []EscSet{EscGlobal, EscGoroutine, EscHeap, EscUnknown} {
			if o1.EscapeWhy(e) != o2.EscapeWhy(e) {
				t.Fatalf("why-chain differs for object %d route %b: %q vs %q", i, e, o1.EscapeWhy(e), o2.EscapeWhy(e))
			}
		}
	}
}

func TestAppendKeepsAliasing(t *testing.T) {
	u, r := check(t, `package x
func f() []*int {
	var x int
	var s []*int
	s = append(s, &x)
	return s
}`)
	s := varByName(t, u, "s")
	found := false
	for _, o := range r.PointsTo(s) {
		for _, c := range r.PointsTo(varByName(t, u, "x")) {
			_ = c
		}
		_ = o
	}
	// The shadow of x must be reachable through s's cell: check via
	// the objects' escape — returning s heap-escapes the shadow too.
	for _, obj := range r.Objects() {
		if obj.Kind == KindShadow && obj.Label == "&x" {
			found = obj.Escapes().Has(EscHeap)
		}
	}
	if !found {
		t.Fatalf("&x stored via append should heap-escape when s is returned")
	}
}

func labels(objs []*Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Label
	}
	return out
}
