package pointsto

import "go/types"

// computeEscapes classifies every abstract object against the four
// escape routes by breadth-first traversal from the route's roots
// over the solved points-to graph: an object's payload cell makes its
// contents reachable, so whatever an escaping object holds escapes
// too. Roots are visited in generation order and points-to sets in
// sorted ID order, so the first why-chain and spawn attribution an
// object receives are deterministic.
//
// Two deliberate asymmetries implement the reporting policy:
//
//   - the external object's payload is traversed only by the Unknown
//     route. Foreign code may alias anything with anything, and
//     letting that possibility bleed into the Global or Goroutine
//     routes would mark most of the module shared; EscUnknown already
//     vetoes ownership, which is the sound consequence.
//   - the Goroutine route does not descend through channel payloads:
//     a value received from a channel is owned by the receiving
//     goroutine (the ownership-transfer idiom), not shared state.
//     Sends still heap-escape via the Heap route.
func (g *gen) computeEscapes() {
	// Freeze points-to sets into sorted slices (bitset iteration is
	// already ascending). Nodes collapsed into a cycle representative
	// share the representative's slice.
	g.sorted = make([][]int32, g.numNodes)
	for n := 0; n < g.numNodes; n++ {
		if g.find(n) != n {
			continue
		}
		var ids []int32
		g.pts[n].forEach(func(id int32) { ids = append(ids, id) })
		g.sorted[n] = ids
	}
	for n := 0; n < g.numNodes; n++ {
		if r := g.find(n); r != n {
			g.sorted[n] = g.sorted[r]
		}
	}
	g.captured = make(map[*types.Var]*Spawn)
	g.spawnRootMap = make(map[*types.Func]*Spawn)

	// Global: reachable from a package-level variable.
	for _, v := range g.globalVars {
		why := "package-level var " + qualVar(v)
		for _, id := range g.ptsOf(g.nodeOf(v)) {
			g.markGlobal(g.objects[id], why)
		}
	}

	// Goroutine: reachable by a spawned goroutine.
	for _, rec := range g.spawns {
		why := "shared with the goroutine spawned in " + rec.spawn.Fn
		if rec.callee != nil {
			if _, ok := g.spawnRootMap[rec.callee]; !ok {
				g.spawnRootMap[rec.callee] = rec.spawn
			}
		}
		for _, an := range rec.argNodes {
			for _, id := range g.ptsOf(an) {
				g.markGoroutine(g.objects[id], why, rec.spawn)
			}
		}
		if rec.funNode >= 0 {
			for _, id := range g.ptsOf(rec.funNode) {
				o := g.objects[id]
				g.markGoroutine(o, why, rec.spawn)
				for _, v := range o.captures {
					if _, ok := g.captured[v]; !ok {
						g.captured[v] = rec.spawn
					}
					if sh, ok := g.shadow[v]; ok {
						g.markGoroutine(sh, why+" (captures &"+v.Name()+")", rec.spawn)
					}
					for _, cid := range g.ptsOf(g.nodeOf(v)) {
						g.markGoroutine(g.objects[cid], why+" (captures "+v.Name()+")", rec.spawn)
					}
				}
			}
		}
	}

	// Heap: returned or sent on a channel.
	for _, root := range g.heapRoots {
		verb := "returned from "
		if root.viaChannel {
			verb = "sent on a channel in "
		}
		for _, id := range g.ptsOf(root.node) {
			g.markHeap(g.objects[id], verb+root.fn, root.viaChannel)
		}
	}

	// Unknown: stored where a callee outside the module can see it.
	for _, id := range g.ptsOf(g.extCell) {
		g.markUnknown(g.objects[id], "reaches memory outside the analyzed module")
	}

	for _, o := range g.objects {
		if o.heapChan && !o.heapReturn {
			o.heapViaChannelOnly = true
		}
	}
}

func (g *gen) ptsOf(n int) []int32 {
	if n < 0 || n >= len(g.sorted) {
		return nil
	}
	return g.sorted[n]
}

// The mark functions test the already-marked guard BEFORE building
// the child's why-chain string: the chains exist only for the first
// (deterministic) marking, and concatenating one for every revisit of
// an already-marked object used to dominate the whole analysis'
// allocation profile.

func (g *gen) markGlobal(o *Object, why string) {
	if o.esc.Has(EscGlobal) {
		return
	}
	o.esc |= EscGlobal
	o.whyGlobal = why
	if o.Kind == KindExternal {
		return // see the policy note above
	}
	for _, id := range g.ptsOf(g.cellOf[o.ID]) {
		if c := g.objects[id]; !c.esc.Has(EscGlobal) {
			g.markGlobal(c, why+" → "+c.Label)
		}
	}
}

func (g *gen) markGoroutine(o *Object, why string, sp *Spawn) {
	if o.esc.Has(EscGoroutine) {
		return
	}
	o.esc |= EscGoroutine
	o.whyGoroutine = why
	o.spawn = sp
	if o.Kind == KindExternal || o.isChan {
		return // ext: aliasing unknowable; chan: ownership transfer
	}
	for _, id := range g.ptsOf(g.cellOf[o.ID]) {
		if c := g.objects[id]; !c.esc.Has(EscGoroutine) {
			g.markGoroutine(c, why+" → "+c.Label, sp)
		}
	}
}

func (g *gen) markHeap(o *Object, why string, viaChan bool) {
	seen := (viaChan && o.heapChan) || (!viaChan && o.heapReturn)
	if seen {
		return
	}
	if viaChan {
		o.heapChan = true
	} else {
		o.heapReturn = true
	}
	if !o.esc.Has(EscHeap) {
		o.esc |= EscHeap
		o.whyHeap = why
	}
	if o.Kind == KindExternal {
		return
	}
	for _, id := range g.ptsOf(g.cellOf[o.ID]) {
		c := g.objects[id]
		if (viaChan && c.heapChan) || (!viaChan && c.heapReturn) {
			continue
		}
		g.markHeap(c, why+" → "+c.Label, viaChan)
	}
}

func (g *gen) markUnknown(o *Object, why string) {
	if o.esc.Has(EscUnknown) {
		return
	}
	o.esc |= EscUnknown
	o.whyUnknown = why
	for _, id := range g.ptsOf(g.cellOf[o.ID]) {
		if c := g.objects[id]; !c.esc.Has(EscUnknown) {
			g.markUnknown(c, why+" → "+c.Label)
		}
	}
}

func (g *gen) result() *Result {
	return &Result{
		objects:        g.objects,
		varNode:        g.varNode,
		shadow:         g.shadow,
		pts:            g.sorted,
		captured:       g.captured,
		spawnRoots:     g.spawnRootMap,
		numNodes:       g.numNodes,
		numConstraints: g.numCons,
	}
}

func qualVar(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
