// Package pointsto is the alias layer of the static-analysis suite: a
// stdlib-only, flow-insensitive, context-insensitive Andersen-style
// points-to and escape analysis over the whole module universe. Like
// the rest of internal/analysis it is built on go/ast + go/types
// alone — no golang.org/x/tools, no SSA — so the alias facts that
// gate the PB pipeline's bit-identity run anywhere the Go toolchain
// runs.
//
// The model is the classic inclusion-constraint one:
//
//   - every allocation site (make, new, composite literal, &T{...},
//     function literal, fresh append) is one abstract Object;
//   - every variable of the universe is one node holding a points-to
//     set of Objects;
//   - each Object carries one field-insensitive payload cell standing
//     for all of its fields and elements (a struct collapses into its
//     object, a slice into its backing array, a channel into its
//     element slot);
//   - assignments generate subset constraints between nodes:
//     p = q      copy      pts(p) ⊇ pts(q)
//     p = &x     address   pts(p) ∋ shadow(x), cell(shadow(x)) = x
//     p = *q     load      pts(p) ⊇ cell(o)      for every o ∈ pts(q)
//     *p = q     store     cell(o) ⊇ pts(q)      for every o ∈ pts(p)
//     and calls copy arguments into parameters and results back into
//     the call's left-hand sides (static module calls and
//     class-hierarchy-resolved module interface calls; everything
//     else flows through the external object, the sound bottom).
//
// Channel operations are stores/loads on the channel object's cell,
// so a value sent on a channel aliases every receive from any channel
// the send may reach — exactly the ownership-transfer edge the
// racecheck analyzer needs to see.
//
// The solver (solve) runs the standard worklist algorithm with
// on-the-fly load/store edge materialization. The least fixpoint of
// an inclusion system is unique, so points-to sets are deterministic
// regardless of iteration order; node and object IDs are assigned in
// sorted-package/file/position order so the escape why-chains that
// surface verbatim in diagnostics are byte-stable too.
//
// On top of the fixpoint, escape.go classifies every Object against
// three escape sinks — package-level variables, spawned goroutines,
// and unknown callees — and summarizes, per function, which of its
// allocations leak where. Those summaries power the racecheck
// analyzer ("is this write target shared with a goroutine, and
// spawned where?") and the ownership upgrade in the write-effect fact
// ("is this local provably frame-private?"), replacing the syntactic
// make/new whitelist with a proof.
package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Unit is one parsed, type-checked package fed to the analysis. It
// mirrors analysis.Package structurally so the two packages stay
// decoupled (analysis imports pointsto, never the reverse).
type Unit struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// An ObjKind classifies what an abstract Object stands for.
type ObjKind uint8

const (
	// KindAlloc is a fresh allocation: make, new, a composite literal
	// (value or &-taken), a function literal, or a growing append.
	KindAlloc ObjKind = iota
	// KindShadow is the implicit object backing an address-taken
	// variable: pts(&x) = {shadow(x)} and shadow(x)'s cell is x itself.
	KindShadow
	// KindExternal is the single object standing for all memory the
	// engine cannot see: foreign call results, unknown callees'
	// effects. Anything reaching it escapes unconditionally.
	KindExternal
)

// An EscSet is a bit set of escape routes an Object was proven to
// take.
type EscSet uint8

const (
	// EscGlobal: reachable from a package-level variable.
	EscGlobal EscSet = 1 << iota
	// EscGoroutine: reachable by a spawned goroutine (captured by a
	// go'd function literal, passed to a go'd call, or stored where
	// one of those can see it).
	EscGoroutine
	// EscHeap: outlives its allocating frame by a legitimate route —
	// returned to the caller, stored through a parameter or receiver,
	// or sent on a channel.
	EscHeap
	// EscUnknown: reaches a callee the engine cannot see through; all
	// bets are off.
	EscUnknown
)

// Has reports whether the set contains all bits of e.
func (s EscSet) Has(e EscSet) bool { return s&e == e }

// A Spawn identifies one go statement.
type Spawn struct {
	// Pos is the position of the go keyword.
	Pos token.Pos
	// Fn is the display name of the function containing the spawn
	// ("runner.Evaluate", "dist.startHeartbeat"); diagnostics embed it
	// instead of a file:line so baseline fingerprints survive drift.
	Fn string
	// PkgPath is the import path of the spawning package.
	PkgPath string
	// InLoop is true when the go statement sits inside a for or range
	// statement of its function: the spawn runs more than once, so
	// everything it shares FROM OUTSIDE that loop is shared between
	// the goroutines themselves, not just with the spawner.
	// LoopStart/LoopEnd bracket the outermost enclosing loop; memory
	// allocated inside it is fresh per iteration and per goroutine.
	InLoop    bool
	LoopStart token.Pos
	LoopEnd   token.Pos
}

// SharedAcrossIterations reports whether storage allocated (or
// declared) at pos is one single location from the viewpoint of this
// spawn's goroutines: the spawn repeats (InLoop) and the allocation
// lies outside the spawn's loop, so every iteration's goroutine sees
// the same memory. Allocations inside the loop are per-iteration.
func (s *Spawn) SharedAcrossIterations(pos token.Pos) bool {
	if s == nil || !s.InLoop {
		return false
	}
	return !(s.LoopStart <= pos && pos < s.LoopEnd)
}

// SpawnLoop returns the extent of the outermost for or range
// statement of body enclosing pos (a go keyword), with ok=false when
// pos is not inside a loop. Shared by every Spawn construction site
// so the InLoop bit means the same thing everywhere.
func SpawnLoop(body *ast.BlockStmt, pos token.Pos) (start, end token.Pos, ok bool) {
	if body == nil {
		return token.NoPos, token.NoPos, false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if ok || n == nil {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos < n.End() {
				start, end, ok = n.Pos(), n.End(), true
				return false
			}
		case *ast.FuncLit:
			// A literal's own loops don't wrap the enclosing spawn.
			if !(n.Pos() <= pos && pos < n.End()) {
				return false
			}
		}
		return true
	})
	return start, end, ok
}

// An Object is one abstract memory location.
type Object struct {
	ID   int
	Kind ObjKind
	// Pos is the allocation site (or the shadowed variable's
	// declaration).
	Pos token.Pos
	// Label is a short human-readable description of the site:
	// "make(chan struct{})", "&RowError{...}", "func literal".
	Label string
	// Fn is the display name of the allocating function ("" for
	// package-level allocations and the external object).
	Fn string
	// PkgPath is the import path of the allocating package ("" for the
	// external object). Display names like "main.run" repeat across
	// main packages; (PkgPath, Fn) is the unambiguous pair.
	PkgPath string
	// fnObj is the allocating function's types object (nil at package
	// scope); ownership queries compare against it.
	fnObj *types.Func

	esc EscSet
	// why records, per escape bit, the chain that established it.
	whyGlobal    string
	whyGoroutine string
	whyHeap      string
	whyUnknown   string
	// spawn is the (deterministically first) go statement a
	// goroutine-escaping object was captured by.
	spawn *Spawn
	// heapViaChannelOnly is true while every heap route the object
	// took was a channel send: ownership handed to the receiver, not
	// shared mutation. A later return/param-store route clears it.
	heapViaChannelOnly bool
	heapReturn         bool
	heapChan           bool
	// isChan marks channel allocations; goroutine-escape traversal
	// does not descend through their payload (a value received from a
	// channel is owned by the receiver, not shared).
	isChan bool
	// captures lists the free variables of a function-literal object,
	// in first-use order; when the closure reaches a go statement they
	// become goroutine-shared.
	captures []*types.Var
}

// Escapes returns the object's escape route set.
func (o *Object) Escapes() EscSet { return o.esc }

// EscapeWhy returns the chain explaining route e ("" if absent).
func (o *Object) EscapeWhy(e EscSet) string {
	switch e {
	case EscGlobal:
		return o.whyGlobal
	case EscGoroutine:
		return o.whyGoroutine
	case EscHeap:
		return o.whyHeap
	case EscUnknown:
		return o.whyUnknown
	}
	return ""
}

// SpawnSite returns the go statement that shares a goroutine-escaping
// object, or nil.
func (o *Object) SpawnSite() *Spawn { return o.spawn }

// Result is the computed analysis: the object universe, the points-to
// sets, and the escape classification.
type Result struct {
	objects []*Object

	// varNode maps every variable of the universe to its node.
	varNode map[*types.Var]int
	// shadow maps address-taken variables to their shadow object.
	shadow map[*types.Var]*Object

	// pts is the solved points-to set per node, as sorted object IDs.
	pts [][]int32

	// captured maps a variable to the spawns whose goroutine can see
	// it by closure capture (free variable of a go'd function
	// literal). Writes to such a variable race with the goroutine even
	// though no pointer is involved.
	captured map[*types.Var]*Spawn

	// spawnRoots maps functions invoked directly by a go statement
	// (go pkg.F(...), go recv.M(...)) to that spawn; the fact engine
	// extends this over the call graph.
	spawnRoots map[*types.Func]*Spawn

	// globalsWritten maps package-level variables to true when any
	// spawned function literal in the universe writes them; racecheck
	// uses it to decide whether a global is goroutine-shared at all.
	// (Conservatively includes writes from any function a go statement
	// can reach only via the fact engine's spawn propagation.)

	// stats
	numNodes       int
	numConstraints int
	iterations     int
}

// Objects returns every abstract object in deterministic ID order.
func (r *Result) Objects() []*Object { return r.objects }

// NumNodes returns the constraint-graph size (for -stats).
func (r *Result) NumNodes() int { return r.numNodes }

// NumConstraints returns the number of generated constraints.
func (r *Result) NumConstraints() int { return r.numConstraints }

// PointsTo returns the abstract objects v may point to, in ID order.
func (r *Result) PointsTo(v *types.Var) []*Object {
	n, ok := r.varNode[v]
	if !ok {
		return nil
	}
	ids := r.pts[n]
	out := make([]*Object, len(ids))
	for i, id := range ids {
		out[i] = r.objects[id]
	}
	return out
}

// CapturedBy returns the spawn whose goroutine captures v as a free
// variable, or nil. A write to such a variable in either frame is a
// candidate race.
func (r *Result) CapturedBy(v *types.Var) *Spawn {
	return r.captured[v]
}

// SharedWithGoroutine reports whether writing *through* v can touch
// memory a spawned goroutine also reaches, returning the spawn. Used
// for indirect writes (the lvalue path crossed a pointer, slice, map,
// or channel).
func (r *Result) SharedWithGoroutine(v *types.Var) *Spawn {
	for _, o := range r.PointsTo(v) {
		if o.esc.Has(EscGoroutine) {
			return o.spawn
		}
	}
	return nil
}

// AddrSharedWithGoroutine reports whether v's own storage is visible
// to a spawned goroutine because its address was taken and escaped
// there. Used for direct writes (v = ...).
func (r *Result) AddrSharedWithGoroutine(v *types.Var) *Spawn {
	o, ok := r.shadow[v]
	if !ok {
		return nil
	}
	if o.esc.Has(EscGoroutine) {
		return o.spawn
	}
	return nil
}

// SpawnRoot returns the spawn for a function invoked directly by a go
// statement somewhere in the universe, or nil. The fact engine
// propagates this over the call graph (a callee of a spawned function
// also runs on that goroutine).
func (r *Result) SpawnRoot(fn *types.Func) *Spawn { return r.spawnRoots[fn] }

// Owned reports whether every object v may point to is a fresh
// allocation that provably never leaves the frame of fn (or reaches
// fn only by being returned from a callee): no global, goroutine, or
// unknown escape route, and not flowing into any of fn's own
// parameters (which would mean the caller holds it too). Writes
// through an owned variable are invisible outside fn — the
// points-to-powered replacement for the syntactic make/new whitelist.
//
// params lists fn's parameter/receiver/named-result variables; the
// caller (the write-effect fact) already has them at hand.
func (r *Result) Owned(v *types.Var, fn *types.Func, params map[*types.Var]bool) bool {
	if params[v] {
		// A parameter (or receiver/named result) is never provably
		// owned: callers outside the analyzed universe may pass it
		// anything, and the flow-insensitive set cannot see rebinding.
		return false
	}
	n, ok := r.varNode[v]
	if !ok {
		return false
	}
	ids := r.pts[n]
	if len(ids) == 0 {
		// An empty set is absence of evidence, not proof of
		// ownership: v may alias a parameter whose callers are
		// outside the universe.
		return false
	}
	for _, id := range ids {
		o := r.objects[id]
		if o.Kind != KindAlloc {
			return false
		}
		if o.esc.Has(EscGlobal) || o.esc.Has(EscGoroutine) || o.esc.Has(EscUnknown) {
			return false
		}
		if o.fnObj != fn {
			// Allocated elsewhere: only acceptable when it reached fn
			// by a return (heap escape whose every route was a
			// return), never through fn's own parameters.
			if o.esc.Has(EscHeap) && o.heapViaChannelOnly {
				return false
			}
			if !o.esc.Has(EscHeap) {
				return false
			}
			for p := range params {
				if r.contains(p, id) {
					return false
				}
			}
		}
	}
	return true
}

// contains reports whether object id is in pts(v).
func (r *Result) contains(v *types.Var, id int32) bool {
	n, ok := r.varNode[v]
	if !ok {
		return false
	}
	for _, x := range r.pts[n] {
		if x == id {
			return true
		}
	}
	return false
}

// Analyze runs the whole pipeline — constraint generation, fixpoint,
// escape classification — over the universe. Units are processed in
// the given order; callers pass them sorted by path so IDs and
// why-chains are deterministic.
func Analyze(units []*Unit) *Result {
	g := newGen()
	for _, u := range units {
		g.collectPackage(u)
	}
	for _, fc := range g.funcs {
		g.genFunc(fc)
	}
	g.solve()
	g.computeEscapes()
	return g.result()
}
