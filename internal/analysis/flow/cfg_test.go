package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file, finds the first function
// declaration, and builds its CFG.
func buildFunc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body)
		}
	}
	t.Fatal("no function declaration")
	return nil
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// exitPreds returns the kinds of the exit block's predecessors.
func exitPreds(g *CFG) []string {
	var kinds []string
	for _, p := range g.Exit.Preds {
		kinds = append(kinds, p.Kind)
	}
	return kinds
}

func TestBuildStraightLine(t *testing.T) {
	g := buildFunc(t, "x := 1\n_ = x")
	want := "b0 entry [0] -> b2\nb1 exit [0]\nb2 body [2] -> b1\n"
	if got := g.String(); got != want {
		t.Errorf("dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestBuildNilBody(t *testing.T) {
	g := Build(nil)
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable from entry in empty graph")
	}
}

func TestBuildIfElse(t *testing.T) {
	g := buildFunc(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// entry -> body(cond) -> then/else -> after -> exit
	var cond, then, els, after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "body":
			cond = b
		case "if.then":
			then = b
		case "if.else":
			els = b
		case "if.after":
			after = b
		}
	}
	if cond == nil || then == nil || els == nil || after == nil {
		t.Fatalf("missing blocks in:\n%s", g.String())
	}
	if len(cond.Succs) != 2 {
		t.Errorf("cond block has %d succs, want 2 (then, else)", len(cond.Succs))
	}
	// cond holds: init assign + the condition expression.
	if len(cond.Nodes) != 2 {
		t.Errorf("cond block has %d nodes, want 2", len(cond.Nodes))
	}
	if _, ok := cond.Nodes[1].(ast.Expr); !ok {
		t.Errorf("cond block's last node is %T, want the condition expression", cond.Nodes[1])
	}
	for _, b := range []*Block{then, els} {
		if len(b.Succs) != 1 || b.Succs[0] != after {
			t.Errorf("%s does not flow to if.after", b.Kind)
		}
	}
}

func TestBuildIfWithoutElse(t *testing.T) {
	g := buildFunc(t, "if true {\n\t_ = 1\n}")
	for _, b := range g.Blocks {
		if b.Kind == "body" {
			if len(b.Succs) != 2 {
				t.Errorf("if-no-else guard has %d succs, want 2 (then + after)", len(b.Succs))
			}
		}
	}
}

func TestBuildForLoop(t *testing.T) {
	g := buildFunc(t, `
for i := 0; i < 10; i++ {
	_ = i
}`)
	var head, body, post, after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.body":
			body = b
		case "for.post":
			post = b
		case "for.after":
			after = b
		}
	}
	if head == nil || body == nil || post == nil || after == nil {
		t.Fatalf("missing loop blocks in:\n%s", g.String())
	}
	if !reaches(body, head) {
		t.Error("no back edge from body to head")
	}
	if len(body.Succs) != 1 || body.Succs[0] != post {
		t.Error("body must continue through the post block")
	}
	if !reaches(head, after) {
		t.Error("loop exit edge missing")
	}
}

func TestBuildInfiniteFor(t *testing.T) {
	g := buildFunc(t, `
for {
	_ = 1
}
_ = 2`)
	// No condition: the only way past the loop is a break, so the
	// trailing statement and exit are unreachable from entry.
	if reaches(g.Entry, g.Exit) {
		t.Errorf("exit reachable across an infinite loop:\n%s", g.String())
	}
}

func TestBuildForBreakContinue(t *testing.T) {
	g := buildFunc(t, `
for i := 0; i < 10; i++ {
	if i == 2 {
		continue
	}
	if i == 5 {
		break
	}
	_ = i
}`)
	var head, post, after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.post":
			post = b
		case "for.after":
			after = b
		}
	}
	// continue targets the post block, break targets after.
	foundCont, foundBrk := false, false
	for _, p := range post.Preds {
		if p.Kind == "if.then" {
			foundCont = true
		}
	}
	for _, p := range after.Preds {
		if p.Kind == "if.then" {
			foundBrk = true
		}
	}
	if !foundCont {
		t.Errorf("continue does not reach for.post:\n%s", g.String())
	}
	if !foundBrk {
		t.Errorf("break does not reach for.after:\n%s", g.String())
	}
	if head == nil {
		t.Fatal("no head")
	}
}

func TestBuildRange(t *testing.T) {
	g := buildFunc(t, `
xs := []int{1, 2}
for i, v := range xs {
	_, _ = i, v
}`)
	var head, body, after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "range.head":
			head = b
		case "range.body":
			body = b
		case "range.after":
			after = b
		}
	}
	if head == nil || body == nil || after == nil {
		t.Fatalf("missing range blocks:\n%s", g.String())
	}
	// Head carries the operand expression and the RangeStmt marker.
	if len(head.Nodes) != 2 {
		t.Errorf("range head has %d nodes, want 2 (operand + marker)", len(head.Nodes))
	}
	if _, ok := head.Nodes[1].(*ast.RangeStmt); !ok {
		t.Errorf("range head marker is %T, want *ast.RangeStmt", head.Nodes[1])
	}
	if !reaches(body, head) || !reaches(head, after) {
		t.Error("range loop shape broken")
	}
}

func TestBuildSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `
x := 1
switch x {
case 1:
	_ = "one"
	fallthrough
case 2:
	_ = "two"
default:
	_ = "many"
}`)
	var cases []*Block
	var after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "case":
			cases = append(cases, b)
		case "switch.after":
			after = b
		}
	}
	if len(cases) != 3 {
		t.Fatalf("got %d case blocks, want 3:\n%s", len(cases), g.String())
	}
	// fallthrough: case 1's body flows into case 2's block.
	if !reaches(cases[0], cases[1]) {
		t.Errorf("fallthrough edge missing:\n%s", g.String())
	}
	// With a default present the dispatcher must NOT bypass the cases.
	for _, p := range after.Preds {
		if p.Kind == "body" {
			t.Error("switch with default has a direct dispatcher->after edge")
		}
	}
}

func TestBuildSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, `
switch x := 1; x {
case 1:
	_ = x
}`)
	var after *Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.after" {
			after = b
		}
	}
	// No default: the dispatcher may skip every case.
	direct := false
	for _, p := range after.Preds {
		if p.Kind == "body" {
			direct = true
		}
	}
	if !direct {
		t.Errorf("switch without default lacks dispatcher->after edge:\n%s", g.String())
	}
}

func TestBuildTypeSwitch(t *testing.T) {
	g := buildFunc(t, `
var v any = 1
switch t := v.(type) {
case int:
	_ = t
case string:
	_ = t
}`)
	n := 0
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d case blocks, want 2:\n%s", n, g.String())
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestBuildSelect(t *testing.T) {
	g := buildFunc(t, `
ch := make(chan int)
done := make(chan struct{})
select {
case v := <-ch:
	_ = v
case <-done:
	return
}`)
	n := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d select branches, want 2:\n%s", n, g.String())
	}
	// The return branch reaches exit; the other reaches select.after.
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestBuildEmptySelectBlocksForever(t *testing.T) {
	g := buildFunc(t, "select {}\n_ = 1")
	if reaches(g.Entry, g.Exit) {
		t.Errorf("exit reachable past select{}:\n%s", g.String())
	}
}

func TestBuildGotoBackward(t *testing.T) {
	g := buildFunc(t, `
i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}`)
	var target *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			target = b
		}
	}
	if target == nil {
		t.Fatalf("no label block:\n%s", g.String())
	}
	// The goto inside if.then must edge back to the label block.
	back := false
	for _, p := range target.Preds {
		if p.Kind == "if.then" {
			back = true
		}
	}
	if !back {
		t.Errorf("goto back edge missing:\n%s", g.String())
	}
}

func TestBuildGotoForward(t *testing.T) {
	g := buildFunc(t, `
if true {
	goto out
}
_ = 1
out:
	_ = 2`)
	var target *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.out" {
			target = b
		}
	}
	if target == nil {
		t.Fatalf("no label block:\n%s", g.String())
	}
	fromThen := false
	for _, p := range target.Preds {
		if p.Kind == "if.then" {
			fromThen = true
		}
	}
	if !fromThen {
		t.Errorf("forward goto not patched to its label:\n%s", g.String())
	}
}

func TestBuildLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}`)
	// continue outer must land on the OUTER post block; break outer on
	// the outer after block. Identify them: the outer loop is built
	// from the label block.
	var outerPost, outerAfter *Block
	posts, afters := []*Block{}, []*Block{}
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.post":
			posts = append(posts, b)
		case "for.after":
			afters = append(afters, b)
		}
	}
	if len(posts) != 2 || len(afters) != 2 {
		t.Fatalf("got %d posts, %d afters, want 2 each:\n%s", len(posts), len(afters), g.String())
	}
	// The outer loop was entered first, so its post/after have lower
	// indices... post blocks are created during body construction:
	// outer post is created before the inner loop's. Outer after too.
	outerPost, outerAfter = posts[0], afters[0]
	fromInnerThen := func(b *Block) bool {
		for _, p := range b.Preds {
			if p.Kind == "if.then" {
				return true
			}
		}
		return false
	}
	if !fromInnerThen(outerPost) {
		t.Errorf("continue outer does not reach the outer post block:\n%s", g.String())
	}
	if !fromInnerThen(outerAfter) {
		t.Errorf("break outer does not reach the outer after block:\n%s", g.String())
	}
}

func TestBuildLabeledPlainStatementBreak(t *testing.T) {
	g := buildFunc(t, `
blk:
	{
		if true {
			break blk
		}
		_ = 1
	}
_ = 2`)
	var after *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.after" {
			after = b
		}
	}
	if after == nil {
		t.Fatalf("no label.after block:\n%s", g.String())
	}
	ok := false
	for _, p := range after.Preds {
		if p.Kind == "if.then" {
			ok = true
		}
	}
	if !ok {
		t.Errorf("break LABEL on a plain labeled block does not exit it:\n%s", g.String())
	}
}

func TestBuildReturnAndPanic(t *testing.T) {
	g := buildFunc(t, `
if true {
	return
}
panic("boom")`)
	var retBlock, panicBlock *Block
	for _, b := range g.Blocks {
		if b.Return != nil {
			retBlock = b
		}
		if b.Panics {
			panicBlock = b
		}
	}
	if retBlock == nil {
		t.Fatal("no block carries the return statement")
	}
	if panicBlock == nil {
		t.Fatal("no block marked as panicking")
	}
	for _, b := range []*Block{retBlock, panicBlock} {
		found := false
		for _, s := range b.Succs {
			if s == g.Exit {
				found = true
			}
		}
		if !found {
			t.Errorf("%s block lacks an exit edge", b.Kind)
		}
	}
	// The fall-off-the-end path after the panic is unreachable: the
	// panic block itself must be exit's only non-return predecessor.
	for _, k := range exitPreds(g) {
		_ = k
	}
}

func TestBuildDeferAndGoAreStraightLine(t *testing.T) {
	g := buildFunc(t, `
defer func() { _ = 1 }()
go func() { _ = 2 }()
_ = 3`)
	// All three land in one body block.
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "body" {
			body = b
		}
	}
	if body == nil || len(body.Nodes) != 3 {
		t.Fatalf("defer/go/assign should share one block:\n%s", g.String())
	}
	if len(body.Succs) != 1 || body.Succs[0] != g.Exit {
		t.Error("body should flow straight to exit")
	}
}

func TestBuildUnreachableAfterReturn(t *testing.T) {
	g := buildFunc(t, "return\n_ = 1")
	// The statement after return must sit in a block unreachable from
	// entry.
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && len(b.Nodes) > 0 {
			if reaches(g.Entry, b) {
				t.Errorf("post-return code reachable:\n%s", g.String())
			}
			return
		}
	}
	t.Fatalf("no unreachable block holds the dead statement:\n%s", g.String())
}

func TestBuildSelectSendAndDefault(t *testing.T) {
	// A send arm is a statement, not a binding: the CommClause's
	// channel operation must land inside its own select.case block so
	// chansafe sees the send on the branch that performs it.
	g := buildFunc(t, `
ch := make(chan int)
v := 1
select {
case ch <- v:
	v++
default:
	v--
}
_ = v`)
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("got %d select branches, want 2 (send + default):\n%s", len(cases), g.String())
	}
	// The send arm's block holds the comm statement plus the branch
	// body, and every arm rejoins at select.after on the way to exit.
	for _, c := range cases {
		if len(c.Nodes) == 0 {
			t.Errorf("select branch block is empty:\n%s", g.String())
		}
		if !reaches(c, g.Exit) {
			t.Errorf("select branch cannot reach exit:\n%s", g.String())
		}
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestBuildGoInLoop(t *testing.T) {
	// The spawn-in-loop shape racecheck's SharedAcrossIterations
	// evidence depends on: the go statement is an ordinary node inside
	// the loop body, and the back edge makes it re-executable.
	g := buildFunc(t, `
for i := 0; i < 4; i++ {
	go func() { _ = i }()
}`)
	var head, body *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.body":
			body = b
		}
	}
	if head == nil || body == nil {
		t.Fatalf("missing loop blocks:\n%s", g.String())
	}
	found := false
	for _, n := range body.Nodes {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("go statement not in the loop body block:\n%s", g.String())
	}
	if !reaches(body, head) {
		t.Error("no back edge from loop body; the spawn would not repeat")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestBuildFuncLitBodyIsOwnCFG(t *testing.T) {
	// Rules analyzing spawned bodies build a SEPARATE CFG from the
	// FuncLit's body. A go'd literal containing channel operations and
	// a conditional must produce a well-formed graph of its own, with
	// the enclosing function's graph unchanged (the go statement stays
	// a straight-line node there).
	src := `package p

func f(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-done:
				return
			}
		}
	}()
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "lit.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
			return false
		}
		return true
	})
	if lit == nil {
		t.Fatal("no function literal in source")
	}
	outer := Build(file.Decls[0].(*ast.FuncDecl).Body)
	inner := Build(lit.Body)

	// Outer: the go statement is one straight-line node to exit.
	var outerBody *Block
	for _, b := range outer.Blocks {
		if b.Kind == "body" {
			outerBody = b
		}
	}
	if outerBody == nil || len(outerBody.Nodes) != 1 {
		t.Fatalf("outer body should hold exactly the go statement:\n%s", outer.String())
	}
	if _, ok := outerBody.Nodes[0].(*ast.GoStmt); !ok {
		t.Fatalf("outer body node is %T, want *ast.GoStmt", outerBody.Nodes[0])
	}

	// Inner: the literal's infinite for + select produce their own
	// blocks; the return arm makes the inner exit reachable.
	var sawCase bool
	for _, b := range inner.Blocks {
		if b.Kind == "select.case" {
			sawCase = true
		}
	}
	if !sawCase {
		t.Errorf("spawned body CFG missing select branches:\n%s", inner.String())
	}
	if !reaches(inner.Entry, inner.Exit) {
		t.Errorf("return inside the spawned body should reach its own exit:\n%s", inner.String())
	}
}

func TestBuildRangeOverChannel(t *testing.T) {
	// range over a channel is the receive-until-closed idiom; it must
	// take the same head/body/after shape as a slice range so the
	// dataflow rules treat the implicit receives as loop-carried.
	g := buildFunc(t, `
ch := make(chan int)
sum := 0
for v := range ch {
	sum += v
}
_ = sum`)
	var head, body, after *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "range.head":
			head = b
		case "range.body":
			body = b
		case "range.after":
			after = b
		}
	}
	if head == nil || body == nil || after == nil {
		t.Fatalf("missing range blocks:\n%s", g.String())
	}
	if !reaches(body, head) || !reaches(head, after) || !reaches(g.Entry, g.Exit) {
		t.Error("channel range loop shape broken")
	}
}

func TestStringStable(t *testing.T) {
	body := `
for i := 0; i < 3; i++ {
	if i == 1 {
		break
	}
}`
	a := buildFunc(t, body).String()
	b := buildFunc(t, body).String()
	if a != b {
		t.Errorf("dump not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "for.head") {
		t.Errorf("dump missing block kinds:\n%s", a)
	}
}
