package flow

// dataflow.go is the generic half of the flow layer: a worklist
// fixpoint solver over the CFGs cfg.go builds. A rule supplies a
// Problem — the lattice boundary/bottom elements plus a transfer
// function — and gets back the In/Out state of every block at the
// least fixpoint.
//
// Convergence contract: the solver terminates whenever the problem's
// lattice has finite height (every strictly ascending Join chain is
// finite) and Transfer is monotone (joining inputs never shrinks
// outputs). Both current clients — lockflow's hold-depth sets and
// errflow's unchecked-assignment maps — draw from finite power-set
// lattices, and dataflow_test.go pins termination and join
// monotonicity for exactly those state shapes on seeded CFGs.

// A State is one element of a dataflow lattice. Implementations are
// treated as immutable by the solver: Join must return a fresh (or
// shared-and-never-mutated) value rather than modifying either
// operand.
type State interface {
	// Join returns the least upper bound of the receiver and other.
	Join(other State) State
	// Equal reports whether two states are the same lattice element;
	// the solver uses it to detect the fixpoint.
	Equal(other State) bool
}

// A Problem describes one dataflow analysis over a CFG.
type Problem interface {
	// Boundary is the state entering the graph: at Entry for a forward
	// problem, at Exit for a backward one.
	Boundary() State
	// Bottom is the join identity seeded at every other block before
	// iteration ("unreachable/no information yet").
	Bottom() State
	// Transfer computes the state leaving block b (in flow direction)
	// from the state entering it. It must not mutate in.
	Transfer(b *Block, in State) State
	// Backward reverses the edge direction: In becomes the join over
	// successors and iteration starts from Exit.
	Backward() bool
}

// A Result holds the fixpoint: for every block, the state entering it
// (In) and leaving it (Out), both in flow direction.
type Result struct {
	In  map[*Block]State
	Out map[*Block]State
}

// Solve runs the worklist algorithm to the least fixpoint and returns
// the per-block states. Blocks unreachable in the flow direction stay
// at Bottom.
func Solve(g *CFG, p Problem) *Result {
	res := &Result{
		In:  make(map[*Block]State, len(g.Blocks)),
		Out: make(map[*Block]State, len(g.Blocks)),
	}
	start := g.Entry
	if p.Backward() {
		start = g.Exit
	}
	for _, b := range g.Blocks {
		res.In[b] = p.Bottom()
	}
	res.In[start] = p.Boundary()

	// preds/succs in flow direction.
	into := func(b *Block) []*Block {
		if p.Backward() {
			return b.Succs
		}
		return b.Preds
	}
	outof := func(b *Block) []*Block {
		if p.Backward() {
			return b.Preds
		}
		return b.Succs
	}

	// Worklist seeded with every block in index order (a reverse
	// postorder approximation: the builder emits blocks roughly in
	// control order, so forward problems converge in few passes).
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := res.In[b]
		if preds := into(b); len(preds) > 0 {
			in = p.Bottom()
			for _, q := range preds {
				if o, ok := res.Out[q]; ok {
					in = in.Join(o)
				}
			}
			if b == start {
				in = in.Join(p.Boundary())
			}
			res.In[b] = in
		}
		out := p.Transfer(b, in)
		if prev, ok := res.Out[b]; ok && prev.Equal(out) {
			continue
		}
		res.Out[b] = out
		for _, s := range outof(b) {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
