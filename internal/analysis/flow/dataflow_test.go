package flow

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// setState is a power-set lattice element over small integers — the
// same shape (finite set union) both production rules use. It doubles
// as the monotonicity test subject.
type setState map[int]bool

func (s setState) Join(other State) State {
	o := other.(setState)
	out := make(setState, len(s)+len(o))
	for k := range s {
		out[k] = true
	}
	for k := range o {
		out[k] = true
	}
	return out
}

func (s setState) Equal(other State) bool {
	o := other.(setState)
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

func (s setState) String() string {
	keys := make([]int, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprint(k)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// genProblem is a "generated blocks reach here" forward problem: each
// block adds its own index to the state. On a cyclic CFG the fixpoint
// is exactly forward reachability, which makes assertions easy.
type genProblem struct {
	transfers int // how many Transfer calls ran (termination evidence)
}

func (p *genProblem) Boundary() State { return setState{} }
func (p *genProblem) Bottom() State   { return setState{} }
func (p *genProblem) Backward() bool  { return false }
func (p *genProblem) Transfer(b *Block, in State) State {
	p.transfers++
	out := in.Join(setState{b.Index: true}).(setState)
	return out
}

func TestSolveTerminatesOnLoops(t *testing.T) {
	// Nested loops plus a goto back edge: the graph is as cyclic as
	// real code gets. The solver must reach a fixpoint in a bounded
	// number of transfer evaluations.
	g := buildFunc(t, `
i := 0
loop:
	for ; i < 10; i++ {
		for j := 0; j < i; j++ {
			if j == 3 {
				continue loop
			}
		}
	}
	if i < 20 {
		goto loop
	}`)
	p := &genProblem{}
	res := Solve(g, p)

	// Termination with a sane bound: each block can be re-evaluated at
	// most once per lattice growth, and the lattice height is the
	// block count — so transfers must stay well under |B|^2.
	bound := len(g.Blocks) * len(g.Blocks)
	if p.transfers == 0 || p.transfers > bound {
		t.Fatalf("solver ran %d transfers on %d blocks (bound %d): did not terminate cleanly",
			p.transfers, len(g.Blocks), bound)
	}

	// Fixpoint check: every block's Out must equal Transfer(In) and
	// every edge must satisfy In(succ) >= Out(pred).
	check := &genProblem{}
	for _, b := range g.Blocks {
		if out := check.Transfer(b, res.In[b]); !res.Out[b].Equal(out) {
			t.Errorf("b%d: Out is not Transfer(In): %v vs %v", b.Index, res.Out[b], out)
		}
		for _, s := range b.Succs {
			joined := res.In[s].Join(res.Out[b])
			if !joined.Equal(res.In[s]) {
				t.Errorf("edge b%d->b%d: In(succ) does not absorb Out(pred): %v vs %v",
					b.Index, s.Index, res.In[s], res.Out[b])
			}
		}
	}

	// The exit's In must contain every block on some entry-to-exit
	// path — in particular the loop bodies.
	exitIn := res.In[g.Exit].(setState)
	for _, b := range g.Blocks {
		if b.Kind == "for.body" && !exitIn[b.Index] {
			t.Errorf("loop body b%d missing from exit state %v", b.Index, exitIn)
		}
	}
}

func TestSolveUnreachableStaysBottom(t *testing.T) {
	g := buildFunc(t, "return\n_ = 1")
	p := &genProblem{}
	res := Solve(g, p)
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			if got := res.In[b].(setState); len(got) != 0 {
				t.Errorf("unreachable block b%d has non-bottom in-state %v", b.Index, got)
			}
		}
	}
}

func TestSolveBackward(t *testing.T) {
	// Backward "reaches exit" analysis: walking from Exit against the
	// edges, the entry must accumulate exit-side blocks.
	g := buildFunc(t, `
if true {
	return
}
_ = 1`)
	p := &backProblem{}
	res := Solve(g, p)
	entryIn := res.In[g.Entry].(setState)
	if !entryIn[g.Exit.Index] {
		t.Errorf("backward solve: entry does not see exit: %v", entryIn)
	}
}

type backProblem struct{}

func (p *backProblem) Boundary() State { return setState{} }
func (p *backProblem) Bottom() State   { return setState{} }
func (p *backProblem) Backward() bool  { return true }
func (p *backProblem) Transfer(b *Block, in State) State {
	return in.Join(setState{b.Index: true})
}

// TestJoinMonotonicity pins the lattice laws the solver's termination
// argument rests on: Join is idempotent, commutative, associative,
// and monotone (a <= a ⊔ b), checked over a seeded family of states.
func TestJoinMonotonicity(t *testing.T) {
	mk := func(xs ...int) setState {
		s := make(setState)
		for _, x := range xs {
			s[x] = true
		}
		return s
	}
	states := []setState{mk(), mk(1), mk(2), mk(1, 2), mk(3, 4), mk(1, 2, 3, 4)}
	leq := func(a, b setState) bool { return b.Join(a).Equal(b) }

	for _, a := range states {
		if !a.Join(a).Equal(a) {
			t.Errorf("join not idempotent at %v", a)
		}
		for _, b := range states {
			ab := a.Join(b)
			if !ab.Equal(b.Join(a)) {
				t.Errorf("join not commutative at %v, %v", a, b)
			}
			if !leq(a, ab.(setState)) || !leq(b, ab.(setState)) {
				t.Errorf("join not an upper bound at %v, %v", a, b)
			}
			for _, c := range states {
				if !a.Join(b).Join(c).Equal(a.Join(b.Join(c))) {
					t.Errorf("join not associative at %v, %v, %v", a, b, c)
				}
			}
		}
	}

	// Transfer monotonicity for the test problem: in1 <= in2 implies
	// Transfer(in1) <= Transfer(in2) on every block of a seeded CFG.
	g := buildFunc(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}")
	p := &genProblem{}
	for _, b := range g.Blocks {
		for _, a := range states {
			for _, c := range states {
				if !leq(a, c) {
					continue
				}
				ta := p.Transfer(b, a).(setState)
				tc := p.Transfer(b, c).(setState)
				if !leq(ta, tc) {
					t.Errorf("transfer not monotone on b%d: %v <= %v but %v !<= %v",
						b.Index, a, c, ta, tc)
				}
			}
		}
	}
}

// TestSolveDeterministic pins that two solves of the same problem over
// the same graph yield identical states — the solver must not depend
// on map iteration order.
func TestSolveDeterministic(t *testing.T) {
	body := `
x := 0
for i := 0; i < 4; i++ {
	switch {
	case i == 1:
		x = 1
	case i == 2:
		continue
	default:
		x = 3
	}
}
_ = x`
	g := buildFunc(t, body)
	r1 := Solve(g, &genProblem{})
	r2 := Solve(g, &genProblem{})
	for _, b := range g.Blocks {
		if !r1.In[b].Equal(r2.In[b]) || !r1.Out[b].Equal(r2.Out[b]) {
			t.Errorf("b%d states differ across solves", b.Index)
		}
	}
}
