// Package flow provides the intraprocedural control-flow layer of the
// static-analysis suite: an AST-based CFG builder and a generic
// worklist dataflow solver (dataflow.go). Like the rest of
// internal/analysis it is stdlib-only — go/ast and go/token, no
// golang.org/x/tools — so the flow-sensitive rules (lockflow, errflow)
// run anywhere the Go toolchain runs.
//
// The CFG deliberately stays at statement granularity. Each Block
// holds a sequence of *atomic* nodes — simple statements plus the
// guard expressions of compound statements — and compound statements
// never appear whole: an if's condition lands in the branching block
// while its bodies become successor blocks. A rule's transfer
// function therefore walks Block.Nodes linearly and never recurses
// into nested control flow; nested *function literals* are the one
// kind of nesting a node can still contain, and rules decide how to
// treat those (both current rules skip or summarize them).
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body. Entry and
// Exit are synthetic empty blocks: Entry's successor is the first
// real block, and every return, panic, and fall-off-the-end path has
// an edge to Exit.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// A Block is one straight-line run of atomic nodes. Nodes holds, in
// evaluation order: simple statements (assignments, expression
// statements, send/inc-dec/decl/defer/go/return statements) and the
// guard expressions of the compound statement that terminates the
// block (an if/for condition, a switch tag, a range operand, a case
// clause's expression list). Control transfers only at the end of the
// block, along Succs.
type Block struct {
	Index int
	// Kind labels what the block models ("entry", "exit", "body",
	// "if.then", "for.head", ...) for dumps and tests; rules should
	// not branch on it.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Return is the return statement that terminates the block, if
	// any: its edge to Exit models a normal return path.
	Return *ast.ReturnStmt
	// Panics marks a block terminated by a call to the builtin panic:
	// its edge to Exit models stack unwinding, not a normal return,
	// and rules that police "every return path" typically skip it.
	Panics bool
}

// addEdge links b -> s exactly once.
func addEdge(b, s *Block) {
	for _, e := range b.Succs {
		if e == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// builder carries the state of one Build call.
type builder struct {
	cfg *CFG

	// loops is the stack of enclosing breakable/continuable targets.
	loops []loopFrame

	// labels maps label names to their targets; gotos seen before the
	// label definition are patched at the end.
	labels map[string]*labelInfo
}

type loopFrame struct {
	label string // "" for unlabeled
	brk   *Block // break target (nil when break is not legal, e.g. plain labeled stmt)
	cont  *Block // continue target (nil outside loops)
}

type labelInfo struct {
	target  *Block   // goto target: where the labeled statement starts
	pending []*Block // blocks that issued goto before the label existed
}

// Build constructs the CFG of one function body. body may be the body
// of a FuncDecl or a FuncLit; a nil body yields a two-block graph
// (entry -> exit).
func Build(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	cur := b.newBlock("body")
	addEdge(b.cfg.Entry, cur)
	if body != nil {
		cur = b.stmtList(body.List, cur)
	}
	// Falling off the end of the body is an implicit return.
	addEdge(cur, b.cfg.Exit)
	// Patch forward gotos whose labels never materialized (illegal Go,
	// but the builder must not crash on it): route them to exit.
	for _, li := range b.labels {
		for _, from := range li.pending {
			if li.target != nil {
				addEdge(from, li.target)
			} else {
				addEdge(from, b.cfg.Exit)
			}
		}
		li.pending = nil
	}
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// dead returns a fresh block with no predecessors: the continuation
// after a terminator (return, goto, panic). Anything appended to it is
// unreachable and the solver will keep it at bottom.
func (b *builder) dead() *Block { return b.newBlock("unreachable") }

func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt threads one statement through the graph: it extends (or
// branches from) cur and returns the block where control continues.
func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		return b.ifStmt(s, cur)

	case *ast.ForStmt:
		return b.forStmt(s, cur, "")

	case *ast.RangeStmt:
		return b.rangeStmt(s, cur, "")

	case *ast.SwitchStmt:
		return b.switchStmt(s, cur, "")

	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(s, cur, "")

	case *ast.SelectStmt:
		return b.selectStmt(s, cur, "")

	case *ast.LabeledStmt:
		return b.labeledStmt(s, cur)

	case *ast.BranchStmt:
		return b.branchStmt(s, cur)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Return = s
		addEdge(cur, b.cfg.Exit)
		return b.dead()

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicCall(s.X) {
			cur.Panics = true
			addEdge(cur, b.cfg.Exit)
			return b.dead()
		}
		return cur

	default:
		// Assign, IncDec, Send, Decl, Defer, Go, Empty: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// isPanicCall reports whether e is a direct call to the builtin panic.
// Purely syntactic (the builder has no type info): a local function
// named panic would shadow the builtin, which no real code does.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt, cur *Block) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	cur.Nodes = append(cur.Nodes, s.Cond)
	after := b.newBlock("if.after")

	then := b.newBlock("if.then")
	addEdge(cur, then)
	thenEnd := b.stmtList(s.Body.List, then)
	addEdge(thenEnd, after)

	if s.Else != nil {
		els := b.newBlock("if.else")
		addEdge(cur, els)
		elseEnd := b.stmt(s.Else, els)
		addEdge(elseEnd, after)
	} else {
		addEdge(cur, after)
	}
	return after
}

func (b *builder) forStmt(s *ast.ForStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	head := b.newBlock("for.head")
	addEdge(cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	addEdge(head, body)
	if s.Cond != nil {
		addEdge(head, after)
	}

	// continue runs the post statement (when present) before the
	// condition; give it its own block so the back edge is explicit.
	cont := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		addEdge(post, head)
		cont = post
	}

	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: cont})
	bodyEnd := b.stmtList(s.Body.List, body)
	b.loops = b.loops[:len(b.loops)-1]
	addEdge(bodyEnd, cont)
	return after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, cur *Block, label string) *Block {
	head := b.newBlock("range.head")
	addEdge(cur, head)
	// The range operand is evaluated once, the key/value variables are
	// written each iteration; both live in the head block. The
	// RangeStmt node itself is the marker rules see — by the package
	// contract they must look only at its X/Key/Value, never its Body.
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil || s.Value != nil {
		head.Nodes = append(head.Nodes, s)
	}
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	addEdge(head, body)
	addEdge(head, after)

	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
	bodyEnd := b.stmtList(s.Body.List, body)
	b.loops = b.loops[:len(b.loops)-1]
	addEdge(bodyEnd, head)
	return after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	if s.Tag != nil {
		cur.Nodes = append(cur.Nodes, s.Tag)
	}
	return b.caseClauses(s.Body, cur, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	// The assign is `v := x.(type)` (or a bare type assertion
	// expression statement): a simple statement.
	if s.Assign != nil {
		cur = b.stmt(s.Assign, cur)
	}
	return b.caseClauses(s.Body, cur, label, false)
}

// caseClauses builds the shared switch/type-switch shape: the
// dispatching block branches to every case body; a missing default
// adds a direct edge to the after block; fallthrough (switch only)
// jumps to the next case body.
func (b *builder) caseClauses(body *ast.BlockStmt, cur *Block, label string, allowFallthrough bool) *Block {
	after := b.newBlock("switch.after")
	var clauses []*ast.CaseClause
	for _, raw := range body.List {
		if cc, ok := raw.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("case")
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i].Nodes = append(blocks[i].Nodes, exprNodes(cc.List)...)
		addEdge(cur, blocks[i])
	}
	if !hasDefault {
		addEdge(cur, after)
	}
	// break inside a switch exits the switch; continue still binds to
	// the enclosing loop, so only brk is pushed.
	b.loops = append(b.loops, loopFrame{label: label, brk: after})
	for i, cc := range clauses {
		end := blocks[i]
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && allowFallthrough {
				if i+1 < len(blocks) {
					addEdge(end, blocks[i+1])
				}
				end = b.dead()
				continue
			}
			end = b.stmt(st, end)
		}
		addEdge(end, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	return after
}

func (b *builder) selectStmt(s *ast.SelectStmt, cur *Block, label string) *Block {
	after := b.newBlock("select.after")
	b.loops = append(b.loops, loopFrame{label: label, brk: after})
	n := 0
	for _, raw := range s.Body.List {
		cc, ok := raw.(*ast.CommClause)
		if !ok {
			continue
		}
		n++
		branch := b.newBlock("select.case")
		addEdge(cur, branch)
		if cc.Comm != nil {
			branch = b.stmt(cc.Comm, branch)
		}
		end := b.stmtList(cc.Body, branch)
		addEdge(end, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if n == 0 {
		// select {} blocks forever: no path to after.
		return b.dead()
	}
	return after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt, cur *Block) *Block {
	// The labeled statement starts a fresh block so gotos have a
	// stable target.
	start := b.newBlock("label." + s.Label.Name)
	addEdge(cur, start)
	li := b.label(s.Label.Name)
	li.target = start
	for _, from := range li.pending {
		addEdge(from, start)
	}
	li.pending = nil

	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		return b.forStmt(inner, start, s.Label.Name)
	case *ast.RangeStmt:
		return b.rangeStmt(inner, start, s.Label.Name)
	case *ast.SwitchStmt:
		return b.switchStmt(inner, start, s.Label.Name)
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(inner, start, s.Label.Name)
	case *ast.SelectStmt:
		return b.selectStmt(inner, start, s.Label.Name)
	default:
		// A plain labeled statement: break LABEL jumps past it.
		after := b.newBlock("label.after")
		b.loops = append(b.loops, loopFrame{label: s.Label.Name, brk: after})
		end := b.stmt(s.Stmt, start)
		b.loops = b.loops[:len(b.loops)-1]
		addEdge(end, after)
		return after
	}
}

func (b *builder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) branchStmt(s *ast.BranchStmt, cur *Block) *Block {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.brk == nil {
				continue
			}
			if s.Label == nil || f.label == s.Label.Name {
				addEdge(cur, f.brk)
				return b.dead()
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.cont == nil {
				continue
			}
			if s.Label == nil || f.label == s.Label.Name {
				addEdge(cur, f.cont)
				return b.dead()
			}
		}
	case token.GOTO:
		if s.Label != nil {
			li := b.label(s.Label.Name)
			if li.target != nil {
				addEdge(cur, li.target)
			} else {
				li.pending = append(li.pending, cur)
			}
			return b.dead()
		}
	case token.FALLTHROUGH:
		// Handled inside caseClauses; one appearing anywhere else is
		// illegal Go — drop it.
	}
	return b.dead()
}

// exprNodes widens a []ast.Expr into block nodes.
func exprNodes(list []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(list))
	for i, e := range list {
		out[i] = e
	}
	return out
}

// String renders the graph structurally — one line per block with its
// kind, node count, and successor indices — for tests and debugging.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		// Hide unreachable empty scratch blocks: they carry no
		// semantics and their count is a builder implementation detail.
		if len(blk.Preds) == 0 && blk != g.Entry && len(blk.Nodes) == 0 && len(blk.Succs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "b%d %s [%d]", blk.Index, blk.Kind, len(blk.Nodes))
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		if blk.Panics {
			sb.WriteString(" panics")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
