package analysis_test

import (
	"bytes"
	"testing"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/rules"
)

// TestRepositoryInvariantsHold runs the whole analyzer suite over the
// whole repository, exactly as `make lint` does: zero active findings
// is a merge requirement, and every suppression must carry a reason
// (scanSuppressions enforces that by construction — a reasonless
// marker is itself an active finding). A failure here prints the
// offending diagnostics.
func TestRepositoryInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(loader.Root, loader.Module, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunUniverse(pkgs, loader.Universe(), rules.All())
	if err != nil {
		t.Fatal(err)
	}
	if n := analysis.Active(diags); n != 0 {
		var buf bytes.Buffer
		analysis.WritePlain(&buf, loader.Root, diags, false)
		t.Errorf("repository has %d active findings; fix them or suppress with a reasoned //pbcheck:ignore:\n%s", n, buf.String())
	}
}
