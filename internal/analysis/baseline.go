package analysis

// baseline.go is the findings ratchet. A committed baseline file
// records the fingerprints of known findings; pbcheck -baseline fails
// only on findings whose fingerprint is NOT in the file, so new debt
// is blocked while pre-existing debt is visible (reported, counted)
// without breaking the build. The fingerprint is deliberately
// position-independent — rule + package + enclosing function +
// message — so unrelated edits that shift line numbers do not churn
// the baseline.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// baselineVersion is the schema tag of the baseline document.
const baselineVersion = "pbsim-lint/v1"

// A BaselineEntry is one recorded finding identity.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
}

// baselineFile is the on-disk document.
type baselineFile struct {
	Version  string          `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// Fingerprint returns the diagnostic's position-independent identity
// key used for baseline matching.
func Fingerprint(d Diagnostic) string {
	return fingerprintOf(d.Rule, d.Package, d.Func, d.Message)
}

func fingerprintOf(rule, pkg, fn, msg string) string {
	return rule + "\x00" + pkg + "\x00" + fn + "\x00" + msg
}

// LoadBaseline reads a baseline file into a fingerprint set. A
// missing file is an empty baseline (the ratchet's natural zero), not
// an error; a malformed one is an error so a corrupt baseline cannot
// silently approve everything.
func LoadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var doc baselineFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	if doc.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s: version %q, want %q", path, doc.Version, baselineVersion)
	}
	set := make(map[string]bool, len(doc.Findings))
	for _, e := range doc.Findings {
		set[fingerprintOf(e.Rule, e.Package, e.Func, e.Message)] = true
	}
	return set, nil
}

// ApplyBaseline marks every unsuppressed diagnostic whose fingerprint
// is in the set as Baselined, removing it from the active count.
// Suppressed findings are left alone (the waiver already carries the
// justification) and the reserved "ignore" rule can never be
// baselined — a malformed waiver must be fixed, not ratcheted.
func ApplyBaseline(diags []Diagnostic, set map[string]bool) {
	for i := range diags {
		d := &diags[i]
		if d.Suppressed || d.Rule == IgnoreRule {
			continue
		}
		if set[Fingerprint(*d)] {
			d.Baselined = true
		}
	}
}

// WriteBaseline serializes the unsuppressed findings as a baseline
// document: sorted, deduplicated, and indented, so the committed file
// is byte-stable and diffs review cleanly.
func WriteBaseline(path string, diags []Diagnostic) error {
	doc := baselineFile{Version: baselineVersion, Findings: []BaselineEntry{}}
	seen := make(map[string]bool)
	for _, d := range diags {
		if d.Suppressed || d.Rule == IgnoreRule {
			continue
		}
		fp := Fingerprint(d)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		doc.Findings = append(doc.Findings, BaselineEntry{
			Rule: d.Rule, Package: d.Package, Func: d.Func, Message: d.Message,
		})
	}
	sort.Slice(doc.Findings, func(i, j int) bool {
		a, b := doc.Findings[i], doc.Findings[j]
		return fingerprintOf(a.Rule, a.Package, a.Func, a.Message) <
			fingerprintOf(b.Rule, b.Package, b.Func, b.Message)
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
