package analysis_test

import (
	"path/filepath"
	"testing"

	"pbsim/internal/analysis"
)

// loadWritesPkg loads the single-package write-effect battery.
func loadWritesPkg(t *testing.T) *analysis.FactIndex {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("rules", "testdata", "writes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load([]string{dir}); err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{
		"determinism": true, "nopanic": true, "hotalloc": true, "purity": true,
	}
	return analysis.BuildFacts(loader.Universe(), known)
}

// TestWriteEffectFact pins the write-effect classifier function by
// function: which mutations escape the frame, which provably stay
// inside it, and the exact why-string the purity analyzer will print.
func TestWriteEffectFact(t *testing.T) {
	x := loadWritesPkg(t)

	effects := map[string]string{
		"WritesGlobal":     "assigns package-level writes.global",
		"IncrGlobal":       "assigns package-level writes.global",
		"DeletesGlobalMap": "deletes from a map that assigns package-level writes.registry",
		"SetN":             "writes through receiver s",
		"MutatesRecvMap":   "writes through receiver s",
		"WritesParam":      "writes through parameter p",
		"WritesSliceParam": "writes through parameter in",
		"AliasesParam":     "writes memory aliased by xs",
		"ShadowsParam":     "writes through parameter in",
		"SendsOnParam":     "sends on channel ch (writes through parameter ch)",
		"ClosesParam":      "closes channel ch (writes through parameter ch)",
		"CallsWriter":      "writes.WritesGlobal → assigns package-level writes.global",
	}
	clean := []string{
		"ValueRecv", "OwnedSlice", "OwnedMap", "AppendOwned",
		"SliceOfOwned", "OwnedChan", "PureLocal", "WaivedWrite",
	}

	for fn, why := range effects {
		fi := lookupFunc(t, x, "writes", fn)
		if !fi.Facts().Has(analysis.FactWritesState) {
			t.Errorf("%s: write-effect fact missing", fn)
			continue
		}
		if got := fi.Why(analysis.FactWritesState); got != why {
			t.Errorf("%s why = %q, want %q", fn, got, why)
		}
	}
	for _, fn := range clean {
		fi := lookupFunc(t, x, "writes", fn)
		if fi.Facts().Has(analysis.FactWritesState) {
			t.Errorf("%s: spurious write-effect fact (%s)", fn, fi.Why(analysis.FactWritesState))
		}
	}
}
