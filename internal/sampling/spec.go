// Package sampling implements region-sampled simulation with
// statistically quantified error. A workload's measured window is
// partitioned into fixed-size instruction regions; a deterministic,
// seeded estimator selects a subset to detail-simulate; and the
// whole-program CPI is extrapolated from the sampled regions together
// with a 95% confidence interval on the extrapolation.
//
// Three estimators trade accuracy against detailed-simulation budget:
//
//   - uniform: systematic sampling with a seeded phase — the SMARTS
//     baseline. No pre-pass; variance is estimated with the
//     simple-random-sampling formula plus finite-population
//     correction.
//   - stratified: two-phase sampling (Ekman & Stenström). A cheap
//     functional proxy pass scores every region, regions are
//     stratified into proxy quantiles, and the detailed budget is
//     allocated proportionally across strata; within-stratum variances
//     combine into a tighter interval whenever the proxy correlates
//     with cost.
//   - rankedset: ranked-set sampling with repeated subsampling. Each
//     cycle draws small sets of regions, ranks them by the proxy
//     (cheap judgment ranking), and detail-simulates one designated
//     rank per set; the between-cycle variance of cycle means
//     estimates the interval.
//
// Selection is a pure function of (workload parameters, window, Spec),
// so sampled runs are bit-reproducible and every design row of a PB
// experiment measures the identical region set.
package sampling

import (
	"fmt"
	"strconv"
	"strings"
)

// Estimator names accepted by Spec.Estimator.
const (
	EstimatorUniform    = "uniform"
	EstimatorStratified = "stratified"
	EstimatorRankedSet  = "rankedset"
)

// Defaults substituted by Normalized for zero-valued Spec fields.
const (
	DefaultRegionSize = 1000
	DefaultFraction   = 0.1
	DefaultStrata     = 4
	DefaultSetSize    = 3
)

// minRegionSize keeps a region comfortably larger than the pipeline's
// in-flight window (IFQ + ROB), so per-region cycle counts measured
// off one continuous pipeline are dominated by the region itself.
const minRegionSize = 256

// Spec configures one sampled simulation. The zero value of a field
// selects its default (see Normalized); RegionWarmup uses -1 for the
// default because 0 legitimately disables per-region warmup.
type Spec struct {
	// Estimator selects the sampling scheme: uniform, stratified, or
	// rankedset.
	Estimator string
	// RegionSize is the instruction length of one region.
	RegionSize int64
	// Fraction is the target fraction of regions to detail-simulate,
	// in (0, 1]. The detailed budget is round(Fraction * regions),
	// clamped to at least one region; a budget covering every region
	// degenerates to the exact full-simulation path.
	Fraction float64
	// RegionWarmup is the number of detail-simulated warmup
	// instructions immediately before each sampled region (merged for
	// adjacent regions); negative selects RegionSize/4, zero disables.
	RegionWarmup int64
	// FuncWarmup is the number of functionally-warmed instructions
	// before each region's detailed warmup: the stream trains the
	// branch predictor, BTB, RAS, caches and TLBs at generator-walk
	// cost, without cycle accounting. This is what removes the sampled
	// path's cold-start bias (history-dependent predictor state cannot
	// be rebuilt by a short detailed warmup). Negative selects
	// 8*RegionSize, zero disables.
	FuncWarmup int64
	// Seed drives region selection. The per-workload selection stream
	// mixes Seed with the workload's own seed, so benchmarks sample
	// independent region sets while staying bit-reproducible.
	Seed uint64
	// Strata is the number of proxy-quantile strata (stratified only).
	Strata int
	// SetSize is the judgment-ranking set size k (rankedset only).
	SetSize int
}

// Normalized returns the spec with defaults substituted for zero
// values. Fingerprints, manifests, and schedules all key off the
// normalized form, so equivalent specs are never treated as distinct.
func (s Spec) Normalized() Spec {
	if s.Estimator == "" {
		s.Estimator = EstimatorUniform
	}
	if s.RegionSize == 0 {
		s.RegionSize = DefaultRegionSize
	}
	if s.Fraction == 0 { //pbcheck:ignore floateq zero-value sentinel for an unset config field, exact by construction
		s.Fraction = DefaultFraction
	}
	if s.RegionWarmup < 0 {
		s.RegionWarmup = s.RegionSize / 4
	}
	if s.FuncWarmup < 0 {
		s.FuncWarmup = 8 * s.RegionSize
	}
	if s.Strata == 0 {
		s.Strata = DefaultStrata
	}
	if s.SetSize == 0 {
		s.SetSize = DefaultSetSize
	}
	return s
}

// Validate reports the first structural problem with the (normalized)
// spec.
func (s Spec) Validate() error {
	if _, err := ByName(s.Estimator); err != nil {
		return err
	}
	if s.RegionSize < minRegionSize {
		return fmt.Errorf("sampling: region size %d below the minimum %d (regions must exceed the pipeline's in-flight window)", s.RegionSize, minRegionSize)
	}
	if !(s.Fraction > 0 && s.Fraction <= 1) {
		return fmt.Errorf("sampling: fraction %v outside (0, 1]", s.Fraction)
	}
	if s.RegionWarmup < 0 {
		return fmt.Errorf("sampling: region warmup %d negative", s.RegionWarmup)
	}
	if s.FuncWarmup < 0 {
		return fmt.Errorf("sampling: functional warmup %d negative", s.FuncWarmup)
	}
	if s.Strata < 1 {
		return fmt.Errorf("sampling: strata %d, need >= 1", s.Strata)
	}
	if s.SetSize < 2 {
		return fmt.Errorf("sampling: set size %d, need >= 2", s.SetSize)
	}
	return nil
}

// String renders the normalized spec in the canonical key=value form
// ParseSpec inverts. It is embedded in experiment fingerprints and
// campaign manifests, so two textually equal specs are guaranteed to
// select identical regions.
func (s Spec) String() string {
	n := s.Normalized()
	return fmt.Sprintf("est=%s,region=%d,frac=%s,warm=%d,fwarm=%d,seed=%d,strata=%d,set=%d",
		n.Estimator, n.RegionSize, strconv.FormatFloat(n.Fraction, 'g', -1, 64),
		n.RegionWarmup, n.FuncWarmup, n.Seed, n.Strata, n.SetSize)
}

// ParseSpec inverts String: it reconstructs a spec from the canonical
// key=value form, so a distributed worker can rebuild the exact
// sampling schedule from a campaign manifest alone.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	s.RegionWarmup = -1
	s.FuncWarmup = -1
	for _, kv := range strings.Split(text, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return s, fmt.Errorf("sampling: spec field %q is not key=value", kv)
		}
		var err error
		switch k {
		case "est":
			s.Estimator = v
		case "region":
			s.RegionSize, err = strconv.ParseInt(v, 10, 64)
		case "frac":
			s.Fraction, err = strconv.ParseFloat(v, 64)
		case "warm":
			s.RegionWarmup, err = strconv.ParseInt(v, 10, 64)
		case "fwarm":
			s.FuncWarmup, err = strconv.ParseInt(v, 10, 64)
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "strata":
			s.Strata, err = strconv.Atoi(v)
		case "set":
			s.SetSize, err = strconv.Atoi(v)
		default:
			return s, fmt.Errorf("sampling: unknown spec key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("sampling: spec key %s: %w", k, err)
		}
	}
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}
