package sampling

import (
	"flag"
	"strings"
)

// RegisterFlags registers the -sample* flag family on fs and returns a
// function that materializes the flags into a validated Spec after
// parsing. The returned spec is nil when -sample was left empty —
// sampling is strictly opt-in, and every CLI that offers it shares the
// same flag names and defaults through this helper.
func RegisterFlags(fs *flag.FlagSet) func() (*Spec, error) {
	est := fs.String("sample", "", "sample the measured window with this estimator ("+strings.Join(Names(), ", ")+") instead of simulating it fully")
	region := fs.Int64("sample-region", DefaultRegionSize, "instructions per sampling region")
	frac := fs.Float64("sample-frac", DefaultFraction, "fraction of regions to detail-simulate, in (0, 1]")
	warm := fs.Int64("sample-warmup", -1, "detailed warmup instructions before each sampled region (-1 = region/4, 0 disables)")
	fwarm := fs.Int64("sample-func-warmup", -1, "functionally warmed instructions before each region's detailed warmup (-1 = 8*region, 0 disables)")
	seed := fs.Uint64("sample-seed", 1, "region-selection seed (mixed with each workload's own seed)")
	strata := fs.Int("sample-strata", DefaultStrata, "proxy-quantile strata (stratified estimator)")
	set := fs.Int("sample-set", DefaultSetSize, "judgment-ranking set size (rankedset estimator)")
	return func() (*Spec, error) {
		if *est == "" {
			return nil, nil
		}
		s := Spec{
			Estimator:    *est,
			RegionSize:   *region,
			Fraction:     *frac,
			RegionWarmup: *warm,
			FuncWarmup:   *fwarm,
			Seed:         *seed,
			Strata:       *strata,
			SetSize:      *set,
		}.Normalized()
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return &s, nil
	}
}
