package sampling

import (
	"sort"

	"pbsim/internal/trace"
)

// uniformEstimator is systematic sampling with a seeded phase: every
// stride-th region starting from a random offset. It is the SMARTS
// baseline — no pre-pass, unbiased under any region ordering, and its
// even spacing already captures coarse program phases. Variance is
// estimated with the simple-random-sampling formula plus
// finite-population correction (systematic samples of a
// non-periodically-varying stream behave like SRS, the standard
// approximation).
type uniformEstimator struct{}

func (uniformEstimator) Name() string     { return EstimatorUniform }
func (uniformEstimator) NeedsProxy() bool { return false }

func (uniformEstimator) Plan(numRegions, budget int, _ Spec, _ []float64, rng *trace.RNG) (Plan, error) {
	if err := checkPlanArgs(numRegions, budget); err != nil {
		return nil, err
	}
	stride := numRegions / budget // >= 1 because budget <= numRegions
	start := rng.Intn(stride)
	regions := selectSystematic(make([]int, 0, budget), start, stride, budget)
	return &srsPlan{regions: regions, numRegions: numRegions}, nil
}

// srsPlan estimates a mean and CI under the simple-random-sampling
// model; it is also the degenerate-cycle fallback of the ranked-set
// estimator.
type srsPlan struct {
	regions    []int
	numRegions int
}

func (p *srsPlan) Regions() []int { return p.regions }

func (p *srsPlan) Estimate(cpi map[int]float64) (float64, float64, error) {
	xs, err := gather(cpi, p.regions)
	if err != nil {
		return 0, 0, err
	}
	m := meanOf(xs)
	return m, srsHalf(sampleVar(xs, m), len(xs), p.numRegions), nil
}

// dedupeSorted sorts indices ascending and removes duplicates in
// place, returning the distinct prefix.
func dedupeSorted(idx []int) []int {
	sort.Ints(idx)
	out := idx[:0]
	for i, v := range idx {
		if i == 0 || v != idx[i-1] {
			out = append(out, v)
		}
	}
	return out
}
