package sampling

import (
	"math"
	"testing"

	"pbsim/internal/sim"
	"pbsim/internal/trace"
	"pbsim/internal/workload"
)

// testWindow keeps these tests fast: 24 regions of the minimum size.
const (
	testWarmup  = 2000
	testMeasure = 24 * minRegionSize
)

func testGen(t *testing.T, name string) *trace.Generator {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(w.Params)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func fullCycles(t *testing.T, cfg sim.Config, gen *trace.Generator, warmup, instructions int64) float64 {
	t.Helper()
	gen.Reset()
	cpu, err := sim.New(cfg, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.PrewarmMemory()
	st, err := cpu.RunWithWarmup(warmup, instructions)
	if err != nil {
		t.Fatal(err)
	}
	return float64(st.Cycles)
}

// TestFractionOneReproducesFullRunBitIdentically is the property the
// whole opt-in design rests on: Fraction 1.0 must return the exact
// full-simulation response, bit for bit, for any workload and config.
func TestFractionOneReproducesFullRunBitIdentically(t *testing.T) {
	small := sim.Default()
	small.ROBEntries = 8
	small.MispredictPenalty = 12
	configs := []sim.Config{sim.Default(), small}
	for _, name := range []string{"gzip", "mcf"} {
		for ci, cfg := range configs {
			gen := testGen(t, name)
			want := fullCycles(t, cfg, gen, testWarmup, testMeasure)
			for _, est := range Names() {
				spec := Spec{Estimator: est, RegionSize: minRegionSize, Fraction: 1.0, RegionWarmup: -1, Seed: 7}
				res, err := Run(cfg, gen, testWarmup, testMeasure, spec)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Census {
					t.Fatalf("%s/%s cfg %d: fraction 1.0 did not take the census path", name, est, ci)
				}
				if math.Float64bits(res.Cycles) != math.Float64bits(want) {
					t.Fatalf("%s/%s cfg %d: census cycles %v != full-run %v", name, est, ci, res.Cycles, want)
				}
				if res.CIHalf != 0 || res.CyclesCIHalf != 0 {
					t.Fatalf("%s/%s cfg %d: census CI must be zero, got %v", name, est, ci, res.CIHalf)
				}
				if res.SampledRegions != res.NumRegions {
					t.Fatalf("%s/%s cfg %d: census sampled %d of %d regions", name, est, ci, res.SampledRegions, res.NumRegions)
				}
			}
		}
	}
}

// TestRunIsDeterministic pins bit-reproducibility of the sampled path:
// two runs with the same spec agree in every float bit, from any
// generator position.
func TestRunIsDeterministic(t *testing.T) {
	cfg := sim.Default()
	for _, est := range Names() {
		spec := Spec{Estimator: est, RegionSize: minRegionSize, Fraction: 0.25, RegionWarmup: -1, Seed: 11}
		gen := testGen(t, "gzip")
		a, err := Run(cfg, gen, testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		gen.Skip(999) // position must not matter
		b, err := Run(cfg, gen, testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a.CPI) != math.Float64bits(b.CPI) ||
			math.Float64bits(a.CIHalf) != math.Float64bits(b.CIHalf) ||
			a.DetailedInstructions != b.DetailedInstructions {
			t.Fatalf("%s: runs differ: %+v vs %+v", est, a, b)
		}
		if a.Census {
			t.Fatalf("%s: fraction 0.25 should not take the census path", est)
		}
	}
}

// TestSampledEstimateTracksFullRun is the accuracy sanity check: with a
// quarter of the regions, every estimator's CPI must land within a few
// percent of the full-simulation CPI, and the detailed cost must be
// well below the full run's.
func TestSampledEstimateTracksFullRun(t *testing.T) {
	cfg := sim.Default()
	gen := testGen(t, "gzip")
	fullCPI := fullCycles(t, cfg, gen, testWarmup, testMeasure) / float64(testMeasure)
	for _, est := range Names() {
		// A functional warmup spanning the whole (tiny) window stands in
		// for the default 8x region warm a paper-scale window would use.
		spec := Spec{Estimator: est, RegionSize: minRegionSize, Fraction: 0.25, RegionWarmup: 64, FuncWarmup: 8192, Seed: 3}
		res, err := Run(cfg, gen, testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.CPI/fullCPI - 1); rel > 0.10 {
			t.Errorf("%s: sampled CPI %.4f vs full %.4f (rel err %.1f%%)", est, res.CPI, fullCPI, 100*rel)
		}
		if res.CIHalf < 0 || math.IsNaN(res.CIHalf) {
			t.Errorf("%s: bad CI half-width %v", est, res.CIHalf)
		}
		full := int64(testWarmup + testMeasure)
		if res.DetailedInstructions >= full/2 {
			t.Errorf("%s: detailed cost %d not meaningfully below full %d", est, res.DetailedInstructions, full)
		}
	}
}

// TestSingleRegionProgram covers the window-shorter-than-a-region edge:
// one region forces a census regardless of fraction.
func TestSingleRegionProgram(t *testing.T) {
	cfg := sim.Default()
	gen := testGen(t, "gzip")
	const tiny = minRegionSize / 2
	want := fullCycles(t, cfg, gen, 0, tiny)
	res, err := Run(cfg, gen, 0, tiny, Spec{RegionSize: minRegionSize, Fraction: 0.1, RegionWarmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Census || res.NumRegions != 1 {
		t.Fatalf("tiny window: want census over 1 region, got %+v", res)
	}
	if math.Float64bits(res.Cycles) != math.Float64bits(want) {
		t.Fatalf("tiny window census cycles %v != full-run %v", res.Cycles, want)
	}
}

// TestFractionClampsToCensus covers "region count smaller than sample
// size": a fraction rounding to the whole population degenerates to a
// census instead of over-selecting.
func TestFractionClampsToCensus(t *testing.T) {
	gen := testGen(t, "gzip")
	res, err := Run(sim.Default(), gen, 0, 2*minRegionSize, Spec{RegionSize: minRegionSize, Fraction: 0.9, RegionWarmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Census || res.NumRegions != 2 || res.SampledRegions != 2 {
		t.Fatalf("fraction 0.9 of 2 regions should census both, got %+v", res)
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	cfg := sim.Default()
	gen := testGen(t, "gzip")
	if _, err := Run(cfg, gen, -1, testMeasure, Spec{}); err == nil {
		t.Fatal("negative warmup must be rejected")
	}
	if _, err := Run(cfg, gen, 0, 0, Spec{}); err == nil {
		t.Fatal("zero instructions must be rejected")
	}
	if _, err := Run(cfg, gen, 0, testMeasure, Spec{Estimator: "bogus"}); err == nil {
		t.Fatal("unknown estimator must be rejected")
	}
}

// TestCostOfMatchesRun pins the frontier's cost accounting: CostOf must
// report exactly the detailed instructions a subsequent Run burns, plus
// the same one-time functional cost.
func TestCostOfMatchesRun(t *testing.T) {
	cfg := sim.Default()
	gen := testGen(t, "mcf")
	for _, est := range Names() {
		spec := Spec{Estimator: est, RegionSize: minRegionSize, Fraction: 0.25, RegionWarmup: -1, Seed: 5}
		cost, err := CostOf(gen.Params(), testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, gen, testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		if cost.PerRunDetailed != res.DetailedInstructions {
			t.Fatalf("%s: CostOf predicts %d detailed, Run burned %d", est, cost.PerRunDetailed, res.DetailedInstructions)
		}
		if cost.ScheduleFunctional != res.ScheduleFunctional {
			t.Fatalf("%s: functional cost mismatch: %d vs %d", est, cost.ScheduleFunctional, res.ScheduleFunctional)
		}
		if cost.PerRunFunctional != res.FunctionalInstructions {
			t.Fatalf("%s: CostOf predicts %d functional, Run warmed %d", est, cost.PerRunFunctional, res.FunctionalInstructions)
		}
		if cost.SampledRegions != res.SampledRegions || cost.NumRegions != res.NumRegions {
			t.Fatalf("%s: geometry mismatch: %+v vs %+v", est, cost, res)
		}
	}
}

// TestSeedsDecorrelateWorkloads checks that two workloads sample
// different region sets under the same spec (the per-workload seed mix)
// while two specs differing only in Seed differ for one workload.
func TestSeedsDecorrelateWorkloads(t *testing.T) {
	spec := Spec{Estimator: EstimatorUniform, RegionSize: minRegionSize, Fraction: 0.25, RegionWarmup: -1, Seed: 1}.Normalized()
	regionsOf := func(gen *trace.Generator) []int {
		sch, err := scheduleFor(gen, testWarmup, testMeasure, spec)
		if err != nil {
			t.Fatal(err)
		}
		return sch.regions
	}
	a := regionsOf(testGen(t, "gzip"))
	b := regionsOf(testGen(t, "mcf"))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("gzip and mcf selected identical regions %v; workload seeds not mixed in", a)
	}
}
