package sampling

import (
	"flag"
	"io"
	"testing"
)

func parseSampleFlags(t *testing.T, args ...string) (*Spec, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	build := RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return build()
}

func TestRegisterFlagsOptIn(t *testing.T) {
	spec, err := parseSampleFlags(t)
	if err != nil || spec != nil {
		t.Fatalf("no -sample must yield (nil, nil), got (%v, %v)", spec, err)
	}
	spec, err = parseSampleFlags(t, "-sample", "stratified", "-sample-frac", "0.2", "-sample-strata", "6")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Estimator != EstimatorStratified || spec.Fraction != 0.2 || spec.Strata != 6 { //pbcheck:ignore floateq exact flag round-trip, no arithmetic involved
		t.Fatalf("spec = %+v", spec)
	}
	// Defaults materialize through Normalized: -1 warmups resolve.
	if spec.RegionWarmup != DefaultRegionSize/4 || spec.FuncWarmup != 8*DefaultRegionSize {
		t.Fatalf("warmup defaults did not materialize: %+v", spec)
	}
}

func TestRegisterFlagsRejectsBadSpec(t *testing.T) {
	if _, err := parseSampleFlags(t, "-sample", "nope"); err == nil {
		t.Error("unknown estimator must fail")
	}
	if _, err := parseSampleFlags(t, "-sample", "uniform", "-sample-frac", "1.5"); err == nil {
		t.Error("fraction above 1 must fail")
	}
}
