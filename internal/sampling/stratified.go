package sampling

import (
	"fmt"
	"math"

	"pbsim/internal/trace"
)

// stratifiedEstimator is two-phase stratified sampling: the functional
// proxy pass (phase one) scores every region, regions are grouped into
// proxy-quantile strata, and the detailed budget (phase two) is
// allocated proportionally to stratum size. Because regions within a
// proxy quantile behave alike, the within-stratum variances that make
// up the interval are small whenever the proxy correlates with
// simulated cost — the mechanism that lets stratification beat uniform
// sampling at equal budget.
type stratifiedEstimator struct{}

func (stratifiedEstimator) Name() string     { return EstimatorStratified }
func (stratifiedEstimator) NeedsProxy() bool { return true }

// stratum is one proxy-quantile slice of the region population.
type stratum struct {
	members []int // region indices, ascending proxy order
	sampled []int // subset to detail-simulate
}

type stratifiedPlan struct {
	strata     []stratum
	regions    []int
	numRegions int
}

func (stratifiedEstimator) Plan(numRegions, budget int, spec Spec, proxy []float64, rng *trace.RNG) (Plan, error) {
	if err := checkPlanArgs(numRegions, budget); err != nil {
		return nil, err
	}
	if len(proxy) != numRegions {
		return nil, fmt.Errorf("sampling: stratified needs %d proxy scores, got %d", numRegions, len(proxy))
	}
	numStrata := spec.Strata
	// Each stratum needs at least one sampled region; shrink the
	// stratification rather than fail when the budget (or population)
	// is smaller than the requested stratum count.
	if numStrata > budget {
		numStrata = budget
	}
	if numStrata > numRegions {
		numStrata = numRegions
	}
	order := regionsByProxy(proxy)

	// Quantile strata: near-equal slices of the proxy-ordered regions,
	// the first numRegions%numStrata strata one region larger.
	strata := make([]stratum, numStrata)
	base, extra := numRegions/numStrata, numRegions%numStrata
	pos := 0
	for h := range strata {
		size := base
		if h < extra {
			size++
		}
		strata[h].members = order[pos : pos+size]
		pos += size
	}

	// Proportional allocation by largest remainder, with every stratum
	// guaranteed one sampled region and none allocated past its size.
	alloc := allocateProportional(strata, budget, numRegions)

	// Within a stratum, systematic selection over the proxy order with
	// a seeded phase spreads the sample across the stratum's own
	// proxy range.
	var regions []int
	for h := range strata {
		members, m := strata[h].members, alloc[h]
		stride := len(members) / m
		start := rng.Intn(stride)
		picks := selectSystematic(make([]int, 0, m), start, stride, m)
		for _, i := range picks {
			strata[h].sampled = append(strata[h].sampled, members[i])
		}
		regions = append(regions, strata[h].sampled...)
	}
	return &stratifiedPlan{strata: strata, regions: dedupeSorted(regions), numRegions: numRegions}, nil
}

// allocateProportional distributes the budget across strata
// proportionally to stratum size using the largest-remainder method,
// guaranteeing each stratum at least one sample and at most its size.
func allocateProportional(strata []stratum, budget, numRegions int) []int {
	alloc := make([]int, len(strata))
	rem := make([]float64, len(strata))
	used := 0
	for h := range strata {
		exact := float64(budget) * float64(len(strata[h].members)) / float64(numRegions)
		alloc[h] = int(exact)
		if alloc[h] < 1 {
			alloc[h] = 1
		}
		if alloc[h] > len(strata[h].members) {
			alloc[h] = len(strata[h].members)
		}
		rem[h] = exact - math.Floor(exact)
		used += alloc[h]
	}
	// Distribute the remaining budget by largest fractional part
	// (deterministic tie-break by stratum index); shed any excess from
	// the largest allocations. Both loops terminate because the budget
	// is within [len(strata), numRegions].
	for used < budget {
		best := -1
		for h := range strata {
			if alloc[h] >= len(strata[h].members) {
				continue
			}
			if best < 0 || rem[h] > rem[best] {
				best = h
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
		rem[best] = -1
		used++
	}
	for used > budget {
		best := -1
		for h := range strata {
			if alloc[h] <= 1 {
				continue
			}
			if best < 0 || alloc[h] > alloc[best] {
				best = h
			}
		}
		if best < 0 {
			break
		}
		alloc[best]--
		used--
	}
	return alloc
}

func (p *stratifiedPlan) Regions() []int { return p.regions }

// Estimate combines the strata: the point estimate is the
// size-weighted stratum mean, and the variance sums the per-stratum
// SRS variances weighted by squared stratum share. A stratum with one
// sampled region (and more members) cannot estimate its own variance;
// it borrows the pooled variance of all sampled regions — a
// conservative, deterministic fallback. Zero-variance strata
// contribute nothing, so a perfectly stratified workload yields a
// zero-width interval.
func (p *stratifiedPlan) Estimate(cpi map[int]float64) (float64, float64, error) {
	var all []float64
	means := make([]float64, len(p.strata))
	vars := make([]float64, len(p.strata))
	for h := range p.strata {
		xs, err := gather(cpi, p.strata[h].sampled)
		if err != nil {
			return 0, 0, err
		}
		means[h] = meanOf(xs)
		vars[h] = sampleVar(xs, means[h])
		all = append(all, xs...)
	}
	pooled := sampleVar(all, meanOf(all))

	est, varEst := 0.0, 0.0
	n := float64(p.numRegions)
	for h := range p.strata {
		nh := len(p.strata[h].members)
		mh := len(p.strata[h].sampled)
		w := float64(nh) / n
		est += w * means[h]
		if mh >= nh {
			continue // census stratum: exact, no variance
		}
		s2 := vars[h]
		if mh < 2 {
			s2 = pooled
		}
		varEst += w * w * s2 / float64(mh) * (1 - float64(mh)/float64(nh))
	}
	return est, z95 * math.Sqrt(varEst), nil
}
