package sampling

import (
	"math"
	"testing"

	"pbsim/internal/trace"
)

func testSpec(est string) Spec {
	return Spec{Estimator: est, RegionSize: 500, Fraction: 0.25, RegionWarmup: -1, Seed: 1}.Normalized()
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("Names() = %v, want three estimators", names)
	}
	for _, n := range names {
		e, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, e.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown estimators")
	}
}

func TestPlanRejectsBudgetBeyondPopulation(t *testing.T) {
	// The "region count smaller than sample size" edge: a plan must
	// refuse a budget it cannot place (Run clamps before ever getting
	// here, which TestFractionClampsToCensus pins).
	for _, e := range estimators {
		proxy := make([]float64, 3)
		if _, err := e.Plan(3, 5, testSpec(e.Name()), proxy, trace.NewRNG(1)); err == nil {
			t.Fatalf("%s: Plan(3 regions, budget 5) should fail", e.Name())
		}
		if _, err := e.Plan(3, 0, testSpec(e.Name()), proxy, trace.NewRNG(1)); err == nil {
			t.Fatalf("%s: Plan(budget 0) should fail", e.Name())
		}
	}
}

func TestUniformEstimateMatchesHandComputation(t *testing.T) {
	plan, err := uniformEstimator{}.Plan(10, 5, testSpec(EstimatorUniform), nil, trace.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	regions := plan.Regions()
	if len(regions) != 5 {
		t.Fatalf("selected %d regions, want 5", len(regions))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i]-regions[i-1] != 2 {
			t.Fatalf("systematic stride broken: %v", regions)
		}
	}
	cpi := map[int]float64{}
	for i, r := range regions {
		cpi[r] = float64(i + 1) // 1..5
	}
	mean, half, err := plan.Estimate(cpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3", mean)
	}
	// s2 = 2.5, m = 5, N = 10: half = 1.96*sqrt(2.5/5 * 0.5) = 0.98.
	if math.Abs(half-0.98) > 1e-12 {
		t.Fatalf("half = %v, want 0.98", half)
	}
}

func TestEstimateFailsOnMissingMeasurement(t *testing.T) {
	plan, err := uniformEstimator{}.Plan(10, 5, testSpec(EstimatorUniform), nil, trace.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plan.Estimate(map[int]float64{}); err == nil {
		t.Fatal("Estimate should refuse a partial sample")
	}
}

func TestStratifiedZeroVarianceStrata(t *testing.T) {
	// Proxy splits 20 regions into a cheap half and an expensive half;
	// within each stratum every region has the identical CPI. The
	// stratified interval must collapse to zero while recovering the
	// exact population mean.
	proxy := make([]float64, 20)
	for i := range proxy {
		if i >= 10 {
			proxy[i] = 9
		}
	}
	spec := testSpec(EstimatorStratified)
	spec.Strata = 2
	plan, err := stratifiedEstimator{}.Plan(20, 8, spec, proxy, trace.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cpi := map[int]float64{}
	for _, r := range plan.Regions() {
		if r >= 10 {
			cpi[r] = 4.0
		} else {
			cpi[r] = 1.0
		}
	}
	mean, half, err := plan.Estimate(cpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5 (equal halves at 1.0 and 4.0)", mean)
	}
	if half != 0 {
		t.Fatalf("half = %v, want 0 for zero-variance strata", half)
	}
}

func TestStratifiedAllocationCoversEveryStratum(t *testing.T) {
	proxy := make([]float64, 50)
	for i := range proxy {
		proxy[i] = float64(i % 7)
	}
	spec := testSpec(EstimatorStratified)
	spec.Strata = 4
	plan, err := stratifiedEstimator{}.Plan(50, 5, spec, proxy, trace.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.(*stratifiedPlan)
	total := 0
	for h, st := range sp.strata {
		if len(st.sampled) < 1 {
			t.Fatalf("stratum %d got no samples", h)
		}
		total += len(st.sampled)
	}
	if total != 5 {
		t.Fatalf("allocated %d samples, want the budget of 5", total)
	}
	// Budget below the stratum count shrinks the stratification
	// instead of failing.
	spec.Strata = 8
	_, err = stratifiedEstimator{}.Plan(50, 3, spec, proxy, trace.NewRNG(9))
	if err != nil {
		t.Fatalf("budget below strata count should shrink, not fail: %v", err)
	}
}

func TestRankedSetBalancedDraws(t *testing.T) {
	proxy := make([]float64, 40)
	for i := range proxy {
		proxy[i] = float64((i * 13) % 40)
	}
	spec := testSpec(EstimatorRankedSet)
	spec.SetSize = 3
	plan, err := rankedSetEstimator{}.Plan(40, 9, spec, proxy, trace.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	rp := plan.(*rankedSetPlan)
	if len(rp.draws) != 9 || rp.k != 3 {
		t.Fatalf("draws = %d, k = %d; want 9 draws in cycles of 3", len(rp.draws), rp.k)
	}
	cpi := map[int]float64{}
	for _, r := range plan.Regions() {
		cpi[r] = proxy[r] // CPI perfectly follows the proxy
	}
	mean, half, err := plan.Estimate(cpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) || math.IsNaN(half) || half < 0 {
		t.Fatalf("degenerate estimate: mean=%v half=%v", mean, half)
	}
	// Three cycles exist, so the interval must come from repeated
	// subsampling (finite, non-NaN) — and a constant response must
	// yield a zero-width interval.
	for _, r := range plan.Regions() {
		cpi[r] = 2.0
	}
	mean, half, err = plan.Estimate(cpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2) > 1e-12 || half != 0 {
		t.Fatalf("constant response: mean=%v half=%v, want 2 and 0", mean, half)
	}
}

func TestSelectionIsDeterministic(t *testing.T) {
	proxy := make([]float64, 60)
	for i := range proxy {
		proxy[i] = float64((i * 29) % 60)
	}
	for _, e := range estimators {
		spec := testSpec(e.Name())
		a, err := e.Plan(60, 12, spec, proxy, trace.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Plan(60, 12, spec, proxy, trace.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := a.Regions(), b.Regions()
		if len(ra) != len(rb) {
			t.Fatalf("%s: selection not deterministic", e.Name())
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: selection not deterministic at %d", e.Name(), i)
			}
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	in := Spec{Estimator: EstimatorRankedSet, RegionSize: 512, Fraction: 0.125, RegionWarmup: 64, Seed: 99, Strata: 6, SetSize: 4}
	out, err := ParseSpec(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if out != in.Normalized() {
		t.Fatalf("round trip: got %+v want %+v", out, in.Normalized())
	}
	// Omitted keys materialize their defaults (including the derived
	// region warmup, which only an explicit warm=0 disables).
	def, err := ParseSpec("est=uniform")
	if err != nil {
		t.Fatal(err)
	}
	if def.Estimator != EstimatorUniform || def.RegionSize != DefaultRegionSize || def.RegionWarmup != DefaultRegionSize/4 {
		t.Fatalf("defaults lost in round trip: %+v", def)
	}
	if _, err := ParseSpec("est=uniform,bogus=1"); err == nil {
		t.Fatal("unknown keys must be rejected")
	}
	if _, err := ParseSpec("est=uniform,frac=2"); err == nil {
		t.Fatal("out-of-range fraction must be rejected")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Estimator: "bogus", RegionSize: 500, Fraction: 0.5, Strata: 4, SetSize: 3},
		{Estimator: EstimatorUniform, RegionSize: 16, Fraction: 0.5, Strata: 4, SetSize: 3},
		{Estimator: EstimatorUniform, RegionSize: 500, Fraction: -0.5, Strata: 4, SetSize: 3},
		{Estimator: EstimatorUniform, RegionSize: 500, Fraction: 1.5, Strata: 4, SetSize: 3},
		{Estimator: EstimatorUniform, RegionSize: 500, Fraction: 0.5, Strata: 0, SetSize: 3},
		{Estimator: EstimatorUniform, RegionSize: 500, Fraction: 0.5, Strata: 4, SetSize: 1},
		{Estimator: EstimatorUniform, RegionSize: 500, Fraction: math.NaN(), Strata: 4, SetSize: 3},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: %+v should fail validation", i, s)
		}
	}
	if err := testSpec(EstimatorUniform).Validate(); err != nil {
		t.Fatalf("normalized default spec invalid: %v", err)
	}
}
