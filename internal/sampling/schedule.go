package sampling

import (
	"fmt"
	"sync"

	"pbsim/internal/trace"
)

// Region geometry: the measured window of `instructions` instructions
// (after the experiment's global warmup) is cut into regions of
// RegionSize instructions; the final region absorbs the remainder, and
// a window shorter than one region is a single region.

// regionCount returns the number of regions in the measured window.
func regionCount(instructions, regionSize int64) int {
	n := instructions / regionSize
	if n < 1 {
		return 1
	}
	return int(n)
}

// regionLen returns region r's instruction length.
func regionLen(r, numRegions int, regionSize, instructions int64) int64 {
	if r == numRegions-1 {
		return instructions - int64(numRegions-1)*regionSize
	}
	return regionSize
}

// budgetFor converts the sampling fraction into a detailed region
// budget, clamped to [1, numRegions].
func budgetFor(numRegions int, fraction float64) int {
	b := int(fraction*float64(numRegions) + 0.5)
	if b < 1 {
		b = 1
	}
	if b > numRegions {
		b = numRegions
	}
	return b
}

// group is a maximal run of adjacent selected regions, measured off
// one continuous pipeline: the generator is restored to snap, the CPU
// functionally warms `funcWarm` instructions (predictors, caches,
// TLBs — the history a continuous run would carry in), detail-simulates
// `warmup` instructions to refill the pipeline itself, then reads one
// RunMore window per region.
type group struct {
	first, last int   // inclusive region index range
	funcWarm    int64 // functionally-warmed instructions before the detailed warmup
	warmup      int64 // detailed warmup before the first region
	snap        trace.Snapshot
}

// schedule is the per-(workload, window, spec) sampling decision: the
// plan, its regions grouped for measurement, and generator snapshots
// that let every design row re-enter the stream in O(region) work.
// Schedules are immutable once built and shared across concurrent
// rows.
type schedule struct {
	spec       Spec
	numRegions int
	budget     int
	plan       Plan
	regions    []int
	groups     []group
	// functional is the one-time generator-walk cost (in instructions)
	// of building the schedule: the proxy pass (when the estimator
	// needs one) plus the snapshot pass.
	functional int64
}

// scheduleKey memoizes schedules the same way trace memoizes compiled
// programs: by value, one entry per distinct workload x window x spec.
type scheduleKey struct {
	params               trace.Params
	warmup, instructions int64
	spec                 Spec
}

var schedules sync.Map // scheduleKey -> *schedule

// scheduleFor returns the memoized schedule, building it on first use.
// Two goroutines racing on the same key both build identical schedules
// (selection is deterministic) and the first store wins.
func scheduleFor(gen *trace.Generator, warmup, instructions int64, spec Spec) (*schedule, error) {
	key := scheduleKey{params: gen.Params(), warmup: warmup, instructions: instructions, spec: spec}
	if cached, ok := schedules.Load(key); ok {
		return cached.(*schedule), nil
	}
	sch, err := buildSchedule(gen, warmup, instructions, spec)
	if err != nil {
		return nil, err
	}
	actual, _ := schedules.LoadOrStore(key, sch)
	return actual.(*schedule), nil
}

// buildSchedule runs the functional passes for one schedule: an
// optional proxy pass to score regions, the estimator's seeded
// selection, and a snapshot pass capturing the generator at each
// group's warmup start.
func buildSchedule(gen *trace.Generator, warmup, instructions int64, spec Spec) (*schedule, error) {
	est, err := ByName(spec.Estimator)
	if err != nil {
		return nil, err
	}
	numRegions := regionCount(instructions, spec.RegionSize)
	budget := budgetFor(numRegions, spec.Fraction)
	if budget >= numRegions {
		return nil, fmt.Errorf("sampling: budget %d covers all %d regions; the census path should not build a schedule", budget, numRegions)
	}
	sch := &schedule{spec: spec, numRegions: numRegions, budget: budget}

	var proxy []float64
	if est.NeedsProxy() {
		gen.Reset()
		proxy = profile(gen, warmup, numRegions, spec.RegionSize, instructions)
		sch.functional += gen.Emitted()
	}

	// The selection stream mixes the user seed with the workload seed:
	// benchmarks sample independently, yet the same (workload, spec)
	// always selects the same regions.
	rng := trace.NewRNG(spec.Seed ^ mix64(gen.Params().Seed))
	plan, err := est.Plan(numRegions, budget, spec, proxy, rng)
	if err != nil {
		return nil, err
	}
	sch.plan = plan
	sch.regions = plan.Regions()
	if err := validateRegions(sch.regions, numRegions); err != nil {
		return nil, err
	}

	// Group adjacent regions and capture one snapshot per group at its
	// warmup start (clamped at the stream origin).
	for _, r := range sch.regions {
		if n := len(sch.groups); n > 0 && sch.groups[n-1].last == r-1 {
			sch.groups[n-1].last = r
			continue
		}
		sch.groups = append(sch.groups, group{first: r, last: r})
	}
	gen.Reset()
	for gi := range sch.groups {
		g := &sch.groups[gi]
		start := warmup + int64(g.first)*spec.RegionSize
		// The warmups reach back from the region start, clamped to the
		// stream available between the previous snapshot position and
		// here (the pass walks forward only; at the stream origin there
		// is no prefix to warm from). The detailed warmup keeps priority
		// over the functional one: it is the shorter and the closer.
		avail := start - gen.Emitted()
		g.warmup = spec.RegionWarmup
		if g.warmup > avail {
			g.warmup = avail
		}
		g.funcWarm = spec.FuncWarmup
		if g.funcWarm > avail-g.warmup {
			g.funcWarm = avail - g.warmup
		}
		gen.Skip(start - g.warmup - g.funcWarm - gen.Emitted())
		g.snap = gen.Snapshot()
	}
	sch.functional += gen.Emitted()
	return sch, nil
}

// validateRegions checks a plan's selection: distinct, ascending, in
// range.
func validateRegions(regions []int, numRegions int) error {
	if len(regions) == 0 {
		return fmt.Errorf("sampling: plan selected no regions")
	}
	for i, r := range regions {
		if r < 0 || r >= numRegions {
			return fmt.Errorf("sampling: plan selected region %d outside 0..%d", r, numRegions-1)
		}
		if i > 0 && r <= regions[i-1] {
			return fmt.Errorf("sampling: plan regions not strictly ascending at index %d", i)
		}
	}
	return nil
}

// detailedPerRun returns the detailed-simulation instruction cost one
// design row pays under this schedule.
func (sch *schedule) detailedPerRun(instructions int64) int64 {
	var total int64
	for _, g := range sch.groups {
		total += g.warmup
		for r := g.first; r <= g.last; r++ {
			total += regionLen(r, sch.numRegions, sch.spec.RegionSize, instructions)
		}
	}
	return total
}

// funcWarmPerRun returns the functional-warming instruction cost one
// design row pays under this schedule.
func (sch *schedule) funcWarmPerRun() int64 {
	var total int64
	for _, g := range sch.groups {
		total += g.funcWarm
	}
	return total
}

// mix64 is the splitmix64 finalizer, used to decorrelate the
// per-workload selection stream from the user-visible sampling seed.
//
//pbcheck:pure
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
