package sampling

import (
	"fmt"

	"pbsim/internal/sim"
	"pbsim/internal/trace"
)

// Result is one sampled simulation's outcome: the CPI estimate with
// its 95% confidence interval, the extrapolated cycle count over the
// measured window, and the cost accounting behind the
// accuracy-vs-speed frontier.
type Result struct {
	// Estimator names the scheme that produced the estimate.
	Estimator string
	// NumRegions is the region population of the measured window;
	// SampledRegions counts the distinct regions detail-simulated.
	NumRegions     int
	SampledRegions int
	// CPI is the whole-window estimate; CIHalf is the half-width of
	// its 95% confidence interval (zero for a census).
	CPI    float64
	CIHalf float64
	// Cycles extrapolates CPI over the measured window (for a census,
	// the exact simulated cycle count); CyclesCIHalf scales CIHalf the
	// same way.
	Cycles       float64
	CyclesCIHalf float64
	// DetailedInstructions is this run's detail-simulated cost,
	// including per-region warmup. FunctionalInstructions is this run's
	// functional-warming cost (predictor/cache training before each
	// group, roughly an order of magnitude cheaper per instruction than
	// detailed simulation). ScheduleFunctional is the one-time
	// generator-walk cost of the shared schedule (proxy + snapshot
	// passes), paid once per workload x spec and amortized across all
	// design rows; it is reported identically by every row.
	DetailedInstructions   int64
	FunctionalInstructions int64
	ScheduleFunctional     int64
	// Census marks the degenerate full-simulation path (budget covered
	// every region): the result is bit-identical to an unsampled run.
	Census bool
}

// Run executes one sampled simulation of the workload stream behind
// gen: global warmup instructions are skipped functionally, the
// measured window of `instructions` is region-sampled per spec, and
// the whole-window CPI is extrapolated with a 95% CI. The generator's
// position on entry is irrelevant (Run restores recorded snapshots);
// its allocations are reused. Selection is deterministic, so repeated
// calls — from any row of a PB design — measure identical regions.
func Run(cfg sim.Config, gen *trace.Generator, warmup, instructions int64, spec Spec) (Result, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if warmup < 0 || instructions <= 0 {
		return Result{}, fmt.Errorf("sampling: invalid warmup/measure counts (%d, %d)", warmup, instructions)
	}
	numRegions := regionCount(instructions, spec.RegionSize)
	budget := budgetFor(numRegions, spec.Fraction)
	if budget >= numRegions {
		return runCensus(cfg, gen, warmup, instructions, spec, numRegions)
	}
	sch, err := scheduleFor(gen, warmup, instructions, spec)
	if err != nil {
		return Result{}, err
	}
	cpi, detailed, funcWarm, err := measure(cfg, gen, sch, instructions)
	if err != nil {
		return Result{}, err
	}
	mean, half, err := sch.plan.Estimate(cpi)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Estimator:              spec.Estimator,
		NumRegions:             numRegions,
		SampledRegions:         len(sch.regions),
		CPI:                    mean,
		CIHalf:                 half,
		Cycles:                 mean * float64(instructions),
		CyclesCIHalf:           half * float64(instructions),
		DetailedInstructions:   detailed,
		FunctionalInstructions: funcWarm,
		ScheduleFunctional:     sch.functional,
	}, nil
}

// runCensus is the degenerate path when the budget covers every
// region: it runs the exact full-simulation sequence (prewarm, warmup,
// measure), so a Fraction of 1.0 reproduces the unsampled response bit
// for bit.
func runCensus(cfg sim.Config, gen *trace.Generator, warmup, instructions int64, spec Spec, numRegions int) (Result, error) {
	gen.Reset()
	cpu, err := sim.New(cfg, gen, nil)
	if err != nil {
		return Result{}, err
	}
	cpu.PrewarmMemory()
	st, err := cpu.RunWithWarmup(warmup, instructions)
	if err != nil {
		return Result{}, err
	}
	cycles := float64(st.Cycles)
	return Result{
		Estimator:            spec.Estimator,
		NumRegions:           numRegions,
		SampledRegions:       numRegions,
		CPI:                  cycles / float64(instructions),
		Cycles:               cycles,
		DetailedInstructions: warmup + instructions,
		Census:               true,
	}, nil
}

// measure detail-simulates the schedule's groups: per group, the
// generator is restored to the recorded snapshot, a fresh CPU is
// functionally prewarmed, functionally warmed through the group's
// history window, detail-warmed, and each region's cycle count is read
// as one RunMore increment off the continuous pipeline.
func measure(cfg sim.Config, gen *trace.Generator, sch *schedule, instructions int64) (map[int]float64, int64, int64, error) {
	cpi := make(map[int]float64, len(sch.regions))
	var detailed, funcWarm int64
	for _, g := range sch.groups {
		if err := gen.Restore(g.snap); err != nil {
			return nil, 0, 0, err
		}
		cpu, err := sim.New(cfg, gen, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		cpu.PrewarmMemory()
		if g.funcWarm > 0 {
			cpu.WarmFunctional(g.funcWarm)
			funcWarm += g.funcWarm
		}
		if g.warmup > 0 {
			if _, err := cpu.RunMore(g.warmup); err != nil {
				return nil, 0, 0, fmt.Errorf("sampling: warmup before region %d: %w", g.first, err)
			}
			detailed += g.warmup
		}
		for r := g.first; r <= g.last; r++ {
			n := regionLen(r, sch.numRegions, sch.spec.RegionSize, instructions)
			st, err := cpu.RunMore(n)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("sampling: region %d: %w", r, err)
			}
			cpi[r] = float64(st.Cycles) / float64(n)
			detailed += n
		}
	}
	return cpi, detailed, funcWarm, nil
}

// Cost summarizes what a sampled run costs without simulating
// anything beyond the schedule's one-time functional passes; the
// frontier sweep uses it to account the speedup axis exactly.
type Cost struct {
	// PerRunDetailed is the detailed-instruction cost each design row
	// pays (warmup + measured regions; for a census, the full run).
	PerRunDetailed int64
	// PerRunFunctional is the functional-warming cost each design row
	// pays before its detailed work.
	PerRunFunctional int64
	// ScheduleFunctional is the one-time functional cost shared by all
	// rows of one workload x spec.
	ScheduleFunctional int64
	NumRegions         int
	SampledRegions     int
	Census             bool
}

// CostOf reports the sampling cost for one workload and window. It
// builds (or reuses) the memoized schedule, so a following Run pays no
// additional functional work.
func CostOf(p trace.Params, warmup, instructions int64, spec Spec) (Cost, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Cost{}, err
	}
	if warmup < 0 || instructions <= 0 {
		return Cost{}, fmt.Errorf("sampling: invalid warmup/measure counts (%d, %d)", warmup, instructions)
	}
	numRegions := regionCount(instructions, spec.RegionSize)
	if budgetFor(numRegions, spec.Fraction) >= numRegions {
		return Cost{
			PerRunDetailed: warmup + instructions,
			NumRegions:     numRegions,
			SampledRegions: numRegions,
			Census:         true,
		}, nil
	}
	gen, err := trace.NewGenerator(p)
	if err != nil {
		return Cost{}, err
	}
	sch, err := scheduleFor(gen, warmup, instructions, spec)
	if err != nil {
		return Cost{}, err
	}
	return Cost{
		PerRunDetailed:     sch.detailedPerRun(instructions),
		PerRunFunctional:   sch.funcWarmPerRun(),
		ScheduleFunctional: sch.functional,
		NumRegions:         numRegions,
		SampledRegions:     len(sch.regions),
	}, nil
}
