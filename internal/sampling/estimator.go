package sampling

import (
	"fmt"
	"math"
	"sort"

	"pbsim/internal/trace"
)

// z95 is the two-sided 95% normal quantile used for all confidence
// intervals in this package (the sampled region counts are large
// enough that the normal approximation is the standard choice — the
// same one the paper's CI machinery uses).
const z95 = 1.96

// Plan is one estimator's selection decision for one stream: which
// regions to detail-simulate, and how to fold their measured CPIs into
// the whole-program estimate. Plans are immutable once built and safe
// to share across concurrently simulated design rows.
type Plan interface {
	// Regions lists the distinct region indices to detail-simulate, in
	// ascending order.
	Regions() []int
	// Estimate combines the measured per-region CPIs (one entry per
	// region in Regions) into the whole-program CPI estimate and the
	// half-width of its 95% confidence interval.
	Estimate(cpi map[int]float64) (mean, half float64, err error)
}

// Estimator builds sampling plans. Implementations are stateless;
// all per-run state lives in the Plan.
type Estimator interface {
	// Name returns the spec name the estimator registers under.
	Name() string
	// NeedsProxy reports whether Plan requires per-region proxy scores
	// from the functional pre-pass.
	NeedsProxy() bool
	// Plan selects regions given the population size, the detailed
	// budget (1 <= budget < numRegions; a census never reaches Plan),
	// the normalized spec, proxy scores (nil unless NeedsProxy), and
	// the seeded selection stream.
	Plan(numRegions, budget int, spec Spec, proxy []float64, rng *trace.RNG) (Plan, error)
}

// estimators is the registry in canonical reporting order.
var estimators = []Estimator{uniformEstimator{}, stratifiedEstimator{}, rankedSetEstimator{}}

// Names lists the registered estimators in canonical order.
func Names() []string {
	names := make([]string, len(estimators))
	for i, e := range estimators {
		names[i] = e.Name()
	}
	return names
}

// ByName resolves an estimator by its spec name.
func ByName(name string) (Estimator, error) {
	for _, e := range estimators {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("sampling: unknown estimator %q (have %v)", name, Names())
}

// checkPlanArgs validates the selection geometry shared by every
// estimator.
func checkPlanArgs(numRegions, budget int) error {
	if numRegions < 1 {
		return fmt.Errorf("sampling: %d regions, need >= 1", numRegions)
	}
	if budget < 1 || budget > numRegions {
		return fmt.Errorf("sampling: budget %d outside 1..%d regions", budget, numRegions)
	}
	return nil
}

// gather pulls the measured CPI of every planned region, in order,
// erroring on a missing measurement — a plan must never silently
// estimate from a partial sample.
func gather(cpi map[int]float64, regions []int) ([]float64, error) {
	xs := make([]float64, len(regions))
	for i, r := range regions {
		v, ok := cpi[r]
		if !ok {
			return nil, fmt.Errorf("sampling: region %d was planned but not measured", r)
		}
		xs[i] = v
	}
	return xs, nil
}

// selectSystematic appends the n indices start, start+stride,
// start+2*stride, ... to dst: the region-selection inner loop shared
// by the uniform and stratified estimators.
//
//pbcheck:hotpath
func selectSystematic(dst []int, start, stride, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, start+i*stride)
	}
	return dst
}

// meanOf returns the arithmetic mean of xs (NaN for an empty sample).
//
//pbcheck:pure
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// sampleVar returns the unbiased (n-1 denominator) sample variance of
// xs around mean; zero when fewer than two samples exist.
//
//pbcheck:pure
func sampleVar(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// srsHalf returns the 95% CI half-width of a mean of m samples drawn
// without replacement from a population of size n: z * sqrt(s2/m *
// (1 - m/n)). The finite-population correction makes the interval
// collapse to zero for a census.
//
//pbcheck:pure
func srsHalf(s2 float64, m, n int) float64 {
	if m < 1 || n < 1 {
		return math.NaN()
	}
	fpc := 1 - float64(m)/float64(n)
	if fpc < 0 {
		fpc = 0
	}
	return z95 * math.Sqrt(s2/float64(m)*fpc)
}

// proxyLess orders two region indices by ascending proxy score with
// the index as a deterministic tie-break.
//
//pbcheck:pure
func proxyLess(proxy []float64, a, b int) bool {
	if proxy[a] < proxy[b] {
		return true
	}
	if proxy[b] < proxy[a] {
		return false
	}
	return a < b
}

// regionsByProxy returns the region indices 0..n-1 ordered by
// ascending proxy score (deterministically).
func regionsByProxy(proxy []float64) []int {
	order := make([]int, len(proxy))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return proxyLess(proxy, order[i], order[j]) })
	return order
}
