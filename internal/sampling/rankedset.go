package sampling

import (
	"fmt"
	"math"

	"pbsim/internal/trace"
)

// rankedSetEstimator is ranked-set sampling with repeated subsampling.
// Each cycle draws SetSize judgment sets of SetSize regions, ranks
// every set by the functional proxy (cheap), and detail-simulates one
// designated rank per set — rank 1 of the first set, rank 2 of the
// second, and so on — so each cycle contributes one balanced
// observation per rank stratum. The point estimate is the mean over
// all draws; the confidence interval comes from repeated subsampling:
// the between-cycle variance of cycle means estimates the variance of
// the overall mean without needing the (intractable) within-cycle
// covariance structure.
type rankedSetEstimator struct{}

func (rankedSetEstimator) Name() string     { return EstimatorRankedSet }
func (rankedSetEstimator) NeedsProxy() bool { return true }

type rankedSetPlan struct {
	draws      []int // designated regions, cycle-major: cycles x k
	k          int
	regions    []int // distinct draws, ascending
	numRegions int
}

func (rankedSetEstimator) Plan(numRegions, budget int, spec Spec, proxy []float64, rng *trace.RNG) (Plan, error) {
	if err := checkPlanArgs(numRegions, budget); err != nil {
		return nil, err
	}
	if len(proxy) != numRegions {
		return nil, fmt.Errorf("sampling: rankedset needs %d proxy scores, got %d", numRegions, len(proxy))
	}
	k := spec.SetSize
	if k > numRegions {
		k = numRegions
	}
	cycles := budget / k
	if cycles < 1 {
		cycles, k = 1, budget // tiny budget: one degenerate cycle
	}
	draws := make([]int, 0, cycles*k)
	set := make([]int, k)
	for c := 0; c < cycles; c++ {
		for rank := 0; rank < k; rank++ {
			sampleSet(set, numRegions, rng)
			rankSet(set, proxy)
			draws = append(draws, set[rank])
		}
	}
	return &rankedSetPlan{
		draws:      draws,
		k:          k,
		regions:    dedupeSorted(append([]int(nil), draws...)),
		numRegions: numRegions,
	}, nil
}

// sampleSet fills set with distinct region indices drawn from the
// seeded selection stream (rejection on duplicates; set sizes are tiny
// relative to the population).
//
//pbcheck:hotpath
func sampleSet(set []int, numRegions int, rng *trace.RNG) {
	for i := range set {
		for {
			v := rng.Intn(numRegions)
			dup := false
			for j := 0; j < i; j++ {
				if set[j] == v {
					dup = true
					break
				}
			}
			if !dup {
				set[i] = v
				break
			}
		}
	}
}

// rankSet orders the judgment set by ascending proxy score (insertion
// sort — sets hold a handful of indices): the judgment ranking of
// ranked-set sampling, paid for with the functional pass alone, never
// with detailed simulation.
//
//pbcheck:hotpath
func rankSet(set []int, proxy []float64) {
	for i := 1; i < len(set); i++ {
		v := set[i]
		j := i - 1
		for j >= 0 && proxyLess(proxy, v, set[j]) {
			set[j+1] = set[j]
			j--
		}
		set[j+1] = v
	}
}

func (p *rankedSetPlan) Regions() []int { return p.regions }

func (p *rankedSetPlan) Estimate(cpi map[int]float64) (float64, float64, error) {
	vals, err := gather(cpi, p.draws)
	if err != nil {
		return 0, 0, err
	}
	mean := meanOf(vals)
	cycles := len(p.draws) / p.k
	if cycles < 2 {
		// A single cycle has no between-cycle variance; fall back to
		// the SRS interval over the distinct draws.
		srs := srsPlan{regions: p.regions, numRegions: p.numRegions}
		_, half, err := srs.Estimate(cpi)
		return mean, half, err
	}
	// Repeated subsampling: each cycle is one balanced subsample; the
	// variance of the overall mean is the cycle-mean variance over the
	// cycle count.
	cycleMeans := make([]float64, cycles)
	for c := 0; c < cycles; c++ {
		cycleMeans[c] = meanOf(vals[c*p.k : (c+1)*p.k])
	}
	s2 := sampleVar(cycleMeans, meanOf(cycleMeans))
	return mean, z95 * math.Sqrt(s2/float64(cycles)), nil
}
