package sampling

import "pbsim/internal/trace"

// The functional proxy pass behind the two-phase estimators: one
// generator walk over the measured window charging each instruction a
// cost from a deliberately tiny machine model — direct-mapped code and
// data tag arrays plus branch and dependency pressure. Scores only
// rank regions against each other (which regions are expensive-ish),
// so fidelity to any real configuration is unnecessary; monotonicity
// with detailed-simulation cost is what matters. The pass runs once
// per workload x spec and is memoized with the schedule, so its cost
// amortizes across all design rows of a PB experiment.

const (
	proxyBlock    = 64  // bytes per tag-array block
	proxyCodeSets = 128 // 8 KB direct-mapped code filter
	proxyDataSets = 256 // 16 KB direct-mapped data filter
)

// Weights approximate the relative pipeline cost of the events the
// filter can see. Exact values are uncritical (only the induced region
// ordering is consumed); these mirror the usual miss-vs-hit and
// branch-vs-ALU latency ratios.
const (
	proxyCodeMissCost = 2
	proxyDataMissCost = 4
	proxyControlCost  = 1
	proxyTakenCost    = 0.5
	proxyDepCost      = 1
)

// proxyFilter holds the tag arrays. The zero value is an empty filter.
type proxyFilter struct {
	code [proxyCodeSets]uint64
	data [proxyDataSets]uint64
}

// score charges one instruction against the filter and returns its
// proxy cost.
//
//pbcheck:hotpath
func (f *proxyFilter) score(in trace.Instr) float64 {
	s := 0.0
	cb := in.PC / proxyBlock
	if f.code[cb%proxyCodeSets] != cb {
		f.code[cb%proxyCodeSets] = cb
		s += proxyCodeMissCost
	}
	if in.Class.IsControl() {
		s += proxyControlCost
		if in.Taken {
			s += proxyTakenCost
		}
	}
	if in.Class.IsMem() {
		db := in.Addr / proxyBlock
		if f.data[db%proxyDataSets] != db {
			f.data[db%proxyDataSets] = db
			s += proxyDataMissCost
		}
	}
	if d := in.Dep1; d > 0 && d <= 2 {
		s += proxyDepCost // tight dependency chains serialize issue
	}
	return s
}

// profile walks warmup instructions to warm the filter, then scores
// the measured window region by region, returning each region's mean
// per-instruction proxy cost. The generator must be positioned at the
// stream start.
func profile(gen *trace.Generator, warmup int64, numRegions int, regionSize, instructions int64) []float64 {
	var f proxyFilter
	for i := int64(0); i < warmup; i++ {
		f.score(gen.Next())
	}
	proxy := make([]float64, numRegions)
	for r := 0; r < numRegions; r++ {
		n := regionLen(r, numRegions, regionSize, instructions)
		sum := 0.0
		for i := int64(0); i < n; i++ {
			sum += f.score(gen.Next())
		}
		proxy[r] = sum / float64(n)
	}
	return proxy
}
