package cluster

import "sort"

// PercentileThreshold returns the distance below which the given
// fraction of off-diagonal pairs fall. The paper picks its Table 11
// threshold (sqrt(4000)) by hand; a percentile makes the choice
// data-driven when distance scales differ (e.g. between the paper's
// ranks and freshly measured ones).
func PercentileThreshold(m *Matrix, frac float64) float64 {
	var ds []float64
	for i := 0; i < m.Len(); i++ {
		for j := i + 1; j < m.Len(); j++ {
			ds = append(ds, m.D[i][j])
		}
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	if frac <= 0 {
		return ds[0]
	}
	if frac >= 1 {
		return ds[len(ds)-1]
	}
	idx := int(frac * float64(len(ds)))
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// ThresholdGroups partitions the benchmarks into similarity groups:
// two benchmarks belong to the same group when they are connected by a
// chain of pairs whose distance is below the threshold. This is the
// grouping rule behind Table 11 of the paper (e.g. vpr-Route, parser
// and bzip2 form one group because route-parser and route-bzip2 and
// parser-bzip2 distances all fall under the threshold). Groups are
// returned in order of their smallest member index; members are sorted
// within each group.
func ThresholdGroups(m *Matrix, threshold float64) [][]int {
	n := m.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, p := range m.SimilarPairs(threshold) {
		union(p[0], p[1])
	}
	buckets := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		buckets[r] = append(buckets[r], i)
	}
	roots := make([]int, 0, len(buckets))
	for r := range buckets {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		g := buckets[r]
		sort.Ints(g)
		groups = append(groups, g)
	}
	return groups
}

// GroupNames maps ThresholdGroups output back to benchmark names.
func GroupNames(m *Matrix, groups [][]int) [][]string {
	out := make([][]string, len(groups))
	for gi, g := range groups {
		names := make([]string, len(g))
		for i, idx := range g {
			names[i] = m.Names[idx]
		}
		out[gi] = names
	}
	return out
}

// Representatives picks one benchmark per group: the member with the
// smallest total distance to the rest of its group (its medoid). This
// implements the paper's efficiency argument -- simulate one member of
// each group instead of the whole redundant suite.
func Representatives(m *Matrix, groups [][]int) []int {
	reps := make([]int, len(groups))
	for gi, g := range groups {
		best, bestSum := g[0], -1.0
		for _, i := range g {
			sum := 0.0
			for _, j := range g {
				sum += m.At(i, j)
			}
			if bestSum < 0 || sum < bestSum {
				best, bestSum = i, sum
			}
		}
		reps[gi] = best
	}
	return reps
}
