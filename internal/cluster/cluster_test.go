package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"pbsim/internal/paperdata"
)

func paperMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := DistanceMatrix(paperdata.Benchmarks, paperdata.RankVectors(paperdata.Table9))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil || d != 5 {
		t.Errorf("Euclidean = %g, %v", d, err)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	di, err := EuclideanInts([]int{1, 1}, []int{4, 5})
	if err != nil || di != 5 {
		t.Errorf("EuclideanInts = %g, %v", di, err)
	}
	if _, err := EuclideanInts([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// Section 4.2: the distance between gzip and vpr-Place using the
	// Table 9 ranks is sqrt(8058) = 89.8.
	m := paperMatrix(t)
	d := m.At(0, 1)
	if math.Abs(d-math.Sqrt(8058)) > 1e-9 {
		t.Errorf("gzip-vprPlace distance = %.6f, want sqrt(8058) = %.6f", d, math.Sqrt(8058))
	}
	if math.Abs(d-89.8) > 0.05 {
		t.Errorf("gzip-vprPlace distance = %.2f, paper prints 89.8", d)
	}
}

func TestDistanceMatrixReproducesPaperTable10(t *testing.T) {
	// Recomputing all 78 pairwise distances from the published Table 9
	// ranks must reproduce the published Table 10 within its printed
	// rounding (one decimal).
	m := paperMatrix(t)
	for i := 0; i < 13; i++ {
		for j := 0; j < 13; j++ {
			want := paperdata.Table10[i][j]
			if math.Abs(m.At(i, j)-want) > 0.051 {
				t.Errorf("distance(%s, %s) = %.2f, paper prints %.1f",
					paperdata.Benchmarks[i], paperdata.Benchmarks[j], m.At(i, j), want)
			}
		}
	}
}

func TestThresholdGroupsReproducePaperTable11(t *testing.T) {
	m := paperMatrix(t)
	groups := GroupNames(m, ThresholdGroups(m, paperdata.Threshold))
	if len(groups) != len(paperdata.Table11Groups) {
		t.Fatalf("got %d groups, want %d: %v", len(groups), len(paperdata.Table11Groups), groups)
	}
	want := make(map[string]bool)
	for _, g := range paperdata.Table11Groups {
		want[groupKey(g)] = true
	}
	for _, g := range groups {
		if !want[groupKey(g)] {
			t.Errorf("unexpected group %v", g)
		}
	}
}

func groupKey(names []string) string {
	// groups are small; canonicalize by sorted join
	sorted := append([]string{}, names...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	key := ""
	for _, s := range sorted {
		key += s + "|"
	}
	return key
}

func TestDistanceMatrixValidation(t *testing.T) {
	if _, err := DistanceMatrix([]string{"a"}, nil); err == nil {
		t.Error("name/vector count mismatch should fail")
	}
	if _, err := DistanceMatrix([]string{"a", "b"}, [][]int{{1, 2}, {1}}); err == nil {
		t.Error("ragged vectors should fail")
	}
}

func TestSimilarPairsUsesStrictThreshold(t *testing.T) {
	m := &Matrix{
		Names: []string{"a", "b", "c"},
		D: [][]float64{
			{0, 5, 10},
			{5, 0, 7},
			{10, 7, 0},
		},
	}
	pairs := m.SimilarPairs(7)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Errorf("pairs = %v, want [[0 1]] (distance equal to threshold excluded)", pairs)
	}
}

func TestThresholdGroupsTransitivity(t *testing.T) {
	// a-b close, b-c close, a-c far: chain grouping still merges all
	// three (the rule behind the vpr-Route/parser/bzip2 group).
	m := &Matrix{
		Names: []string{"a", "b", "c"},
		D: [][]float64{
			{0, 1, 100},
			{1, 0, 1},
			{100, 1, 0},
		},
	}
	groups := ThresholdGroups(m, 2)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Errorf("groups = %v, want one group of three", groups)
	}
}

func TestRepresentatives(t *testing.T) {
	m := paperMatrix(t)
	groups := ThresholdGroups(m, paperdata.Threshold)
	reps := Representatives(m, groups)
	if len(reps) != len(groups) {
		t.Fatalf("%d representatives for %d groups", len(reps), len(groups))
	}
	for gi, g := range groups {
		found := false
		for _, i := range g {
			if reps[gi] == i {
				found = true
			}
		}
		if !found {
			t.Errorf("representative %d not a member of group %v", reps[gi], g)
		}
	}
	// A singleton group's representative is its only member.
	single := &Matrix{Names: []string{"x", "y"}, D: [][]float64{{0, 99}, {99, 0}}}
	g := ThresholdGroups(single, 1)
	r := Representatives(single, g)
	if len(r) != 2 || r[0] != 0 || r[1] != 1 {
		t.Errorf("singleton representatives = %v", r)
	}
}

func TestAgglomerateSingleLinkageMatchesThresholdGroups(t *testing.T) {
	// Cutting a single-linkage dendrogram at the similarity threshold
	// yields exactly the connected components of the threshold graph.
	m := paperMatrix(t)
	dend := Agglomerate(m, SingleLinkage)
	if len(dend.Merges) != 12 {
		t.Fatalf("%d merges, want 12", len(dend.Merges))
	}
	cut := dend.CutAt(paperdata.Threshold)
	direct := ThresholdGroups(m, paperdata.Threshold)
	if len(cut) != len(direct) {
		t.Fatalf("cut gives %d groups, threshold gives %d", len(cut), len(direct))
	}
	for i := range cut {
		if len(cut[i]) != len(direct[i]) {
			t.Errorf("group %d: %v vs %v", i, cut[i], direct[i])
		}
		for j := range cut[i] {
			if cut[i][j] != direct[i][j] {
				t.Errorf("group %d member %d: %v vs %v", i, j, cut[i], direct[i])
			}
		}
	}
}

func TestAgglomerateMergeDistancesMonotoneForSingleLinkage(t *testing.T) {
	m := paperMatrix(t)
	dend := Agglomerate(m, SingleLinkage)
	for i := 1; i < len(dend.Merges); i++ {
		if dend.Merges[i].Distance < dend.Merges[i-1].Distance {
			t.Errorf("single-linkage merge distances not monotone: %g after %g",
				dend.Merges[i].Distance, dend.Merges[i-1].Distance)
		}
	}
}

func TestAgglomerateLinkages(t *testing.T) {
	m := paperMatrix(t)
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		dend := Agglomerate(m, l)
		if len(dend.Merges) != m.Len()-1 {
			t.Errorf("%s: %d merges", l, len(dend.Merges))
		}
		// Cutting at +inf yields one cluster with every leaf.
		all := dend.CutAt(math.Inf(1))
		if len(all) != 1 || len(all[0]) != m.Len() {
			t.Errorf("%s: cut at inf = %v", l, all)
		}
		// Cutting at 0 yields all singletons.
		none := dend.CutAt(0)
		if len(none) != m.Len() {
			t.Errorf("%s: cut at 0 gives %d groups", l, len(none))
		}
		if dend.ASCII() == "" {
			t.Errorf("%s: empty ASCII rendering", l)
		}
	}
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" ||
		AverageLinkage.String() != "average" || Linkage(9).String() != "Linkage(9)" {
		t.Error("Linkage.String values")
	}
	empty := Agglomerate(&Matrix{}, SingleLinkage)
	if len(empty.Merges) != 0 {
		t.Error("empty matrix should produce no merges")
	}
}

func TestPropDistanceAxioms(t *testing.T) {
	f := func(a, b, c []int) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		if n == 0 {
			return true
		}
		a, b, c = a[:n], b[:n], c[:n]
		// Clamp to avoid float overflow on giant ints.
		for _, v := range [][]int{a, b, c} {
			for i := range v {
				v[i] %= 1 << 20
			}
		}
		dab, _ := EuclideanInts(a, b)
		dba, _ := EuclideanInts(b, a)
		daa, _ := EuclideanInts(a, a)
		dac, _ := EuclideanInts(a, c)
		dcb, _ := EuclideanInts(c, b)
		if dab != dba || daa != 0 || dab < 0 {
			return false
		}
		// Triangle inequality with float tolerance.
		return dab <= dac+dcb+1e-9*(1+dab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileThreshold(t *testing.T) {
	m := paperMatrix(t)
	// All pairs fall below the 100th percentile; none below the 0th.
	top := PercentileThreshold(m, 1)
	bot := PercentileThreshold(m, 0)
	if top < bot {
		t.Fatalf("percentiles inverted: %g < %g", top, bot)
	}
	if got := len(m.SimilarPairs(top + 0.001)); got != 78 {
		t.Errorf("pairs below max = %d, want all 78", got)
	}
	if got := len(m.SimilarPairs(bot)); got != 0 {
		t.Errorf("pairs below min = %d, want 0", got)
	}
	// ~15% of 78 pairs ~ 11 pairs under the 15th-percentile cut.
	mid := PercentileThreshold(m, 0.15)
	n := len(m.SimilarPairs(mid))
	if n < 8 || n > 14 {
		t.Errorf("pairs below 15th percentile = %d", n)
	}
	if PercentileThreshold(&Matrix{}, 0.5) != 0 {
		t.Error("empty matrix threshold")
	}
}
