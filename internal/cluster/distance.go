// Package cluster implements the paper's benchmark-classification
// method (Section 4.2): each benchmark is represented by the vector of
// its parameter ranks from a Plackett-Burman experiment, Euclidean
// distance between rank vectors measures how similarly two benchmarks
// stress the processor, and thresholding the distance matrix groups
// similar benchmarks. An agglomerative hierarchical clustering is
// provided as an extension for threshold-free exploration.
package cluster

import (
	"fmt"
	"math"
)

// Euclidean returns the Euclidean distance between two equal-length
// vectors, the paper's similarity measure for benchmark rank vectors.
func Euclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("cluster: vector lengths differ (%d vs %d)", len(x), len(y))
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// EuclideanInts is Euclidean on integer rank vectors.
func EuclideanInts(x, y []int) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("cluster: vector lengths differ (%d vs %d)", len(x), len(y))
	}
	s := 0.0
	for i := range x {
		d := float64(x[i] - y[i])
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Matrix is a symmetric distance matrix with a zero diagonal, as in
// Table 10 of the paper.
type Matrix struct {
	Names []string
	D     [][]float64
}

// DistanceMatrix builds the full pairwise Euclidean distance matrix
// over benchmark rank vectors. vectors is indexed [benchmark][factor].
func DistanceMatrix(names []string, vectors [][]int) (*Matrix, error) {
	if len(names) != len(vectors) {
		return nil, fmt.Errorf("cluster: %d names but %d vectors", len(names), len(vectors))
	}
	n := len(vectors)
	m := &Matrix{Names: names, D: make([][]float64, n)}
	for i := range m.D {
		m.D[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := EuclideanInts(vectors[i], vectors[j])
			if err != nil {
				return nil, fmt.Errorf("cluster: benchmarks %s vs %s: %w", names[i], names[j], err)
			}
			m.D[i][j] = d
			m.D[j][i] = d
		}
	}
	return m, nil
}

// At returns the distance between benchmarks i and j.
func (m *Matrix) At(i, j int) float64 { return m.D[i][j] }

// Len returns the number of benchmarks.
func (m *Matrix) Len() int { return len(m.Names) }

// SimilarPairs returns all index pairs (i < j) whose distance is
// strictly below the threshold: the bold entries of Table 10.
func (m *Matrix) SimilarPairs(threshold float64) [][2]int {
	var pairs [][2]int
	for i := 0; i < m.Len(); i++ {
		for j := i + 1; j < m.Len(); j++ {
			if m.D[i][j] < threshold {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}
