package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Linkage selects how the distance between two clusters is derived
// from member distances during agglomerative clustering.
type Linkage int

// Supported linkage criteria.
const (
	// SingleLinkage merges on the minimum pairwise distance. With a
	// cut at the similarity threshold it reproduces ThresholdGroups.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on the unweighted mean pairwise distance.
	AverageLinkage
)

func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step.
type Merge struct {
	// A and B are node ids: ids < n are leaves (benchmark indices);
	// id n+k is the cluster created by the k-th merge.
	A, B int
	// Distance is the linkage distance at which A and B merged.
	Distance float64
}

// Dendrogram is the full merge history of an agglomerative clustering.
type Dendrogram struct {
	Names   []string
	Linkage Linkage
	Merges  []Merge
}

// Agglomerate performs hierarchical clustering over the distance
// matrix with the given linkage, recording n-1 merges.
func Agglomerate(m *Matrix, linkage Linkage) *Dendrogram {
	n := m.Len()
	d := &Dendrogram{Names: m.Names, Linkage: linkage}
	if n == 0 {
		return d
	}
	// active cluster id -> member leaf indices
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	nextID := n
	dist := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := -1.0
			for _, i := range a {
				for _, j := range b {
					if best < 0 || m.D[i][j] < best {
						best = m.D[i][j]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 0.0
			for _, i := range a {
				for _, j := range b {
					if m.D[i][j] > worst {
						worst = m.D[i][j]
					}
				}
			}
			return worst
		default:
			sum := 0.0
			for _, i := range a {
				for _, j := range b {
					sum += m.D[i][j]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}
	for len(members) > 1 {
		ids := make([]int, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		bestA, bestB, bestD := -1, -1, -1.0
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				dd := dist(members[ids[x]], members[ids[y]])
				if bestD < 0 || dd < bestD {
					bestA, bestB, bestD = ids[x], ids[y], dd
				}
			}
		}
		merged := append(append([]int{}, members[bestA]...), members[bestB]...)
		delete(members, bestA)
		delete(members, bestB)
		members[nextID] = merged
		d.Merges = append(d.Merges, Merge{A: bestA, B: bestB, Distance: bestD})
		nextID++
	}
	return d
}

// CutAt returns the clusters present when all merges at distance >=
// cut are undone: groups of leaf indices, ordered by smallest member.
func (d *Dendrogram) CutAt(cut float64) [][]int {
	n := len(d.Names)
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	id := n
	for _, mg := range d.Merges {
		if mg.Distance < cut {
			merged := append(append([]int{}, members[mg.A]...), members[mg.B]...)
			delete(members, mg.A)
			delete(members, mg.B)
			members[id] = merged
		}
		id++
	}
	var groups [][]int
	for _, g := range members {
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// ASCII renders the merge history as an indented text tree, one line
// per merge in ascending distance order, for quick terminal
// inspection of benchmark similarity structure.
func (d *Dendrogram) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "agglomerative clustering (%s linkage)\n", d.Linkage)
	labels := make(map[int]string, 2*len(d.Names))
	for i, name := range d.Names {
		labels[i] = name
	}
	id := len(d.Names)
	for _, mg := range d.Merges {
		label := "{" + labels[mg.A] + ", " + labels[mg.B] + "}"
		labels[id] = label
		fmt.Fprintf(&b, "  %7.1f  %s + %s\n", mg.Distance, labels[mg.A], labels[mg.B])
		id++
	}
	return b.String()
}
