// Package paperdata embeds the published results of Yi, Lilja and
// Hawkins (HPCA 2003) verbatim: the per-benchmark parameter ranks of
// Table 9 (base processor) and Table 12 (with instruction
// precomputation), and the benchmark-distance matrix of Table 10.
// The repository's tests use these to validate the analysis pipeline
// (ranks -> distances -> groups) against the paper's own numbers, and
// the experiment harness prints them beside freshly measured values.
package paperdata

// Benchmarks lists the paper's 13 workloads (Table 5) in table order.
var Benchmarks = []string{
	"gzip", "vpr-Place", "vpr-Route", "gcc", "mesa", "art", "mcf",
	"equake", "ammp", "parser", "vortex", "bzip2", "twolf",
}

// BenchmarkTypes gives Integer / Floating-Point per benchmark
// (Table 5).
var BenchmarkTypes = map[string]string{
	"gzip": "Integer", "vpr-Place": "Integer", "vpr-Route": "Integer",
	"gcc": "Integer", "mesa": "Floating-Point", "art": "Floating-Point",
	"mcf": "Integer", "equake": "Floating-Point", "ammp": "Floating-Point",
	"parser": "Integer", "vortex": "Integer", "bzip2": "Integer",
	"twolf": "Integer",
}

// InstructionsSimulatedM gives Table 5's dynamic instruction counts in
// millions (MinneSPEC large reduced inputs, run to completion).
var InstructionsSimulatedM = map[string]float64{
	"gzip": 1364.2, "vpr-Place": 1521.7, "vpr-Route": 881.1,
	"gcc": 4040.7, "mesa": 1217.9, "art": 2181.1, "mcf": 601.2,
	"equake": 713.7, "ammp": 1228.1, "parser": 2721.6,
	"vortex": 1050.2, "bzip2": 2467.7, "twolf": 764.6,
}

// RankRow is one parameter row of Table 9 or Table 12.
type RankRow struct {
	Parameter string
	Ranks     [13]int // per benchmark, Benchmarks order
	Sum       int
}

// Table9 is the paper's Plackett-Burman ranking of all 43 design
// columns for the base processor, sorted by sum of ranks.
var Table9 = []RankRow{
	{"Reorder Buffer Entries", [13]int{1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4}, 36},
	{"L2 Cache Latency", [13]int{4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2}, 52},
	{"BPred Type", [13]int{2, 5, 3, 5, 5, 27, 11, 6, 4, 4, 16, 7, 5}, 100},
	{"Int ALUs", [13]int{3, 7, 5, 8, 4, 29, 8, 9, 19, 6, 9, 2, 9}, 118},
	{"L1 D-Cache Latency", [13]int{7, 6, 7, 7, 12, 8, 14, 5, 40, 7, 5, 6, 6}, 130},
	{"L1 I-Cache Size", [13]int{6, 1, 12, 1, 1, 12, 37, 1, 36, 8, 1, 16, 1}, 133},
	{"L2 Cache Size", [13]int{9, 35, 2, 6, 21, 1, 1, 7, 2, 2, 6, 3, 43}, 138},
	{"L1 I-Cache Block Size", [13]int{16, 3, 20, 3, 16, 10, 32, 4, 10, 11, 3, 22, 3}, 153},
	{"Memory Latency First", [13]int{36, 25, 6, 9, 23, 3, 3, 8, 1, 5, 8, 5, 28}, 160},
	{"LSQ Entries", [13]int{12, 14, 9, 10, 13, 39, 10, 10, 17, 9, 7, 4, 10}, 164},
	{"Speculative Branch Update", [13]int{8, 17, 23, 28, 7, 16, 39, 12, 8, 20, 22, 20, 17}, 237},
	{"D-TLB Size", [13]int{20, 28, 11, 23, 29, 13, 12, 11, 25, 14, 25, 11, 24}, 246},
	{"L1 D-Cache Size", [13]int{18, 8, 10, 12, 39, 18, 9, 36, 32, 21, 12, 31, 7}, 253},
	{"L1 I-Cache Associativity", [13]int{5, 40, 15, 29, 8, 34, 23, 28, 16, 17, 15, 9, 21}, 260},
	{"FP Multiply Latency", [13]int{31, 12, 22, 11, 19, 24, 15, 23, 24, 29, 14, 23, 19}, 266},
	{"Memory Bandwidth", [13]int{37, 36, 13, 14, 43, 6, 6, 29, 3, 12, 19, 12, 38}, 268},
	{"Int ALU Latencies", [13]int{15, 15, 18, 13, 41, 22, 33, 14, 30, 16, 41, 10, 16}, 284},
	{"BTB Entries", [13]int{10, 24, 19, 20, 9, 42, 31, 20, 22, 19, 20, 17, 34}, 287},
	{"L1 D-Cache Block Size", [13]int{17, 29, 34, 22, 15, 9, 24, 19, 28, 13, 32, 28, 26}, 296},
	{"Int Divide Latency", [13]int{29, 10, 26, 16, 24, 32, 41, 32, 20, 10, 10, 43, 8}, 301},
	{"Int Mult/Div", [13]int{14, 20, 29, 31, 10, 23, 27, 24, 33, 36, 18, 26, 15}, 306},
	{"L2 Cache Associativity", [13]int{23, 19, 14, 19, 32, 28, 5, 39, 37, 18, 42, 21, 12}, 309},
	{"I-TLB Latency", [13]int{33, 18, 24, 18, 37, 30, 30, 16, 21, 32, 11, 29, 18}, 317},
	{"Instruction Fetch Queue Entries", [13]int{43, 13, 27, 30, 26, 20, 18, 37, 9, 25, 23, 34, 14}, 319},
	{"BPred Misprediction Penalty", [13]int{11, 23, 42, 21, 6, 43, 20, 34, 11, 22, 39, 37, 23}, 332},
	{"FP ALUs", [13]int{34, 11, 31, 15, 34, 17, 40, 22, 26, 37, 13, 42, 13}, 335},
	{"FP Divide Latency", [13]int{22, 9, 35, 17, 30, 21, 38, 15, 43, 38, 17, 39, 11}, 335},
	{"I-TLB Page Size", [13]int{42, 39, 8, 37, 36, 40, 7, 17, 12, 26, 28, 14, 39}, 345},
	{"L1 D-Cache Associativity", [13]int{13, 38, 17, 34, 18, 41, 34, 33, 14, 15, 35, 15, 42}, 349},
	{"I-TLB Associativity", [13]int{24, 27, 37, 25, 17, 31, 42, 13, 29, 30, 21, 33, 22}, 351},
	{"L2 Cache Block Size", [13]int{25, 43, 16, 38, 31, 7, 35, 27, 7, 35, 38, 13, 40}, 355},
	{"BTB Associativity", [13]int{21, 21, 36, 32, 11, 33, 17, 31, 34, 43, 27, 35, 25}, 366},
	{"D-TLB Associativity", [13]int{40, 32, 25, 26, 22, 35, 26, 26, 18, 33, 26, 30, 35}, 374},
	{"FP ALU Latencies", [13]int{32, 16, 38, 41, 38, 11, 22, 30, 23, 27, 30, 40, 29}, 377},
	{"Memory Ports", [13]int{39, 31, 41, 24, 27, 15, 16, 41, 5, 42, 29, 41, 27}, 378},
	{"I-TLB Size", [13]int{35, 34, 28, 35, 20, 37, 19, 18, 31, 34, 34, 27, 31}, 383},
	{"Dummy Factor #2", [13]int{27, 42, 21, 39, 35, 14, 13, 35, 41, 28, 43, 18, 30}, 386},
	{"FP Mult/Div", [13]int{41, 22, 43, 40, 40, 19, 28, 38, 27, 31, 31, 19, 20}, 399},
	{"Int Multiply Latency", [13]int{30, 41, 39, 36, 14, 26, 29, 21, 15, 41, 37, 32, 41}, 402},
	{"FP Square Root Latency", [13]int{38, 30, 40, 33, 33, 5, 25, 42, 42, 24, 24, 38, 37}, 411},
	{"L1 I-Cache Latency", [13]int{26, 26, 32, 42, 28, 38, 21, 40, 38, 40, 36, 25, 33}, 425},
	{"Return Address Stack Entries", [13]int{28, 33, 33, 27, 42, 25, 36, 25, 39, 39, 33, 36, 32}, 428},
	{"Dummy Factor #1", [13]int{19, 37, 30, 43, 25, 36, 43, 43, 35, 23, 40, 24, 36}, 434},
}

// Table12 is Table 9's counterpart with a 128-entry instruction
// precomputation table enabled.
var Table12 = []RankRow{
	{"RUU Entries", [13]int{1, 4, 1, 4, 3, 2, 2, 3, 6, 1, 4, 1, 4}, 36},
	{"L2 Cache Latency", [13]int{4, 2, 4, 2, 2, 4, 4, 2, 13, 3, 2, 8, 2}, 52},
	{"BPred Type", [13]int{2, 5, 3, 5, 5, 28, 11, 8, 4, 4, 16, 7, 5}, 103},
	{"L1 D-Cache Latency", [13]int{7, 6, 5, 7, 11, 8, 14, 5, 40, 7, 5, 4, 6}, 125},
	{"L1 I-Cache Size", [13]int{5, 1, 12, 1, 1, 12, 38, 1, 36, 8, 1, 15, 1}, 132},
	{"Int ALUs", [13]int{6, 8, 8, 9, 8, 29, 9, 13, 20, 6, 9, 3, 9}, 137},
	{"L2 Cache Size", [13]int{9, 35, 2, 6, 22, 1, 1, 6, 2, 2, 6, 2, 43}, 137},
	{"L1 I-Cache Block Size", [13]int{15, 3, 20, 3, 14, 10, 32, 4, 10, 11, 3, 20, 3}, 148},
	{"Memory Latency First", [13]int{35, 25, 6, 8, 18, 3, 3, 7, 1, 5, 7, 6, 27}, 151},
	{"LSQ Entries", [13]int{13, 14, 9, 10, 15, 40, 10, 9, 17, 9, 8, 5, 10}, 169},
	{"D-TLB Size", [13]int{21, 28, 11, 24, 25, 13, 12, 10, 25, 14, 25, 10, 24}, 242},
	{"Speculative Branch Update", [13]int{8, 20, 25, 29, 7, 16, 39, 11, 8, 20, 21, 22, 19}, 245},
	{"L1 I-Cache Associativity", [13]int{3, 41, 15, 28, 6, 34, 23, 28, 16, 17, 11, 9, 21}, 252},
	{"L1 D-Cache Size", [13]int{18, 7, 10, 12, 42, 19, 8, 35, 32, 21, 13, 32, 7}, 256},
	{"FP Multiply Latency", [13]int{31, 12, 22, 11, 19, 24, 15, 22, 24, 28, 14, 24, 18}, 264},
	{"Memory Bandwidth", [13]int{33, 36, 13, 14, 43, 6, 6, 31, 3, 12, 20, 11, 38}, 266},
	{"BTB Entries", [13]int{10, 23, 19, 20, 9, 41, 31, 20, 22, 19, 19, 16, 34}, 283},
	{"Int ALU Latencies", [13]int{16, 15, 18, 13, 40, 22, 33, 14, 31, 16, 41, 12, 16}, 287},
	{"L1 D-Cache Block Size", [13]int{17, 30, 34, 22, 16, 9, 24, 19, 26, 13, 33, 25, 26}, 294},
	{"Int Divide Latency", [13]int{30, 10, 26, 17, 24, 33, 40, 33, 19, 10, 10, 41, 8}, 301},
	{"L2 Cache Associativity", [13]int{23, 19, 14, 19, 33, 27, 5, 39, 37, 18, 42, 21, 12}, 309},
	{"Int Mult/Div", [13]int{14, 21, 30, 31, 12, 23, 27, 23, 33, 37, 18, 27, 15}, 311},
	{"I-TLB Latency", [13]int{32, 17, 24, 18, 34, 30, 30, 16, 21, 33, 12, 29, 17}, 313},
	{"Instruction Fetch Queue Entries", [13]int{43, 13, 27, 30, 23, 20, 19, 37, 9, 25, 23, 34, 14}, 317},
	{"BPred Misprediction Penalty", [13]int{11, 24, 41, 21, 4, 43, 20, 32, 11, 22, 39, 35, 23}, 326},
	{"FP Divide Latency", [13]int{20, 9, 36, 16, 28, 21, 37, 15, 43, 38, 17, 38, 11}, 329},
	{"FP ALUs", [13]int{34, 11, 31, 15, 38, 17, 41, 24, 27, 36, 15, 43, 13}, 345},
	{"I-TLB Page Size", [13]int{42, 38, 7, 38, 39, 39, 7, 17, 12, 26, 28, 14, 39}, 346},
	{"L1 D-Cache Associativity", [13]int{12, 39, 17, 35, 17, 42, 34, 34, 14, 15, 36, 17, 42}, 354},
	{"L2 Cache Block Size", [13]int{25, 43, 16, 37, 31, 7, 35, 27, 7, 35, 38, 13, 40}, 354},
	{"I-TLB Associativity", [13]int{26, 27, 38, 25, 20, 31, 42, 12, 29, 30, 22, 33, 22}, 357},
	{"BTB Associativity", [13]int{22, 18, 35, 32, 10, 32, 17, 30, 34, 43, 27, 36, 25}, 361},
	{"D-TLB Associativity", [13]int{40, 32, 23, 26, 27, 35, 25, 26, 18, 32, 26, 28, 35}, 373},
	{"Memory Ports", [13]int{39, 31, 39, 23, 26, 15, 16, 40, 5, 42, 30, 40, 29}, 375},
	{"FP ALU Latencies", [13]int{37, 16, 37, 41, 37, 11, 21, 29, 23, 27, 29, 42, 28}, 378},
	{"I-TLB Size", [13]int{36, 34, 28, 34, 21, 37, 18, 18, 30, 34, 34, 30, 32}, 386},
	{"Dummy Factor #2", [13]int{28, 42, 21, 39, 32, 14, 13, 36, 42, 29, 43, 18, 30}, 387},
	{"Int Multiply Latency", [13]int{29, 40, 42, 36, 13, 26, 29, 21, 15, 41, 35, 31, 41}, 399},
	{"FP Mult/Div", [13]int{41, 22, 43, 40, 41, 18, 28, 38, 28, 31, 31, 19, 20}, 400},
	{"FP Square Root Latency", [13]int{38, 29, 40, 33, 35, 5, 26, 43, 41, 24, 24, 39, 37}, 414},
	{"Return Address Stack Entries", [13]int{27, 33, 33, 27, 36, 25, 36, 25, 39, 40, 32, 37, 31}, 421},
	{"L1 I-Cache Latency", [13]int{24, 26, 32, 42, 29, 38, 22, 41, 38, 39, 37, 26, 33}, 427},
	{"Dummy Factor #1", [13]int{19, 37, 29, 43, 30, 36, 43, 42, 35, 23, 40, 23, 36}, 436},
}

// Table10 is the paper's benchmark distance matrix (upper triangle
// listed row-major, Benchmarks order), rounded to one decimal as
// printed.
var Table10 = [13][13]float64{
	{0, 89.8, 81.1, 81.9, 62.0, 113.5, 109.6, 79.5, 111.7, 73.6, 92.0, 78.1, 85.5},
	{89.8, 0, 98.9, 63.7, 94.0, 102.8, 110.9, 84.7, 118.1, 89.7, 68.5, 111.4, 35.2},
	{81.1, 98.9, 0, 71.7, 98.5, 100.4, 75.5, 73.3, 91.7, 56.4, 79.2, 45.7, 96.6},
	{81.9, 63.7, 71.7, 0, 90.9, 92.6, 94.5, 63.6, 98.5, 65.0, 54.6, 88.8, 67.3},
	{62.0, 94.0, 98.5, 90.9, 0, 120.9, 109.9, 81.8, 100.2, 88.9, 87.8, 94.1, 91.7},
	{113.5, 102.8, 100.4, 92.6, 120.9, 0, 98.6, 96.3, 105.2, 94.4, 92.7, 102.5, 105.2},
	{109.6, 110.9, 75.5, 94.5, 109.9, 98.6, 0, 104.9, 94.8, 87.6, 101.3, 80.0, 111.1},
	{79.5, 84.7, 73.3, 63.6, 81.8, 96.3, 104.9, 0, 98.4, 77.1, 67.8, 76.1, 86.5},
	{111.7, 118.1, 91.7, 98.5, 100.2, 105.2, 94.8, 98.4, 0, 91.1, 98.8, 92.7, 120.0},
	{73.6, 89.7, 56.4, 65.0, 88.9, 94.4, 87.6, 77.1, 91.1, 0, 77.4, 62.9, 89.7},
	{92.0, 68.5, 79.2, 54.6, 87.8, 92.7, 101.3, 67.8, 98.8, 77.4, 0, 94.8, 73.1},
	{78.1, 111.4, 45.7, 88.8, 94.1, 102.5, 80.0, 76.1, 92.7, 62.9, 94.8, 0, 107.9},
	{85.5, 35.2, 96.6, 67.3, 91.7, 105.2, 111.1, 86.5, 120.0, 89.7, 73.1, 107.9, 0},
}

// Table11Groups is the paper's benchmark grouping at the threshold
// sqrt(4000) ~ 63.2.
var Table11Groups = [][]string{
	{"gzip", "mesa"},
	{"vpr-Place", "twolf"},
	{"vpr-Route", "parser", "bzip2"},
	{"gcc", "vortex"},
	{"art"},
	{"mcf"},
	{"equake"},
	{"ammp"},
}

// Threshold is the similarity threshold used for Table 11.
const Threshold = 63.245553203367585 // sqrt(4000)

// RankVectors returns the table's ranks re-indexed as
// [benchmark][parameter-row], the orientation used for distance
// computation.
func RankVectors(table []RankRow) [][]int {
	out := make([][]int, len(Benchmarks))
	for b := range out {
		vec := make([]int, len(table))
		for p, row := range table {
			vec[p] = row.Ranks[b]
		}
		out[b] = vec
	}
	return out
}
