package paperdata

import "testing"

func TestTableSumsMatchPublishedSums(t *testing.T) {
	for _, table := range [][]RankRow{Table9, Table12} {
		for _, row := range table {
			sum := 0
			for _, r := range row.Ranks {
				sum += r
			}
			if sum != row.Sum {
				t.Errorf("%s: ranks sum to %d, published sum is %d", row.Parameter, sum, row.Sum)
			}
		}
	}
}

func TestTablesHave43Rows(t *testing.T) {
	if len(Table9) != 43 {
		t.Errorf("Table9 has %d rows, want 43", len(Table9))
	}
	if len(Table12) != 43 {
		t.Errorf("Table12 has %d rows, want 43", len(Table12))
	}
}

func TestBenchmarkColumnsArePermutations(t *testing.T) {
	for ti, table := range [][]RankRow{Table9, Table12} {
		for b, name := range Benchmarks {
			seen := make([]bool, len(table)+1)
			for _, row := range table {
				r := row.Ranks[b]
				if r < 1 || r > len(table) {
					t.Fatalf("table %d, %s: rank %d out of range in row %s", ti, name, r, row.Parameter)
				}
				if seen[r] {
					t.Errorf("table %d, %s: rank %d appears twice", ti, name, r)
				}
				seen[r] = true
			}
		}
	}
}

func TestSumsAreNonDecreasing(t *testing.T) {
	for ti, table := range [][]RankRow{Table9, Table12} {
		for i := 1; i < len(table); i++ {
			if table[i].Sum < table[i-1].Sum {
				t.Errorf("table %d: sum order violated at %s (%d < %d)", ti, table[i].Parameter, table[i].Sum, table[i-1].Sum)
			}
		}
	}
}

func TestTable10IsSymmetricWithZeroDiagonal(t *testing.T) {
	for i := 0; i < 13; i++ {
		if Table10[i][i] != 0 {
			t.Errorf("diagonal (%d,%d) = %g", i, i, Table10[i][i])
		}
		for j := 0; j < 13; j++ {
			if Table10[i][j] != Table10[j][i] {
				t.Errorf("asymmetry at (%d,%d): %g vs %g", i, j, Table10[i][j], Table10[j][i])
			}
		}
	}
}

func TestRankVectors(t *testing.T) {
	vecs := RankVectors(Table9)
	if len(vecs) != 13 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	// gzip's rank for "Reorder Buffer Entries" (row 0) is 1; twolf's
	// rank for "L2 Cache Size" (row 6) is 43.
	if vecs[0][0] != 1 {
		t.Errorf("gzip ROB rank = %d, want 1", vecs[0][0])
	}
	if vecs[12][6] != 43 {
		t.Errorf("twolf L2-size rank = %d, want 43", vecs[12][6])
	}
}

func TestRosterConsistency(t *testing.T) {
	if len(Benchmarks) != 13 {
		t.Fatalf("%d benchmarks", len(Benchmarks))
	}
	for _, b := range Benchmarks {
		if _, ok := BenchmarkTypes[b]; !ok {
			t.Errorf("missing type for %s", b)
		}
		if _, ok := InstructionsSimulatedM[b]; !ok {
			t.Errorf("missing instruction count for %s", b)
		}
	}
}
