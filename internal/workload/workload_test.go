package workload

import (
	"testing"

	"pbsim/internal/paperdata"
	"pbsim/internal/trace"
)

func TestSuiteMatchesPaperTable5(t *testing.T) {
	ws := All()
	if len(ws) != 13 {
		t.Fatalf("%d workloads, Table 5 lists 13", len(ws))
	}
	for i, w := range ws {
		if w.Name != paperdata.Benchmarks[i] {
			t.Errorf("workload %d = %q, Table 5 order says %q", i, w.Name, paperdata.Benchmarks[i])
		}
		if w.Type != paperdata.BenchmarkTypes[w.Name] {
			t.Errorf("%s type = %q, paper says %q", w.Name, w.Type, paperdata.BenchmarkTypes[w.Name])
		}
		if w.PaperInstrMillions != paperdata.InstructionsSimulatedM[w.Name] {
			t.Errorf("%s instruction count = %g, paper says %g",
				w.Name, w.PaperInstrMillions, paperdata.InstructionsSimulatedM[w.Name])
		}
	}
}

func TestAllParamsValidAndDistinct(t *testing.T) {
	seeds := map[uint64]string{}
	for _, w := range All() {
		if err := w.Params.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if prev, dup := seeds[w.Params.Seed]; dup {
			t.Errorf("%s and %s share a seed", w.Name, prev)
		}
		seeds[w.Params.Seed] = w.Name
		gen, err := w.NewGenerator()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		// The stream produces sane instructions.
		for i := 0; i < 1000; i++ {
			in := gen.Next()
			if in.Class >= trace.NumClasses {
				t.Fatalf("%s: bad class", w.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" {
		t.Errorf("ByName(mcf) = %v, %v", w.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	names := Names()
	if len(names) != 13 || names[0] != "gzip" || names[12] != "twolf" {
		t.Errorf("Names() = %v", names)
	}
}

func TestCharacterization(t *testing.T) {
	// The profiles must preserve the paper's qualitative fingerprints.
	get := func(name string) Workload {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	// Memory-bound benchmarks have working sets beyond the largest L1
	// and far beyond the smallest L2 (256 KB).
	for _, n := range []string{"art", "mcf", "ammp", "vpr-Route"} {
		if ws := get(n).Params.WorkingSetBytes; ws <= 1<<20 {
			t.Errorf("%s working set %d too small for a memory-bound profile", n, ws)
		}
	}
	// twolf and gzip fit comfortably in any L2.
	for _, n := range []string{"twolf", "gzip"} {
		if ws := get(n).Params.WorkingSetBytes; ws > 256<<10 {
			t.Errorf("%s working set %d should fit the smallest L2", n, ws)
		}
	}
	// Large-code benchmarks stress the small I-cache: footprint above
	// 4 KB but within the 128 KB high value.
	for _, n := range []string{"gcc", "vortex", "mesa", "vpr-Place", "twolf"} {
		params := get(n).Params
		fp := params.CodeFootprintBytes()
		if fp <= 4<<10 || fp > 128<<10 {
			t.Errorf("%s code footprint %d outside the (4 KB, 128 KB] stress band", n, fp)
		}
	}
	// Small-code benchmarks fit even the smallest I-cache closely.
	for _, n := range []string{"gzip", "mcf", "bzip2", "ammp", "art"} {
		params := get(n).Params
		if fp := params.CodeFootprintBytes(); fp > 16<<10 {
			t.Errorf("%s code footprint %d too large for a small-code profile", n, fp)
		}
	}
	// mcf is pointer-chasing: mostly random accesses, short dependency
	// chains.
	mcf := get("mcf").Params
	if r := 1 - mcf.TemporalFrac - mcf.SeqFrac; r < 0.3 {
		t.Errorf("mcf random fraction %.2f too low", r)
	}
	if mcf.MeanDepDist > 3 {
		t.Errorf("mcf dependency distance %g too long", mcf.MeanDepDist)
	}
	// art streams sequentially.
	if art := get("art").Params; art.SeqFrac < 0.6 {
		t.Errorf("art sequential fraction %.2f too low", art.SeqFrac)
	}
	// Floating-point benchmarks have FP work in the mix; integer ones
	// essentially none.
	for _, w := range All() {
		fp := w.Params.Mix[trace.FPAdd] + w.Params.Mix[trace.FPMult] +
			w.Params.Mix[trace.FPDiv] + w.Params.Mix[trace.FPSqrt]
		if w.Type == "Floating-Point" && fp < 0.1 {
			t.Errorf("%s: FP mix %.3f too small for a floating-point benchmark", w.Name, fp)
		}
		if w.Type == "Integer" && fp > 0.05 {
			t.Errorf("%s: FP mix %.3f too large for an integer benchmark", w.Name, fp)
		}
	}
	// Every profile carries redundancy for the precomputation study.
	for _, w := range All() {
		if w.Params.RedundantFrac <= 0 || w.Params.NumCompIDs < 128 {
			t.Errorf("%s: redundancy profile too weak (%g over %d ids)",
				w.Name, w.Params.RedundantFrac, w.Params.NumCompIDs)
		}
	}
}
