// Package workload defines the 13 synthetic benchmark profiles that
// substitute for the paper's SPEC 2000 / MinneSPEC workloads
// (Table 5). Each profile's statistical parameters -- instruction mix,
// code footprint, working-set size and locality, branch
// predictability, call density, dependency distances, and computation
// redundancy -- are calibrated to the published characterization of
// its namesake so that it stresses the same processor structures:
// mcf/art/ammp are memory-bound, gcc/vortex/mesa have large
// instruction footprints, gzip/bzip2 are compute-bound with small
// code, and twolf's working set fits in any L2. See DESIGN.md for the
// substitution argument.
package workload

import (
	"fmt"

	"pbsim/internal/trace"
)

// Workload is one benchmark of the suite.
type Workload struct {
	// Name and Type match Table 5 of the paper.
	Name string
	Type string
	// PaperInstrMillions is the dynamic instruction count the paper
	// simulated (Table 5), recorded for reporting; the synthetic
	// streams are scaled down by the harness.
	PaperInstrMillions float64
	// Params defines the synthetic stream.
	Params trace.Params
}

// NewGenerator returns a fresh deterministic instruction stream for
// the workload.
func (w *Workload) NewGenerator() (*trace.Generator, error) {
	return trace.NewGenerator(w.Params)
}

// intMix returns a SPECint-like instruction mix.
func intMix() [trace.NumClasses]float64 {
	var m [trace.NumClasses]float64
	m[trace.IntALU] = 0.65
	m[trace.IntMult] = 0.012
	m[trace.IntDiv] = 0.003
	m[trace.FPAdd] = 0.005
	m[trace.FPMult] = 0.002
	m[trace.Load] = 0.22
	m[trace.Store] = 0.10
	return m
}

// fpMix returns a SPECfp-like instruction mix.
func fpMix() [trace.NumClasses]float64 {
	var m [trace.NumClasses]float64
	m[trace.IntALU] = 0.30
	m[trace.IntMult] = 0.008
	m[trace.IntDiv] = 0.002
	m[trace.FPAdd] = 0.16
	m[trace.FPMult] = 0.09
	m[trace.FPDiv] = 0.01
	m[trace.FPSqrt] = 0.003
	m[trace.Load] = 0.30
	m[trace.Store] = 0.12
	return m
}

// All returns the full 13-benchmark suite in Table 5 order.
func All() []Workload {
	const (
		kb = 1 << 10
		mb = 1 << 20
	)
	return []Workload{
		{
			// Compression: tiny hot loops, medium data, very regular.
			Name: "gzip", Type: "Integer", PaperInstrMillions: 1364.2,
			Params: trace.Params{
				Seed: 0xC0FFEE01, Mix: intMix(),
				NumBlocks: 341, AvgBlockLen: 6, CallFraction: 0.05,
				PatternPeriod: 6, Predictability: 0.85, FarJumpFrac: 0.02,
				WorkingSetBytes: 96 * kb, TemporalFrac: 0.72, SeqFrac: 0.25, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.30, NumCompIDs: 2048, ZipfExponent: 1.4,
			},
		},
		{
			// Placement with randomized moves: larger code, hard
			// branches, medium data.
			Name: "vpr-Place", Type: "Integer", PaperInstrMillions: 1521.7,
			Params: trace.Params{
				Seed: 0xC0FFEE02, Mix: intMix(),
				NumBlocks: 1536, AvgBlockLen: 8, CallFraction: 0.10,
				PatternPeriod: 12, Predictability: 0.70, FarJumpFrac: 0.05,
				WorkingSetBytes: 384 * kb, TemporalFrac: 0.70, SeqFrac: 0.24, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.20, NumCompIDs: 2048, ZipfExponent: 1.3,
			},
		},
		{
			// Routing: graph walks over a large structure.
			Name: "vpr-Route", Type: "Integer", PaperInstrMillions: 881.1,
			Params: trace.Params{
				Seed: 0xC0FFEE03, Mix: intMix(),
				NumBlocks: 1170, AvgBlockLen: 7, CallFraction: 0.08,
				PatternPeriod: 12, Predictability: 0.75, FarJumpFrac: 0.04,
				WorkingSetBytes: 2 * mb, TemporalFrac: 0.53, SeqFrac: 0.32, StrideBytes: 16,
				MeanDepDist:   3.5,
				RedundantFrac: 0.20, NumCompIDs: 2048, ZipfExponent: 1.3,
			},
		},
		{
			// Compiler: very large instruction footprint, many calls.
			Name: "gcc", Type: "Integer", PaperInstrMillions: 4040.7,
			Params: trace.Params{
				Seed: 0xC0FFEE04, Mix: intMix(),
				NumBlocks: 4096, AvgBlockLen: 6, CallFraction: 0.15,
				PatternPeriod: 8, Predictability: 0.80, FarJumpFrac: 0.06,
				WorkingSetBytes: 768 * kb, TemporalFrac: 0.72, SeqFrac: 0.24, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.22, NumCompIDs: 4096, ZipfExponent: 1.3,
			},
		},
		{
			// 3D graphics library: large code, branch-sensitive,
			// moderate FP.
			Name: "mesa", Type: "Floating-Point", PaperInstrMillions: 1217.9,
			Params: trace.Params{
				Seed: 0xC0FFEE05, Mix: fpMix(),
				NumBlocks: 3277, AvgBlockLen: 5, CallFraction: 0.14,
				PatternPeriod: 4, Predictability: 0.75, FarJumpFrac: 0.06,
				WorkingSetBytes: 256 * kb, TemporalFrac: 0.70, SeqFrac: 0.26, StrideBytes: 8,
				MeanDepDist:   4.5,
				RedundantFrac: 0.18, NumCompIDs: 2048, ZipfExponent: 1.3,
			},
		},
		{
			// Neural-network simulation: tiny code, streaming over a
			// working set larger than any L2, trivially predictable
			// loop branches.
			Name: "art", Type: "Floating-Point", PaperInstrMillions: 2181.1,
			Params: trace.Params{
				Seed: 0xC0FFEE06, Mix: fpMix(),
				NumBlocks: 192, AvgBlockLen: 8, CallFraction: 0.02,
				PatternPeriod: 4, Predictability: 0.95, FarJumpFrac: 0.01,
				WorkingSetBytes: 4 * mb, TemporalFrac: 0.15, SeqFrac: 0.80, StrideBytes: 8,
				MeanDepDist:   6,
				RedundantFrac: 0.15, NumCompIDs: 1024, ZipfExponent: 1.2,
			},
		},
		{
			// Minimum-cost flow: pointer chasing over a huge graph,
			// short dependence chains, memory-bound.
			Name: "mcf", Type: "Integer", PaperInstrMillions: 601.2,
			Params: trace.Params{
				Seed: 0xC0FFEE07, Mix: intMix(),
				NumBlocks: 256, AvgBlockLen: 8, CallFraction: 0.02,
				PatternPeriod: 8, Predictability: 0.85, FarJumpFrac: 0.01,
				WorkingSetBytes: 6 * mb, TemporalFrac: 0.35, SeqFrac: 0.25, StrideBytes: 8,
				MeanDepDist:   2.5,
				RedundantFrac: 0.15, NumCompIDs: 2048, ZipfExponent: 1.2,
			},
		},
		{
			// Seismic simulation: sparse-matrix sweeps, sizeable code.
			Name: "equake", Type: "Floating-Point", PaperInstrMillions: 713.7,
			Params: trace.Params{
				Seed: 0xC0FFEE08, Mix: fpMix(),
				NumBlocks: 1536, AvgBlockLen: 8, CallFraction: 0.06,
				PatternPeriod: 6, Predictability: 0.90, FarJumpFrac: 0.04,
				WorkingSetBytes: 768 * kb, TemporalFrac: 0.55, SeqFrac: 0.41, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.18, NumCompIDs: 2048, ZipfExponent: 1.3,
			},
		},
		{
			// Molecular dynamics: neighbor lists over a huge data set,
			// tiny code, memory-bandwidth hungry.
			Name: "ammp", Type: "Floating-Point", PaperInstrMillions: 1228.1,
			Params: trace.Params{
				Seed: 0xC0FFEE09, Mix: fpMix(),
				NumBlocks: 128, AvgBlockLen: 6, CallFraction: 0.03,
				PatternPeriod: 6, Predictability: 0.90, FarJumpFrac: 0.01,
				WorkingSetBytes: 4 * mb, TemporalFrac: 0.30, SeqFrac: 0.45, StrideBytes: 16,
				MeanDepDist:   3.5,
				RedundantFrac: 0.15, NumCompIDs: 1024, ZipfExponent: 1.2,
			},
		},
		{
			// Natural-language parser: dictionary walks, many calls,
			// branchy.
			Name: "parser", Type: "Integer", PaperInstrMillions: 2721.6,
			Params: trace.Params{
				Seed: 0xC0FFEE0A, Mix: intMix(),
				NumBlocks: 1024, AvgBlockLen: 6, CallFraction: 0.12,
				PatternPeriod: 10, Predictability: 0.75, FarJumpFrac: 0.03,
				WorkingSetBytes: 512 * kb, TemporalFrac: 0.68, SeqFrac: 0.27, StrideBytes: 8,
				MeanDepDist:   3.5,
				RedundantFrac: 0.22, NumCompIDs: 2048, ZipfExponent: 1.4,
			},
		},
		{
			// Object-oriented database: the largest code footprint,
			// call-heavy, well-predicted branches.
			Name: "vortex", Type: "Integer", PaperInstrMillions: 1050.2,
			Params: trace.Params{
				Seed: 0xC0FFEE0B, Mix: intMix(),
				NumBlocks: 3072, AvgBlockLen: 8, CallFraction: 0.20,
				PatternPeriod: 8, Predictability: 0.85, FarJumpFrac: 0.06,
				WorkingSetBytes: 512 * kb, TemporalFrac: 0.72, SeqFrac: 0.24, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.20, NumCompIDs: 4096, ZipfExponent: 1.3,
			},
		},
		{
			// Compression: small hot code, block-sorting sweeps.
			Name: "bzip2", Type: "Integer", PaperInstrMillions: 2467.7,
			Params: trace.Params{
				Seed: 0xC0FFEE0C, Mix: intMix(),
				NumBlocks: 256, AvgBlockLen: 8, CallFraction: 0.04,
				PatternPeriod: 8, Predictability: 0.80, FarJumpFrac: 0.02,
				WorkingSetBytes: 512 * kb, TemporalFrac: 0.55, SeqFrac: 0.41, StrideBytes: 8,
				MeanDepDist:   4.5,
				RedundantFrac: 0.28, NumCompIDs: 2048, ZipfExponent: 1.4,
			},
		},
		{
			// Place and route: working set that fits in any L2 but
			// thrashes a small L1D; hard branches.
			Name: "twolf", Type: "Integer", PaperInstrMillions: 764.6,
			Params: trace.Params{
				Seed: 0xC0FFEE0D, Mix: intMix(),
				NumBlocks: 2048, AvgBlockLen: 6, CallFraction: 0.10,
				PatternPeriod: 10, Predictability: 0.70, FarJumpFrac: 0.05,
				WorkingSetBytes: 128 * kb, TemporalFrac: 0.70, SeqFrac: 0.25, StrideBytes: 8,
				MeanDepDist:   4,
				RedundantFrac: 0.20, NumCompIDs: 2048, ZipfExponent: 1.3,
			},
		},
	}
}

// Names returns the benchmark names in suite order.
func Names() []string {
	ws := All()
	names := make([]string, len(ws))
	for i := range ws {
		names[i] = ws[i].Name
	}
	return names
}

// ByName finds a workload by its Table 5 name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}
