package tables

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tbl := New("Table X: Demo", "Name", "Value").AlignRight(1)
	tbl.AddRow("alpha", 12)
	tbl.AddRow("b", 3.5)
	tbl.AddRow("gamma-long-name", 1234)
	out := tbl.String()
	if !strings.HasPrefix(out, "Table X: Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator line: %q", lines[2])
	}
	// Right-aligned numeric column: "12" should end the row.
	if !strings.HasSuffix(lines[3], "12") {
		t.Errorf("row: %q", lines[3])
	}
	if !strings.Contains(out, "3.5") {
		t.Errorf("float formatting lost: %s", out)
	}
	if tbl.NumRows() != 3 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.5",
		89.76:  "89.8",
		-2:     "-2",
		1364.2: "1364.2",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestNoTitleNoHeaders(t *testing.T) {
	tbl := &Table{RightAlign: map[int]bool{}}
	tbl.AddRow("a", "b")
	out := tbl.String()
	if strings.Contains(out, "---") {
		t.Errorf("unexpected separator without headers:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tbl := New("", "A", "B")
	tbl.AddRow("one")
	tbl.AddRow("x", "y", "z") // wider than the header
	out := tbl.String()
	if !strings.Contains(out, "z") {
		t.Errorf("extra column dropped:\n%s", out)
	}
}

func TestFormatInterval(t *testing.T) {
	cases := map[string]string{
		FormatInterval(0.943, 0.901, 0.972): "0.943 [0.901, 0.972]",
		FormatInterval(1, 1, 1):             "1.000 [1.000, 1.000]",
		FormatInterval(-0.68, -0.75, -0.61): "-0.680 [-0.750, -0.610]",
		FormatInterval(0, 0, 0):             "0.000 [0.000, 0.000]",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("FormatInterval = %q, want %q", got, want)
		}
	}
}
