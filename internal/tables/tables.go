// Package tables renders paper-style ASCII tables with aligned
// columns for the experiment harness and command-line tools.
package tables

import (
	"fmt"
	"strings"

	"pbsim/internal/stats"
)

// Table accumulates rows of string cells and renders them with
// per-column alignment.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	// RightAlign marks columns rendered flush right (numeric columns).
	RightAlign map[int]bool
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers, RightAlign: map[int]bool{}}
}

// AlignRight marks the given column indices as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.RightAlign[c] = true
	}
	return t
}

// AddRow appends a row of cells; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders floats compactly: integers without a decimal
// point, otherwise one decimal place.
func FormatFloat(v float64) string {
	if stats.ApproxEqual(v, float64(int64(v)), 0) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// FormatInterval renders a point estimate with its confidence
// interval as "0.943 [0.901, 0.972]", the cell format of the
// methodology trust tables (Table A): three decimals keep recall and
// correlation scores readable without implying more precision than a
// few hundred sampled surfaces support.
func FormatInterval(mean, lo, hi float64) string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", mean, lo, hi)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if t.RightAlign[i] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i < cols-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
