package pipeline

import (
	"testing"
	"testing/quick"
)

func TestPoolPipelined(t *testing.T) {
	p, err := NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 {
		t.Errorf("size = %d", p.Size())
	}
	// Interval 1: back-to-back issues every cycle.
	if !p.TryIssue(0, 1) {
		t.Fatal("issue at 0 failed")
	}
	if p.TryIssue(0, 1) {
		t.Error("double issue in the same cycle on one unit")
	}
	if !p.TryIssue(1, 1) {
		t.Error("pipelined unit refused next-cycle issue")
	}
	if p.Issued() != 2 {
		t.Errorf("issued = %d", p.Issued())
	}
}

func TestPoolUnpipelined(t *testing.T) {
	// Interval 20 (e.g. an unpipelined divider): the unit is busy for
	// 20 cycles.
	p, _ := NewPool(1)
	if !p.TryIssue(0, 20) {
		t.Fatal("issue failed")
	}
	for c := int64(1); c < 20; c++ {
		if p.TryIssue(c, 20) {
			t.Fatalf("unpipelined unit accepted work at cycle %d", c)
		}
	}
	if !p.TryIssue(20, 20) {
		t.Error("unit still busy after interval elapsed")
	}
	if p.NextFree() != 40 {
		t.Errorf("NextFree = %d", p.NextFree())
	}
}

func TestPoolMultipleUnits(t *testing.T) {
	p, _ := NewPool(3)
	for i := 0; i < 3; i++ {
		if !p.TryIssue(0, 10) {
			t.Fatalf("unit %d refused issue", i)
		}
	}
	if p.TryIssue(0, 10) {
		t.Error("fourth issue on three units")
	}
	p.Reset()
	if !p.TryIssue(0, 10) || p.Issued() != 1 {
		t.Error("reset did not free units")
	}
	if _, err := NewPool(0); err == nil {
		t.Error("zero-unit pool accepted")
	}
	if p.TryIssue(100, 0) != true {
		t.Error("interval < 1 should clamp, not fail")
	}
}

func TestROBFIFOOrder(t *testing.T) {
	r, err := NewROB(4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() || r.Capacity() != 4 {
		t.Error("fresh ROB state")
	}
	for i := int64(0); i < 4; i++ {
		e := r.Push()
		e.Seq = i
	}
	if !r.Full() || r.Len() != 4 {
		t.Error("ROB should be full")
	}
	for i := int64(0); i < 4; i++ {
		if got := r.Head().Seq; got != i {
			t.Errorf("head seq = %d, want %d", got, i)
		}
		r.PopHead()
	}
	if !r.Empty() {
		t.Error("ROB should be empty")
	}
}

func TestROBWrapAround(t *testing.T) {
	r, _ := NewROB(3)
	seq := int64(0)
	for round := 0; round < 5; round++ {
		for !r.Full() {
			r.Push().Seq = seq
			seq++
		}
		// Verify At indexing across the wrap.
		for i := 0; i < r.Len(); i++ {
			if r.At(i).Seq != r.Head().Seq+int64(i) {
				t.Fatalf("At(%d) out of order after wrap", i)
			}
		}
		r.PopHead()
		r.PopHead()
	}
}

func TestROBPanics(t *testing.T) {
	r, _ := NewROB(1)
	mustPanic(t, "PopHead empty", func() { r.PopHead() })
	r.Push()
	mustPanic(t, "Push full", func() { r.Push() })
	mustPanic(t, "At range", func() { r.At(5) })
	if _, err := NewROB(0); err == nil {
		t.Error("zero-capacity ROB accepted")
	}
	if r.Head() == nil {
		t.Error("head of non-empty ROB nil")
	}
	r.PopHead()
	if r.Head() != nil {
		t.Error("head of empty ROB not nil")
	}
}

func TestLSQ(t *testing.T) {
	q, err := NewLSQ(2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != 2 || q.Len() != 0 || q.Full() {
		t.Error("fresh LSQ state")
	}
	if !q.Alloc() || !q.Alloc() {
		t.Error("alloc within capacity failed")
	}
	if q.Alloc() {
		t.Error("alloc beyond capacity succeeded")
	}
	q.Release()
	if !q.Alloc() {
		t.Error("alloc after release failed")
	}
	if _, err := NewLSQ(0); err == nil {
		t.Error("zero-capacity LSQ accepted")
	}
	empty, _ := NewLSQ(1)
	mustPanic(t, "Release empty", func() { empty.Release() })
}

func TestPropROBCountConsistent(t *testing.T) {
	f := func(ops []bool, capSel uint8) bool {
		capacity := int(capSel%7) + 1
		r, err := NewROB(capacity)
		if err != nil {
			return false
		}
		model := 0
		for _, push := range ops {
			if push {
				if !r.Full() {
					r.Push()
					model++
				}
			} else if !r.Empty() {
				r.PopHead()
				model--
			}
			if r.Len() != model || r.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
