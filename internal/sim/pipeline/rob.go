package pipeline

import (
	"fmt"
	"math"

	"pbsim/internal/trace"
)

// NotReady is the ReadyAt sentinel of a dispatched but not yet
// executed instruction.
const NotReady = math.MaxInt64

// Entry is one reorder-buffer slot.
type Entry struct {
	Instr trace.Instr
	// Seq is the instruction's position in the dynamic stream.
	Seq int64
	// Issued marks that the instruction has been sent to a functional
	// unit (or bypassed one via precomputation).
	Issued bool
	// ReadyAt is the cycle at which the result is available to
	// dependents and the instruction may commit; NotReady until known.
	ReadyAt int64
	// Mispredict marks a control instruction whose prediction was
	// wrong; fetch resumes ReadyAt + penalty cycles after it executes.
	Mispredict bool
	// Precomputed marks an instruction satisfied by the precomputation
	// or value-reuse table instead of a functional unit.
	Precomputed bool
}

// ROB is a bounded in-order circular buffer of in-flight instructions.
type ROB struct {
	entries []Entry
	head    int
	count   int
}

// NewROB creates a reorder buffer with the given capacity.
func NewROB(capacity int) (*ROB, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pipeline: ROB capacity %d invalid", capacity)
	}
	return &ROB{entries: make([]Entry, capacity)}, nil
}

// Capacity returns the configured size.
func (r *ROB) Capacity() int { return len(r.entries) }

// Len returns the current occupancy.
func (r *ROB) Len() int { return r.count }

// Full reports whether no slot is free.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports whether the buffer holds no instructions.
func (r *ROB) Empty() bool { return r.count == 0 }

// Push allocates the tail entry and returns it for initialization. It
// must not be called on a full buffer.
//
//pbcheck:hotpath
func (r *ROB) Push() *Entry {
	if r.Full() {
		panic("pipeline: Push on full ROB") //pbcheck:ignore nopanic guards a programmer error (caller must check Full); never reachable from row data
	}
	// head+count < 2*len always holds, so a conditional wrap replaces
	// the modulo in this per-dispatch path.
	idx := r.head + r.count
	if idx >= len(r.entries) {
		idx -= len(r.entries)
	}
	r.count++
	e := &r.entries[idx]
	*e = Entry{ReadyAt: NotReady}
	return e
}

// Head returns the oldest entry, or nil when empty.
//
//pbcheck:hotpath
func (r *ROB) Head() *Entry {
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.head]
}

// PopHead retires the oldest entry. It must not be called on an empty
// buffer.
//
//pbcheck:hotpath
func (r *ROB) PopHead() {
	if r.count == 0 {
		panic("pipeline: PopHead on empty ROB") //pbcheck:ignore nopanic guards a programmer error (caller must check Empty); never reachable from row data
	}
	r.head++
	if r.head == len(r.entries) {
		r.head = 0
	}
	r.count--
}

// At returns the i-th oldest entry (0 = head). The pointer is valid
// until the entry is popped. Not a hot path since the issue loop moved
// to Window (the guard below formats its panic, which allocates).
func (r *ROB) At(i int) *Entry {
	if i < 0 || i >= r.count {
		//pbcheck:ignore nopanic index invariant guards a programmer error, like a slice bounds check; never reachable from row data
		panic(fmt.Sprintf("pipeline: ROB index %d out of range [0,%d)", i, r.count))
	}
	idx := r.head + i
	if idx >= len(r.entries) {
		idx -= len(r.entries)
	}
	return &r.entries[idx]
}

// Window returns the occupied entries as up to two contiguous slices
// in age order: every entry of a is older than every entry of b. The
// slices alias the buffer and are invalidated by the next Push or
// PopHead. Scanning them lets the issue loop walk the ROB without the
// per-entry index arithmetic and occupancy check of At, which profiles
// as the single hottest call site of the simulator.
//
//pbcheck:hotpath
func (r *ROB) Window() (a, b []Entry) {
	if r.count == 0 {
		return nil, nil
	}
	end := r.head + r.count
	if end <= len(r.entries) {
		return r.entries[r.head:end], nil
	}
	return r.entries[r.head:], r.entries[:end-len(r.entries)]
}

// LSQ tracks load-store queue occupancy. Entries are allocated at
// dispatch and released at commit; the timing of the accesses
// themselves is handled by the memory hierarchy.
type LSQ struct {
	capacity int
	used     int
}

// NewLSQ creates a load-store queue with the given capacity.
func NewLSQ(capacity int) (*LSQ, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pipeline: LSQ capacity %d invalid", capacity)
	}
	return &LSQ{capacity: capacity}, nil
}

// Capacity returns the configured size.
func (q *LSQ) Capacity() int { return q.capacity }

// Len returns current occupancy.
func (q *LSQ) Len() int { return q.used }

// Full reports whether no slot is free.
func (q *LSQ) Full() bool { return q.used == q.capacity }

// Alloc takes one slot; it reports false when full.
//
//pbcheck:hotpath
func (q *LSQ) Alloc() bool {
	if q.Full() {
		return false
	}
	q.used++
	return true
}

// Release frees one slot.
//
//pbcheck:hotpath
func (q *LSQ) Release() {
	if q.used == 0 {
		panic("pipeline: Release on empty LSQ") //pbcheck:ignore nopanic guards a programmer error (release without matching allocate); never reachable from row data
	}
	q.used--
}
