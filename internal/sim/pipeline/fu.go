// Package pipeline provides the out-of-order execution structures of
// the simulated processor core: functional-unit pools with latency and
// initiation-interval scheduling, the reorder buffer, and the
// load-store queue (Tables 6-7 of the paper).
package pipeline

import "fmt"

// Pool models a group of identical functional units. Each unit can
// begin a new operation when its previous operation's initiation
// interval has elapsed; unpipelined units (divide, square root) use an
// interval equal to their latency.
type Pool struct {
	nextFree []int64
	issued   uint64
}

// NewPool creates a pool of count units, all free at cycle 0.
func NewPool(count int) (*Pool, error) {
	if count <= 0 {
		return nil, fmt.Errorf("pipeline: functional unit count %d invalid", count)
	}
	return &Pool{nextFree: make([]int64, count)}, nil
}

// Size returns the number of units.
func (p *Pool) Size() int { return len(p.nextFree) }

// Issued returns the number of operations the pool has accepted.
func (p *Pool) Issued() uint64 { return p.issued }

// TryIssue reserves a unit at the given cycle with the given
// initiation interval. It reports false when every unit is busy.
//
//pbcheck:hotpath
func (p *Pool) TryIssue(cycle, interval int64) bool {
	if interval < 1 {
		interval = 1
	}
	for i, free := range p.nextFree {
		if free <= cycle {
			p.nextFree[i] = cycle + interval
			p.issued++
			return true
		}
	}
	return false
}

// NextFree returns the earliest cycle at which any unit can accept a
// new operation.
//
//pbcheck:hotpath
func (p *Pool) NextFree() int64 {
	best := p.nextFree[0]
	for _, f := range p.nextFree[1:] {
		if f < best {
			best = f
		}
	}
	return best
}

// Reset returns all units to the free state.
func (p *Pool) Reset() {
	for i := range p.nextFree {
		p.nextFree[i] = 0
	}
	p.issued = 0
}
