package sim

import "testing"

// TestRunMorePartitionsRun pins the incremental-measurement contract:
// a run split into RunMore windows commits the same stream through the
// same pipeline state as one RunWithWarmup call, so the window totals
// reassemble the whole-run statistics exactly.
func TestRunMorePartitionsRun(t *testing.T) {
	const warmup, n = 3000, 12000
	cfg := Default()

	whole, err := func() (Stats, error) {
		cpu, err := New(cfg, testGen(t, "gzip"), nil)
		if err != nil {
			t.Fatal(err)
		}
		cpu.PrewarmMemory()
		return cpu.RunWithWarmup(warmup, n)
	}()
	if err != nil {
		t.Fatal(err)
	}

	cpu, err := New(cfg, testGen(t, "gzip"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.PrewarmMemory()
	if _, err := cpu.RunMore(warmup); err != nil {
		t.Fatal(err)
	}
	var sum Stats
	for _, step := range []int64{5000, 1000, 6000} {
		st, err := cpu.RunMore(step)
		if err != nil {
			t.Fatal(err)
		}
		if st.Instructions != step {
			t.Fatalf("window committed %d instructions, want %d", st.Instructions, step)
		}
		sum.Cycles += st.Cycles
		sum.Instructions += st.Instructions
		sum.Mispredicts += st.Mispredicts
		sum.Loads += st.Loads
		sum.Stores += st.Stores
	}
	if sum.Cycles != whole.Cycles || sum.Instructions != whole.Instructions {
		t.Fatalf("windowed run = %d cycles / %d instrs, whole run = %d / %d",
			sum.Cycles, sum.Instructions, whole.Cycles, whole.Instructions)
	}
	if sum.Mispredicts != whole.Mispredicts || sum.Loads != whole.Loads || sum.Stores != whole.Stores {
		t.Fatalf("windowed event counts diverge from the whole run")
	}
}

func TestRunMoreRejectsNonPositive(t *testing.T) {
	cpu, err := New(Default(), testGen(t, "gzip"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.RunMore(0); err == nil {
		t.Fatal("RunMore(0) should fail")
	}
	if _, err := cpu.RunMore(-5); err == nil {
		t.Fatal("RunMore(-5) should fail")
	}
}
