package sim

import (
	"fmt"

	"pbsim/internal/sim/bpred"
	"pbsim/internal/sim/cache"
	"pbsim/internal/sim/pipeline"
	"pbsim/internal/trace"
)

// ComputeShortcut lets an enhancement bypass execution of arithmetic
// instructions whose result is already known: the mechanism behind
// instruction precomputation and value reuse (Section 4.3 of the
// paper). Hit is consulted at dispatch; Observe is called when a
// compute instruction commits, letting dynamic schemes train.
type ComputeShortcut interface {
	Hit(compID uint32) bool
	Observe(compID uint32)
}

// maxDepDistance is the largest register-dependency back-distance the
// trace generator emits; the readiness ring must cover the ROB plus
// this margin.
const maxDepDistance = 64

// fetched is one IFQ slot.
type fetched struct {
	instr      trace.Instr
	seq        int64
	mispredict bool
}

// CPU is one simulated processor instance bound to one instruction
// stream. Create a fresh CPU per run; it is not reusable or
// goroutine-safe.
type CPU struct {
	cfg  Config
	gen  *trace.Generator
	hier *cache.Hierarchy

	pred bpred.DirectionPredictor // nil when Predictor == PredPerfect
	btb  *bpred.BTB
	ras  *bpred.RAS

	intALU, intMD, fpALU, fpMD *pipeline.Pool

	rob *pipeline.ROB
	lsq *pipeline.LSQ

	shortcut ComputeShortcut

	ifq     []fetched
	ifqHead int
	ifqLen  int

	// readyRing holds the result-ready cycle of recent instructions,
	// indexed by sequence number; sized to cover the ROB plus the
	// maximum dependency distance so a slot is never reused while an
	// in-flight instruction can still read it.
	readyRing []int64
	ringMask  int64

	seq       int64
	committed int64
	cycle     int64

	// pending buffers the next instruction by value: a pointer here
	// would force gen.Next's result to escape and cost one heap
	// allocation per fetched instruction.
	pending    trace.Instr
	pendingSet bool

	// stopAt caps retirement so runs end on exact instruction counts.
	stopAt int64

	fetchBlockedUntil int64
	haltSeq           int64 // seq of the in-flight mispredicted instr, -1 if none
	resumeAt          int64 // cycle fetch resumes after the halt, -1 until resolved
	redirectPending   bool
	lastFetchBlock    uint64

	stats Stats
}

// Stats aggregates one run's results.
type Stats struct {
	Cycles       int64
	Instructions int64
	// Control-flow statistics.
	ControlInstrs uint64
	Mispredicts   uint64
	// Misprediction causes, counted at prediction time: wrong
	// direction, missing/wrong BTB target, and wrong return-address
	// stack prediction.
	MispredDirection uint64
	MispredBTB       uint64
	MispredRAS       uint64
	// Loads and Stores counted at commit.
	Loads, Stores uint64
	// PrecompHits counts instructions satisfied by the compute
	// shortcut instead of a functional unit.
	PrecompHits uint64
	// Memory-system statistics.
	L1I, L1D, L2, ITLB, DTLB cache.Stats
	DRAMAccesses             uint64
	// Functional-unit issue counts.
	IntALUOps, IntMDOps, FPALUOps, FPMDOps uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MispredictRate returns mispredicted control instructions per control
// instruction.
func (s Stats) MispredictRate() float64 {
	if s.ControlInstrs == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.ControlInstrs)
}

// New builds a CPU for the given configuration and instruction stream.
// shortcut may be nil (no enhancement).
func New(cfg Config, gen *trace.Generator, shortcut ComputeShortcut) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.hierarchyConfig())
	if err != nil {
		return nil, err
	}
	ringSize := int64(2)
	for ringSize < int64(cfg.ROBEntries+maxDepDistance+1) {
		ringSize *= 2
	}
	c := &CPU{
		cfg:       cfg,
		gen:       gen,
		hier:      hier,
		shortcut:  shortcut,
		ifq:       make([]fetched, cfg.IFQEntries),
		readyRing: make([]int64, ringSize),
		ringMask:  ringSize - 1,
		haltSeq:   -1,
		resumeAt:  -1,
	}
	switch cfg.Predictor {
	case PredPerfect:
		c.pred = nil
	case PredBimodal:
		if c.pred, err = bpred.NewBimodal(12); err != nil {
			return nil, err
		}
	case PredAlwaysTaken:
		c.pred = bpred.Taken{}
	default:
		if c.pred, err = bpred.NewTwoLevel(8, 12); err != nil {
			return nil, err
		}
	}
	if c.pred != nil {
		if c.btb, err = bpred.NewBTB(cfg.BTBEntries, cfg.BTBAssoc); err != nil {
			return nil, err
		}
		if c.ras, err = bpred.NewRAS(cfg.RASEntries); err != nil {
			return nil, err
		}
	}
	if c.intALU, err = pipeline.NewPool(cfg.IntALUs); err != nil {
		return nil, err
	}
	if c.intMD, err = pipeline.NewPool(cfg.IntMultDivs); err != nil {
		return nil, err
	}
	if c.fpALU, err = pipeline.NewPool(cfg.FPALUs); err != nil {
		return nil, err
	}
	if c.fpMD, err = pipeline.NewPool(cfg.FPMultDivs); err != nil {
		return nil, err
	}
	if c.rob, err = pipeline.NewROB(cfg.ROBEntries); err != nil {
		return nil, err
	}
	if c.lsq, err = pipeline.NewLSQ(cfg.LSQEntries()); err != nil {
		return nil, err
	}
	return c, nil
}

// PrewarmMemory performs functional cache warming: it touches the
// workload's entire data working set and code footprint in the memory
// hierarchy without charging time, the scaled-down equivalent of the
// multi-billion-instruction warm-up the paper's full SPEC runs
// provide. The measured phase then observes steady-state rather than
// compulsory misses.
func (c *CPU) PrewarmMemory() {
	p := c.gen.Params()
	c.hier.PrewarmCode(trace.CodeBase, p.CodeFootprintBytes())
	c.hier.PrewarmData(trace.DataBase, p.WorkingSetBytes)
}

// WarmFunctional consumes n instructions from the stream, training the
// branch predictor, BTB, RAS, caches and TLBs exactly as detailed
// execution would — but without advancing the pipeline or charging
// cycles. It is the functional-warming phase of sampled simulation
// (SMARTS-style): history-dependent structures enter a sampled region
// in the trained state a continuous run would have given them, at
// generator-walk cost. Call it only before detailed simulation begins;
// once instructions are in flight the pipeline owns the stream.
//
//pbcheck:hotpath
func (c *CPU) WarmFunctional(n int64) {
	blockBytes := uint64(c.cfg.L1IBlock)
	for i := int64(0); i < n; i++ {
		in := c.nextInstr()
		c.consumeInstr()
		if block := in.PC / blockBytes; block != c.lastFetchBlock {
			c.hier.InstFetch(in.PC, c.cycle)
			c.lastFetchBlock = block
		}
		if in.Class.IsControl() && c.pred != nil {
			c.warmControl(in)
		}
		if in.Class.IsMem() {
			c.hier.DataAccess(in.Addr, c.cycle)
		}
	}
}

// warmControl applies the predictor-training side effects of one
// control instruction — the same updates predictControl and commitStage
// perform, minus the prediction itself.
//
//pbcheck:hotpath
func (c *CPU) warmControl(in trace.Instr) {
	switch in.Class {
	case trace.Branch:
		c.pred.Update(in.PC, in.Taken)
		if in.Taken {
			c.btb.Insert(in.PC, in.Target)
		}
	case trace.Call:
		c.ras.Push(in.Addr)
		c.btb.Insert(in.PC, in.Target)
	case trace.Return:
		c.ras.Pop()
	}
}

// Run simulates until n instructions commit and returns the run's
// statistics. It errors out if the pipeline stops making progress
// (which would indicate a simulator bug, not a configuration choice).
func (c *CPU) Run(n int64) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("sim: instruction count %d invalid", n)
	}
	if err := c.runTo(n); err != nil {
		return c.snapshot(), err
	}
	return c.snapshot(), nil
}

// RunWithWarmup simulates warmup instructions to populate the caches,
// TLBs and predictors, then simulates n more and returns statistics
// covering only the measured phase.
func (c *CPU) RunWithWarmup(warmup, n int64) (Stats, error) {
	if warmup < 0 || n <= 0 {
		return Stats{}, fmt.Errorf("sim: invalid warmup/measure counts (%d, %d)", warmup, n)
	}
	if err := c.runTo(warmup); err != nil {
		return c.snapshot(), err
	}
	base := c.snapshot()
	if err := c.runTo(warmup + n); err != nil {
		return c.snapshot(), err
	}
	return c.snapshot().sub(base), nil
}

// RunMore advances the same CPU by n more committed instructions and
// returns statistics covering only that increment. Successive calls
// partition one continuous run into consecutive measured windows
// without disturbing microarchitectural state — the sampling layer
// uses it to read per-region cycle counts off a single warmed
// pipeline.
func (c *CPU) RunMore(n int64) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("sim: instruction count %d invalid", n)
	}
	base := c.snapshot()
	if err := c.runTo(c.committed + n); err != nil {
		return c.snapshot().sub(base), err
	}
	return c.snapshot().sub(base), nil
}

// runTo advances the simulation until the committed-instruction count
// reaches target.
func (c *CPU) runTo(target int64) error {
	c.stopAt = target
	// Generous progress bound: even a 1-wide machine with worst-case
	// memory latencies commits one instruction within ~1000 cycles.
	maxCycles := c.cycle + (target-c.committed)*2000 + 100000
	for c.committed < target {
		c.cycle++
		c.commitStage()
		c.issueStage()
		c.dispatchStage()
		c.fetchStage()
		if c.cycle > maxCycles {
			return fmt.Errorf("sim: no forward progress after %d cycles (%d/%d committed)", c.cycle, c.committed, target)
		}
	}
	return nil
}

// sub returns s - base, field-wise, for warmup exclusion.
func (s Stats) sub(base Stats) Stats {
	subCache := func(a, b cache.Stats) cache.Stats {
		return cache.Stats{Accesses: a.Accesses - b.Accesses, Misses: a.Misses - b.Misses}
	}
	return Stats{
		Cycles:           s.Cycles - base.Cycles,
		Instructions:     s.Instructions - base.Instructions,
		ControlInstrs:    s.ControlInstrs - base.ControlInstrs,
		Mispredicts:      s.Mispredicts - base.Mispredicts,
		MispredDirection: s.MispredDirection - base.MispredDirection,
		MispredBTB:       s.MispredBTB - base.MispredBTB,
		MispredRAS:       s.MispredRAS - base.MispredRAS,
		Loads:            s.Loads - base.Loads,
		Stores:           s.Stores - base.Stores,
		PrecompHits:      s.PrecompHits - base.PrecompHits,
		L1I:              subCache(s.L1I, base.L1I),
		L1D:              subCache(s.L1D, base.L1D),
		L2:               subCache(s.L2, base.L2),
		ITLB:             subCache(s.ITLB, base.ITLB),
		DTLB:             subCache(s.DTLB, base.DTLB),
		DRAMAccesses:     s.DRAMAccesses - base.DRAMAccesses,
		IntALUOps:        s.IntALUOps - base.IntALUOps,
		IntMDOps:         s.IntMDOps - base.IntMDOps,
		FPALUOps:         s.FPALUOps - base.FPALUOps,
		FPMDOps:          s.FPMDOps - base.FPMDOps,
	}
}

// snapshot finalizes the statistics.
func (c *CPU) snapshot() Stats {
	s := c.stats
	s.Cycles = c.cycle
	s.Instructions = c.committed
	s.L1I = c.hier.L1I.Stats()
	s.L1D = c.hier.L1D.Stats()
	s.L2 = c.hier.L2.Stats()
	s.ITLB = c.hier.ITLB.Stats()
	s.DTLB = c.hier.DTLB.Stats()
	s.DRAMAccesses = c.hier.DRAMAccesses
	s.IntALUOps = c.intALU.Issued()
	s.IntMDOps = c.intMD.Issued()
	s.FPALUOps = c.fpALU.Issued()
	s.FPMDOps = c.fpMD.Issued()
	return s
}

// nextInstr returns the next instruction to fetch without consuming
// it; consume advances past it.
//
//pbcheck:hotpath
func (c *CPU) nextInstr() trace.Instr {
	if !c.pendingSet {
		c.pending = c.gen.Next()
		c.pendingSet = true
	}
	return c.pending
}

//pbcheck:hotpath
func (c *CPU) consumeInstr() {
	c.pendingSet = false
}

// fetchStage fills the IFQ: up to Width instructions per cycle, at
// most one new instruction-cache block per cycle, stopping at a taken
// control instruction, an IFQ-full condition, an instruction-cache
// stall, or a misprediction (fetch halts until the offending
// instruction resolves and the penalty elapses).
//
//pbcheck:hotpath
func (c *CPU) fetchStage() {
	if c.haltSeq >= 0 {
		if c.resumeAt < 0 || c.cycle < c.resumeAt {
			return
		}
		c.haltSeq = -1
		c.resumeAt = -1
		c.redirectPending = true
	}
	if c.cycle < c.fetchBlockedUntil {
		return
	}
	blockBytes := uint64(c.cfg.L1IBlock)
	fetchedN := 0
	for fetchedN < c.cfg.Width && c.ifqLen < len(c.ifq) {
		in := c.nextInstr()
		block := in.PC / blockBytes
		if block != c.lastFetchBlock {
			lat := c.hier.InstFetch(in.PC, c.cycle)
			c.lastFetchBlock = block
			if c.redirectPending || lat > int64(c.cfg.L1ILat) {
				// A redirect pays the access latency; a miss stalls
				// fetch until the line arrives. (Sequential hits are
				// pipelined and cost nothing extra.)
				c.fetchBlockedUntil = c.cycle + lat
				c.redirectPending = false
				return
			}
		}
		c.consumeInstr()
		f := fetched{instr: in, seq: c.seq}
		c.seq++
		if in.Class.IsControl() {
			f.mispredict = c.predictControl(in)
		}
		slot := c.ifqHead + c.ifqLen // < 2*len, so one conditional wrap suffices
		if slot >= len(c.ifq) {
			slot -= len(c.ifq)
		}
		c.ifq[slot] = f
		c.ifqLen++
		fetchedN++
		if f.mispredict {
			c.haltSeq = f.seq
			c.resumeAt = -1
			return
		}
		if in.Taken {
			// One taken control transfer per fetch cycle.
			return
		}
	}
}

// predictControl runs the front-end prediction hardware for a control
// instruction and reports whether the prediction was wrong.
//
//pbcheck:hotpath
func (c *CPU) predictControl(in trace.Instr) bool {
	if c.pred == nil {
		return false // perfect prediction
	}
	mispredict := false
	switch in.Class {
	case trace.Branch:
		predTaken := c.pred.Predict(in.PC)
		dirWrong := predTaken != in.Taken
		var predTarget uint64
		btbWrong := false
		if predTaken {
			tgt, hit := c.btb.Lookup(in.PC)
			if !hit {
				// No target available: fall through sequentially.
				predTaken = false
				btbWrong = in.Taken
			} else {
				predTarget = tgt
				btbWrong = in.Taken && predTarget != in.Target
			}
		}
		mispredict = predTaken != in.Taken || btbWrong
		if mispredict {
			if dirWrong {
				c.stats.MispredDirection++
			} else {
				c.stats.MispredBTB++
			}
		}
		if c.cfg.SpecUpdate {
			c.pred.Update(in.PC, in.Taken)
			if in.Taken {
				c.btb.Insert(in.PC, in.Target)
			}
		}
	case trace.Call:
		tgt, hit := c.btb.Lookup(in.PC)
		mispredict = !hit || tgt != in.Target
		if mispredict {
			c.stats.MispredBTB++
		}
		// The return address (the call's fall-through, carried in
		// Addr) is pushed regardless of the target prediction.
		c.ras.Push(in.Addr)
		if c.cfg.SpecUpdate {
			c.btb.Insert(in.PC, in.Target)
		}
	case trace.Return:
		tgt, ok := c.ras.Pop()
		mispredict = !ok || tgt != in.Target
		if mispredict {
			c.stats.MispredRAS++
		}
	}
	return mispredict
}

// dispatchStage moves instructions from the IFQ into the ROB (and
// LSQ), applying the compute shortcut.
//
//pbcheck:hotpath
func (c *CPU) dispatchStage() {
	for n := 0; n < c.cfg.Width && c.ifqLen > 0; n++ {
		f := &c.ifq[c.ifqHead]
		if c.rob.Full() {
			return
		}
		if f.instr.Class.IsMem() && !c.lsq.Alloc() {
			return
		}
		e := c.rob.Push()
		e.Instr = f.instr
		e.Seq = f.seq
		e.Mispredict = f.mispredict
		c.readyRing[f.seq&c.ringMask] = pipeline.NotReady
		if f.instr.CompID != 0 && c.shortcut != nil && c.shortcut.Hit(f.instr.CompID) {
			e.Issued = true
			e.Precomputed = true
			e.ReadyAt = c.cycle + 1
			c.readyRing[f.seq&c.ringMask] = e.ReadyAt
			c.stats.PrecompHits++
		}
		c.ifqHead++
		if c.ifqHead == len(c.ifq) {
			c.ifqHead = 0
		}
		c.ifqLen--
	}
}

// depsReady reports whether both source operands of e are available.
//
//pbcheck:hotpath
func (c *CPU) depsReady(e *pipeline.Entry) bool {
	if d := e.Instr.Dep1; d > 0 {
		if c.readyRing[(e.Seq-int64(d))&c.ringMask] > c.cycle {
			return false
		}
	}
	if d := e.Instr.Dep2; d > 0 {
		if c.readyRing[(e.Seq-int64(d))&c.ringMask] > c.cycle {
			return false
		}
	}
	return true
}

// issueStage selects up to Width ready instructions, oldest first,
// subject to functional-unit and memory-port availability.
//
//pbcheck:hotpath
func (c *CPU) issueStage() {
	issued := 0
	portsUsed := 0
	// Walk the ROB as its two contiguous windows (oldest first) rather
	// than via At(i): the windows are stable for the whole scan, so the
	// per-entry wrap arithmetic disappears from the hottest loop.
	older, younger := c.rob.Window()
	for _, win := range [2][]pipeline.Entry{older, younger} {
		for i := range win {
			e := &win[i]
			if e.Issued || !c.depsReady(e) {
				continue
			}
			var ready int64
			switch e.Instr.Class {
			case trace.IntALU, trace.Branch, trace.Call, trace.Return:
				if !c.intALU.TryIssue(c.cycle, 1) {
					continue
				}
				ready = c.cycle + int64(c.cfg.IntALULat)
			case trace.IntMult:
				if !c.intMD.TryIssue(c.cycle, 1) {
					continue
				}
				ready = c.cycle + int64(c.cfg.IntMultLat)
			case trace.IntDiv:
				if !c.intMD.TryIssue(c.cycle, int64(c.cfg.IntDivLat)) {
					continue
				}
				ready = c.cycle + int64(c.cfg.IntDivLat)
			case trace.FPAdd:
				if !c.fpALU.TryIssue(c.cycle, 1) {
					continue
				}
				ready = c.cycle + int64(c.cfg.FPALULat)
			case trace.FPMult:
				if !c.fpMD.TryIssue(c.cycle, int64(c.cfg.FPMultLat)) {
					continue
				}
				ready = c.cycle + int64(c.cfg.FPMultLat)
			case trace.FPDiv:
				if !c.fpMD.TryIssue(c.cycle, int64(c.cfg.FPDivLat)) {
					continue
				}
				ready = c.cycle + int64(c.cfg.FPDivLat)
			case trace.FPSqrt:
				if !c.fpMD.TryIssue(c.cycle, int64(c.cfg.FPSqrtLat)) {
					continue
				}
				ready = c.cycle + int64(c.cfg.FPSqrtLat)
			case trace.Load:
				if portsUsed >= c.cfg.MemPorts {
					continue
				}
				portsUsed++
				ready = c.cycle + c.hier.DataAccess(e.Instr.Addr, c.cycle)
			case trace.Store:
				if portsUsed >= c.cfg.MemPorts {
					continue
				}
				portsUsed++
				// Address generation and store-buffer write; the cache is
				// updated at commit.
				ready = c.cycle + int64(c.cfg.L1DLat)
			default:
				ready = c.cycle + 1
			}
			e.Issued = true
			e.ReadyAt = ready
			c.readyRing[e.Seq&c.ringMask] = ready
			if e.Mispredict && e.Seq == c.haltSeq {
				c.resumeAt = ready + int64(c.cfg.MispredictPenalty)
			}
			issued++
			if issued == c.cfg.Width {
				return
			}
		}
	}
}

// commitStage retires completed instructions in order, up to Width per
// cycle, performing store writes, enhancement training, and (in
// commit-update mode) predictor training.
//
//pbcheck:hotpath
func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.Width && !c.rob.Empty() && c.committed < c.stopAt; n++ {
		e := c.rob.Head()
		if !e.Issued || e.ReadyAt > c.cycle {
			return
		}
		in := &e.Instr
		switch {
		case in.Class == trace.Load:
			c.stats.Loads++
			c.lsq.Release()
		case in.Class == trace.Store:
			c.stats.Stores++
			c.lsq.Release()
			// The store drains to the cache now; it occupies the DRAM
			// channel on a miss but does not stall retirement.
			c.hier.DataAccess(in.Addr, c.cycle)
		case in.Class.IsControl():
			c.stats.ControlInstrs++
			if e.Mispredict {
				c.stats.Mispredicts++
			}
			if c.pred != nil && !c.cfg.SpecUpdate {
				if in.Class == trace.Branch {
					c.pred.Update(in.PC, in.Taken)
				}
				if in.Taken && in.Class != trace.Return {
					c.btb.Insert(in.PC, in.Target)
				}
			}
		case in.Class.IsCompute() && in.CompID != 0 && c.shortcut != nil:
			c.shortcut.Observe(in.CompID)
		}
		c.rob.PopHead()
		c.committed++
	}
}
