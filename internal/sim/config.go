// Package sim implements a cycle-level superscalar out-of-order
// processor simulator equivalent in parameterization to the modified
// SimpleScalar sim-outorder used by the paper: every user-visible
// parameter of Tables 6-8 is present, including the coupling rules for
// the gray-shaded parameters (LSQ size as a fraction of the ROB,
// D-TLB page size and latency following the I-TLB, unpipelined
// divide/square-root units, and following-block memory latency fixed
// at 0.02x the first-block latency).
package sim

import (
	"fmt"
	"math"

	"pbsim/internal/sim/cache"
)

// PredictorKind selects the branch predictor (Table 6's "Branch
// Predictor" low/high values are TwoLevel and Perfect; Bimodal and
// AlwaysTaken are provided for ablations).
type PredictorKind int

// Supported predictor kinds.
const (
	PredTwoLevel PredictorKind = iota
	PredPerfect
	PredBimodal
	PredAlwaysTaken
)

func (k PredictorKind) String() string {
	switch k {
	case PredTwoLevel:
		return "2-Level"
	case PredPerfect:
		return "Perfect"
	case PredBimodal:
		return "Bimodal"
	case PredAlwaysTaken:
		return "Taken"
	default:
		return fmt.Sprintf("PredictorKind(%d)", int(k))
	}
}

// FullyAssociative mirrors cache.FullyAssociative for configuration
// readability.
const FullyAssociative = cache.FullyAssociative

// Config holds every processor parameter of Tables 6-8.
type Config struct {
	// --- processor core (Table 6) ---

	// IFQEntries is the instruction fetch queue capacity.
	IFQEntries int
	// Predictor selects the branch predictor.
	Predictor PredictorKind
	// MispredictPenalty is the front-end refill penalty in cycles
	// charged after a mispredicted control instruction resolves.
	MispredictPenalty int
	// RASEntries sizes the return address stack.
	RASEntries int
	// BTBEntries and BTBAssoc size the branch target buffer
	// (FullyAssociative allowed).
	BTBEntries, BTBAssoc int
	// SpecUpdate selects speculative branch-predictor update in decode
	// (true) versus update in commit (false).
	SpecUpdate bool
	// Width is the decode, issue and commit width; the paper fixes it
	// at 4.
	Width int
	// ROBEntries sizes the reorder buffer.
	ROBEntries int
	// LSQRatio sizes the load-store queue as a fraction of the ROB
	// (the paper couples LSQ = {0.25, 1.0} x ROB).
	LSQRatio float64
	// MemPorts is the number of cache ports usable per cycle.
	MemPorts int

	// --- functional units (Table 7) ---

	IntALUs     int
	IntALULat   int // throughput fixed at 1 (pipelined)
	FPALUs      int
	FPALULat    int // throughput fixed at 1 (pipelined)
	IntMultDivs int
	IntMultLat  int // throughput 1 (pipelined)
	IntDivLat   int // throughput = latency (unpipelined)
	FPMultDivs  int
	FPMultLat   int // throughput = latency (unpipelined)
	FPDivLat    int // throughput = latency (unpipelined)
	FPSqrtLat   int // throughput = latency (unpipelined)

	// --- memory hierarchy (Table 8) ---

	L1ISizeKB, L1IAssoc, L1IBlock, L1ILat int
	L1DSizeKB, L1DAssoc, L1DBlock, L1DLat int
	L2SizeKB, L2Assoc, L2Block, L2Lat     int
	// MemLatFirst is the first-block DRAM latency; the following-block
	// latency is derived as 0.02 x MemLatFirst (coupled parameter).
	MemLatFirst int
	// MemBWBytes is the memory bus width in bytes per chunk.
	MemBWBytes int
	// ITLBEntries/ITLBAssoc/ITLBLat and DTLBEntries/DTLBAssoc size the
	// TLBs; the D-TLB page size and latency follow the I-TLB (coupled
	// parameters).
	ITLBEntries, ITLBAssoc, ITLBLat int
	DTLBEntries, DTLBAssoc          int
	// PageKB is the (shared) page size in KB.
	PageKB int
}

// Default returns the mid-range baseline configuration used outside of
// PB experiments: values chosen inside the paper's "range of
// reasonable values" for a 4-way superscalar processor.
func Default() Config {
	return Config{
		IFQEntries:        16,
		Predictor:         PredTwoLevel,
		MispredictPenalty: 6,
		RASEntries:        16,
		BTBEntries:        128,
		BTBAssoc:          4,
		SpecUpdate:        true,
		Width:             4,
		ROBEntries:        32,
		LSQRatio:          0.5,
		MemPorts:          2,

		IntALUs:     2,
		IntALULat:   1,
		FPALUs:      2,
		FPALULat:    2,
		IntMultDivs: 1,
		IntMultLat:  4,
		IntDivLat:   20,
		FPMultDivs:  1,
		FPMultLat:   4,
		FPDivLat:    15,
		FPSqrtLat:   20,

		L1ISizeKB: 32, L1IAssoc: 2, L1IBlock: 32, L1ILat: 1,
		L1DSizeKB: 32, L1DAssoc: 2, L1DBlock: 32, L1DLat: 2,
		L2SizeKB: 1024, L2Assoc: 4, L2Block: 128, L2Lat: 12,
		MemLatFirst: 100,
		MemBWBytes:  16,
		ITLBEntries: 64, ITLBAssoc: 4, ITLBLat: 40,
		DTLBEntries: 64, DTLBAssoc: 4,
		PageKB: 4,
	}
}

// LSQEntries derives the load-store queue size from the coupled ratio,
// never below one entry.
func (c *Config) LSQEntries() int {
	n := int(math.Round(c.LSQRatio * float64(c.ROBEntries)))
	if n < 1 {
		n = 1
	}
	return n
}

// MemLatRest derives the following-block latency as 0.02 x first,
// never below one cycle.
func (c *Config) MemLatRest() int {
	n := int(math.Round(0.02 * float64(c.MemLatFirst)))
	if n < 1 {
		n = 1
	}
	return n
}

// Validate reports the first invalid parameter.
func (c *Config) Validate() error {
	checks := []struct {
		ok   bool
		name string
	}{
		{c.IFQEntries >= 1, "IFQEntries"},
		{c.MispredictPenalty >= 0, "MispredictPenalty"},
		{c.RASEntries >= 1, "RASEntries"},
		{c.BTBEntries >= 1, "BTBEntries"},
		{c.Width >= 1, "Width"},
		{c.ROBEntries >= 1, "ROBEntries"},
		{c.LSQRatio > 0, "LSQRatio"},
		{c.MemPorts >= 1, "MemPorts"},
		{c.IntALUs >= 1 && c.IntALULat >= 1, "IntALUs/IntALULat"},
		{c.FPALUs >= 1 && c.FPALULat >= 1, "FPALUs/FPALULat"},
		{c.IntMultDivs >= 1 && c.IntMultLat >= 1 && c.IntDivLat >= 1, "IntMultDivs"},
		{c.FPMultDivs >= 1 && c.FPMultLat >= 1 && c.FPDivLat >= 1 && c.FPSqrtLat >= 1, "FPMultDivs"},
		{c.L1ISizeKB >= 1 && c.L1ILat >= 1, "L1I"},
		{c.L1DSizeKB >= 1 && c.L1DLat >= 1, "L1D"},
		{c.L2SizeKB >= 1 && c.L2Lat >= 1, "L2"},
		{c.MemLatFirst >= 1, "MemLatFirst"},
		{c.MemBWBytes >= 1, "MemBWBytes"},
		{c.ITLBEntries >= 1 && c.ITLBLat >= 1, "ITLB"},
		{c.DTLBEntries >= 1, "DTLB"},
		{c.PageKB >= 1, "PageKB"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("sim: invalid %s", ch.name)
		}
	}
	return nil
}

// hierarchyConfig assembles the memory-system configuration from the
// processor parameters.
func (c *Config) hierarchyConfig() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1I:        cache.Config{SizeBytes: c.L1ISizeKB << 10, Assoc: c.L1IAssoc, BlockBytes: c.L1IBlock, Policy: cache.LRU},
		L1D:        cache.Config{SizeBytes: c.L1DSizeKB << 10, Assoc: c.L1DAssoc, BlockBytes: c.L1DBlock, Policy: cache.LRU},
		L2:         cache.Config{SizeBytes: c.L2SizeKB << 10, Assoc: c.L2Assoc, BlockBytes: c.L2Block, Policy: cache.LRU},
		L1ILatency: c.L1ILat, L1DLatency: c.L1DLat, L2Latency: c.L2Lat,
		ITLBEntries: c.ITLBEntries, ITLBAssoc: c.ITLBAssoc,
		DTLBEntries: c.DTLBEntries, DTLBAssoc: c.DTLBAssoc,
		PageBytes:   uint64(c.PageKB) << 10,
		ITLBLatency: c.ITLBLat, DTLBLatency: c.ITLBLat, // D-TLB latency coupled to I-TLB
		MemLatencyFirst: c.MemLatFirst, MemLatencyRest: c.MemLatRest(),
		MemBandwidthBytes: c.MemBWBytes,
	}
}
