package sim

import (
	"testing"

	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/trace"
	"pbsim/internal/workload"
)

func testGen(t *testing.T, name string) *trace.Generator {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := w.NewGenerator()
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func runConfig(t *testing.T, cfg Config, bench string, n int64) Stats {
	t.Helper()
	cpu, err := New(cfg, testGen(t, bench), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.PrewarmMemory()
	stats, err := cpu.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Width != 4 {
		t.Errorf("width = %d, the paper fixes it at 4", cfg.Width)
	}
}

func TestConfigDerivedParameters(t *testing.T) {
	cfg := Default()
	cfg.ROBEntries = 8
	cfg.LSQRatio = 0.25
	if got := cfg.LSQEntries(); got != 2 {
		t.Errorf("LSQ = %d, want 2 (0.25 x 8)", got)
	}
	cfg.ROBEntries = 64
	cfg.LSQRatio = 1.0
	if got := cfg.LSQEntries(); got != 64 {
		t.Errorf("LSQ = %d, want 64", got)
	}
	cfg.ROBEntries = 1
	cfg.LSQRatio = 0.25
	if got := cfg.LSQEntries(); got != 1 {
		t.Errorf("LSQ = %d, want clamp to 1", got)
	}
	cfg.MemLatFirst = 200
	if got := cfg.MemLatRest(); got != 4 {
		t.Errorf("rest latency = %d, want 4 (0.02 x 200)", got)
	}
	cfg.MemLatFirst = 50
	if got := cfg.MemLatRest(); got != 1 {
		t.Errorf("rest latency = %d, want 1 (0.02 x 50)", got)
	}
	cfg.MemLatFirst = 10
	if got := cfg.MemLatRest(); got != 1 {
		t.Errorf("rest latency = %d, want clamp to 1", got)
	}
}

func TestConfigValidateRejectsBadFields(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.IFQEntries = 0 },
		func(c *Config) { c.MispredictPenalty = -1 },
		func(c *Config) { c.RASEntries = 0 },
		func(c *Config) { c.BTBEntries = 0 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ROBEntries = 0 },
		func(c *Config) { c.LSQRatio = 0 },
		func(c *Config) { c.MemPorts = 0 },
		func(c *Config) { c.IntALUs = 0 },
		func(c *Config) { c.FPALUs = 0 },
		func(c *Config) { c.IntMultDivs = 0 },
		func(c *Config) { c.FPMultDivs = 0 },
		func(c *Config) { c.L1ISizeKB = 0 },
		func(c *Config) { c.L1DLat = 0 },
		func(c *Config) { c.L2Lat = 0 },
		func(c *Config) { c.MemLatFirst = 0 },
		func(c *Config) { c.MemBWBytes = 0 },
		func(c *Config) { c.ITLBEntries = 0 },
		func(c *Config) { c.DTLBEntries = 0 },
		func(c *Config) { c.PageKB = 0 },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(cfg, testGen(t, "gzip"), nil); err == nil {
			t.Errorf("mutation %d: New accepted invalid config", i)
		}
	}
}

func TestPBFactorsMatchPaperTable9(t *testing.T) {
	factors := PBFactors()
	if len(factors) != 41 {
		t.Fatalf("%d factors, the paper varies 41", len(factors))
	}
	// Every factor name must appear in the paper's Table 9 (which uses
	// "RUU Entries" for the reorder buffer in Table 12 but "Reorder
	// Buffer Entries" in Table 9), and vice versa every non-dummy
	// Table 9 row must be one of our factors.
	paper := make(map[string]bool)
	for _, row := range paperdata.Table9 {
		paper[row.Parameter] = true
	}
	ours := make(map[string]bool)
	for _, f := range factors {
		if ours[f.Factor.Name] {
			t.Errorf("duplicate factor %q", f.Factor.Name)
		}
		ours[f.Factor.Name] = true
		if !paper[f.Factor.Name] {
			t.Errorf("factor %q not a Table 9 parameter", f.Factor.Name)
		}
	}
	for name := range paper {
		if name == "Dummy Factor #1" || name == "Dummy Factor #2" {
			continue
		}
		if !ours[name] {
			t.Errorf("paper parameter %q missing from PBFactors", name)
		}
	}
	if len(Factors()) != 41 {
		t.Errorf("Factors() length = %d", len(Factors()))
	}
}

func TestConfigForLevels(t *testing.T) {
	low := make([]pb.Level, 43)
	high := make([]pb.Level, 43)
	for i := range low {
		low[i] = pb.Low
		high[i] = pb.High
	}
	lo := ConfigForLevels(low)
	hi := ConfigForLevels(high)
	if lo.ROBEntries != 8 || hi.ROBEntries != 64 {
		t.Errorf("ROB: %d/%d, want 8/64", lo.ROBEntries, hi.ROBEntries)
	}
	if lo.Predictor != PredTwoLevel || hi.Predictor != PredPerfect {
		t.Errorf("predictor: %v/%v", lo.Predictor, hi.Predictor)
	}
	if lo.MispredictPenalty != 10 || hi.MispredictPenalty != 2 {
		t.Errorf("penalty: %d/%d", lo.MispredictPenalty, hi.MispredictPenalty)
	}
	if lo.L2SizeKB != 256 || hi.L2SizeKB != 8192 {
		t.Errorf("L2 size: %d/%d", lo.L2SizeKB, hi.L2SizeKB)
	}
	if lo.MemLatFirst != 200 || hi.MemLatFirst != 50 {
		t.Errorf("memlat: %d/%d", lo.MemLatFirst, hi.MemLatFirst)
	}
	if lo.LSQRatio != 0.25 || hi.LSQRatio != 1.0 {
		t.Errorf("LSQ ratio: %g/%g", lo.LSQRatio, hi.LSQRatio)
	}
	if lo.SpecUpdate || !hi.SpecUpdate {
		t.Errorf("spec update: %v/%v", lo.SpecUpdate, hi.SpecUpdate)
	}
	if lo.BTBAssoc != 2 || hi.BTBAssoc != FullyAssociative {
		t.Errorf("BTB assoc: %d/%d", lo.BTBAssoc, hi.BTBAssoc)
	}
	if lo.PageKB != 4 || hi.PageKB != 4096 {
		t.Errorf("page: %d/%d", lo.PageKB, hi.PageKB)
	}
	// Width stays fixed regardless of levels.
	if lo.Width != 4 || hi.Width != 4 {
		t.Errorf("width must stay 4: %d/%d", lo.Width, hi.Width)
	}
	// Both extremes must be valid, simulatable configurations.
	for _, cfg := range []Config{lo, hi} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("extreme config invalid: %v", err)
		}
	}
}

func TestConfigForLevelsIgnoresDummyColumns(t *testing.T) {
	a := make([]pb.Level, 43)
	b := make([]pb.Level, 43)
	for i := range a {
		a[i] = pb.High
		b[i] = pb.High
	}
	b[41] = pb.Low
	b[42] = pb.Low
	if ConfigForLevels(a) != ConfigForLevels(b) {
		t.Error("dummy columns changed the configuration")
	}
}

func TestRunDeterminism(t *testing.T) {
	s1 := runConfig(t, Default(), "gzip", 20000)
	s2 := runConfig(t, Default(), "gzip", 20000)
	if s1 != s2 {
		t.Errorf("identical runs diverged:\n%+v\n%+v", s1, s2)
	}
}

func TestRunBasicSanity(t *testing.T) {
	s := runConfig(t, Default(), "gzip", 20000)
	if s.Instructions != 20000 {
		t.Errorf("instructions = %d", s.Instructions)
	}
	if ipc := s.IPC(); ipc < 0.05 || ipc > 4 {
		t.Errorf("IPC = %.3f out of plausible range", ipc)
	}
	if s.ControlInstrs == 0 || s.Loads == 0 || s.Stores == 0 {
		t.Errorf("missing instruction classes: %+v", s)
	}
	if s.L1D.Accesses == 0 || s.L1I.Accesses == 0 {
		t.Error("caches never accessed")
	}
	if s.IntALUOps == 0 {
		t.Error("no int ALU operations")
	}
}

func TestPerfectPredictorNeverMispredicts(t *testing.T) {
	cfg := Default()
	cfg.Predictor = PredPerfect
	s := runConfig(t, cfg, "twolf", 20000)
	if s.Mispredicts != 0 {
		t.Errorf("perfect predictor mispredicted %d times", s.Mispredicts)
	}
}

func TestPredictorKindsRun(t *testing.T) {
	for _, k := range []PredictorKind{PredTwoLevel, PredPerfect, PredBimodal, PredAlwaysTaken} {
		cfg := Default()
		cfg.Predictor = k
		s := runConfig(t, cfg, "gzip", 5000)
		if s.Instructions != 5000 {
			t.Errorf("%v: incomplete run", k)
		}
	}
	if PredTwoLevel.String() != "2-Level" || PredPerfect.String() != "Perfect" ||
		PredBimodal.String() != "Bimodal" || PredAlwaysTaken.String() != "Taken" {
		t.Error("PredictorKind names")
	}
	if PredictorKind(9).String() == "" {
		t.Error("unknown kind name")
	}
}

func TestMonotonicity(t *testing.T) {
	// Improving one resource while holding the workload fixed must not
	// slow the machine down (these hold for our deterministic traces
	// and LRU caches).
	base := Default()
	cases := []struct {
		name    string
		bench   string
		better  func(*Config)
		worse   func(*Config)
		minGain float64 // required relative improvement (0 = just not worse)
	}{
		{"perfect bpred", "twolf", func(c *Config) { c.Predictor = PredPerfect }, func(c *Config) { c.Predictor = PredTwoLevel }, 0.01},
		{"ROB 64 vs 8", "gzip", func(c *Config) { c.ROBEntries = 64 }, func(c *Config) { c.ROBEntries = 8 }, 0.01},
		{"memlat 50 vs 200", "mcf", func(c *Config) { c.MemLatFirst = 50 }, func(c *Config) { c.MemLatFirst = 200 }, 0.01},
		{"L1D lat 1 vs 4", "gzip", func(c *Config) { c.L1DLat = 1 }, func(c *Config) { c.L1DLat = 4 }, 0.001},
		{"L2 8MB vs 256KB", "art", func(c *Config) { c.L2SizeKB = 8192 }, func(c *Config) { c.L2SizeKB = 256 }, 0.01},
		{"4 int ALUs vs 1", "gzip", func(c *Config) { c.IntALUs = 4 }, func(c *Config) { c.IntALUs = 1 }, 0.001},
	}
	for _, c := range cases {
		good := base
		c.better(&good)
		bad := base
		c.worse(&bad)
		sg := runConfig(t, good, c.bench, 15000)
		sb := runConfig(t, bad, c.bench, 15000)
		if float64(sg.Cycles) > float64(sb.Cycles)*(1-c.minGain) {
			t.Errorf("%s: better config %d cycles, worse config %d cycles", c.name, sg.Cycles, sb.Cycles)
		}
	}
}

func TestAllHighFasterThanAllLow(t *testing.T) {
	low := make([]pb.Level, 43)
	high := make([]pb.Level, 43)
	for i := range low {
		low[i] = pb.Low
		high[i] = pb.High
	}
	for _, bench := range []string{"gzip", "mcf"} {
		sl := runConfig(t, ConfigForLevels(low), bench, 10000)
		sh := runConfig(t, ConfigForLevels(high), bench, 10000)
		if sh.Cycles*2 > sl.Cycles {
			t.Errorf("%s: all-high (%d cycles) should be much faster than all-low (%d)", bench, sh.Cycles, sl.Cycles)
		}
	}
}

func TestRunRejectsBadCounts(t *testing.T) {
	cpu, err := New(Default(), testGen(t, "gzip"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
	if _, err := cpu.RunWithWarmup(-1, 100); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := cpu.RunWithWarmup(10, 0); err == nil {
		t.Error("zero measure accepted")
	}
}

func TestWarmupAccounting(t *testing.T) {
	// cycles(warmup) + cycles(measured) must equal cycles of a single
	// uninterrupted run of the same total length.
	full, err := New(Default(), testGen(t, "parser"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sFull, err := full.Run(30000)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(Default(), testGen(t, "parser"), nil)
	s, err := fresh.RunWithWarmup(10000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != 20000 {
		t.Errorf("measured instructions = %d, want 20000", s.Instructions)
	}
	if s.Cycles <= 0 || s.Cycles >= sFull.Cycles {
		t.Errorf("measured cycles %d out of range (full run %d)", s.Cycles, sFull.Cycles)
	}
	// The warmed-up run covers the same stream: total cycles match the
	// uninterrupted run exactly.
	if fresh.cycle != sFull.Cycles {
		t.Errorf("warmup+measure total %d cycles, full run %d", fresh.cycle, sFull.Cycles)
	}
}

func TestPrewarmReducesColdMisses(t *testing.T) {
	cold, _ := New(Default(), testGen(t, "gzip"), nil)
	sCold, err := cold.Run(15000)
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := New(Default(), testGen(t, "gzip"), nil)
	warm.PrewarmMemory()
	sWarm, err := warm.Run(15000)
	if err != nil {
		t.Fatal(err)
	}
	if sWarm.DRAMAccesses >= sCold.DRAMAccesses {
		t.Errorf("prewarm did not reduce DRAM traffic: %d vs %d", sWarm.DRAMAccesses, sCold.DRAMAccesses)
	}
	if sWarm.Cycles >= sCold.Cycles {
		t.Errorf("prewarm did not speed up the run: %d vs %d", sWarm.Cycles, sCold.Cycles)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 {
		t.Error("zero-stats helpers")
	}
	s.Cycles = 100
	s.Instructions = 150
	if s.IPC() != 1.5 {
		t.Errorf("IPC = %g", s.IPC())
	}
	s.ControlInstrs = 10
	s.Mispredicts = 2
	if s.MispredictRate() != 0.2 {
		t.Errorf("mispredict rate = %g", s.MispredictRate())
	}
}

// shortcutAll satisfies every lookup: an upper bound on enhancement
// benefit.
type shortcutAll struct{ hits, observes int }

func (s *shortcutAll) Hit(uint32) bool { s.hits++; return true }
func (s *shortcutAll) Observe(uint32)  { s.observes++ }

func TestComputeShortcutSpeedsUpRun(t *testing.T) {
	sBase := runConfig(t, Default(), "gzip", 15000)
	sc := &shortcutAll{}
	cpu, err := New(Default(), testGen(t, "gzip"), sc)
	if err != nil {
		t.Fatal(err)
	}
	cpu.PrewarmMemory()
	sEnh, err := cpu.Run(15000)
	if err != nil {
		t.Fatal(err)
	}
	if sEnh.PrecompHits == 0 {
		t.Fatal("shortcut never hit")
	}
	if sc.hits == 0 || sc.observes == 0 {
		t.Errorf("shortcut calls: hits=%d observes=%d", sc.hits, sc.observes)
	}
	if sEnh.Cycles >= sBase.Cycles {
		t.Errorf("enhancement did not help: %d vs %d cycles", sEnh.Cycles, sBase.Cycles)
	}
	// Fewer int-ALU operations execute with the shortcut active.
	if sEnh.IntALUOps >= sBase.IntALUOps {
		t.Errorf("shortcut did not offload ALUs: %d vs %d ops", sEnh.IntALUOps, sBase.IntALUOps)
	}
}

func TestLargeROBConfigurations(t *testing.T) {
	// Regression test: ROB sizes beyond the dependency-ring margin
	// must simulate correctly (the ring is sized dynamically).
	for _, rob := range []int{1, 8, 64, 192, 256, 500} {
		cfg := Default()
		cfg.ROBEntries = rob
		s := runConfig(t, cfg, "gzip", 5000)
		if s.Instructions != 5000 {
			t.Errorf("ROB %d: incomplete run", rob)
		}
	}
}

func TestMispredictBreakdownConsistent(t *testing.T) {
	s := runConfig(t, Default(), "twolf", 20000)
	if s.Mispredicts == 0 {
		t.Fatal("expected some mispredictions on twolf")
	}
	// Causes are counted at prediction time, totals at commit, so the
	// breakdown can lead the total by at most the in-flight window.
	sum := s.MispredDirection + s.MispredBTB + s.MispredRAS
	if sum < s.Mispredicts || sum > s.Mispredicts+64 {
		t.Errorf("cause breakdown %d inconsistent with total %d", sum, s.Mispredicts)
	}
}

func TestDegenerateConfigurations(t *testing.T) {
	// Extreme-but-legal configurations must still simulate correctly.
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"width 1", func(c *Config) { c.Width = 1 }},
		{"IFQ 1", func(c *Config) { c.IFQEntries = 1 }},
		{"ROB 1", func(c *Config) { c.ROBEntries = 1 }},
		{"LSQ minimum", func(c *Config) { c.ROBEntries = 2; c.LSQRatio = 0.1 }},
		{"zero penalty", func(c *Config) { c.MispredictPenalty = 0 }},
		{"one of every FU", func(c *Config) {
			c.IntALUs, c.FPALUs, c.IntMultDivs, c.FPMultDivs = 1, 1, 1, 1
		}},
		{"single memory port", func(c *Config) { c.MemPorts = 1 }},
		{"huge penalty", func(c *Config) { c.MispredictPenalty = 100 }},
		{"width 8", func(c *Config) { c.Width = 8 }},
	}
	for _, tc := range cases {
		cfg := Default()
		tc.mutate(&cfg)
		s := runConfig(t, cfg, "parser", 4000)
		if s.Instructions != 4000 {
			t.Errorf("%s: incomplete run", tc.name)
		}
		if s.Cycles < 1000 { // width <= 8 bounds IPC
			t.Errorf("%s: impossible cycle count %d", tc.name, s.Cycles)
		}
	}
}

func TestNarrowMachineSlowerThanWide(t *testing.T) {
	narrow := Default()
	narrow.Width = 1
	wide := Default()
	wide.Width = 4
	sn := runConfig(t, narrow, "gzip", 8000)
	sw := runConfig(t, wide, "gzip", 8000)
	if sn.Cycles <= sw.Cycles {
		t.Errorf("1-wide (%d cycles) should be slower than 4-wide (%d)", sn.Cycles, sw.Cycles)
	}
}

func TestCommitUpdatePredictorWorseOrEqual(t *testing.T) {
	// Updating predictor state at commit instead of decode delays
	// training; with in-flight loop branches this costs accuracy.
	spec := Default()
	spec.SpecUpdate = true
	commit := Default()
	commit.SpecUpdate = false
	ss := runConfig(t, spec, "twolf", 20000)
	sc := runConfig(t, commit, "twolf", 20000)
	// Delayed training cannot systematically help; allow instance-level
	// noise (a stale history can coincidentally predict better on a
	// few branches) but catch any large inversion.
	if float64(sc.Mispredicts) < 0.9*float64(ss.Mispredicts) {
		t.Errorf("commit-update mispredicts %d substantially fewer than speculative-update %d", sc.Mispredicts, ss.Mispredicts)
	}
}

func TestSmallerPenaltyNeverSlower(t *testing.T) {
	fast := Default()
	fast.MispredictPenalty = 2
	slow := Default()
	slow.MispredictPenalty = 10
	sf := runConfig(t, fast, "twolf", 10000)
	ss := runConfig(t, slow, "twolf", 10000)
	if sf.Cycles > ss.Cycles {
		t.Errorf("penalty 2 (%d cycles) slower than penalty 10 (%d)", sf.Cycles, ss.Cycles)
	}
}
