package sim

import "pbsim/internal/pb"

// PBFactor binds a paper parameter to its effect on the configuration:
// Apply sets the parameter to its low (-1) or high (+1) Plackett-
// Burman value from Tables 6-8.
type PBFactor struct {
	Factor pb.Factor
	Apply  func(*Config, pb.Level)
}

// hiLo returns b on High and a on Low.
func hiLo[T any](lv pb.Level, a, b T) T {
	if lv == pb.High {
		return b
	}
	return a
}

// PBFactors returns the paper's 41 variable parameters, in Tables 6-8
// order, with the exact low/high values of the paper. Factor names
// match the rows of Table 9 so output can be compared side by side.
// The issue/decode/commit width stays fixed at 4 and the coupled
// (gray-shaded) parameters are derived inside Config, exactly as the
// paper prescribes.
func PBFactors() []PBFactor {
	return []PBFactor{
		// --- Table 6: processor core ---
		{pb.Factor{Name: "Instruction Fetch Queue Entries", Low: "4", High: "32"},
			func(c *Config, lv pb.Level) { c.IFQEntries = hiLo(lv, 4, 32) }},
		{pb.Factor{Name: "BPred Type", Low: "2-Level", High: "Perfect"},
			func(c *Config, lv pb.Level) { c.Predictor = hiLo(lv, PredTwoLevel, PredPerfect) }},
		{pb.Factor{Name: "BPred Misprediction Penalty", Low: "10 cycles", High: "2 cycles"},
			func(c *Config, lv pb.Level) { c.MispredictPenalty = hiLo(lv, 10, 2) }},
		{pb.Factor{Name: "Return Address Stack Entries", Low: "4", High: "64"},
			func(c *Config, lv pb.Level) { c.RASEntries = hiLo(lv, 4, 64) }},
		{pb.Factor{Name: "BTB Entries", Low: "16", High: "512"},
			func(c *Config, lv pb.Level) { c.BTBEntries = hiLo(lv, 16, 512) }},
		{pb.Factor{Name: "BTB Associativity", Low: "2-way", High: "fully-assoc"},
			func(c *Config, lv pb.Level) { c.BTBAssoc = hiLo(lv, 2, FullyAssociative) }},
		{pb.Factor{Name: "Speculative Branch Update", Low: "in commit", High: "in decode"},
			func(c *Config, lv pb.Level) { c.SpecUpdate = lv == pb.High }},
		{pb.Factor{Name: "Reorder Buffer Entries", Low: "8", High: "64"},
			func(c *Config, lv pb.Level) { c.ROBEntries = hiLo(lv, 8, 64) }},
		{pb.Factor{Name: "LSQ Entries", Low: "0.25 * ROB", High: "1.0 * ROB"},
			func(c *Config, lv pb.Level) { c.LSQRatio = hiLo(lv, 0.25, 1.0) }},
		{pb.Factor{Name: "Memory Ports", Low: "1", High: "4"},
			func(c *Config, lv pb.Level) { c.MemPorts = hiLo(lv, 1, 4) }},

		// --- Table 7: functional units ---
		{pb.Factor{Name: "Int ALUs", Low: "1", High: "4"},
			func(c *Config, lv pb.Level) { c.IntALUs = hiLo(lv, 1, 4) }},
		{pb.Factor{Name: "Int ALU Latencies", Low: "2 cycles", High: "1 cycle"},
			func(c *Config, lv pb.Level) { c.IntALULat = hiLo(lv, 2, 1) }},
		{pb.Factor{Name: "FP ALUs", Low: "1", High: "4"},
			func(c *Config, lv pb.Level) { c.FPALUs = hiLo(lv, 1, 4) }},
		{pb.Factor{Name: "FP ALU Latencies", Low: "5 cycles", High: "1 cycle"},
			func(c *Config, lv pb.Level) { c.FPALULat = hiLo(lv, 5, 1) }},
		{pb.Factor{Name: "Int Mult/Div", Low: "1", High: "4"},
			func(c *Config, lv pb.Level) { c.IntMultDivs = hiLo(lv, 1, 4) }},
		{pb.Factor{Name: "Int Multiply Latency", Low: "15 cycles", High: "2 cycles"},
			func(c *Config, lv pb.Level) { c.IntMultLat = hiLo(lv, 15, 2) }},
		{pb.Factor{Name: "Int Divide Latency", Low: "80 cycles", High: "10 cycles"},
			func(c *Config, lv pb.Level) { c.IntDivLat = hiLo(lv, 80, 10) }},
		{pb.Factor{Name: "FP Mult/Div", Low: "1", High: "4"},
			func(c *Config, lv pb.Level) { c.FPMultDivs = hiLo(lv, 1, 4) }},
		{pb.Factor{Name: "FP Multiply Latency", Low: "5 cycles", High: "2 cycles"},
			func(c *Config, lv pb.Level) { c.FPMultLat = hiLo(lv, 5, 2) }},
		{pb.Factor{Name: "FP Divide Latency", Low: "35 cycles", High: "10 cycles"},
			func(c *Config, lv pb.Level) { c.FPDivLat = hiLo(lv, 35, 10) }},
		{pb.Factor{Name: "FP Square Root Latency", Low: "35 cycles", High: "15 cycles"},
			func(c *Config, lv pb.Level) { c.FPSqrtLat = hiLo(lv, 35, 15) }},

		// --- Table 8: memory hierarchy ---
		{pb.Factor{Name: "L1 I-Cache Size", Low: "4 KB", High: "128 KB"},
			func(c *Config, lv pb.Level) { c.L1ISizeKB = hiLo(lv, 4, 128) }},
		{pb.Factor{Name: "L1 I-Cache Associativity", Low: "1-way", High: "8-way"},
			func(c *Config, lv pb.Level) { c.L1IAssoc = hiLo(lv, 1, 8) }},
		{pb.Factor{Name: "L1 I-Cache Block Size", Low: "16 B", High: "64 B"},
			func(c *Config, lv pb.Level) { c.L1IBlock = hiLo(lv, 16, 64) }},
		{pb.Factor{Name: "L1 I-Cache Latency", Low: "4 cycles", High: "1 cycle"},
			func(c *Config, lv pb.Level) { c.L1ILat = hiLo(lv, 4, 1) }},
		{pb.Factor{Name: "L1 D-Cache Size", Low: "4 KB", High: "128 KB"},
			func(c *Config, lv pb.Level) { c.L1DSizeKB = hiLo(lv, 4, 128) }},
		{pb.Factor{Name: "L1 D-Cache Associativity", Low: "1-way", High: "8-way"},
			func(c *Config, lv pb.Level) { c.L1DAssoc = hiLo(lv, 1, 8) }},
		{pb.Factor{Name: "L1 D-Cache Block Size", Low: "16 B", High: "64 B"},
			func(c *Config, lv pb.Level) { c.L1DBlock = hiLo(lv, 16, 64) }},
		{pb.Factor{Name: "L1 D-Cache Latency", Low: "4 cycles", High: "1 cycle"},
			func(c *Config, lv pb.Level) { c.L1DLat = hiLo(lv, 4, 1) }},
		{pb.Factor{Name: "L2 Cache Size", Low: "256 KB", High: "8192 KB"},
			func(c *Config, lv pb.Level) { c.L2SizeKB = hiLo(lv, 256, 8192) }},
		{pb.Factor{Name: "L2 Cache Associativity", Low: "1-way", High: "8-way"},
			func(c *Config, lv pb.Level) { c.L2Assoc = hiLo(lv, 1, 8) }},
		{pb.Factor{Name: "L2 Cache Block Size", Low: "64 B", High: "256 B"},
			func(c *Config, lv pb.Level) { c.L2Block = hiLo(lv, 64, 256) }},
		{pb.Factor{Name: "L2 Cache Latency", Low: "20 cycles", High: "5 cycles"},
			func(c *Config, lv pb.Level) { c.L2Lat = hiLo(lv, 20, 5) }},
		{pb.Factor{Name: "Memory Latency First", Low: "200 cycles", High: "50 cycles"},
			func(c *Config, lv pb.Level) { c.MemLatFirst = hiLo(lv, 200, 50) }},
		{pb.Factor{Name: "Memory Bandwidth", Low: "4 B", High: "32 B"},
			func(c *Config, lv pb.Level) { c.MemBWBytes = hiLo(lv, 4, 32) }},
		{pb.Factor{Name: "I-TLB Size", Low: "32 entries", High: "256 entries"},
			func(c *Config, lv pb.Level) { c.ITLBEntries = hiLo(lv, 32, 256) }},
		{pb.Factor{Name: "I-TLB Page Size", Low: "4 KB", High: "4096 KB"},
			func(c *Config, lv pb.Level) { c.PageKB = hiLo(lv, 4, 4096) }},
		{pb.Factor{Name: "I-TLB Associativity", Low: "2-way", High: "fully-assoc"},
			func(c *Config, lv pb.Level) { c.ITLBAssoc = hiLo(lv, 2, FullyAssociative) }},
		{pb.Factor{Name: "I-TLB Latency", Low: "80 cycles", High: "30 cycles"},
			func(c *Config, lv pb.Level) { c.ITLBLat = hiLo(lv, 80, 30) }},
		{pb.Factor{Name: "D-TLB Size", Low: "32 entries", High: "256 entries"},
			func(c *Config, lv pb.Level) { c.DTLBEntries = hiLo(lv, 32, 256) }},
		{pb.Factor{Name: "D-TLB Associativity", Low: "2-way", High: "fully-assoc"},
			func(c *Config, lv pb.Level) { c.DTLBAssoc = hiLo(lv, 2, FullyAssociative) }},
	}
}

// Factors returns just the pb.Factor descriptions of PBFactors, for
// building experiments.
func Factors() []pb.Factor {
	pf := PBFactors()
	out := make([]pb.Factor, len(pf))
	for i, f := range pf {
		out[i] = f.Factor
	}
	return out
}

// ConfigForLevels produces the simulator configuration of one PB
// design row: each of the first len(PBFactors()) levels selects its
// parameter's low or high value; any further columns are dummy
// factors and are ignored. The width stays fixed at 4.
func ConfigForLevels(levels []pb.Level) Config {
	cfg := Default()
	cfg.Width = 4
	for i, f := range PBFactors() {
		if i >= len(levels) {
			break
		}
		f.Apply(&cfg, levels[i])
	}
	return cfg
}
