package cache

import "fmt"

// TLB is a translation lookaside buffer: a set-associative array of
// page-number tags. Table 8 parameterizes its entry count,
// associativity, page size and miss latency.
type TLB struct {
	pageBits uint
	cache    *Cache
}

// NewTLB builds a TLB with the given number of entries, associativity
// (FullyAssociative allowed) and page size in bytes (power of two).
func NewTLB(entries, assoc int, pageBytes uint64) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cache: TLB entries %d invalid", entries)
	}
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("cache: page size %d is not a power of two", pageBytes)
	}
	pageBits := uint(0)
	for uint64(1)<<pageBits < pageBytes {
		pageBits++
	}
	// Reuse the cache array with 1-byte "blocks" over page numbers.
	c, err := New(Config{SizeBytes: entries, Assoc: assoc, BlockBytes: 1, Policy: LRU})
	if err != nil {
		return nil, fmt.Errorf("cache: TLB geometry: %w", err)
	}
	return &TLB{pageBits: pageBits, cache: c}, nil
}

// Access translates addr, allocating the page entry on a miss, and
// reports whether the translation hit.
//
//pbcheck:hotpath
func (t *TLB) Access(addr uint64) bool {
	return t.cache.Access(addr >> t.pageBits)
}

// Stats returns access counters.
func (t *TLB) Stats() Stats { return t.cache.Stats() }

// PageBytes returns the configured page size.
func (t *TLB) PageBytes() uint64 { return 1 << t.pageBits }

// Entries returns the TLB capacity in page entries.
func (t *TLB) Entries() int { return t.cache.sets * t.cache.ways }

// Flush invalidates all translations and clears statistics.
func (t *TLB) Flush() { t.cache.Flush() }
