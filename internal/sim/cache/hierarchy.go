package cache

import "fmt"

// HierarchyConfig wires the full memory system of Table 8: split L1
// instruction/data caches, a unified L2, split instruction/data TLBs,
// and one DRAM channel.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	// Latencies in cycles for a hit in each structure.
	L1ILatency, L1DLatency, L2Latency int
	// ITLB / DTLB geometry.
	ITLBEntries, ITLBAssoc int
	DTLBEntries, DTLBAssoc int
	PageBytes              uint64
	// ITLBLatency / DTLBLatency are the page-walk penalties charged on
	// a TLB miss.
	ITLBLatency, DTLBLatency int
	// MemLatencyFirst is the DRAM latency of the first chunk;
	// MemLatencyRest the per-chunk latency of the remainder of a block
	// (the paper couples it as 0.02 x first). MemBandwidthBytes is the
	// chunk width.
	MemLatencyFirst, MemLatencyRest int
	MemBandwidthBytes               int
}

// Hierarchy is the runtime memory system. It is single-threaded, like
// the simulator that owns it.
//
// DRAM follows the SimpleScalar model the paper used: every L2 miss
// pays the first-chunk latency plus a bandwidth-limited transfer time
// for the rest of the block, and concurrent misses overlap freely (no
// channel queueing) -- memory-level parallelism is limited by the
// processor's ROB, LSQ and memory ports instead.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
	// DRAMAccesses counts block transfers from memory.
	DRAMAccesses uint64
}

// NewHierarchy validates the configuration and allocates all arrays.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.MemBandwidthBytes <= 0 {
		return nil, fmt.Errorf("cache: memory bandwidth %d invalid", cfg.MemBandwidthBytes)
	}
	if cfg.MemLatencyFirst < 1 || cfg.MemLatencyRest < 0 {
		return nil, fmt.Errorf("cache: memory latencies (%d, %d) invalid", cfg.MemLatencyFirst, cfg.MemLatencyRest)
	}
	h := &Hierarchy{cfg: cfg}
	var err error
	if h.L1I, err = New(cfg.L1I); err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	if h.L1D, err = New(cfg.L1D); err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	if h.L2, err = New(cfg.L2); err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if h.ITLB, err = NewTLB(cfg.ITLBEntries, cfg.ITLBAssoc, cfg.PageBytes); err != nil {
		return nil, fmt.Errorf("ITLB: %w", err)
	}
	if h.DTLB, err = NewTLB(cfg.DTLBEntries, cfg.DTLBAssoc, cfg.PageBytes); err != nil {
		return nil, fmt.Errorf("DTLB: %w", err)
	}
	return h, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// dramLatency charges a block transfer from DRAM starting at t,
// returning the cycle at which the block is available: first-chunk
// latency plus following-chunk latency for the rest of the L2 block.
//
//pbcheck:hotpath
func (h *Hierarchy) dramLatency(t int64) int64 {
	chunks := (h.L2.BlockBytes() + h.cfg.MemBandwidthBytes - 1) / h.cfg.MemBandwidthBytes
	transfer := int64(h.cfg.MemLatencyFirst)
	if chunks > 1 {
		transfer += int64(chunks-1) * int64(h.cfg.MemLatencyRest)
	}
	h.DRAMAccesses++
	return t + transfer
}

// PrewarmData walks [start, start+size) through the data-side
// hierarchy (DTLB, L1D, L2) without charging any time, emulating the
// functional-warming phase of a long simulation: the measured phase
// then observes steady-state rather than compulsory misses.
// Statistics are not affected. Where a structure is smaller than the
// range, the tail of the range stays resident (LRU order), as after a
// sequential lap of the working set.
func (h *Hierarchy) PrewarmData(start, size uint64) {
	h.prewarm(h.L1D, h.DTLB, start, size)
}

// PrewarmCode is PrewarmData for the instruction side (ITLB, L1I, L2).
func (h *Hierarchy) PrewarmCode(start, size uint64) {
	h.prewarm(h.L1I, h.ITLB, start, size)
}

// prewarm performs the sequential warming lap. The walk advances one
// L1 block (and, for the TLB, one page) at a time instead of probing
// every 16-byte chunk: within a sequential lap, intra-block repeat
// accesses always hit the line just filled and only refresh its own
// recency stamp, so skipping them leaves the final tag contents,
// relative recency order, and every later replacement decision
// bit-identical to the fine-grained walk at a small fraction of the
// probes. (The stride never exceeds a block, so no block in the range
// is skipped regardless of alignment; the sub-16-byte guard keeps the
// historical 16-byte floor for degenerate block sizes.)
//
//pbcheck:hotpath
func (h *Hierarchy) prewarm(l1 *Cache, tlb *TLB, start, size uint64) {
	dram := h.DRAMAccesses
	l1s, l2s, tlbs := l1.stats, h.L2.stats, tlb.cache.stats
	end := start + size
	step := uint64(l1.BlockBytes())
	if step < 16 {
		step = 16
	}
	for addr := start; addr < end; {
		if !l1.Access(addr) {
			h.L2.Access(addr)
		}
		next := (addr/step + 1) * step
		if next <= addr {
			break // address-space wraparound
		}
		addr = next
	}
	pstep := tlb.PageBytes()
	if pstep < 16 {
		pstep = 16
	}
	for addr := start; addr < end; {
		tlb.Access(addr)
		next := (addr/pstep + 1) * pstep
		if next <= addr {
			break // address-space wraparound
		}
		addr = next
	}
	h.DRAMAccesses = dram
	l1.stats, h.L2.stats, tlb.cache.stats = l1s, l2s, tlbs
}

// InstFetch performs the timing of an instruction-block fetch
// beginning at the given cycle and returns its total latency in
// cycles: ITLB (plus page walk on a miss), L1I, then L2 and DRAM as
// needed.
//
//pbcheck:hotpath
func (h *Hierarchy) InstFetch(addr uint64, cycle int64) int64 {
	t := cycle
	if !h.ITLB.Access(addr) {
		t += int64(h.cfg.ITLBLatency)
	}
	t += int64(h.cfg.L1ILatency)
	if !h.L1I.Access(addr) {
		t += int64(h.cfg.L2Latency)
		if !h.L2.Access(addr) {
			t = h.dramLatency(t)
		}
	}
	return t - cycle
}

// DataAccess performs the timing of a load or store beginning at the
// given cycle and returns its total latency: DTLB (plus walk), L1D,
// then L2 and DRAM. Stores allocate like loads (write-allocate,
// write-back timing model).
//
//pbcheck:hotpath
func (h *Hierarchy) DataAccess(addr uint64, cycle int64) int64 {
	t := cycle
	if !h.DTLB.Access(addr) {
		t += int64(h.cfg.DTLBLatency)
	}
	t += int64(h.cfg.L1DLatency)
	if !h.L1D.Access(addr) {
		t += int64(h.cfg.L2Latency)
		if !h.L2.Access(addr) {
			t = h.dramLatency(t)
		}
	}
	return t - cycle
}
