// Package cache models the parameterized memory-hierarchy structures
// of Table 8 of the paper: set-associative caches with configurable
// size, associativity, block size and replacement policy, translation
// lookaside buffers, and a DRAM channel with a first-block latency and
// a bandwidth-limited transfer time for the remaining chunks of a
// block.
package cache

import "fmt"

// Replacement selects the victim-choice policy of a set.
type Replacement int

// Supported replacement policies. The paper uses LRU throughout; FIFO
// and Random are provided for ablation studies.
const (
	LRU Replacement = iota
	FIFO
	Random
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the number of ways; use FullyAssociative for a
	// fully-associative array.
	Assoc int
	// BlockBytes is the line size (power of two).
	BlockBytes int
	// Policy is the replacement policy.
	Policy Replacement
}

// FullyAssociative requests associativity equal to the number of
// blocks.
const FullyAssociative = -1

// Stats counts accesses and misses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses (0 when no accesses occurred).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one way of a set: the block tag plus its replacement stamp.
// meta is the LRU stamp or FIFO arrival time; 0 marks an invalid line
// (the clock is pre-incremented on every access, so a filled line
// always carries a stamp >= 1). Keeping tag and stamp in one 16-byte
// struct lets a set probe walk a single contiguous array instead of
// three parallel slices — one cache line of host memory covers a
// 4-way set.
type line struct {
	tag  uint64
	meta uint64
}

// Cache is a set-associative tag array. It tracks presence only (no
// data), which is all a timing model needs.
type Cache struct {
	sets      int
	ways      int
	blockBits uint
	setMask   uint64
	lines     []line // sets*ways entries, set-major
	clock     uint64
	policy    Replacement
	rng       uint64 // xorshift state for Random policy
	stats     Stats
}

// New builds a cache from the configuration. Size must be a positive
// multiple of BlockBytes, and BlockBytes a power of two; Assoc must
// divide the block count (or be FullyAssociative).
func New(cfg Config) (*Cache, error) {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d is not a positive power of two", cfg.BlockBytes)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%cfg.BlockBytes != 0 {
		return nil, fmt.Errorf("cache: size %d is not a positive multiple of block size %d", cfg.SizeBytes, cfg.BlockBytes)
	}
	blocks := cfg.SizeBytes / cfg.BlockBytes
	assoc := cfg.Assoc
	if assoc == FullyAssociative || assoc > blocks {
		assoc = blocks
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("cache: associativity %d invalid", cfg.Assoc)
	}
	if blocks%assoc != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, assoc)
	}
	sets := blocks / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", sets)
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockBytes {
		blockBits++
	}
	return &Cache{
		sets:      sets,
		ways:      assoc,
		blockBits: blockBits,
		setMask:   uint64(sets - 1),
		lines:     make([]line, sets*assoc),
		policy:    cfg.Policy,
		rng:       0x9e3779b97f4a7c15,
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// BlockBytes returns the line size.
func (c *Cache) BlockBytes() int { return 1 << c.blockBits }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access looks up the block containing addr, allocating it on a miss,
// and reports whether the access hit. The timing consequences of a
// miss are the caller's concern.
//
//pbcheck:hotpath
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	block := addr >> c.blockBits
	base := int(block&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	for w := range set {
		if ln := &set[w]; ln.meta != 0 && ln.tag == block {
			if c.policy == LRU {
				ln.meta = c.clock
			}
			return true
		}
	}
	c.stats.Misses++
	c.fill(set, block)
	return false
}

// Contains reports whether the block holding addr is present, without
// updating any state or statistics.
//
//pbcheck:hotpath
func (c *Cache) Contains(addr uint64) bool {
	block := addr >> c.blockBits
	base := int(block&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	for w := range set {
		if set[w].meta != 0 && set[w].tag == block {
			return true
		}
	}
	return false
}

// fill victimizes a way of the set and installs the block. Invalid
// lines carry stamp 0, so the smallest-stamp scan of the LRU/FIFO
// policies selects the first invalid way exactly as an explicit
// invalid-first pass would.
//
//pbcheck:hotpath
func (c *Cache) fill(set []line, block uint64) {
	victim := 0
	switch c.policy {
	case Random:
		// Invalid ways first, then xorshift-random.
		found := false
		for w := range set {
			if set[w].meta == 0 {
				victim, found = w, true
				break
			}
		}
		if !found {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(c.ways))
		}
	default: // LRU and FIFO both evict the smallest stamp
		oldest := set[0].meta
		for w := 1; w < len(set); w++ {
			if set[w].meta < oldest {
				victim, oldest = w, set[w].meta
			}
		}
	}
	set[victim] = line{tag: block, meta: c.clock} // LRU: last use; FIFO: arrival time
}

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.stats = Stats{}
}
