package cache

import "testing"

func testHierCfg() HierarchyConfig {
	return HierarchyConfig{
		L1I:               Config{SizeBytes: 4096, Assoc: 1, BlockBytes: 16, Policy: LRU},
		L1D:               Config{SizeBytes: 4096, Assoc: 1, BlockBytes: 16, Policy: LRU},
		L2:                Config{SizeBytes: 256 << 10, Assoc: 1, BlockBytes: 64, Policy: LRU},
		L1ILatency:        1,
		L1DLatency:        1,
		L2Latency:         10,
		ITLBEntries:       32,
		ITLBAssoc:         2,
		DTLBEntries:       32,
		DTLBAssoc:         2,
		PageBytes:         4096,
		ITLBLatency:       30,
		DTLBLatency:       30,
		MemLatencyFirst:   100,
		MemLatencyRest:    2,
		MemBandwidthBytes: 8,
	}
}

func mustHier(t *testing.T, cfg HierarchyConfig) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencyLadder(t *testing.T) {
	h := mustHier(t, testHierCfg())
	// First access: DTLB miss (30) + L1 (1) + L2 (10) + memory.
	// Memory: 64B block over 8B chunks = 8 chunks: 100 + 7*2 = 114.
	lat := h.DataAccess(0x100, 0)
	want := int64(30 + 1 + 10 + 114)
	if lat != want {
		t.Errorf("cold access latency = %d, want %d", lat, want)
	}
	// Same block immediately after: everything hits; latency = L1.
	lat = h.DataAccess(0x104, 1000)
	if lat != 1 {
		t.Errorf("hot access latency = %d, want 1", lat)
	}
	// Same page, different L1 block within the same L2 block:
	// L1 miss, L2 hit: 1 + 10.
	lat = h.DataAccess(0x110, 2000)
	if lat != 11 {
		t.Errorf("L2-hit latency = %d, want 11", lat)
	}
	if h.DRAMAccesses != 1 {
		t.Errorf("DRAM accesses = %d, want 1", h.DRAMAccesses)
	}
}

func TestInstFetchLadder(t *testing.T) {
	h := mustHier(t, testHierCfg())
	lat := h.InstFetch(0x400000, 0)
	want := int64(30 + 1 + 10 + 114)
	if lat != want {
		t.Errorf("cold fetch latency = %d, want %d", lat, want)
	}
	if lat := h.InstFetch(0x400004, 500); lat != 1 {
		t.Errorf("hot fetch latency = %d, want 1", lat)
	}
}

func TestDRAMAccessesOverlap(t *testing.T) {
	h := mustHier(t, testHierCfg())
	// Two cold accesses to different pages at the same cycle overlap
	// freely (the SimpleScalar memory model): apart from the second
	// page's TLB walk, the DRAM portions are identical.
	lat1 := h.DataAccess(0x0000, 0)
	lat2 := h.DataAccess(0x100000, 0)
	if lat1 != lat2 {
		t.Errorf("DRAM accesses should overlap: %d vs %d", lat1, lat2)
	}
	if h.DRAMAccesses != 2 {
		t.Errorf("DRAM accesses = %d", h.DRAMAccesses)
	}
}

func TestBandwidthMatters(t *testing.T) {
	narrow := testHierCfg()
	narrow.MemBandwidthBytes = 4
	wide := testHierCfg()
	wide.MemBandwidthBytes = 32
	hn := mustHier(t, narrow)
	hw := mustHier(t, wide)
	ln := hn.DataAccess(0x5000, 0)
	lw := hw.DataAccess(0x5000, 0)
	if ln <= lw {
		t.Errorf("narrow bus (%d cycles) should be slower than wide bus (%d)", ln, lw)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cfg := testHierCfg()
	cfg.MemBandwidthBytes = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
	cfg = testHierCfg()
	cfg.MemLatencyFirst = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("zero first latency accepted")
	}
	cfg = testHierCfg()
	cfg.L1I.BlockBytes = 7
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad L1I accepted")
	}
	cfg = testHierCfg()
	cfg.L1D.SizeBytes = -1
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad L1D accepted")
	}
	cfg = testHierCfg()
	cfg.L2.Assoc = 3
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
	cfg = testHierCfg()
	cfg.ITLBEntries = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad ITLB accepted")
	}
	cfg = testHierCfg()
	cfg.DTLBEntries = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad DTLB accepted")
	}
	h := mustHier(t, testHierCfg())
	if h.Config().L2Latency != 10 {
		t.Error("Config accessor")
	}
}

func TestPrewarm(t *testing.T) {
	h := mustHier(t, testHierCfg())
	h.PrewarmData(0x10000, 8192)
	// Statistics must be untouched by warming.
	if h.L1D.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 || h.DTLB.Stats().Accesses != 0 {
		t.Error("prewarm polluted statistics")
	}
	if h.DRAMAccesses != 0 {
		t.Error("prewarm counted DRAM accesses")
	}
	// But the content must be resident: a data access near the end of
	// the warmed range (the warmed range exceeds the 4 KB L1D, so the
	// tail survives) is now an L1 hit.
	if lat := h.DataAccess(0x10000+8192-64, 0); lat != int64(h.Config().L1DLatency) {
		t.Errorf("post-prewarm access latency = %d, want L1 hit", lat)
	}
	h.PrewarmCode(0x400000, 4096)
	if h.L1I.Stats().Accesses != 0 || h.ITLB.Stats().Accesses != 0 {
		t.Error("code prewarm polluted statistics")
	}
	if lat := h.InstFetch(0x400100, 0); lat != int64(h.Config().L1ILatency) {
		t.Errorf("post-prewarm fetch latency = %d, want L1 hit", lat)
	}
}

func TestPrewarmLargerThanCache(t *testing.T) {
	// Warming a range larger than the cache leaves the tail resident
	// (LRU), like a sequential lap of a big working set.
	h := mustHier(t, testHierCfg())
	size := uint64(2 * h.Config().L1D.SizeBytes)
	h.PrewarmData(0, size)
	if !h.L1D.Contains(size - 64) {
		t.Error("tail of the warmed range should be resident")
	}
	if h.L1D.Contains(0) {
		t.Error("head of an oversized warmed range should be evicted")
	}
}
