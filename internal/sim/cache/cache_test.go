package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Assoc: 2, BlockBytes: 16, Policy: LRU})
	if c.Sets() != 128 || c.Ways() != 2 || c.BlockBytes() != 16 {
		t.Errorf("geometry: %d sets, %d ways, %d block", c.Sets(), c.Ways(), c.BlockBytes())
	}
	full := mustCache(t, Config{SizeBytes: 1024, Assoc: FullyAssociative, BlockBytes: 64, Policy: LRU})
	if full.Sets() != 1 || full.Ways() != 16 {
		t.Errorf("fully associative: %d sets, %d ways", full.Sets(), full.Ways())
	}
	// Associativity larger than block count degrades to fully
	// associative rather than failing.
	over := mustCache(t, Config{SizeBytes: 128, Assoc: 8, BlockBytes: 64, Policy: LRU})
	if over.Ways() != 2 {
		t.Errorf("oversized assoc: %d ways", over.Ways())
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 4096, Assoc: 1, BlockBytes: 0},
		{SizeBytes: 4096, Assoc: 1, BlockBytes: 24},
		{SizeBytes: 100, Assoc: 1, BlockBytes: 16},
		{SizeBytes: 0, Assoc: 1, BlockBytes: 16},
		{SizeBytes: 4096, Assoc: 0, BlockBytes: 16},
		{SizeBytes: 4096, Assoc: 3, BlockBytes: 16},  // 256 blocks not divisible -> 85.33 sets
		{SizeBytes: 1536, Assoc: 1, BlockBytes: 16},  // 96 sets, not a power of two
		{SizeBytes: 4096, Assoc: -2, BlockBytes: 16}, // negative but not FullyAssociative
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64, Policy: LRU})
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x103f) {
		t.Error("same-block access missed")
	}
	if c.Access(0x1040) {
		t.Error("next block should cold-miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %g", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way set: fill both ways, touch the first, insert a third
	// conflicting block; the second (least recently used) must be the
	// victim.
	c := mustCache(t, Config{SizeBytes: 128, Assoc: 2, BlockBytes: 64, Policy: LRU})
	// One set only (128/64/2 = 1 set).
	a, b, d := uint64(0), uint64(64*1), uint64(64*2)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Error("a evicted despite recent use")
	}
	if c.Contains(b) {
		t.Error("b should have been the LRU victim")
	}
	if !c.Contains(d) {
		t.Error("d not installed")
	}
}

func TestFIFOEviction(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 128, Assoc: 2, BlockBytes: 64, Policy: FIFO})
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // re-touch must NOT refresh FIFO order
	c.Access(d) // evicts a (first in)
	if c.Contains(a) {
		t.Error("FIFO should evict the oldest arrival even if recently used")
	}
	if !c.Contains(b) || !c.Contains(d) {
		t.Error("b/d missing")
	}
}

func TestRandomPolicyStaysWithinSet(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 256, Assoc: 2, BlockBytes: 64, Policy: Random})
	for i := 0; i < 1000; i++ {
		c.Access(uint64(i*64) << 1)
	}
	// After heavy traffic the cache still functions: a freshly
	// accessed block is present.
	c.Access(0xdead000)
	if !c.Contains(0xdead000) {
		t.Error("random policy lost the just-inserted block")
	}
	if Random.String() != "Random" || LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Error("policy names")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	// A working set equal to the cache size, walked repeatedly, must
	// only cold-miss with LRU and a direct-mapped-friendly layout.
	c := mustCache(t, Config{SizeBytes: 4096, Assoc: 1, BlockBytes: 64, Policy: LRU})
	blocks := 4096 / 64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < blocks; i++ {
			c.Access(uint64(i * 64))
		}
	}
	s := c.Stats()
	if s.Misses != uint64(blocks) {
		t.Errorf("misses = %d, want %d cold misses only", s.Misses, blocks)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set of 2x the cache size walked cyclically with LRU
	// misses every time (the classic LRU worst case).
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: FullyAssociative, BlockBytes: 64, Policy: LRU})
	blocks := 2 * 1024 / 64
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < blocks; i++ {
			c.Access(uint64(i * 64))
		}
	}
	s := c.Stats()
	if s.Misses != s.Accesses {
		t.Errorf("cyclic thrash should miss always: %d/%d", s.Misses, s.Accesses)
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 512, Assoc: 2, BlockBytes: 64, Policy: LRU})
	c.Access(0x40)
	c.Flush()
	if c.Contains(0x40) {
		t.Error("flush left data behind")
	}
	if c.Stats().Accesses != 0 {
		t.Error("flush did not clear stats")
	}
}

func TestTLB(t *testing.T) {
	tlb, err := NewTLB(32, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Entries() != 32 || tlb.PageBytes() != 4096 {
		t.Errorf("TLB geometry: %d entries, %d page", tlb.Entries(), tlb.PageBytes())
	}
	if tlb.Access(0x1000) {
		t.Error("cold TLB hit")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Error("next page should cold-miss")
	}
	if s := tlb.Stats(); s.Accesses != 3 || s.Misses != 2 {
		t.Errorf("TLB stats = %+v", s)
	}
	tlb.Flush()
	if tlb.Stats().Accesses != 0 {
		t.Error("TLB flush")
	}
	fully, err := NewTLB(64, FullyAssociative, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if fully.PageBytes() != 1<<22 {
		t.Errorf("page bytes = %d", fully.PageBytes())
	}
	if _, err := NewTLB(0, 1, 4096); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewTLB(32, 1, 1000); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	if _, err := NewTLB(48, 32, 4096); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestTLBReachCapacity(t *testing.T) {
	// 32 fully-associative entries with 4 KB pages: touching 32 pages
	// then revisiting them hits; a 33rd page evicts the LRU one.
	tlb, _ := NewTLB(32, FullyAssociative, 4096)
	for p := 0; p < 32; p++ {
		tlb.Access(uint64(p) << 12)
	}
	for p := 0; p < 32; p++ {
		if !tlb.Access(uint64(p) << 12) {
			t.Fatalf("page %d evicted within capacity", p)
		}
	}
	tlb.Access(32 << 12)
	if tlb.Access(0) {
		t.Error("LRU page survived over-capacity insert")
	}
}

func TestPropCacheContainsAfterAccess(t *testing.T) {
	f := func(addrs []uint64) bool {
		c, err := New(Config{SizeBytes: 2048, Assoc: 4, BlockBytes: 32, Policy: LRU})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(a)
			if !c.Contains(a) {
				return false
			}
			// A Contains probe never changes state.
			if !c.Access(a) {
				return false
			}
		}
		s := c.Stats()
		return s.Accesses == 2*uint64(len(addrs)) && s.Misses <= uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropBiggerCacheNeverMissesMore(t *testing.T) {
	// Fully-associative LRU caches have the stack property: a larger
	// cache's misses are a subset of a smaller one's on any trace.
	f := func(seed uint64) bool {
		small, _ := New(Config{SizeBytes: 1024, Assoc: FullyAssociative, BlockBytes: 64, Policy: LRU})
		big, _ := New(Config{SizeBytes: 4096, Assoc: FullyAssociative, BlockBytes: 64, Policy: LRU})
		s := seed
		for i := 0; i < 3000; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			addr := (s >> 16) % (1 << 14)
			small.Access(addr)
			big.Access(addr)
		}
		return big.Stats().Misses <= small.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
