// Package bpred models the branch-prediction hardware of Table 6 of
// the paper: direction predictors (two-level adaptive, bimodal, static
// taken, and perfect), a set-associative branch target buffer, and a
// return address stack. The "speculative branch update" parameter
// (update history in decode vs in commit) is realized by the pipeline,
// which chooses when to call Update.
package bpred

import "fmt"

// satNext is the two-bit saturating-counter transition table:
// satNext[counter][outcome] with outcome 0 = not taken, 1 = taken.
// Table-driven updates keep the predictor train step branch-free,
// which matters because Update runs once per conditional branch in
// the simulator's hottest loop.
var satNext = [4][2]uint8{
	{0, 1}, // strongly not-taken
	{0, 2}, // weakly not-taken
	{1, 3}, // weakly taken
	{2, 3}, // strongly taken
}

// DirectionPredictor predicts conditional-branch directions.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the branch's actual outcome.
	// The pipeline calls it at decode time (speculative update) or at
	// commit time, per the speculative-branch-update parameter.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in statistics output.
	Name() string
}

// TwoLevel is a two-level adaptive predictor with per-branch (local)
// history, the PAg organization of Yeh and Patt: a branch-history
// table indexed by PC holds each branch's recent outcomes, and the
// history pattern XOR-folded with the PC indexes a shared table of
// two-bit saturating counters. Local history learns periodic
// per-branch behaviour (loop trip counts, alternating branches) that
// no counter-only predictor can capture.
type TwoLevel struct {
	histBits uint
	histMask uint64
	bht      []uint64 // per-branch local histories
	bhtMask  uint64
	mask     uint64
	pht      []uint8
}

// NewTwoLevel builds a two-level predictor with the given local
// history length and pattern-history-table size (1 << tableBits
// counters). The branch-history table has 1024 entries.
func NewTwoLevel(histBits, tableBits uint) (*TwoLevel, error) {
	if tableBits < 1 || tableBits > 24 {
		return nil, fmt.Errorf("bpred: tableBits %d out of range", tableBits)
	}
	if histBits > tableBits {
		histBits = tableBits
	}
	const bhtEntries = 1024
	p := &TwoLevel{
		histBits: histBits,
		histMask: (1 << histBits) - 1,
		bht:      make([]uint64, bhtEntries),
		bhtMask:  bhtEntries - 1,
		mask:     (1 << tableBits) - 1,
		pht:      make([]uint8, 1<<tableBits),
	}
	// Weakly taken initial state.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p, nil
}

func (p *TwoLevel) index(pc uint64) uint64 {
	hist := p.bht[(pc>>2)&p.bhtMask]
	return (hist ^ (pc >> 2) ^ (pc >> 12)) & p.mask
}

// Predict implements DirectionPredictor.
//
//pbcheck:hotpath
func (p *TwoLevel) Predict(pc uint64) bool {
	return p.pht[p.index(pc)] >= 2
}

// Update implements DirectionPredictor: it trains the counter and
// shifts the outcome into the branch's local history.
//
//pbcheck:hotpath
func (p *TwoLevel) Update(pc uint64, taken bool) {
	bit := boolBit(taken)
	idx := p.index(pc)
	p.pht[idx] = satNext[p.pht[idx]&3][bit]
	b := (pc >> 2) & p.bhtMask
	p.bht[b] = ((p.bht[b] << 1) | bit) & p.histMask
}

// Name implements DirectionPredictor.
func (p *TwoLevel) Name() string { return "2-Level" }

// Bimodal is a PC-indexed table of two-bit saturating counters with no
// history.
type Bimodal struct {
	mask uint64
	pht  []uint8
}

// NewBimodal builds a bimodal predictor with 1 << tableBits counters.
func NewBimodal(tableBits uint) (*Bimodal, error) {
	if tableBits < 1 || tableBits > 24 {
		return nil, fmt.Errorf("bpred: tableBits %d out of range", tableBits)
	}
	p := &Bimodal{mask: (1 << tableBits) - 1, pht: make([]uint8, 1<<tableBits)}
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p, nil
}

// Predict implements DirectionPredictor.
//
//pbcheck:hotpath
func (p *Bimodal) Predict(pc uint64) bool {
	return p.pht[(pc>>2)&p.mask] >= 2
}

// Update implements DirectionPredictor.
//
//pbcheck:hotpath
func (p *Bimodal) Update(pc uint64, taken bool) {
	idx := (pc >> 2) & p.mask
	p.pht[idx] = satNext[p.pht[idx]&3][boolBit(taken)]
}

// Name implements DirectionPredictor.
func (p *Bimodal) Name() string { return "Bimodal" }

// Taken always predicts taken (static prediction).
type Taken struct{}

// Predict implements DirectionPredictor.
//
//pbcheck:hotpath
func (Taken) Predict(uint64) bool { return true }

// Update implements DirectionPredictor (no state).
//
//pbcheck:hotpath
func (Taken) Update(uint64, bool) {}

// Name implements DirectionPredictor.
func (Taken) Name() string { return "Taken" }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
