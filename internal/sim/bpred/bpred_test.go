package bpred

import (
	"testing"
	"testing/quick"
)

func TestTwoLevelLearnsBias(t *testing.T) {
	p, err := NewTwoLevel(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400100)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("failed to learn an always-taken branch")
	}
	for i := 0; i < 100; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("failed to learn an always-not-taken branch")
	}
	if p.Name() != "2-Level" {
		t.Error("name")
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// A strictly alternating branch defeats a bimodal predictor but a
	// two-level predictor with history learns it (almost) perfectly.
	pattern := func(i int) bool { return i%2 == 0 }
	twoLevel, _ := NewTwoLevel(8, 12)
	bimodal, _ := NewBimodal(12)
	pc := uint64(0x400200)
	var tlCorrect, bmCorrect, total int
	for i := 0; i < 4000; i++ {
		taken := pattern(i)
		if i > 1000 { // after warmup
			total++
			if twoLevel.Predict(pc) == taken {
				tlCorrect++
			}
			if bimodal.Predict(pc) == taken {
				bmCorrect++
			}
		}
		twoLevel.Update(pc, taken)
		bimodal.Update(pc, taken)
	}
	tlAcc := float64(tlCorrect) / float64(total)
	bmAcc := float64(bmCorrect) / float64(total)
	if tlAcc < 0.99 {
		t.Errorf("two-level accuracy on alternating branch = %.3f, want ~1", tlAcc)
	}
	if bmAcc > 0.7 {
		t.Errorf("bimodal accuracy on alternating branch = %.3f, expected poor", bmAcc)
	}
}

func TestTwoLevelLearnsLongerPeriod(t *testing.T) {
	// Period-4 pattern TTNT: learnable with >= 4 bits of history.
	seq := []bool{true, true, false, true}
	p, _ := NewTwoLevel(10, 14)
	pc := uint64(0x400300)
	correct, total := 0, 0
	for i := 0; i < 8000; i++ {
		taken := seq[i%len(seq)]
		if i > 2000 {
			total++
			if p.Predict(pc) == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("period-4 accuracy = %.3f", acc)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x400400)
	for i := 0; i < 10; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("bimodal failed to learn not-taken bias")
	}
	if p.Name() != "Bimodal" {
		t.Error("name")
	}
}

func TestTakenPredictor(t *testing.T) {
	p := Taken{}
	if !p.Predict(0x1234) {
		t.Error("Taken must predict taken")
	}
	p.Update(0x1234, false) // no-op, must not panic
	if p.Name() != "Taken" {
		t.Error("name")
	}
}

func TestPredictorConstructionErrors(t *testing.T) {
	if _, err := NewTwoLevel(4, 0); err == nil {
		t.Error("tableBits 0 accepted")
	}
	if _, err := NewTwoLevel(4, 30); err == nil {
		t.Error("tableBits 30 accepted")
	}
	if _, err := NewBimodal(0); err == nil {
		t.Error("bimodal tableBits 0 accepted")
	}
	if _, err := NewBimodal(25); err == nil {
		t.Error("bimodal tableBits 25 accepted")
	}
	// Oversized history is clamped, not rejected.
	p, err := NewTwoLevel(40, 12)
	if err != nil || p == nil {
		t.Errorf("history clamping failed: %v", err)
	}
}

func TestBTBBasic(t *testing.T) {
	b, err := NewBTB(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sets() != 8 || b.Ways() != 2 {
		t.Errorf("geometry %dx%d", b.Sets(), b.Ways())
	}
	if _, ok := b.Lookup(0x400000); ok {
		t.Error("cold BTB hit")
	}
	b.Insert(0x400000, 0x400800)
	tgt, ok := b.Lookup(0x400000)
	if !ok || tgt != 0x400800 {
		t.Errorf("lookup = %#x, %v", tgt, ok)
	}
	// Re-insert with a new target overwrites.
	b.Insert(0x400000, 0x400900)
	tgt, _ = b.Lookup(0x400000)
	if tgt != 0x400900 {
		t.Errorf("target not updated: %#x", tgt)
	}
	if hr := b.HitRate(); hr <= 0 || hr > 1 {
		t.Errorf("hit rate = %g", hr)
	}
	empty, _ := NewBTB(4, 1)
	if empty.HitRate() != 0 {
		t.Error("empty hit rate")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	// Direct-mapped BTB with 4 entries: PCs 0 and 4*4<<2 conflict.
	b, _ := NewBTB(4, 1)
	pcA := uint64(0x1000)
	pcB := pcA + 4*4 // same set (key stride = sets)
	b.Insert(pcA, 1)
	b.Insert(pcB, 2)
	if _, ok := b.Lookup(pcA); ok {
		t.Error("conflicting entry survived in direct-mapped BTB")
	}
	if tgt, ok := b.Lookup(pcB); !ok || tgt != 2 {
		t.Error("newest entry lost")
	}
}

func TestBTBFullyAssociativeLRU(t *testing.T) {
	b, _ := NewBTB(4, FullyAssociative)
	if b.Sets() != 1 || b.Ways() != 4 {
		t.Fatalf("geometry %dx%d", b.Sets(), b.Ways())
	}
	for i := 0; i < 4; i++ {
		b.Insert(uint64(0x1000+i*4), uint64(i))
	}
	b.Lookup(0x1000) // refresh entry 0
	b.Insert(0x2000, 99)
	if _, ok := b.Lookup(0x1000); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := b.Lookup(0x1004); ok {
		t.Error("LRU entry not evicted")
	}
}

func TestBTBValidation(t *testing.T) {
	if _, err := NewBTB(0, 1); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewBTB(16, 3); err == nil {
		t.Error("non-dividing associativity accepted")
	}
	if _, err := NewBTB(24, 2); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if b, err := NewBTB(8, 100); err != nil || b.Ways() != 8 {
		t.Error("oversized associativity should clamp to fully associative")
	}
}

func TestRASLIFO(t *testing.T) {
	r, err := NewRAS(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != 4 {
		t.Errorf("capacity = %d", r.Capacity())
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Depth() != 3 {
		t.Errorf("depth = %d", r.Depth())
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("pop = %d, %v; want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty RAS succeeded")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	// Depth-2 stack, push 1..3: entry 1 is overwritten; pops yield
	// 3, 2, then underflow -- the shallow-RAS misprediction mechanism.
	r, _ := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("pop1 = %d", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("pop2 = %d", got)
	}
	if _, ok := r.Pop(); ok {
		t.Error("expected underflow after overflow dropped the oldest frame")
	}
}

func TestRASValidation(t *testing.T) {
	if _, err := NewRAS(0); err == nil {
		t.Error("zero-entry RAS accepted")
	}
}

func TestPropRASNeverExceedsCapacity(t *testing.T) {
	f := func(ops []bool, capSel uint8) bool {
		capacity := int(capSel%8) + 1
		r, err := NewRAS(capacity)
		if err != nil {
			return false
		}
		for i, push := range ops {
			if push {
				r.Push(uint64(i))
			} else {
				r.Pop()
			}
			if r.Depth() < 0 || r.Depth() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropBTBLookupAfterInsert(t *testing.T) {
	f := func(pcs []uint64) bool {
		b, err := NewBTB(32, 4)
		if err != nil {
			return false
		}
		for _, pc := range pcs {
			b.Insert(pc, pc+4)
			tgt, ok := b.Lookup(pc)
			if !ok || tgt != pc+4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
