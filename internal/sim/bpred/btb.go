package bpred

import "fmt"

// BTB is a set-associative branch target buffer mapping branch PCs to
// their most recent taken targets (Table 6: entries, associativity).
type BTB struct {
	sets    int
	ways    int
	setMask uint64
	tags    []uint64
	targets []uint64
	valid   []bool
	stamp   []uint64
	clock   uint64
	// stats
	lookups, hits uint64
}

// FullyAssociative requests a single set covering all entries.
const FullyAssociative = -1

// NewBTB builds a BTB with the given entry count and associativity.
func NewBTB(entries, assoc int) (*BTB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("bpred: BTB entries %d invalid", entries)
	}
	if assoc == FullyAssociative || assoc > entries {
		assoc = entries
	}
	if assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("bpred: BTB associativity %d invalid for %d entries", assoc, entries)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d not a power of two", sets)
	}
	return &BTB{
		sets:    sets,
		ways:    assoc,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		stamp:   make([]uint64, entries),
	}, nil
}

// Sets returns the number of sets; Ways the associativity.
func (b *BTB) Sets() int { return b.sets }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.ways }

// Lookup returns the predicted target for the branch at pc and whether
// the BTB held an entry for it.
//
//pbcheck:hotpath
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	b.lookups++
	b.clock++
	key := pc >> 2
	base := int(key&b.setMask) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == key {
			b.stamp[base+w] = b.clock
			b.hits++
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Insert records the taken target of the branch at pc, evicting the
// LRU entry of the set if necessary.
//
//pbcheck:hotpath
func (b *BTB) Insert(pc, target uint64) {
	b.clock++
	key := pc >> 2
	base := int(key&b.setMask) * b.ways
	victim := base
	oldest := b.stamp[base]
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == key {
			b.targets[i] = target
			b.stamp[i] = b.clock
			return
		}
		if !b.valid[i] {
			victim = i
			oldest = 0
		} else if b.stamp[i] < oldest {
			victim = i
			oldest = b.stamp[i]
		}
	}
	b.tags[victim] = key
	b.targets[victim] = target
	b.valid[victim] = true
	b.stamp[victim] = b.clock
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// RAS is a return address stack of fixed depth. Pushes beyond the
// depth overwrite the oldest entry (circular), as in real hardware.
type RAS struct {
	stack []uint64
	top   int
	count int
	// stats
	pops, underflows uint64
}

// NewRAS builds a return address stack with the given entry count.
func NewRAS(entries int) (*RAS, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("bpred: RAS entries %d invalid", entries)
	}
	return &RAS{stack: make([]uint64, entries)}, nil
}

// Push records a return address at a call.
//
//pbcheck:hotpath
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.count < len(r.stack) {
		r.count++
	}
}

// Pop predicts the target of a return. ok is false when the stack is
// empty (an unconditional misprediction).
//
//pbcheck:hotpath
func (r *RAS) Pop() (addr uint64, ok bool) {
	r.pops++
	if r.count == 0 {
		r.underflows++
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.count--
	return r.stack[r.top], true
}

// Depth returns the current number of valid entries.
func (r *RAS) Depth() int { return r.count }

// Capacity returns the configured entry count.
func (r *RAS) Capacity() int { return len(r.stack) }
