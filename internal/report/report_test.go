package report

import (
	"context"
	"strings"
	"testing"

	"pbsim/internal/assess"
	"pbsim/internal/cluster"
	"pbsim/internal/methodology"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/sim"
)

func TestDesignCost(t *testing.T) {
	out := DesignCost(43)
	for _, want := range []string{"44", "88", "One Parameter at-a-time", "Plackett and Burman", "ANOVA", "8.8e+12"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	if out := DesignCost(1000); !strings.Contains(out, "n/a") {
		t.Errorf("oversized N should render n/a:\n%s", out)
	}
}

func TestDesignMatrixMatchesPaperTable2(t *testing.T) {
	d, _ := pb.NewWithSize(8, false)
	out := DesignMatrix(d)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[1] != "+1 +1 +1 -1 +1 -1 -1" {
		t.Errorf("first row = %q", lines[1])
	}
	if lines[8] != "-1 -1 -1 -1 -1 -1 -1" {
		t.Errorf("last row = %q", lines[8])
	}
	fd, _ := pb.NewWithSize(8, true)
	fout := DesignMatrix(fd)
	if !strings.Contains(fout, "foldover") {
		t.Error("foldover title missing")
	}
	flines := strings.Split(strings.TrimSpace(fout), "\n")
	if len(flines) != 18 { // title + 8 + separator + 8
		t.Errorf("foldover lines = %d", len(flines))
	}
	// Row 10 (after separator) mirrors row 1.
	if flines[10] != "-1 -1 -1 +1 -1 +1 +1" {
		t.Errorf("first mirrored row = %q", flines[10])
	}
}

func TestWorkedExampleMatchesPaperTable4(t *testing.T) {
	out, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-23", "-67", "-137", "129", "-105", "-225", "73", "Effect", "112"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadRoster(t *testing.T) {
	out := WorkloadRoster()
	for _, name := range paperdata.Benchmarks {
		if !strings.Contains(out, name) {
			t.Errorf("roster missing %s", name)
		}
	}
	if !strings.Contains(out, "4040.7") {
		t.Error("gcc instruction count missing")
	}
}

func TestParameterValues(t *testing.T) {
	out := ParameterValues()
	for _, want := range []string{"Reorder Buffer Entries", "8", "64", "Perfect", "4-way (fixed)", "0.02 * first"} {
		if !strings.Contains(out, want) {
			t.Errorf("parameter table missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 44 {
		t.Errorf("parameter table too short: %d lines", lines)
	}
}

func suiteForTest(t *testing.T) *pb.Suite {
	t.Helper()
	factors := []pb.Factor{{Name: "A"}, {Name: "B"}, {Name: "C"}}
	resp1 := func(l []pb.Level) float64 { return 100*float64(l[0]) + 10*float64(l[1]) }
	resp2 := func(l []pb.Level) float64 { return 100*float64(l[1]) + 10*float64(l[2]) }
	suite, err := pb.RunSuite(factors, []string{"w1", "w2"}, []pb.Response{resp1, resp2}, pb.Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

func TestRankTable(t *testing.T) {
	suite := suiteForTest(t)
	out := RankTable(suite, "Table 9: test")
	if !strings.Contains(out, "Table 9: test") || !strings.Contains(out, "w1") || !strings.Contains(out, "Sum") {
		t.Errorf("rank table malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+suite.Design.Columns {
		t.Errorf("rank table rows = %d", len(lines))
	}
}

func TestRankTableWithPaper(t *testing.T) {
	suite := suiteForTest(t)
	out := RankTableWithPaper(suite, paperdata.Table9, "compare")
	// Synthetic factor names are not in the paper: the paper columns
	// render as "-".
	if !strings.Contains(out, "-") || !strings.Contains(out, "Sum (paper)") {
		t.Errorf("comparison table malformed:\n%s", out)
	}
}

func TestDistanceAndGroupTables(t *testing.T) {
	m, err := cluster.DistanceMatrix(paperdata.Benchmarks, paperdata.RankVectors(paperdata.Table9))
	if err != nil {
		t.Fatal(err)
	}
	out := DistanceTable(m, "Table 10")
	if !strings.Contains(out, "89.8") {
		t.Errorf("distance table missing the paper's worked example value:\n%s", out)
	}
	groups := cluster.GroupNames(m, cluster.ThresholdGroups(m, paperdata.Threshold))
	gout := GroupTable(groups, paperdata.Threshold)
	if !strings.Contains(gout, "gzip, mesa") {
		t.Errorf("group table missing the gzip/mesa pair:\n%s", gout)
	}
	if !strings.Contains(gout, "63.2") {
		t.Error("threshold missing from title")
	}
}

func TestShiftTable(t *testing.T) {
	shifts := []methodology.EnhancementShift{
		{Factor: pb.Factor{Name: "Int ALUs"}, SumBefore: 118, SumAfter: 137, Shift: 19, RankBefore: 4, RankAfter: 6},
	}
	out := ShiftTable(shifts, "Section 4.3")
	for _, want := range []string{"Int ALUs", "118", "137", "+19"} {
		if !strings.Contains(out, want) {
			t.Errorf("shift table missing %q:\n%s", want, out)
		}
	}
}

func TestSimStats(t *testing.T) {
	s := sim.Stats{Cycles: 200, Instructions: 100, ControlInstrs: 10, Mispredicts: 1, Loads: 30, Stores: 10}
	out := SimStats("gzip", s)
	for _, want := range []string{"gzip", "0.500", "IPC", "DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}

func TestDominanceTable(t *testing.T) {
	suite := suiteForTest(t)
	out, err := DominanceTable(suite, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"w1", "w2", "% of variation"} {
		if !strings.Contains(out, want) {
			t.Errorf("dominance table missing %q:\n%s", want, out)
		}
	}
	// w1's top factor (A) carries ~99% of its variation.
	if !strings.Contains(out, "99.") && !strings.Contains(out, "100") {
		t.Errorf("expected a dominant percentage:\n%s", out)
	}
	// Default topK, and the no-results error path.
	if _, err := DominanceTable(suite, 0); err != nil {
		t.Error(err)
	}
	bare := *suite
	bare.Results = make([]*pb.Result, len(suite.Results))
	if _, err := DominanceTable(&bare, 3); err == nil {
		t.Error("suite without results accepted")
	}
}

func TestTrustTable(t *testing.T) {
	rep, err := assess.Run(context.Background(), assess.Config{
		Surfaces: 8,
		Factors:  8,
		Critical: 3,
		SNR:      10,
		Seed:     1,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := TrustTable(rep)
	for _, want := range []string{
		"Table A", "8 surfaces/family", "8 factors", "3 critical",
		"main-effects", "three-factor", "pb-foldover", "full-factorial",
		"WARN", "ok", "[",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table A missing %q:\n%s", want, out)
		}
	}
	// One row per (family, method) pair.
	wantRows := len(rep.Families)*len(assess.Methods()) + 2 // + title + header + separator - trailing newline
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != wantRows+1 {
		t.Errorf("Table A has %d lines, want %d:\n%s", len(lines), wantRows+1, out)
	}
}

func TestTrustTableSkippedMethods(t *testing.T) {
	rep, err := assess.Run(context.Background(), assess.Config{
		Surfaces: 2,
		Factors:  9,
		Critical: 3,
		Seed:     1,
		Budget:   30, // full factorial (512 runs) is out of budget
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := TrustTable(rep)
	if !strings.Contains(out, "skipped (2 over budget)") {
		t.Errorf("skipped method not surfaced:\n%s", out)
	}
}
