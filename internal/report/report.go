// Package report renders every table of the paper in paper-style
// ASCII form from freshly measured results: the design-cost comparison
// (Table 1), design matrices (Tables 2-3), the worked effects example
// (Table 4), the benchmark roster (Table 5), the parameter values
// (Tables 6-8), PB rankings (Tables 9 and 12), the benchmark distance
// matrix (Table 10) and groups (Table 11), and the enhancement
// before/after comparison of Section 4.3.
package report

import (
	"fmt"
	"strings"

	"pbsim/internal/assess"
	"pbsim/internal/cluster"
	"pbsim/internal/methodology"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/sim"
	"pbsim/internal/stats"
	"pbsim/internal/tables"
	"pbsim/internal/workload"
)

// DesignCost renders Table 1 for the given parameter count.
func DesignCost(n int) string {
	runs, err := pb.RunSize(n)
	pbRuns := "n/a"
	if err == nil {
		pbRuns = fmt.Sprintf("%d", 2*runs)
	}
	c := stats.CountSimulations(n, 2*runs)
	t := tables.New(fmt.Sprintf("Table 1: Simulations vs Level of Detail (N = %d two-level parameters)", n),
		"Design", "Example", "Simulations", "Level of Detail").AlignRight(2)
	t.AddRow("One Parameter at-a-time", "Simple Sensitivity Analysis", fmt.Sprintf("%d", c.OneAtATime), "Single Parameter")
	t.AddRow("Fractional", "Plackett and Burman (foldover)", pbRuns, "All Parameters, Selected Interactions")
	t.AddRow("Full Multifactorial", "ANOVA", fmt.Sprintf("%.3g", c.FullFactorial), "All Parameters, All Interactions")
	return t.String()
}

// DesignMatrix renders a PB design matrix as in Tables 2 and 3.
func DesignMatrix(d *pb.Design) string {
	title := fmt.Sprintf("Plackett and Burman Design Matrix for X = %d (up to %d parameters)", d.X, d.Columns)
	if d.Foldover {
		title += ", with foldover"
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for i, row := range d.Matrix {
		if d.Foldover && i == d.X {
			b.WriteString(strings.Repeat("-", 4*d.Columns-1))
			b.WriteByte('\n')
		}
		cells := make([]string, len(row))
		for j, lv := range row {
			cells[j] = lv.String()
		}
		b.WriteString(strings.Join(cells, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// WorkedExample renders Table 4: the paper's effect computation on the
// X=8 design.
func WorkedExample() (string, error) {
	d, err := pb.NewWithSize(8, false)
	if err != nil {
		return "", err
	}
	responses := []float64{1, 9, 74, 28, 3, 6, 112, 84}
	effects, err := pb.Effects(d, responses)
	if err != nil {
		return "", err
	}
	t := tables.New("Table 4: Example Analysis Using a Plackett and Burman Design Without Foldover for X = 8",
		"A", "B", "C", "D", "E", "F", "G", "Result").AlignRight(0, 1, 2, 3, 4, 5, 6, 7)
	for i, row := range d.Matrix {
		cells := make([]interface{}, 0, 8)
		for _, lv := range row {
			cells = append(cells, lv.String())
		}
		cells = append(cells, responses[i])
		t.AddRow(cells...)
	}
	cells := make([]interface{}, 0, 8)
	for _, e := range effects {
		cells = append(cells, e)
	}
	cells = append(cells, "Effect")
	t.AddRow(cells...)
	return t.String(), nil
}

// WorkloadRoster renders Table 5 with the synthetic profile summary
// next to the paper's instruction counts.
func WorkloadRoster() string {
	t := tables.New("Table 5: Benchmarks (synthetic MinneSPEC-like profiles)",
		"Benchmark", "Type", "Paper Instr (M)", "Code (KB)", "Data Working Set (KB)").AlignRight(2, 3, 4)
	for _, w := range workload.All() {
		params := w.Params
		t.AddRow(w.Name, w.Type,
			fmt.Sprintf("%.1f", w.PaperInstrMillions),
			fmt.Sprintf("%.0f", float64(params.CodeFootprintBytes())/1024),
			fmt.Sprintf("%.0f", float64(params.WorkingSetBytes)/1024))
	}
	return t.String()
}

// ParameterValues renders Tables 6-8: every PB factor with its low and
// high value.
func ParameterValues() string {
	t := tables.New("Tables 6-8: Processor Parameters and Their Plackett and Burman Values",
		"Parameter", "Low/Off Value", "High/On Value")
	for _, f := range sim.PBFactors() {
		t.AddRow(f.Factor.Name, f.Factor.Low, f.Factor.High)
	}
	t.AddRow("Decode, Issue, and Commit Width", "4-way (fixed)", "4-way (fixed)")
	t.AddRow("LSQ Entries (derived)", "0.25 * ROB", "1.0 * ROB")
	t.AddRow("Memory Latency, Following (derived)", "0.02 * first", "0.02 * first")
	t.AddRow("D-TLB Page Size / Latency (derived)", "same as I-TLB", "same as I-TLB")
	return t.String()
}

// RankTable renders a Table 9 / Table 12 style ranking from a measured
// suite: one row per factor sorted by sum of ranks, one column per
// benchmark.
func RankTable(suite *pb.Suite, title string) string {
	headers := append([]string{"Parameter"}, suite.Benchmarks...)
	headers = append(headers, "Sum")
	t := tables.New(title, headers...)
	for i := 1; i < len(headers); i++ {
		t.AlignRight(i)
	}
	for _, fi := range suite.Order {
		cells := make([]interface{}, 0, len(headers))
		cells = append(cells, suite.Factors[fi].Name)
		for b := range suite.Benchmarks {
			cells = append(cells, suite.RankRows[b][fi])
		}
		cells = append(cells, suite.Sums[fi])
		t.AddRow(cells...)
	}
	return t.String()
}

// RankTableWithPaper renders the measured sum-of-ranks ordering next
// to the paper's published sums for the same parameter (Table 9 or 12).
func RankTableWithPaper(suite *pb.Suite, paper []paperdata.RankRow, title string) string {
	paperSum := map[string]int{}
	paperPos := map[string]int{}
	for i, row := range paper {
		name := row.Parameter
		if name == "RUU Entries" {
			name = "Reorder Buffer Entries" // Table 12 naming
		}
		paperSum[name] = row.Sum
		paperPos[name] = i + 1
	}
	t := tables.New(title, "Parameter", "Sum (measured)", "Pos", "Sum (paper)", "Pos (paper)").AlignRight(1, 2, 3, 4)
	for pos, fi := range suite.Order {
		name := suite.Factors[fi].Name
		ps, ok := paperSum[name]
		psCell, ppCell := "-", "-"
		if ok {
			psCell = fmt.Sprintf("%d", ps)
			ppCell = fmt.Sprintf("%d", paperPos[name])
		}
		t.AddRow(name, suite.Sums[fi], pos+1, psCell, ppCell)
	}
	return t.String()
}

// DistanceTable renders a Table 10 style benchmark distance matrix.
func DistanceTable(m *cluster.Matrix, title string) string {
	headers := append([]string{""}, m.Names...)
	t := tables.New(title, headers...)
	for i := 1; i < len(headers); i++ {
		t.AlignRight(i)
	}
	for i, name := range m.Names {
		cells := make([]interface{}, 0, len(headers))
		cells = append(cells, name)
		for j := range m.Names {
			cells = append(cells, fmt.Sprintf("%.1f", m.At(i, j)))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// GroupTable renders Table 11: benchmark groups under a threshold.
func GroupTable(groups [][]string, threshold float64) string {
	t := tables.New(fmt.Sprintf("Table 11: Benchmarks Grouped by Their Effect on the Processor (threshold %.1f)", threshold), "Group")
	for _, g := range groups {
		t.AddRow(strings.Join(g, ", "))
	}
	return t.String()
}

// ShiftTable renders the Section 4.3 before/after comparison: the
// sum-of-ranks movement of every factor under an enhancement.
func ShiftTable(shifts []methodology.EnhancementShift, title string) string {
	t := tables.New(title, "Parameter", "Sum before", "Sum after", "Shift", "Pos before", "Pos after").
		AlignRight(1, 2, 3, 4, 5)
	for _, s := range shifts {
		t.AddRow(s.Factor.Name, s.SumBefore, s.SumAfter, fmt.Sprintf("%+d", s.Shift), s.RankBefore, s.RankAfter)
	}
	return t.String()
}

// DominanceTable renders, per benchmark, the top factors by percent of
// variation explained. It addresses the paper's Section 4.1 caveat
// that "the rank alone cannot be used to measure the significance of a
// parameter's impact" (their example: art ranks the FP square-root
// latency 5th although it is completely overshadowed by the top four):
// percentages expose the overshadowing that ranks hide.
func DominanceTable(suite *pb.Suite, topK int) (string, error) {
	if topK < 1 {
		topK = 5
	}
	t := tables.New(fmt.Sprintf("Percent of variation explained by each benchmark's top %d parameters", topK),
		"Benchmark", "Parameter", "Rank", "% of variation").AlignRight(2, 3)
	for b, name := range suite.Benchmarks {
		res := suite.Results[b]
		if res == nil {
			return "", fmt.Errorf("report: suite has no per-benchmark results")
		}
		pcts, err := pb.PercentOfVariation(res.Design, res.Responses)
		if err != nil {
			return "", err
		}
		shown := 0
		for rank := 1; rank <= len(res.Ranks) && shown < topK; rank++ {
			for j, r := range res.Ranks {
				if r == rank {
					t.AddRow(name, suite.Factors[j].Name, rank, fmt.Sprintf("%.1f", pcts[j]))
					shown++
					break
				}
			}
		}
	}
	return t.String(), nil
}

// TrustTable renders Table A: the methodology-assessment shoot-out.
// One row per (surface family, screening method) pair showing how well
// the method recovered the known truth — Spearman rank correlation,
// critical-set precision and recall with 95% confidence intervals over
// the sampled surfaces, the simulation budget it consumed, and a
// verdict column that flags any method whose trust (mean recall) fell
// below the campaign's warning threshold. This is the table the paper
// itself could not print: it requires ground truth no real simulator
// provides.
func TrustTable(rep *assess.Report) string {
	title := fmt.Sprintf(
		"Table A: Method Trust by Surface Family (%d surfaces/family, %d factors, %d critical, SNR %.0f, warn < %.2f)",
		rep.Surfaces(), rep.Factors, rep.Critical, rep.SNR, rep.WarnThreshold)
	t := tables.New(title,
		"Family", "Method", "Spearman [95% CI]", "Precision [95% CI]", "Recall [95% CI]", "Trust", "Runs", "Verdict").
		AlignRight(2, 3, 4, 5, 6)
	for _, fam := range rep.Families {
		for _, m := range fam.Methods {
			if m.Surfaces == 0 {
				t.AddRow(string(fam.Family), string(m.Method), "-", "-", "-", "-", "-",
					fmt.Sprintf("skipped (%d over budget)", m.Skipped))
				continue
			}
			verdict := "ok"
			if m.Warn {
				verdict = "WARN"
			}
			t.AddRow(string(fam.Family), string(m.Method),
				tables.FormatInterval(m.Spearman.Mean, m.Spearman.Lo, m.Spearman.Hi),
				tables.FormatInterval(m.Precision.Mean, m.Precision.Lo, m.Precision.Hi),
				tables.FormatInterval(m.Recall.Mean, m.Recall.Lo, m.Recall.Hi),
				fmt.Sprintf("%.3f", m.Trust),
				fmt.Sprintf("%.1f", m.MeanRuns),
				verdict)
		}
	}
	return t.String()
}

// SimStats renders a single simulation run's statistics.
func SimStats(name string, s sim.Stats) string {
	t := tables.New(fmt.Sprintf("Simulation statistics: %s", name), "Metric", "Value").AlignRight(1)
	t.AddRow("Instructions", s.Instructions)
	t.AddRow("Cycles", s.Cycles)
	t.AddRow("IPC", fmt.Sprintf("%.3f", s.IPC()))
	t.AddRow("Control instructions", s.ControlInstrs)
	t.AddRow("Mispredictions", s.Mispredicts)
	t.AddRow("Misprediction rate", fmt.Sprintf("%.4f", s.MispredictRate()))
	t.AddRow("  direction / BTB / RAS", fmt.Sprintf("%d / %d / %d", s.MispredDirection, s.MispredBTB, s.MispredRAS))
	t.AddRow("Loads / Stores", fmt.Sprintf("%d / %d", s.Loads, s.Stores))
	t.AddRow("L1I miss rate", fmt.Sprintf("%.4f", s.L1I.MissRate()))
	t.AddRow("L1D miss rate", fmt.Sprintf("%.4f", s.L1D.MissRate()))
	t.AddRow("L2 miss rate", fmt.Sprintf("%.4f", s.L2.MissRate()))
	t.AddRow("ITLB miss rate", fmt.Sprintf("%.4f", s.ITLB.MissRate()))
	t.AddRow("DTLB miss rate", fmt.Sprintf("%.4f", s.DTLB.MissRate()))
	t.AddRow("DRAM accesses", s.DRAMAccesses)
	t.AddRow("IntALU / IntMD / FPALU / FPMD ops",
		fmt.Sprintf("%d / %d / %d / %d", s.IntALUOps, s.IntMDOps, s.FPALUOps, s.FPMDOps))
	t.AddRow("Precomputation hits", s.PrecompHits)
	return t.String()
}
