package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepRecorder records every backoff delay instead of sleeping, so
// retry-heavy tests run in microseconds.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

func TestEvaluateCoversEveryRowOnce(t *testing.T) {
	const n = 100
	var calls atomic.Int64
	task := func(_ context.Context, i int) (float64, error) {
		calls.Add(1)
		return float64(i * i), nil
	}
	for _, par := range []int{0, 1, 3, 64} {
		calls.Store(0)
		got, err := Evaluate(context.Background(), n, task, Config{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if calls.Load() != n {
			t.Errorf("parallelism %d: %d calls, want %d", par, calls.Load(), n)
		}
		for i, v := range got {
			if v != float64(i*i) {
				t.Errorf("parallelism %d row %d: got %g", par, i, v)
			}
		}
	}
}

// Property: for arbitrary backoff configurations, every retry delay is
// positive, never exceeds BackoffCap, and never exceeds the jittered
// exponential envelope base<<attempt.
func TestBackoffRespectsCapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		base := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		capDelay := base + time.Duration(rng.Intn(5000))*time.Millisecond
		retries := 1 + rng.Intn(8)
		seed := rng.Int63()
		rec := &sleepRecorder{}
		cfg := Config{
			Parallelism: 2,
			Retries:     retries,
			Backoff:     base,
			BackoffCap:  capDelay,
			Seed:        seed,
			sleep:       rec.sleep,
		}
		failing := func(context.Context, int) (float64, error) {
			return 0, errors.New("always fails")
		}
		const n = 5
		_, err := Evaluate(context.Background(), n, failing, cfg)
		var runErr *RunError
		if !errors.As(err, &runErr) {
			t.Fatalf("trial %d: want *RunError, got %v", trial, err)
		}
		if len(runErr.Rows) != n {
			t.Fatalf("trial %d: %d failed rows, want %d", trial, len(runErr.Rows), n)
		}
		for _, re := range runErr.Rows {
			if re.Attempts != retries+1 {
				t.Errorf("trial %d row %d: %d attempts, want %d", trial, re.Row, re.Attempts, retries+1)
			}
		}
		if want := n * retries; len(rec.delays) != want {
			t.Errorf("trial %d: %d backoff sleeps, want %d", trial, len(rec.delays), want)
		}
		for _, d := range rec.delays {
			if d <= 0 {
				t.Errorf("trial %d: non-positive backoff %v", trial, d)
			}
			if d > capDelay {
				t.Errorf("trial %d: backoff %v exceeds cap %v", trial, d, capDelay)
			}
		}
	}
}

// Property: the delay schedule is a pure function of (seed, row,
// attempt) — replaying a configuration yields the identical schedule.
func TestBackoffDeterministic(t *testing.T) {
	cfg := Config{Backoff: 10 * time.Millisecond, BackoffCap: time.Second, Seed: 42}
	for row := 0; row < 20; row++ {
		for attempt := 0; attempt < 6; attempt++ {
			a := backoffDelay(cfg, row, attempt)
			b := backoffDelay(cfg, row, attempt)
			if a != b {
				t.Fatalf("row %d attempt %d: %v != %v", row, attempt, a, b)
			}
			if a < cfg.Backoff/2 {
				t.Errorf("row %d attempt %d: delay %v below half the base", row, attempt, a)
			}
		}
	}
	other := cfg
	other.Seed = 43
	same := 0
	for row := 0; row < 20; row++ {
		if backoffDelay(cfg, row, 3) == backoffDelay(other, row, 3) {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical jitter everywhere")
	}
}

// Cancellation must drain every worker — no goroutine leaks, no task
// invocations after Evaluate returns.
func TestCancellationDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var calls atomic.Int64
	task := func(ctx context.Context, i int) (float64, error) {
		calls.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // block until cancelled, like a hung simulation
		return 0, ctx.Err()
	}
	done := make(chan error, 1)
	go func() {
		_, err := Evaluate(ctx, 1000, task, Config{Parallelism: 8, Retries: 3})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !Cancelled(err) {
			t.Fatalf("want cancellation error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Evaluate did not return after cancellation")
	}
	after := calls.Load()
	time.Sleep(50 * time.Millisecond)
	if now := calls.Load(); now != after {
		t.Errorf("tasks still running after Evaluate returned: %d -> %d", after, now)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// A worker that panics must become a per-row error, not a dead
// process, and must not disturb the other rows.
func TestPanicRecoveryIsolatesRow(t *testing.T) {
	task := func(_ context.Context, i int) (float64, error) {
		if i == 3 {
			panic("injected crash")
		}
		return float64(i), nil
	}
	got, err := Evaluate(context.Background(), 8, task, Config{Parallelism: 4, Retries: 1, sleep: noSleep})
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if len(runErr.Rows) != 1 || runErr.Rows[0].Row != 3 {
		t.Fatalf("failed rows = %+v, want only row 3", runErr.Rows)
	}
	var pe *PanicError
	if !errors.As(runErr.Rows[0].Err, &pe) {
		t.Fatalf("row error %v does not wrap *PanicError", runErr.Rows[0].Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	for i, v := range got {
		if i != 3 && v != float64(i) {
			t.Errorf("row %d corrupted: %g", i, v)
		}
	}
}

// The acceptance scenario: seeded transient failures, one panicking
// row, and one row whose first attempt exceeds the per-attempt
// timeout — the evaluation completes via retries with correct values.
func TestFaultedEvaluationCompletes(t *testing.T) {
	faults := &Faults{
		Seed:      1,
		FailRows:  map[int]int{2: 2, 9: 1},
		PanicRows: map[int]int{5: 1},
		SlowRows:  map[int]time.Duration{7: 200 * time.Millisecond},
	}
	task := func(_ context.Context, i int) (float64, error) { return 100 + float64(i), nil }
	got, err := Evaluate(context.Background(), 12, task, Config{
		Parallelism: 4,
		Retries:     3,
		Timeout:     50 * time.Millisecond, // row 7's first attempt must time out
		Backoff:     time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Wrap:        faults.Wrap,
	})
	if err != nil {
		t.Fatalf("faulted evaluation failed: %v", err)
	}
	for i, v := range got {
		if v != 100+float64(i) {
			t.Errorf("row %d: got %g, want %g", i, v, 100+float64(i))
		}
	}
	if faults.Injected() <= 12 {
		t.Errorf("fault harness saw %d attempts; retries evidently never happened", faults.Injected())
	}
}

// Exhausted retries must fail the evaluation with an aggregate error
// naming every failed row — never degrade to silent NaNs.
func TestExhaustedRetriesAggregate(t *testing.T) {
	task := func(_ context.Context, i int) (float64, error) {
		if i%2 == 0 {
			return 0, fmt.Errorf("row %d permanently broken", i)
		}
		return 1, nil
	}
	_, err := Evaluate(context.Background(), 10, task, Config{Parallelism: 3, Retries: 2, sleep: noSleep})
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if len(runErr.Rows) != 5 {
		t.Fatalf("%d failed rows, want 5", len(runErr.Rows))
	}
	for i := 1; i < len(runErr.Rows); i++ {
		if runErr.Rows[i].Row <= runErr.Rows[i-1].Row {
			t.Errorf("aggregate not sorted by row: %d after %d", runErr.Rows[i].Row, runErr.Rows[i-1].Row)
		}
	}
	if runErr.N != 10 {
		t.Errorf("RunError.N = %d, want 10", runErr.N)
	}
}

// A per-attempt timeout expires the attempt's context; a task that
// honors it is retried and can succeed on a faster attempt.
func TestTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	task := func(ctx context.Context, i int) (float64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first attempt hangs until the deadline
			return 0, ctx.Err()
		}
		return 7, nil
	}
	got, err := Evaluate(context.Background(), 1, task, Config{
		Retries: 1,
		Timeout: 20 * time.Millisecond,
		sleep:   noSleep,
	})
	if err != nil {
		t.Fatalf("timeout was not retried: %v", err)
	}
	if got[0] != 7 {
		t.Errorf("got %g, want 7", got[0])
	}
}

func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }
