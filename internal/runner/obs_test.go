package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"pbsim/internal/obs"
)

// TestEvaluateRecorderEvents drives an evaluation with retries,
// panics, timeouts, and checkpoint restores through a Metrics
// recorder and asserts the aggregates are exact.
func TestEvaluateRecorderEvents(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-complete rows 0 and 1 so they are restored, not simulated.
	for row := 0; row < 2; row++ {
		if err := cp.Record("s", row, float64(100+row)); err != nil {
			t.Fatal(err)
		}
	}
	cp.Close()
	cp, err = OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	attempts := make([]int, n)
	task := func(ctx context.Context, row int) (float64, error) {
		attempts[row]++
		switch {
		case row == 5 && attempts[row] == 1:
			return 0, errors.New("transient")
		case row == 6 && attempts[row] == 1:
			panic("worker crash")
		}
		return float64(row), nil
	}
	m := obs.NewMetrics()
	got, err := Evaluate(context.Background(), n, task, Config{
		Parallelism: 3,
		Retries:     2,
		Backoff:     time.Microsecond,
		BackoffCap:  2 * time.Microsecond,
		Checkpoint:  cp,
		Scope:       "s",
		Recorder:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 101 {
		t.Errorf("restored rows = %v, %v; want 100, 101", got[0], got[1])
	}
	if v := m.RowsResumed.Value(); v != 2 {
		t.Errorf("RowsResumed = %d, want 2", v)
	}
	if v := m.RowsSimulated.Value(); v != n-2 {
		t.Errorf("RowsSimulated = %d, want %d", v, n-2)
	}
	if v := m.RowsFailed.Value(); v != 0 {
		t.Errorf("RowsFailed = %d, want 0", v)
	}
	// 10 simulated rows, two of which needed a second attempt.
	if v := m.Attempts.Value(); v != int64(n-2+2) {
		t.Errorf("Attempts = %d, want %d", v, n-2+2)
	}
	if v := m.Retries.Value(); v != 2 {
		t.Errorf("Retries = %d, want 2", v)
	}
	if v := m.Panics.Value(); v != 1 {
		t.Errorf("Panics = %d, want 1", v)
	}
	if v := m.RowLatency.Count(); v != int64(n-2) {
		t.Errorf("RowLatency count = %d, want %d (checkpoint rows carry no latency)", v, n-2)
	}
	if v := m.Workers.Peak(); v < 1 || v > 3 {
		t.Errorf("worker peak = %d, want in [1, 3]", v)
	}
	if v := m.Queued.Count(); v != n {
		t.Errorf("queue wait observations = %d, want %d", v, n)
	}
}

// TestEvaluateRecorderFailuresAndTimeouts pins the failure-side
// events: permanent RowFailed and TimedOut attempt classification.
func TestEvaluateRecorderFailuresAndTimeouts(t *testing.T) {
	m := obs.NewMetrics()
	task := func(ctx context.Context, row int) (float64, error) {
		if row == 1 {
			<-ctx.Done() // exceed the per-attempt deadline
			return 0, ctx.Err()
		}
		return 0, errors.New("always fails")
	}
	_, err := Evaluate(context.Background(), 2, task, Config{
		Parallelism: 2,
		Retries:     1,
		Timeout:     time.Millisecond,
		Backoff:     time.Microsecond,
		BackoffCap:  time.Microsecond,
		Recorder:    m,
	})
	var re *RunError
	if !errors.As(err, &re) || len(re.Rows) != 2 {
		t.Fatalf("err = %v, want *RunError with 2 rows", err)
	}
	if v := m.RowsFailed.Value(); v != 2 {
		t.Errorf("RowsFailed = %d, want 2", v)
	}
	if v := m.Timeouts.Value(); v != 2 {
		t.Errorf("Timeouts = %d, want 2 (row 1, both attempts)", v)
	}
	if v := m.Attempts.Value(); v != 4 {
		t.Errorf("Attempts = %d, want 4", v)
	}
}

// TestRecorderDoesNotPerturbResults is the bit-identical guarantee:
// the same seeded evaluation with and without a recorder produces
// exactly the same responses.
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	task := func(_ context.Context, row int) (float64, error) {
		return float64(row)*1.7 + 0.3, nil
	}
	run := func(rec obs.Recorder) []float64 {
		out, err := Evaluate(context.Background(), 64, task, Config{
			Parallelism: 4, Seed: 42, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(nil)
	recorded := run(obs.NewMetrics())
	for i := range plain {
		if plain[i] != recorded[i] {
			t.Fatalf("row %d differs with recorder enabled: %v != %v", i, plain[i], recorded[i])
		}
	}
}

// TestNopRecorderZeroAllocs proves the no-op Recorder adds zero
// allocations to the Evaluate hot path: an instrumented run with
// obs.Nop allocates exactly as much as an uninstrumented one.
func TestNopRecorderZeroAllocs(t *testing.T) {
	task := func(_ context.Context, row int) (float64, error) { return float64(row), nil }
	const rows = 64
	measure := func(cfg Config) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := Evaluate(context.Background(), rows, task, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(Config{Parallelism: 1})
	nop := measure(Config{Parallelism: 1, Recorder: obs.Nop{}})
	if nop > base {
		t.Errorf("obs.Nop added %.1f allocs/run over the %.1f-alloc baseline", nop-base, base)
	}
}

func benchmarkEvaluate(b *testing.B, rec obs.Recorder) {
	task := func(_ context.Context, row int) (float64, error) { return float64(row), nil }
	cfg := Config{Parallelism: 4, Recorder: rec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(context.Background(), 128, task, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBare is the uninstrumented baseline.
func BenchmarkEvaluateBare(b *testing.B) { benchmarkEvaluate(b, nil) }

// BenchmarkEvaluateNop measures the full instrumentation path feeding
// the no-op Recorder; compare allocs/op against BenchmarkEvaluateBare.
func BenchmarkEvaluateNop(b *testing.B) { benchmarkEvaluate(b, obs.Nop{}) }

// BenchmarkEvaluateMetrics measures the live aggregation cost.
func BenchmarkEvaluateMetrics(b *testing.B) { benchmarkEvaluate(b, obs.NewMetrics()) }

// Example of the end-to-end accounting: evaluate with a Metrics
// recorder and render the summary.
func ExampleConfig_recorder() {
	m := obs.NewMetrics()
	task := func(_ context.Context, row int) (float64, error) { return float64(row), nil }
	if _, err := Evaluate(context.Background(), 4, task, Config{Parallelism: 1, Scope: "demo", Recorder: m}); err != nil {
		panic(err)
	}
	fmt.Println(m.RowsSimulated.Value(), "rows simulated,", m.RowsResumed.Value(), "resumed")
	// Output: 4 rows simulated, 0 resumed
}
