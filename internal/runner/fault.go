package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the root of every error produced by the
// fault-injection harness, so tests can errors.Is for it.
var ErrInjected = errors.New("injected fault")

// ErrCrash marks a simulated process death at the commit boundary:
// the task ran to completion but its result was discarded, exactly as
// if the worker process died after computing a row and before
// committing it. It wraps ErrInjected, so generic fault checks still
// match; dist workers additionally errors.Is for ErrCrash and
// terminate instead of retrying, which is what turns the injection
// into real kill/restart chaos.
var ErrCrash = fmt.Errorf("%w: crash at commit boundary", ErrInjected)

// Faults is a deterministic fault-injection wrapper for tasks: given
// the same Seed and the same schedule of attempts, it makes identical
// decisions, which lets tests (and the resilientrun example) assert
// that a suite completes despite failures, panics, and slow rows.
//
// Deterministic modes key off the row and the per-row attempt number;
// the probabilistic mode keys off (Seed, row, attempt) through the
// same splitmix64 hash the backoff jitter uses, so no global RNG state
// is shared between workers.
type Faults struct {
	// Seed drives the probabilistic failure mode.
	Seed int64
	// FailProb is the per-attempt probability of a transient injected
	// error (0 disables).
	FailProb float64
	// FailRows maps row → number of leading attempts that return an
	// injected error before the row starts succeeding.
	FailRows map[int]int
	// PanicRows maps row → number of leading attempts that panic.
	PanicRows map[int]int
	// CrashRows maps row → number of leading attempts that die at the
	// commit boundary: the wrapped task executes fully (the simulated
	// work is really done) and only then the attempt fails with
	// ErrCrash, discarding the computed value. Attempt accounting uses
	// the same per-row counter as every other mode, so a row with
	// CrashRows[r]=k commits on its k+1-th execution regardless of
	// which worker (or restarted process) runs it — the property the
	// chaos harness and the resilientrun example both lean on.
	CrashRows map[int]int
	// SlowRows maps row → extra latency added to that row's leading
	// attempts (see SlowAttempts). The sleep respects the attempt
	// context, so a per-attempt timeout cuts it short.
	SlowRows map[int]time.Duration
	// SlowAttempts is how many leading attempts of a slow row are
	// delayed (default 1: slow once, then fast — the classic
	// "retry beats a straggler" scenario).
	SlowAttempts int

	mu       sync.Mutex
	attempts map[int]int
}

// Wrap decorates task with the configured faults. It is the value to
// assign to Config.Wrap.
func (f *Faults) Wrap(task Task) Task {
	return func(ctx context.Context, row int) (float64, error) {
		attempt := f.nextAttempt(row)
		if attempt < f.PanicRows[row] {
			//pbcheck:ignore nopanic deliberately injected panic: this is the fault injector exercising the runner's recovery path
			panic(fmt.Sprintf("%v: row %d attempt %d", ErrInjected, row, attempt))
		}
		if attempt < f.FailRows[row] {
			return 0, fmt.Errorf("%w: row %d attempt %d", ErrInjected, row, attempt)
		}
		if f.FailProb > 0 && hashFloat(f.Seed, uint64(row), uint64(attempt)) < f.FailProb {
			return 0, fmt.Errorf("%w: row %d attempt %d (seeded)", ErrInjected, row, attempt)
		}
		slowAttempts := f.SlowAttempts
		if slowAttempts == 0 {
			slowAttempts = 1
		}
		if d := f.SlowRows[row]; d > 0 && attempt < slowAttempts {
			if err := ctxSleep(ctx, d); err != nil {
				return 0, fmt.Errorf("%w: row %d slow attempt %d: %v", ErrInjected, row, attempt, err)
			}
		}
		v, err := task(ctx, row)
		if err == nil && attempt < f.CrashRows[row] {
			return 0, fmt.Errorf("%w: row %d attempt %d (result discarded)", ErrCrash, row, attempt)
		}
		return v, err
	}
}

// Injected reports how many attempts the harness has intercepted so
// far (equal to the number of task invocations it observed).
func (f *Faults) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.attempts {
		total += n
	}
	return total
}

func (f *Faults) nextAttempt(row int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts == nil {
		f.attempts = make(map[int]int)
	}
	n := f.attempts[row]
	f.attempts[row] = n + 1
	return n
}
