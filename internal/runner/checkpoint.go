package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// checkpointRecord is one line of the checkpoint file. Values are
// encoded by encoding/json, which prints float64 with the shortest
// round-tripping representation, so a reloaded value is bit-identical
// to the one recorded.
type checkpointRecord struct {
	// FP is the experiment fingerprint (design, instruction budget,
	// variant label, ...). Records whose fingerprint differs from the
	// open checkpoint's are ignored on load, so a stale file can never
	// smuggle responses from a different experiment into this one.
	FP string `json:"fp,omitempty"`
	// Scope namespaces rows, typically per benchmark.
	Scope string  `json:"scope,omitempty"`
	Row   int     `json:"row"`
	Value float64 `json:"value"`
}

// Checkpoint is an append-only JSONL journal of completed rows. One
// file serves a whole suite: scopes keep benchmarks apart and the
// fingerprint keeps unrelated experiments apart. It is safe for
// concurrent use by the runner's workers.
//
// The format is deliberately crash-tolerant: every successful row is
// one flushed line, and a torn final line (the process died
// mid-write) is skipped on reload instead of poisoning the file.
type Checkpoint struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	fp     string
	sync   bool
	werr   error // first deferred write error, reported by Close
	done   map[string]map[int]float64
	loaded int
}

// CheckpointOptions tunes durability beyond the default
// flush-per-record discipline.
type CheckpointOptions struct {
	// Sync forces an fsync after every Record and an fsync before
	// Close, so a committed row survives not just a process crash but
	// a machine crash. It is the durability knob distributed shard
	// ledgers inherit; the cost is one disk barrier per row.
	Sync bool
}

// OpenCheckpoint opens (creating if needed) the JSONL checkpoint at
// path and loads every record whose fingerprint matches. Records with
// a different fingerprint, and malformed lines, are skipped.
func OpenCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	return OpenCheckpointWith(path, fingerprint, CheckpointOptions{})
}

// OpenCheckpointWith is OpenCheckpoint with explicit durability
// options.
func OpenCheckpointWith(path, fingerprint string, opts CheckpointOptions) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	c := &Checkpoint{
		f:    f,
		w:    bufio.NewWriter(f),
		fp:   fingerprint,
		sync: opts.Sync,
		done: make(map[string]map[int]float64),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec checkpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn or foreign line
		}
		if rec.FP != fingerprint {
			continue
		}
		c.put(rec.Scope, rec.Row, rec.Value)
		c.loaded++
	}
	if err := sc.Err(); err != nil {
		err = fmt.Errorf("runner: read checkpoint: %w", err)
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return c, nil
}

func (c *Checkpoint) put(scope string, row int, value float64) {
	m, ok := c.done[scope]
	if !ok {
		m = make(map[int]float64)
		c.done[scope] = m
	}
	m[row] = value
}

// Lookup returns the recorded value of (scope, row), if any.
func (c *Checkpoint) Lookup(scope string, row int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.done[scope][row]
	return v, ok
}

// Record appends one completed row and flushes it to the file, so the
// row survives even if the process dies immediately after. In Sync
// mode the line is additionally fsynced before Record returns, making
// it durable against machine crashes too. The first write error is
// also remembered and re-reported by Close, so a caller that drops a
// Record error (or races a crash) still cannot mistake a torn
// checkpoint for a clean one.
func (c *Checkpoint) Record(scope string, row int, value float64) error {
	line, err := json.Marshal(checkpointRecord{FP: c.fp, Scope: scope, Row: row, Value: value})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(scope, row, value)
	if _, err := c.w.Write(append(line, '\n')); err != nil {
		return c.deferWriteErr(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.deferWriteErr(err)
	}
	if c.sync {
		if err := c.f.Sync(); err != nil {
			return c.deferWriteErr(err)
		}
	}
	return nil
}

// deferWriteErr records the first write failure for Close to report
// and returns err unchanged. Callers must hold c.mu.
func (c *Checkpoint) deferWriteErr(err error) error {
	if c.werr == nil {
		c.werr = err
	}
	return err
}

// Loaded reports how many matching rows were restored when the
// checkpoint was opened — the work a resumed run skips.
func (c *Checkpoint) Loaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// Close flushes (and in Sync mode fsyncs) and closes the underlying
// file. It reports the first deferred write error from any earlier
// Record before any close-time failure: a checkpoint whose rows may
// not all be on disk must not look cleanly closed.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.werr
	}
	ferr := c.w.Flush()
	var serr error
	if c.sync {
		serr = c.f.Sync()
	}
	cerr := c.f.Close()
	c.f = nil
	for _, err := range []error{c.werr, ferr, serr, cerr} {
		if err != nil {
			return err
		}
	}
	return nil
}
