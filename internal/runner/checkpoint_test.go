package runner

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	// Awkward values must survive bit-exactly through JSON.
	values := map[int]float64{
		0: 1.0 / 3.0,
		1: math.Pi * 1e15,
		2: 5e-324, // smallest denormal
		3: 123456789,
	}
	for row, v := range values {
		if err := cp.Record("gzip", row, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Record("mcf", 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Loaded() != 5 {
		t.Errorf("loaded %d rows, want 5", re.Loaded())
	}
	for row, want := range values {
		got, ok := re.Lookup("gzip", row)
		if !ok {
			t.Fatalf("gzip row %d missing", row)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("gzip row %d: %x != %x (not bit-identical)", row, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if _, ok := re.Lookup("gzip", 99); ok {
		t.Error("phantom row found")
	}
	if _, ok := re.Lookup("mcf", 0); !ok {
		t.Error("scope mcf lost")
	}
}

func TestCheckpointFingerprintIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, "design-A")
	if err != nil {
		t.Fatal(err)
	}
	cp.Record("b", 0, 1)
	cp.Close()

	other, err := OpenCheckpoint(path, "design-B")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if other.Loaded() != 0 {
		t.Errorf("foreign fingerprint loaded %d rows", other.Loaded())
	}
	if _, ok := other.Lookup("b", 0); ok {
		t.Error("row from another experiment visible")
	}
}

func TestCheckpointToleratesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, _ := OpenCheckpoint(path, "fp")
	cp.Record("b", 0, 10)
	cp.Record("b", 1, 11)
	cp.Close()
	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"fp":"fp","scope":"b","row":2,"val`)
	f.Close()

	re, err := OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatalf("torn line broke reload: %v", err)
	}
	defer re.Close()
	if re.Loaded() != 2 {
		t.Errorf("loaded %d rows, want the 2 intact ones", re.Loaded())
	}
	if _, ok := re.Lookup("b", 2); ok {
		t.Error("torn row half-loaded")
	}
}

func TestCheckpointSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpointWith(path, "fp", CheckpointOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("b", 0, 1.5); err != nil {
		t.Fatalf("sync record: %v", err)
	}
	// The record must already be on disk (not just in the bufio
	// buffer) before Close: reopening the path now sees it.
	peek, err := OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if peek.Loaded() != 1 {
		t.Errorf("synced record not visible before Close: loaded %d", peek.Loaded())
	}
	peek.Close()
	if err := cp.Close(); err != nil {
		t.Fatalf("sync close: %v", err)
	}
}

func TestCheckpointCloseReportsDeferredWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpointWith(path, "fp", CheckpointOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the file descriptor under the checkpoint, the
	// white-box stand-in for a disk that stopped accepting writes.
	if err := cp.f.Close(); err != nil {
		t.Fatal(err)
	}
	recErr := cp.Record("b", 0, 1)
	if recErr == nil {
		t.Fatal("Record on a dead file succeeded")
	}
	// Even a caller that dropped the Record error learns about it at
	// Close time — and keeps learning on a second Close.
	if err := cp.Close(); err == nil {
		t.Error("Close dropped the deferred write error")
	}
	if err := cp.Close(); err == nil {
		t.Error("second Close forgot the deferred write error")
	}
}

// Resuming with a checkpoint must skip completed rows entirely and
// reproduce the identical response vector.
func TestEvaluateResumesFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	const n = 30
	task := func(_ context.Context, i int) (float64, error) {
		return math.Sqrt(float64(i)) * math.Pi, nil
	}

	cp1, err := OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Evaluate(context.Background(), n, task, Config{Parallelism: 4, Checkpoint: cp1, Scope: "s"})
	if err != nil {
		t.Fatal(err)
	}
	cp1.Close()

	cp2, err := OpenCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Loaded() != n {
		t.Fatalf("loaded %d, want %d", cp2.Loaded(), n)
	}
	var calls atomic.Int64
	counting := func(ctx context.Context, i int) (float64, error) {
		calls.Add(1)
		return task(ctx, i)
	}
	resumed, err := Evaluate(context.Background(), n, counting, Config{Parallelism: 4, Checkpoint: cp2, Scope: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("resumed run re-evaluated %d rows", calls.Load())
	}
	for i := range full {
		if math.Float64bits(full[i]) != math.Float64bits(resumed[i]) {
			t.Errorf("row %d differs after resume: %v vs %v", i, full[i], resumed[i])
		}
	}
}
