// Package dist is the coordinator-free, crash-safe distributed
// execution layer over the checkpoint substrate: any number of worker
// processes — cmd/pbworker, or pbrank/simrun in -shard-dir mode, on
// any mix of machines sharing one directory — claim units of work
// (design row × benchmark scope) via lease files, execute them through
// the fault-tolerant runner, and commit results to per-worker
// append-only JSONL shard ledgers. A deterministic merge step folds
// any set of shard ledgers back into the exact response vectors a
// single sequential run produces.
//
// There is deliberately no coordinator process and no network
// protocol: the shared directory IS the coordination medium, and every
// primitive is chosen so that a crash at any instant leaves the
// campaign recoverable:
//
//   - Claiming a unit creates its lease file with O_CREATE|O_EXCL —
//     the filesystem arbitrates exactly one winner.
//   - A live worker heartbeats its lease by atomically rewriting it
//     (write-to-temp + rename) with a fresh expiry.
//   - A lease whose expiry has passed belongs to a dead or stalled
//     worker; any worker may steal it. The steal renames the expired
//     lease to a unique tombstone first — rename succeeds for exactly
//     one stealer — and then claims fresh, so two stealers can never
//     both hold the unit.
//   - Commits are single appended JSONL lines (flushed, optionally
//     fsynced), so a torn final line — the worker died mid-write — is
//     detected and skipped on merge exactly as runner.Checkpoint skips
//     torn checkpoint lines.
//
// Correctness never rests on the leases: they only suppress duplicate
// work. The simulator is deterministic, so a unit executed twice —
// stolen lease, lost heartbeat, crashed-after-commit worker — commits
// the bit-identical value twice, and Merge proves it (a duplicate with
// different bits fails the merge loudly: that is a determinism or
// corruption bug, never something to paper over).
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ManifestVersion is the on-disk manifest schema version.
const ManifestVersion = 1

// manifestName is the campaign manifest file inside the campaign dir.
const manifestName = "manifest.json"

// leaseDir and shardDir are the campaign subdirectories.
const (
	leaseDir = "leases"
	shardDir = "shards"
)

// ScopeSpec declares one scope (typically one benchmark) and its
// dense row count [0, Rows).
type ScopeSpec struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// Manifest declares a campaign: the experiment fingerprint every
// commit must carry, the scopes with their row counts, and an opaque
// tool-specific spec that lets a joining worker (cmd/pbworker)
// reconstruct the task function from the directory alone.
type Manifest struct {
	Version     int               `json:"version"`
	Fingerprint string            `json:"fp"`
	Scopes      []ScopeSpec       `json:"scopes"`
	Spec        map[string]string `json:"spec,omitempty"`
}

// Units returns every work unit of the manifest in deterministic
// (scope declaration, row) order.
func (m Manifest) Units() []Unit {
	var units []Unit
	for _, s := range m.Scopes {
		for r := 0; r < s.Rows; r++ {
			units = append(units, Unit{Scope: s.Name, Row: r})
		}
	}
	return units
}

// TotalRows returns the campaign size in units.
func (m Manifest) TotalRows() int {
	n := 0
	for _, s := range m.Scopes {
		n += s.Rows
	}
	return n
}

func (m *Manifest) validate() error {
	if m.Fingerprint == "" {
		return errors.New("dist: manifest has no fingerprint")
	}
	if len(m.Scopes) == 0 {
		return errors.New("dist: manifest has no scopes")
	}
	seen := make(map[string]bool, len(m.Scopes))
	for _, s := range m.Scopes {
		if s.Name == "" || s.Rows <= 0 {
			return fmt.Errorf("dist: invalid scope %q with %d rows", s.Name, s.Rows)
		}
		if strings.ContainsAny(s.Name, "/\\\x00") {
			return fmt.Errorf("dist: scope %q must not contain path separators", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("dist: duplicate scope %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// Unit is one claimable, committable piece of work.
type Unit struct {
	Scope string
	Row   int
}

func (u Unit) String() string { return fmt.Sprintf("%s/%d", u.Scope, u.Row) }

// Campaign is an open campaign directory.
type Campaign struct {
	dir string
	man Manifest
}

// Create initializes dir as a campaign for man, creating the
// directory tree and writing the manifest atomically (temp file +
// rename), so a crash mid-create never leaves a half-written manifest
// for workers to trip over. Creating over an existing campaign is a
// join: if the directory already holds a manifest with the identical
// fingerprint the existing campaign is returned (the idempotence that
// lets N processes race to "create" the same campaign); a differing
// fingerprint is an error, never an overwrite.
func Create(dir string, man Manifest) (*Campaign, error) {
	man.Version = ManifestVersion
	if err := man.validate(); err != nil {
		return nil, err
	}
	for _, sub := range []string{"", leaseDir, shardDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("dist: create campaign dir: %w", err)
		}
	}
	path := filepath.Join(dir, manifestName)
	if existing, err := Open(dir); err == nil {
		if existing.man.Fingerprint != man.Fingerprint {
			return nil, fmt.Errorf("dist: campaign %s already exists with fingerprint %q (want %q); refusing to overwrite",
				dir, existing.man.Fingerprint, man.Fingerprint)
		}
		return existing, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dist: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return nil, fmt.Errorf("dist: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()        //pbcheck:ignore errdiscard error-path cleanup of a temp file that never became the manifest
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup on the write-error path
		return nil, fmt.Errorf("dist: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()        //pbcheck:ignore errdiscard error-path cleanup of a temp file that never became the manifest
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup on the sync-error path
		return nil, fmt.Errorf("dist: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup on the close-error path
		return nil, fmt.Errorf("dist: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup; the rename already failed
		// Lost the create race: someone else renamed first. Fall back
		// to joining whatever they wrote.
		if existing, oerr := Open(dir); oerr == nil {
			if existing.man.Fingerprint != man.Fingerprint {
				return nil, fmt.Errorf("dist: campaign %s created concurrently with fingerprint %q (want %q)",
					dir, existing.man.Fingerprint, man.Fingerprint)
			}
			return existing, nil
		}
		return nil, fmt.Errorf("dist: install manifest: %w", err)
	}
	return &Campaign{dir: dir, man: man}, nil
}

// Open joins the campaign at dir, reading and validating its
// manifest. A missing manifest surfaces as os.ErrNotExist.
func Open(dir string) (*Campaign, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("dist: open campaign: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("dist: corrupt manifest in %s: %w", dir, err)
	}
	if man.Version != ManifestVersion {
		return nil, fmt.Errorf("dist: manifest version %d, this build understands %d", man.Version, ManifestVersion)
	}
	if err := man.validate(); err != nil {
		return nil, err
	}
	return &Campaign{dir: dir, man: man}, nil
}

// Dir returns the campaign directory.
func (c *Campaign) Dir() string { return c.dir }

// Manifest returns a copy of the campaign manifest.
func (c *Campaign) Manifest() Manifest { return c.man }

// shardPaths lists the campaign's shard ledger files in sorted order,
// the deterministic input order for Merge.
func (c *Campaign) shardPaths() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(c.dir, shardDir))
	if err != nil {
		return nil, fmt.Errorf("dist: list shards: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		paths = append(paths, filepath.Join(c.dir, shardDir, e.Name()))
	}
	sort.Strings(paths)
	return paths, nil
}
