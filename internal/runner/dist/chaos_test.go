package dist_test

// The chaos harness: a kill/restart/resume loop over a real
// Plackett-Burman campaign that must converge to byte-identical
// Table 9 output. Workers die at deterministically injected crash
// points (runner.Faults.CrashRows — the task executes fully, then the
// attempt dies at the commit boundary, exactly a kill -9 between
// computing and committing), leases expire and are stolen, shard
// ledgers are torn mid-line and joined by garbage files, and the
// merged campaign must still render the identical report a sequential
// run produces.
//
// Set CHAOS_ARTIFACTS to a directory to keep the convergence log,
// the merged result, and the rendered tables (make chaos does).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pbsim/internal/experiment"
	"pbsim/internal/obs"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/runner/dist"
	"pbsim/internal/workload"
)

// chaosOptions is the shared experiment: the full X=44 foldover
// design (88 configurations — the design cannot shrink; its geometry
// is fixed by the simulator's 43 factors) over two benchmarks at a
// small instruction budget.
func chaosOptions(t *testing.T) experiment.Options {
	t.Helper()
	var ws []workload.Workload
	for _, n := range []string{"gzip", "mcf"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return experiment.Options{
		Instructions: 1200,
		Warmup:       600,
		Foldover:     true,
		Workloads:    ws,
	}
}

func TestChaosConvergesToSequentialTable(t *testing.T) {
	opts := chaosOptions(t)

	// Ground truth: the sequential path.
	seq, err := experiment.RunSuiteCtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	const title = "Table 9 (chaos campaign)"
	want := report.RankTable(seq, title)

	// The campaign under chaos.
	dir := t.TempDir()
	man, err := experiment.CampaignManifest(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	task, err := experiment.CampaignTask(opts, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic carnage: the first execution of these rows dies at
	// the commit boundary (per-row attempt counters are shared across
	// the two scopes, so each listed row kills a worker once).
	faults := &runner.Faults{CrashRows: map[int]int{
		0: 1, 7: 1, 23: 1, 41: 2, 60: 1, 87: 1,
	}}

	var logf *os.File
	artifacts := os.Getenv("CHAOS_ARTIFACTS")
	if artifacts != "" {
		if err := os.MkdirAll(artifacts, 0o755); err != nil {
			t.Fatal(err)
		}
		logf, err = os.Create(filepath.Join(artifacts, "convergence.log"))
		if err != nil {
			t.Fatal(err)
		}
		defer logf.Close() //pbcheck:ignore errdiscard best-effort artifact log; the test's assertions do not depend on it
	}
	logEvent := func(format string, args ...any) {
		t.Logf(format, args...)
		if logf != nil {
			fmt.Fprintf(logf, format+"\n", args...)
		}
	}

	met := obs.NewMetrics()
	deaths := 0
	const maxIncarnations = 32
	incarnation := 0
	for ; incarnation < maxIncarnations; incarnation++ {
		// Same worker ID every incarnation: the restarted "process"
		// resumes its own shard ledger (exercising torn-tail
		// truncation) and must steal back its own expired leases.
		stats, err := dist.RunWorker(context.Background(), dir, task, dist.Config{
			ID:       "chaos-w1",
			LeaseTTL: 200 * time.Millisecond,
			Poll:     20 * time.Millisecond,
			Runner:   runner.Config{Wrap: faults.Wrap},
			Recorder: met,
		})
		if err == nil {
			logEvent("incarnation %d: campaign complete (%d committed, %d stolen, %d passes)",
				incarnation, stats.Committed, stats.Stolen, stats.Passes)
			break
		}
		if !errors.Is(err, runner.ErrCrash) {
			t.Fatalf("incarnation %d: unexpected death: %v", incarnation, err)
		}
		deaths++
		logEvent("incarnation %d: killed at injected crash point after %d commits (%d stolen); restarting",
			incarnation, stats.Committed, stats.Stolen)
		// Tear the shard's tail between incarnations: the "machine"
		// died mid-append too.
		if incarnation == 1 {
			shard := filepath.Join(dir, "shards", "chaos-w1.jsonl")
			f, err := os.OpenFile(shard, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"fp":"torn mid-wri`); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			logEvent("incarnation %d: tore the shard ledger tail", incarnation)
		}
		// A lease whose owner died stays on disk until its TTL
		// passes; wait it out like a restarted supervisor would.
		time.Sleep(250 * time.Millisecond)
	}
	if incarnation == maxIncarnations {
		t.Fatalf("campaign did not converge within %d incarnations", maxIncarnations)
	}
	if deaths == 0 {
		t.Fatal("chaos harness injected no deaths; the test proved nothing")
	}

	// A garbage shard joins the directory: merge must quarantine it
	// without losing the campaign.
	junk := filepath.Join(dir, "shards", "zz-junk.jsonl")
	if err := os.WriteFile(junk, []byte("i am not a ledger\nstill not\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := c.Merge(met)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("chaos campaign incomplete: missing %v", res.Missing)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want exactly the junk shard", res.Quarantined)
	}
	logEvent("merge: %d committed, %d duplicates proven bit-identical, %d quarantined",
		res.Committed, res.Duplicates, len(res.Quarantined))

	suite, err := experiment.SuiteFromMerge(opts, res)
	if err != nil {
		t.Fatal(err)
	}
	got := report.RankTable(suite, title)
	if got != want {
		t.Errorf("chaos table diverged from sequential run:\n--- sequential ---\n%s\n--- chaos ---\n%s", want, got)
	}
	logEvent("convergence: %d deaths, table byte-identical to sequential run: %v", deaths, got == want)

	if artifacts != "" {
		merged := filepath.Join(artifacts, "merged-table.txt")
		if err := os.WriteFile(merged, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		if data, err := os.ReadFile(filepath.Join(dir, "shards", "chaos-w1.jsonl")); err == nil {
			if err := os.WriteFile(filepath.Join(artifacts, "merged-ledger.jsonl"), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestChaosMultiWorkerSpeedup runs the same campaign with several
// concurrent in-process workers — no faults this time — and checks
// both convergence and that the work actually spread across shards.
func TestChaosMultiWorkerSpeedup(t *testing.T) {
	opts := chaosOptions(t)
	dir := t.TempDir()
	man, err := experiment.CampaignManifest(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	task, err := experiment.CampaignTask(opts, c.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	errs := make(chan error, workers)
	shards := make([]dist.WorkerStats, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			stats, err := dist.RunWorker(context.Background(), dir, task, dist.Config{
				ID:       fmt.Sprintf("mw%d", w),
				LeaseTTL: 2 * time.Second,
			})
			shards[w] = stats
			errs <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Merge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("multi-worker campaign incomplete: %v", res.Missing)
	}
	spread := 0
	for w := 0; w < workers; w++ {
		if shards[w].Committed > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("work did not spread: per-worker commits %+v", shards)
	}
	if _, err := experiment.SuiteFromMerge(opts, res); err != nil {
		t.Fatal(err)
	}
}
