package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// leaseRecord is the JSON body of one lease file. Times are unix
// nanoseconds from the claimer's clock; the protocol tolerates modest
// clock skew because expiry only gates duplicate-work suppression,
// never correctness (see the package comment).
type leaseRecord struct {
	Owner    string `json:"owner"`
	Acquired int64  `json:"acquired_unix_nano"`
	Expires  int64  `json:"expires_unix_nano"`
}

// leasePath returns the lease file for one unit. Scope names are
// validated path-safe by Manifest.validate.
func leasePath(dir string, u Unit) string {
	return filepath.Join(dir, leaseDir, fmt.Sprintf("%s.%d.lease", u.Scope, u.Row))
}

// claimResult says how a claim attempt ended.
type claimResult int

const (
	claimWon    claimResult = iota // we hold the lease
	claimStolen                    // we hold it, reclaimed from an expired owner
	claimHeld                      // someone else holds an unexpired lease
)

// claim tries to acquire the lease on u for owner until now+ttl.
//
// The fast path is the atomic one: O_CREATE|O_EXCL arbitrates exactly
// one winner among racing claimants. When the file already exists the
// slow path reads it; an unexpired lease loses the claim, while an
// expired (or unreadable — its writer died mid-write) lease enters
// the steal protocol: rename the carcass to a unique tombstone, which
// exactly one stealer can win because rename removes the source, then
// re-claim through the same O_EXCL gate as everyone else. A stealer
// that dies between rename and re-claim leaves the unit unleased — any
// worker claims it normally on its next pass — and at worst an orphan
// tombstone file, which blocks nothing.
func claim(dir string, u Unit, owner string, ttl time.Duration, now time.Time) (claimResult, error) {
	path := leasePath(dir, u)
	stole := false
	for {
		err := writeLeaseExcl(path, owner, ttl, now)
		if err == nil {
			if stole {
				return claimStolen, nil
			}
			return claimWon, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return claimHeld, err
		}
		rec, rerr := readLease(path)
		if rerr == nil && now.UnixNano() < rec.Expires {
			return claimHeld, nil // live lease
		}
		if rerr != nil && errors.Is(rerr, os.ErrNotExist) {
			continue // released or stolen between our create and read; retry the fast path
		}
		// Expired or unreadable: steal. The tombstone name is unique
		// per (owner, attempt time), so concurrent stealers race the
		// rename and exactly one proceeds.
		tomb := fmt.Sprintf("%s.tomb.%s.%d", path, owner, now.UnixNano())
		if err := os.Rename(path, tomb); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // another stealer won the rename; retry the fast path
			}
			return claimHeld, fmt.Errorf("dist: steal lease %s: %w", u, err)
		}
		os.Remove(tomb) //pbcheck:ignore errdiscard tombstone cleanup is best-effort; an orphan tombstone blocks nothing
		stole = true
		// Loop: re-claim through the O_EXCL gate. We may fairly lose
		// to a non-stealing claimant that saw the path free.
	}
}

// writeLeaseExcl creates the lease file atomically, failing with
// os.ErrExist when another worker holds it.
func writeLeaseExcl(path, owner string, ttl time.Duration, now time.Time) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	rec := leaseRecord{Owner: owner, Acquired: now.UnixNano(), Expires: now.Add(ttl).UnixNano()}
	data, err := json.Marshal(rec)
	if err != nil {
		f.Close() //pbcheck:ignore errdiscard error-path cleanup; the marshal error is what matters
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close() //pbcheck:ignore errdiscard error-path cleanup; the write error is what matters
		return err
	}
	return f.Close()
}

// readLease parses a lease file. A missing file returns
// os.ErrNotExist; a torn or corrupt file returns a generic error the
// caller treats as stealable.
func readLease(path string) (leaseRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return leaseRecord{}, err
	}
	var rec leaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("dist: torn lease %s: %w", path, err)
	}
	return rec, nil
}

// renew extends the lease on u to now+ttl if owner still holds it,
// atomically (write temp + rename) so readers never observe a torn
// lease from a healthy worker. It reports false when the lease was
// lost — stolen after an expiry, or the file vanished — in which case
// the worker keeps executing anyway: its eventual commit is safe
// because merge proves duplicate values identical.
//
// The ownership check then rename is not atomic; a steal landing in
// that window means two workers briefly believe they hold the unit.
// That is the documented double-execution case, harmless by design —
// the alternative (fcntl range locks) does not survive all shared
// filesystems this layer targets.
func renew(dir string, u Unit, owner string, ttl time.Duration, now time.Time) (bool, error) {
	path := leasePath(dir, u)
	rec, err := readLease(path)
	if err != nil || rec.Owner != owner {
		return false, nil // lost: vanished, torn, or stolen
	}
	tmp, err := os.CreateTemp(filepath.Join(dir, leaseDir), ".renew-*")
	if err != nil {
		return false, fmt.Errorf("dist: renew lease %s: %w", u, err)
	}
	tmpName := tmp.Name()
	rec.Expires = now.Add(ttl).UnixNano()
	data, _ := json.Marshal(rec) //pbcheck:ignore errdiscard marshaling a struct of two ints and a string cannot fail
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()        //pbcheck:ignore errdiscard error-path cleanup; the write error is what matters
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup on the write-error path
		return false, fmt.Errorf("dist: renew lease %s: %w", u, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup on the close-error path
		return false, fmt.Errorf("dist: renew lease %s: %w", u, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //pbcheck:ignore errdiscard best-effort temp cleanup; the rename already failed
		return false, fmt.Errorf("dist: renew lease %s: %w", u, err)
	}
	return true, nil
}

// release removes the lease on u if owner still holds it. Losing the
// ownership check (the lease was stolen after expiring) leaves the
// stealer's lease untouched.
func release(dir string, u Unit, owner string) {
	path := leasePath(dir, u)
	rec, err := readLease(path)
	if err != nil || rec.Owner != owner {
		return
	}
	os.Remove(path) //pbcheck:ignore errdiscard best-effort release; an unremoved lease simply expires
}
