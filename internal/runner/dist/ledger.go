package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ledgerRecord is one committed unit: the checkpoint record shape
// (fingerprint guard, scope, row, shortest-round-trip float value)
// plus the committing worker, for forensics on stolen leases.
type ledgerRecord struct {
	FP     string  `json:"fp"`
	Scope  string  `json:"scope"`
	Row    int     `json:"row"`
	Value  float64 `json:"value"`
	Worker string  `json:"worker,omitempty"`
}

// Ledger is one worker's append-only shard: shards/<worker>.jsonl
// inside the campaign directory. Every commit is a single flushed
// write of one line, so the only loss mode a worker death can produce
// is a torn final line, which reopening truncates away (the unit was
// by definition uncommitted) and merge would skip anyway. With Sync,
// each line is also fsynced, extending the durability guarantee from
// process death to machine death.
type Ledger struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	worker string
	fp     string
	sync   bool
	werr   error // first write failure; commit errors must not be forgettable
}

// openLedger opens (creating or resuming) the shard ledger for worker
// inside the campaign dir, truncating a torn final line left by a
// previous incarnation that died mid-write.
func openLedger(dir, worker, fingerprint string, syncEveryCommit bool) (*Ledger, error) {
	path := filepath.Join(dir, shardDir, worker+".jsonl")
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open shard ledger: %w", err)
	}
	return &Ledger{f: f, path: path, worker: worker, fp: fingerprint, sync: syncEveryCommit}, nil
}

// truncateTornTail removes a trailing partial line (no terminating
// newline) so a resumed worker's appends never concatenate onto the
// torn line of its crashed predecessor, which would corrupt a
// mid-file record.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("dist: inspect shard ledger: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	keep := bytes.LastIndexByte(data, '\n') + 1 // 0 when no newline at all
	if err := os.Truncate(path, int64(keep)); err != nil {
		return fmt.Errorf("dist: truncate torn ledger tail: %w", err)
	}
	return nil
}

// Commit durably appends one completed unit. The line is written with
// a single write syscall on an O_APPEND descriptor, then (in Sync
// mode) fsynced. The first failure is sticky: it is returned again by
// Close so a dropped commit error cannot masquerade as a clean shard.
func (l *Ledger) Commit(scope string, row int, value float64) error {
	line, err := json.Marshal(ledgerRecord{FP: l.fp, Scope: scope, Row: row, Value: value, Worker: l.worker})
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.werr != nil {
		return l.werr
	}
	if l.f == nil {
		return fmt.Errorf("dist: commit to closed ledger %s", l.path)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		l.werr = err
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			l.werr = err
			return err
		}
	}
	return nil
}

// Path returns the shard file path.
func (l *Ledger) Path() string { return l.path }

// Close closes the shard, reporting the first deferred commit error
// before any close-time failure.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.werr
	}
	cerr := l.f.Close() //pbcheck:ignore errflow the deferred commit error outranks a close failure by contract; cerr is intentionally dropped when werr is set
	l.f = nil
	if l.werr != nil {
		return l.werr
	}
	return cerr
}

// LedgerEntry is one parsed shard record.
type LedgerEntry struct {
	Unit
	Value  float64
	Worker string
}

// readLedger parses one shard file, returning every intact record
// whose fingerprint matches. Tolerance contract:
//
//   - A torn final line (crash mid-write) is skipped silently — the
//     expected death signature, identical to Checkpoint's.
//   - A corrupt non-final line marks the file quarantined (reason
//     non-empty): something other than a clean worker death touched
//     it. Intact records are still returned — each line is
//     self-describing and fingerprint-guarded, so good lines lose
//     nothing to a bad neighbor — but the quarantine is surfaced so
//     operators know the shard needs attention.
//   - Records under a foreign fingerprint are skipped (stale shard
//     from a previous campaign in a reused directory).
//
// An unreadable file quarantines entirely with no records.
func readLedger(path, fingerprint string) (entries []LedgerEntry, quarantine string, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, fmt.Sprintf("unreadable: %v", rerr), nil
	}
	lines := bytes.Split(data, []byte("\n"))
	// A trailing newline yields one empty final element; drop it so
	// "last line" means the last record written.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec ledgerRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			if i == len(lines)-1 {
				continue // torn tail: the one loss mode a clean crash produces
			}
			quarantine = fmt.Sprintf("corrupt record on line %d: %v", i+1, uerr)
			continue
		}
		if rec.FP != fingerprint {
			continue
		}
		entries = append(entries, LedgerEntry{
			Unit:   Unit{Scope: rec.Scope, Row: rec.Row},
			Value:  rec.Value,
			Worker: rec.Worker,
		})
	}
	return entries, quarantine, nil
}
