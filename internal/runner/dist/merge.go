package dist

import (
	"fmt"
	"math"
	"sort"

	"pbsim/internal/obs"
)

// QuarantinedShard names a shard ledger merge could not fully trust,
// with the reason (unreadable file, corrupt mid-file record).
type QuarantinedShard struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// MergeResult is the deterministic fold of every shard ledger in a
// campaign directory.
type MergeResult struct {
	Fingerprint string
	// Values holds, per scope, the dense response vector. Rows never
	// committed are NaN and listed in Missing; a complete campaign has
	// none.
	Values map[string][]float64
	// Committed counts distinct committed units, Duplicates the extra
	// commits beyond the first (stolen leases, lost heartbeats) — all
	// proven bit-identical to the first.
	Committed  int
	Duplicates int
	// Missing lists units no shard committed, in manifest order.
	Missing []Unit
	// Quarantined lists shards with damage beyond a torn tail.
	Quarantined []QuarantinedShard
}

// Complete reports whether every unit of the campaign is present.
func (r *MergeResult) Complete() bool { return len(r.Missing) == 0 }

// Responses returns the scope's dense response vector, failing if any
// row is missing — the guard every consumer must pass before feeding
// vectors into effects computation.
func (r *MergeResult) Responses(scope string) ([]float64, error) {
	vec, ok := r.Values[scope]
	if !ok {
		return nil, fmt.Errorf("dist: no scope %q in merge", scope)
	}
	for i, v := range vec {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("dist: scope %q row %d was never committed", scope, i)
		}
	}
	return vec, nil
}

// ConflictError reports two commits of the same unit with different
// bits: a determinism violation or silent corruption. It is always
// fatal — a campaign whose workers disagree must never produce a
// table.
type ConflictError struct {
	Unit
	A, B   float64
	ShardA string
	ShardB string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("dist: conflicting commits for %s: %x (%s) vs %x (%s); refusing to merge a nondeterministic campaign",
		e.Unit, math.Float64bits(e.A), e.ShardA, math.Float64bits(e.B), e.ShardB)
}

// Merge folds every shard ledger of the campaign into the canonical
// result vectors. It is deterministic in the strongest sense the
// bit-identity tests demand: any set of shards that together cover
// the campaign — one worker or fifty, crashed and restarted in any
// order, with any pattern of duplicate commits from stolen leases —
// merges to byte-identical vectors, because (a) shard files are read
// in sorted filename order, (b) values are fingerprint-guarded JSON
// float64 round-trips, bit-exact by construction, and (c) a duplicate
// is verified bit-equal before being folded (and a mismatch aborts
// the merge with a *ConflictError rather than picking a winner).
//
// rec, when non-nil and dist-aware, observes quarantined shards.
func (c *Campaign) Merge(rec obs.Recorder) (*MergeResult, error) {
	paths, err := c.shardPaths()
	if err != nil {
		return nil, err
	}
	res := &MergeResult{
		Fingerprint: c.man.Fingerprint,
		Values:      make(map[string][]float64, len(c.man.Scopes)),
	}
	rows := make(map[string]int, len(c.man.Scopes))
	first := make(map[Unit]string) // unit → shard of first commit
	for _, s := range c.man.Scopes {
		vec := make([]float64, s.Rows)
		for i := range vec {
			vec[i] = math.NaN()
		}
		res.Values[s.Name] = vec
		rows[s.Name] = s.Rows
	}
	dist := obs.DistEvents(rec)
	for _, path := range paths {
		entries, quarantine, err := readLedger(path, c.man.Fingerprint)
		if err != nil {
			return nil, err
		}
		if quarantine != "" {
			res.Quarantined = append(res.Quarantined, QuarantinedShard{Path: path, Reason: quarantine})
			dist.ShardQuarantined(path, quarantine)
		}
		for _, e := range entries {
			n, ok := rows[e.Scope]
			if !ok || e.Row < 0 || e.Row >= n {
				// Same fingerprint but impossible coordinates: not a
				// stale shard (the fingerprint guard caught those),
				// so something corrupted a line into valid JSON.
				return nil, fmt.Errorf("dist: shard %s commits %s outside the campaign manifest", path, e.Unit)
			}
			vec := res.Values[e.Scope]
			if prev := vec[e.Row]; !math.IsNaN(prev) {
				res.Duplicates++
				if math.Float64bits(prev) != math.Float64bits(e.Value) {
					return nil, &ConflictError{
						Unit: e.Unit, A: prev, B: e.Value,
						ShardA: first[e.Unit], ShardB: path,
					}
				}
				continue
			}
			vec[e.Row] = e.Value
			first[e.Unit] = path
			res.Committed++
		}
	}
	for _, u := range c.man.Units() {
		if math.IsNaN(res.Values[u.Scope][u.Row]) {
			res.Missing = append(res.Missing, u)
		}
	}
	sort.Slice(res.Quarantined, func(i, j int) bool { return res.Quarantined[i].Path < res.Quarantined[j].Path })
	return res, nil
}

// MergeDir is the one-call form: open the campaign at dir and merge
// its shards.
func MergeDir(dir string, rec obs.Recorder) (*MergeResult, error) {
	c, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return c.Merge(rec)
}
