package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pbsim/internal/obs"
	"pbsim/internal/runner"
)

// testManifest is a small two-scope campaign.
func testManifest() Manifest {
	return Manifest{
		Fingerprint: "fp-test|n=1",
		Scopes: []ScopeSpec{
			{Name: "alpha", Rows: 4},
			{Name: "beta", Rows: 3},
		},
	}
}

// testValue is the deterministic ground truth every test task
// computes: distinct bits per unit, not representable exactly so
// bit-identity actually checks something.
func testValue(scope string, row int) float64 {
	return float64(row+1) / float64(len(scope)+3)
}

func testTask(_ context.Context, scope string, row int) (float64, error) {
	return testValue(scope, row), nil
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		man  Manifest
		want string
	}{
		{"no fingerprint", Manifest{Scopes: []ScopeSpec{{Name: "a", Rows: 1}}}, "no fingerprint"},
		{"no scopes", Manifest{Fingerprint: "fp"}, "no scopes"},
		{"zero rows", Manifest{Fingerprint: "fp", Scopes: []ScopeSpec{{Name: "a"}}}, "invalid scope"},
		{"dup scope", Manifest{Fingerprint: "fp", Scopes: []ScopeSpec{{Name: "a", Rows: 1}, {Name: "a", Rows: 2}}}, "duplicate scope"},
		{"path separator", Manifest{Fingerprint: "fp", Scopes: []ScopeSpec{{Name: "a/b", Rows: 1}}}, "path separators"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Create(t.TempDir(), tc.man); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Create = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCampaignCreateOpenJoin(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	c, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Manifest(); got.Fingerprint != man.Fingerprint || len(got.Scopes) != 2 {
		t.Fatalf("manifest round-trip mangled: %+v", got)
	}
	if got, want := c.Manifest().TotalRows(), 7; got != want {
		t.Fatalf("TotalRows = %d, want %d", got, want)
	}
	if got := len(c.Manifest().Units()); got != 7 {
		t.Fatalf("Units = %d, want 7", got)
	}

	// Re-create with the same fingerprint joins.
	if _, err := Create(dir, man); err != nil {
		t.Fatalf("idempotent create: %v", err)
	}
	// Re-create with a different fingerprint refuses.
	other := man
	other.Fingerprint = "fp-other"
	if _, err := Create(dir, other); err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("conflicting create = %v, want refusal", err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Open(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open(empty) = %v, want ErrNotExist", err)
	}
}

func TestLeaseProtocol(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	u := Unit{Scope: "alpha", Row: 1}
	now := time.Unix(1000, 0)
	ttl := 10 * time.Second

	if res, err := claim(dir, u, "w1", ttl, now); err != nil || res != claimWon {
		t.Fatalf("first claim = %v, %v; want claimWon", res, err)
	}
	// A live lease cannot be claimed by anyone else.
	if res, err := claim(dir, u, "w2", ttl, now.Add(ttl/2)); err != nil || res != claimHeld {
		t.Fatalf("contended claim = %v, %v; want claimHeld", res, err)
	}
	// The owner re-claiming its own live lease is also held: leases
	// are not reentrant, which keeps the protocol one-rule simple.
	if res, err := claim(dir, u, "w1", ttl, now.Add(ttl/2)); err != nil || res != claimHeld {
		t.Fatalf("self re-claim = %v, %v; want claimHeld", res, err)
	}
	// After expiry any worker steals it.
	if res, err := claim(dir, u, "w2", ttl, now.Add(2*ttl)); err != nil || res != claimStolen {
		t.Fatalf("expired claim = %v, %v; want claimStolen", res, err)
	}
	// The loser's release is a no-op on the stolen lease...
	release(dir, u, "w1")
	if rec, err := readLease(leasePath(dir, u)); err != nil || rec.Owner != "w2" {
		t.Fatalf("lease after foreign release = %+v, %v; want owner w2", rec, err)
	}
	// ...the owner's release removes it.
	release(dir, u, "w2")
	if _, err := readLease(leasePath(dir, u)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lease after owner release = %v, want ErrNotExist", err)
	}
	// A torn lease file (its writer died mid-write) is stealable.
	if err := os.WriteFile(leasePath(dir, u), []byte(`{"owner":"w3","acq`), 0o644); err != nil {
		t.Fatal(err)
	}
	if res, err := claim(dir, u, "w1", ttl, now); err != nil || res != claimStolen {
		t.Fatalf("torn-lease claim = %v, %v; want claimStolen", res, err)
	}
}

func TestRenewLease(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	u := Unit{Scope: "beta", Row: 0}
	now := time.Unix(2000, 0)
	ttl := 10 * time.Second
	if _, err := claim(dir, u, "w1", ttl, now); err != nil {
		t.Fatal(err)
	}
	// Renewal pushes the expiry so a claim that would have stolen now
	// observes a live lease.
	if ok, err := renew(dir, u, "w1", ttl, now.Add(ttl)); err != nil || !ok {
		t.Fatalf("renew = %v, %v; want true", ok, err)
	}
	if res, err := claim(dir, u, "w2", ttl, now.Add(ttl+ttl/2)); err != nil || res != claimHeld {
		t.Fatalf("claim after renew = %v, %v; want claimHeld", res, err)
	}
	// A stolen lease cannot be renewed by the old owner.
	if _, err := claim(dir, u, "w2", ttl, now.Add(10*ttl)); err != nil {
		t.Fatal(err)
	}
	if ok, err := renew(dir, u, "w1", ttl, now.Add(10*ttl)); err != nil || ok {
		t.Fatalf("renew of stolen lease = %v, %v; want false", ok, err)
	}
}

func TestLedgerTornTailAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	led, err := openLedger(dir, "w1", "fp-test|n=1", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Commit("alpha", 0, 1.25); err != nil {
		t.Fatal(err)
	}
	if err := led.Commit("alpha", 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	path := led.Path()

	// Simulate a crash mid-append: a torn final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"fp-test|n=1","scope":"alpha","ro`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entries, quarantine, err := readLedger(path, "fp-test|n=1")
	if err != nil || quarantine != "" {
		t.Fatalf("readLedger torn tail: %v, quarantine %q", err, quarantine)
	}
	if len(entries) != 2 {
		t.Fatalf("torn tail dropped records: got %d entries", len(entries))
	}

	// A resumed worker truncates the torn tail so its appends cannot
	// concatenate onto it.
	led2, err := openLedger(dir, "w1", "fp-test|n=1", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := led2.Commit("alpha", 2, 3.75); err != nil {
		t.Fatal(err)
	}
	if err := led2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, quarantine, err = readLedger(path, "fp-test|n=1")
	if err != nil || quarantine != "" {
		t.Fatalf("readLedger after resume: %v, quarantine %q", err, quarantine)
	}
	if len(entries) != 3 || entries[2].Row != 2 {
		t.Fatalf("resumed append mangled: %+v", entries)
	}

	// Corrupt a MID-file record: quarantined, but intact lines survive.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	lines[1] = `garbage not json`
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, quarantine, err = readLedger(path, "fp-test|n=1")
	if err != nil || quarantine == "" {
		t.Fatalf("corrupt mid-file: err %v, quarantine %q; want quarantine reason", err, quarantine)
	}
	if len(entries) != 2 {
		t.Fatalf("quarantined shard lost intact records: %+v", entries)
	}

	// Foreign-fingerprint records are skipped.
	entries, _, err = readLedger(path, "some-other-fp")
	if err != nil || len(entries) != 0 {
		t.Fatalf("foreign fp: %d entries, %v; want 0", len(entries), err)
	}
}

func TestLedgerCommitAfterCloseAndStickyError(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	led, err := openLedger(dir, "w1", "fp", false)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the descriptor so the next write fails.
	if err := led.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := led.Commit("alpha", 0, 1); err == nil {
		t.Fatal("Commit on closed fd succeeded")
	}
	// The failure is sticky: Close reports it, and so does a retry.
	if err := led.Commit("alpha", 0, 1); err == nil {
		t.Fatal("second Commit forgot the write error")
	}
	if err := led.Close(); err == nil {
		t.Fatal("Close forgot the write error")
	}
}

func TestMergeDuplicatesConflictsAndMissing(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	c, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}

	commitAll := func(worker string, units []Unit, bump float64) {
		t.Helper()
		led, err := openLedger(dir, worker, man.Fingerprint, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range units {
			if err := led.Commit(u.Scope, u.Row, testValue(u.Scope, u.Row)+bump); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
	}

	units := man.Units()
	// Shard 1 commits the first five units, shard 2 the last five:
	// units 2..4 are duplicated (identical bits), unit coverage total.
	commitAll("w1", units[:5], 0)
	commitAll("w2", units[2:], 0)

	m := obs.NewMetrics()
	res, err := c.Merge(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || len(res.Missing) != 0 {
		t.Fatalf("merge incomplete: %+v", res.Missing)
	}
	if res.Committed != 7 || res.Duplicates != 3 {
		t.Fatalf("Committed=%d Duplicates=%d, want 7 and 3", res.Committed, res.Duplicates)
	}
	for _, u := range units {
		got := res.Values[u.Scope][u.Row]
		if math.Float64bits(got) != math.Float64bits(testValue(u.Scope, u.Row)) {
			t.Fatalf("unit %s = %x, want %x", u, math.Float64bits(got), math.Float64bits(testValue(u.Scope, u.Row)))
		}
	}
	if vec, err := res.Responses("alpha"); err != nil || len(vec) != 4 {
		t.Fatalf("Responses(alpha) = %d values, %v", len(vec), err)
	}
	if _, err := res.Responses("nope"); err == nil {
		t.Fatal("Responses of unknown scope succeeded")
	}

	// A conflicting duplicate (different bits) fails the merge loudly.
	commitAll("w3", units[:1], 1e-9)
	var conflict *ConflictError
	if _, err := c.Merge(nil); !errors.As(err, &conflict) {
		t.Fatalf("merge with conflicting commit = %v, want *ConflictError", err)
	}
	if conflict.Unit != units[0] {
		t.Fatalf("conflict unit = %s, want %s", conflict.Unit, units[0])
	}
	if err := os.Remove(filepath.Join(dir, shardDir, "w3.jsonl")); err != nil {
		t.Fatal(err)
	}

	// A commit outside the manifest's geometry fails the merge.
	commitAll("w4", []Unit{{Scope: "alpha", Row: 99}}, 0)
	if _, err := c.Merge(nil); err == nil || !strings.Contains(err.Error(), "outside the campaign manifest") {
		t.Fatalf("out-of-range commit merge = %v", err)
	}
	if err := os.Remove(filepath.Join(dir, shardDir, "w4.jsonl")); err != nil {
		t.Fatal(err)
	}

	// Missing units are reported in manifest order.
	dir2 := t.TempDir()
	c2, err := Create(dir2, man)
	if err != nil {
		t.Fatal(err)
	}
	led, err := openLedger(dir2, "w1", man.Fingerprint, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Commit("alpha", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Merge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Complete() || len(res2.Missing) != 6 {
		t.Fatalf("Missing = %+v, want 6 units", res2.Missing)
	}
	if _, err := res2.Responses("alpha"); err == nil || !strings.Contains(err.Error(), "never committed") {
		t.Fatalf("Responses on incomplete scope = %v", err)
	}
}

func TestMergeQuarantinesUnreadableRecordsStillCounted(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	c, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	// One healthy shard covering everything, plus one wholly garbage
	// shard: merge completes and reports the quarantine.
	led, err := openLedger(dir, "good", man.Fingerprint, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range man.Units() {
		if err := led.Commit(u.Scope, u.Row, testValue(u.Scope, u.Row)); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, shardDir, "bad.jsonl")
	if err := os.WriteFile(garbage, []byte("not json\nalso not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	res, err := c.Merge(met)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("merge incomplete despite healthy shard: missing %v", res.Missing)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Path != garbage {
		t.Fatalf("Quarantined = %+v, want bad.jsonl", res.Quarantined)
	}
	if got := met.Summary("test").ShardsQuarantined; got != 1 {
		t.Fatalf("metrics ShardsQuarantined = %d, want 1", got)
	}
}

func TestRunWorkerCompletesCampaign(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	if _, err := Create(dir, man); err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics()
	stats, err := RunWorker(context.Background(), dir, testTask, Config{
		ID:       "solo",
		LeaseTTL: time.Minute,
		Recorder: met,
	})
	if err != nil {
		t.Fatalf("RunWorker: %v (stats %+v)", err, stats)
	}
	if stats.Committed != 7 || stats.Claimed != 7 || stats.Stolen != 0 || stats.Crashed {
		t.Fatalf("stats = %+v, want 7 committed, 7 claimed", stats)
	}
	res, err := MergeDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.Duplicates != 0 {
		t.Fatalf("merge after solo worker: %+v", res)
	}
	sum := met.Summary("test")
	if sum.LeasesClaimed != 7 || sum.Commits != 7 {
		t.Fatalf("metrics = %+v, want 7 leases and commits", sum)
	}
	// All leases released.
	entries, err := os.ReadDir(filepath.Join(dir, leaseDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leases left behind: %v", entries)
	}
}

func TestRunWorkerConfigErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorker(context.Background(), dir, testTask, Config{}); err == nil {
		t.Fatal("RunWorker without ID succeeded")
	}
	if _, err := RunWorker(context.Background(), t.TempDir(), testTask, Config{ID: "w"}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("RunWorker on empty dir = %v, want ErrNotExist", err)
	}
}

func TestRunWorkerPermanentFailure(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	if _, err := Create(dir, man); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	task := func(ctx context.Context, scope string, row int) (float64, error) {
		if scope == "beta" && row == 1 {
			return 0, boom
		}
		return testTask(ctx, scope, row)
	}
	stats, err := RunWorker(context.Background(), dir, task, Config{ID: "w", LeaseTTL: time.Minute})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("RunWorker = %v, want boom", err)
	}
	if stats.Committed != 6 {
		t.Fatalf("committed %d healthy units, want 6", stats.Committed)
	}
	res, err := MergeDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != (Unit{Scope: "beta", Row: 1}) {
		t.Fatalf("Missing = %+v, want beta/1", res.Missing)
	}
	// The failed unit's lease was released so another worker (with a
	// fixed binary) could retry it.
	if _, err := os.Stat(leasePath(dir, Unit{Scope: "beta", Row: 1})); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed unit's lease not released: %v", err)
	}
}

func TestRunWorkerCrashLeavesLeaseAndResumeSteals(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	if _, err := Create(dir, man); err != nil {
		t.Fatal(err)
	}
	// The faults injector is shared across restarts, like the history
	// of a real machine: the first execution of alpha-or-beta row 2
	// dies at the commit boundary.
	faults := &runner.Faults{CrashRows: map[int]int{2: 1}}
	cfg := Config{
		ID:       "w1",
		LeaseTTL: 50 * time.Millisecond,
		Runner:   runner.Config{Wrap: faults.Wrap},
	}
	stats, err := RunWorker(context.Background(), dir, testTask, cfg)
	if !errors.Is(err, runner.ErrCrash) || !stats.Crashed {
		t.Fatalf("first incarnation = %v (stats %+v), want ErrCrash", err, stats)
	}
	// The "dead" worker's lease is still on disk — crash must not
	// release it, or the protocol would be hiding behind cleanup that
	// a kill -9 never runs.
	leases, err := os.ReadDir(filepath.Join(dir, leaseDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 {
		t.Fatalf("leases after crash = %d, want exactly the dead worker's", len(leases))
	}

	// A second worker finishes the campaign, stealing the orphan
	// lease once it expires.
	time.Sleep(60 * time.Millisecond)
	stats2, err := RunWorker(context.Background(), dir, testTask, Config{
		ID:       "w2",
		LeaseTTL: 50 * time.Millisecond,
		Runner:   runner.Config{Wrap: faults.Wrap},
	})
	if err != nil {
		t.Fatalf("second incarnation: %v (stats %+v)", err, stats2)
	}
	if stats2.Stolen == 0 {
		t.Fatalf("second worker stole nothing: %+v", stats2)
	}
	res, err := MergeDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("campaign incomplete after resume: missing %v", res.Missing)
	}
	for _, u := range man.Units() {
		got := res.Values[u.Scope][u.Row]
		if math.Float64bits(got) != math.Float64bits(testValue(u.Scope, u.Row)) {
			t.Fatalf("unit %s = %v, want %v", u, got, testValue(u.Scope, u.Row))
		}
	}
}

func TestRunWorkerSkipsUnitCommittedByPreviousLeaseHolder(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	c, err := Create(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	// A "dead" worker committed alpha/0 but its lease is still on
	// disk, expired: the next worker steals the lease, notices the
	// commit, and releases without re-executing.
	led, err := openLedger(dir, "dead", man.Fingerprint, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Commit("alpha", 0, testValue("alpha", 0)); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	u := Unit{Scope: "alpha", Row: 0}
	if _, err := claim(dir, u, "dead", -time.Second, time.Now()); err != nil {
		t.Fatal(err)
	}
	executed := make(map[Unit]int)
	var mu sync.Mutex
	task := func(ctx context.Context, scope string, row int) (float64, error) {
		mu.Lock()
		executed[Unit{Scope: scope, Row: row}]++
		mu.Unlock()
		return testTask(ctx, scope, row)
	}
	if _, err := RunWorker(context.Background(), dir, task, Config{ID: "w2", LeaseTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if executed[u] != 0 {
		t.Fatalf("unit %s re-executed %d times despite being committed", u, executed[u])
	}
	res, err := c.Merge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.Duplicates != 0 {
		t.Fatalf("merge = %+v, want complete with no duplicates", res)
	}
}

// TestHammerConcurrentWorkers is the -race hammer: many workers
// hammer one campaign concurrently — some crashing at injected
// points and restarting, heartbeats disabled so stalls look like
// deaths and leases get stolen — and the merged ledger must still be
// bit-identical to a sequential run, with every unit present exactly
// once in the value vectors and no lease double-held past expiry.
func TestHammerConcurrentWorkers(t *testing.T) {
	dir := t.TempDir()
	man := Manifest{
		Fingerprint: "fp-hammer",
		Scopes: []ScopeSpec{
			{Name: "alpha", Rows: 16},
			{Name: "beta", Rows: 16},
			{Name: "gamma", Rows: 16},
		},
	}
	if _, err := Create(dir, man); err != nil {
		t.Fatal(err)
	}

	// Sequential ground truth.
	want := make(map[Unit]float64)
	for _, u := range man.Units() {
		want[u] = testValue(u.Scope, u.Row)
	}

	const workers = 8
	// Each worker crashes on its first execution of a few rows; the
	// injectors are per-worker (a real fleet's machines fail
	// independently).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			faults := &runner.Faults{CrashRows: map[int]int{w: 1, w + 8: 1}}
			id := fmt.Sprintf("w%d", w)
			for incarnation := 0; ; incarnation++ {
				cfg := Config{
					ID:        fmt.Sprintf("%s-i%d", id, incarnation),
					LeaseTTL:  30 * time.Millisecond,
					Heartbeat: -1, // stalls look like deaths; steals happen
					Poll:      5 * time.Millisecond,
					Runner:    runner.Config{Wrap: faults.Wrap},
				}
				_, err := RunWorker(context.Background(), dir, testTask, cfg)
				if err == nil {
					return
				}
				if errors.Is(err, runner.ErrCrash) {
					continue // "restart the process"
				}
				t.Errorf("worker %s: %v", cfg.ID, err)
				return
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	res, err := MergeDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("hammered campaign incomplete: missing %v", res.Missing)
	}
	for u, v := range want {
		got := res.Values[u.Scope][u.Row]
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("unit %s = %x, want %x", u, math.Float64bits(got), math.Float64bits(v))
		}
	}
	if res.Committed != len(want) {
		t.Fatalf("Committed = %d, want %d", res.Committed, len(want))
	}
	t.Logf("hammer: %d units, %d duplicate commits proven identical, %d quarantined",
		res.Committed, res.Duplicates, len(res.Quarantined))
}

func TestRotationStable(t *testing.T) {
	if rotation("w1", 10) != rotation("w1", 10) {
		t.Fatal("rotation not stable")
	}
	if rotation("", 0) != 0 || rotation("x", -1) != 0 {
		t.Fatal("rotation on empty range should be 0")
	}
	if r := rotation("worker-7", 13); r < 0 || r >= 13 {
		t.Fatalf("rotation out of range: %d", r)
	}
}
