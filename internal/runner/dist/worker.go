package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pbsim/internal/obs"
	"pbsim/internal/runner"
)

// Task computes one unit: the response value for row of scope. It
// must be deterministic — the whole merge contract rests on a unit
// producing bit-identical values no matter which worker runs it, or
// how many times.
type Task func(ctx context.Context, scope string, row int) (float64, error)

// Config tunes one worker process.
type Config struct {
	// ID names this worker; it becomes the shard ledger filename and
	// the lease owner string, so it must be unique among live workers
	// and path-safe. Empty is an error.
	ID string
	// LeaseTTL is how long a claimed lease lives without a heartbeat
	// before any other worker may steal it. Default 10s.
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal period. Default LeaseTTL/3.
	// Negative disables heartbeating entirely — a worker that stalls
	// mid-unit then looks dead and gets its unit stolen, which the
	// chaos harness uses to exercise the steal path deliberately.
	Heartbeat time.Duration
	// Poll is how long to wait between passes when every remaining
	// unit is leased by someone else. Default LeaseTTL/4.
	Poll time.Duration
	// Sync fsyncs the shard ledger after every commit, extending
	// durability from process death to machine death.
	Sync bool
	// Runner configures the execution of each unit (retries, timeout,
	// backoff, fault-injection Wrap). Parallelism, Checkpoint, Scope,
	// and Recorder are managed per-unit by the worker and ignored
	// here. Wrap, if set, observes the real campaign row number.
	Runner runner.Config
	// Recorder observes lease and commit events (via obs.DistEvents)
	// and per-row runner events. Nil means no observation.
	Recorder obs.Recorder
	// now overrides the clock in tests.
	now func() time.Time
}

func (cfg *Config) fill() error {
	if cfg.ID == "" {
		return errors.New("dist: worker needs a non-empty ID")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 3
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.LeaseTTL / 4
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return nil
}

// WorkerStats summarizes one RunWorker call.
type WorkerStats struct {
	Claimed   int  // leases acquired, including steals
	Stolen    int  // of Claimed, how many reclaimed expired leases
	Committed int  // units this worker durably committed
	Passes    int  // scans over the unit list
	Crashed   bool // the worker died at an injected crash point
}

// unitError records one unit this worker failed permanently.
type unitError struct {
	Unit
	Err error
}

func (e unitError) Error() string { return fmt.Sprintf("%s: %v", e.Unit, e.Err) }
func (e unitError) Unwrap() error { return e.Err }

// RunWorker executes campaign units from dir until the campaign is
// complete, the context is cancelled, or an injected crash kills the
// worker. It is the entire worker protocol:
//
//	pass:
//	  scan every shard ledger → done set
//	  all units done → success
//	  for each unit not done, rotated by worker ID so workers start
//	  in different places:
//	    claim its lease (stealing if expired); held elsewhere → skip
//	    heartbeat the lease in the background
//	    run the unit through runner.Evaluate (retries, timeout,
//	    panic recovery)
//	    success → append to this worker's shard ledger, release lease
//	    injected crash → return immediately, lease deliberately NOT
//	    released: the process is "dead", the lease must expire and be
//	    stolen, exactly as a real death
//	    other permanent failure → record, release lease, move on
//	  no unit claimable and campaign incomplete → poll-sleep, rescan
//	    (another worker holds the rest; it will finish or its leases
//	    will expire)
//
// A crash "death" returns runner.ErrCrash with Crashed=true so a
// chaos harness can restart the worker in a loop. Permanent unit
// failures are aggregated and returned once every unit has been
// decided (done by someone, or failed here).
func RunWorker(ctx context.Context, dir string, task Task, cfg Config) (WorkerStats, error) {
	var stats WorkerStats
	if err := cfg.fill(); err != nil {
		return stats, err
	}
	c, err := Open(dir)
	if err != nil {
		return stats, err
	}
	led, err := openLedger(dir, cfg.ID, c.man.Fingerprint, cfg.Sync)
	if err != nil {
		return stats, err
	}
	defer led.Close() //pbcheck:ignore errdiscard commit errors are sticky and already returned by Commit; the success path closes explicitly

	units := c.man.Units()
	failed := make(map[Unit]unitError)
	dist := obs.DistEvents(cfg.Recorder)

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Passes++
		done, err := c.doneUnits()
		if err != nil {
			return stats, err
		}
		remaining := 0
		progressed := false
		for i := range units {
			// Rotate the scan start by a hash of the worker ID so N
			// workers fan out across the campaign instead of convoying
			// on unit 0.
			u := units[(i+rotation(cfg.ID, len(units)))%len(units)]
			if done[u] {
				continue
			}
			if _, ok := failed[u]; ok {
				continue
			}
			remaining++
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			res, err := claim(dir, u, cfg.ID, cfg.LeaseTTL, cfg.now())
			if err != nil {
				return stats, err
			}
			if res == claimHeld {
				continue
			}
			stats.Claimed++
			if res == claimStolen {
				stats.Stolen++
			}
			dist.LeaseClaimed(u.Scope, u.Row, res == claimStolen)

			// Units change hands via steals; re-check the ledgers in
			// case the previous owner committed before losing the lease.
			if committed, err := c.unitDone(u); err != nil {
				release(dir, u, cfg.ID)
				return stats, err
			} else if committed {
				release(dir, u, cfg.ID)
				progressed = true
				continue
			}

			stop := startHeartbeat(dir, u, &cfg, dist)
			v, rerr := runUnit(ctx, u, task, cfg)
			stop()
			if rerr != nil {
				if errors.Is(rerr, runner.ErrCrash) {
					// Simulated process death: vanish without releasing
					// the lease, exactly as a kill -9 would. The lease
					// expires; another worker (or our restarted self)
					// steals it.
					stats.Crashed = true
					if cerr := led.Close(); cerr != nil {
						return stats, cerr
					}
					return stats, rerr
				}
				if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
					release(dir, u, cfg.ID)
					return stats, rerr
				}
				failed[u] = unitError{Unit: u, Err: rerr}
				release(dir, u, cfg.ID)
				progressed = true
				continue
			}
			if err := led.Commit(u.Scope, u.Row, v); err != nil {
				release(dir, u, cfg.ID)
				return stats, fmt.Errorf("dist: commit %s: %w", u, err)
			}
			stats.Committed++
			dist.CommitAppended(cfg.ID, u.Scope, u.Row)
			release(dir, u, cfg.ID)
			progressed = true
		}
		if remaining == 0 {
			if len(failed) > 0 {
				errs := make([]error, 0, len(failed))
				for _, u := range units {
					if fe, ok := failed[u]; ok {
						errs = append(errs, fe)
					}
				}
				if cerr := led.Close(); cerr != nil {
					errs = append(errs, cerr)
				}
				return stats, fmt.Errorf("dist: %d units failed permanently: %w", len(failed), errors.Join(errs...))
			}
			return stats, led.Close()
		}
		if !progressed {
			// Everything left is leased elsewhere. Wait for those
			// workers to finish or their leases to expire.
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(cfg.Poll):
			}
		}
	}
}

// runUnit executes one unit through runner.Evaluate to inherit its
// retry, timeout, and panic-recovery machinery. Evaluate sees a
// one-row problem, so cfg.Runner.Wrap — which keys fault injection by
// row number — is adapted to observe the real campaign row rather
// than Evaluate's index 0.
func runUnit(ctx context.Context, u Unit, task Task, cfg Config) (float64, error) {
	rcfg := cfg.Runner
	rcfg.Parallelism = 1
	rcfg.Checkpoint = nil
	rcfg.Scope = u.Scope
	rcfg.Recorder = cfg.Recorder
	base := func(ctx context.Context, _ int) (float64, error) {
		return task(ctx, u.Scope, u.Row)
	}
	if w := rcfg.Wrap; w != nil {
		wrapped := w(func(ctx context.Context, i int) (float64, error) {
			return task(ctx, u.Scope, i)
		})
		base = func(ctx context.Context, _ int) (float64, error) {
			return wrapped(ctx, u.Row)
		}
		rcfg.Wrap = nil
	}
	vals, err := runner.Evaluate(ctx, 1, base, rcfg)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// startHeartbeat renews the lease on u every cfg.Heartbeat until the
// returned stop function is called. A renewal that finds the lease
// lost reports it and stops renewing — the unit keeps executing; its
// commit stays safe because merge proves duplicates identical.
func startHeartbeat(dir string, u Unit, cfg *Config, dist obs.DistRecorder) (stop func()) {
	if cfg.Heartbeat < 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				ok, err := renew(dir, u, cfg.ID, cfg.LeaseTTL, cfg.now())
				if err != nil || !ok {
					if !ok {
						dist.LeaseLost(u.Scope, u.Row)
					}
					return
				}
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// doneUnits scans every shard ledger for committed units.
func (c *Campaign) doneUnits() (map[Unit]bool, error) {
	paths, err := c.shardPaths()
	if err != nil {
		return nil, err
	}
	done := make(map[Unit]bool)
	for _, p := range paths {
		entries, _, err := readLedger(p, c.man.Fingerprint)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			done[e.Unit] = true
		}
	}
	return done, nil
}

// unitDone reports whether any shard has committed u.
func (c *Campaign) unitDone(u Unit) (bool, error) {
	done, err := c.doneUnits()
	if err != nil {
		return false, err
	}
	return done[u], nil
}

// rotation maps a worker ID to a stable scan offset in [0, n).
func rotation(id string, n int) int {
	if n <= 0 {
		return 0
	}
	h := uint64(1469598103934665603) // FNV-1a
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}
