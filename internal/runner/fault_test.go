package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultsDeterministicFailures(t *testing.T) {
	// Two harnesses with the same seed must inject the identical
	// failure pattern over the identical attempt schedule.
	run := func(seed int64) []bool {
		f := &Faults{Seed: seed, FailProb: 0.4}
		task := f.Wrap(func(context.Context, int) (float64, error) { return 1, nil })
		var pattern []bool
		for row := 0; row < 50; row++ {
			_, err := task(context.Background(), row)
			pattern = append(pattern, err != nil)
		}
		return pattern
	}
	a, b := run(9), run(9)
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: same seed diverged", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Errorf("FailProb 0.4 produced %d/%d failures; injection looks broken", failures, len(a))
	}
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical pattern")
	}
}

func TestFaultsDeterministicModes(t *testing.T) {
	f := &Faults{
		FailRows:  map[int]int{1: 2},
		PanicRows: map[int]int{2: 1},
	}
	task := f.Wrap(func(_ context.Context, i int) (float64, error) { return float64(i), nil })

	// Row 1: exactly the first two attempts fail.
	for attempt := 0; attempt < 4; attempt++ {
		_, err := task(context.Background(), 1)
		wantErr := attempt < 2
		if (err != nil) != wantErr {
			t.Errorf("row 1 attempt %d: err=%v, want failure=%t", attempt, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Errorf("row 1 attempt %d: error %v is not ErrInjected", attempt, err)
		}
	}
	// Row 2: first attempt panics, second succeeds.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("row 2 first attempt did not panic")
			}
		}()
		task(context.Background(), 2)
	}()
	if v, err := task(context.Background(), 2); err != nil || v != 2 {
		t.Errorf("row 2 second attempt: v=%v err=%v", v, err)
	}
	// Row 0: untouched.
	if v, err := task(context.Background(), 0); err != nil || v != 0 {
		t.Errorf("row 0: v=%v err=%v", v, err)
	}
}

func TestFaultsCrashRows(t *testing.T) {
	executed := 0
	f := &Faults{CrashRows: map[int]int{3: 2}}
	task := f.Wrap(func(_ context.Context, i int) (float64, error) {
		executed++
		return float64(i) * 10, nil
	})

	// The first two attempts of row 3 execute the task fully, then die
	// at the commit boundary with ErrCrash (which is also ErrInjected).
	for attempt := 0; attempt < 2; attempt++ {
		v, err := task(context.Background(), 3)
		if !errors.Is(err, ErrCrash) || !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err=%v, want ErrCrash", attempt, err)
		}
		if v != 0 {
			t.Errorf("attempt %d: crashed attempt leaked value %v", attempt, v)
		}
	}
	if executed != 2 {
		t.Errorf("task executed %d times before the crashes, want 2 (crash is AFTER execution)", executed)
	}
	// The third attempt commits.
	if v, err := task(context.Background(), 3); err != nil || v != 30 {
		t.Errorf("post-crash attempt: v=%v err=%v", v, err)
	}
	// Other rows never crash.
	if v, err := task(context.Background(), 0); err != nil || v != 0 {
		t.Errorf("row 0: v=%v err=%v", v, err)
	}

	// Through the runner, a crashing row converges with retries — the
	// in-process analogue of kill/restart convergence.
	f2 := &Faults{CrashRows: map[int]int{1: 2}}
	vals, err := Evaluate(context.Background(), 3,
		func(_ context.Context, i int) (float64, error) { return float64(i), nil },
		Config{Retries: 2, Wrap: f2.Wrap, Backoff: time.Microsecond})
	if err != nil {
		t.Fatalf("crashing row did not converge under retries: %v", err)
	}
	if vals[1] != 1 {
		t.Errorf("row 1 = %v after crash retries, want 1", vals[1])
	}
}

func TestFaultsSlowRowHonorsContext(t *testing.T) {
	f := &Faults{SlowRows: map[int]time.Duration{0: time.Minute}}
	task := f.Wrap(func(context.Context, int) (float64, error) { return 1, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := task(ctx, 0)
	if err == nil {
		t.Fatal("slow attempt ignored its deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow row blocked for %v despite cancelled context", elapsed)
	}
	// Second attempt is past SlowAttempts: fast and successful.
	if v, err := task(context.Background(), 0); err != nil || v != 1 {
		t.Errorf("second attempt: v=%v err=%v", v, err)
	}
}
