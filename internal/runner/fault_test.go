package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultsDeterministicFailures(t *testing.T) {
	// Two harnesses with the same seed must inject the identical
	// failure pattern over the identical attempt schedule.
	run := func(seed int64) []bool {
		f := &Faults{Seed: seed, FailProb: 0.4}
		task := f.Wrap(func(context.Context, int) (float64, error) { return 1, nil })
		var pattern []bool
		for row := 0; row < 50; row++ {
			_, err := task(context.Background(), row)
			pattern = append(pattern, err != nil)
		}
		return pattern
	}
	a, b := run(9), run(9)
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: same seed diverged", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Errorf("FailProb 0.4 produced %d/%d failures; injection looks broken", failures, len(a))
	}
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical pattern")
	}
}

func TestFaultsDeterministicModes(t *testing.T) {
	f := &Faults{
		FailRows:  map[int]int{1: 2},
		PanicRows: map[int]int{2: 1},
	}
	task := f.Wrap(func(_ context.Context, i int) (float64, error) { return float64(i), nil })

	// Row 1: exactly the first two attempts fail.
	for attempt := 0; attempt < 4; attempt++ {
		_, err := task(context.Background(), 1)
		wantErr := attempt < 2
		if (err != nil) != wantErr {
			t.Errorf("row 1 attempt %d: err=%v, want failure=%t", attempt, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Errorf("row 1 attempt %d: error %v is not ErrInjected", attempt, err)
		}
	}
	// Row 2: first attempt panics, second succeeds.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("row 2 first attempt did not panic")
			}
		}()
		task(context.Background(), 2)
	}()
	if v, err := task(context.Background(), 2); err != nil || v != 2 {
		t.Errorf("row 2 second attempt: v=%v err=%v", v, err)
	}
	// Row 0: untouched.
	if v, err := task(context.Background(), 0); err != nil || v != 0 {
		t.Errorf("row 0: v=%v err=%v", v, err)
	}
}

func TestFaultsSlowRowHonorsContext(t *testing.T) {
	f := &Faults{SlowRows: map[int]time.Duration{0: time.Minute}}
	task := f.Wrap(func(context.Context, int) (float64, error) { return 1, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := task(ctx, 0)
	if err == nil {
		t.Fatal("slow attempt ignored its deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow row blocked for %v despite cancelled context", elapsed)
	}
	// Second attempt is past SlowAttempts: fast and successful.
	if v, err := task(context.Background(), 0); err != nil || v != 1 {
		t.Errorf("second attempt: v=%v err=%v", v, err)
	}
}
