// Package runner is the fault-tolerant evaluation engine behind every
// Plackett-Burman experiment in this repository. A PB suite at paper
// scale is a large fan-out — the X=44 foldover design is 88
// configurations × 13 benchmarks ≈ 1,144 independent simulations — and
// at that scale partial failure is the norm, not the exception. The
// runner therefore treats every row as fallible work: rows are
// evaluated by a bounded worker pool with context cancellation,
// per-attempt timeouts, retry with capped exponential backoff and
// deterministic jitter, panic recovery (a crashed worker becomes a
// per-row error, never a dead process), and optional JSONL
// checkpointing so an interrupted suite resumes exactly where it
// stopped.
//
// The degradation policy is strict: a row that exhausts its retries
// fails the whole evaluation with an aggregate *RunError naming every
// failed row — the runner never substitutes a silent NaN that would
// corrupt downstream effects and ranks.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pbsim/internal/obs"
)

// Task computes the response value of one row. The context carries the
// per-attempt deadline and the run's cancellation; long tasks should
// check it cooperatively. Tasks must be safe for concurrent use.
type Task func(ctx context.Context, row int) (float64, error)

// Default retry pacing used when a Config enables retries without
// specifying Backoff / BackoffCap.
const (
	DefaultBackoff    = 100 * time.Millisecond
	DefaultBackoffCap = 5 * time.Second
)

// Config tunes one Evaluate call. The zero value is a plain parallel
// evaluation: GOMAXPROCS workers, no timeout, no retries, no
// checkpoint.
type Config struct {
	// Parallelism bounds the number of concurrently evaluated rows
	// (GOMAXPROCS when zero or negative).
	Parallelism int
	// Retries is the number of extra attempts after the first; a row
	// is failed permanently once 1+Retries attempts have errored.
	Retries int
	// Timeout bounds each attempt; zero means no per-attempt deadline.
	// Enforcement is cooperative: the attempt's context expires and
	// the task is expected to notice.
	Timeout time.Duration
	// Backoff is the base delay before the first retry; it doubles on
	// every subsequent retry up to BackoffCap. Zero selects
	// DefaultBackoff when Retries > 0.
	Backoff time.Duration
	// BackoffCap bounds the (pre-jitter) retry delay. Zero selects
	// DefaultBackoffCap.
	BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter: the same
	// (seed, row, attempt) always yields the same delay.
	Seed int64
	// Checkpoint, when non-nil, is consulted before evaluating a row
	// and appended to after every successful one, keyed by Scope.
	Checkpoint *Checkpoint
	// Scope namespaces this evaluation's rows inside the checkpoint
	// (e.g. the benchmark name); evaluations with different scopes
	// share one checkpoint file without colliding.
	Scope string
	// Wrap, when non-nil, decorates the task before evaluation; it is
	// the hook the fault-injection harness (Faults.Wrap) plugs into.
	Wrap func(Task) Task
	// OnRetry, when non-nil, is called before each backoff sleep.
	OnRetry func(scope string, row, attempt int, delay time.Duration, err error)
	// OnRow, when non-nil, is called after each row completes,
	// including rows restored from the checkpoint.
	OnRow func(scope string, row int, value float64, fromCheckpoint bool)
	// Recorder, when non-nil, observes the evaluation: run start and
	// finish, per-row queue wait, worker occupancy, per-attempt
	// latency with classified outcome (error/panic/timeout), retries,
	// completions (checkpoint restores included), and permanent
	// failures. A nil Recorder adds zero overhead — not even clock
	// reads — and obs.Nop adds zero allocations (see the benchmark in
	// this package). Recorders only observe; scheduling, retry
	// decisions, and results are bit-identical with or without one.
	Recorder obs.Recorder

	// sleep is the backoff clock, injectable by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// RowError records the permanent failure of one row after all attempts
// were exhausted.
type RowError struct {
	Scope    string
	Row      int
	Attempts int
	Err      error
}

func (e *RowError) Error() string {
	where := fmt.Sprintf("row %d", e.Row)
	if e.Scope != "" {
		where = fmt.Sprintf("%s %s", e.Scope, where)
	}
	return fmt.Sprintf("%s failed after %d attempt(s): %v", where, e.Attempts, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// RunError aggregates every row that failed permanently during one
// Evaluate call. Successful rows are still present in the returned
// slice, but the caller must not use it: partial responses would
// silently corrupt effects and ranks.
type RunError struct {
	N    int // total rows in the evaluation
	Rows []*RowError
}

func (e *RunError) Error() string {
	msg := fmt.Sprintf("runner: %d of %d rows failed permanently; first: %v", len(e.Rows), e.N, e.Rows[0])
	if len(e.Rows) > 1 {
		msg += fmt.Sprintf(" (and %d more)", len(e.Rows)-1)
	}
	return msg
}

// Unwrap exposes the individual row errors to errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Rows))
	for i, r := range e.Rows {
		errs[i] = r
	}
	return errs
}

// PanicError is the error a recovered worker panic is converted into.
// It is retryable like any other attempt error.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Evaluate computes task(ctx, i) for every i in [0, n) using a bounded
// worker pool and returns the n response values in row order.
//
// Failure semantics:
//   - An attempt that returns an error or panics is retried up to
//     cfg.Retries times with capped exponential backoff and
//     deterministic jitter.
//   - A row that exhausts its attempts is recorded and evaluation of
//     the remaining rows continues (so a checkpoint captures as much
//     completed work as possible); Evaluate then returns a *RunError
//     aggregating every failed row.
//   - Cancelling ctx stops the pool promptly: workers take no new rows,
//     in-flight attempts see their context expire, and Evaluate joins
//     every worker before returning ctx's error. No goroutines leak.
func Evaluate(ctx context.Context, n int, task Task, cfg Config) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative row count %d", n)
	}
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	if cfg.sleep == nil {
		cfg.sleep = ctxSleep
	}
	if cfg.Wrap != nil {
		task = cfg.Wrap(task)
	}
	// Observability: a nil Recorder costs nothing (no clock reads);
	// any non-nil Recorder — including obs.Nop — exercises the full
	// instrumentation path so its overhead can be benchmarked.
	rec := cfg.Recorder
	instrumented := rec != nil
	if !instrumented {
		rec = obs.Nop{}
	}
	var runStart time.Time
	if instrumented {
		runStart = time.Now()
	}
	rec.RunStarted(cfg.Scope, n)

	responses := make([]float64, n)
	var (
		next   atomic.Int64 // replaces the historical mutex-guarded counter
		mu     sync.Mutex   // guards failed
		failed []*RowError
		wg     sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				var rowStart time.Time
				if instrumented {
					rowStart = time.Now()
					rec.QueueWait(cfg.Scope, i, rowStart.Sub(runStart))
					rec.WorkerActive(1)
				}
				if cfg.Checkpoint != nil {
					if v, ok := cfg.Checkpoint.Lookup(cfg.Scope, i); ok {
						//pbcheck:ignore racecheck each row index i is claimed by exactly one worker via the atomic counter, so writes to responses land on disjoint elements
						responses[i] = v
						rec.RowFinished(cfg.Scope, i, v, 0, 0, true)
						rec.WorkerActive(-1)
						if cfg.OnRow != nil {
							cfg.OnRow(cfg.Scope, i, v, true)
						}
						continue
					}
				}
				v, attempts, err := evaluateRow(ctx, task, i, cfg, rec, instrumented)
				if err != nil {
					rec.WorkerActive(-1)
					if ctx.Err() != nil {
						// The run was cancelled; the row did not fail
						// on its own merits.
						return
					}
					rec.RowFailed(cfg.Scope, i, err.Attempts, err.Err)
					mu.Lock()
					failed = append(failed, err)
					mu.Unlock()
					continue
				}
				//pbcheck:ignore racecheck each row index i is claimed by exactly one worker via the atomic counter, so writes to responses land on disjoint elements
				responses[i] = v
				if cfg.Checkpoint != nil {
					if cerr := cfg.Checkpoint.Record(cfg.Scope, i, v); cerr != nil {
						werr := fmt.Errorf("checkpoint write: %w", cerr)
						rec.RowFailed(cfg.Scope, i, attempts, werr)
						rec.WorkerActive(-1)
						mu.Lock()
						failed = append(failed, &RowError{Scope: cfg.Scope, Row: i, Attempts: 1, Err: werr})
						mu.Unlock()
						continue
					}
				}
				var rowLatency time.Duration
				if instrumented {
					rowLatency = time.Since(rowStart)
				}
				rec.RowFinished(cfg.Scope, i, v, rowLatency, attempts, false)
				rec.WorkerActive(-1)
				if cfg.OnRow != nil {
					cfg.OnRow(cfg.Scope, i, v, false)
				}
			}
		}()
	}
	wg.Wait()
	var runElapsed time.Duration
	if instrumented {
		runElapsed = time.Since(runStart)
	}
	rec.RunFinished(cfg.Scope, runElapsed)
	if err := ctx.Err(); err != nil {
		return responses, fmt.Errorf("runner: evaluation interrupted: %w", err)
	}
	if len(failed) > 0 {
		sortRowErrors(failed)
		return responses, &RunError{N: n, Rows: failed}
	}
	return responses, nil
}

// evaluateRow runs one row's full attempt loop, returning the value
// and the number of attempts consumed. It returns a *RowError only
// when the row fails permanently; cancellation of the parent context
// surfaces as an error the caller discards after checking ctx.
func evaluateRow(ctx context.Context, task Task, row int, cfg Config, rec obs.Recorder, instrumented bool) (float64, int, *RowError) {
	var lastErr error
	attempts := cfg.Retries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			return 0, attempt, &RowError{Scope: cfg.Scope, Row: row, Attempts: attempt, Err: ctx.Err()}
		}
		var attemptStart time.Time
		if instrumented {
			attemptStart = time.Now()
		}
		v, err := attemptRow(ctx, task, row, cfg.Timeout)
		if instrumented {
			rec.AttemptDone(cfg.Scope, row, attempt, time.Since(attemptStart), classifyOutcome(err), err)
		}
		if err == nil {
			return v, attempt + 1, nil
		}
		lastErr = err
		if attempt == attempts-1 || ctx.Err() != nil {
			break
		}
		delay := backoffDelay(cfg, row, attempt)
		rec.RowRetried(cfg.Scope, row, attempt+1, delay, err)
		if cfg.OnRetry != nil {
			cfg.OnRetry(cfg.Scope, row, attempt+1, delay, err)
		}
		if cfg.sleep(ctx, delay) != nil {
			break // cancelled during backoff
		}
	}
	return 0, attempts, &RowError{Scope: cfg.Scope, Row: row, Attempts: attempts, Err: lastErr}
}

// classifyOutcome maps an attempt error onto the obs event taxonomy.
// The runner owns this mapping because only it knows its error types;
// package obs stays free of module dependencies.
func classifyOutcome(err error) obs.Outcome {
	if err == nil {
		return obs.OK
	}
	var p *PanicError
	if errors.As(err, &p) {
		return obs.Panicked
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return obs.TimedOut
	}
	return obs.Errored
}

// attemptRow runs a single attempt under the per-attempt timeout,
// converting a panic into a *PanicError instead of killing the worker.
func attemptRow(ctx context.Context, task Task, row int, timeout time.Duration) (v float64, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return task(ctx, row)
}

// backoffDelay computes the pre-retry sleep for (row, attempt):
// exponential growth from cfg.Backoff, capped at cfg.BackoffCap, with
// deterministic "equal jitter" — the delay lands in [d/2, d) where d
// is the capped exponential value, at a point fixed by cfg.Seed. The
// jitter decorrelates workers that failed together (e.g. a shared
// resource hiccup) without sacrificing reproducibility.
func backoffDelay(cfg Config, row, attempt int) time.Duration {
	d := cfg.Backoff
	for i := 0; i < attempt && d < cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > cfg.BackoffCap {
		d = cfg.BackoffCap
	}
	u := hashFloat(cfg.Seed, uint64(row), uint64(attempt))
	return d/2 + time.Duration(u*float64(d/2))
}

// hashFloat maps (seed, a, b) to a uniform float64 in [0, 1) via a
// splitmix64 finalizer. It is the runner's only randomness source, so
// identical configurations replay identical schedules.
func hashFloat(seed int64, a, b uint64) float64 {
	x := uint64(seed) ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// ctxSleep blocks for d or until ctx is cancelled.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sortRowErrors orders the aggregate by row index so error output is
// stable regardless of worker scheduling.
func sortRowErrors(errs []*RowError) {
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j].Row < errs[j-1].Row; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
}

// Cancelled reports whether err (or anything it wraps) is a context
// cancellation or deadline error, the signature of an interrupted run
// as opposed to a genuinely failed one.
func Cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
