package stats

import (
	"fmt"
	"math"
)

// SpearmanRanks computes the Spearman rank-correlation coefficient
// between two rank vectors over the same items: 1 - 6*sum(d^2) /
// (n*(n^2-1)), where d is the per-item rank difference. Both inputs
// must be permutations of 1..n (the form pb.Ranks produces — ties are
// already broken by index there), which is the case the closed-form
// formula is exact for. A perfect agreement yields +1, a perfect
// reversal -1.
func SpearmanRanks(a, b []int) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("stats: rank vectors differ in length (%d vs %d)", n, len(b))
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: spearman needs >= 2 items, got %d", n)
	}
	seenA := make([]bool, n+1)
	seenB := make([]bool, n+1)
	sumD2 := 0.0
	for i := 0; i < n; i++ {
		if a[i] < 1 || a[i] > n || seenA[a[i]] {
			return 0, fmt.Errorf("stats: first rank vector is not a permutation of 1..%d", n)
		}
		if b[i] < 1 || b[i] > n || seenB[b[i]] {
			return 0, fmt.Errorf("stats: second rank vector is not a permutation of 1..%d", n)
		}
		seenA[a[i]], seenB[b[i]] = true, true
		d := float64(a[i] - b[i])
		sumD2 += d * d
	}
	nf := float64(n)
	return 1 - 6*sumD2/(nf*(nf*nf-1)), nil
}

// MeanCI95 returns the sample mean of xs with its two-sided 95%
// confidence interval under the normal approximation: mean ±
// 1.96*s/sqrt(n). For n == 1 the interval collapses to the point; for
// an empty sample everything is NaN. The approximation is the
// aggregation the assessment harness uses over hundreds of surfaces
// per family, where n is comfortably large.
func MeanCI95(xs []float64) (mean, lo, hi float64) {
	n := len(xs)
	if n == 0 {
		nan := math.NaN()
		return nan, nan, nan
	}
	mean = Mean(xs)
	if n == 1 {
		return mean, mean, mean
	}
	half := 1.96 * StdDev(xs) / math.Sqrt(float64(n))
	return mean, mean - half, mean + half
}
