package stats

import (
	"math"
	"testing"
)

func TestSpearmanRanks(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
		want float64
	}{
		{"identity", []int{1, 2, 3, 4, 5}, []int{1, 2, 3, 4, 5}, 1},
		{"reversal", []int{1, 2, 3, 4, 5}, []int{5, 4, 3, 2, 1}, -1},
		{"one swap", []int{1, 2, 3, 4}, []int{2, 1, 3, 4}, 0.8},
		{"pair", []int{1, 2}, []int{2, 1}, -1},
	}
	for _, c := range cases {
		got, err := SpearmanRanks(c.a, c.b)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("%s: got %g, want %g", c.name, got, c.want)
		}
	}
}

func TestSpearmanRanksErrors(t *testing.T) {
	if _, err := SpearmanRanks([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpearmanRanks([]int{1}, []int{1}); err == nil {
		t.Error("single item accepted")
	}
	if _, err := SpearmanRanks([]int{1, 1}, []int{1, 2}); err == nil {
		t.Error("duplicate rank accepted")
	}
	if _, err := SpearmanRanks([]int{0, 1}, []int{1, 2}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := SpearmanRanks([]int{1, 2}, []int{2, 3}); err == nil {
		t.Error("non-permutation second vector accepted")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, lo, hi := MeanCI95(nil)
	if !math.IsNaN(mean) || !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("empty sample: got (%g, %g, %g), want NaNs", mean, lo, hi)
	}
	mean, lo, hi = MeanCI95([]float64{3})
	if !ApproxEqual(mean, 3, 0) || !ApproxEqual(lo, 3, 0) || !ApproxEqual(hi, 3, 0) {
		t.Errorf("single sample: got (%g, %g, %g)", mean, lo, hi)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, lo, hi = MeanCI95(xs)
	if !ApproxEqual(mean, 5, 1e-12) {
		t.Errorf("mean = %g", mean)
	}
	half := 1.96 * StdDev(xs) / math.Sqrt(8)
	if !ApproxEqual(hi-mean, half, 1e-12) || !ApproxEqual(mean-lo, half, 1e-12) {
		t.Errorf("interval (%g, %g) not symmetric half-width %g", lo, hi, half)
	}
	if lo >= mean || hi <= mean {
		t.Errorf("degenerate interval (%g, %g) around %g", lo, hi, mean)
	}
}
