package stats

import "fmt"

// OneAtATimeResult holds a classical single-parameter sensitivity
// analysis: a base configuration plus one run per parameter with only
// that parameter changed.
type OneAtATimeResult struct {
	// Base is the response of the all-base configuration.
	Base float64
	// Responses[j] is the response with parameter j flipped.
	Responses []float64
	// Deltas[j] = Responses[j] - Base, the apparent effect of
	// parameter j at this particular base point.
	Deltas []float64
}

// OneAtATime runs the N+1-simulation design of the paper's Table 1:
// evaluate the base point, then flip one factor at a time. baseLevels
// gives the level of every factor in the base configuration; the
// response receives a full level vector per run.
//
// This design is implemented as the straw man it is: its deltas are
// valid only at the chosen base point, it averages over nothing, and
// it cannot detect interactions (see the package tests, which
// construct a response where one-at-a-time reports zero effect for a
// factor a PB design correctly flags).
func OneAtATime(baseLevels []int8, response func([]int8) float64) (*OneAtATimeResult, error) {
	n := len(baseLevels)
	if n == 0 {
		return nil, fmt.Errorf("stats: one-at-a-time needs at least one factor")
	}
	for j, lv := range baseLevels {
		if lv != 1 && lv != -1 {
			return nil, fmt.Errorf("stats: base level %d of factor %d is not +1/-1", lv, j)
		}
	}
	res := &OneAtATimeResult{
		Responses: make([]float64, n),
		Deltas:    make([]float64, n),
	}
	work := make([]int8, n)
	copy(work, baseLevels)
	res.Base = response(work)
	for j := 0; j < n; j++ {
		copy(work, baseLevels)
		work[j] = -work[j]
		res.Responses[j] = response(work)
		res.Deltas[j] = res.Responses[j] - res.Base
	}
	return res, nil
}

// Runs returns the number of simulations the design consumed: N+1.
func (r *OneAtATimeResult) Runs() int { return len(r.Responses) + 1 }
