package stats

import (
	"math"
	"testing"
)

const eps = 1e-12

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, 6}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want) {
			t.Errorf("Mean(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(empty) = %v, want 0", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(n=1) = %v, want 0 (undefined sample variance reported as 0)", got)
	}
	// Hand-computed: {2, 4, 4, 4, 5, 5, 7, 9} has sample variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Variance(constant) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{9}, 9},
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almostEqual(got, c.want) {
			t.Errorf("Median(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	// The input must not be reordered.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	if _, err := GeometricMean(nil); err == nil {
		t.Error("GeometricMean(empty) should error")
	}
	if _, err := GeometricMean([]float64{1, 0, 2}); err == nil {
		t.Error("GeometricMean with zero should error")
	}
	if _, err := GeometricMean([]float64{1, -2}); err == nil {
		t.Error("GeometricMean with negative should error")
	}
	got, err := GeometricMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0; !almostEqual(got, want) {
		t.Errorf("GeometricMean(2, 8) = %v, want %v", got, want)
	}
	got, err = GeometricMean([]float64{42})
	if err != nil || !almostEqual(got, 42) {
		t.Errorf("GeometricMean(42) = %v, %v; want 42, nil", got, err)
	}
}

func TestHarmonicMean(t *testing.T) {
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("HarmonicMean(empty) should error")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("HarmonicMean with zero should error")
	}
	if _, err := HarmonicMean([]float64{-1}); err == nil {
		t.Error("HarmonicMean with negative should error")
	}
	got, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0 / (1 + 0.5 + 0.25); !almostEqual(got, want) {
		t.Errorf("HarmonicMean(1,2,4) = %v, want %v", got, want)
	}
}

// TestSpeedup pins the division-edge behavior: a 0/0 "speedup" is
// undefined and must be NaN, never +Inf.
func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 5); !almostEqual(got, 2) {
		t.Errorf("Speedup(10, 5) = %v, want 2", got)
	}
	if got := Speedup(5, 10); !almostEqual(got, 0.5) {
		t.Errorf("Speedup(5, 10) = %v, want 0.5", got)
	}
	if got := Speedup(10, 0); !math.IsInf(got, 1) {
		t.Errorf("Speedup(10, 0) = %v, want +Inf", got)
	}
	if got := Speedup(0, 0); !math.IsNaN(got) {
		t.Errorf("Speedup(0, 0) = %v, want NaN", got)
	}
	if got := Speedup(0, 10); got != 0 {
		t.Errorf("Speedup(0, 10) = %v, want 0", got)
	}
}
