package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFullFactorialShape(t *testing.T) {
	rows, err := FullFactorial(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("2^3 rows = %d, want 8", len(rows))
	}
	for i, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row %d has %d levels", i, len(row))
		}
	}
	// Row 0 all-low, row 7 all-high, row 5 = binary 101.
	for j, want := range []int8{-1, -1, -1} {
		if rows[0][j] != want {
			t.Errorf("row 0 factor %d = %d", j, rows[0][j])
		}
	}
	for j, want := range []int8{1, 1, 1} {
		if rows[7][j] != want {
			t.Errorf("row 7 factor %d = %d", j, rows[7][j])
		}
	}
	for j, want := range []int8{1, -1, 1} {
		if rows[5][j] != want {
			t.Errorf("row 5 factor %d = %d", j, rows[5][j])
		}
	}
	if _, err := FullFactorial(0); err == nil {
		t.Error("FullFactorial(0) should fail")
	}
	if _, err := FullFactorial(21); err == nil {
		t.Error("FullFactorial(21) should fail")
	}
}

func TestANOVAAdditiveModel(t *testing.T) {
	// y = 100 + 10*A + 3*B, no interaction: effects must be exactly
	// 20 and 6 (effect = high-low change = 2*coefficient) and the AxB
	// interaction share must be zero.
	rows, _ := FullFactorial(2)
	responses := make([]float64, len(rows))
	for i, r := range rows {
		responses[i] = 100 + 10*float64(r[0]) + 3*float64(r[1])
	}
	res, err := ANOVA(2, responses)
	if err != nil {
		t.Fatal(err)
	}
	main := res.MainEffects()
	if math.Abs(main[0].Effect-20) > 1e-12 {
		t.Errorf("effect(A) = %g, want 20", main[0].Effect)
	}
	if math.Abs(main[1].Effect-6) > 1e-12 {
		t.Errorf("effect(B) = %g, want 6", main[1].Effect)
	}
	if share := res.InteractionShare(); math.Abs(share) > 1e-9 {
		t.Errorf("interaction share = %g, want 0", share)
	}
	if res.GrandMean != 100 {
		t.Errorf("grand mean = %g, want 100", res.GrandMean)
	}
}

func TestANOVAPureInteraction(t *testing.T) {
	// y = 5*A*B: all variation must land on the AxB term.
	rows, _ := FullFactorial(2)
	responses := make([]float64, len(rows))
	for i, r := range rows {
		responses[i] = 5 * float64(r[0]) * float64(r[1])
	}
	res, err := ANOVA(2, responses)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Terms[0]
	if len(top.Factors) != 2 {
		t.Fatalf("dominant term is %v, want the AxB interaction", top.Factors)
	}
	if math.Abs(top.Percent-100) > 1e-9 {
		t.Errorf("AxB percent = %g, want 100", top.Percent)
	}
	if math.Abs(res.InteractionShare()-100) > 1e-9 {
		t.Errorf("interaction share = %g, want 100", res.InteractionShare())
	}
}

func TestANOVASumOfSquaresDecomposition(t *testing.T) {
	// For any single-replicate 2^k experiment, the term SS must sum
	// exactly to the total SS (orthogonal decomposition).
	f := func(seed int64) bool {
		responses := make([]float64, 16)
		s := uint64(seed)
		for i := range responses {
			s = s*6364136223846793005 + 1442695040888963407
			responses[i] = float64(s%10000) / 10
		}
		res, err := ANOVA(4, responses)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, term := range res.Terms {
			sum += term.SS
		}
		return math.Abs(sum-res.TotalSS) <= 1e-6*(1+res.TotalSS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestANOVAResponseLengthCheck(t *testing.T) {
	if _, err := ANOVA(3, make([]float64, 7)); err == nil {
		t.Error("ANOVA should reject a short response vector")
	}
}

func TestTermLabel(t *testing.T) {
	term := ANOVATerm{Factors: []int{0, 2}}
	if got := term.Label(nil); got != "AxC" {
		t.Errorf("Label(nil) = %q, want AxC", got)
	}
	if got := term.Label([]string{"ROB", "LSQ", "L2"}); got != "ROBxL2" {
		t.Errorf("Label(names) = %q", got)
	}
}

func TestCountSimulations(t *testing.T) {
	c := CountSimulations(43, 88)
	if c.OneAtATime != 44 {
		t.Errorf("one-at-a-time = %d, want 44", c.OneAtATime)
	}
	if c.PlackettBurman != 88 {
		t.Errorf("PB = %d, want 88", c.PlackettBurman)
	}
	if c.FullFactorial != math.Pow(2, 43) {
		t.Errorf("full factorial = %g", c.FullFactorial)
	}
}

func TestOneAtATime(t *testing.T) {
	// y = 10*A + 2*B: at an all-low base, flipping A changes y by +20.
	resp := func(levels []int8) float64 {
		return 10*float64(levels[0]) + 2*float64(levels[1])
	}
	res, err := OneAtATime([]int8{-1, -1}, resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs() != 3 {
		t.Errorf("runs = %d, want 3", res.Runs())
	}
	if res.Deltas[0] != 20 || res.Deltas[1] != 4 {
		t.Errorf("deltas = %v, want [20 4]", res.Deltas)
	}
	if _, err := OneAtATime(nil, resp); err == nil {
		t.Error("empty base should fail")
	}
	if _, err := OneAtATime([]int8{0}, resp); err == nil {
		t.Error("invalid base level should fail")
	}
}

func TestOneAtATimeMissesInteractions(t *testing.T) {
	// The paper's Section 2.1 failure mode, constructed explicitly:
	// y = A*B. At an all-low base (A=B=-1, y=1), flipping either
	// factor alone gives y=-1, so both deltas are -2 -- but flipping
	// both gives y=1 again. The one-at-a-time design cannot see that
	// the effect of A depends entirely on B. The ANOVA on the same
	// response allocates 100% of variation to AxB.
	resp := func(levels []int8) float64 {
		return float64(levels[0]) * float64(levels[1])
	}
	oat, err := OneAtATime([]int8{-1, -1}, resp)
	if err != nil {
		t.Fatal(err)
	}
	// One-at-a-time sees identical, symmetric "main effects"...
	if oat.Deltas[0] != -2 || oat.Deltas[1] != -2 {
		t.Fatalf("deltas = %v", oat.Deltas)
	}
	// ...while the truth is a pure interaction:
	rows, _ := FullFactorial(2)
	responses := make([]float64, len(rows))
	for i, r := range rows {
		responses[i] = resp(r)
	}
	res, _ := ANOVA(2, responses)
	if res.InteractionShare() < 99.999 {
		t.Errorf("interaction share = %g, want 100", res.InteractionShare())
	}
	main := res.MainEffects()
	if main[0].Effect != 0 || main[1].Effect != 0 {
		t.Errorf("true main effects = %g, %g, want 0, 0", main[0].Effect, main[1].Effect)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %g", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("Median = %g", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %g", m)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || Median(nil) != 0 {
		t.Error("empty-input conventions violated")
	}
	gm, err := GeometricMean([]float64{1, 4, 16})
	if err != nil || math.Abs(gm-4) > 1e-12 {
		t.Errorf("GeometricMean = %g, %v", gm, err)
	}
	if _, err := GeometricMean([]float64{1, -2}); err == nil {
		t.Error("GeometricMean should reject non-positive samples")
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("GeometricMean should reject empty input")
	}
	hm, err := HarmonicMean([]float64{1, 1, 2})
	if err != nil || math.Abs(hm-1.2) > 1e-12 {
		t.Errorf("HarmonicMean = %g, %v", hm, err)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("HarmonicMean should reject empty input")
	}
	if _, err := HarmonicMean([]float64{0}); err == nil {
		t.Error("HarmonicMean should reject zero samples")
	}
	if s := Speedup(20, 10); s != 2 {
		t.Errorf("Speedup = %g", s)
	}
	if s := Speedup(20, 0); !math.IsInf(s, 1) {
		t.Errorf("Speedup by zero = %g", s)
	}
}
