package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeometricMean returns the geometric mean of strictly positive
// samples; it errors on non-positive input. SPEC-style summary numbers
// (the Giladi-Ahituv related work in Section 5.3) use this mean.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty sample")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive samples, got %g", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Median returns the median of xs (0 for an empty slice). The input is
// not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Speedup returns base/enhanced, the conventional architecture
// speedup metric for execution times. A zero enhanced time yields
// +Inf (the enhancement eliminated all work), except that 0/0 has no
// defined speedup and yields NaN.
func Speedup(baseTime, enhancedTime float64) float64 {
	if ApproxEqual(enhancedTime, 0, 0) {
		if ApproxEqual(baseTime, 0, 0) {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return baseTime / enhancedTime
}

// HarmonicMean returns the harmonic mean of strictly positive samples,
// the correct mean for rates such as IPC.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: harmonic mean of empty sample")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean requires positive samples, got %g", x)
		}
		s += 1 / x
	}
	return float64(len(xs)) / s, nil
}
