// Package stats implements the statistical designs the paper compares
// the Plackett-Burman design against (Section 2, Table 1): the
// one-at-a-time single-parameter sensitivity analysis and the full
// 2^k multifactorial design with analysis of variance (ANOVA), plus
// small descriptive-statistics helpers.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// FullFactorial enumerates every combination of k two-level factors:
// 2^k rows of levels, each level -1 or +1. Row i sets factor j high
// when bit j of i is set, so row 0 is all-low and row 2^k-1 all-high.
func FullFactorial(k int) ([][]int8, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("stats: full factorial supports 1..20 factors, got %d", k)
	}
	n := 1 << uint(k)
	rows := make([][]int8, n)
	backing := make([]int8, n*k)
	for i := 0; i < n; i++ {
		row := backing[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			if i&(1<<uint(j)) != 0 {
				row[j] = +1
			} else {
				row[j] = -1
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// ANOVATerm is one effect in a 2^k factorial analysis: a main effect
// (one factor) or an interaction (several factors).
type ANOVATerm struct {
	// Factors holds the indices of the interacting factors; a single
	// index denotes a main effect.
	Factors []int
	// Effect is the classical effect estimate: the average response
	// change when the term's contrast moves from -1 to +1.
	Effect float64
	// SS is the term's sum of squares.
	SS float64
	// Percent is SS as a percentage of the total sum of squares
	// (allocation of variation).
	Percent float64
}

// Label renders the term as "A", "BxC", "AxBxD", ... using the given
// factor names (or letters if names is nil).
func (t *ANOVATerm) Label(names []string) string {
	s := ""
	for i, f := range t.Factors {
		if i > 0 {
			s += "x"
		}
		if names != nil && f < len(names) {
			s += names[f]
		} else {
			s += string(rune('A' + f))
		}
	}
	return s
}

// ANOVAResult is the complete decomposition of a 2^k experiment.
type ANOVAResult struct {
	K     int
	Terms []ANOVATerm // sorted by descending SS
	// TotalSS is the total sum of squares around the grand mean. For a
	// single-replicate 2^k design it equals the sum of all term SS.
	TotalSS   float64
	GrandMean float64
}

// ANOVA performs the full 2^k factorial analysis of variance on a
// single-replicate experiment. responses must follow the FullFactorial
// row order. Every main effect and every interaction up to order k is
// estimated via the Yates/contrast method, and the total variation is
// allocated across the terms (Lilja, "Measuring Computer Performance",
// chapter 9).
func ANOVA(k int, responses []float64) (*ANOVAResult, error) {
	n := 1 << uint(k)
	if len(responses) != n {
		return nil, fmt.Errorf("stats: got %d responses for a 2^%d design (want %d)", len(responses), k, n)
	}
	grand := 0.0
	for _, y := range responses {
		grand += y
	}
	grand /= float64(n)

	res := &ANOVAResult{K: k, GrandMean: grand}
	for _, y := range responses {
		d := y - grand
		res.TotalSS += d * d
	}

	// Every non-empty subset of factors is a term. The contrast of
	// term mask m on row i is the product of the levels of the
	// factors in m, i.e. +1 when popcount(i&m) has even complement...
	// concretely: product = -1 raised to the number of low factors in
	// the subset, which is (bits in m) - (bits in i&m).
	for m := 1; m < n; m++ {
		contrast := 0.0
		for i, y := range responses {
			lowCount := bits.OnesCount(uint(m)) - bits.OnesCount(uint(i&m))
			if lowCount%2 == 0 {
				contrast += y
			} else {
				contrast -= y
			}
		}
		term := ANOVATerm{
			Effect: contrast / float64(n/2),
			SS:     contrast * contrast / float64(n),
		}
		for j := 0; j < k; j++ {
			if m&(1<<uint(j)) != 0 {
				term.Factors = append(term.Factors, j)
			}
		}
		res.Terms = append(res.Terms, term)
	}
	if res.TotalSS > 0 {
		for i := range res.Terms {
			res.Terms[i].Percent = 100 * res.Terms[i].SS / res.TotalSS
		}
	}
	sort.SliceStable(res.Terms, func(a, b int) bool {
		return res.Terms[a].SS > res.Terms[b].SS
	})
	return res, nil
}

// MainEffects returns only the single-factor terms of an ANOVA result,
// indexed by factor.
func (r *ANOVAResult) MainEffects() []ANOVATerm {
	out := make([]ANOVATerm, r.K)
	for _, t := range r.Terms {
		if len(t.Factors) == 1 {
			out[t.Factors[0]] = t
		}
	}
	return out
}

// InteractionShare returns the percentage of total variation explained
// by terms of order >= 2: the quantity whose smallness justifies using
// a PB design instead of a full factorial (paper Section 2.2).
func (r *ANOVAResult) InteractionShare() float64 {
	share := 0.0
	for _, t := range r.Terms {
		if len(t.Factors) >= 2 {
			share += t.Percent
		}
	}
	return share
}

// SimulationCount mirrors the paper's Table 1: the number of
// simulations required by each of the three designs for n two-level
// parameters. PB counts are for the foldover design (2X).
type SimulationCount struct {
	OneAtATime     int
	PlackettBurman int
	FullFactorial  float64 // float64: 2^n overflows int for n >= 63
}

// CountSimulations computes Table 1's middle column for n parameters.
// The PB count is 0 if no supported design size exists.
func CountSimulations(n int, pbRuns int) SimulationCount {
	return SimulationCount{
		OneAtATime:     n + 1,
		PlackettBurman: pbRuns,
		FullFactorial:  math.Pow(2, float64(n)),
	}
}
