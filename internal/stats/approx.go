package stats

import "math"

// ApproxEqual is the repository's approved tolerance comparator: it
// reports whether a and b are equal within the absolute tolerance
// tol. It exists so that no other code needs the raw == / != float
// operators (which the floateq analyzer forbids): every float
// comparison states its tolerance explicitly, and tol = 0 expresses
// an intentional exact comparison rather than an accidental one.
//
// Edge cases are total and deterministic: two NaNs compare equal
// (unlike ==, so a reproducibility check can assert that two runs
// both produced NaN), a NaN never equals a number, and infinities
// compare exactly by sign.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b // exact compare of infinities; tolerance is meaningless here
	}
	return math.Abs(a-b) <= tol
}
