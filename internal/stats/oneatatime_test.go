package stats

import "testing"

func TestOneAtATimeValidation(t *testing.T) {
	resp := func([]int8) float64 { return 0 }
	if _, err := OneAtATime(nil, resp); err == nil {
		t.Error("OneAtATime with no factors should error")
	}
	if _, err := OneAtATime([]int8{1, 0, -1}, resp); err == nil {
		t.Error("OneAtATime with a non-±1 base level should error")
	}
	if _, err := OneAtATime([]int8{2}, resp); err == nil {
		t.Error("OneAtATime with level 2 should error")
	}
}

func TestOneAtATimeDeltas(t *testing.T) {
	// Linear response: 10 + 3*x0 - 5*x1 + 0*x2. Flipping factor j
	// from its base level b changes the response by -2*coef[j]*b.
	coef := []float64{3, -5, 0}
	resp := func(levels []int8) float64 {
		s := 10.0
		for j, lv := range levels {
			s += coef[j] * float64(lv)
		}
		return s
	}
	base := []int8{1, -1, 1}
	res, err := OneAtATime(base, resp)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10.0 + 3 + 5; res.Base != want {
		t.Errorf("Base = %v, want %v", res.Base, want)
	}
	wantDeltas := []float64{-6, -10, 0}
	for j, want := range wantDeltas {
		if res.Deltas[j] != want {
			t.Errorf("Deltas[%d] = %v, want %v", j, res.Deltas[j], want)
		}
		if got := res.Responses[j] - res.Base; got != want {
			t.Errorf("Responses[%d]-Base = %v, want %v", j, got, want)
		}
	}
	// The base slice must come back unmodified.
	if base[0] != 1 || base[1] != -1 || base[2] != 1 {
		t.Errorf("base levels mutated: %v", base)
	}
}

// TestOneAtATimeRuns pins the N+1 simulation count the paper's
// Table 1 charges the one-at-a-time straw man with.
func TestOneAtATimeRuns(t *testing.T) {
	for _, n := range []int{1, 2, 7, 43} {
		base := make([]int8, n)
		for i := range base {
			base[i] = 1
		}
		calls := 0
		res, err := OneAtATime(base, func([]int8) float64 { calls++; return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Runs(); got != n+1 {
			t.Errorf("n=%d: Runs() = %d, want %d", n, got, n+1)
		}
		if calls != n+1 {
			t.Errorf("n=%d: response invoked %d times, want %d", n, calls, n+1)
		}
	}
}

// TestOneAtATimeEachRunFlipsOneFactor verifies every non-base run
// differs from the base configuration in exactly one position.
func TestOneAtATimeEachRunFlipsOneFactor(t *testing.T) {
	base := []int8{1, -1, 1, -1}
	var seen [][]int8
	_, err := OneAtATime(base, func(levels []int8) float64 {
		cp := make([]int8, len(levels))
		copy(cp, levels)
		seen = append(seen, cp)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(base)+1 {
		t.Fatalf("saw %d runs, want %d", len(seen), len(base)+1)
	}
	for run := 1; run < len(seen); run++ {
		diffs := 0
		for j := range base {
			if seen[run][j] != base[j] {
				diffs++
				if j != run-1 {
					t.Errorf("run %d flipped factor %d, want factor %d", run, j, run-1)
				}
			}
		}
		if diffs != 1 {
			t.Errorf("run %d differs from base in %d positions, want 1", run, diffs)
		}
	}
}
