package perfbench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pbsim/internal/stats"
)

// goldenOutput is verbatim `go test -bench` output (trimmed) from this
// repository, including a custom b.ReportMetric metric (instrs/s) and
// a -cpu suffix variant.
const goldenOutput = `goos: linux
goarch: amd64
pkg: pbsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable4Effects       	       2	       223.0 ns/op
BenchmarkTable4Effects       	       2	       154.5 ns/op
BenchmarkTable4Effects       	       2	       388.0 ns/op
BenchmarkSimulatorThroughput-4 	       2	   6230112 ns/op	   1605518 instrs/s
BenchmarkSimulatorThroughput-4 	       2	   6177924 ns/op	   1619073 instrs/s
BenchmarkAblationFoldover/foldover=false 	       2	  47175494 ns/op
PASS
ok  	pbsim	191.618s
`

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if !stats.ApproxEqual(got, want, tol) {
		t.Errorf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestParseSetGolden(t *testing.T) {
	s, err := ParseSet(strings.NewReader(goldenOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config["cpu"]; got != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu config = %q", got)
	}
	if got := s.Config["goos"]; got != "linux" {
		t.Errorf("goos config = %q", got)
	}
	wantOrder := []Key{
		{"Table4Effects", "ns/op"},
		{"SimulatorThroughput", "ns/op"},
		{"SimulatorThroughput", "instrs/s"},
		{"AblationFoldover/foldover=false", "ns/op"},
	}
	if len(s.Order) != len(wantOrder) {
		t.Fatalf("Order = %v, want %v", s.Order, wantOrder)
	}
	for i, k := range wantOrder {
		if s.Order[i] != k {
			t.Errorf("Order[%d] = %v, want %v", i, s.Order[i], k)
		}
	}
	effects := s.Samples[Key{"Table4Effects", "ns/op"}]
	if len(effects) != 3 {
		t.Fatalf("Table4Effects samples = %v", effects)
	}
	approx(t, effects[1], 154.5, 0, "Table4Effects sample 1")
	// The -4 GOMAXPROCS suffix folds into the base name, and the
	// ReportMetric pairs parse as their own metric.
	rate := s.Samples[Key{"SimulatorThroughput", "instrs/s"}]
	if len(rate) != 2 {
		t.Fatalf("instrs/s samples = %v", rate)
	}
	approx(t, rate[0], 1605518, 0, "instrs/s sample 0")
}

func TestParseSetRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 2\n",                // no value/unit pairs
		"BenchmarkX two 100 ns/op\n",    // bad iteration count
		"BenchmarkX 2 fast ns/op\n",     // bad value
		"BenchmarkX 2 100 ns/op 12\n",   // dangling value without unit
		"PASS\nok  \tpbsim\t191.618s\n", // no benchmark lines at all
	} {
		if _, err := ParseSet(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSet(%q) succeeded, want error", bad)
		}
	}
}

func TestSummarizeMedianAndCI(t *testing.T) {
	// Odd count: exact middle. n=5 is below the 95% order-statistic
	// resolution, so the interval is the full range.
	s := Summarize(Key{"X", "ns/op"}, []float64{5, 1, 4, 2, 3})
	approx(t, s.Median, 3, 0, "median(1..5)")
	approx(t, s.Lo, 1, 0, "lo(1..5)")
	approx(t, s.Hi, 5, 0, "hi(1..5)")

	// Even count: mean of the two middle samples.
	s = Summarize(Key{"X", "ns/op"}, []float64{1, 2, 3, 10})
	approx(t, s.Median, 2.5, 0, "median even")

	// n=10 has the classic sign-test interval [x_(2), x_(9)].
	ten := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	s = Summarize(Key{"X", "ns/op"}, ten)
	approx(t, s.Median, 55, 0, "median n=10")
	approx(t, s.Lo, 20, 0, "lo n=10")
	approx(t, s.Hi, 90, 0, "hi n=10")

	// n=15: [x_(4), x_(12)].
	var fifteen []float64
	for i := 1; i <= 15; i++ {
		fifteen = append(fifteen, float64(i))
	}
	s = Summarize(Key{"X", "ns/op"}, fifteen)
	approx(t, s.Lo, 4, 0, "lo n=15")
	approx(t, s.Hi, 12, 0, "hi n=15")
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": false, "B/op": false, "allocs/op": false,
		"instrs/s": true, "MB/s": true,
	} {
		if got := HigherIsBetter(unit); got != want {
			t.Errorf("HigherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

// summaryOf builds a File holding one ns/op benchmark.
func fileOf(rev string, samples ...float64) *File {
	return &File{
		Schema: Schema, Rev: rev,
		Benchmarks: []Summary{Summarize(Key{"Sim", "ns/op"}, samples)},
	}
}

// TestDiffRegressionVersusNoise is the discrimination table: each case
// feeds Diff a baseline and a candidate distribution and asserts
// whether the 10% gate fires.
func TestDiffRegressionVersusNoise(t *testing.T) {
	base := []float64{100, 101, 99, 100, 102}
	cases := []struct {
		name            string
		cur             []float64
		wantRegression  bool
		wantImprovement bool
		wantSignificant bool
	}{
		{"identical", []float64{100, 101, 99, 100, 102}, false, false, false},
		// 50% slower, tight distribution: a real regression.
		{"regression", []float64{150, 151, 149, 150, 152}, true, false, true},
		// 40% faster: a real improvement, not a regression.
		{"improvement", []float64{60, 61, 59, 60, 62}, false, true, true},
		// Median 12% high but the spread swamps the shift: the CIs
		// overlap, so the gate must NOT fire on noise.
		{"noise", []float64{70, 140, 112, 90, 130}, false, false, false},
		// Significant but tiny shift (2%): within threshold, no flag.
		{"within-threshold", []float64{102.1, 103, 102.5, 103.5, 102.8}, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Diff(fileOf("0", base...), fileOf("ci", tc.cur...), 10)
			if len(r.Deltas) != 1 {
				t.Fatalf("deltas = %d, want 1", len(r.Deltas))
			}
			d := r.Deltas[0]
			if d.Regression != tc.wantRegression {
				t.Errorf("Regression = %v, want %v (pct %.2f, sig %v)",
					d.Regression, tc.wantRegression, d.Pct, d.Significant)
			}
			if d.Improvement != tc.wantImprovement {
				t.Errorf("Improvement = %v, want %v", d.Improvement, tc.wantImprovement)
			}
			if d.Significant != tc.wantSignificant {
				t.Errorf("Significant = %v, want %v", d.Significant, tc.wantSignificant)
			}
		})
	}
}

func TestDiffSingleSampleFallsBackToThreshold(t *testing.T) {
	// With -count=1 there is no distribution; the threshold alone must
	// still catch a 2x slowdown.
	r := Diff(fileOf("0", 100), fileOf("ci", 200), 10)
	if d := r.Deltas[0]; !d.Regression || d.Significant {
		t.Errorf("single-sample 2x slowdown: Regression=%v Significant=%v", d.Regression, d.Significant)
	}
	// ... but not a 5% wobble.
	r = Diff(fileOf("0", 100), fileOf("ci", 105), 10)
	if d := r.Deltas[0]; d.Regression {
		t.Error("single-sample 5% wobble flagged as regression")
	}
}

func TestDiffHigherIsBetterDirection(t *testing.T) {
	mk := func(rev string, samples ...float64) *File {
		return &File{Schema: Schema, Rev: rev,
			Benchmarks: []Summary{Summarize(Key{"Sim", "instrs/s"}, samples)}}
	}
	// Throughput dropping 30% is a regression even though the values
	// got smaller.
	r := Diff(mk("0", 1000, 1001, 999, 1000, 1002), mk("ci", 700, 701, 699, 700, 702), 10)
	if d := r.Deltas[0]; !d.Regression {
		t.Errorf("throughput drop not flagged: %+v", d)
	}
	// Throughput rising 30% is an improvement.
	r = Diff(mk("0", 1000, 1001, 999, 1000, 1002), mk("ci", 1300, 1301, 1299, 1300, 1302), 10)
	if d := r.Deltas[0]; d.Regression || !d.Improvement {
		t.Errorf("throughput rise misjudged: %+v", d)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	// An allocs/op guard moving off zero can never be excused by a
	// percent threshold.
	r := Diff(fileOf("0", 0, 0, 0, 0, 0), fileOf("ci", 2, 2, 2, 2, 2), 50)
	d := r.Deltas[0]
	if !d.Regression || !math.IsInf(d.Pct, +1) {
		t.Errorf("zero-baseline growth: Regression=%v Pct=%v", d.Regression, d.Pct)
	}
	r = Diff(fileOf("0", 0, 0, 0, 0, 0), fileOf("ci", 0, 0, 0, 0, 0), 50)
	if d := r.Deltas[0]; d.Regression || !stats.ApproxEqual(d.Pct, 0, 0) {
		t.Errorf("zero-to-zero: Regression=%v Pct=%v", d.Regression, d.Pct)
	}
}

func TestDiffReportsMissingBenchmarks(t *testing.T) {
	prev := &File{Schema: Schema, Rev: "0", Benchmarks: []Summary{
		Summarize(Key{"Gone", "ns/op"}, []float64{1}),
		Summarize(Key{"Kept", "ns/op"}, []float64{1}),
	}}
	cur := &File{Schema: Schema, Rev: "ci", Benchmarks: []Summary{
		Summarize(Key{"Kept", "ns/op"}, []float64{1}),
		Summarize(Key{"New", "ns/op"}, []float64{1}),
	}}
	r := Diff(prev, cur, 10)
	if len(r.OnlyOld) != 1 || r.OnlyOld[0].Benchmark != "Gone" {
		t.Errorf("OnlyOld = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0].Benchmark != "New" {
		t.Errorf("OnlyNew = %v", r.OnlyNew)
	}
	if len(r.Deltas) != 1 {
		t.Errorf("Deltas = %v", r.Deltas)
	}
}

func TestFileRoundTrip(t *testing.T) {
	s, err := ParseSet(strings.NewReader(goldenOutput))
	if err != nil {
		t.Fatal(err)
	}
	f := FromSet(s, "0")
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "0" || len(got.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range f.Benchmarks {
		approx(t, got.Benchmarks[i].Median, f.Benchmarks[i].Median, 0, "median "+f.Benchmarks[i].Benchmark)
	}
}

func TestDecodeRejectsBadFiles(t *testing.T) {
	for name, in := range map[string]string{
		"wrong-schema": `{"schema":"other/v9","rev":"0","benchmarks":[{"name":"X","unit":"ns/op","samples":[1],"median":1,"lo":1,"hi":1}]}`,
		"empty":        `{"schema":"pbsim-bench/v1","rev":"0","benchmarks":[]}`,
		"unknown-keys": `{"schema":"pbsim-bench/v1","rev":"0","surprise":1,"benchmarks":[]}`,
		"not-json":     `BenchmarkX 2 100 ns/op`,
	} {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%s) succeeded, want error", name)
		}
	}
}

// TestFrontierOnlyFileRoundTrips: a trajectory carrying sampling
// frontier points but no timing benchmarks is valid, while one with
// neither stays rejected.
func TestFrontierOnlyFileRoundTrips(t *testing.T) {
	f := &File{
		Schema: Schema,
		Rev:    "ci",
		Frontier: []FrontierPoint{{
			Estimator:     "rankedset",
			InstrSpeedup:  17.4,
			WallSpeedup:   3.5,
			MeanCPIRelErr: 0.078,
			MaxCPIRelErr:  0.21,
			Spearman:      0.963,
			Pass:          true,
		}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frontier) != 1 || got.Frontier[0] != f.Frontier[0] {
		t.Fatalf("round trip: %+v", got.Frontier)
	}
	if _, err := Decode(strings.NewReader(`{"schema":"pbsim-bench/v1","rev":"0","benchmarks":[],"frontier":[]}`)); err == nil {
		t.Error("file with neither benchmarks nor frontier must be rejected")
	}
}

func TestParseThreshold(t *testing.T) {
	for in, want := range map[string]float64{"10%": 10, "7.5": 7.5, " 0% ": 0} {
		got, err := ParseThreshold(in)
		if err != nil {
			t.Errorf("ParseThreshold(%q): %v", in, err)
			continue
		}
		approx(t, got, want, 0, "ParseThreshold("+in+")")
	}
	for _, bad := range []string{"", "-5%", "ten", "NaN"} {
		if _, err := ParseThreshold(bad); err == nil {
			t.Errorf("ParseThreshold(%q) succeeded, want error", bad)
		}
	}
}

func TestFormatTable(t *testing.T) {
	r := Diff(fileOf("0", 100, 101, 99, 100, 102), fileOf("ci", 150, 151, 149, 150, 152), 10)
	r.OnlyNew = append(r.OnlyNew, Key{"Fresh", "ns/op"})
	var buf bytes.Buffer
	if err := FormatTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| Sim |", "REGRESSION", "+50.00%", "only in ci: Fresh (ns/op)", "| 0 (median ±) | ci (median ±) |"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
