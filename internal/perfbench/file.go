package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
)

// Schema is the trajectory-file format identifier. Decode rejects
// files carrying any other value, so a future format change cannot be
// silently misread as today's.
const Schema = "pbsim-bench/v1"

// File is one canonical BENCH_<rev>.json trajectory point: the
// summarized benchmark results of one revision on one machine.
type File struct {
	Schema string `json:"schema"`
	// Rev labels the revision the measurements belong to ("0" for the
	// committed baseline, "ci" for a fresh run, a git SHA, ...).
	Rev        string            `json:"rev"`
	Config     map[string]string `json:"config,omitempty"`
	Benchmarks []Summary         `json:"benchmarks"`
	// Frontier optionally carries the revision's sampled-simulation
	// accuracy-vs-speed points (one per estimator). Frontier-only files
	// (no timing benchmarks) are valid trajectories.
	Frontier []FrontierPoint `json:"frontier,omitempty"`
}

// FromSet summarizes a parsed benchmark run into a trajectory file,
// preserving first-seen benchmark order.
func FromSet(s *Set, rev string) *File {
	f := &File{Schema: Schema, Rev: rev, Config: s.Config}
	for _, k := range s.Order {
		f.Benchmarks = append(f.Benchmarks, Summarize(k, s.Samples[k]))
	}
	return f
}

// Encode writes the file as deterministic, human-diffable JSON.
func Encode(w io.Writer, f *File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("perfbench: encode trajectory: %w", err)
	}
	return nil
}

// Decode reads and validates a trajectory file.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("perfbench: decode trajectory: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("perfbench: unsupported schema %q (want %q)", f.Schema, Schema)
	}
	if len(f.Benchmarks) == 0 && len(f.Frontier) == 0 {
		return nil, fmt.Errorf("perfbench: trajectory %q holds no benchmarks and no frontier", f.Rev)
	}
	return &f, nil
}

// index maps metric keys to their summaries for O(1) diff lookups.
func (f *File) index() map[Key]Summary {
	m := make(map[Key]Summary, len(f.Benchmarks))
	for _, s := range f.Benchmarks {
		m[Key{Benchmark: s.Benchmark, Unit: s.Unit}] = s
	}
	return m
}
