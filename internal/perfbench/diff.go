package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pbsim/internal/stats"
)

// Delta compares one metric across two trajectory files.
type Delta struct {
	Benchmark string  `json:"name"`
	Unit      string  `json:"unit"`
	Old       Summary `json:"old"`
	New       Summary `json:"new"`
	// Pct is the signed percent change of the median, (new-old)/old.
	Pct float64 `json:"pct"`
	// Significant reports that both sides carry at least minSamples
	// repetitions and their confidence intervals do not overlap — the
	// medians genuinely moved.
	Significant bool `json:"significant"`
	// Regression marks a significant move past the threshold in the
	// unit's worse direction; Improvement is its mirror image.
	Regression  bool `json:"regression"`
	Improvement bool `json:"improvement"`
}

// Report is the outcome of diffing two trajectory files.
type Report struct {
	OldRev, NewRev string
	// ThresholdPct is the minimum |median delta| (in percent) for a
	// significant move to count as a regression or improvement.
	ThresholdPct float64
	Deltas       []Delta
	// OnlyOld and OnlyNew list metrics present in one file but not
	// the other (renamed or deleted benchmarks); they are surfaced
	// rather than silently dropped.
	OnlyOld, OnlyNew []Key
}

// Diff compares two trajectories metric-by-metric, in the new file's
// order. A move registers as a regression/improvement only when (a)
// the median shifted past thresholdPct in that direction and (b) the
// shift is statistically significant — or too few repetitions exist
// to judge significance at all (count < minSamples), in which case
// the threshold alone decides, since a gate that a single sample can
// never trip would be no gate.
func Diff(prev, cur *File, thresholdPct float64) *Report {
	r := &Report{OldRev: prev.Rev, NewRev: cur.Rev, ThresholdPct: thresholdPct}
	prevIdx, curIdx := prev.index(), cur.index()
	for _, ns := range cur.Benchmarks {
		k := Key{Benchmark: ns.Benchmark, Unit: ns.Unit}
		ps, ok := prevIdx[k]
		if !ok {
			r.OnlyNew = append(r.OnlyNew, k)
			continue
		}
		r.Deltas = append(r.Deltas, compare(ps, ns, thresholdPct))
	}
	for _, ps := range prev.Benchmarks {
		k := Key{Benchmark: ps.Benchmark, Unit: ps.Unit}
		if _, ok := curIdx[k]; !ok {
			r.OnlyOld = append(r.OnlyOld, k)
		}
	}
	return r
}

// compare scores one metric's move.
func compare(prev, cur Summary, thresholdPct float64) Delta {
	d := Delta{Benchmark: cur.Benchmark, Unit: cur.Unit, Old: prev, New: cur}
	if stats.ApproxEqual(prev.Median, 0, 0) {
		// A zero baseline (e.g. an allocs/op guard) has no meaningful
		// percent change; any nonzero new median is an infinite
		// regression in a cost metric, which the threshold can never
		// excuse.
		if !stats.ApproxEqual(cur.Median, 0, 0) {
			d.Pct = math.Inf(sign(cur.Median, cur.Unit))
		}
	} else {
		d.Pct = (cur.Median - prev.Median) / math.Abs(prev.Median) * 100
	}
	d.Significant = len(prev.Samples) >= minSamples && len(cur.Samples) >= minSamples &&
		(prev.Hi < cur.Lo || cur.Hi < prev.Lo)
	judgeable := d.Significant ||
		len(prev.Samples) < minSamples || len(cur.Samples) < minSamples
	if !judgeable {
		return d
	}
	worse := d.Pct > 0
	if HigherIsBetter(cur.Unit) {
		worse = d.Pct < 0
	}
	if math.Abs(d.Pct) > thresholdPct {
		d.Regression = worse
		d.Improvement = !worse
	}
	return d
}

// sign returns +1 when a nonzero move from a zero baseline is worse
// for the unit, -1 when it is better.
func sign(newMedian float64, unit string) int {
	worse := newMedian > 0
	if HigherIsBetter(unit) {
		worse = !worse
	}
	if worse {
		return +1
	}
	return -1
}

// Regressions returns the deltas flagged as regressions.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// EncodeReport writes the full report as indented JSON for machine
// consumers of `pbbench diff -json`.
func EncodeReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("perfbench: encode report: %w", err)
	}
	return nil
}

// ParseThreshold parses a regression threshold such as "10%" or "7.5"
// into percent.
func ParseThreshold(s string) (float64, error) {
	t := strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("perfbench: bad threshold %q: %w", s, err)
	}
	if math.IsNaN(v) || v < 0 {
		return 0, fmt.Errorf("perfbench: threshold %q must be a non-negative percentage", s)
	}
	return v, nil
}

// FormatTable renders the report as a GitHub-flavored markdown table
// (also readable as plain text), one row per metric, followed by
// notes for metrics present on only one side.
func FormatTable(w io.Writer, r *Report) error {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | unit | %s (median ±) | %s (median ±) | delta | verdict |\n",
		r.OldRev, r.NewRev)
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, d := range r.Deltas {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			d.Benchmark, d.Unit, formatSummary(d.Old), formatSummary(d.New),
			formatPct(d.Pct), verdict(d))
	}
	for _, k := range r.OnlyOld {
		fmt.Fprintf(&b, "\nonly in %s: %s (%s)", r.OldRev, k.Benchmark, k.Unit)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(&b, "\nonly in %s: %s (%s)", r.NewRev, k.Benchmark, k.Unit)
	}
	if len(r.OnlyOld)+len(r.OnlyNew) > 0 {
		b.WriteString("\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("perfbench: write table: %w", err)
	}
	return nil
}

func verdict(d Delta) string {
	switch {
	case d.Regression:
		return "REGRESSION"
	case d.Improvement:
		return "improvement"
	case d.Significant:
		return "shifted (within threshold)"
	default:
		return "~"
	}
}

func formatSummary(s Summary) string {
	half := (s.Hi - s.Lo) / 2
	return fmt.Sprintf("%s ±%s", formatValue(s.Median), formatValue(half))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 5, 64)
}

func formatPct(p float64) string {
	if math.IsInf(p, 0) || math.IsNaN(p) {
		return fmt.Sprintf("%+g%%", p)
	}
	return fmt.Sprintf("%+.2f%%", p)
}
