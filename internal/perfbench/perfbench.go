// Package perfbench is a minimal, stdlib-only benchstat: it parses
// `go test -bench` output, summarizes repeated measurements per
// benchmark (median plus a nonparametric confidence interval), stores
// summaries as canonical BENCH_<rev>.json trajectory files, and
// compares two trajectories with a configurable regression threshold.
//
// It exists so the repository's performance claims are held to the
// same statistical standard the reproduced paper demands of simulator
// conclusions: a delta is only called a regression (or an
// improvement) when the medians differ beyond the threshold and, when
// enough repetitions exist, the confidence intervals do not overlap —
// single noisy runs cannot fail (or green-light) a build.
package perfbench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Key identifies one measured metric: a benchmark name (without the
// "Benchmark" prefix and "-N" GOMAXPROCS suffix) plus a unit, e.g.
// {"SimulatorThroughput", "ns/op"} or {"SimulatorThroughput",
// "instrs/s"} for metrics added via b.ReportMetric.
type Key struct {
	Benchmark string
	Unit      string
}

// Set holds the raw samples parsed from one `go test -bench` run.
type Set struct {
	// Config carries the "key: value" header lines go test prints
	// before the benchmarks (goos, goarch, pkg, cpu).
	Config map[string]string
	// Order lists the metric keys in first-seen order, so downstream
	// output is deterministic without sorting.
	Order []Key
	// Samples maps each metric to its measured values, one per
	// benchmark line (i.e. one per -count repetition).
	Samples map[Key][]float64
}

// ParseSet reads `go test -bench` output. Lines that are neither
// header lines nor benchmark result lines (PASS, ok, test logs) are
// ignored; malformed benchmark lines are errors, because silently
// dropping a measurement would bias the summary.
func ParseSet(r io.Reader) (*Set, error) {
	s := &Set{Config: make(map[string]string), Samples: make(map[Key][]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if err := s.parseBenchLine(line); err != nil {
				return nil, err
			}
		case len(s.Samples) == 0 && strings.Contains(line, ": "):
			k, v, _ := strings.Cut(line, ": ")
			s.Config[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfbench: read bench output: %w", err)
	}
	if len(s.Samples) == 0 {
		return nil, fmt.Errorf("perfbench: no benchmark result lines found")
	}
	return s, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-4   120   9321 ns/op   456 B/op   2 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs; pairs
// include custom b.ReportMetric metrics such as "2842599 instrs/s".
func (s *Set) parseBenchLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return fmt.Errorf("perfbench: malformed benchmark line %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return fmt.Errorf("perfbench: bad iteration count in %q: %w", line, err)
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("perfbench: bad value in %q: %w", line, err)
		}
		s.add(Key{Benchmark: name, Unit: fields[i+1]}, v)
	}
	return nil
}

func (s *Set) add(k Key, v float64) {
	if _, seen := s.Samples[k]; !seen {
		s.Order = append(s.Order, k)
	}
	s.Samples[k] = append(s.Samples[k], v)
}
