package perfbench

// FrontierPoint records where one sampling estimator landed on the
// accuracy-vs-speed frontier of a revision: the two gated axes
// (instruction speedup, rank correlation) plus the CPI error both
// summarize. It mirrors experiment.FrontierPoint without importing it,
// keeping the trajectory schema self-contained.
type FrontierPoint struct {
	Estimator string `json:"estimator"`
	// InstrSpeedup is full-run detailed instructions over sampled
	// detailed instructions; WallSpeedup the end-to-end wall ratio.
	InstrSpeedup float64 `json:"instr_speedup"`
	WallSpeedup  float64 `json:"wall_speedup"`
	// MeanCPIRelErr / MaxCPIRelErr are |sampled/full - 1| over all
	// (benchmark, configuration) responses.
	MeanCPIRelErr float64 `json:"mean_cpi_rel_err"`
	MaxCPIRelErr  float64 `json:"max_cpi_rel_err"`
	// Spearman is the sampled-vs-full rank correlation of the factor
	// ordering; Pass marks it against the gate the run used.
	Spearman float64 `json:"spearman"`
	Pass     bool    `json:"pass"`
}
