package perfbench

import (
	"sort"
	"strings"
)

// Summary condenses the repeated measurements of one metric: the
// median and a distribution-free ~95% confidence interval for it.
type Summary struct {
	Benchmark string    `json:"name"`
	Unit      string    `json:"unit"`
	Samples   []float64 `json:"samples"`
	Median    float64   `json:"median"`
	// Lo and Hi bound the median at >= 95% confidence using binomial
	// order statistics (the sign-test interval benchstat uses). With
	// fewer than minSamples repetitions the interval degenerates to
	// the sample range and carries no significance.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// minSamples is the repetition count below which an interval is too
// weak to call any difference significant (the n=3 sign-test interval
// is already the full range at only 75% confidence).
const minSamples = 3

// Summarize computes the summary of one metric's samples. It copies
// the input.
func Summarize(k Key, samples []float64) Summary {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s := Summary{Benchmark: k.Benchmark, Unit: k.Unit, Samples: sorted}
	n := len(sorted)
	if n == 0 {
		return s
	}
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	lo, hi := medianCIIndices(n)
	s.Lo, s.Hi = sorted[lo], sorted[hi]
	return s
}

// medianCIIndices returns order-statistic indices (0-based, inclusive)
// such that [sorted[lo], sorted[hi]] covers the true median with
// probability >= 0.95 under the sign test: lo is the largest index i
// with P(Bin(n, 1/2) <= i) <= 0.025, and hi mirrors it. When no index
// qualifies (n <= 5) the interval is the full sample range, the
// widest — and best — interval order statistics can give.
func medianCIIndices(n int) (lo, hi int) {
	// Walk the binomial PMF iteratively: pmf(0) = 2^-n, and
	// pmf(i+1) = pmf(i) * (n-i) / (i+1).
	pmf := 1.0
	for i := 0; i < n; i++ {
		pmf /= 2
	}
	cum := 0.0
	for i := 0; i <= n/2; i++ {
		cum += pmf // cum = P(Bin(n, 1/2) <= i)
		if cum > 0.025 {
			break
		}
		lo = i
		pmf *= float64(n-i) / float64(i+1)
	}
	return lo, n - 1 - lo
}

// HigherIsBetter reports the improvement direction of a unit. The
// standard go test metrics (ns/op, B/op, allocs/op) are costs; rate
// metrics reported via b.ReportMetric conventionally carry a "/s"
// suffix (e.g. instrs/s) and grow when performance improves.
func HigherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s")
}
