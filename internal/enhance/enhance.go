// Package enhance implements the microarchitectural enhancement the
// paper analyzes in Section 4.3 -- instruction precomputation [Yi02-1]
// -- together with the dynamic value-reuse mechanism [Sodani97] it is
// contrasted against.
//
// Instruction precomputation profiles the program offline, loads the
// highest-frequency redundant computations into an on-chip table
// before execution begins, and never updates the table. Value reuse
// maintains its table dynamically, updating it with the most recent
// computations. Both expose the sim.ComputeShortcut behaviour: a table
// hit lets the pipeline skip execution of the instruction.
package enhance

import (
	"fmt"
	"sort"

	"pbsim/internal/trace"
)

// Precomputation is a static table of redundant-computation
// identities. It is immutable after construction: Observe is a no-op,
// matching the paper's "loaded before the program begins execution and
// never updated".
type Precomputation struct {
	table map[uint32]struct{}
	hits  uint64
	tries uint64
}

// NewPrecomputation builds the table from a profiled frequency count:
// the tableSize most frequent computation identities are loaded.
func NewPrecomputation(freq map[uint32]uint64, tableSize int) (*Precomputation, error) {
	if tableSize < 1 {
		return nil, fmt.Errorf("enhance: table size %d invalid", tableSize)
	}
	type kv struct {
		id uint32
		n  uint64
	}
	all := make([]kv, 0, len(freq))
	for id, n := range freq {
		if id != 0 {
			all = append(all, kv{id, n})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].id < all[b].id
	})
	if len(all) > tableSize {
		all = all[:tableSize]
	}
	t := make(map[uint32]struct{}, len(all))
	for _, e := range all {
		t[e.id] = struct{}{}
	}
	return &Precomputation{table: t}, nil
}

// Profile runs the compiler's profiling pass: it scans n instructions
// of a fresh stream with the given parameters and counts how often
// each redundant-computation identity occurs.
func Profile(params trace.Params, n int64) (map[uint32]uint64, error) {
	gen, err := trace.NewGenerator(params)
	if err != nil {
		return nil, err
	}
	freq := make(map[uint32]uint64)
	for i := int64(0); i < n; i++ {
		in := gen.Next()
		if in.CompID != 0 {
			freq[in.CompID]++
		}
	}
	return freq, nil
}

// Hit implements sim.ComputeShortcut.
func (p *Precomputation) Hit(compID uint32) bool {
	p.tries++
	if _, ok := p.table[compID]; ok {
		p.hits++
		return true
	}
	return false
}

// Observe implements sim.ComputeShortcut; the static table never
// trains.
func (p *Precomputation) Observe(uint32) {}

// Size returns the number of loaded identities.
func (p *Precomputation) Size() int { return len(p.table) }

// HitRate returns hits per lookup.
func (p *Precomputation) HitRate() float64 {
	if p.tries == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.tries)
}

// ValueReuse is a dynamic reuse table with LRU replacement: every
// committed computation trains it, so it adapts to phase behaviour at
// the cost of hardware that must write the table at runtime.
type ValueReuse struct {
	capacity int
	slots    map[uint32]uint64 // id -> last-use stamp
	clock    uint64
	hits     uint64
	tries    uint64
}

// NewValueReuse builds an empty dynamic reuse table.
func NewValueReuse(capacity int) (*ValueReuse, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("enhance: table size %d invalid", capacity)
	}
	return &ValueReuse{capacity: capacity, slots: make(map[uint32]uint64, capacity)}, nil
}

// Hit implements sim.ComputeShortcut: a lookup hit also refreshes the
// entry's recency.
func (v *ValueReuse) Hit(compID uint32) bool {
	v.tries++
	v.clock++
	if _, ok := v.slots[compID]; ok {
		v.slots[compID] = v.clock
		v.hits++
		return true
	}
	return false
}

// Observe implements sim.ComputeShortcut: the committed computation is
// inserted, evicting the least recently used identity when full.
func (v *ValueReuse) Observe(compID uint32) {
	if compID == 0 {
		return
	}
	v.clock++
	if _, ok := v.slots[compID]; ok {
		v.slots[compID] = v.clock
		return
	}
	if len(v.slots) >= v.capacity {
		var lruID uint32
		lruStamp := v.clock + 1
		for id, stamp := range v.slots {
			if stamp < lruStamp {
				lruID, lruStamp = id, stamp
			}
		}
		delete(v.slots, lruID)
	}
	v.slots[compID] = v.clock
}

// Size returns the current number of cached identities.
func (v *ValueReuse) Size() int { return len(v.slots) }

// HitRate returns hits per lookup.
func (v *ValueReuse) HitRate() float64 {
	if v.tries == 0 {
		return 0
	}
	return float64(v.hits) / float64(v.tries)
}
