package enhance

import (
	"testing"

	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func TestProfileCountsRedundantComputations(t *testing.T) {
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	freq, err := Profile(w.Params, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(freq) == 0 {
		t.Fatal("profile found no redundant computations")
	}
	if _, ok := freq[0]; ok {
		t.Error("CompID 0 (unique computation) must not be profiled")
	}
	// Zipf skew: the most frequent identity should dominate the median.
	var max, total uint64
	for _, n := range freq {
		total += n
		if n > max {
			max = n
		}
	}
	if max*uint64(len(freq)) < total {
		t.Errorf("no skew: max %d, mean %d", max, total/uint64(len(freq)))
	}
	bad := w.Params
	bad.NumBlocks = 0
	if _, err := Profile(bad, 10); err == nil {
		t.Error("Profile accepted invalid params")
	}
}

func TestPrecomputationKeepsTopIdentities(t *testing.T) {
	freq := map[uint32]uint64{1: 100, 2: 90, 3: 80, 4: 5, 5: 1, 0: 9999}
	p, err := NewPrecomputation(freq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	for _, id := range []uint32{1, 2, 3} {
		if !p.Hit(id) {
			t.Errorf("top identity %d missing", id)
		}
	}
	for _, id := range []uint32{4, 5, 0, 77} {
		if p.Hit(id) {
			t.Errorf("identity %d should not be loaded", id)
		}
	}
	if hr := p.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %g", hr)
	}
	// The static table never trains.
	p.Observe(4)
	if p.Hit(4) {
		t.Error("Observe must not modify the static table")
	}
	if _, err := NewPrecomputation(freq, 0); err == nil {
		t.Error("zero table size accepted")
	}
	empty, err := NewPrecomputation(nil, 8)
	if err != nil || empty.Size() != 0 {
		t.Errorf("empty profile: %v, size %d", err, empty.Size())
	}
	if empty.HitRate() != 0 {
		t.Error("empty hit rate")
	}
}

func TestPrecomputationTieBreakDeterministic(t *testing.T) {
	freq := map[uint32]uint64{10: 5, 20: 5, 30: 5, 40: 5}
	a, _ := NewPrecomputation(freq, 2)
	b, _ := NewPrecomputation(freq, 2)
	for id := uint32(1); id <= 50; id++ {
		if a.Hit(id) != b.Hit(id) {
			t.Fatalf("tie-break nondeterministic at id %d", id)
		}
	}
	// Lowest ids win ties.
	if !a.Hit(10) || !a.Hit(20) || a.Hit(30) || a.Hit(40) {
		t.Error("expected ids 10 and 20 to be kept")
	}
}

func TestValueReuseLRU(t *testing.T) {
	v, err := NewValueReuse(2)
	if err != nil {
		t.Fatal(err)
	}
	v.Observe(1)
	v.Observe(2)
	if !v.Hit(1) { // refreshes 1
		t.Fatal("1 should be cached")
	}
	v.Observe(3) // evicts 2 (LRU)
	if v.Hit(2) {
		t.Error("2 should have been evicted")
	}
	if !v.Hit(1) || !v.Hit(3) {
		t.Error("1 and 3 should be cached")
	}
	if v.Size() != 2 {
		t.Errorf("size = %d", v.Size())
	}
	if hr := v.HitRate(); hr <= 0 || hr > 1 {
		t.Errorf("hit rate = %g", hr)
	}
	v.Observe(0) // ignored
	if v.Size() != 2 {
		t.Error("CompID 0 must not be inserted")
	}
	v.Observe(1) // refresh path
	if !v.Hit(1) {
		t.Error("refresh lost entry")
	}
	if _, err := NewValueReuse(0); err == nil {
		t.Error("zero capacity accepted")
	}
	fresh, _ := NewValueReuse(4)
	if fresh.HitRate() != 0 {
		t.Error("fresh hit rate")
	}
}

func TestPrecomputationSpeedsUpSimulation(t *testing.T) {
	// End-to-end: the 128-entry precomputation table of Section 4.3
	// must reduce gzip's execution time and offload the int ALUs.
	w, _ := workload.ByName("gzip")
	gen, _ := w.NewGenerator()
	base, _ := sim.New(sim.Default(), gen, nil)
	base.PrewarmMemory()
	sBase, err := base.Run(20000)
	if err != nil {
		t.Fatal(err)
	}

	freq, _ := Profile(w.Params, 100000)
	table, _ := NewPrecomputation(freq, 128)
	gen2, _ := w.NewGenerator()
	enh, _ := sim.New(sim.Default(), gen2, table)
	enh.PrewarmMemory()
	sEnh, err := enh.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if sEnh.PrecompHits == 0 {
		t.Fatal("precomputation never hit")
	}
	if sEnh.Cycles >= sBase.Cycles {
		t.Errorf("no speedup: %d vs %d cycles", sEnh.Cycles, sBase.Cycles)
	}
	if sEnh.IntALUOps >= sBase.IntALUOps {
		t.Errorf("int ALU not offloaded: %d vs %d ops", sEnh.IntALUOps, sBase.IntALUOps)
	}
}

func TestValueReuseVsPrecomputation(t *testing.T) {
	// Both mechanisms work end to end; the dynamic table adapts
	// without profiling.
	w, _ := workload.ByName("bzip2")
	gen, _ := w.NewGenerator()
	vr, _ := NewValueReuse(128)
	cpu, _ := sim.New(sim.Default(), gen, vr)
	cpu.PrewarmMemory()
	s, err := cpu.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if s.PrecompHits == 0 {
		t.Error("value reuse never hit")
	}
	if vr.Size() == 0 || vr.Size() > 128 {
		t.Errorf("table size = %d", vr.Size())
	}
}
