package pb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pbsim/internal/runner"
)

// suiteFixture is a deterministic 3-benchmark suite whose responses
// exercise non-trivial float64 bit patterns.
func suiteFixture() ([]Factor, []string, []FallibleResponse) {
	factors := []Factor{
		{Name: "A"}, {Name: "B"}, {Name: "C"}, {Name: "D"}, {Name: "E"},
	}
	benchmarks := []string{"alpha", "beta", "gamma"}
	responses := make([]FallibleResponse, len(benchmarks))
	for bi := range benchmarks {
		weight := float64(bi + 1)
		responses[bi] = func(_ context.Context, levels []Level) (float64, error) {
			y := 1000.0
			for j, lv := range levels {
				y += weight * math.Sin(float64(j+1)) * float64(lv) * math.Sqrt(float64(j)+1.5)
			}
			return y, nil
		}
	}
	return factors, benchmarks, responses
}

// An interrupted checkpointed suite, resumed with the same options,
// must reproduce bit-identical responses, effects, and Table-9 rank
// sums compared to an uninterrupted run.
func TestSuiteCheckpointResumeBitIdentical(t *testing.T) {
	factors, benchmarks, responses := suiteFixture()
	opts := Options{Foldover: true, Parallelism: 2}

	// Reference: uninterrupted, no checkpoint.
	want, err := RunSuiteCtx(context.Background(), factors, benchmarks, responses, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the response budget dies after 20 evaluations,
	// mid-suite, and there are no retries to save it.
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	cp, err := runner.OpenCheckpoint(path, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	var budget atomic.Int64
	budget.Store(20)
	limited := make([]FallibleResponse, len(responses))
	for i, resp := range responses {
		limited[i] = func(ctx context.Context, levels []Level) (float64, error) {
			if budget.Add(-1) < 0 {
				return 0, errors.New("simulated crash: budget exhausted")
			}
			return resp(ctx, levels)
		}
	}
	iopts := opts
	iopts.Runner.Checkpoint = cp
	_, err = RunSuiteCtx(context.Background(), factors, benchmarks, limited, iopts)
	if err == nil {
		t.Fatal("interrupted run unexpectedly succeeded")
	}
	var runErr *runner.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want aggregate *runner.RunError, got %v", err)
	}
	cp.Close()

	// Resume: same options, fresh checkpoint handle on the same file.
	re, err := runner.OpenCheckpoint(path, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Loaded() == 0 {
		t.Fatal("interrupted run checkpointed nothing")
	}
	var fresh atomic.Int64
	counting := make([]FallibleResponse, len(responses))
	for i, resp := range responses {
		counting[i] = func(ctx context.Context, levels []Level) (float64, error) {
			fresh.Add(1)
			return resp(ctx, levels)
		}
	}
	ropts := opts
	ropts.Runner.Checkpoint = re
	got, err := RunSuiteCtx(context.Background(), factors, benchmarks, counting, ropts)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	totalRows := want.Design.Runs() * len(benchmarks)
	if evaluated := int(fresh.Load()); evaluated >= totalRows {
		t.Errorf("resume re-evaluated all %d rows; checkpoint ignored", evaluated)
	} else if evaluated+re.Loaded() != totalRows {
		t.Errorf("resume evaluated %d rows with %d checkpointed, want %d total", evaluated, re.Loaded(), totalRows)
	}

	for bi := range benchmarks {
		for i := range want.Results[bi].Responses {
			w, g := want.Results[bi].Responses[i], got.Results[bi].Responses[i]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("benchmark %s row %d: response %v != %v (not bit-identical)", benchmarks[bi], i, g, w)
			}
		}
		for j := range want.Results[bi].Effects {
			w, g := want.Results[bi].Effects[j], got.Results[bi].Effects[j]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("benchmark %s effect %d: %v != %v", benchmarks[bi], j, g, w)
			}
		}
	}
	for j := range want.Sums {
		if want.Sums[j] != got.Sums[j] {
			t.Fatalf("rank sum %d: %d != %d", j, got.Sums[j], want.Sums[j])
		}
	}
	for j := range want.Order {
		if want.Order[j] != got.Order[j] {
			t.Fatalf("Table-9 order position %d: %d != %d", j, got.Order[j], want.Order[j])
		}
	}
}

// A suite with injected faults (seeded transient failures, one panic,
// one slow row exceeding the per-row timeout) completes via retries
// and matches the fault-free result exactly.
func TestSuiteCompletesDespiteInjectedFaults(t *testing.T) {
	factors, benchmarks, responses := suiteFixture()
	clean, err := RunSuiteCtx(context.Background(), factors, benchmarks, responses, Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	faults := &runner.Faults{
		Seed:      3,
		FailProb:  0.15,
		PanicRows: map[int]int{4: 1},
		SlowRows:  map[int]time.Duration{6: 150 * time.Millisecond},
	}
	opts := Options{Foldover: true}
	opts.Runner = runner.Config{
		Retries:    6,
		Timeout:    50 * time.Millisecond,
		Backoff:    time.Millisecond,
		BackoffCap: 2 * time.Millisecond,
		Wrap:       faults.Wrap,
	}
	got, err := RunSuiteCtx(context.Background(), factors, benchmarks, responses, opts)
	if err != nil {
		t.Fatalf("faulted suite failed: %v", err)
	}
	for bi := range benchmarks {
		for i := range clean.Results[bi].Responses {
			w, g := clean.Results[bi].Responses[i], got.Results[bi].Responses[i]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("benchmark %s row %d: %v != %v", benchmarks[bi], i, g, w)
			}
		}
	}
	for j := range clean.Sums {
		if clean.Sums[j] != got.Sums[j] {
			t.Fatalf("rank sum %d differs under faults: %d != %d", j, got.Sums[j], clean.Sums[j])
		}
	}
}

// Cancelling a suite mid-run surfaces the context error, wrapped with
// the failing benchmark's name.
func TestSuiteCancellation(t *testing.T) {
	factors, benchmarks, responses := suiteFixture()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	gated := make([]FallibleResponse, len(responses))
	for i, resp := range responses {
		gated[i] = func(ctx context.Context, levels []Level) (float64, error) {
			if calls.Add(1) == 5 {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return resp(ctx, levels)
		}
	}
	_, err := RunSuiteCtx(ctx, factors, benchmarks, gated, Options{Foldover: true, Parallelism: 2})
	if err == nil {
		t.Fatal("cancelled suite succeeded")
	}
	if !runner.Cancelled(err) {
		t.Fatalf("error %v is not a cancellation", err)
	}
}

// The degradation policy: a benchmark whose rows are exhausted fails
// with an aggregate error, and no NaN ever reaches the effects.
func TestSuiteNeverSilentNaN(t *testing.T) {
	factors, benchmarks, responses := suiteFixture()
	broken := make([]FallibleResponse, len(responses))
	for i, resp := range responses {
		bi := i
		broken[bi] = func(ctx context.Context, levels []Level) (float64, error) {
			if bi == 1 && levels[0] == High {
				return 0, fmt.Errorf("benchmark %d cannot simulate this row", bi)
			}
			return resp(ctx, levels)
		}
	}
	opts := Options{Foldover: true}
	opts.Runner.Retries = 1
	opts.Runner.Backoff = time.Microsecond
	_, err := RunSuiteCtx(context.Background(), factors, benchmarks, broken, opts)
	if err == nil {
		t.Fatal("broken suite succeeded")
	}
	var runErr *runner.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *runner.RunError, got %v", err)
	}
	if !strings.Contains(err.Error(), "benchmark beta") {
		t.Errorf("error %q does not name the failing benchmark", err)
	}
}

// Legacy adapters must behave exactly as before.
func TestLegacyAdapters(t *testing.T) {
	factors := []Factor{{Name: "A"}, {Name: "B"}}
	resp := func(levels []Level) float64 { return 10 + float64(levels[0]) }
	res, err := Run(factors, resp, Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0] != 1 {
		t.Errorf("rank(A) = %d", res.Ranks[0])
	}
	// A panicking infallible response surfaces as an error from the
	// legacy entry point: the runner recovers the panic and routes it
	// through the same error path as every other failure.
	d, _ := NewWithSize(4, false)
	if _, err := EvaluateRows(d, func([]Level) float64 { panic("boom") }, 1); err == nil {
		t.Error("legacy EvaluateRows swallowed the response panic")
	} else if !strings.Contains(err.Error(), "boom") {
		t.Errorf("panic cause lost from error: %v", err)
	}
}
