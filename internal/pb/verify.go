package pb

import "fmt"

// Verify checks the structural properties that make a matrix a valid
// Plackett-Burman design:
//
//   - every entry is +1 or -1;
//   - every column is balanced (equal counts of +1 and -1) over the
//     base X rows;
//   - every pair of distinct columns is orthogonal (zero dot product)
//     over the base X rows;
//   - with foldover, row X+i is the exact negation of row i.
//
// It returns nil when all properties hold.
func Verify(d *Design) error {
	if d.Columns != d.X-1 {
		return fmt.Errorf("pb: design has %d columns, want X-1 = %d", d.Columns, d.X-1)
	}
	wantRuns := d.X
	if d.Foldover {
		wantRuns = 2 * d.X
	}
	if d.Runs() != wantRuns {
		return fmt.Errorf("pb: design has %d runs, want %d", d.Runs(), wantRuns)
	}
	for i, row := range d.Matrix {
		if len(row) != d.Columns {
			return fmt.Errorf("pb: row %d has %d entries, want %d", i, len(row), d.Columns)
		}
		for j, lv := range row {
			if lv != High && lv != Low {
				return fmt.Errorf("pb: entry (%d,%d) = %d is not +1/-1", i, j, lv)
			}
		}
	}
	for j := 0; j < d.Columns; j++ {
		sum := 0
		for i := 0; i < d.X; i++ {
			sum += int(d.Matrix[i][j])
		}
		if sum != 0 {
			return fmt.Errorf("pb: column %d is unbalanced (sum %d over base rows)", j, sum)
		}
	}
	for a := 0; a < d.Columns; a++ {
		for b := a + 1; b < d.Columns; b++ {
			dot := 0
			for i := 0; i < d.X; i++ {
				dot += int(d.Matrix[i][a]) * int(d.Matrix[i][b])
			}
			if dot != 0 {
				return fmt.Errorf("pb: columns %d and %d are not orthogonal (dot %d)", a, b, dot)
			}
		}
	}
	if d.Foldover {
		for i := 0; i < d.X; i++ {
			for j := 0; j < d.Columns; j++ {
				if d.Matrix[d.X+i][j] != -d.Matrix[i][j] {
					return fmt.Errorf("pb: foldover row %d is not the mirror of row %d at column %d", d.X+i, i, j)
				}
			}
		}
	}
	return nil
}
