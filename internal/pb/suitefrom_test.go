package pb

import (
	"math"
	"testing"
)

// TestSuiteFromResponsesMatchesRunSuite pins the distributed-analysis
// contract: assembling a Suite from precomputed response vectors must
// yield bit-identical effects, ranks, and ordering to evaluating the
// same response function in-process.
func TestSuiteFromResponsesMatchesRunSuite(t *testing.T) {
	factors := make([]Factor, 7)
	for i := range factors {
		factors[i] = Factor{Name: string(rune('A' + i)), Low: "lo", High: "hi"}
	}
	weights := [][]float64{
		{9, 1, 4, 0.5, 2, 7, 0.25},
		{1, 8, 0.5, 3, 6, 0.125, 2},
	}
	benchmarks := []string{"b0", "b1"}
	responses := make([]Response, len(benchmarks))
	for bi := range benchmarks {
		w := weights[bi]
		responses[bi] = func(levels []Level) float64 {
			v := 100.0
			for i, lv := range levels {
				if i < len(w) && lv == High {
					v += w[i]
				}
			}
			return v / 3.0 // not exactly representable: bit-identity is meaningful
		}
	}
	want, err := RunSuite(factors, benchmarks, responses, Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}

	vecs := make([][]float64, len(benchmarks))
	for bi, res := range want.Results {
		vecs[bi] = res.Responses
	}
	got, err := SuiteFromResponses(want.Design, factors, benchmarks, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range benchmarks {
		for fi := range got.Results[bi].Effects {
			g, w := got.Results[bi].Effects[fi], want.Results[bi].Effects[fi]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("benchmark %d effect %d: %x != %x", bi, fi, math.Float64bits(g), math.Float64bits(w))
			}
		}
		for fi := range got.RankRows[bi] {
			if got.RankRows[bi][fi] != want.RankRows[bi][fi] {
				t.Fatalf("benchmark %d rank %d: %d != %d", bi, fi, got.RankRows[bi][fi], want.RankRows[bi][fi])
			}
		}
	}
	for fi := range got.Sums {
		if got.Sums[fi] != want.Sums[fi] || got.Order[fi] != want.Order[fi] {
			t.Fatalf("sum/order diverged at %d: %d/%d vs %d/%d",
				fi, got.Sums[fi], got.Order[fi], want.Sums[fi], want.Order[fi])
		}
	}
	if len(got.Factors) != got.Design.Columns {
		t.Fatalf("factors not padded: %d of %d", len(got.Factors), got.Design.Columns)
	}
}

func TestSuiteFromResponsesValidates(t *testing.T) {
	d, err := New(7, false)
	if err != nil {
		t.Fatal(err)
	}
	factors := []Factor{{Name: "A"}}
	if _, err := SuiteFromResponses(d, factors, []string{"b"}, nil); err == nil {
		t.Fatal("mismatched benchmark/vector counts accepted")
	}
	if _, err := SuiteFromResponses(d, factors, nil, nil); err == nil {
		t.Fatal("empty suite accepted")
	}
	if _, err := SuiteFromResponses(d, factors, []string{"b"}, [][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("short response vector accepted")
	}
}
