package pb

import (
	"math"
	"sort"

	"pbsim/internal/stats"
)

// Ranks converts effect values into significance ranks: the factor
// with the largest absolute effect gets rank 1. Ties are broken by
// column index so that ranks are a permutation of 1..len(effects),
// matching the paper's tables where every rank appears exactly once
// per benchmark column.
func Ranks(effects []float64) []int {
	idx := make([]int, len(effects))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := math.Abs(effects[idx[a]]), math.Abs(effects[idx[b]])
		if !stats.ApproxEqual(ea, eb, 0) {
			return ea > eb
		}
		return idx[a] < idx[b]
	})
	ranks := make([]int, len(effects))
	for r, col := range idx {
		ranks[col] = r + 1
	}
	return ranks
}

// SumOfRanks sums each factor's rank across benchmarks. rankRows is
// indexed [benchmark][factor]; the result is indexed [factor]. Lower
// sums identify the factors that matter most across the whole
// benchmark suite (the paper's Table 9 "Sum" column).
func SumOfRanks(rankRows [][]int) []int {
	if len(rankRows) == 0 {
		return nil
	}
	sums := make([]int, len(rankRows[0]))
	for _, row := range rankRows {
		for j, r := range row {
			sums[j] += r
		}
	}
	return sums
}

// OrderBySum returns factor indices sorted by ascending sum-of-ranks,
// ties broken by factor index: the presentation order of Table 9.
func OrderBySum(sums []int) []int {
	order := make([]int, len(sums))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if sums[order[a]] != sums[order[b]] {
			return sums[order[a]] < sums[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// SignificanceGap scans the sum-of-ranks in ascending order and
// returns the position (1-based count of leading factors) before the
// largest relative jump, the heuristic the paper uses to conclude that
// "only the first ten parameters are significant". The gap is searched
// in the first half of the list only, since trailing sums are noise.
func SignificanceGap(sums []int) int {
	order := OrderBySum(sums)
	if len(order) < 3 {
		return len(order)
	}
	bestPos, bestJump := 1, 0
	limit := len(order) / 2
	for i := 1; i <= limit; i++ {
		jump := sums[order[i]] - sums[order[i-1]]
		if jump > bestJump {
			bestJump = jump
			bestPos = i
		}
	}
	return bestPos
}

// RankShift reports, per factor, after[j]-before[j] of the
// sum-of-ranks: the paper's Section 4.3 measure of how an enhancement
// changes each parameter's overall significance. Positive shifts mean
// the factor lost significance (its sum grew).
func RankShift(before, after []int) []int {
	n := len(before)
	if len(after) < n {
		n = len(after)
	}
	shift := make([]int, n)
	for j := 0; j < n; j++ {
		shift[j] = after[j] - before[j]
	}
	return shift
}
