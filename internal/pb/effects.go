package pb

import (
	"fmt"

	"pbsim/internal/stats"
)

// Effects computes the raw Plackett-Burman effect of every factor
// column from one response value per design row, exactly as in Table 4
// of the paper: the effect of column j is the sum over rows i of
// Matrix[i][j] * responses[i]. Only the magnitude of an effect is
// meaningful; its sign is not.
func Effects(d *Design, responses []float64) ([]float64, error) {
	if len(responses) != d.Runs() {
		return nil, fmt.Errorf("pb: got %d responses for a %d-run design", len(responses), d.Runs())
	}
	effects := make([]float64, d.Columns)
	for i, row := range d.Matrix {
		y := responses[i]
		for j, lv := range row {
			effects[j] += float64(lv) * y
		}
	}
	return effects, nil
}

// NormalizedEffects divides the raw effects by half the run count,
// yielding the classical effect estimate: the average response change
// when the factor moves from its low to its high value.
func NormalizedEffects(d *Design, responses []float64) ([]float64, error) {
	effects, err := Effects(d, responses)
	if err != nil {
		return nil, err
	}
	half := float64(d.Runs()) / 2
	for j := range effects {
		effects[j] /= half
	}
	return effects, nil
}

// GrandMean returns the average response over all runs, the design's
// estimate of the response at the center of the factor space.
func GrandMean(responses []float64) float64 {
	if len(responses) == 0 {
		return 0
	}
	sum := 0.0
	for _, y := range responses {
		sum += y
	}
	return sum / float64(len(responses))
}

// SingleFactorSS returns, per factor, the share of the total
// sum-of-squares attributable to that factor under the PB model:
// SS_j = (raw effect_j)^2 / Runs. Together with ranking this lets a
// user see not just the order of factors but how dominant each one is
// (the paper's caveat about art's FP-sqrt rank in Section 4.1).
func SingleFactorSS(d *Design, responses []float64) ([]float64, error) {
	effects, err := Effects(d, responses)
	if err != nil {
		return nil, err
	}
	ss := make([]float64, len(effects))
	n := float64(d.Runs())
	for j, e := range effects {
		ss[j] = e * e / n
	}
	return ss, nil
}

// PercentOfVariation expresses each factor's PB sum-of-squares as a
// percentage of the sum over all factor columns (dummy columns
// included). It is a quick dominance screen to pair with rank output.
func PercentOfVariation(d *Design, responses []float64) ([]float64, error) {
	ss, err := SingleFactorSS(d, responses)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range ss {
		total += v
	}
	pct := make([]float64, len(ss))
	if stats.ApproxEqual(total, 0, 0) {
		return pct, nil
	}
	for j, v := range ss {
		pct[j] = 100 * v / total
	}
	return pct, nil
}
