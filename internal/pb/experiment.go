package pb

import (
	"fmt"
	"runtime"
	"sync"
)

// Factor describes one two-level experimental factor: a processor
// parameter, a compiler switch, or any other binary choice. Low and
// High are human-readable descriptions of the two settings (e.g.
// "8 entries" / "64 entries", or "2-level" / "perfect").
type Factor struct {
	Name string
	Low  string
	High string
}

// Dummy returns a placeholder factor for unused design columns. Its
// estimated effect measures experimental noise.
func Dummy(n int) Factor {
	return Factor{
		Name: fmt.Sprintf("Dummy Factor #%d", n),
		Low:  "-",
		High: "-",
	}
}

// Response evaluates one design row: given the level of every factor
// column it returns the measured response (in this paper, simulated
// execution time in cycles). Implementations must be safe for
// concurrent use; the runner fans rows out across goroutines.
type Response func(levels []Level) float64

// Options configures an experiment run.
type Options struct {
	// Foldover selects the 2X-run foldover design (the paper's
	// recommendation); without it the basic X-run design is used.
	Foldover bool
	// Parallelism bounds the number of concurrently evaluated rows.
	// Zero selects GOMAXPROCS.
	Parallelism int
}

// Result holds everything produced by one PB experiment on a single
// benchmark/response.
type Result struct {
	Design    *Design
	Factors   []Factor // padded with dummies to Design.Columns
	Responses []float64
	Effects   []float64 // raw effects, one per column
	Ranks     []int     // 1 = most significant, one per column
}

// Run executes a full Plackett-Burman experiment: it builds the
// smallest design that can hold the factors, evaluates the response
// for every configuration row (in parallel), and computes effects and
// ranks. The factor list is padded with dummy factors up to the design
// column count.
func Run(factors []Factor, response Response, opts Options) (*Result, error) {
	design, err := New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	return RunWithDesign(design, factors, response, opts)
}

// RunWithDesign is Run with a caller-supplied design, allowing one
// design to be reused across benchmarks (as in Table 9, where the same
// X=44 foldover design drives all 13 workloads).
func RunWithDesign(design *Design, factors []Factor, response Response, opts Options) (*Result, error) {
	if len(factors) > design.Columns {
		return nil, fmt.Errorf("pb: %d factors exceed the design's %d columns", len(factors), design.Columns)
	}
	padded := make([]Factor, design.Columns)
	copy(padded, factors)
	for i := len(factors); i < design.Columns; i++ {
		padded[i] = Dummy(i - len(factors) + 1)
	}
	responses := EvaluateRows(design, response, opts.Parallelism)
	effects, err := Effects(design, responses)
	if err != nil {
		return nil, err
	}
	return &Result{
		Design:    design,
		Factors:   padded,
		Responses: responses,
		Effects:   effects,
		Ranks:     Ranks(effects),
	}, nil
}

// EvaluateRows computes the response of every design row using up to
// parallelism goroutines (GOMAXPROCS when zero).
func EvaluateRows(design *Design, response Response, parallelism int) []float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	n := design.Runs()
	if parallelism > n {
		parallelism = n
	}
	responses := make([]float64, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				responses[i] = response(design.Row(i))
			}
		}()
	}
	wg.Wait()
	return responses
}

// Suite runs the same design over several named responses (one per
// benchmark) and aggregates ranks, reproducing the full Table 9
// workflow including the sum-of-ranks ordering.
type Suite struct {
	Design     *Design
	Factors    []Factor
	Benchmarks []string
	Results    []*Result // one per benchmark, same order
	RankRows   [][]int   // [benchmark][factor]
	Sums       []int     // [factor]
	Order      []int     // factor indices by ascending sum
}

// RunSuite evaluates responses[bi] for every benchmark bi over a
// shared design built for the given factors.
func RunSuite(factors []Factor, benchmarks []string, responses []Response, opts Options) (*Suite, error) {
	if len(benchmarks) != len(responses) {
		return nil, fmt.Errorf("pb: %d benchmark names but %d responses", len(benchmarks), len(responses))
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("pb: empty benchmark suite")
	}
	design, err := New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	s := &Suite{
		Design:     design,
		Benchmarks: benchmarks,
		Results:    make([]*Result, len(benchmarks)),
		RankRows:   make([][]int, len(benchmarks)),
	}
	for bi, resp := range responses {
		res, err := RunWithDesign(design, factors, resp, opts)
		if err != nil {
			return nil, fmt.Errorf("pb: benchmark %s: %w", benchmarks[bi], err)
		}
		s.Results[bi] = res
		s.RankRows[bi] = res.Ranks
		if s.Factors == nil {
			s.Factors = res.Factors
		}
	}
	s.Sums = SumOfRanks(s.RankRows)
	s.Order = OrderBySum(s.Sums)
	return s, nil
}
