package pb

import (
	"context"
	"fmt"
	"math"
	"sync"

	"pbsim/internal/runner"
)

// Factor describes one two-level experimental factor: a processor
// parameter, a compiler switch, or any other binary choice. Low and
// High are human-readable descriptions of the two settings (e.g.
// "8 entries" / "64 entries", or "2-level" / "perfect").
type Factor struct {
	Name string
	Low  string
	High string
}

// Dummy returns a placeholder factor for unused design columns. Its
// estimated effect measures experimental noise.
func Dummy(n int) Factor {
	return Factor{
		Name: fmt.Sprintf("Dummy Factor #%d", n),
		Low:  "-",
		High: "-",
	}
}

// Response evaluates one design row: given the level of every factor
// column it returns the measured response (in this paper, simulated
// execution time in cycles). Implementations must be safe for
// concurrent use; the runner fans rows out across goroutines.
//
// Response is the legacy infallible form. New code should implement
// FallibleResponse, which can report per-row errors and observe
// cancellation instead of panicking.
type Response func(levels []Level) float64

// FallibleResponse is the fault-tolerant row evaluator: it receives
// the run's context (carrying cancellation and the per-attempt
// deadline) and may fail with an error, which the runner retries and,
// if retries are exhausted, aggregates into the experiment's error —
// never into a silent NaN in the effects.
type FallibleResponse func(ctx context.Context, levels []Level) (float64, error)

// Fallible adapts a legacy infallible response to the fallible
// interface.
func (r Response) Fallible() FallibleResponse {
	//pbcheck:ignore ctxflow a legacy infallible Response cannot observe cancellation; the adapter drops ctx by design
	return func(_ context.Context, levels []Level) (float64, error) {
		return r(levels), nil
	}
}

// Infallible adapts a fallible response for infallible-only analyses
// (the one-at-a-time and full-factorial baselines), which predate the
// error path. A Response has no way to report failure, so the adapter
// routes it through the error path out of band: a failed row yields
// NaN — poisoning any statistic derived from it rather than inventing
// a plausible value — and the first error is recorded and returned by
// errf once the analysis finishes. Callers must check errf() before
// trusting the results. The adapter is safe for concurrent rows.
func (f FallibleResponse) Infallible() (resp Response, errf func() error) {
	var mu sync.Mutex
	var first error
	resp = func(levels []Level) float64 {
		v, err := f(context.Background(), levels)
		if err != nil {
			mu.Lock()
			if first == nil {
				first = err
			}
			mu.Unlock()
			return math.NaN()
		}
		return v
	}
	errf = func() error {
		mu.Lock()
		defer mu.Unlock()
		return first
	}
	return resp, errf
}

// Options configures an experiment run.
type Options struct {
	// Foldover selects the 2X-run foldover design (the paper's
	// recommendation); without it the basic X-run design is used.
	Foldover bool
	// Parallelism bounds the number of concurrently evaluated rows.
	// Zero selects GOMAXPROCS. (Runner.Parallelism, when set, wins.)
	Parallelism int
	// Runner tunes fault tolerance: per-row timeout, retries with
	// capped backoff, checkpointing, and fault injection. The zero
	// value is a plain parallel evaluation.
	Runner runner.Config
}

// Result holds everything produced by one PB experiment on a single
// benchmark/response.
type Result struct {
	Design    *Design
	Factors   []Factor // padded with dummies to Design.Columns
	Responses []float64
	Effects   []float64 // raw effects, one per column
	Ranks     []int     // 1 = most significant, one per column
}

// Run executes a full Plackett-Burman experiment: it builds the
// smallest design that can hold the factors, evaluates the response
// for every configuration row (in parallel), and computes effects and
// ranks. The factor list is padded with dummy factors up to the design
// column count.
//
// Run is the legacy infallible entry point, a thin adapter over
// RunCtx.
func Run(factors []Factor, response Response, opts Options) (*Result, error) {
	return RunCtx(context.Background(), factors, response.Fallible(), opts)
}

// RunCtx is the fault-tolerant form of Run.
func RunCtx(ctx context.Context, factors []Factor, response FallibleResponse, opts Options) (*Result, error) {
	design, err := New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	return RunWithDesignCtx(ctx, design, factors, response, opts)
}

// RunWithDesign is Run with a caller-supplied design, allowing one
// design to be reused across benchmarks (as in Table 9, where the same
// X=44 foldover design drives all 13 workloads).
func RunWithDesign(design *Design, factors []Factor, response Response, opts Options) (*Result, error) {
	return RunWithDesignCtx(context.Background(), design, factors, response.Fallible(), opts)
}

// RunWithDesignCtx is the fault-tolerant form of RunWithDesign.
func RunWithDesignCtx(ctx context.Context, design *Design, factors []Factor, response FallibleResponse, opts Options) (*Result, error) {
	if len(factors) > design.Columns {
		return nil, fmt.Errorf("pb: %d factors exceed the design's %d columns", len(factors), design.Columns)
	}
	padded := make([]Factor, design.Columns)
	copy(padded, factors)
	for i := len(factors); i < design.Columns; i++ {
		padded[i] = Dummy(i - len(factors) + 1)
	}
	responses, err := EvaluateRowsCtx(ctx, design, response, opts)
	if err != nil {
		return nil, err
	}
	effects, err := Effects(design, responses)
	if err != nil {
		return nil, err
	}
	return &Result{
		Design:    design,
		Factors:   padded,
		Responses: responses,
		Effects:   effects,
		Ranks:     Ranks(effects),
	}, nil
}

// EvaluateRows computes the response of every design row using up to
// parallelism goroutines (GOMAXPROCS when zero).
//
// It is the legacy infallible entry point, kept as a thin adapter
// over the fault-tolerant runner: an infallible response cannot
// error, so the only failure mode is a panic inside it, which the
// runner recovers and EvaluateRows reports as an error — the same
// error path every other entry point uses.
func EvaluateRows(design *Design, response Response, parallelism int) ([]float64, error) {
	return EvaluateRowsCtx(context.Background(), design, response.Fallible(),
		Options{Parallelism: parallelism})
}

// EvaluateRowsCtx evaluates every design row through the resilient
// runner: bounded parallelism, cancellation, per-row timeout, retry
// with backoff, panic recovery, and checkpointing per opts.Runner.
func EvaluateRowsCtx(ctx context.Context, design *Design, response FallibleResponse, opts Options) ([]float64, error) {
	cfg := opts.Runner
	if cfg.Parallelism == 0 {
		cfg.Parallelism = opts.Parallelism
	}
	task := func(ctx context.Context, i int) (float64, error) {
		return response(ctx, design.Row(i))
	}
	//pbcheck:ignore determinism runner.Evaluate's wall-clock reads feed latency metrics only; row values are bit-identical under Nop vs instrumented recorders (pinned by obs bit-identity tests)
	return runner.Evaluate(ctx, design.Runs(), task, cfg)
}

// Suite runs the same design over several named responses (one per
// benchmark) and aggregates ranks, reproducing the full Table 9
// workflow including the sum-of-ranks ordering.
type Suite struct {
	Design     *Design
	Factors    []Factor
	Benchmarks []string
	Results    []*Result // one per benchmark, same order
	RankRows   [][]int   // [benchmark][factor]
	Sums       []int     // [factor]
	Order      []int     // factor indices by ascending sum
}

// RunSuite evaluates responses[bi] for every benchmark bi over a
// shared design built for the given factors. It is the legacy
// infallible entry point, a thin adapter over RunSuiteCtx.
func RunSuite(factors []Factor, benchmarks []string, responses []Response, opts Options) (*Suite, error) {
	fallible := make([]FallibleResponse, len(responses))
	for i, r := range responses {
		fallible[i] = r.Fallible()
	}
	return RunSuiteCtx(context.Background(), factors, benchmarks, fallible, opts)
}

// RunSuiteCtx is the fault-tolerant form of RunSuite: the context
// cancels the whole suite, and opts.Runner adds timeouts, retries,
// and checkpointing. Each benchmark's rows are checkpointed under a
// scope derived from its name, so one checkpoint file resumes the
// whole suite.
func RunSuiteCtx(ctx context.Context, factors []Factor, benchmarks []string, responses []FallibleResponse, opts Options) (*Suite, error) {
	if len(benchmarks) != len(responses) {
		return nil, fmt.Errorf("pb: %d benchmark names but %d responses", len(benchmarks), len(responses))
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("pb: empty benchmark suite")
	}
	design, err := New(len(factors), opts.Foldover)
	if err != nil {
		return nil, err
	}
	return RunSuiteWithDesignCtx(ctx, design, factors, benchmarks, responses, opts)
}

// RunSuiteWithDesignCtx is RunSuiteCtx with a caller-supplied design,
// the form the experiment harness uses so it can fingerprint the
// checkpoint before the first row runs.
func RunSuiteWithDesignCtx(ctx context.Context, design *Design, factors []Factor, benchmarks []string, responses []FallibleResponse, opts Options) (*Suite, error) {
	if len(benchmarks) != len(responses) {
		return nil, fmt.Errorf("pb: %d benchmark names but %d responses", len(benchmarks), len(responses))
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("pb: empty benchmark suite")
	}
	s := &Suite{
		Design:     design,
		Benchmarks: benchmarks,
		Results:    make([]*Result, len(benchmarks)),
		RankRows:   make([][]int, len(benchmarks)),
	}
	baseScope := opts.Runner.Scope
	for bi, resp := range responses {
		bopts := opts
		bopts.Runner.Scope = benchmarks[bi]
		if baseScope != "" {
			bopts.Runner.Scope = baseScope + "/" + benchmarks[bi]
		}
		res, err := RunWithDesignCtx(ctx, design, factors, resp, bopts)
		if err != nil {
			return nil, fmt.Errorf("pb: benchmark %s: %w", benchmarks[bi], err)
		}
		s.Results[bi] = res
		s.RankRows[bi] = res.Ranks
		if s.Factors == nil {
			s.Factors = res.Factors
		}
	}
	s.Sums = SumOfRanks(s.RankRows)
	s.Order = OrderBySum(s.Sums)
	return s, nil
}

// SuiteFromResponses assembles a Suite from precomputed response
// vectors — one dense vector of Design.Runs() values per benchmark —
// instead of evaluating them. It is the analysis half of the
// distributed execution split: workers (internal/runner/dist) produce
// the vectors, a merge proves them complete and consistent, and this
// function computes the identical effects, ranks, and sum-of-ranks
// ordering a sequential RunSuiteWithDesignCtx call yields from the
// same values.
func SuiteFromResponses(design *Design, factors []Factor, benchmarks []string, responses [][]float64) (*Suite, error) {
	if len(benchmarks) != len(responses) {
		return nil, fmt.Errorf("pb: %d benchmark names but %d response vectors", len(benchmarks), len(responses))
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("pb: empty benchmark suite")
	}
	if len(factors) > design.Columns {
		return nil, fmt.Errorf("pb: %d factors exceed the design's %d columns", len(factors), design.Columns)
	}
	padded := make([]Factor, design.Columns)
	copy(padded, factors)
	for i := len(factors); i < design.Columns; i++ {
		padded[i] = Dummy(i - len(factors) + 1)
	}
	s := &Suite{
		Design:     design,
		Factors:    padded,
		Benchmarks: benchmarks,
		Results:    make([]*Result, len(benchmarks)),
		RankRows:   make([][]int, len(benchmarks)),
	}
	for bi, vec := range responses {
		if len(vec) != design.Runs() {
			return nil, fmt.Errorf("pb: benchmark %s has %d responses, design needs %d", benchmarks[bi], len(vec), design.Runs())
		}
		effects, err := Effects(design, vec)
		if err != nil {
			return nil, fmt.Errorf("pb: benchmark %s: %w", benchmarks[bi], err)
		}
		s.Results[bi] = &Result{
			Design:    design,
			Factors:   padded,
			Responses: vec,
			Effects:   effects,
			Ranks:     Ranks(effects),
		}
		s.RankRows[bi] = s.Results[bi].Ranks
	}
	s.Sums = SumOfRanks(s.RankRows)
	s.Order = OrderBySum(s.Sums)
	return s, nil
}
