package pb

import (
	"sync/atomic"
	"testing"
)

func TestRunIdentifiesSignificantFactors(t *testing.T) {
	factors := []Factor{
		{Name: "big", Low: "off", High: "on"},
		{Name: "small", Low: "off", High: "on"},
		{Name: "inert", Low: "off", High: "on"},
	}
	response := func(levels []Level) float64 {
		return 1000 + 50*float64(levels[0]) + 5*float64(levels[1])
	}
	res, err := Run(factors, response, Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0] != 1 {
		t.Errorf("rank(big) = %d, want 1", res.Ranks[0])
	}
	if res.Ranks[1] != 2 {
		t.Errorf("rank(small) = %d, want 2", res.Ranks[1])
	}
	if res.Effects[2] != 0 {
		t.Errorf("effect(inert) = %g, want 0", res.Effects[2])
	}
}

func TestRunPadsWithDummies(t *testing.T) {
	factors := []Factor{{Name: "only", Low: "l", High: "h"}}
	res, err := Run(factors, func([]Level) float64 { return 1 }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != res.Design.Columns {
		t.Fatalf("factors padded to %d, want %d", len(res.Factors), res.Design.Columns)
	}
	if res.Factors[0].Name != "only" {
		t.Errorf("first factor = %q", res.Factors[0].Name)
	}
	if res.Factors[1].Name != "Dummy Factor #1" || res.Factors[2].Name != "Dummy Factor #2" {
		t.Errorf("dummy names: %q, %q", res.Factors[1].Name, res.Factors[2].Name)
	}
}

func TestRunWithDesignRejectsOverflow(t *testing.T) {
	d, _ := NewWithSize(4, false)
	factors := make([]Factor, 5)
	if _, err := RunWithDesign(d, factors, func([]Level) float64 { return 0 }, Options{}); err == nil {
		t.Error("expected error when factors exceed design columns")
	}
}

func TestEvaluateRowsCoversEveryRowOnce(t *testing.T) {
	d, _ := NewWithSize(12, true)
	var calls int64
	resp := func(levels []Level) float64 {
		atomic.AddInt64(&calls, 1)
		s := 0.0
		for _, lv := range levels {
			s += float64(lv)
		}
		return s
	}
	for _, par := range []int{0, 1, 3, 64} {
		atomic.StoreInt64(&calls, 0)
		got, err := EvaluateRows(d, resp, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if int(atomic.LoadInt64(&calls)) != d.Runs() {
			t.Errorf("parallelism %d: %d calls, want %d", par, calls, d.Runs())
		}
		for i, row := range d.Matrix {
			want := 0.0
			for _, lv := range row {
				want += float64(lv)
			}
			if got[i] != want {
				t.Errorf("parallelism %d row %d: got %g want %g", par, i, got[i], want)
			}
		}
	}
}

func TestRunSuite(t *testing.T) {
	factors := []Factor{
		{Name: "A"}, {Name: "B"}, {Name: "C"},
	}
	// Two "benchmarks" that are sensitive to different factors.
	respA := func(levels []Level) float64 { return 10 * float64(levels[0]) }
	respB := func(levels []Level) float64 { return 10 * float64(levels[1]) }
	suite, err := RunSuite(factors, []string{"ba", "bb"}, []Response{respA, respB}, Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != 2 || len(suite.RankRows) != 2 {
		t.Fatalf("suite sizes: %d results, %d rank rows", len(suite.Results), len(suite.RankRows))
	}
	if suite.RankRows[0][0] != 1 {
		t.Errorf("benchmark ba should rank factor A first, got %d", suite.RankRows[0][0])
	}
	if suite.RankRows[1][1] != 1 {
		t.Errorf("benchmark bb should rank factor B first, got %d", suite.RankRows[1][1])
	}
	// A and B each scored rank 1 once; both must precede C in the
	// sum-of-ranks order.
	posC := -1
	for i, f := range suite.Order {
		if f == 2 {
			posC = i
		}
	}
	if posC == 0 || posC == 1 {
		t.Errorf("inert factor C ordered at position %d; sums %v", posC, suite.Sums)
	}
}

func TestRunSuiteValidation(t *testing.T) {
	if _, err := RunSuite(nil, []string{"x"}, nil, Options{}); err == nil {
		t.Error("mismatched benchmark/response lengths should fail")
	}
	if _, err := RunSuite([]Factor{{Name: "A"}}, nil, nil, Options{}); err == nil {
		t.Error("empty suite should fail")
	}
}

func TestDummyFactor(t *testing.T) {
	f := Dummy(3)
	if f.Name != "Dummy Factor #3" {
		t.Errorf("Dummy(3).Name = %q", f.Name)
	}
}
