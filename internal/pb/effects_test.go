package pb

import (
	"math"
	"testing"
)

// Table 4 of the paper: responses for the X=8 design and the published
// effects for factors A..G.
var (
	table4Responses = []float64{1, 9, 74, 28, 3, 6, 112, 84}
	table4Effects   = []float64{-23, -67, -137, 129, -105, -225, 73}
)

func TestEffectsMatchPaperTable4(t *testing.T) {
	d, err := NewWithSize(8, false)
	if err != nil {
		t.Fatal(err)
	}
	effects, err := Effects(d, table4Responses)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range table4Effects {
		if effects[j] != want {
			t.Errorf("effect %c = %g, want %g", 'A'+j, effects[j], want)
		}
	}
}

func TestTable4Ranking(t *testing.T) {
	// "These results show that the parameters with the most effect are
	// F, C, and D, in order of their overall impact on performance."
	d, _ := NewWithSize(8, false)
	effects, _ := Effects(d, table4Responses)
	ranks := Ranks(effects)
	if ranks[5] != 1 { // F
		t.Errorf("rank(F) = %d, want 1", ranks[5])
	}
	if ranks[2] != 2 { // C
		t.Errorf("rank(C) = %d, want 2", ranks[2])
	}
	if ranks[3] != 3 { // D
		t.Errorf("rank(D) = %d, want 3", ranks[3])
	}
}

func TestNormalizedEffects(t *testing.T) {
	d, _ := NewWithSize(8, false)
	norm, err := NormalizedEffects(d, table4Responses)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range table4Effects {
		if got := norm[j]; math.Abs(got-want/4) > 1e-12 {
			t.Errorf("normalized effect %c = %g, want %g", 'A'+j, got, want/4)
		}
	}
}

func TestEffectsLengthMismatch(t *testing.T) {
	d, _ := NewWithSize(8, false)
	if _, err := Effects(d, []float64{1, 2, 3}); err == nil {
		t.Error("Effects should reject a short response vector")
	}
	if _, err := NormalizedEffects(d, []float64{1, 2, 3}); err == nil {
		t.Error("NormalizedEffects should reject a short response vector")
	}
	if _, err := SingleFactorSS(d, []float64{1}); err == nil {
		t.Error("SingleFactorSS should reject a short response vector")
	}
	if _, err := PercentOfVariation(d, []float64{1}); err == nil {
		t.Error("PercentOfVariation should reject a short response vector")
	}
}

func TestGrandMean(t *testing.T) {
	if got := GrandMean(nil); got != 0 {
		t.Errorf("GrandMean(nil) = %g", got)
	}
	if got := GrandMean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("GrandMean = %g, want 4", got)
	}
}

func TestConstantResponseHasZeroEffects(t *testing.T) {
	// A response that ignores every factor must produce zero effect on
	// every column; this is the balance property in action.
	d, _ := NewWithSize(12, true)
	responses := make([]float64, d.Runs())
	for i := range responses {
		responses[i] = 42
	}
	effects, err := Effects(d, responses)
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range effects {
		if e != 0 {
			t.Errorf("effect[%d] = %g for constant response, want 0", j, e)
		}
	}
}

func TestSingleActiveFactorIsolated(t *testing.T) {
	// If the response depends on exactly one column, only that column
	// gets a nonzero effect: orthogonality isolates main effects.
	for _, x := range []int{8, 12, 20, 44} {
		d, err := NewWithSize(x, true)
		if err != nil {
			t.Fatal(err)
		}
		active := d.Columns / 2
		responses := make([]float64, d.Runs())
		for i := range responses {
			responses[i] = 100 + 7*float64(d.Matrix[i][active])
		}
		effects, _ := Effects(d, responses)
		for j, e := range effects {
			if j == active {
				if e != 7*float64(d.Runs()) {
					t.Errorf("X=%d: active effect = %g, want %g", x, e, 7*float64(d.Runs()))
				}
			} else if e != 0 {
				t.Errorf("X=%d: inactive effect[%d] = %g, want 0", x, j, e)
			}
		}
	}
}

func TestPercentOfVariationSumsTo100(t *testing.T) {
	d, _ := NewWithSize(8, false)
	pct, err := PercentOfVariation(d, table4Responses)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range pct {
		if p < 0 {
			t.Errorf("negative percentage %g", p)
		}
		total += p
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("percentages sum to %g, want 100", total)
	}
	// All-zero responses must not divide by zero.
	zero := make([]float64, d.Runs())
	pct, err = PercentOfVariation(d, zero)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pct {
		if p != 0 {
			t.Errorf("zero-response percentage = %g, want 0", p)
		}
	}
}

func TestFoldoverCancelsTwoFactorInteractions(t *testing.T) {
	// The key statistical property of the foldover: a pure two-factor
	// interaction (response = product of two columns) contributes
	// nothing to any main-effect estimate. Without foldover, PB
	// designs alias interactions onto main effects.
	d, err := NewWithSize(12, true)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d.Columns; a++ {
		for b := a + 1; b < d.Columns; b++ {
			responses := make([]float64, d.Runs())
			for i := range responses {
				responses[i] = float64(d.Matrix[i][a]) * float64(d.Matrix[i][b])
			}
			effects, _ := Effects(d, responses)
			for j, e := range effects {
				if e != 0 {
					t.Fatalf("foldover design leaks interaction (%d,%d) into main effect %d: %g", a, b, j, e)
				}
			}
		}
	}
}

func TestPlainPBAliasesInteractions(t *testing.T) {
	// Sanity check of the converse: without foldover at least one
	// two-factor interaction must alias onto some main effect. This is
	// exactly why the paper recommends the foldover.
	d, err := NewWithSize(12, false)
	if err != nil {
		t.Fatal(err)
	}
	responses := make([]float64, d.Runs())
	for i := range responses {
		responses[i] = float64(d.Matrix[i][0]) * float64(d.Matrix[i][1])
	}
	effects, _ := Effects(d, responses)
	leaked := false
	for _, e := range effects {
		if e != 0 {
			leaked = true
		}
	}
	if !leaked {
		t.Error("expected the plain PB design to alias the 0x1 interaction onto main effects")
	}
}
