package pb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickSizes are the design sizes exercised by the property tests.
var quickSizes = []int{4, 8, 12, 16, 20, 24, 32, 36, 44, 48}

// TestPropEffectsAreLinear checks that Effects is a linear operator:
// Effects(a*y1 + b*y2) == a*Effects(y1) + b*Effects(y2).
func TestPropEffectsAreLinear(t *testing.T) {
	f := func(seed int64, a, b float64, sizeIdx uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e3)
		b = math.Mod(b, 1e3)
		x := quickSizes[int(sizeIdx)%len(quickSizes)]
		d, err := NewWithSize(x, seed%2 == 0)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		y1 := make([]float64, d.Runs())
		y2 := make([]float64, d.Runs())
		combo := make([]float64, d.Runs())
		for i := range y1 {
			y1[i] = rng.NormFloat64() * 100
			y2[i] = rng.NormFloat64() * 100
			combo[i] = a*y1[i] + b*y2[i]
		}
		e1, _ := Effects(d, y1)
		e2, _ := Effects(d, y2)
		ec, _ := Effects(d, combo)
		for j := range ec {
			want := a*e1[j] + b*e2[j]
			tol := 1e-6 * (1 + math.Abs(want))
			if math.Abs(ec[j]-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropRanksArePermutation checks that Ranks always emits a
// permutation of 1..n for arbitrary effect vectors.
func TestPropRanksArePermutation(t *testing.T) {
	f := func(effects []float64) bool {
		ranks := Ranks(effects)
		if len(ranks) != len(effects) {
			return false
		}
		seen := make([]bool, len(ranks)+1)
		for _, r := range ranks {
			if r < 1 || r > len(ranks) || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropRanksOrderByMagnitude checks that a rank-1 factor never has
// a smaller absolute effect than any other factor.
func TestPropRanksOrderByMagnitude(t *testing.T) {
	f := func(effects []float64) bool {
		if len(effects) == 0 {
			return true
		}
		for i := range effects {
			if math.IsNaN(effects[i]) {
				effects[i] = 0
			}
		}
		ranks := Ranks(effects)
		// For every pair, a strictly larger magnitude implies a
		// strictly smaller (better) rank.
		for a := range effects {
			for b := range effects {
				if math.Abs(effects[a]) > math.Abs(effects[b]) && ranks[a] > ranks[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropFoldoverMirror checks the foldover construction across all
// supported sizes: the second half is always the exact sign mirror of
// the first half.
func TestPropFoldoverMirror(t *testing.T) {
	f := func(sizeIdx uint8) bool {
		x := quickSizes[int(sizeIdx)%len(quickSizes)]
		d, err := NewWithSize(x, true)
		if err != nil {
			return false
		}
		for i := 0; i < d.X; i++ {
			for j := 0; j < d.Columns; j++ {
				if d.Matrix[d.X+i][j] != -d.Matrix[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropSumOfRanksBounds checks that every factor's sum of ranks
// over B benchmarks lies in [B, B*numFactors].
func TestPropSumOfRanksBounds(t *testing.T) {
	f := func(seed int64, nb uint8, nf uint8) bool {
		benches := int(nb%7) + 1
		factors := int(nf%15) + 1
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]int, benches)
		for b := range rows {
			effects := make([]float64, factors)
			for j := range effects {
				effects[j] = rng.NormFloat64()
			}
			rows[b] = Ranks(effects)
		}
		sums := SumOfRanks(rows)
		total := 0
		for _, s := range sums {
			if s < benches || s > benches*factors {
				return false
			}
			total += s
		}
		// The grand total is invariant: B * (1 + 2 + ... + F).
		return total == benches*factors*(factors+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropDummyColumnsReadZeroWhenResponseIgnoresThem checks the
// noise-floor property the paper relies on: columns the response never
// reads estimate exactly zero effect on a deterministic simulator.
func TestPropDummyColumnsReadZeroWhenResponseIgnoresThem(t *testing.T) {
	f := func(seed int64, sizeIdx uint8, activeMask uint16) bool {
		x := quickSizes[int(sizeIdx)%len(quickSizes)]
		d, err := NewWithSize(x, true)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		weights := make([]float64, d.Columns)
		for j := 0; j < d.Columns && j < 16; j++ {
			if activeMask&(1<<uint(j)) != 0 {
				weights[j] = rng.NormFloat64() * 10
			}
		}
		responses := make([]float64, d.Runs())
		for i, row := range d.Matrix {
			y := 500.0
			for j, w := range weights {
				y += w * float64(row[j])
			}
			responses[i] = y
		}
		effects, _ := Effects(d, responses)
		for j := range effects {
			want := weights[j] * float64(d.Runs())
			if math.Abs(effects[j]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
