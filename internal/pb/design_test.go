package pb

import (
	"strings"
	"testing"
)

// table2 is the Plackett and Burman design matrix for X=8 exactly as
// printed in Table 2 of the paper.
var table2 = [][]Level{
	{+1, +1, +1, -1, +1, -1, -1},
	{-1, +1, +1, +1, -1, +1, -1},
	{-1, -1, +1, +1, +1, -1, +1},
	{+1, -1, -1, +1, +1, +1, -1},
	{-1, +1, -1, -1, +1, +1, +1},
	{+1, -1, +1, -1, -1, +1, +1},
	{+1, +1, -1, +1, -1, -1, +1},
	{-1, -1, -1, -1, -1, -1, -1},
}

func TestDesignX8MatchesPaperTable2(t *testing.T) {
	d, err := NewWithSize(8, false)
	if err != nil {
		t.Fatalf("NewWithSize(8): %v", err)
	}
	if d.Runs() != 8 || d.Columns != 7 {
		t.Fatalf("got %d runs x %d cols, want 8x7", d.Runs(), d.Columns)
	}
	for i := range table2 {
		for j := range table2[i] {
			if d.Matrix[i][j] != table2[i][j] {
				t.Errorf("matrix[%d][%d] = %v, want %v", i, j, d.Matrix[i][j], table2[i][j])
			}
		}
	}
}

func TestFoldoverX8MatchesPaperTable3(t *testing.T) {
	d, err := NewWithSize(8, true)
	if err != nil {
		t.Fatalf("NewWithSize(8, foldover): %v", err)
	}
	if d.Runs() != 16 {
		t.Fatalf("foldover runs = %d, want 16", d.Runs())
	}
	// The first 8 rows are Table 2 (the shaded part of Table 3)...
	for i := range table2 {
		for j := range table2[i] {
			if d.Matrix[i][j] != table2[i][j] {
				t.Errorf("base matrix[%d][%d] = %v, want %v", i, j, d.Matrix[i][j], table2[i][j])
			}
		}
	}
	// ...and rows 8..15 are their sign mirrors.
	for i := 0; i < 8; i++ {
		for j := 0; j < 7; j++ {
			if d.Matrix[8+i][j] != -table2[i][j] {
				t.Errorf("foldover matrix[%d][%d] = %v, want %v", 8+i, j, d.Matrix[8+i][j], -table2[i][j])
			}
		}
	}
}

func TestAllSupportedSizesVerify(t *testing.T) {
	for _, x := range SupportedSizes() {
		for _, fold := range []bool{false, true} {
			d, err := NewWithSize(x, fold)
			if err != nil {
				t.Fatalf("NewWithSize(%d, %v): %v", x, fold, err)
			}
			if err := Verify(d); err != nil {
				t.Errorf("X=%d foldover=%v: %v", x, fold, err)
			}
		}
	}
}

func TestClassicalGeneratorRows(t *testing.T) {
	// First rows as published by Plackett and Burman (1946) and
	// reproduced in standard design-of-experiments references.
	want := map[int]string{
		4:  "++-",
		8:  "+++-+--",
		12: "++-+++---+-",
		16: "++++-+-++--+---",
		20: "++--++++-+-+----++-",
		24: "+++++-+-++--++--+-+----",
		36: "-+-+++---+++++-+++--+----+-+-++--+-",
	}
	for x, s := range want {
		row, err := generatorRow(x)
		if err != nil {
			t.Fatalf("generatorRow(%d): %v", x, err)
		}
		var b strings.Builder
		for _, lv := range row {
			if lv == High {
				b.WriteByte('+')
			} else {
				b.WriteByte('-')
			}
		}
		if b.String() != s {
			t.Errorf("generator for X=%d:\n got %s\nwant %s", x, b.String(), s)
		}
	}
}

func TestRunSize(t *testing.T) {
	cases := []struct {
		factors int
		want    int
	}{
		{1, 4}, {3, 4}, {4, 8}, {7, 8}, {8, 12}, {11, 12}, {12, 16},
		{19, 20}, {20, 24}, {23, 24},
		// 24..27 factors would classically use X=28, which has no
		// cyclic construction; we round up to 32.
		{24, 32}, {27, 32}, {31, 32}, {32, 36}, {35, 36},
		// 36..39 factors round up past the non-cyclic X=40 to 44.
		{36, 44}, {43, 44}, {44, 48}, {47, 48}, {48, 60},
	}
	for _, c := range cases {
		got, err := RunSize(c.factors)
		if err != nil {
			t.Fatalf("RunSize(%d): %v", c.factors, err)
		}
		if got != c.want {
			t.Errorf("RunSize(%d) = %d, want %d", c.factors, got, c.want)
		}
	}
}

func TestPaperX44Design(t *testing.T) {
	// The paper's Table 9 uses an X=44 foldover design: 88 runs and 43
	// factor columns (41 parameters + 2 dummies).
	d, err := New(43, true)
	if err != nil {
		t.Fatalf("New(43, foldover): %v", err)
	}
	if d.X != 44 {
		t.Errorf("X = %d, want 44", d.X)
	}
	if d.Runs() != 88 {
		t.Errorf("runs = %d, want 88", d.Runs())
	}
	if d.Columns != 43 {
		t.Errorf("columns = %d, want 43", d.Columns)
	}
	if err := Verify(d); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(0, false); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(-3, false); err == nil {
		t.Error("New(-3) should fail")
	}
	if _, err := New(MaxFactors+1, false); err == nil {
		t.Error("New(MaxFactors+1) should fail")
	}
	if _, err := NewWithSize(28, false); err == nil {
		t.Error("NewWithSize(28) should fail: no cyclic construction exists")
	}
	if _, err := NewWithSize(40, false); err == nil {
		t.Error("NewWithSize(40) should fail: no cyclic construction exists")
	}
	if _, err := NewWithSize(10, false); err == nil {
		t.Error("NewWithSize(10) should fail: not a multiple of four")
	}
}

func TestLevelString(t *testing.T) {
	if High.String() != "+1" || Low.String() != "-1" {
		t.Errorf("Level strings: %s %s", High, Low)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	d, _ := NewWithSize(8, true)
	d.Matrix[3][2] = -d.Matrix[3][2]
	if err := Verify(d); err == nil {
		t.Error("Verify should detect a flipped entry")
	}
	d, _ = NewWithSize(8, false)
	d.Matrix[0][0] = 0
	if err := Verify(d); err == nil {
		t.Error("Verify should detect a zero entry")
	}
	d, _ = NewWithSize(8, false)
	d.Matrix = d.Matrix[:7]
	if err := Verify(d); err == nil {
		t.Error("Verify should detect missing rows")
	}
}
