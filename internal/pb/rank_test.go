package pb

import (
	"testing"
)

func TestRanksBasic(t *testing.T) {
	effects := []float64{-23, -67, -137, 129, -105, -225, 73}
	ranks := Ranks(effects)
	// Magnitudes 225 > 137 > 129 > 105 > 73 > 67 > 23.
	want := []int{7, 6, 2, 3, 4, 1, 5}
	for j := range want {
		if ranks[j] != want[j] {
			t.Errorf("rank[%d] = %d, want %d", j, ranks[j], want[j])
		}
	}
}

func TestRanksUseMagnitudeOnly(t *testing.T) {
	// "Only the magnitude of the effect is important; the sign of the
	// effect is meaningless."
	a := Ranks([]float64{-10, 5, -1})
	b := Ranks([]float64{10, -5, 1})
	for j := range a {
		if a[j] != b[j] {
			t.Errorf("sign changed rank[%d]: %d vs %d", j, a[j], b[j])
		}
	}
}

func TestRanksTiesAreStable(t *testing.T) {
	ranks := Ranks([]float64{3, -3, 3})
	want := []int{1, 2, 3}
	for j := range want {
		if ranks[j] != want[j] {
			t.Errorf("tie rank[%d] = %d, want %d", j, ranks[j], want[j])
		}
	}
}

func TestRanksIsPermutation(t *testing.T) {
	effects := []float64{0, 2, -2, 7, 7, -9, 0.5, 0}
	ranks := Ranks(effects)
	seen := make(map[int]bool)
	for _, r := range ranks {
		if r < 1 || r > len(effects) {
			t.Fatalf("rank %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("rank %d assigned twice", r)
		}
		seen[r] = true
	}
}

func TestSumOfRanks(t *testing.T) {
	rows := [][]int{
		{1, 2, 3},
		{3, 1, 2},
		{2, 3, 1},
	}
	sums := SumOfRanks(rows)
	for j, s := range sums {
		if s != 6 {
			t.Errorf("sum[%d] = %d, want 6", j, s)
		}
	}
	if SumOfRanks(nil) != nil {
		t.Error("SumOfRanks(nil) should be nil")
	}
}

func TestOrderBySum(t *testing.T) {
	sums := []int{36, 52, 100, 118, 36}
	order := OrderBySum(sums)
	want := []int{0, 4, 1, 2, 3} // ties broken by index
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestSignificanceGap(t *testing.T) {
	// Ten small sums followed by a jump, mimicking Table 9 where the
	// gap between the 10th (164) and 11th (237) sum marks the cutoff.
	sums := []int{36, 52, 100, 118, 130, 133, 138, 153, 160, 164, 237, 246, 253, 260, 266, 268, 284, 287, 296, 301, 306, 309}
	if got := SignificanceGap(sums); got != 10 {
		t.Errorf("SignificanceGap = %d, want 10", got)
	}
	if got := SignificanceGap([]int{1, 2}); got != 2 {
		t.Errorf("SignificanceGap(short) = %d, want 2", got)
	}
}

func TestRankShift(t *testing.T) {
	before := []int{118, 36, 52}
	after := []int{137, 36, 52}
	shift := RankShift(before, after)
	want := []int{19, 0, 0}
	for j := range want {
		if shift[j] != want[j] {
			t.Errorf("shift[%d] = %d, want %d", j, shift[j], want[j])
		}
	}
	if got := RankShift([]int{1, 2, 3}, []int{4}); len(got) != 1 || got[0] != 3 {
		t.Errorf("RankShift length mismatch handling: %v", got)
	}
}
