package pb

import (
	"math"
	"testing"
)

func foldoverResponses(d *Design, f func(levels []Level) float64) []float64 {
	out := make([]float64, d.Runs())
	for i, row := range d.Matrix {
		out[i] = f(row)
	}
	return out
}

func TestAnalyzeFoldoverSeparatesMainFromInteraction(t *testing.T) {
	d, err := NewWithSize(12, true)
	if err != nil {
		t.Fatal(err)
	}
	// y = 7*x2 + 5*x0*x1: a main effect on column 2 and a pure
	// interaction between columns 0 and 1.
	responses := foldoverResponses(d, func(l []Level) float64 {
		return 7*float64(l[2]) + 5*float64(l[0])*float64(l[1])
	})
	a, err := AnalyzeFoldover(d, responses)
	if err != nil {
		t.Fatal(err)
	}
	// De-aliased main effects: only column 2 is nonzero.
	for j, m := range a.Main {
		want := 0.0
		if j == 2 {
			want = 7 * float64(d.Runs())
		}
		if math.Abs(m-want) > 1e-9 {
			t.Errorf("main[%d] = %g, want %g", j, m, want)
		}
	}
	// The 0x1 interaction must surface in at least one column's alias
	// estimate, and the total aliased magnitude is nonzero.
	total := 0.0
	for _, ia := range a.AliasedInteractions {
		total += math.Abs(ia)
	}
	if total == 0 {
		t.Fatal("interaction invisible to the foldover analysis")
	}
	heavy := a.InteractionHeavy(0.1)
	if len(heavy) == 0 {
		t.Error("InteractionHeavy found nothing despite a strong interaction")
	}
}

func TestAnalyzeFoldoverPureMainEffects(t *testing.T) {
	d, _ := NewWithSize(8, true)
	responses := foldoverResponses(d, func(l []Level) float64 {
		return 100 + 3*float64(l[0]) + 2*float64(l[4])
	})
	a, err := AnalyzeFoldover(d, responses)
	if err != nil {
		t.Fatal(err)
	}
	for j, ia := range a.AliasedInteractions {
		if math.Abs(ia) > 1e-9 {
			t.Errorf("aliased interaction [%d] = %g for an additive response", j, ia)
		}
	}
	if math.Abs(a.Main[0]-3*float64(d.Runs())) > 1e-9 {
		t.Errorf("main[0] = %g", a.Main[0])
	}
	if len(a.InteractionHeavy(0.05)) != 0 {
		t.Error("InteractionHeavy false positive")
	}
}

func TestAnalyzeFoldoverConsistentWithEffects(t *testing.T) {
	// The de-aliased main effect equals the whole-design raw effect:
	// the foldover's Effects already average out two-factor terms.
	d, _ := NewWithSize(12, true)
	responses := foldoverResponses(d, func(l []Level) float64 {
		y := 50.0
		for j, lv := range l {
			y += float64(j) * float64(lv)
		}
		y += 9 * float64(l[3]) * float64(l[7])
		return y
	})
	a, err := AnalyzeFoldover(d, responses)
	if err != nil {
		t.Fatal(err)
	}
	effects, _ := Effects(d, responses)
	for j := range effects {
		if math.Abs(a.Main[j]-effects[j]) > 1e-9 {
			t.Errorf("column %d: main %g != whole-design effect %g", j, a.Main[j], effects[j])
		}
	}
}

func TestAnalyzeFoldoverValidation(t *testing.T) {
	plain, _ := NewWithSize(8, false)
	if _, err := AnalyzeFoldover(plain, make([]float64, 8)); err == nil {
		t.Error("non-foldover design accepted")
	}
	fold, _ := NewWithSize(8, true)
	if _, err := AnalyzeFoldover(fold, make([]float64, 3)); err == nil {
		t.Error("short response vector accepted")
	}
}
