// Package pb implements Plackett-Burman two-level fractional
// multifactorial experimental designs, the statistical core of Yi,
// Lilja and Hawkins, "A Statistically Rigorous Approach for Improving
// Simulation Methodology" (HPCA 2003).
//
// A Plackett-Burman (PB) design estimates the main effect of N
// two-level factors in only X runs, where X is the next multiple of
// four greater than N. The optional foldover doubles the run count to
// 2X and frees the main-effect estimates from aliasing with two-factor
// interactions.
//
// Design matrices are built from the classical Plackett-Burman (1946)
// cyclic generator rows. For run sizes X where X-1 is a prime p with
// p = 3 (mod 4), the generator row is produced by the Paley
// quadratic-residue construction with the indexing
//
//	row[j] = +1  iff  (p+1-j) mod p is not a quadratic residue of p
//
// which reproduces the published rows exactly (verified for
// X = 8, 12, 20 and 24 against the 1946 paper and standard design-of-
// experiments references). The remaining published cyclic sizes
// (X = 16 and 36, where X-1 is not prime) are hard-coded. Sizes with
// no cyclic construction (X = 28, 40) are skipped; New rounds the run
// count up to the next supported size instead, which costs a few extra
// runs but never loses resolution.
package pb

import (
	"errors"
	"fmt"
	"sync"
)

// Level is a factor setting in a design row: +1 selects the factor's
// high value and -1 its low value.
type Level int8

// Levels of a two-level factor.
const (
	High Level = +1
	Low  Level = -1
)

// String returns the conventional "+1" / "-1" rendering.
func (l Level) String() string {
	if l >= 0 {
		return "+1"
	}
	return "-1"
}

// MaxFactors is the largest number of factors New supports. It covers
// every design used in the paper (the largest is 43 factors, X = 44)
// with headroom.
const MaxFactors = 83

// generator16 and generator36 are the classical published first rows
// for the two supported run sizes whose X-1 is not prime.
var (
	generator16 = "++++-+-++--+---"
	generator36 = "-+-+++---+++++-+++--+----+-+-++--+-"
)

// supportedSizes lists the cyclic run sizes this package can build, in
// ascending order.
var supportedSizes = []int{4, 8, 12, 16, 20, 24, 32, 36, 44, 48, 60, 68, 72, 80, 84}

// Design is a Plackett-Burman design matrix, optionally folded over.
// Rows are simulation configurations; columns are factors. When the
// number of real factors is smaller than Columns, the trailing columns
// act as dummy factors whose estimated effects measure experimental
// noise.
type Design struct {
	// X is the base run count (a multiple of four).
	X int
	// Columns is the number of factor columns, always X-1.
	Columns int
	// Foldover reports whether the mirrored rows are appended,
	// doubling Runs from X to 2X.
	Foldover bool
	// Matrix holds the rows of factor levels. len(Matrix) == Runs();
	// len(Matrix[i]) == Columns.
	Matrix [][]Level
}

// Runs returns the number of simulation configurations in the design:
// X without foldover, 2X with.
func (d *Design) Runs() int { return len(d.Matrix) }

// Row returns the i-th configuration of the design. The returned slice
// aliases the design matrix and must not be modified.
func (d *Design) Row(i int) []Level { return d.Matrix[i] }

// Fingerprint identifies the design's geometry for checkpoint
// validation: checkpointed rows recorded under one design must never
// be replayed into a differently shaped experiment.
func (d *Design) Fingerprint() string {
	return fmt.Sprintf("pb:x=%d,foldover=%t,runs=%d", d.X, d.Foldover, d.Runs())
}

// ErrTooManyFactors is returned when the requested factor count
// exceeds MaxFactors.
var ErrTooManyFactors = errors.New("pb: too many factors")

// New constructs the smallest supported Plackett-Burman design with at
// least numFactors factor columns. With foldover, the X mirrored rows
// are appended after the base rows exactly as in Table 3 of the paper.
func New(numFactors int, foldover bool) (*Design, error) {
	if numFactors < 1 {
		return nil, fmt.Errorf("pb: numFactors must be >= 1, got %d", numFactors)
	}
	if numFactors > MaxFactors {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyFactors, numFactors, MaxFactors)
	}
	x, err := RunSize(numFactors)
	if err != nil {
		return nil, err
	}
	return NewWithSize(x, foldover)
}

// RunSize returns the smallest supported base run count X whose X-1
// columns can hold numFactors factors. Per the paper this is "the next
// multiple of four greater than N", except that the two sizes with no
// cyclic construction (28 and 40) are rounded up.
func RunSize(numFactors int) (int, error) {
	for _, x := range supportedSizes {
		if x-1 >= numFactors {
			return x, nil
		}
	}
	return 0, fmt.Errorf("%w: no supported design size for %d factors", ErrTooManyFactors, numFactors)
}

// designKey identifies one memoized design geometry.
type designKey struct {
	x        int
	foldover bool
}

// designMasters memoizes the flat matrix backing for each geometry.
// PB matrices are deterministic functions of (X, foldover), and every
// layer of the stack — RunSuite, the benchmark harness, all six CLIs —
// rebuilds the same few geometries over and over; the master copy is
// built once and cloned on each request so callers still own (and may
// mutate) their matrix.
var designMasters sync.Map // designKey -> []Level

// NewWithSize constructs the design with exactly the given base run
// count X, which must be one of the supported cyclic sizes.
func NewWithSize(x int, foldover bool) (*Design, error) {
	cols := x - 1
	rows := x
	if foldover {
		rows = 2 * x
	}
	key := designKey{x: x, foldover: foldover}
	cached, ok := designMasters.Load(key)
	if !ok {
		master, err := buildMatrix(x, foldover)
		if err != nil {
			return nil, err
		}
		cached, _ = designMasters.LoadOrStore(key, master)
	}
	master := cached.([]Level)
	// One backing array keeps the matrix cache-friendly; cloning the
	// master keeps the returned design independently mutable.
	backing := make([]Level, len(master))
	copy(backing, master)
	matrix := make([][]Level, rows)
	for i := range matrix {
		matrix[i] = backing[i*cols : (i+1)*cols]
	}
	return &Design{X: x, Columns: cols, Foldover: foldover, Matrix: matrix}, nil
}

// buildMatrix constructs the flat row-major level array of the design.
func buildMatrix(x int, foldover bool) ([]Level, error) {
	gen, err := generatorRow(x)
	if err != nil {
		return nil, err
	}
	cols := x - 1
	rows := x
	if foldover {
		rows = 2 * x
	}
	backing := make([]Level, rows*cols)
	row := func(i int) []Level { return backing[i*cols : (i+1)*cols] }
	// First row is the generator; the next X-2 rows are successive
	// circular right shifts; row X is all -1.
	copy(row(0), gen)
	for i := 1; i < x-1; i++ {
		prev := row(i - 1)
		cur := row(i)
		cur[0] = prev[cols-1]
		copy(cur[1:], prev[:cols-1])
	}
	last := row(x - 1)
	for j := 0; j < cols; j++ {
		last[j] = Low
	}
	if foldover {
		for i := 0; i < x; i++ {
			base, mirror := row(i), row(x+i)
			for j := 0; j < cols; j++ {
				mirror[j] = -base[j]
			}
		}
	}
	return backing, nil
}

// generatorRow returns the first row of the cyclic design of base size
// x as X-1 levels.
func generatorRow(x int) ([]Level, error) {
	switch x {
	case 16:
		return parseRow(generator16), nil
	case 36:
		return parseRow(generator36), nil
	}
	p := x - 1
	if !isPrime(p) || p%4 != 3 {
		return nil, fmt.Errorf("pb: unsupported design size X=%d (X-1 must be prime congruent to 3 mod 4, or X in {16, 36})", x)
	}
	qr := quadraticResidues(p)
	row := make([]Level, p)
	for j := 1; j <= p; j++ {
		// Classical Plackett-Burman indexing of the Paley row; see the
		// package comment. Index 0 counts as a non-residue.
		idx := (p + 1 - j) % p
		if qr[idx] {
			row[j-1] = Low
		} else {
			row[j-1] = High
		}
	}
	return row, nil
}

// parseRow converts a "+-" string into levels.
func parseRow(s string) []Level {
	row := make([]Level, len(s))
	for i, c := range s {
		if c == '+' {
			row[i] = High
		} else {
			row[i] = Low
		}
	}
	return row
}

// quadraticResidues returns a table t where t[v] reports whether v is
// a nonzero quadratic residue modulo the prime p.
func quadraticResidues(p int) []bool {
	t := make([]bool, p)
	for v := 1; v < p; v++ {
		t[v*v%p] = true
	}
	return t
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// SupportedSizes returns the base run sizes this package can
// construct, in ascending order. The slice is a copy.
func SupportedSizes() []int {
	out := make([]int, len(supportedSizes))
	copy(out, supportedSizes)
	return out
}
