package pb

import "fmt"

// Foldover designs measure more than de-aliased main effects: because
// the second half of the design mirrors the first, the half-difference
// of the two column effects isolates the two-factor-interaction
// aliases that the basic design folds into each main effect. This is
// the paper's "effect of all of the main parameters and selected
// interactions" (Section 2.2).
//
// Writing E1[j] for column j's effect over the base rows and E2[j]
// over the mirrored rows:
//
//	E1[j] =  main[j] + alias2FI[j]   (+ higher-order terms)
//	E2[j] =  main[j] - alias2FI[j]   (signs of odd-order terms flip)
//
// so (E1+E2)/2 estimates the main effect and (E1-E2)/2 the summed
// two-factor interactions aliased onto column j.

// FoldoverAnalysis separates main effects from their aliased
// two-factor-interaction chains.
type FoldoverAnalysis struct {
	// Main holds the de-aliased main effect per column, on the scale
	// of a full-design raw effect (summed over all 2X rows).
	Main []float64
	// AliasedInteractions holds, per column, the summed two-factor
	// interaction contrast that a basic (non-foldover) design would
	// have confounded with that column's main effect, on the same
	// scale.
	AliasedInteractions []float64
}

// AnalyzeFoldover decomposes the responses of a foldover design. It
// fails on designs built without foldover.
func AnalyzeFoldover(d *Design, responses []float64) (*FoldoverAnalysis, error) {
	if !d.Foldover {
		return nil, fmt.Errorf("pb: AnalyzeFoldover requires a foldover design")
	}
	if len(responses) != d.Runs() {
		return nil, fmt.Errorf("pb: got %d responses for a %d-run design", len(responses), d.Runs())
	}
	a := &FoldoverAnalysis{
		Main:                make([]float64, d.Columns),
		AliasedInteractions: make([]float64, d.Columns),
	}
	for i := 0; i < d.X; i++ {
		yBase := responses[i]
		yMirror := responses[d.X+i]
		for j, lv := range d.Matrix[i] {
			// The mirror row's level is -lv, so its column-effect
			// contribution is (-lv)*yMirror.
			e1 := float64(lv) * yBase
			e2 := -float64(lv) * yMirror
			a.Main[j] += e1 + e2
			a.AliasedInteractions[j] += e1 - e2
		}
	}
	return a, nil
}

// InteractionHeavy reports the columns whose aliased-interaction
// magnitude exceeds frac times the largest main-effect magnitude: the
// parameters whose basic-design estimates would have been distorted
// most, and therefore candidates for a follow-up full factorial (the
// paper's step 3).
func (a *FoldoverAnalysis) InteractionHeavy(frac float64) []int {
	maxMain := 0.0
	for _, m := range a.Main {
		if v := absf(m); v > maxMain {
			maxMain = v
		}
	}
	var out []int
	for j, ia := range a.AliasedInteractions {
		if absf(ia) > frac*maxMain {
			out = append(out, j)
		}
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
