// Package truth generates synthetic ground-truth response surfaces
// with *known* answers, the raw material of the methodology-assessment
// harness (internal/assess). The paper asserts that a Plackett-Burman
// screen finds the bottleneck parameters; following Arnold & Loeppky
// ("The Problem with Assessing Statistical Methods"), that claim is
// only testable against a diverse population of surfaces where the
// true factor importances are known by construction, including the
// cliff-shaped responses of Zhen & Bao where single-feature
// attribution is known to break.
//
// Every surface is a pure, deterministic function of its Config: the
// same (family, factors, seed, ...) regenerates a bit-identical
// surface, and Eval depends only on the level vector — noise included,
// which is derived by hashing the configuration rather than by
// consuming a stream, so evaluation order and repetition cannot change
// any value. Each surface carries its exact importance vector
// (computed by exhaustive enumeration of all 2^K corners of the
// noiseless surface), the implied true ranking, and the designated
// true critical set.
package truth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Family names one generator of ground-truth surfaces.
type Family string

// The five surface families. Their shapes are chosen to bracket the
// regimes the related work identifies: pure main effects (where the PB
// screen's assumptions hold exactly), two- and three-factor
// interactions (where PB's strength-2 orthogonality helps and then
// catastrophically fails — see package assess), cliffs/thresholds
// (Zhen & Bao), and monotone-saturating curves (diminishing returns,
// the typical resource-sizing response).
const (
	MainEffects Family = "main-effects"
	TwoFactor   Family = "two-factor"
	ThreeFactor Family = "three-factor"
	Cliff       Family = "cliff"
	Saturating  Family = "saturating"
)

// Families returns every surface family in presentation order.
func Families() []Family {
	return []Family{MainEffects, TwoFactor, ThreeFactor, Cliff, Saturating}
}

// MaxFactors bounds the factor count: the exact importance vector is
// computed by exhaustive enumeration of all 2^K corners, so K is kept
// small enough for that to stay trivial (2^16 evaluations).
const MaxFactors = 16

// Config specifies one surface. Surfaces are value-identical functions
// of their Config: Generate is deterministic.
type Config struct {
	// Family selects the surface shape.
	Family Family
	// Factors is K, the number of two-level factors (2..MaxFactors).
	Factors int
	// Critical is the number of truly important factors (1..Factors).
	// The generator designates this many factors as the true critical
	// set and guarantees their exact importance strictly dominates
	// every non-critical factor's.
	Critical int
	// SNR is the signal-to-noise ratio: the ratio of the noiseless
	// response's standard deviation (over the full factorial) to the
	// additive noise's standard deviation. 0 disables noise.
	SNR float64
	// Seed drives every random choice the generator makes and the
	// per-configuration noise hash.
	Seed int64
}

// term is one polynomial term: coef * product of the listed factors'
// levels.
type term struct {
	factors []int
	coef    float64
}

// cliffTerm adds jump to the response exactly when every listed factor
// sits at its required level — a discontinuity in the response surface.
type cliffTerm struct {
	factors []int
	pattern []int8
	jump    float64
}

// satShape is the monotone-saturating transform: the response rises as
// scale * (1 - exp(-rate * u)) where u is the weighted count of
// critical factors at their high level.
type satShape struct {
	weights []float64 // per-factor, 0 for non-participants
	rate    float64
	scale   float64
}

// Surface is one generated ground-truth response. The exported truth
// fields are exact properties of the noiseless surface, not estimates.
type Surface struct {
	Config

	linear []float64
	terms  []term
	cliffs []cliffTerm
	sat    *satShape
	sigma  float64 // noise standard deviation (0 when SNR == 0)

	// Importance[j] is factor j's exact total influence: the average,
	// over all 2^(K-1) settings of the other factors, of half the
	// absolute response change when factor j flips — the quantity a
	// perfect screening method would rank by. It is computed by
	// exhaustive enumeration of the noiseless surface.
	Importance []float64
	// Order lists factor indices by descending Importance, ties broken
	// by index: the true ranking.
	Order []int
	// Critical lists the designated truly-critical factor indices in
	// ascending order. By construction it equals the top
	// Config.Critical entries of Order as a set.
	Critical []int
}

// SurfaceSeed derives the seed of the i-th sampled surface of a
// family from a campaign seed. Sampling N surfaces per family from
// one campaign seed this way keeps every surface independent while
// the whole campaign stays reproducible from a single number.
//
//pbcheck:pure
func SurfaceSeed(campaign int64, family Family, i int) int64 {
	return int64(mix(uint64(campaign), fnv64(string(family)), uint64(i)+1))
}

// Generate builds the surface for cfg. It is deterministic: equal
// configs yield bit-identical surfaces.
func Generate(cfg Config) (*Surface, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	// Mix the family name into the seed so one campaign seed yields
	// unrelated surfaces per family. The generator is explicitly
	// seeded: the seed is a pure function of cfg.
	rng := rand.New(rand.NewSource(int64(mix(uint64(cfg.Seed), fnv64(string(cfg.Family)), 0))))
	s := &Surface{
		Config: cfg,
		linear: make([]float64, cfg.Factors),
	}
	critical := pickCritical(rng, cfg.Factors, cfg.Critical)
	s.Critical = append([]int(nil), critical...)
	sort.Ints(s.Critical)

	switch cfg.Family {
	case MainEffects:
		buildMainEffects(s, rng, critical)
	case TwoFactor:
		buildTwoFactor(s, rng, critical)
	case ThreeFactor:
		buildThreeFactor(s, rng, critical)
	case Cliff:
		buildCliff(s, rng, critical)
	case Saturating:
		buildSaturating(s, rng, critical)
	}

	corners := s.enumerate()
	s.Importance = influences(corners, cfg.Factors)
	s.Order = orderByImportance(s.Importance)
	if err := s.checkDominance(); err != nil {
		return nil, err
	}
	if cfg.SNR > 0 {
		std := populationStd(corners)
		s.sigma = std / cfg.SNR
	}
	return s, nil
}

func validate(cfg Config) error {
	known := false
	for _, f := range Families() {
		if f == cfg.Family {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("truth: unknown family %q", cfg.Family)
	}
	if cfg.Factors < 2 || cfg.Factors > MaxFactors {
		return fmt.Errorf("truth: factors must be in 2..%d, got %d", MaxFactors, cfg.Factors)
	}
	if cfg.Critical < 1 || cfg.Critical >= cfg.Factors {
		return fmt.Errorf("truth: critical must be in 1..factors-1, got %d of %d", cfg.Critical, cfg.Factors)
	}
	if cfg.Family == TwoFactor && cfg.Critical < 2 {
		return fmt.Errorf("truth: family %s needs >= 2 critical factors", cfg.Family)
	}
	if (cfg.Family == ThreeFactor || cfg.Family == Cliff) && cfg.Critical < 3 {
		return fmt.Errorf("truth: family %s needs >= 3 critical factors", cfg.Family)
	}
	if cfg.SNR < 0 {
		return fmt.Errorf("truth: SNR must be >= 0, got %g", cfg.SNR)
	}
	return nil
}

// pickCritical designates the true critical subset, in the random
// order the permutation produced (the builders use that order as the
// effect-size spectrum's order).
func pickCritical(rng *rand.Rand, k, c int) []int {
	perm := rng.Perm(k)
	return perm[:c]
}

// Effect-size scales shared by the family builders. The gap between
// criticalFloor*... and nuisanceScale is what guarantees the declared
// critical set dominates exactly (checkDominance enforces it).
const (
	mainScale     = 2.0  // largest critical main-effect magnitude
	spectrumDecay = 0.85 // geometric decay across the critical spectrum
	nuisanceScale = 0.02 // largest non-critical magnitude
)

// sign returns +1 or -1.
func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return 1
	}
	return -1
}

// addNuisance gives every non-critical factor a tiny linear effect so
// non-critical columns are not exact zeros (a real simulator's
// insignificant parameters still move the response a little).
func addNuisance(s *Surface, rng *rand.Rand, critical []int) {
	isCrit := make([]bool, s.Factors)
	for _, f := range critical {
		isCrit[f] = true
	}
	for j := 0; j < s.Factors; j++ {
		if !isCrit[j] {
			s.linear[j] = sign(rng) * nuisanceScale * (0.25 + 0.75*rng.Float64())
		}
	}
}

// spectrum returns the i-th critical effect magnitude: a controllable
// geometric spectrum from mainScale down, jittered a little so ranks
// are informative but never reordered.
func spectrum(rng *rand.Rand, i int) float64 {
	base := mainScale * math.Pow(spectrumDecay, float64(i))
	return base * (0.95 + 0.05*rng.Float64())
}

// buildMainEffects: a purely additive surface — the regime where the
// PB screen's model is exactly true.
func buildMainEffects(s *Surface, rng *rand.Rand, critical []int) {
	for i, f := range critical {
		s.linear[f] = sign(rng) * spectrum(rng, i)
	}
	addNuisance(s, rng, critical)
}

// buildTwoFactor: critical main effects plus two-factor interactions
// among the critical set, at roughly half the main-effect scale. A
// base PB design aliases these interactions onto other columns; the
// foldover cancels them.
func buildTwoFactor(s *Surface, rng *rand.Rand, critical []int) {
	for i, f := range critical {
		s.linear[f] = sign(rng) * spectrum(rng, i)
	}
	c := len(critical)
	for i := 0; i < c; i++ {
		a, b := critical[i], critical[(i+1)%c]
		if a == b {
			continue
		}
		coef := sign(rng) * 0.5 * mainScale * (0.5 + 0.5*rng.Float64())
		s.terms = append(s.terms, term{factors: []int{a, b}, coef: coef})
	}
	addNuisance(s, rng, critical)
}

// buildThreeFactor: the adversarial family. The first three designated
// critical factors carry a dominant three-factor interaction and only
// vestigial main effects; any further critical factors get ordinary
// main effects. Because PB designs are orthogonal arrays of strength
// two, the 3FI contributes *exactly zero* to its own participants'
// main-effect contrasts (sum_i b_i*c_i = 0 over any PB design) while
// leaking onto unrelated columns — so the PB screen ranks the truly
// dominant factors last. The foldover does not help: the 3FI is an
// odd-order term and survives mirroring.
func buildThreeFactor(s *Surface, rng *rand.Rand, critical []int) {
	trio := []int{critical[0], critical[1], critical[2]}
	sort.Ints(trio)
	coef := sign(rng) * 1.5 * mainScale * (0.9 + 0.1*rng.Float64())
	s.terms = append(s.terms, term{factors: trio, coef: coef})
	for _, f := range trio {
		// Vestigial main effect, below even the nuisance scale: the
		// trio's entire influence flows through the interaction.
		s.linear[f] = sign(rng) * 0.25 * nuisanceScale * (0.5 + 0.5*rng.Float64())
	}
	for i, f := range critical[3:] {
		s.linear[f] = sign(rng) * spectrum(rng, i)
	}
	addNuisance(s, rng, critical)
}

// buildCliff: a threshold surface — moderate critical main effects
// plus a large jump that fires only when two designated critical
// factors sit at specific levels, the Zhen & Bao cliff shape.
func buildCliff(s *Surface, rng *rand.Rand, critical []int) {
	pair := []int{critical[0], critical[1]}
	sort.Ints(pair)
	pattern := []int8{1, 1}
	if rng.Intn(2) == 0 {
		pattern[1] = -1
	}
	jump := 4 * mainScale * (0.8 + 0.2*rng.Float64())
	s.cliffs = append(s.cliffs, cliffTerm{factors: pair, pattern: pattern, jump: jump})
	for i, f := range critical[2:] {
		s.linear[f] = sign(rng) * spectrum(rng, i)
	}
	// The cliff participants also get small own effects so the surface
	// is not flat away from the cliff.
	for _, f := range pair {
		s.linear[f] = sign(rng) * 0.25 * mainScale * (0.5 + 0.5*rng.Float64())
	}
	addNuisance(s, rng, critical)
}

// buildSaturating: a monotone diminishing-returns curve over the
// critical factors (the typical resource-sizing response), plus
// nuisance linear terms.
func buildSaturating(s *Surface, rng *rand.Rand, critical []int) {
	sat := &satShape{
		weights: make([]float64, s.Factors),
		scale:   4 * mainScale,
	}
	totalW := 0.0
	for i, f := range critical {
		w := spectrum(rng, i)
		sat.weights[f] = w
		totalW += w
	}
	// Rate chosen so the surface reaches ~86% of scale with every
	// critical factor high: saturating but with usable slope
	// everywhere (minimum slope factor exp(-2)).
	sat.rate = 2 / totalW
	s.sat = sat
	addNuisance(s, rng, critical)
}

// Eval returns the (noisy, when SNR > 0) response at the given level
// vector. levels[j] must be -1 or +1 and len(levels) == Factors.
// Eval is a pure function: the noise is a hash of the configuration,
// so re-evaluating a configuration returns the identical value — like
// re-running a deterministic simulator.
//
//pbcheck:pure
func (s *Surface) Eval(levels []int8) float64 {
	y := s.EvalNoiseless(levels)
	if s.sigma > 0 {
		y += s.sigma * gauss(uint64(s.Seed), levelMask(levels))
	}
	return y
}

// EvalNoiseless returns the exact surface value with the noise term
// removed — the function the truth fields describe.
//
//pbcheck:pure
func (s *Surface) EvalNoiseless(levels []int8) float64 {
	y := 0.0
	for j, coef := range s.linear {
		y += coef * float64(levels[j])
	}
	for _, t := range s.terms {
		p := t.coef
		for _, f := range t.factors {
			p *= float64(levels[f])
		}
		y += p
	}
	for _, c := range s.cliffs {
		hit := true
		for i, f := range c.factors {
			if levels[f] != c.pattern[i] {
				hit = false
				break
			}
		}
		if hit {
			y += c.jump
		}
	}
	if s.sat != nil {
		u := 0.0
		for j, w := range s.sat.weights {
			if w > 0 && levels[j] == 1 {
				u += w
			}
		}
		y += s.sat.scale * (1 - math.Exp(-s.sat.rate*u))
	}
	return y
}

// Sigma returns the additive noise standard deviation implied by the
// configured SNR (0 when noise is disabled).
//
//pbcheck:pure
func (s *Surface) Sigma() float64 { return s.sigma }

// levelMask packs a ±1 level vector into a bitmask (bit j set when
// factor j is high). MaxFactors <= 16 keeps this in range.
//
//pbcheck:pure
func levelMask(levels []int8) uint64 {
	m := uint64(0)
	for j, lv := range levels {
		if lv > 0 {
			m |= 1 << uint(j)
		}
	}
	return m
}

// enumerate evaluates the noiseless surface at all 2^K corners,
// indexed by level mask.
//
//pbcheck:pure
func (s *Surface) enumerate() []float64 {
	k := s.Factors
	n := 1 << uint(k)
	out := make([]float64, n)
	levels := make([]int8, k)
	for m := 0; m < n; m++ {
		for j := 0; j < k; j++ {
			if m&(1<<uint(j)) != 0 {
				levels[j] = 1
			} else {
				levels[j] = -1
			}
		}
		out[m] = s.EvalNoiseless(levels)
	}
	return out
}

// influences computes each factor's exact total influence from the
// corner table: the mean over complementary corner pairs of half the
// absolute response change when the factor flips. For a purely linear
// surface this is |coefficient|; for interaction and cliff surfaces it
// captures influence that main-effect analysis cannot see.
//
//pbcheck:pure
func influences(corners []float64, k int) []float64 {
	imp := make([]float64, k)
	n := len(corners)
	for j := 0; j < k; j++ {
		bit := 1 << uint(j)
		sum := 0.0
		for m := 0; m < n; m++ {
			if m&bit != 0 {
				continue
			}
			sum += math.Abs(corners[m|bit]-corners[m]) / 2
		}
		imp[j] = sum / float64(n/2)
	}
	return imp
}

// orderByImportance returns factor indices by descending importance,
// ties broken by index.
func orderByImportance(imp []float64) []int {
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := imp[order[a]], imp[order[b]]
		if ia > ib {
			return true
		}
		if ia < ib {
			return false
		}
		return order[a] < order[b]
	})
	return order
}

// checkDominance enforces the generator's contract: every designated
// critical factor's exact importance strictly exceeds every
// non-critical factor's, so the declared critical set IS the top of
// the true ranking.
func (s *Surface) checkDominance() error {
	isCrit := make([]bool, s.Factors)
	for _, f := range s.Critical {
		isCrit[f] = true
	}
	minCrit, maxOther := math.Inf(1), math.Inf(-1)
	for j, v := range s.Importance {
		if isCrit[j] {
			if v < minCrit {
				minCrit = v
			}
		} else if v > maxOther {
			maxOther = v
		}
	}
	if minCrit <= maxOther {
		return fmt.Errorf("truth: generator invariant violated: weakest critical importance %g <= strongest non-critical %g (family %s seed %d)",
			minCrit, maxOther, s.Family, s.Seed)
	}
	return nil
}

// populationStd is the corner table's population standard deviation —
// the "signal" the SNR is taken against.
//
//pbcheck:pure
func populationStd(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
