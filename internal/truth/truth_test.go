package truth

import (
	"math"
	"testing"
)

// allConfigs spans every family over a spread of seeds and geometries,
// the population the property tests quantify over.
func allConfigs(seeds int) []Config {
	var cfgs []Config
	for _, fam := range Families() {
		for seed := int64(0); seed < int64(seeds); seed++ {
			cfgs = append(cfgs,
				Config{Family: fam, Factors: 8, Critical: 3, SNR: 10, Seed: seed},
				Config{Family: fam, Factors: 11, Critical: 4, SNR: 0, Seed: seed + 1000},
			)
		}
	}
	return cfgs
}

func corners(k int) [][]int8 {
	n := 1 << uint(k)
	out := make([][]int8, n)
	for m := 0; m < n; m++ {
		row := make([]int8, k)
		for j := 0; j < k; j++ {
			if m&(1<<uint(j)) != 0 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		out[m] = row
	}
	return out
}

// Property: a surface is a pure function of its Config — regenerating
// under the same seed reproduces every corner value bit-identically,
// noise included.
func TestRegenerationIsBitIdentical(t *testing.T) {
	for _, cfg := range allConfigs(4) {
		a, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		for _, levels := range corners(cfg.Factors) {
			va, vb := a.Eval(levels), b.Eval(levels)
			if math.Float64bits(va) != math.Float64bits(vb) {
				t.Fatalf("%s seed %d: corner %v differs across regeneration: %v vs %v",
					cfg.Family, cfg.Seed, levels, va, vb)
			}
		}
		// Re-evaluating the same corner on the same surface must also
		// be bit-stable (noise is hashed, not streamed).
		probe := corners(cfg.Factors)[1]
		if math.Float64bits(a.Eval(probe)) != math.Float64bits(a.Eval(probe)) {
			t.Fatalf("%s seed %d: repeated Eval differs", cfg.Family, cfg.Seed)
		}
	}
}

// Property: the declared truth is recoverable by exhaustive
// evaluation. Recomputing each factor's total influence by brute force
// over all corners of the noiseless surface must reproduce the
// declared Importance, Order, and the dominance of the Critical set.
func TestDeclaredRankingRecoverableByExhaustiveEvaluation(t *testing.T) {
	for _, cfg := range allConfigs(6) {
		s, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		k := cfg.Factors
		cs := corners(k)
		// Brute-force total influence, written independently of the
		// generator's own implementation: for every corner pair
		// differing in exactly factor j, accumulate |delta|/2.
		imp := make([]float64, k)
		for j := 0; j < k; j++ {
			sum, n := 0.0, 0
			for m, lv := range cs {
				if lv[j] == 1 {
					continue
				}
				flipped := m | (1 << uint(j))
				sum += math.Abs(s.EvalNoiseless(cs[flipped])-s.EvalNoiseless(lv)) / 2
				n++
			}
			imp[j] = sum / float64(n)
		}
		for j := range imp {
			if math.Abs(imp[j]-s.Importance[j]) > 1e-12 {
				t.Fatalf("%s seed %d: factor %d influence %g, declared %g",
					cfg.Family, cfg.Seed, j, imp[j], s.Importance[j])
			}
		}
		// The declared order must sort the recomputed influences.
		for i := 1; i < len(s.Order); i++ {
			if imp[s.Order[i-1]] < imp[s.Order[i]] {
				t.Fatalf("%s seed %d: declared order not descending at %d", cfg.Family, cfg.Seed, i)
			}
		}
		// The declared critical set must be exactly the top |Critical|
		// of the true ranking.
		top := map[int]bool{}
		for _, f := range s.Order[:cfg.Critical] {
			top[f] = true
		}
		for _, f := range s.Critical {
			if !top[f] {
				t.Fatalf("%s seed %d: critical factor %d not in the true top %d",
					cfg.Family, cfg.Seed, f, cfg.Critical)
			}
		}
	}
}

// Property: cliff surfaces actually contain the declared
// discontinuity — a pair of corners differing in a single factor whose
// response gap is at least the cliff jump, far beyond what the linear
// terms alone could produce.
func TestCliffSurfacesContainDiscontinuity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := Config{Family: Cliff, Factors: 9, Critical: 3, Seed: seed}
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.cliffs) != 1 {
			t.Fatalf("seed %d: %d cliff terms", seed, len(s.cliffs))
		}
		cl := s.cliffs[0]
		if cl.jump < 2*mainScale {
			t.Fatalf("seed %d: cliff jump %g too small to be a cliff", seed, cl.jump)
		}
		// Find the largest single-factor step anywhere on the surface.
		maxStep := 0.0
		cs := corners(cfg.Factors)
		for m, lv := range cs {
			for j := 0; j < cfg.Factors; j++ {
				if lv[j] == 1 {
					continue
				}
				step := math.Abs(s.EvalNoiseless(cs[m|(1<<uint(j))]) - s.EvalNoiseless(lv))
				if step > maxStep {
					maxStep = step
				}
			}
		}
		// Flipping a pattern factor off a matching corner steps by the
		// full jump, offset by at most that factor's own linear term
		// (bounded by 0.25*mainScale): the discontinuity must show
		// through at that scale, far beyond any smooth step.
		if floor := cl.jump - 2*0.25*mainScale; maxStep < floor {
			t.Fatalf("seed %d: largest single-factor step %g < discontinuity floor %g (jump %g)",
				seed, maxStep, floor, cl.jump)
		}
	}
}

// The noise level must realize the configured SNR: the hashed noise's
// standard deviation over all corners should match sigma, and sigma
// should be signalStd/SNR.
func TestNoiseMatchesSNR(t *testing.T) {
	cfg := Config{Family: MainEffects, Factors: 12, Critical: 4, SNR: 5, Seed: 7}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var noise []float64
	signal := make([]float64, 0, 1<<12)
	for _, lv := range corners(cfg.Factors) {
		signal = append(signal, s.EvalNoiseless(lv))
		noise = append(noise, s.Eval(lv)-s.EvalNoiseless(lv))
	}
	wantSigma := populationStd(signal) / cfg.SNR
	if math.Abs(s.Sigma()-wantSigma) > 1e-12 {
		t.Fatalf("sigma %g, want %g", s.Sigma(), wantSigma)
	}
	got := populationStd(noise)
	if got < 0.85*wantSigma || got > 1.15*wantSigma {
		t.Fatalf("empirical noise std %g not within 15%% of sigma %g", got, wantSigma)
	}
	mean := 0.0
	for _, v := range noise {
		mean += v
	}
	mean /= float64(len(noise))
	if math.Abs(mean) > 0.05*wantSigma*3 {
		t.Fatalf("noise mean %g too far from 0 (sigma %g)", mean, wantSigma)
	}
}

// The three-factor family is the documented PB-killer: the trio's
// influence must flow through the interaction (vestigial main
// effects), which strength-2 orthogonality makes invisible to a PB
// main-effect contrast.
func TestThreeFactorFamilyIsInteractionDominated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		s, err := Generate(Config{Family: ThreeFactor, Factors: 9, Critical: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.terms) != 1 || len(s.terms[0].factors) != 3 {
			t.Fatalf("seed %d: want exactly one 3FI term", seed)
		}
		for _, f := range s.terms[0].factors {
			if math.Abs(s.linear[f]) > nuisanceScale {
				t.Fatalf("seed %d: participant %d has non-vestigial main effect %g", seed, f, s.linear[f])
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{Family: "nope", Factors: 8, Critical: 2},
		{Family: MainEffects, Factors: 1, Critical: 1},
		{Family: MainEffects, Factors: MaxFactors + 1, Critical: 2},
		{Family: MainEffects, Factors: 8, Critical: 0},
		{Family: MainEffects, Factors: 8, Critical: 8},
		{Family: TwoFactor, Factors: 8, Critical: 1},
		{Family: ThreeFactor, Factors: 8, Critical: 2},
		{Family: Cliff, Factors: 8, Critical: 2},
		{Family: MainEffects, Factors: 8, Critical: 2, SNR: -1},
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%+v: want error", cfg)
		}
	}
	for _, fam := range Families() {
		if _, err := Generate(Config{Family: fam, Factors: 8, Critical: 3, Seed: 1}); err != nil {
			t.Errorf("%s: %v", fam, err)
		}
	}
}
