package truth

import "math"

// The surface noise must be a pure function of (seed, configuration):
// hashing rather than consuming a random stream means evaluation
// order, repetition, and parallelism cannot change any value. The
// mixer is the same splitmix64 finalizer the runner uses for its
// deterministic backoff jitter.

// mix maps (seed, a, b) to a well-distributed 64-bit value.
//
//pbcheck:pure
func mix(seed, a, b uint64) uint64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform maps (seed, a, b) to a float64 in [0, 1).
//
//pbcheck:pure
func uniform(seed, a, b uint64) float64 {
	return float64(mix(seed, a, b)>>11) / (1 << 53)
}

// gauss returns a standard-normal deviate fixed by (seed, mask) via
// the Box-Muller transform over two hashed uniforms.
//
//pbcheck:pure
func gauss(seed, mask uint64) float64 {
	u1 := uniform(seed, mask, 1)
	u2 := uniform(seed, mask, 2)
	// Guard u1 away from 0 so the log stays finite.
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// fnv64 is the FNV-1a hash of s, used to fold family names into seeds.
//
//pbcheck:pure
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
