package methodology

import (
	"testing"

	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
)

// paperSuite wraps the published Table 9 ranks in a pb.Suite so the
// stability machinery can run on the paper's own data.
func paperSuite() *pb.Suite {
	rows := make([][]int, len(paperdata.Benchmarks))
	vecs := paperdata.RankVectors(paperdata.Table9)
	copy(rows, vecs)
	factors := make([]pb.Factor, len(paperdata.Table9))
	for i, r := range paperdata.Table9 {
		factors[i] = pb.Factor{Name: r.Parameter}
	}
	// Rank rows are indexed [benchmark][tableRow]; the suite's factor
	// list uses the same row order.
	sums := pb.SumOfRanks(rows)
	return &pb.Suite{
		Benchmarks: paperdata.Benchmarks,
		Factors:    factors,
		RankRows:   rows,
		Sums:       sums,
		Order:      pb.OrderBySum(sums),
	}
}

func TestJackknifeOnPaperData(t *testing.T) {
	rep, err := Jackknife(paperSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Factors) != 43 {
		t.Fatalf("%d factors", len(rep.Factors))
	}
	byPos := rep.ByFullPosition()
	// The full-suite ordering starts with the ROB (paper Table 9).
	if byPos[0].Factor.Name != "Reorder Buffer Entries" {
		t.Errorf("top factor = %q", byPos[0].Factor.Name)
	}
	// Every jackknife envelope must contain the full position.
	for _, fs := range rep.Factors {
		if fs.MinPosition > fs.FullPosition || fs.MaxPosition < fs.FullPosition {
			t.Errorf("%s: envelope [%d,%d] excludes full position %d",
				fs.Factor.Name, fs.MinPosition, fs.MaxPosition, fs.FullPosition)
		}
		if fs.Spread != fs.MaxPosition-fs.MinPosition {
			t.Errorf("%s: spread inconsistent", fs.Factor.Name)
		}
	}
	// The paper's conclusion that the top two parameters (ROB, L2
	// latency) are significant "across all benchmarks" implies their
	// positions cannot hinge on any single benchmark.
	for _, fs := range byPos[:2] {
		if fs.Spread > 1 {
			t.Errorf("%s: top-2 position unstable (spread %d)", fs.Factor.Name, fs.Spread)
		}
	}
	if !rep.TopKStable(2, 1) {
		t.Error("top-2 should be jackknife-stable on the paper's data")
	}
	// An absurdly tight requirement must fail somewhere in the middle
	// of the table, where ranks genuinely shuffle.
	if rep.TopKStable(25, 0) {
		t.Error("mid-table positions should not be perfectly stable")
	}
}

func TestJackknifeValidation(t *testing.T) {
	s := paperSuite()
	s.RankRows = s.RankRows[:1]
	if _, err := Jackknife(s); err == nil {
		t.Error("single-benchmark suite accepted")
	}
}

// tinySuite builds a suite directly from rank rows (indexed
// [benchmark][factor]) for edge-case testing.
func tinySuite(rows [][]int) *pb.Suite {
	nf := 0
	if len(rows) > 0 {
		nf = len(rows[0])
	}
	factors := make([]pb.Factor, nf)
	for i := range factors {
		factors[i] = pb.Factor{Name: string(rune('A' + i))}
	}
	sums := pb.SumOfRanks(rows)
	benchmarks := make([]string, len(rows))
	for b := range benchmarks {
		benchmarks[b] = string(rune('x' + b))
	}
	return &pb.Suite{
		Benchmarks: benchmarks,
		Factors:    factors,
		RankRows:   rows,
		Sums:       sums,
		Order:      pb.OrderBySum(sums),
	}
}

// An empty suite (no benchmarks at all) must be rejected like the
// single-benchmark one, not crash in the resampling loop.
func TestJackknifeEmptySuite(t *testing.T) {
	if _, err := Jackknife(tinySuite(nil)); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := Jackknife(tinySuite([][]int{})); err == nil {
		t.Error("zero-benchmark suite accepted")
	}
}

// A single factor cannot move: every leave-one-out ordering is the
// trivial one, so the envelope is degenerate and trivially stable.
func TestJackknifeSingleFactor(t *testing.T) {
	rep, err := Jackknife(tinySuite([][]int{{1}, {1}, {1}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Factors) != 1 {
		t.Fatalf("%d factors", len(rep.Factors))
	}
	fs := rep.Factors[0]
	if fs.FullPosition != 1 || fs.MinPosition != 1 || fs.MaxPosition != 1 || fs.Spread != 0 {
		t.Errorf("degenerate envelope expected, got %+v", fs)
	}
	if !rep.TopKStable(1, 0) {
		t.Error("a single factor must be top-1 stable with zero slack")
	}
	if got := rep.ByFullPosition(); len(got) != 1 || got[0].FullPosition != 1 {
		t.Errorf("ByFullPosition = %+v", got)
	}
}

// All-ties rank sums: two benchmarks that rank the factors in exactly
// opposite orders. The full-suite sums all tie (broken by factor
// index), and each leave-one-out collapses to one benchmark's
// ordering, so the outer factors' envelopes span the whole table
// while the middle factor never moves.
func TestJackknifeAllTiesRankSums(t *testing.T) {
	suite := tinySuite([][]int{{1, 2, 3}, {3, 2, 1}})
	for _, s := range suite.Sums[1:] {
		if s != suite.Sums[0] {
			t.Fatalf("sums %v not all tied", suite.Sums)
		}
	}
	rep, err := Jackknife(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []FactorStability{
		{FullPosition: 1, MinPosition: 1, MaxPosition: 3, Spread: 2},
		{FullPosition: 2, MinPosition: 2, MaxPosition: 2, Spread: 0},
		{FullPosition: 3, MinPosition: 1, MaxPosition: 3, Spread: 2},
	} {
		got := rep.Factors[i]
		got.Factor = pb.Factor{}
		if got != want {
			t.Errorf("factor %d: %+v, want %+v", i, got, want)
		}
	}
	// The "top" factor is a tie-break artifact, so it is not stable...
	if rep.TopKStable(1, 0) {
		t.Error("tie-broken top-1 reported stable with zero slack")
	}
	// ...unless the slack covers the whole table.
	if !rep.TopKStable(1, 2) {
		t.Error("full-table slack should make any suite stable")
	}
	// ByFullPosition must order 1, 2, 3 regardless of factor index.
	for i, fs := range rep.ByFullPosition() {
		if fs.FullPosition != i+1 {
			t.Errorf("ByFullPosition[%d].FullPosition = %d", i, fs.FullPosition)
		}
	}
}
