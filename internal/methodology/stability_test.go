package methodology

import (
	"testing"

	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
)

// paperSuite wraps the published Table 9 ranks in a pb.Suite so the
// stability machinery can run on the paper's own data.
func paperSuite() *pb.Suite {
	rows := make([][]int, len(paperdata.Benchmarks))
	vecs := paperdata.RankVectors(paperdata.Table9)
	copy(rows, vecs)
	factors := make([]pb.Factor, len(paperdata.Table9))
	for i, r := range paperdata.Table9 {
		factors[i] = pb.Factor{Name: r.Parameter}
	}
	// Rank rows are indexed [benchmark][tableRow]; the suite's factor
	// list uses the same row order.
	sums := pb.SumOfRanks(rows)
	return &pb.Suite{
		Benchmarks: paperdata.Benchmarks,
		Factors:    factors,
		RankRows:   rows,
		Sums:       sums,
		Order:      pb.OrderBySum(sums),
	}
}

func TestJackknifeOnPaperData(t *testing.T) {
	rep, err := Jackknife(paperSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Factors) != 43 {
		t.Fatalf("%d factors", len(rep.Factors))
	}
	byPos := rep.ByFullPosition()
	// The full-suite ordering starts with the ROB (paper Table 9).
	if byPos[0].Factor.Name != "Reorder Buffer Entries" {
		t.Errorf("top factor = %q", byPos[0].Factor.Name)
	}
	// Every jackknife envelope must contain the full position.
	for _, fs := range rep.Factors {
		if fs.MinPosition > fs.FullPosition || fs.MaxPosition < fs.FullPosition {
			t.Errorf("%s: envelope [%d,%d] excludes full position %d",
				fs.Factor.Name, fs.MinPosition, fs.MaxPosition, fs.FullPosition)
		}
		if fs.Spread != fs.MaxPosition-fs.MinPosition {
			t.Errorf("%s: spread inconsistent", fs.Factor.Name)
		}
	}
	// The paper's conclusion that the top two parameters (ROB, L2
	// latency) are significant "across all benchmarks" implies their
	// positions cannot hinge on any single benchmark.
	for _, fs := range byPos[:2] {
		if fs.Spread > 1 {
			t.Errorf("%s: top-2 position unstable (spread %d)", fs.Factor.Name, fs.Spread)
		}
	}
	if !rep.TopKStable(2, 1) {
		t.Error("top-2 should be jackknife-stable on the paper's data")
	}
	// An absurdly tight requirement must fail somewhere in the middle
	// of the table, where ranks genuinely shuffle.
	if rep.TopKStable(25, 0) {
		t.Error("mid-table positions should not be perfectly stable")
	}
}

func TestJackknifeValidation(t *testing.T) {
	s := paperSuite()
	s.RankRows = s.RankRows[:1]
	if _, err := Jackknife(s); err == nil {
		t.Error("single-benchmark suite accepted")
	}
}
