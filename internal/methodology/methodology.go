// Package methodology implements the simulation-methodology recipes
// the paper recommends: the four-step parameter-selection workflow of
// Section 4.1 (PB screening, then ANOVA sensitivity analysis over the
// critical parameters), the benchmark-classification flow of Section
// 4.2, and the before/after enhancement analysis of Section 4.3.
package methodology

import (
	"fmt"

	"pbsim/internal/cluster"
	"pbsim/internal/pb"
	"pbsim/internal/stats"
)

// Screening is the outcome of step 1: a Plackett-Burman screen that
// separates critical from non-critical parameters.
type Screening struct {
	Suite *pb.Suite
	// Critical holds factor indices in descending significance; the
	// remaining factors can be set to reasonable values with far less
	// caution (step 2).
	Critical []int
	// NonCritical holds the rest, in the sum-of-ranks order.
	NonCritical []int
}

// Screen runs step 1 over a benchmark suite and cuts the factor list
// at the sum-of-ranks significance gap, bounded by maxCritical (<= 0
// means no bound).
func Screen(factors []pb.Factor, benchmarks []string, responses []pb.Response, opts pb.Options, maxCritical int) (*Screening, error) {
	suite, err := pb.RunSuite(factors, benchmarks, responses, opts)
	if err != nil {
		return nil, err
	}
	return ScreenFromSuite(suite, maxCritical), nil
}

// ScreenFromSuite applies the significance cut to an existing suite
// result.
func ScreenFromSuite(suite *pb.Suite, maxCritical int) *Screening {
	cut := pb.SignificanceGap(suite.Sums)
	if maxCritical > 0 && cut > maxCritical {
		cut = maxCritical
	}
	s := &Screening{Suite: suite}
	for i, f := range suite.Order {
		if i < cut {
			s.Critical = append(s.Critical, f)
		} else {
			s.NonCritical = append(s.NonCritical, f)
		}
	}
	return s
}

// Sensitivity is the outcome of step 3: a full-factorial ANOVA over
// the critical parameters only, quantifying their main effects and all
// of their interactions while the non-critical parameters stay fixed.
type Sensitivity struct {
	// Factors holds the indices (into the original factor list) that
	// were varied, in design-column order.
	Factors []int
	ANOVA   *stats.ANOVAResult
}

// maxSensitivityFactors bounds the 2^k sensitivity design.
const maxSensitivityFactors = 12

// SensitivityAnalysis performs step 3 for one response: every
// combination of the critical factors' levels is simulated (2^k runs),
// non-critical factors held at baseLevel, and the variation is
// allocated over main effects and interactions.
func SensitivityAnalysis(numFactors int, critical []int, response pb.Response, baseLevel pb.Level) (*Sensitivity, error) {
	k := len(critical)
	if k < 1 {
		return nil, fmt.Errorf("methodology: no critical factors")
	}
	if k > maxSensitivityFactors {
		return nil, fmt.Errorf("methodology: %d critical factors exceed the 2^%d full-factorial budget", k, maxSensitivityFactors)
	}
	for _, f := range critical {
		if f < 0 || f >= numFactors {
			return nil, fmt.Errorf("methodology: critical factor index %d out of range", f)
		}
	}
	rows, err := stats.FullFactorial(k)
	if err != nil {
		return nil, err
	}
	responses := make([]float64, len(rows))
	levels := make([]pb.Level, numFactors)
	for i, row := range rows {
		for j := range levels {
			levels[j] = baseLevel
		}
		for j, f := range critical {
			levels[f] = pb.Level(row[j])
		}
		responses[i] = response(levels)
	}
	anova, err := stats.ANOVA(k, responses)
	if err != nil {
		return nil, err
	}
	return &Sensitivity{Factors: critical, ANOVA: anova}, nil
}

// Classification is the Section 4.2 flow: benchmarks grouped by the
// similarity of their parameter-rank vectors.
type Classification struct {
	Matrix          *cluster.Matrix
	Groups          [][]string
	Representatives []string
}

// Classify builds the distance matrix from a suite's rank rows and
// groups benchmarks under the given similarity threshold.
func Classify(suite *pb.Suite, threshold float64) (*Classification, error) {
	m, err := cluster.DistanceMatrix(suite.Benchmarks, suite.RankRows)
	if err != nil {
		return nil, err
	}
	groups := cluster.ThresholdGroups(m, threshold)
	reps := cluster.Representatives(m, groups)
	c := &Classification{
		Matrix: m,
		Groups: cluster.GroupNames(m, groups),
	}
	for _, r := range reps {
		c.Representatives = append(c.Representatives, m.Names[r])
	}
	return c, nil
}

// EnhancementShift is one row of the Section 4.3 before/after
// comparison.
type EnhancementShift struct {
	Factor     pb.Factor
	SumBefore  int
	SumAfter   int
	Shift      int // positive: the factor lost significance
	RankBefore int // position in the before ordering (1 = most significant)
	RankAfter  int
}

// CompareEnhancement runs the Section 4.3 analysis over two suites
// measured before and after an enhancement, returning per-factor
// sum-of-ranks shifts ordered by the before-suite significance.
func CompareEnhancement(before, after *pb.Suite) ([]EnhancementShift, error) {
	if len(before.Sums) != len(after.Sums) {
		return nil, fmt.Errorf("methodology: factor counts differ (%d vs %d)", len(before.Sums), len(after.Sums))
	}
	posBefore := make([]int, len(before.Sums))
	for i, f := range before.Order {
		posBefore[f] = i + 1
	}
	posAfter := make([]int, len(after.Sums))
	for i, f := range after.Order {
		posAfter[f] = i + 1
	}
	shifts := make([]EnhancementShift, 0, len(before.Order))
	for _, f := range before.Order {
		shifts = append(shifts, EnhancementShift{
			Factor:     before.Factors[f],
			SumBefore:  before.Sums[f],
			SumAfter:   after.Sums[f],
			Shift:      after.Sums[f] - before.Sums[f],
			RankBefore: posBefore[f],
			RankAfter:  posAfter[f],
		})
	}
	return shifts, nil
}

// BiggestShift returns the significant factor (within the first
// topN positions of the before ordering) whose sum of ranks changed
// the most — the paper's headline observation that instruction
// precomputation most affects the number of integer ALUs.
func BiggestShift(shifts []EnhancementShift, topN int) (EnhancementShift, error) {
	if len(shifts) == 0 {
		return EnhancementShift{}, fmt.Errorf("methodology: no shifts")
	}
	if topN <= 0 || topN > len(shifts) {
		topN = len(shifts)
	}
	best := shifts[0]
	bestMag := abs(best.Shift)
	for _, s := range shifts[:topN] {
		if m := abs(s.Shift); m > bestMag {
			best, bestMag = s, m
		}
	}
	return best, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
